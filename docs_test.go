package flexcast_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsIntraRepoLinks fails on broken intra-repository links in the
// top-level documentation — the docs CI job's gate. External links
// (with a scheme) and pure anchors are skipped; relative targets must
// exist on disk.
func TestDocsIntraRepoLinks(t *testing.T) {
	for _, doc := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"} {
		buf, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(buf), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Clean(target)); err != nil {
				t.Errorf("%s: broken intra-repo link %q: %v", doc, m[1], err)
			}
		}
	}
}

// TestDocsNamedFilesExist keeps the documentation's file references
// honest: every path-like token the top-level docs name in backticks
// must exist (packages, commands, files). Directories count.
func TestDocsNamedFilesExist(t *testing.T) {
	pathToken := regexp.MustCompile("`((?:cmd|internal|examples|amcast)/[A-Za-z0-9_/.-]+)`")
	for _, doc := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"} {
		buf, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range pathToken.FindAllStringSubmatch(string(buf), -1) {
			target := filepath.Clean(m[1])
			if _, err := os.Stat(target); err == nil {
				continue
			}
			// `internal/metrics.Histogram`-style package.Symbol
			// references: the package directory must exist.
			if i := strings.LastIndexByte(target, '.'); i > strings.LastIndexByte(target, '/') {
				if _, err := os.Stat(target[:i]); err == nil {
					continue
				}
			}
			t.Errorf("%s: names %q which does not exist", doc, m[1])
		}
	}
}
