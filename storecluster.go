package flexcast

import (
	"fmt"
	"sort"
	"time"

	"flexcast/amcast"
	"flexcast/internal/gtpcc"
	"flexcast/internal/store"
)

// StoreClusterConfig configures an executing cluster: a Cluster (the
// batched in-process runtime) whose groups each own one warehouse shard
// of the partitioned gTPC-C database (internal/store).
type StoreClusterConfig struct {
	// Protocol selects the multicast protocol (default ProtocolFlexCast).
	Protocol ProtocolKind
	// Warehouses is the number of warehouse groups; when Overlay/Tree
	// are unset a chain overlay (or a star tree for the hierarchical
	// protocol) over groups 1..Warehouses is built (default 4).
	Warehouses int
	// Overlay overrides the generated overlay (FlexCast, Skeen).
	Overlay *Overlay
	// Tree overrides the generated tree (hierarchical).
	Tree *Tree
	// Items and Customers size each warehouse's tables (defaults: the
	// gTPC-C generator's table sizes).
	Items     int
	Customers int
	// StoreSeed drives the deterministic initial population (default 1).
	StoreSeed int64
	// MaxBatch, FlushInterval and CallTimeout pass through to the
	// underlying ClusterConfig.
	MaxBatch      int
	FlushInterval time.Duration
	CallTimeout   time.Duration
	// DisableFastReads forces the read-only single-shard transactions
	// (OrderStatus, StockLevel) through the full multicast instead of
	// the local-read fast path — the A/B baseline and a fallback should
	// a deployment want strictly multicast-ordered reads.
	DisableFastReads bool
}

// OrderLine is one item of a NewOrder call: Qty units of Item supplied
// by warehouse Supply.
type OrderLine struct {
	Item   int
	Supply GroupID
	Qty    int
}

// TxResult is the outcome of one executed transaction.
type TxResult struct {
	// ID is the transaction's multicast message id (0 for fast-path
	// reads, which never enter the multicast).
	ID MsgID
	// Committed reports the verdict (all involved warehouses agree; a
	// disagreement fails the call instead).
	Committed bool
	// Results maps each involved warehouse to its reply's result code.
	Results map[GroupID]uint8
	// FastPath reports that the transaction was a read-only single-shard
	// transaction served by the local-read fast path: executed directly
	// against the local shard at the delivered-prefix barrier, without a
	// multicast round (DESIGN.md §1d).
	FastPath bool
	// Value is the fast-path read's result: the customer's most recent
	// order id for OrderStatus (-1 when none), the low-stock item count
	// for StockLevel. Multicast transactions carry no value (replies are
	// verdict-only).
	Value int64
}

// StoreCluster is an in-process deployment of the partially replicated
// gTPC-C store over atomic multicast: every transaction is multicast to
// the warehouses it involves, delivered in a cross-group serializable
// order, and executed deterministically at each involved shard. It is
// the executable-workload counterpart of Cluster.
type StoreCluster struct {
	c         *Cluster
	execs     map[GroupID]*store.Executor
	items     int
	customers int
	fastReads bool
	timeout   time.Duration
}

// NewStoreCluster builds and starts an executing cluster.
func NewStoreCluster(cfg StoreClusterConfig) (*StoreCluster, error) {
	if cfg.Protocol == 0 {
		cfg.Protocol = ProtocolFlexCast
	}
	if cfg.Warehouses == 0 {
		cfg.Warehouses = 4
	}
	ccfg := ClusterConfig{
		Protocol:      cfg.Protocol,
		Overlay:       cfg.Overlay,
		Tree:          cfg.Tree,
		MaxBatch:      cfg.MaxBatch,
		FlushInterval: cfg.FlushInterval,
		CallTimeout:   cfg.CallTimeout,
	}
	if ccfg.Overlay == nil && ccfg.Tree == nil {
		groups := make([]GroupID, cfg.Warehouses)
		for i := range groups {
			groups[i] = GroupID(i + 1)
		}
		if cfg.Protocol == ProtocolHierarchical {
			tree, err := NewTree(groups[0], map[GroupID][]GroupID{groups[0]: groups[1:]})
			if err != nil {
				return nil, err
			}
			ccfg.Tree = tree
		} else {
			ov, err := NewOverlay(groups)
			if err != nil {
				return nil, err
			}
			ccfg.Overlay = ov
		}
	}

	if cfg.Items == 0 {
		cfg.Items = gtpcc.NumItems
	}
	if cfg.Customers == 0 {
		cfg.Customers = gtpcc.NumCustomers
	}
	timeout := cfg.CallTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	sc := &StoreCluster{
		execs:     make(map[GroupID]*store.Executor),
		items:     cfg.Items,
		customers: cfg.Customers,
		fastReads: !cfg.DisableFastReads,
		timeout:   timeout,
	}
	ccfg.WrapEngine = func(g GroupID, eng Engine) (Engine, error) {
		ex, err := store.Wrap(eng, store.Config{
			Warehouse: g,
			Items:     cfg.Items,
			Customers: cfg.Customers,
			Seed:      cfg.StoreSeed,
		}, true)
		if err != nil {
			return nil, err
		}
		sc.execs[g] = ex
		return ex, nil
	}
	c, err := NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	sc.c = c
	return sc, nil
}

// Warehouses returns the cluster's warehouse groups.
func (sc *StoreCluster) Warehouses() []GroupID { return sc.c.Groups() }

// checkCustomer validates a customer index against the table size.
func (sc *StoreCluster) checkCustomer(customer int) error {
	if customer < 0 || customer >= sc.customers {
		return fmt.Errorf("flexcast: customer %d outside [0,%d)", customer, sc.customers)
	}
	return nil
}

// exec multicasts one transaction and folds the per-warehouse verdicts.
func (sc *StoreCluster) exec(tx gtpcc.Tx) (*TxResult, error) {
	id, results, err := sc.c.CallResults(tx.Involved(), gtpcc.EncodeTx(tx))
	if err != nil {
		return nil, err
	}
	res := &TxResult{ID: id, Results: results}
	first := uint8(0)
	groups := make([]GroupID, 0, len(results))
	for g := range results {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for i, g := range groups {
		code := results[g]
		if code == amcast.ResultNone {
			return nil, fmt.Errorf("flexcast: warehouse %d did not execute tx %s", g, id)
		}
		if i == 0 {
			first = code
			continue
		}
		if code != first {
			return nil, fmt.Errorf("flexcast: tx %s verdicts diverge across warehouses: %v", id, results)
		}
	}
	res.Committed = first == amcast.ResultCommitted
	return res, nil
}

// NewOrder executes a TPC-C new-order for a customer of the home
// warehouse; order lines may be supplied by remote warehouses, making
// the transaction multi-shard.
func (sc *StoreCluster) NewOrder(home GroupID, customer int, lines []OrderLine) (*TxResult, error) {
	if len(lines) == 0 {
		return nil, fmt.Errorf("flexcast: new-order needs at least one order line")
	}
	if err := sc.checkCustomer(customer); err != nil {
		return nil, err
	}
	for _, l := range lines {
		if l.Item < 0 || l.Item >= sc.items {
			return nil, fmt.Errorf("flexcast: item %d outside [0,%d)", l.Item, sc.items)
		}
		if l.Qty <= 0 {
			return nil, fmt.Errorf("flexcast: non-positive quantity %d", l.Qty)
		}
	}
	tx := gtpcc.Tx{
		Type:        gtpcc.NewOrder,
		Home:        home,
		Customer:    int32(customer),
		Items:       len(lines),
		PayloadSize: 64 + 12*len(lines),
	}
	for _, l := range lines {
		supply := l.Supply
		if supply == amcast.NoGroup {
			supply = home
		}
		tx.Lines = append(tx.Lines, gtpcc.OrderLine{
			Item: int32(l.Item), Supply: supply, Qty: int32(l.Qty),
		})
	}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// Payment executes a TPC-C payment: the home warehouse banks amount,
// the customer's warehouse debits the customer (multi-shard when they
// differ).
func (sc *StoreCluster) Payment(home, customerWarehouse GroupID, customer int, amount int64) (*TxResult, error) {
	if amount <= 0 {
		return nil, fmt.Errorf("flexcast: payment amount must be positive")
	}
	if err := sc.checkCustomer(customer); err != nil {
		return nil, err
	}
	if customerWarehouse == amcast.NoGroup {
		customerWarehouse = home
	}
	tx := gtpcc.Tx{
		Type:          gtpcc.Payment,
		Home:          home,
		Customer:      int32(customer),
		CustWarehouse: customerWarehouse,
		Amount:        amount,
		PayloadSize:   48,
	}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// readFast serves a read-only single-shard transaction on the local-read
// fast path: no multicast — the read executes directly against the
// warehouse's shard once the shard has applied every delivery this
// client has already observed there (the delivered-prefix barrier,
// giving read-your-writes and serializable reads; DESIGN.md §1d).
func (sc *StoreCluster) readFast(tx gtpcc.Tx) (*TxResult, error) {
	ex, ok := sc.execs[tx.Home]
	if !ok {
		return nil, fmt.Errorf("flexcast: unknown warehouse %d", tx.Home)
	}
	res, err := ex.Read(tx, sc.c.ObservedPrefix(tx.Home), sc.timeout)
	if err != nil {
		return nil, err
	}
	return &TxResult{
		Committed: true,
		Results:   map[GroupID]uint8{tx.Home: amcast.ResultCommitted},
		FastPath:  true,
		Value:     res.Value,
	}, nil
}

// OrderStatus executes the read-only order-status transaction at one
// warehouse. Single-shard and read-only, it is served by the local-read
// fast path (no multicast) unless the cluster was configured with
// DisableFastReads; the result's Value is the customer's most recent
// order id (-1 when none).
func (sc *StoreCluster) OrderStatus(warehouse GroupID, customer int) (*TxResult, error) {
	if err := sc.checkCustomer(customer); err != nil {
		return nil, err
	}
	tx := gtpcc.Tx{
		Type: gtpcc.OrderStatus, Home: warehouse,
		Customer: int32(customer), PayloadSize: 40,
	}
	if sc.fastReads {
		return sc.readFast(tx)
	}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// DeliverOrders executes the delivery transaction at one warehouse,
// popping its oldest undelivered orders.
func (sc *StoreCluster) DeliverOrders(warehouse GroupID) (*TxResult, error) {
	tx := gtpcc.Tx{Type: gtpcc.Delivery, Home: warehouse, PayloadSize: 40}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// StockLevel executes the read-only stock-level transaction at one
// warehouse, served by the local-read fast path (no multicast) unless
// DisableFastReads is set; the result's Value is the low-stock item
// count.
func (sc *StoreCluster) StockLevel(warehouse GroupID, threshold int) (*TxResult, error) {
	tx := gtpcc.Tx{
		Type: gtpcc.StockLevel, Home: warehouse,
		Threshold: int32(threshold), PayloadSize: 40,
	}
	if sc.fastReads {
		return sc.readFast(tx)
	}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// Digest returns a warehouse shard's state digest — the witness that
// replicas (and independent runs with the same delivery order) hold
// byte-identical state. Quiesce the cluster (no in-flight Calls) before
// reading digests.
func (sc *StoreCluster) Digest(warehouse GroupID) ([32]byte, error) {
	ex, ok := sc.execs[warehouse]
	if !ok {
		return [32]byte{}, fmt.Errorf("flexcast: unknown warehouse %d", warehouse)
	}
	return ex.Digest(), nil
}

// CheckInvariants audits the quiesced store: per-shard conservation,
// the cross-shard payment and order-line conservation laws, and the
// byte-identity of each shard's mirror replica.
func (sc *StoreCluster) CheckInvariants() error {
	shards := make([]*store.Shard, 0, len(sc.execs))
	for _, g := range sc.c.Groups() {
		ex := sc.execs[g]
		if err := ex.CheckMirror(); err != nil {
			return err
		}
		shards = append(shards, ex.Shard())
	}
	return store.CheckInvariants(shards)
}

// Close stops the underlying cluster.
func (sc *StoreCluster) Close() { sc.c.Close() }
