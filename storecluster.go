package flexcast

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"flexcast/amcast"
	"flexcast/internal/gtpcc"
	"flexcast/internal/store"
)

// StoreClusterConfig configures an executing cluster: a Cluster (the
// batched in-process runtime) whose groups each own one warehouse shard
// of the partitioned gTPC-C database (internal/store).
type StoreClusterConfig struct {
	// Protocol selects the multicast protocol (default ProtocolFlexCast).
	Protocol ProtocolKind
	// Warehouses is the number of warehouse groups; when Overlay/Tree
	// are unset a chain overlay (or a star tree for the hierarchical
	// protocol) over groups 1..Warehouses is built (default 4).
	Warehouses int
	// Overlay overrides the generated overlay (FlexCast, Skeen).
	Overlay *Overlay
	// Tree overrides the generated tree (hierarchical).
	Tree *Tree
	// Items and Customers size each warehouse's stock and customer
	// tables (defaults: the gTPC-C generator's table sizes).
	Items int
	// Customers is the customer-table size per warehouse.
	Customers int
	// StoreSeed drives the deterministic initial population (default 1).
	StoreSeed int64
	// MaxBatch, FlushInterval and CallTimeout pass through to the
	// underlying ClusterConfig.
	MaxBatch int
	// FlushInterval is the runtime's batch flush period (see
	// ClusterConfig.FlushInterval).
	FlushInterval time.Duration
	// CallTimeout bounds each transaction call (see
	// ClusterConfig.CallTimeout); it also bounds fast-path read waits.
	CallTimeout time.Duration
	// DisableFastReads forces the read-only single-shard transactions
	// (OrderStatus, StockLevel) through the full multicast instead of
	// the local-read fast path — the A/B baseline and a fallback should
	// a deployment want strictly multicast-ordered reads.
	DisableFastReads bool
	// ReadReplicas attaches that many follower read replicas to every
	// warehouse: each applies the warehouse's delivery log shipped from
	// the serving node (asynchronously, with its own delivered-prefix
	// watermark) and serves lease-gated fast reads, multiplying read
	// capacity by the replication factor (DESIGN.md §1e). Sessions
	// (Session) load-balance OrderStatus/StockLevel across them; an
	// expired lease falls back to the serving node. 0 keeps all reads
	// on the serving node.
	ReadReplicas int
	// LeaseTerm is the follower read-lease term (default 250ms). Leases
	// renew as the delivery log ships, so an idle warehouse's leases
	// lapse and its reads fall back to the serving node — by design: a
	// follower cut off from the log must stop serving within one term.
	LeaseTerm time.Duration
	// Durable selects the durable persistence backend (see
	// ClusterConfig.Durable): each warehouse's executor-wrapped engine
	// runs behind a WAL plus snapshot files under Durable.Dir, and a
	// restarted cluster recovers every shard before serving. The
	// snapshot decoder is composed automatically (store layer over the
	// protocol engine's). nil keeps the in-memory backend unchanged.
	Durable *DurableConfig
}

// OrderLine is one item of a NewOrder call: Qty units of Item supplied
// by warehouse Supply.
type OrderLine struct {
	// Item is the stock item index within the supplying warehouse.
	Item int
	// Supply is the supplying warehouse (NoGroup / zero: the order's
	// home warehouse).
	Supply GroupID
	// Qty is the quantity ordered (must be positive).
	Qty int
}

// TxResult is the outcome of one executed transaction.
type TxResult struct {
	// ID is the transaction's multicast message id (0 for fast-path
	// reads, which never enter the multicast).
	ID MsgID
	// Committed reports the verdict (all involved warehouses agree; a
	// disagreement fails the call instead).
	Committed bool
	// Results maps each involved warehouse to its reply's result code.
	Results map[GroupID]uint8
	// FastPath reports that the transaction was a read-only single-shard
	// transaction served by the local-read fast path: executed directly
	// against a local shard replica at the delivered-prefix barrier,
	// without a multicast round (DESIGN.md §1d/§1e).
	FastPath bool
	// Value is the fast-path read's result: the customer's most recent
	// order id for OrderStatus (-1 when none), the low-stock item count
	// for StockLevel. Multicast transactions carry no value (replies are
	// verdict-only).
	Value int64
	// Replica identifies which replica served a fast-path read: 0 is
	// the warehouse's serving node, >= 1 a lease-holding follower read
	// replica (sessions on clusters with ReadReplicas).
	Replica int32
}

// StoreCluster is an in-process deployment of the partially replicated
// gTPC-C store over atomic multicast: every transaction is multicast to
// the warehouses it involves, delivered in a cross-group serializable
// order, and executed deterministically at each involved shard. It is
// the executable-workload counterpart of Cluster.
type StoreCluster struct {
	c         *Cluster
	execs     map[GroupID]*store.Executor
	replicas  map[GroupID][]*store.Replica
	items     int
	customers int
	fastReads bool
	timeout   time.Duration
}

// NewStoreCluster builds and starts an executing cluster.
func NewStoreCluster(cfg StoreClusterConfig) (*StoreCluster, error) {
	if cfg.Protocol == 0 {
		cfg.Protocol = ProtocolFlexCast
	}
	if cfg.Warehouses == 0 {
		cfg.Warehouses = 4
	}
	ccfg := ClusterConfig{
		Protocol:      cfg.Protocol,
		Overlay:       cfg.Overlay,
		Tree:          cfg.Tree,
		MaxBatch:      cfg.MaxBatch,
		FlushInterval: cfg.FlushInterval,
		CallTimeout:   cfg.CallTimeout,
	}
	if cfg.Durable != nil {
		dcfg := *cfg.Durable
		if dcfg.Decode == nil {
			// The durable layer wraps the executor, so its snapshots are
			// the store layer's encoding over the protocol engine's.
			proto := protocolSnapshotDecoder(cfg.Protocol)
			dcfg.Decode = func(_ GroupID, data []byte) (amcast.Snapshot, error) {
				return store.UnmarshalSnapshot(data, proto)
			}
		}
		ccfg.Durable = &dcfg
	}
	if ccfg.Overlay == nil && ccfg.Tree == nil {
		groups := make([]GroupID, cfg.Warehouses)
		for i := range groups {
			groups[i] = GroupID(i + 1)
		}
		if cfg.Protocol == ProtocolHierarchical {
			tree, err := NewTree(groups[0], map[GroupID][]GroupID{groups[0]: groups[1:]})
			if err != nil {
				return nil, err
			}
			ccfg.Tree = tree
		} else {
			ov, err := NewOverlay(groups)
			if err != nil {
				return nil, err
			}
			ccfg.Overlay = ov
		}
	}

	if cfg.Items == 0 {
		cfg.Items = gtpcc.NumItems
	}
	if cfg.Customers == 0 {
		cfg.Customers = gtpcc.NumCustomers
	}
	timeout := cfg.CallTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	if cfg.LeaseTerm == 0 {
		cfg.LeaseTerm = 250 * time.Millisecond
	}
	sc := &StoreCluster{
		execs:     make(map[GroupID]*store.Executor),
		replicas:  make(map[GroupID][]*store.Replica),
		items:     cfg.Items,
		customers: cfg.Customers,
		fastReads: !cfg.DisableFastReads,
		timeout:   timeout,
	}
	ccfg.WrapEngine = func(g GroupID, eng Engine) (Engine, error) {
		ex, err := store.Wrap(eng, store.Config{
			Warehouse: g,
			Items:     cfg.Items,
			Customers: cfg.Customers,
			Seed:      cfg.StoreSeed,
		}, true)
		if err != nil {
			return nil, err
		}
		sc.execs[g] = ex
		for i := 0; i < cfg.ReadReplicas; i++ {
			rep, err := ex.AttachFollower(store.ReplicaConfig{
				Idx:           int32(i + 1),
				Async:         true, // Clock defaults to the wall clock
				AutoGrantTerm: uint64(cfg.LeaseTerm.Microseconds()),
			})
			if err != nil {
				return nil, err
			}
			sc.replicas[g] = append(sc.replicas[g], rep)
		}
		return ex, nil
	}
	c, err := NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	sc.c = c
	return sc, nil
}

// Warehouses returns the cluster's warehouse groups.
func (sc *StoreCluster) Warehouses() []GroupID { return sc.c.Groups() }

// DurableRecoveries reports, per warehouse, how the durable backend
// recovered at cluster start. Empty on in-memory clusters.
func (sc *StoreCluster) DurableRecoveries() []DurableRecovery {
	return sc.c.DurableRecoveries()
}

// checkCustomer validates a customer index against the table size.
func (sc *StoreCluster) checkCustomer(customer int) error {
	if customer < 0 || customer >= sc.customers {
		return fmt.Errorf("flexcast: customer %d outside [0,%d)", customer, sc.customers)
	}
	return nil
}

// exec multicasts one transaction and folds the per-warehouse verdicts.
func (sc *StoreCluster) exec(tx gtpcc.Tx) (*TxResult, error) {
	id, results, err := sc.c.CallResults(tx.Involved(), gtpcc.EncodeTx(tx))
	if err != nil {
		return nil, err
	}
	return foldVerdicts(id, results)
}

// foldVerdicts checks that every involved warehouse executed and that
// the verdicts agree, and assembles the transaction result.
func foldVerdicts(id MsgID, results map[GroupID]uint8) (*TxResult, error) {
	res := &TxResult{ID: id, Results: results}
	first := uint8(0)
	groups := make([]GroupID, 0, len(results))
	for g := range results {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for i, g := range groups {
		code := results[g]
		if code == amcast.ResultNone {
			return nil, fmt.Errorf("flexcast: warehouse %d did not execute tx %s", g, id)
		}
		if i == 0 {
			first = code
			continue
		}
		if code != first {
			return nil, fmt.Errorf("flexcast: tx %s verdicts diverge across warehouses: %v", id, results)
		}
	}
	res.Committed = first == amcast.ResultCommitted
	return res, nil
}

// newOrderTx validates and assembles a new-order transaction.
func (sc *StoreCluster) newOrderTx(home GroupID, customer int, lines []OrderLine) (gtpcc.Tx, error) {
	if len(lines) == 0 {
		return gtpcc.Tx{}, fmt.Errorf("flexcast: new-order needs at least one order line")
	}
	if err := sc.checkCustomer(customer); err != nil {
		return gtpcc.Tx{}, err
	}
	for _, l := range lines {
		if l.Item < 0 || l.Item >= sc.items {
			return gtpcc.Tx{}, fmt.Errorf("flexcast: item %d outside [0,%d)", l.Item, sc.items)
		}
		if l.Qty <= 0 {
			return gtpcc.Tx{}, fmt.Errorf("flexcast: non-positive quantity %d", l.Qty)
		}
	}
	tx := gtpcc.Tx{
		Type:        gtpcc.NewOrder,
		Home:        home,
		Customer:    int32(customer),
		Items:       len(lines),
		PayloadSize: 64 + 12*len(lines),
	}
	for _, l := range lines {
		supply := l.Supply
		if supply == amcast.NoGroup {
			supply = home
		}
		tx.Lines = append(tx.Lines, gtpcc.OrderLine{
			Item: int32(l.Item), Supply: supply, Qty: int32(l.Qty),
		})
	}
	tx.Dst = tx.Involved()
	return tx, nil
}

// NewOrder executes a TPC-C new-order for a customer of the home
// warehouse; order lines may be supplied by remote warehouses, making
// the transaction multi-shard.
func (sc *StoreCluster) NewOrder(home GroupID, customer int, lines []OrderLine) (*TxResult, error) {
	tx, err := sc.newOrderTx(home, customer, lines)
	if err != nil {
		return nil, err
	}
	return sc.exec(tx)
}

// paymentTx validates and assembles a payment transaction.
func (sc *StoreCluster) paymentTx(home, customerWarehouse GroupID, customer int, amount int64) (gtpcc.Tx, error) {
	if amount <= 0 {
		return gtpcc.Tx{}, fmt.Errorf("flexcast: payment amount must be positive")
	}
	if err := sc.checkCustomer(customer); err != nil {
		return gtpcc.Tx{}, err
	}
	if customerWarehouse == amcast.NoGroup {
		customerWarehouse = home
	}
	tx := gtpcc.Tx{
		Type:          gtpcc.Payment,
		Home:          home,
		Customer:      int32(customer),
		CustWarehouse: customerWarehouse,
		Amount:        amount,
		PayloadSize:   48,
	}
	tx.Dst = tx.Involved()
	return tx, nil
}

// Payment executes a TPC-C payment: the home warehouse banks amount,
// the customer's warehouse debits the customer (multi-shard when they
// differ).
func (sc *StoreCluster) Payment(home, customerWarehouse GroupID, customer int, amount int64) (*TxResult, error) {
	tx, err := sc.paymentTx(home, customerWarehouse, customer, amount)
	if err != nil {
		return nil, err
	}
	return sc.exec(tx)
}

// readFast serves a read-only single-shard transaction on the local-read
// fast path: no multicast — the read executes directly against the
// warehouse's serving shard once it has applied every delivery this
// client has already observed there (the delivered-prefix barrier,
// giving read-your-writes and serializable reads; DESIGN.md §1d). The
// read's serving watermark folds back into the cluster-wide barrier, so
// successive reads are monotonic. Session reads additionally
// load-balance across follower replicas; this cluster-wide form always
// reads the serving node.
func (sc *StoreCluster) readFast(tx gtpcc.Tx) (*TxResult, error) {
	ex, ok := sc.execs[tx.Home]
	if !ok {
		return nil, fmt.Errorf("flexcast: unknown warehouse %d", tx.Home)
	}
	res, err := ex.Read(tx, sc.c.ObservedPrefix(tx.Home), sc.timeout)
	if err != nil {
		return nil, err
	}
	sc.c.observeRead(tx.Home, res.Watermark)
	return &TxResult{
		Committed: true,
		Results:   map[GroupID]uint8{tx.Home: amcast.ResultCommitted},
		FastPath:  true,
		Value:     res.Value,
	}, nil
}

// OrderStatus executes the read-only order-status transaction at one
// warehouse. Single-shard and read-only, it is served by the local-read
// fast path (no multicast) unless the cluster was configured with
// DisableFastReads; the result's Value is the customer's most recent
// order id (-1 when none).
func (sc *StoreCluster) OrderStatus(warehouse GroupID, customer int) (*TxResult, error) {
	if err := sc.checkCustomer(customer); err != nil {
		return nil, err
	}
	tx := gtpcc.Tx{
		Type: gtpcc.OrderStatus, Home: warehouse,
		Customer: int32(customer), PayloadSize: 40,
	}
	if sc.fastReads {
		return sc.readFast(tx)
	}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// DeliverOrders executes the delivery transaction at one warehouse,
// popping its oldest undelivered orders.
func (sc *StoreCluster) DeliverOrders(warehouse GroupID) (*TxResult, error) {
	tx := gtpcc.Tx{Type: gtpcc.Delivery, Home: warehouse, PayloadSize: 40}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// StockLevel executes the read-only stock-level transaction at one
// warehouse, served by the local-read fast path (no multicast) unless
// DisableFastReads is set; the result's Value is the low-stock item
// count.
func (sc *StoreCluster) StockLevel(warehouse GroupID, threshold int) (*TxResult, error) {
	tx := gtpcc.Tx{
		Type: gtpcc.StockLevel, Home: warehouse,
		Threshold: int32(threshold), PayloadSize: 40,
	}
	if sc.fastReads {
		return sc.readFast(tx)
	}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// Digest returns a warehouse shard's state digest — the witness that
// replicas (and independent runs with the same delivery order) hold
// byte-identical state. Quiesce the cluster (no in-flight Calls) before
// reading digests.
func (sc *StoreCluster) Digest(warehouse GroupID) ([32]byte, error) {
	ex, ok := sc.execs[warehouse]
	if !ok {
		return [32]byte{}, fmt.Errorf("flexcast: unknown warehouse %d", warehouse)
	}
	return ex.Digest(), nil
}

// CheckInvariants audits the quiesced store: per-shard conservation,
// the cross-shard payment and order-line conservation laws, and the
// byte-identity of each shard's mirror replica.
func (sc *StoreCluster) CheckInvariants() error {
	shards := make([]*store.Shard, 0, len(sc.execs))
	for _, g := range sc.c.Groups() {
		ex := sc.execs[g]
		if err := ex.CheckMirror(); err != nil {
			return err
		}
		shards = append(shards, ex.Shard())
	}
	return store.CheckInvariants(shards)
}

// Close stops the underlying cluster, then the follower read replicas
// (in that order: the cluster's nodes are the replicas' log feeders).
func (sc *StoreCluster) Close() {
	sc.c.Close()
	for _, reps := range sc.replicas {
		for _, rep := range reps {
			rep.Close()
		}
	}
}

// Session is one client session over the store: it carries its own
// barrier vector (amcast.PrefixTracker) fed by the replies and read
// watermarks this session alone has observed. Reads through a session
// are read-your-writes across shards (a multi-shard transaction's
// Call completes only after every involved warehouse replied, so the
// vector covers all of them) and monotonic across replicas (each read
// folds its serving watermark back in, so a later read on a lagging
// replica waits until that replica catches up to whatever this session
// has already seen). On clusters with ReadReplicas, session reads
// load-balance round-robin across the warehouse's lease-holding
// followers, falling back to the serving node when a lease has lapsed.
// A Session is safe for concurrent use; independent sessions share
// nothing but the cluster.
type Session struct {
	sc *StoreCluster

	mu      sync.Mutex
	barrier amcast.PrefixTracker
	rr      uint64
}

// Session opens a fresh client session (empty barrier: the session has
// observed nothing yet).
func (sc *StoreCluster) Session() *Session {
	return &Session{sc: sc, barrier: make(amcast.PrefixTracker)}
}

// exec runs one multicast transaction and folds the replies' delivered
// prefixes (and piggybacked watermarks) into the session barrier.
func (s *Session) exec(tx gtpcc.Tx) (*TxResult, error) {
	id, results, observed, err := s.sc.c.callObserved(tx.Involved(), gtpcc.EncodeTx(tx))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	for g, p := range observed {
		s.barrier.Fold(g, p)
	}
	s.mu.Unlock()
	return foldVerdicts(id, results)
}

// NewOrder is StoreCluster.NewOrder through this session's barrier.
func (s *Session) NewOrder(home GroupID, customer int, lines []OrderLine) (*TxResult, error) {
	tx, err := s.sc.newOrderTx(home, customer, lines)
	if err != nil {
		return nil, err
	}
	return s.exec(tx)
}

// Payment is StoreCluster.Payment through this session's barrier.
func (s *Session) Payment(home, customerWarehouse GroupID, customer int, amount int64) (*TxResult, error) {
	tx, err := s.sc.paymentTx(home, customerWarehouse, customer, amount)
	if err != nil {
		return nil, err
	}
	return s.exec(tx)
}

// DeliverOrders is StoreCluster.DeliverOrders through this session's
// barrier.
func (s *Session) DeliverOrders(warehouse GroupID) (*TxResult, error) {
	tx := gtpcc.Tx{Type: gtpcc.Delivery, Home: warehouse, PayloadSize: 40}
	tx.Dst = tx.Involved()
	return s.exec(tx)
}

// OrderStatus serves the read-only order-status transaction at this
// session's barrier — on a lease-holding follower replica when the
// cluster has them, else on the serving node.
func (s *Session) OrderStatus(warehouse GroupID, customer int) (*TxResult, error) {
	if err := s.sc.checkCustomer(customer); err != nil {
		return nil, err
	}
	tx := gtpcc.Tx{
		Type: gtpcc.OrderStatus, Home: warehouse,
		Customer: int32(customer), PayloadSize: 40,
	}
	return s.read(tx)
}

// StockLevel serves the read-only stock-level transaction at this
// session's barrier — on a lease-holding follower replica when the
// cluster has them, else on the serving node.
func (s *Session) StockLevel(warehouse GroupID, threshold int) (*TxResult, error) {
	tx := gtpcc.Tx{
		Type: gtpcc.StockLevel, Home: warehouse,
		Threshold: int32(threshold), PayloadSize: 40,
	}
	return s.read(tx)
}

// read routes one read-only transaction: multicast when fast reads are
// disabled, else a follower replica (round-robin over the warehouse's
// lease holders) or the serving node. The read's serving watermark
// folds back into the session barrier — the monotonic-reads half of
// the session guarantee.
func (s *Session) read(tx gtpcc.Tx) (*TxResult, error) {
	if !s.sc.fastReads {
		tx.Dst = tx.Involved()
		return s.exec(tx)
	}
	ex, ok := s.sc.execs[tx.Home]
	if !ok {
		return nil, fmt.Errorf("flexcast: unknown warehouse %d", tx.Home)
	}
	s.mu.Lock()
	barrier := s.barrier.Prefix(tx.Home)
	turn := s.rr
	s.rr++
	s.mu.Unlock()

	var res store.ReadResult
	var err error
	var replica int32
	if reps := s.sc.replicas[tx.Home]; len(reps) > 0 {
		rep := reps[turn%uint64(len(reps))]
		res, err = rep.Read(tx, barrier, s.sc.timeout)
		replica = rep.Idx()
		if errors.Is(err, store.ErrLeaseExpired) {
			// The follower's lease lapsed (idle warehouse, stalled log):
			// fall back to the serving node, which needs no lease.
			res, err = ex.Read(tx, barrier, s.sc.timeout)
			replica = 0
		}
	} else {
		res, err = ex.Read(tx, barrier, s.sc.timeout)
	}
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.barrier.Fold(tx.Home, res.Watermark)
	s.mu.Unlock()
	return &TxResult{
		Committed: true,
		Results:   map[GroupID]uint8{tx.Home: amcast.ResultCommitted},
		FastPath:  true,
		Value:     res.Value,
		Replica:   replica,
	}, nil
}
