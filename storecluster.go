package flexcast

import (
	"fmt"
	"sort"
	"time"

	"flexcast/amcast"
	"flexcast/internal/gtpcc"
	"flexcast/internal/store"
)

// StoreClusterConfig configures an executing cluster: a Cluster (the
// batched in-process runtime) whose groups each own one warehouse shard
// of the partitioned gTPC-C database (internal/store).
type StoreClusterConfig struct {
	// Protocol selects the multicast protocol (default ProtocolFlexCast).
	Protocol ProtocolKind
	// Warehouses is the number of warehouse groups; when Overlay/Tree
	// are unset a chain overlay (or a star tree for the hierarchical
	// protocol) over groups 1..Warehouses is built (default 4).
	Warehouses int
	// Overlay overrides the generated overlay (FlexCast, Skeen).
	Overlay *Overlay
	// Tree overrides the generated tree (hierarchical).
	Tree *Tree
	// Items and Customers size each warehouse's tables (defaults: the
	// gTPC-C generator's table sizes).
	Items     int
	Customers int
	// StoreSeed drives the deterministic initial population (default 1).
	StoreSeed int64
	// MaxBatch, FlushInterval and CallTimeout pass through to the
	// underlying ClusterConfig.
	MaxBatch      int
	FlushInterval time.Duration
	CallTimeout   time.Duration
}

// OrderLine is one item of a NewOrder call: Qty units of Item supplied
// by warehouse Supply.
type OrderLine struct {
	Item   int
	Supply GroupID
	Qty    int
}

// TxResult is the outcome of one executed transaction.
type TxResult struct {
	// ID is the transaction's multicast message id.
	ID MsgID
	// Committed reports the verdict (all involved warehouses agree; a
	// disagreement fails the call instead).
	Committed bool
	// Results maps each involved warehouse to its reply's result code.
	Results map[GroupID]uint8
}

// StoreCluster is an in-process deployment of the partially replicated
// gTPC-C store over atomic multicast: every transaction is multicast to
// the warehouses it involves, delivered in a cross-group serializable
// order, and executed deterministically at each involved shard. It is
// the executable-workload counterpart of Cluster.
type StoreCluster struct {
	c         *Cluster
	execs     map[GroupID]*store.Executor
	items     int
	customers int
}

// NewStoreCluster builds and starts an executing cluster.
func NewStoreCluster(cfg StoreClusterConfig) (*StoreCluster, error) {
	if cfg.Protocol == 0 {
		cfg.Protocol = ProtocolFlexCast
	}
	if cfg.Warehouses == 0 {
		cfg.Warehouses = 4
	}
	ccfg := ClusterConfig{
		Protocol:      cfg.Protocol,
		Overlay:       cfg.Overlay,
		Tree:          cfg.Tree,
		MaxBatch:      cfg.MaxBatch,
		FlushInterval: cfg.FlushInterval,
		CallTimeout:   cfg.CallTimeout,
	}
	if ccfg.Overlay == nil && ccfg.Tree == nil {
		groups := make([]GroupID, cfg.Warehouses)
		for i := range groups {
			groups[i] = GroupID(i + 1)
		}
		if cfg.Protocol == ProtocolHierarchical {
			tree, err := NewTree(groups[0], map[GroupID][]GroupID{groups[0]: groups[1:]})
			if err != nil {
				return nil, err
			}
			ccfg.Tree = tree
		} else {
			ov, err := NewOverlay(groups)
			if err != nil {
				return nil, err
			}
			ccfg.Overlay = ov
		}
	}

	if cfg.Items == 0 {
		cfg.Items = gtpcc.NumItems
	}
	if cfg.Customers == 0 {
		cfg.Customers = gtpcc.NumCustomers
	}
	sc := &StoreCluster{
		execs:     make(map[GroupID]*store.Executor),
		items:     cfg.Items,
		customers: cfg.Customers,
	}
	ccfg.WrapEngine = func(g GroupID, eng Engine) (Engine, error) {
		se, ok := eng.(amcast.SnapshotEngine)
		if !ok {
			return nil, fmt.Errorf("flexcast: %s engine does not support snapshots", cfg.Protocol)
		}
		ex, err := store.NewExecutor(se, store.Config{
			Warehouse: g,
			Items:     cfg.Items,
			Customers: cfg.Customers,
			Seed:      cfg.StoreSeed,
		}, true)
		if err != nil {
			return nil, err
		}
		sc.execs[g] = ex
		return ex, nil
	}
	c, err := NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	sc.c = c
	return sc, nil
}

// Warehouses returns the cluster's warehouse groups.
func (sc *StoreCluster) Warehouses() []GroupID { return sc.c.Groups() }

// checkCustomer validates a customer index against the table size.
func (sc *StoreCluster) checkCustomer(customer int) error {
	if customer < 0 || customer >= sc.customers {
		return fmt.Errorf("flexcast: customer %d outside [0,%d)", customer, sc.customers)
	}
	return nil
}

// exec multicasts one transaction and folds the per-warehouse verdicts.
func (sc *StoreCluster) exec(tx gtpcc.Tx) (*TxResult, error) {
	id, results, err := sc.c.CallResults(tx.Involved(), gtpcc.EncodeTx(tx))
	if err != nil {
		return nil, err
	}
	res := &TxResult{ID: id, Results: results}
	first := uint8(0)
	groups := make([]GroupID, 0, len(results))
	for g := range results {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for i, g := range groups {
		code := results[g]
		if code == amcast.ResultNone {
			return nil, fmt.Errorf("flexcast: warehouse %d did not execute tx %s", g, id)
		}
		if i == 0 {
			first = code
			continue
		}
		if code != first {
			return nil, fmt.Errorf("flexcast: tx %s verdicts diverge across warehouses: %v", id, results)
		}
	}
	res.Committed = first == amcast.ResultCommitted
	return res, nil
}

// NewOrder executes a TPC-C new-order for a customer of the home
// warehouse; order lines may be supplied by remote warehouses, making
// the transaction multi-shard.
func (sc *StoreCluster) NewOrder(home GroupID, customer int, lines []OrderLine) (*TxResult, error) {
	if len(lines) == 0 {
		return nil, fmt.Errorf("flexcast: new-order needs at least one order line")
	}
	if err := sc.checkCustomer(customer); err != nil {
		return nil, err
	}
	for _, l := range lines {
		if l.Item < 0 || l.Item >= sc.items {
			return nil, fmt.Errorf("flexcast: item %d outside [0,%d)", l.Item, sc.items)
		}
		if l.Qty < 0 {
			return nil, fmt.Errorf("flexcast: negative quantity %d", l.Qty)
		}
	}
	tx := gtpcc.Tx{
		Type:        gtpcc.NewOrder,
		Home:        home,
		Customer:    int32(customer),
		Items:       len(lines),
		PayloadSize: 64 + 12*len(lines),
	}
	for _, l := range lines {
		supply := l.Supply
		if supply == amcast.NoGroup {
			supply = home
		}
		qty := l.Qty
		if qty <= 0 {
			qty = 1
		}
		tx.Lines = append(tx.Lines, gtpcc.OrderLine{
			Item: int32(l.Item), Supply: supply, Qty: int32(qty),
		})
	}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// Payment executes a TPC-C payment: the home warehouse banks amount,
// the customer's warehouse debits the customer (multi-shard when they
// differ).
func (sc *StoreCluster) Payment(home, customerWarehouse GroupID, customer int, amount int64) (*TxResult, error) {
	if amount <= 0 {
		return nil, fmt.Errorf("flexcast: payment amount must be positive")
	}
	if err := sc.checkCustomer(customer); err != nil {
		return nil, err
	}
	if customerWarehouse == amcast.NoGroup {
		customerWarehouse = home
	}
	tx := gtpcc.Tx{
		Type:          gtpcc.Payment,
		Home:          home,
		Customer:      int32(customer),
		CustWarehouse: customerWarehouse,
		Amount:        amount,
		PayloadSize:   48,
	}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// OrderStatus executes the read-only order-status transaction at one
// warehouse (single-shard, still ordered through the multicast).
func (sc *StoreCluster) OrderStatus(warehouse GroupID, customer int) (*TxResult, error) {
	if err := sc.checkCustomer(customer); err != nil {
		return nil, err
	}
	tx := gtpcc.Tx{
		Type: gtpcc.OrderStatus, Home: warehouse,
		Customer: int32(customer), PayloadSize: 40,
	}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// DeliverOrders executes the delivery transaction at one warehouse,
// popping its oldest undelivered orders.
func (sc *StoreCluster) DeliverOrders(warehouse GroupID) (*TxResult, error) {
	tx := gtpcc.Tx{Type: gtpcc.Delivery, Home: warehouse, PayloadSize: 40}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// StockLevel executes the read-only stock-level transaction at one
// warehouse.
func (sc *StoreCluster) StockLevel(warehouse GroupID, threshold int) (*TxResult, error) {
	tx := gtpcc.Tx{
		Type: gtpcc.StockLevel, Home: warehouse,
		Threshold: int32(threshold), PayloadSize: 40,
	}
	tx.Dst = tx.Involved()
	return sc.exec(tx)
}

// Digest returns a warehouse shard's state digest — the witness that
// replicas (and independent runs with the same delivery order) hold
// byte-identical state. Quiesce the cluster (no in-flight Calls) before
// reading digests.
func (sc *StoreCluster) Digest(warehouse GroupID) ([32]byte, error) {
	ex, ok := sc.execs[warehouse]
	if !ok {
		return [32]byte{}, fmt.Errorf("flexcast: unknown warehouse %d", warehouse)
	}
	return ex.Digest(), nil
}

// CheckInvariants audits the quiesced store: per-shard conservation,
// the cross-shard payment and order-line conservation laws, and the
// byte-identity of each shard's mirror replica.
func (sc *StoreCluster) CheckInvariants() error {
	shards := make([]*store.Shard, 0, len(sc.execs))
	for _, g := range sc.c.Groups() {
		ex := sc.execs[g]
		if err := ex.CheckMirror(); err != nil {
			return err
		}
		shards = append(shards, ex.Shard())
	}
	return store.CheckInvariants(shards)
}

// Close stops the underlying cluster.
func (sc *StoreCluster) Close() { sc.c.Close() }
