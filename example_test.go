package flexcast_test

import (
	"fmt"
	"sort"
	"sync"

	"flexcast"
)

// ExampleCluster demonstrates the basic embed-in-your-application flow:
// build an overlay, start a cluster, multicast, observe ordered
// deliveries.
func ExampleCluster() {
	ov, err := flexcast.NewOverlay([]flexcast.GroupID{1, 2, 3})
	if err != nil {
		panic(err)
	}
	var mu sync.Mutex
	delivered := make(map[flexcast.GroupID][]string)
	cluster, err := flexcast.NewCluster(flexcast.ClusterConfig{
		Overlay: ov,
		OnDeliver: func(d flexcast.Delivery) {
			mu.Lock()
			delivered[d.Group] = append(delivered[d.Group], string(d.Msg.Payload))
			mu.Unlock()
		},
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	// Call blocks until every destination delivered.
	if _, err := cluster.Call([]flexcast.GroupID{1, 3}, []byte("alpha")); err != nil {
		panic(err)
	}
	if _, err := cluster.Call([]flexcast.GroupID{1, 2, 3}, []byte("beta")); err != nil {
		panic(err)
	}

	mu.Lock()
	defer mu.Unlock()
	groups := make([]flexcast.GroupID, 0, len(delivered))
	for g := range delivered {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for _, g := range groups {
		fmt.Printf("group %d: %v\n", g, delivered[g])
	}
	// Output:
	// group 1: [alpha beta]
	// group 2: [beta]
	// group 3: [alpha beta]
}

// ExampleNewOverlay shows lca computation on a C-DAG overlay — the group
// a client must contact to multicast.
func ExampleNewOverlay() {
	// The paper's O1 rank order, restricted to four groups: rank grows
	// left to right, so 8 is everyone's potential ancestor.
	ov, err := flexcast.NewOverlay([]flexcast.GroupID{8, 7, 6, 5})
	if err != nil {
		panic(err)
	}
	fmt.Println(ov.Lca([]flexcast.GroupID{6, 5}))
	fmt.Println(ov.Lca([]flexcast.GroupID{5, 7, 6}))
	fmt.Println(ov.Rank(8), ov.Rank(5))
	// Output:
	// 6
	// 7
	// 0 3
}

// ExampleGreedyChain reproduces the paper's overlay-construction rule:
// start somewhere and repeatedly hop to the nearest unvisited group.
func ExampleGreedyChain() {
	// Distances on a line: 1 - 2 - 3 - 4.
	dist := func(a, b flexcast.GroupID) int64 {
		d := int64(a) - int64(b)
		if d < 0 {
			d = -d
		}
		return d
	}
	chain, err := flexcast.GreedyChain(2, []flexcast.GroupID{1, 2, 3, 4}, dist)
	if err != nil {
		panic(err)
	}
	fmt.Println(chain)
	// Output:
	// [2 1 3 4]
}
