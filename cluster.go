package flexcast

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/durable"
	"flexcast/internal/hierarchical"
	"flexcast/internal/runtime"
	"flexcast/internal/skeen"
	"flexcast/internal/transport"
)

// ProtocolKind selects which multicast protocol a Cluster runs.
type ProtocolKind int

const (
	// ProtocolFlexCast runs the paper's protocol on a C-DAG overlay.
	ProtocolFlexCast ProtocolKind = iota + 1
	// ProtocolSkeen runs the distributed genuine baseline.
	ProtocolSkeen
	// ProtocolHierarchical runs the tree-overlay baseline.
	ProtocolHierarchical
)

// String names the protocol.
func (p ProtocolKind) String() string {
	switch p {
	case ProtocolFlexCast:
		return "flexcast"
	case ProtocolSkeen:
		return "skeen"
	case ProtocolHierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("ProtocolKind(%d)", int(p))
	}
}

// ClusterConfig configures an in-process cluster.
type ClusterConfig struct {
	// Protocol selects the multicast protocol (default ProtocolFlexCast).
	Protocol ProtocolKind
	// Overlay is required for ProtocolFlexCast; its order defines the
	// group set for every protocol unless Tree is set.
	Overlay *Overlay
	// Tree is required for ProtocolHierarchical.
	Tree *Tree
	// OnDeliver observes every delivery at every group. Calls are
	// serialized per group but concurrent across groups; the callback
	// must be safe for concurrent use.
	OnDeliver func(d Delivery)
	// CallTimeout bounds Call (default 10s).
	CallTimeout time.Duration
	// MaxBatch caps the runtime's envelope batches (internal/runtime):
	// inbound coalescing and per-destination output batching. 0 takes
	// the runtime default (64); 1 disables batching. Batching never
	// delays an idle cluster — batches form only when queues have depth.
	MaxBatch int
	// FlushInterval bounds the latency a partially filled batch may add
	// under sustained load (0 takes the runtime default, 500µs).
	FlushInterval time.Duration
	// WrapEngine, when non-nil, wraps each group's protocol engine
	// before it is attached to the runtime — the hook execution layers
	// (StoreCluster) use to run a state machine over deliveries without
	// the cluster knowing about application state.
	WrapEngine func(g GroupID, eng Engine) (Engine, error)
	// Durable, when non-nil, selects the durable persistence backend:
	// each group's (wrapped) engine runs behind a write-ahead log plus
	// periodic snapshot files (internal/durable) rooted under
	// Durable.Dir, and a restarted cluster pointed at the same directory
	// recovers each group's state before serving. nil keeps the default
	// in-memory backend, byte-for-byte unchanged.
	Durable *DurableConfig
}

// DurableConfig configures the durable persistence backend
// (ClusterConfig.Durable / StoreClusterConfig.Durable).
type DurableConfig struct {
	// Dir is the persistence root; each group persists into
	// Dir/group-<id>. Required.
	Dir string
	// SnapshotEvery snapshots and rotates each group's WAL every N input
	// envelopes (default 256; <0 disables snapshots — the WAL then grows
	// unbounded and recovery replays it all).
	SnapshotEvery int
	// FsyncEvery fsyncs each WAL every N appends (default 64; 1 fsyncs
	// every append, <0 never fsyncs — kill -9 durability only).
	FsyncEvery int
	// KeepEpochs retains superseded WAL/snapshot files instead of
	// deleting them.
	KeepEpochs bool
	// Decode rebuilds one group's engine snapshot from its binary form.
	// nil takes the cluster's protocol decoder; layers that wrap engines
	// (StoreCluster) install their composed decoder automatically.
	Decode func(g GroupID, data []byte) (amcast.Snapshot, error)
}

// DurableRecovery reports how one group's durable engine recovered at
// cluster start (zero-valued when the directory was empty).
type DurableRecovery struct {
	// Group identifies the recovered group.
	Group GroupID
	// Recovered is true when prior state (snapshot or WAL) was found.
	Recovered bool
	// SnapshotEpoch is the restored snapshot's epoch (0: none).
	SnapshotEpoch uint64
	// ReplayedRecords counts the WAL records replayed on top.
	ReplayedRecords int
	// ReplayedEnvelopes counts the envelopes inside those records — the
	// recovery bound: with snapshots on, it is bounded by the snapshot
	// cadence, not the run length.
	ReplayedEnvelopes int
	// TornTailBytes is the length of the discarded torn WAL tail.
	TornTailBytes int64
	// Elapsed is the wall-clock recovery time (restore + replay).
	Elapsed time.Duration
}

// Cluster is an in-process deployment of one multicast protocol: one
// batched runtime node per group over the in-memory transport
// (internal/runtime), plus a built-in client for Multicast/Call. It is
// the easiest way to embed atomic multicast in an application or test.
type Cluster struct {
	cfg      ClusterConfig
	groups   []GroupID
	net      *transport.InMemNet
	nodes    []*runtime.Node
	durables map[GroupID]*durable.Engine
	// clientSeq persists the built-in client's sequence reservation on
	// durable clusters: message ids must stay unique across cluster
	// incarnations, or a reopened cluster would reissue ids its recovered
	// engines already delivered — and the engines would deduplicate the
	// new requests instead of ordering them. nil on in-memory clusters.
	clientSeq *durable.SeqFile

	mu      sync.Mutex
	seq     uint64
	waiters map[MsgID]*callWaiter
	// observed is the delivered prefix this client has witnessed per
	// group — the consistency barrier of the local-read fast path
	// (StoreCluster): a read at barrier observed[g] sees every delivery
	// whose reply the client has already received. Guarded by mu.
	observed amcast.PrefixTracker
	closed   bool
}

type callWaiter struct {
	remaining map[GroupID]bool
	// results collects each destination group's execution result code
	// from its reply (amcast.ResultNone for pure-multicast clusters).
	results map[GroupID]uint8
	// observed folds this call's replies alone — the per-call barrier
	// delta a Session merges into its own vector (the cluster-wide
	// tracker c.observed is too coarse for sessions: it advances with
	// every caller's traffic, not just this session's observations).
	observed amcast.PrefixTracker
	done     chan struct{}
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Protocol == 0 {
		cfg.Protocol = ProtocolFlexCast
	}
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	var groups []GroupID
	switch cfg.Protocol {
	case ProtocolFlexCast, ProtocolSkeen:
		if cfg.Overlay == nil {
			return nil, fmt.Errorf("flexcast: %s cluster requires an overlay", cfg.Protocol)
		}
		groups = cfg.Overlay.Groups()
	case ProtocolHierarchical:
		if cfg.Tree == nil {
			return nil, fmt.Errorf("flexcast: hierarchical cluster requires a tree")
		}
		groups = cfg.Tree.Groups()
	default:
		return nil, fmt.Errorf("flexcast: unknown protocol %d", cfg.Protocol)
	}

	c := &Cluster{
		cfg:      cfg,
		groups:   groups,
		net:      transport.NewInMemNet(),
		durables: make(map[GroupID]*durable.Engine),
		waiters:  make(map[MsgID]*callWaiter),
		observed: make(amcast.PrefixTracker),
	}
	if cfg.Durable != nil {
		if err := os.MkdirAll(cfg.Durable.Dir, 0o755); err != nil {
			return nil, err
		}
		sf, err := durable.OpenSeqFile(filepath.Join(cfg.Durable.Dir, "client.seq"), 0)
		if err != nil {
			return nil, err
		}
		c.clientSeq = sf
	}
	for _, g := range groups {
		eng, err := c.newEngine(g)
		if err != nil {
			c.Close()
			return nil, err
		}
		id := amcast.GroupNode(g)
		send := func(to NodeID, envs []Envelope) { c.net.SendBatch(id, to, envs) }
		node := runtime.NewNode(eng, send, runtime.Config{
			MaxBatch:      cfg.MaxBatch,
			FlushInterval: cfg.FlushInterval,
			OnDeliver: func(d Delivery) {
				if cfg.OnDeliver != nil {
					cfg.OnDeliver(d)
				}
			},
		})
		c.nodes = append(c.nodes, node)
		if err := c.net.AddBatchHandler(id, node.Submit); err != nil {
			c.Close()
			return nil, err
		}
	}
	if err := c.net.AddHandler(amcast.ClientNode(0), c.onClientEnvelope); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func (c *Cluster) newEngine(g GroupID) (Engine, error) {
	var eng Engine
	var err error
	switch c.cfg.Protocol {
	case ProtocolFlexCast:
		eng, err = NewFlexCastEngine(g, c.cfg.Overlay)
	case ProtocolSkeen:
		eng, err = NewSkeenEngine(g, c.groups)
	default:
		eng, err = NewHierarchicalEngine(g, c.cfg.Tree)
	}
	if err != nil {
		return nil, err
	}
	if c.cfg.WrapEngine != nil {
		if eng, err = c.cfg.WrapEngine(g, eng); err != nil {
			return nil, err
		}
	}
	if c.cfg.Durable != nil {
		// The durable layer wraps the fully composed engine (execution
		// layers included), so its WAL records the exact inputs of the
		// state its snapshots capture.
		return c.wrapDurable(g, eng)
	}
	return eng, nil
}

// wrapDurable puts one group's engine behind the durable backend,
// recovering any prior state from its directory.
func (c *Cluster) wrapDurable(g GroupID, eng Engine) (Engine, error) {
	d := c.cfg.Durable
	decode := d.Decode
	if decode == nil {
		proto := protocolSnapshotDecoder(c.cfg.Protocol)
		decode = func(_ GroupID, data []byte) (amcast.Snapshot, error) { return proto(data) }
	}
	se, ok := eng.(amcast.SnapshotEngine)
	if !ok {
		return nil, fmt.Errorf("flexcast: durable backend requires a snapshot-capable engine, got %T", eng)
	}
	de, err := durable.Wrap(se, durable.Options{
		Dir:           filepath.Join(d.Dir, fmt.Sprintf("group-%d", g)),
		SnapshotEvery: d.SnapshotEvery,
		FsyncEvery:    d.FsyncEvery,
		KeepEpochs:    d.KeepEpochs,
		Decode:        func(data []byte) (amcast.Snapshot, error) { return decode(g, data) },
	})
	if err != nil {
		return nil, err
	}
	c.durables[g] = de
	return de, nil
}

// protocolSnapshotDecoder returns the snapshot decoder of a protocol's
// bare engine.
func protocolSnapshotDecoder(p ProtocolKind) func([]byte) (amcast.Snapshot, error) {
	switch p {
	case ProtocolSkeen:
		return skeen.UnmarshalSnapshot
	case ProtocolHierarchical:
		return hierarchical.UnmarshalSnapshot
	default:
		return core.UnmarshalSnapshot
	}
}

// DurableRecoveries reports, per group, how the durable backend
// recovered at cluster start. Empty on in-memory clusters.
func (c *Cluster) DurableRecoveries() []DurableRecovery {
	var out []DurableRecovery
	for _, g := range c.groups {
		de, ok := c.durables[g]
		if !ok {
			continue
		}
		st := de.Recovery()
		out = append(out, DurableRecovery{
			Group:             g,
			Recovered:         st.Recovered,
			SnapshotEpoch:     st.SnapshotEpoch,
			ReplayedRecords:   st.ReplayedRecords,
			ReplayedEnvelopes: st.ReplayedEnvelopes,
			TornTailBytes:     st.TornTailBytes,
			Elapsed:           st.Elapsed,
		})
	}
	return out
}

// Groups returns the cluster's group set.
func (c *Cluster) Groups() []GroupID { return append([]GroupID(nil), c.groups...) }

// ObservedPrefix returns the delivered prefix the cluster's built-in
// client has observed at group g: one past the highest delivery
// sequence seen on a reply from g, raised further by any watermark a
// reply or read result piggybacked (amcast.PrefixTracker). It only
// grows, so it is a valid read-your-writes barrier for reads against g.
func (c *Cluster) ObservedPrefix(g GroupID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.observed.Prefix(g)
}

// observeRead folds a read result's serving watermark into the
// cluster-wide barrier, making successive reads monotonic even across
// different serving replicas.
func (c *Cluster) observeRead(g GroupID, watermark uint64) {
	c.mu.Lock()
	c.observed.Fold(g, watermark)
	c.mu.Unlock()
}

// Multicast sends payload to the destination groups and returns the
// message id without waiting for delivery. Deliveries surface through
// ClusterConfig.OnDeliver.
func (c *Cluster) Multicast(dst []GroupID, payload []byte) (MsgID, error) {
	m, err := c.send(dst, payload, nil)
	if err != nil {
		return 0, err
	}
	return m.ID, nil
}

// Call multicasts payload and blocks until every destination group has
// delivered (i.e. replied), or the timeout elapses.
func (c *Cluster) Call(dst []GroupID, payload []byte) (MsgID, error) {
	id, _, err := c.CallResults(dst, payload)
	return id, err
}

// CallResults is Call, additionally returning each destination group's
// execution result code from its reply (amcast.ResultCommitted /
// amcast.ResultAborted on executing clusters, amcast.ResultNone on
// pure-multicast ones).
func (c *Cluster) CallResults(dst []GroupID, payload []byte) (MsgID, map[GroupID]uint8, error) {
	id, results, _, err := c.callObserved(dst, payload)
	return id, results, err
}

// callObserved is CallResults, additionally returning the delivered
// prefixes this call's replies alone witnessed — the per-call barrier
// delta sessions (StoreCluster.Session) fold into their own vectors.
func (c *Cluster) callObserved(dst []GroupID, payload []byte) (MsgID, map[GroupID]uint8, amcast.PrefixTracker, error) {
	w := &callWaiter{
		remaining: make(map[GroupID]bool),
		results:   make(map[GroupID]uint8),
		observed:  make(amcast.PrefixTracker),
		done:      make(chan struct{}),
	}
	m, err := c.send(dst, payload, w)
	if err != nil {
		return 0, nil, nil, err
	}
	select {
	case <-w.done:
		c.mu.Lock()
		results, observed := w.results, w.observed
		c.mu.Unlock()
		return m.ID, results, observed, nil
	case <-time.After(c.cfg.CallTimeout):
		c.mu.Lock()
		delete(c.waiters, m.ID)
		c.mu.Unlock()
		return m.ID, nil, nil, fmt.Errorf("flexcast: call %s timed out after %v", m.ID, c.cfg.CallTimeout)
	}
}

func (c *Cluster) send(dst []GroupID, payload []byte, w *callWaiter) (Message, error) {
	norm := amcast.NormalizeDst(append([]GroupID(nil), dst...))
	if len(norm) == 0 {
		return Message{}, fmt.Errorf("flexcast: empty destination set")
	}
	for _, g := range norm {
		if !c.contains(g) {
			return Message{}, fmt.Errorf("flexcast: group %d not in cluster", g)
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Message{}, fmt.Errorf("flexcast: cluster closed")
	}
	if c.clientSeq != nil {
		seq, err := c.clientSeq.Next()
		if err != nil {
			c.mu.Unlock()
			return Message{}, fmt.Errorf("flexcast: reserving client sequence: %w", err)
		}
		c.seq = seq
	} else {
		c.seq++
	}
	m := Message{
		ID:      amcast.NewMsgID(0, c.seq),
		Sender:  amcast.ClientNode(0),
		Dst:     norm,
		Payload: append([]byte(nil), payload...),
	}
	if w != nil {
		for _, g := range norm {
			w.remaining[g] = true
		}
		c.waiters[m.ID] = w
	}
	c.mu.Unlock()

	for _, to := range c.entry(m) {
		c.net.Send(m.Sender, to, Envelope{Kind: amcast.KindRequest, From: m.Sender, Msg: m})
	}
	return m, nil
}

func (c *Cluster) contains(g GroupID) bool {
	for _, have := range c.groups {
		if have == g {
			return true
		}
	}
	return false
}

func (c *Cluster) entry(m Message) []NodeID {
	switch c.cfg.Protocol {
	case ProtocolFlexCast:
		return []NodeID{FlexCastEntry(c.cfg.Overlay, m)}
	case ProtocolHierarchical:
		return []NodeID{HierarchicalEntry(c.cfg.Tree, m)}
	default:
		return SkeenEntry(m)
	}
}

func (c *Cluster) onClientEnvelope(env Envelope) {
	if env.Kind != amcast.KindReply {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observed.Observe(env)
	w, ok := c.waiters[env.Msg.ID]
	if !ok {
		return
	}
	w.observed.Observe(env)
	if w.remaining[env.From.Group()] {
		w.results[env.From.Group()] = env.Result
	}
	delete(w.remaining, env.From.Group())
	if len(w.remaining) == 0 {
		delete(c.waiters, env.Msg.ID)
		close(w.done)
	}
}

// Close stops all group goroutines. Pending Calls fail by timeout.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.net.Close()
	for _, n := range c.nodes {
		n.Close()
	}
}
