package flexcast

import (
	"fmt"
	"time"

	"flexcast/amcast"
	"flexcast/internal/sim"
	"flexcast/internal/smr"
)

// ReplicatedClusterConfig configures a deterministic, simulated FlexCast
// deployment in which every group is replicated with Paxos-based state
// machine replication (paper §4.4). Because replication is driven by the
// discrete-event simulator, runs are perfectly reproducible and replica
// crashes can be injected at exact points.
type ReplicatedClusterConfig struct {
	// Overlay is the C-DAG overlay (required).
	Overlay *Overlay
	// ReplicasPerGroup is the replication degree (default 3, tolerating
	// one crash per group).
	ReplicasPerGroup int
	// InterRegionRTT is the round-trip time between groups (default
	// 100ms); replicas within a group are co-located.
	InterRegionRTT time.Duration
	// OnDeliver observes every delivery of every replica.
	OnDeliver func(replica int, d Delivery)
}

// ReplicatedCluster is a simulated deployment of Paxos-replicated
// FlexCast groups. Multicast enqueues messages; Run advances virtual
// time. All methods must be called from one goroutine.
type ReplicatedCluster struct {
	cfg    ReplicatedClusterConfig
	s      *sim.Simulator
	net    *sim.Network
	groups map[GroupID]*smr.Group
	seq    uint64
	// replied[id] counts distinct group replies, for WaitAll bookkeeping.
	replied map[MsgID]map[GroupID]bool
	dst     map[MsgID][]GroupID
}

// NewReplicatedCluster builds the deployment.
func NewReplicatedCluster(cfg ReplicatedClusterConfig) (*ReplicatedCluster, error) {
	if cfg.Overlay == nil {
		return nil, fmt.Errorf("flexcast: replicated cluster requires an overlay")
	}
	if cfg.ReplicasPerGroup == 0 {
		cfg.ReplicasPerGroup = 3
	}
	if cfg.InterRegionRTT == 0 {
		cfg.InterRegionRTT = 100 * time.Millisecond
	}
	c := &ReplicatedCluster{
		cfg:     cfg,
		s:       sim.New(),
		groups:  make(map[GroupID]*smr.Group),
		replied: make(map[MsgID]map[GroupID]bool),
		dst:     make(map[MsgID][]GroupID),
	}
	oneWay := sim.Time(cfg.InterRegionRTT.Microseconds() / 2)
	c.net = sim.NewNetwork(c.s, func(from, to NodeID) sim.Time { return oneWay })
	for _, g := range cfg.Overlay.Order() {
		g := g
		grp, err := smr.New(smr.Config{
			Group:    g,
			Replicas: cfg.ReplicasPerGroup,
			NewEngine: func() (Engine, error) {
				return NewFlexCastEngine(g, cfg.Overlay)
			},
			OnDeliver: func(rep int, d Delivery) {
				if cfg.OnDeliver != nil {
					cfg.OnDeliver(rep, d)
				}
			},
		}, c.s, c.net)
		if err != nil {
			return nil, err
		}
		c.groups[g] = grp
		grp.Start()
	}
	c.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(env Envelope) {
		if env.Kind != amcast.KindReply {
			return
		}
		m := c.replied[env.Msg.ID]
		if m == nil {
			m = make(map[GroupID]bool)
			c.replied[env.Msg.ID] = m
		}
		m[env.From.Group()] = true
	}))
	return c, nil
}

// Multicast enqueues a message to the destination groups; it is
// processed as Run advances virtual time.
func (c *ReplicatedCluster) Multicast(dst []GroupID, payload []byte) (MsgID, error) {
	norm := amcast.NormalizeDst(append([]GroupID(nil), dst...))
	if len(norm) == 0 {
		return 0, fmt.Errorf("flexcast: empty destination set")
	}
	for _, g := range norm {
		if _, ok := c.groups[g]; !ok {
			return 0, fmt.Errorf("flexcast: group %d not in cluster", g)
		}
	}
	c.seq++
	m := Message{
		ID:      amcast.NewMsgID(0, c.seq),
		Sender:  amcast.ClientNode(0),
		Dst:     norm,
		Payload: append([]byte(nil), payload...),
	}
	c.dst[m.ID] = norm
	c.net.Send(m.Sender, GroupNode(c.cfg.Overlay.Lca(norm)),
		Envelope{Kind: amcast.KindRequest, From: m.Sender, Msg: m})
	return m.ID, nil
}

// Run advances virtual time by d, processing protocol and replication
// traffic.
func (c *ReplicatedCluster) Run(d time.Duration) {
	c.s.RunFor(sim.Time(d.Microseconds()))
}

// Delivered reports whether every destination group has acknowledged
// delivery of the message.
func (c *ReplicatedCluster) Delivered(id MsgID) bool {
	dst, ok := c.dst[id]
	if !ok {
		return false
	}
	got := c.replied[id]
	for _, g := range dst {
		if !got[g] {
			return false
		}
	}
	return true
}

// CrashReplica kills one replica of a group. Paxos keeps the group
// available while a majority survives.
func (c *ReplicatedCluster) CrashReplica(g GroupID, idx int) error {
	grp, ok := c.groups[g]
	if !ok {
		return fmt.Errorf("flexcast: unknown group %d", g)
	}
	grp.Crash(idx)
	return nil
}

// Leader returns the index of group g's current Paxos leader, or -1 when
// no replica currently leads.
func (c *ReplicatedCluster) Leader(g GroupID) int {
	grp, ok := c.groups[g]
	if !ok {
		return -1
	}
	return grp.Leader()
}

// Now returns the current virtual time.
func (c *ReplicatedCluster) Now() time.Duration {
	return time.Duration(c.s.Now()) * time.Microsecond
}

// Close stops the replication tick loops.
func (c *ReplicatedCluster) Close() {
	for _, grp := range c.groups {
		grp.Stop()
	}
}
