package flexcast_test

import (
	"testing"
	"time"

	"flexcast"
)

// driveStore runs a small scripted workload: a cross-warehouse
// new-order, a remote payment, and the three local transaction types.
func driveStore(t *testing.T, sc *flexcast.StoreCluster) {
	t.Helper()
	res, err := sc.NewOrder(1, 3, []flexcast.OrderLine{
		{Item: 7, Qty: 2},            // home-supplied
		{Item: 9, Supply: 3, Qty: 4}, // remote warehouse 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || len(res.Results) != 2 {
		t.Fatalf("new-order result: %+v", res)
	}
	if res, err = sc.Payment(2, 4, 1, 350); err != nil {
		t.Fatal(err)
	} else if !res.Committed {
		t.Fatalf("payment result: %+v", res)
	}
	if res, err = sc.Payment(2, 2, 5, 99); err != nil || !res.Committed {
		t.Fatalf("local payment: %+v, %v", res, err)
	}
	if res, err = sc.OrderStatus(1, 3); err != nil || !res.Committed {
		t.Fatalf("order-status: %+v, %v", res, err)
	}
	if res, err = sc.DeliverOrders(1); err != nil || !res.Committed {
		t.Fatalf("delivery: %+v, %v", res, err)
	}
	if res, err = sc.StockLevel(3, 15); err != nil || !res.Committed {
		t.Fatalf("stock-level: %+v, %v", res, err)
	}
}

func TestStoreCluster(t *testing.T) {
	for _, proto := range []flexcast.ProtocolKind{
		flexcast.ProtocolFlexCast, flexcast.ProtocolSkeen, flexcast.ProtocolHierarchical,
	} {
		t.Run(proto.String(), func(t *testing.T) {
			sc, err := flexcast.NewStoreCluster(flexcast.StoreClusterConfig{
				Protocol: proto, Warehouses: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sc.Close()
			driveStore(t, sc)
			if err := sc.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStoreClusterDeterministicDigests runs the same scripted workload
// on two independent clusters: every warehouse must land on a
// byte-identical digest (the store is a deterministic state machine
// over the delivery order, which the scripted closed-loop workload
// fixes).
func TestStoreClusterDeterministicDigests(t *testing.T) {
	build := func() *flexcast.StoreCluster {
		sc, err := flexcast.NewStoreCluster(flexcast.StoreClusterConfig{Warehouses: 4})
		if err != nil {
			t.Fatal(err)
		}
		driveStore(t, sc)
		return sc
	}
	a, b := build(), build()
	defer a.Close()
	defer b.Close()
	for _, w := range a.Warehouses() {
		da, err := a.Digest(w)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Digest(w)
		if err != nil {
			t.Fatal(err)
		}
		if da != db {
			t.Fatalf("warehouse %d digests diverge across identical runs", w)
		}
	}
	if _, err := a.Digest(99); err == nil {
		t.Fatal("unknown warehouse accepted")
	}
}

// TestStoreClusterFastReads exercises the local-read fast path:
// read-only transactions bypass the multicast, carry result values, and
// observe the issuing client's own committed writes (the delivered-
// prefix barrier gives read-your-writes).
func TestStoreClusterFastReads(t *testing.T) {
	sc, err := flexcast.NewStoreCluster(flexcast.StoreClusterConfig{Warehouses: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	// A fresh customer has no orders.
	res, err := sc.OrderStatus(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FastPath || res.ID != 0 {
		t.Fatalf("order-status did not take the fast path: %+v", res)
	}
	if res.Value != -1 {
		t.Fatalf("fresh customer's last order = %d, want -1", res.Value)
	}

	// Commit a new-order, then read: the fast path must see it.
	if _, err := sc.NewOrder(2, 9, []flexcast.OrderLine{{Item: 1, Qty: 2}}); err != nil {
		t.Fatal(err)
	}
	if res, err = sc.OrderStatus(2, 9); err != nil {
		t.Fatal(err)
	}
	if !res.FastPath || res.Value != 0 {
		t.Fatalf("fast read after committed new-order = %+v, want order id 0", res)
	}

	// Stock-level reads report the scan's count on the fast path.
	if res, err = sc.StockLevel(2, 15); err != nil || !res.FastPath || !res.Committed {
		t.Fatalf("stock-level fast read: %+v, %v", res, err)
	}
	if res.Value < 0 {
		t.Fatalf("stock-level count = %d", res.Value)
	}

	// The multicast path remains available and equivalent in verdict.
	slow, err := flexcast.NewStoreCluster(flexcast.StoreClusterConfig{
		Warehouses: 4, DisableFastReads: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	if res, err = slow.OrderStatus(2, 9); err != nil || !res.Committed {
		t.Fatalf("multicast order-status: %+v, %v", res, err)
	}
	if res.FastPath || res.ID == 0 {
		t.Fatalf("DisableFastReads still took the fast path: %+v", res)
	}

	if err := sc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreClusterValidation(t *testing.T) {
	sc, err := flexcast.NewStoreCluster(flexcast.StoreClusterConfig{Warehouses: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.NewOrder(1, 0, nil); err == nil {
		t.Fatal("empty new-order accepted")
	}
	if _, err := sc.NewOrder(1, 0, []flexcast.OrderLine{{Item: -5, Qty: 1}}); err == nil {
		t.Fatal("negative item accepted")
	}
	if _, err := sc.NewOrder(1, -3, []flexcast.OrderLine{{Item: 1, Qty: 1}}); err == nil {
		t.Fatal("negative customer accepted")
	}
	if _, err := sc.Payment(1, 2, 1<<20, 5); err == nil {
		t.Fatal("out-of-range customer accepted")
	}
	if _, err := sc.OrderStatus(1, -1); err == nil {
		t.Fatal("negative order-status customer accepted")
	}
	if _, err := sc.Payment(1, 2, 0, 0); err == nil {
		t.Fatal("zero payment accepted")
	}
	if _, err := sc.Payment(1, 99, 0, 5); err == nil {
		t.Fatal("payment to unknown warehouse accepted")
	}
}

// TestSessionFollowerReads deploys follower read replicas and drives a
// session: a write the session completed must be visible to its next
// read (read-your-writes), the read must be served by a lease-holding
// follower at the follower's own watermark, and reads must stay
// monotonic as they round-robin across replicas.
func TestSessionFollowerReads(t *testing.T) {
	sc, err := flexcast.NewStoreCluster(flexcast.StoreClusterConfig{
		Warehouses:   3,
		ReadReplicas: 2,
		// Generous term: the wall-clock lease (renewed by the NewOrder
		// feed below) must survive the read loop even on a loaded CI
		// runner; lease *expiry* behavior is covered deterministically
		// in internal/store and internal/smr.
		LeaseTerm: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	s := sc.Session()
	res, err := s.NewOrder(1, 3, []flexcast.OrderLine{{Item: 7, Qty: 2}})
	if err != nil || !res.Committed {
		t.Fatalf("new-order: %+v, %v", res, err)
	}

	sawFollower := false
	var lastOrder int64 = -2
	for i := 0; i < 4; i++ {
		rd, err := s.OrderStatus(1, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !rd.FastPath {
			t.Fatalf("session read left the fast path: %+v", rd)
		}
		if rd.Value < 0 {
			t.Fatalf("read-your-writes broken: session's own order invisible (value %d, replica %d)",
				rd.Value, rd.Replica)
		}
		if lastOrder != -2 && rd.Value != lastOrder {
			t.Fatalf("non-monotonic session reads: %d then %d", lastOrder, rd.Value)
		}
		lastOrder = rd.Value
		if rd.Replica > 0 {
			sawFollower = true
		}
	}
	if !sawFollower {
		t.Fatal("no session read was served by a follower replica (all fell back to the serving node)")
	}

	// A second, independent session starts with an empty barrier but
	// still reads consistent state.
	s2 := sc.Session()
	if rd, err := s2.StockLevel(1, 15); err != nil || !rd.Committed {
		t.Fatalf("fresh session stock-level: %+v, %v", rd, err)
	}
	if err := sc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionDisabledFastReads keeps sessions usable on clusters that
// route reads through the multicast.
func TestSessionDisabledFastReads(t *testing.T) {
	sc, err := flexcast.NewStoreCluster(flexcast.StoreClusterConfig{
		Warehouses:       2,
		DisableFastReads: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	s := sc.Session()
	if res, err := s.Payment(1, 2, 4, 100); err != nil || !res.Committed {
		t.Fatalf("session payment: %+v, %v", res, err)
	}
	rd, err := s.OrderStatus(1, 4)
	if err != nil || !rd.Committed {
		t.Fatalf("multicast-routed session read: %+v, %v", rd, err)
	}
	if rd.FastPath {
		t.Fatal("DisableFastReads session read took the fast path")
	}
}
