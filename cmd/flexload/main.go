// Command flexload is the sustained-load benchmark of the batched node
// runtime (internal/runtime): it deploys all groups and client processes
// in one OS process over the in-memory or loopback-TCP transport, drives
// them with open- or closed-loop gTPC-C clients, and reports sustained
// throughput plus exact latency percentiles from the HDR-style histogram
// (internal/metrics). The JSON it emits (BENCH_runtime.json) is the
// repository's performance trajectory.
//
// Usage:
//
//	flexload                                   # closed loop, batching on, in-memory
//	flexload -batch 1                          # the unbatched baseline
//	flexload -compare -out BENCH_runtime.json  # batched vs -batch=1, with speedup
//	flexload -transport tcp -clients 8 -workers 16
//	flexload -rate 20000 -duration 10s         # open loop at 20k tx/s per client
//	flexload -validate BENCH_runtime.json      # schema/sanity check (CI)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flexcast/internal/codec"
	"flexcast/internal/loadgen"
	"flexcast/internal/telemetry"
)

func main() {
	// Every benchmark knob is a loadgen.Config field; AddFlags binds
	// them all with the struct's own defaults. Only command concerns
	// (output, A/B companions, telemetry) are declared here.
	cfgp := loadgen.AddFlags(flag.CommandLine)
	var (
		noPool     = flag.Bool("no-pool", false, "disable codec frame pooling (allocation A/B baseline)")
		telemetryF = flag.String("telemetry", "", "serve /metrics (JSON) and /debug/pprof on this address mid-run (e.g. 127.0.0.1:8090)")
		ab         = flag.Bool("ab", false, "also run the A/B companions: read mix off, frame pooling off, and tracing off (asserts tracing overhead <= 5%)")
		out        = flag.String("out", "", "write the JSON report to this file")
		compare    = flag.Bool("compare", false, "also run the -batch=1 baseline and report the speedup")
		validate   = flag.String("validate", "", "validate an existing report file and exit")
	)
	flag.Parse()

	if *validate != "" {
		rep, err := loadgen.ValidateFile(*validate)
		if err != nil {
			log.Fatalf("flexload: %v", err)
		}
		fmt.Printf("%s: valid (%s, %.0f tx/s, p99 %s)\n", *validate, rep.Schema,
			rep.Results.Throughput, time.Duration(rep.Results.Latency.P99)*time.Microsecond)
		return
	}

	cfg := *cfgp

	if *telemetryF != "" {
		srv, err := telemetry.Serve(*telemetryF, telemetry.Default)
		if err != nil {
			log.Fatalf("flexload: telemetry: %v", err)
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
	}

	codec.SetPooling(!*noPool)
	res, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatalf("flexload: %v", err)
	}
	printResult(fmt.Sprintf("%s/%s batch=%d read-pct=%.0f", cfg.Transport, cfg.Protocol, cfg.MaxBatch, cfg.ReadPct), res)
	rep := loadgen.NewReport(cfg, res)
	if rep.ReadWriteP50Ratio > 0 {
		fmt.Printf("write p50 / read p50: %.0fx\n", rep.ReadWriteP50Ratio)
	}

	if *compare {
		base := cfg
		base.MaxBatch = 1
		baseRes, err := loadgen.Run(base)
		if err != nil {
			log.Fatalf("flexload: baseline: %v", err)
		}
		printResult(fmt.Sprintf("%s/%s batch=1 (baseline)", cfg.Transport, cfg.Protocol), baseRes)
		rep.WithBaseline(baseRes)
		fmt.Printf("speedup vs unbatched: %.2fx\n", rep.SpeedupVsUnbatched)
	}

	if *ab {
		if cfg.FollowerReads {
			// The follower-reads A/B: identical replicated deployment and
			// write load, reads routed to the one serving node over the
			// transport instead of the clients' local lease-holding
			// replicas.
			leader := cfg
			leader.FollowerReads = false
			vres, err := loadgen.Run(leader)
			if err != nil {
				log.Fatalf("flexload: leader_reads variant: %v", err)
			}
			printResult(fmt.Sprintf("%s/%s batch=%d leader-reads (variant)", cfg.Transport, cfg.Protocol, cfg.MaxBatch), vres)
			rep.WithVariant("leader_reads", vres)
			if vres.ReadThroughput > 0 {
				fmt.Printf("follower-read speedup vs leader reads: %.2fx\n", res.ReadThroughput/vres.ReadThroughput)
			}
		}
		if cfg.Adaptive || cfg.Sessions > 0 {
			// The tail-latency A/B: identical deployment and offered load,
			// with the adaptive batching controller and per-session
			// admission replaced by the static operating point and the
			// legacy process-level outstanding cap. Overdriven, the static
			// side queues its excess (bufferbloat p99); the adaptive side
			// sheds it and keeps the in-flight population small.
			static := cfg
			static.Adaptive = false
			static.Sessions = 0
			vres, err := loadgen.Run(static)
			if err != nil {
				log.Fatalf("flexload: static variant: %v", err)
			}
			printResult(fmt.Sprintf("%s/%s batch=%d static (variant)", cfg.Transport, cfg.Protocol, cfg.MaxBatch), vres)
			rep.WithVariant("static", vres)
			if res.Latency.P99 > 0 {
				fmt.Printf("write p99 static/adaptive: %.2fx  (%dµs -> %dµs)\n",
					float64(vres.Latency.P99)/float64(res.Latency.P99), vres.Latency.P99, res.Latency.P99)
			}
			if res.SLO != nil && vres.SLO != nil && vres.SLO.Goodput > 0 {
				fmt.Printf("goodput adaptive/static: %.2fx  (%.0f vs %.0f tx/s at %.0fms)\n",
					res.SLO.Goodput/vres.SLO.Goodput, res.SLO.Goodput, vres.SLO.Goodput, res.SLO.TargetMs)
			}
		}
		if cfg.ReadPct > 0 {
			noReads := cfg
			noReads.ReadPct = 0
			noReads.ReadWorkers = 0
			if cfg.Rate > 0 {
				// Hold the write offered-load constant: the primary run
				// offers Rate×(1−ReadPct/100) writes per second, so with
				// the read mix off the same write pressure needs a
				// proportionally lower rate — otherwise the variant
				// measures doubled overload, not the read path.
				noReads.Rate = cfg.Rate * float64(100-cfg.ReadPct) / 100
			}
			vres, err := loadgen.Run(noReads)
			if err != nil {
				log.Fatalf("flexload: no_reads variant: %v", err)
			}
			printResult(fmt.Sprintf("%s/%s batch=%d read-pct=0 (variant)", cfg.Transport, cfg.Protocol, cfg.MaxBatch), vres)
			rep.WithVariant("no_reads", vres)
		}
		if cfg.TraceSample > 0 {
			// The tracing A/B: identical run with the tracer disabled. The
			// unsampled hot path is one branch and one modulo, so sampled
			// tracing must stay within run-to-run noise; gate at 5%.
			noTrace := cfg
			noTrace.TraceSample = -1
			vres, err := loadgen.Run(noTrace)
			if err != nil {
				log.Fatalf("flexload: no_trace variant: %v", err)
			}
			printResult(fmt.Sprintf("%s/%s batch=%d trace off (variant)", cfg.Transport, cfg.Protocol, cfg.MaxBatch), vres)
			rep.WithVariant("no_trace", vres)
			if vres.Throughput > 0 {
				overhead := 1 - res.Throughput/vres.Throughput
				fmt.Printf("tracing overhead (1/%d sampling): %.1f%%\n", cfg.TraceSample, overhead*100)
				if overhead > 0.05 {
					log.Fatalf("flexload: tracing overhead %.1f%% exceeds the 5%% budget (traced %.0f tx/s vs untraced %.0f tx/s)",
						overhead*100, res.Throughput, vres.Throughput)
				}
			}
		}
		// The frame pool is only in the TCP path (the in-memory transport
		// never touches the codec), so the pooling A/B always runs over
		// TCP — an inmem no_pool "variant" would measure nothing but run
		// noise.
		poolCfg := cfg
		poolCfg.Transport = "tcp"
		if cfg.Rate > 0 {
			// Pooling overhead is a peak-throughput question. Under an
			// open-loop overload the TCP deployment's lower capacity
			// would turn this variant into a shedding measurement, so
			// the pooling A/B always runs closed loop — the frame pool
			// sits on the hot path either way.
			poolCfg.Rate = 0
			poolCfg.Sessions = 0
			poolCfg.SessionOutstanding = 0
			poolCfg.SessionBurst = 0
			poolCfg.SLOMs = 0
		}
		runPool := func(label string, on bool) {
			codec.SetPooling(on)
			vres, err := loadgen.Run(poolCfg)
			codec.SetPooling(!*noPool)
			if err != nil {
				log.Fatalf("flexload: %s variant: %v", label, err)
			}
			printResult(fmt.Sprintf("tcp/%s batch=%d %s (variant)", poolCfg.Protocol, poolCfg.MaxBatch, label), vres)
			rep.WithVariant(label, vres)
		}
		switch {
		case cfg.Transport == "tcp" && *noPool:
			// The primary run is the unpooled TCP measurement; the
			// variant supplies the pooled side of the A/B.
			runPool("pool", true)
		case cfg.Transport == "tcp":
			// The primary run is the pooled TCP measurement already.
			runPool("no_pool", false)
		default:
			runPool("tcp_pool", true)
			runPool("tcp_no_pool", false)
		}
	}

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			log.Fatalf("flexload: write %s: %v", *out, err)
		}
		if _, err := loadgen.ValidateFile(*out); err != nil {
			log.Fatalf("flexload: self-validation failed: %v", err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	_ = os.Stdout.Sync()
}

func printResult(label string, r *loadgen.Result) {
	l := r.Latency
	fmt.Printf("%-40s %10.0f tx/s  (completed %d in %.2fs)\n",
		label, r.Throughput, r.Completed, r.WindowSecs)
	fmt.Printf("  latency µs: p50 %d  p90 %d  p99 %d  p99.9 %d  max %d  mean %.0f\n",
		l.P50, l.P90, l.P99, l.P999, l.Max, l.Mean)
	if rl := r.ReadLatency; rl != nil {
		fmt.Printf("  fast reads: %d (%.0f/s, total %.0f tx/s)  latency µs: p50 %d  p99 %d  max %d  mean %.1f\n",
			r.Reads, r.ReadThroughput, r.TotalThroughput, rl.P50, rl.P99, rl.Max, rl.Mean)
		if len(r.ReadsPerReplica) > 0 {
			fmt.Printf("  reads by replica: %v  (remote %d, lease refusals %d)\n",
				r.ReadsPerReplica, r.RemoteReads, r.LeaseRefusals)
		}
	}
	fmt.Printf("  batching: %d envelopes in %d sends, avg %.1f/batch, largest %d\n",
		r.EnvelopesSent, r.BatchesSent, r.AvgBatch, r.LargestBatch)
	if s := r.SLO; s != nil {
		fmt.Printf("  slo: target %.0fms  goodput %.0f tx/s (%.1f%% of completions good)  shed %d (rate %.3f)\n",
			s.TargetMs, s.Goodput, 100*s.GoodFraction, r.Shed, s.ShedRate)
		if n := len(s.Trajectory); n > 0 {
			last := s.Trajectory[n-1]
			fmt.Printf("  controller: %d trajectory points, final batch %d / flush %dµs (queue %d)\n",
				n, last.Batch, last.FlushIntervalUs, last.QueueDepth)
		}
	}
	if st := r.Stages; st != nil {
		fmt.Printf("  stages (1 in %d sampled, %d records): e2e p50 %s  p99 %s\n",
			st.SampleEvery, st.Records, time.Duration(st.E2E.P50), time.Duration(st.E2E.P99))
		for _, sg := range st.Stages {
			fmt.Printf("    %-10s p50 %10s  p90 %10s  p99 %10s  max %10s  mean %10s\n",
				sg.Stage, time.Duration(sg.P50), time.Duration(sg.P90), time.Duration(sg.P99),
				time.Duration(sg.Max), time.Duration(sg.Mean))
		}
	}
	if d := r.Durable; d != nil {
		fmt.Printf("  durable: %d groups recovered (%d from snapshots), digests match, replay max %d envelopes (total %d), recovery mean %.0fµs max %dµs\n",
			d.Groups, d.SnapshottedGroups, d.MaxReplayedEnvelopes, d.ReplayedEnvelopes, d.RecoveryMeanUs, d.RecoveryMaxUs)
	}
	if ex := r.Execute; ex != nil {
		fmt.Printf("  execute: %d shards, %d applies, abort rate %.4f, invariants ok, digest %s…\n",
			ex.Shards, ex.TxApplied, ex.AbortRate, ex.GlobalDigest[:16])
		for _, typ := range []string{"new-order", "payment", "order-status", "delivery", "stock-level"} {
			st, ok := ex.PerType[typ]
			if !ok {
				continue
			}
			fmt.Printf("    %-13s committed %7d  aborted %5d  p50 %6dµs  p99 %7dµs\n",
				typ, st.Committed, st.Aborted, st.Latency.P50, st.Latency.P99)
		}
	}
}
