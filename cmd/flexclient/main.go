// Command flexclient drives a TCP deployment of flexnode processes with
// a closed-loop gTPC-C client and reports per-destination latency
// percentiles, mirroring the paper's measurement methodology (§5.3).
//
// Usage:
//
//	flexclient -client 0 -home 1 -protocol flexcast \
//	           -overlay 8,7,6,5,2,1,3,4,9,10,11,12 \
//	           -peers g1=...,g2=...,c0=:5000 -n 1000 -locality 0.95
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"flexcast"
	"flexcast/amcast"
	"flexcast/internal/gtpcc"
	"flexcast/internal/metrics"
	"flexcast/internal/transport"
	"flexcast/internal/wan"
)

func main() {
	var (
		clientIdx = flag.Int("client", 0, "client index (unique per client process)")
		home      = flag.Int("home", 1, "home warehouse/group id")
		protocol  = flag.String("protocol", "flexcast", "protocol: flexcast, skeen, hierarchical")
		overlayF  = flag.String("overlay", "", "comma-separated C-DAG rank order / group list")
		treeF     = flag.String("tree", "", "tree spec (hierarchical only; see flexnode -help)")
		peersF    = flag.String("peers", "", "comma-separated nodeid=host:port pairs")
		n         = flag.Int("n", 100, "number of transactions to issue")
		locality  = flag.Float64("locality", 0.95, "gTPC-C locality rate")
		seed      = flag.Int64("seed", 1, "random seed")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-transaction timeout")
	)
	flag.Parse()
	if err := run(*clientIdx, *home, *protocol, *overlayF, *treeF, *peersF, *n, *locality, *seed, *timeout); err != nil {
		log.Fatalf("flexclient: %v", err)
	}
}

func run(clientIdx, home int, protocol, overlayF, treeF, peersF string,
	n int, locality float64, seed int64, timeout time.Duration) error {
	book, err := parsePeers(peersF)
	if err != nil {
		return err
	}
	route, groups, err := buildRoute(protocol, overlayF, treeF)
	if err != nil {
		return err
	}
	homeG := flexcast.GroupID(home)
	gen, err := gtpcc.New(gtpcc.Config{
		Home:       homeG,
		Nearest:    nearestOf(homeG, groups),
		Locality:   locality,
		GlobalOnly: true,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}

	id := amcast.ClientNode(clientIdx)
	var (
		mu      sync.Mutex
		pending map[flexcast.GroupID]bool
		replies []time.Duration
		started time.Time
		doneCh  chan struct{}
	)
	node, err := transport.NewTCPNode(id, book, func(env flexcast.Envelope) {
		if env.Kind != amcast.KindReply {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if pending == nil || !pending[env.From.Group()] {
			return
		}
		delete(pending, env.From.Group())
		replies = append(replies, time.Since(started))
		if len(pending) == 0 {
			close(doneCh)
		}
	})
	if err != nil {
		return err
	}
	defer node.Close()

	// Per-destination latencies go into the exact-percentile histogram
	// (internal/metrics) — bounded memory however long the run.
	perDest := make([]*metrics.Histogram, 3)
	for i := range perDest {
		perDest[i] = metrics.NewHistogram()
	}
	completed := 0
	for i := 0; i < n; i++ {
		tx := gen.Next()
		m := flexcast.Message{
			ID:      amcast.NewMsgID(clientIdx, uint64(i+1)),
			Sender:  id,
			Dst:     tx.Dst,
			Payload: make([]byte, tx.PayloadSize),
		}
		mu.Lock()
		pending = make(map[flexcast.GroupID]bool, len(m.Dst))
		for _, g := range m.Dst {
			pending[g] = true
		}
		replies = replies[:0]
		started = time.Now()
		doneCh = make(chan struct{})
		done := doneCh
		mu.Unlock()

		for _, to := range route(m) {
			if err := node.Send(to, flexcast.Envelope{Kind: amcast.KindRequest, From: id, Msg: m}); err != nil {
				return fmt.Errorf("tx %d: %w", i, err)
			}
		}
		select {
		case <-done:
			mu.Lock()
			sort.Slice(replies, func(a, b int) bool { return replies[a] < replies[b] })
			for k, d := range replies {
				if k < 3 {
					perDest[k].Record(uint64(max(d.Microseconds(), 0)))
				}
			}
			mu.Unlock()
			completed++
		case <-time.After(timeout):
			return fmt.Errorf("tx %d (%s to %v) timed out", i, m.ID, m.Dst)
		}
	}

	fmt.Printf("client %d: %d/%d transactions completed\n", clientIdx, completed, n)
	fmt.Println("dest   90p      95p      99p   (ms)")
	for k, rec := range perDest {
		if rec.Count() == 0 {
			continue
		}
		fmt.Printf("%3d  %s\n", k+1, rec.PercentileRow(1000))
	}
	return nil
}

func buildRoute(protocol, overlayF, treeF string) (func(m flexcast.Message) []flexcast.NodeID, []flexcast.GroupID, error) {
	switch protocol {
	case "flexcast":
		order, err := parseGroups(overlayF)
		if err != nil {
			return nil, nil, err
		}
		ov, err := flexcast.NewOverlay(order)
		if err != nil {
			return nil, nil, err
		}
		return func(m flexcast.Message) []flexcast.NodeID {
			return []flexcast.NodeID{flexcast.FlexCastEntry(ov, m)}
		}, ov.Groups(), nil
	case "skeen":
		order, err := parseGroups(overlayF)
		if err != nil {
			return nil, nil, err
		}
		return flexcast.SkeenEntry, order, nil
	case "hierarchical":
		tree, err := parseTree(treeF)
		if err != nil {
			return nil, nil, err
		}
		return func(m flexcast.Message) []flexcast.NodeID {
			return []flexcast.NodeID{flexcast.HierarchicalEntry(tree, m)}
		}, tree.Groups(), nil
	default:
		return nil, nil, fmt.Errorf("unknown protocol %q", protocol)
	}
}

// nearestOf orders the other groups by WAN distance when the deployment
// uses the standard 12 regions, and by id otherwise.
func nearestOf(home flexcast.GroupID, groups []flexcast.GroupID) []flexcast.GroupID {
	if len(groups) == wan.NumRegions && int(home) >= 1 && int(home) <= wan.NumRegions {
		return wan.NearestOrder(home)
	}
	var out []flexcast.GroupID
	for _, g := range groups {
		if g != home {
			out = append(out, g)
		}
	}
	return out
}

// The flag grammars are shared with flexnode.

func parsePeers(s string) (transport.AddrBook, error) {
	book := make(transport.AddrBook)
	if s == "" {
		return nil, fmt.Errorf("missing -peers")
	}
	for _, pair := range strings.Split(s, ",") {
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer %q", pair)
		}
		id, err := parseNodeID(kv[0])
		if err != nil {
			return nil, err
		}
		book[id] = kv[1]
	}
	return book, nil
}

func parseNodeID(s string) (flexcast.NodeID, error) {
	if len(s) < 2 {
		return 0, fmt.Errorf("bad node id %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("bad node id %q: %w", s, err)
	}
	switch s[0] {
	case 'g':
		return amcast.GroupNode(flexcast.GroupID(n)), nil
	case 'c':
		return amcast.ClientNode(n), nil
	default:
		return 0, fmt.Errorf("bad node id %q (want gN or cN)", s)
	}
}

func parseGroups(s string) ([]flexcast.GroupID, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -overlay")
	}
	var out []flexcast.GroupID
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad group %q: %w", part, err)
		}
		out = append(out, flexcast.GroupID(n))
	}
	return out, nil
}

func parseTree(s string) (*flexcast.Tree, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -tree")
	}
	head := strings.SplitN(s, ":", 2)
	if len(head) != 2 {
		return nil, fmt.Errorf("tree must be root:edges")
	}
	root, err := strconv.Atoi(head[0])
	if err != nil {
		return nil, fmt.Errorf("bad tree root %q: %w", head[0], err)
	}
	children := make(map[flexcast.GroupID][]flexcast.GroupID)
	for _, edge := range strings.Split(head[1], ",") {
		kv := strings.SplitN(edge, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad tree edge %q", edge)
		}
		p, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad tree parent %q: %w", kv[0], err)
		}
		for _, c := range strings.Split(kv[1], "|") {
			cn, err := strconv.Atoi(c)
			if err != nil {
				return nil, fmt.Errorf("bad tree child %q: %w", c, err)
			}
			children[flexcast.GroupID(p)] = append(children[flexcast.GroupID(p)], flexcast.GroupID(cn))
		}
	}
	return flexcast.NewTree(flexcast.GroupID(root), children)
}
