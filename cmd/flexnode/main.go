// Command flexnode runs one protocol group as a TCP server — one process
// per group, as in the paper's CloudLab deployment.
//
// Usage:
//
//	flexnode -group 2 -protocol flexcast -overlay 8,7,6,5,2,1,3,4,9,10,11,12 \
//	         -peers g1=host1:4001,g2=host2:4002,...,c0=client:5000
//
// The overlay flag gives the C-DAG rank order (FlexCast), the full group
// list (skeen), or is replaced by -tree for the hierarchical protocol.
// The peers flag must name every group (gN=addr) and every client
// (cN=addr) that will participate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flexcast"
	"flexcast/amcast"
	"flexcast/internal/runtime"
	"flexcast/internal/telemetry"
	"flexcast/internal/transport"
)

func main() {
	var (
		group    = flag.Int("group", 0, "this node's group id (1-based)")
		protocol = flag.String("protocol", "flexcast", "protocol: flexcast, skeen, hierarchical")
		overlayF = flag.String("overlay", "", "comma-separated C-DAG rank order / group list")
		treeF    = flag.String("tree", "", "tree as root:parent=child|child,parent=child (hierarchical only)")
		peersF   = flag.String("peers", "", "comma-separated nodeid=host:port pairs (g1=..., c0=...)")
		batch    = flag.Int("batch", 64, "max envelopes per runtime batch (1 disables batching)")
		flush    = flag.Duration("flush-interval", 500*time.Microsecond, "batch flush period")
		telem    = flag.String("telemetry", "", "serve /metrics (JSON) and /debug/pprof on this address (e.g. 127.0.0.1:8090)")
		verbose  = flag.Bool("v", false, "log every delivery")
	)
	flag.Parse()
	if err := run(*group, *protocol, *overlayF, *treeF, *peersF, *batch, *flush, *telem, *verbose); err != nil {
		log.Fatalf("flexnode: %v", err)
	}
}

func run(group int, protocol, overlayF, treeF, peersF string, batch int, flush time.Duration, telem string, verbose bool) error {
	if group <= 0 {
		return fmt.Errorf("missing -group")
	}
	g := flexcast.GroupID(group)
	book, err := parsePeers(peersF)
	if err != nil {
		return err
	}

	var eng flexcast.Engine
	switch protocol {
	case "flexcast":
		order, err := parseGroups(overlayF)
		if err != nil {
			return err
		}
		ov, err := flexcast.NewOverlay(order)
		if err != nil {
			return err
		}
		eng, err = flexcast.NewFlexCastEngine(g, ov)
		if err != nil {
			return err
		}
	case "skeen":
		order, err := parseGroups(overlayF)
		if err != nil {
			return err
		}
		eng, err = flexcast.NewSkeenEngine(g, order)
		if err != nil {
			return err
		}
	case "hierarchical":
		tree, err := parseTree(treeF)
		if err != nil {
			return err
		}
		eng, err = flexcast.NewHierarchicalEngine(g, tree)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown protocol %q", protocol)
	}

	onDeliver := func(d flexcast.Delivery) {
		if verbose {
			log.Printf("group %d delivered %s seq=%d dst=%v payload=%dB",
				d.Group, d.Msg.ID, d.Seq, d.Msg.Dst, len(d.Msg.Payload))
		}
	}
	// The batched node runtime over TCP: inbound frames (single or batch)
	// drain through the engine's batch fast path; outputs leave as batch
	// frames per destination. The listener starts accepting before the
	// TCPNode variable is assigned, so the send path gates on tcpReady —
	// a frame dispatched in that window parks until the assignment is
	// published.
	var (
		tcp      *transport.TCPNode
		tcpReady = make(chan struct{})
	)
	rt := runtime.NewNode(eng, func(to flexcast.NodeID, envs []flexcast.Envelope) {
		<-tcpReady
		if tcp == nil {
			return // listener never came up; the node is shutting down
		}
		// Peer unreachable: FIFO links are assumed reliable by the
		// protocols; the send path retries dialing, so this only
		// triggers on shutdown.
		_ = tcp.SendBatch(to, envs)
	}, runtime.Config{MaxBatch: batch, FlushInterval: flush, OnDeliver: onDeliver})
	tcp, err = transport.NewTCPBatchNode(amcast.GroupNode(g), book, rt.Submit)
	if err != nil {
		close(tcpReady) // unblock the worker so Close can drain
		rt.Close()
		return err
	}
	close(tcpReady)
	defer func() {
		tcp.Close()
		rt.Close()
	}()
	log.Printf("flexnode: group %d (%s) listening on %s (batch=%d)", group, protocol, tcp.Addr(), batch)

	if telem != "" {
		reg := telemetry.Default
		reg.RegisterGauge("queue_depth", func() float64 { return float64(rt.QueueLen()) })
		reg.RegisterCounter("backpressure_stalls", func() uint64 { s, _ := rt.Backpressure(); return s })
		reg.RegisterCounter("backpressure_stall_ns", func() uint64 { _, ns := rt.Backpressure(); return ns })
		reg.RegisterCounter("batch_size_flushes", func() uint64 { return rt.Stats().SizeFlushes })
		reg.RegisterCounter("batch_chunk_flushes", func() uint64 { return rt.Stats().ChunkFlushes })
		reg.RegisterCounter("batch_timer_flushes", func() uint64 { return rt.Stats().TimerFlushes })
		reg.RegisterGauge("batch_avg", func() float64 { return rt.Stats().AvgBatch() })
		srv, err := telemetry.Serve(telem, reg)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		defer srv.Close()
		log.Printf("flexnode: telemetry on http://%s/metrics (pprof under /debug/pprof/)", srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("flexnode: shutting down")
	return nil
}

// parsePeers parses "g1=host:port,c0=host:port,...".
func parsePeers(s string) (transport.AddrBook, error) {
	book := make(transport.AddrBook)
	if s == "" {
		return nil, fmt.Errorf("missing -peers")
	}
	for _, pair := range strings.Split(s, ",") {
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer %q", pair)
		}
		id, err := parseNodeID(kv[0])
		if err != nil {
			return nil, err
		}
		book[id] = kv[1]
	}
	return book, nil
}

func parseNodeID(s string) (flexcast.NodeID, error) {
	if len(s) < 2 {
		return 0, fmt.Errorf("bad node id %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("bad node id %q: %w", s, err)
	}
	switch s[0] {
	case 'g':
		return amcast.GroupNode(flexcast.GroupID(n)), nil
	case 'c':
		return amcast.ClientNode(n), nil
	default:
		return 0, fmt.Errorf("bad node id %q (want gN or cN)", s)
	}
}

func parseGroups(s string) ([]flexcast.GroupID, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -overlay")
	}
	var out []flexcast.GroupID
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad group %q: %w", part, err)
		}
		out = append(out, flexcast.GroupID(n))
	}
	return out, nil
}

// parseTree parses "root:parent=c1|c2,parent=c3", e.g.
// "8:8=7|5|9,7=6,5=1|2|3|4,9=10|11|12".
func parseTree(s string) (*flexcast.Tree, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -tree")
	}
	head := strings.SplitN(s, ":", 2)
	if len(head) != 2 {
		return nil, fmt.Errorf("tree must be root:edges")
	}
	root, err := strconv.Atoi(head[0])
	if err != nil {
		return nil, fmt.Errorf("bad tree root %q: %w", head[0], err)
	}
	children := make(map[flexcast.GroupID][]flexcast.GroupID)
	for _, edge := range strings.Split(head[1], ",") {
		kv := strings.SplitN(edge, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad tree edge %q", edge)
		}
		p, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad tree parent %q: %w", kv[0], err)
		}
		for _, c := range strings.Split(kv[1], "|") {
			n, err := strconv.Atoi(c)
			if err != nil {
				return nil, fmt.Errorf("bad tree child %q: %w", c, err)
			}
			children[flexcast.GroupID(p)] = append(children[flexcast.GroupID(p)], flexcast.GroupID(n))
		}
	}
	return flexcast.NewTree(flexcast.GroupID(root), children)
}
