// Command flexgrid is the paper-grade experiment grid runner: it
// expands experiments.json (axes × repeats) into cells, runs each
// cell in-process through internal/loadgen (plus the sim
// microbenchmark and soak kinds), and writes one raw JSON per run and
// an aggregated summary — per-cell medians, IQR noise bands, stage
// decompositions and fig5/fig6-style curve tables. On top sit the
// perf trajectory (-append-history folds the summary into
// BENCH_history.jsonl) and the CI regression gate (-compare fails
// when a tracked metric regresses beyond its noise band).
//
// Usage:
//
//	flexgrid -config experiments.json -out-dir bench/grid
//	flexgrid -config experiments.json -append-history BENCH_history.jsonl
//	flexgrid -config bench/experiments-ci.json -compare bench/grid-ci-baseline.json
//	flexgrid -load summary.json -compare baseline.json   # gate without re-running
//	flexgrid -validate summary.json
//	flexgrid -validate-history BENCH_history.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"

	"flexcast/internal/grid"
)

func main() {
	var (
		config     = flag.String("config", "experiments.json", "experiments grid to run")
		outDir     = flag.String("out-dir", "bench/grid", "directory for raw per-run JSON artifacts (empty disables)")
		out        = flag.String("out", "", "summary output path (default <out-dir>/summary.json; empty with empty -out-dir skips)")
		cellsF     = flag.String("cells", "", "run only cells whose name matches this regexp")
		loadF      = flag.String("load", "", "use an existing summary instead of running the grid")
		appendHist = flag.String("append-history", "", "fold the summary into this BENCH_history.jsonl")
		compare    = flag.String("compare", "", "gate the summary against this baseline summary; regressions exit non-zero")
		validate   = flag.String("validate", "", "validate a summary file and exit")
		valHist    = flag.String("validate-history", "", "validate a history file and exit")
	)
	flag.Parse()

	if *validate != "" {
		s, err := grid.LoadSummary(*validate)
		if err != nil {
			log.Fatalf("flexgrid: %v", err)
		}
		fmt.Printf("%s: valid (%s, %d cells, %d curves, commit %s)\n",
			*validate, s.Schema, len(s.Cells), len(s.Curves), s.Commit)
		return
	}
	if *valHist != "" {
		entries, err := grid.ReadHistory(*valHist)
		if err != nil {
			log.Fatalf("flexgrid: %v", err)
		}
		fmt.Printf("%s: valid (%d entries", *valHist, len(entries))
		if len(entries) > 0 {
			last := entries[len(entries)-1]
			fmt.Printf(", last %s @ %s, %d cells", last.Commit, last.Date, len(last.Cells))
		}
		fmt.Println(")")
		return
	}

	var summary *grid.Summary
	if *loadF != "" {
		s, err := grid.LoadSummary(*loadF)
		if err != nil {
			log.Fatalf("flexgrid: %v", err)
		}
		summary = s
	} else {
		spec, err := grid.LoadSpec(*config)
		if err != nil {
			log.Fatalf("flexgrid: %v", err)
		}
		opt := grid.Options{OutDir: *outDir, Log: os.Stdout, Spec: filepath.Base(*config)}
		if *cellsF != "" {
			re, err := regexp.Compile(*cellsF)
			if err != nil {
				log.Fatalf("flexgrid: -cells: %v", err)
			}
			opt.Filter = re
		}
		summary, err = grid.RunSpec(spec, opt)
		if err != nil {
			log.Fatalf("flexgrid: %v", err)
		}
		path := *out
		if path == "" && *outDir != "" {
			path = filepath.Join(*outDir, "summary.json")
		}
		if path != "" {
			if err := summary.WriteFile(path); err != nil {
				log.Fatalf("flexgrid: write %s: %v", path, err)
			}
			if _, err := grid.LoadSummary(path); err != nil {
				log.Fatalf("flexgrid: self-validation failed: %v", err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	if *appendHist != "" {
		if err := grid.AppendHistory(*appendHist, grid.HistoryFromSummary(summary)); err != nil {
			log.Fatalf("flexgrid: append history: %v", err)
		}
		if _, err := grid.ReadHistory(*appendHist); err != nil {
			log.Fatalf("flexgrid: history re-validation failed: %v", err)
		}
		fmt.Printf("appended %s (%d cells) to %s\n", summary.Commit, len(summary.Cells), *appendHist)
	}

	if *compare != "" {
		base, err := grid.LoadSummary(*compare)
		if err != nil {
			log.Fatalf("flexgrid: baseline: %v", err)
		}
		verdict := grid.Compare(base, summary)
		fmt.Print(verdict.Format())
		if !verdict.OK {
			os.Exit(1)
		}
	}
}
