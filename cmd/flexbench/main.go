// Command flexbench regenerates the tables and figures of the FlexCast
// paper's evaluation (Middleware 2023, §5) on the simulated 12-region
// WAN and prints them in the paper's format.
//
// Usage:
//
//	flexbench -experiment all            # everything, paper-scale (60 virtual s)
//	flexbench -experiment fig6 -scale 0.1
//	flexbench -list
//
// Experiments: fig1, fig5 (Table 2), fig6, fig7 (Table 3), fig8,
// fig9 (Table 4), all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"flexcast/internal/experiments"
)

// printer is the shared shape of all experiment results.
type printer interface {
	Print(w io.Writer)
}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("flexbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all", "which experiment to run: fig1, fig5, fig6, fig7, fig8, fig9, all")
		scale      = fs.Float64("scale", 1.0, "virtual-duration scale (1.0 = the paper's 60 s runs)")
		seed       = fs.Int64("seed", 1, "random seed")
		verify     = fs.Bool("verify", false, "record runs and check the atomic multicast properties (slower)")
		list       = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "fig1  Figure 1:  per-group overhead of hierarchical T1, 90% locality")
		fmt.Fprintln(stdout, "fig5  Figure 5 / Table 2: latency per destination across overlays")
		fmt.Fprintln(stdout, "fig6  Figure 6:  throughput vs number of clients, 99% locality")
		fmt.Fprintln(stdout, "fig7  Figure 7 / Table 3: latency per destination across localities")
		fmt.Fprintln(stdout, "fig8  Figure 8:  per-node message cost (histories)")
		fmt.Fprintln(stdout, "fig9  Figure 9 / Table 4: tree overhead across localities")
		fmt.Fprintln(stdout, "all   everything above")
		return 0
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed, Verify: *verify}
	runs := map[string]func() (printer, error){
		"fig1": func() (printer, error) { return experiments.Fig1(opts) },
		"fig5": func() (printer, error) { return experiments.Fig5Table2(opts) },
		"fig6": func() (printer, error) { return experiments.Fig6(opts) },
		"fig7": func() (printer, error) { return experiments.Fig7Table3(opts) },
		"fig8": func() (printer, error) { return experiments.Fig8(opts) },
		"fig9": func() (printer, error) { return experiments.Fig9Table4(opts) },
	}

	order := []string{"fig1", "fig5", "fig6", "fig7", "fig8", "fig9"}
	var selected []string
	switch {
	case *experiment == "all":
		selected = order
	default:
		if _, ok := runs[*experiment]; !ok {
			fmt.Fprintf(stderr, "flexbench: unknown experiment %q (use -list)\n", *experiment)
			return 2
		}
		selected = []string{*experiment}
	}

	for _, name := range selected {
		start := time.Now()
		res, err := runs[name]()
		if err != nil {
			fmt.Fprintf(stderr, "flexbench: %s: %v\n", name, err)
			return 1
		}
		res.Print(stdout)
		fmt.Fprintf(stdout, "(%s computed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
