// Command flexbench regenerates the tables and figures of the FlexCast
// paper's evaluation (Middleware 2023, §5) on the simulated 12-region
// WAN and prints them in the paper's format. It doubles as the
// simulation-testing driver: -mode chaos explores randomized
// fault-injection schedules (crashes, partitions, retransmissions,
// duplication) and checks the safety properties on every schedule.
//
// Usage:
//
//	flexbench -experiment all            # everything, paper-scale (60 virtual s)
//	flexbench -experiment fig6 -scale 0.1
//	flexbench -list
//	flexbench -mode chaos -seed 1 -schedules 100
//	flexbench -mode chaos -protocol flexcast -repro-seed 123456789
//
// Experiments: fig1, fig5 (Table 2), fig6, fig7 (Table 3), fig8,
// fig9 (Table 4), all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"flexcast/internal/chaos"
	"flexcast/internal/experiments"
	"flexcast/internal/harness"
	"flexcast/internal/telemetry"
)

// printer is the shared shape of all experiment results.
type printer interface {
	Print(w io.Writer)
}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("flexbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode       = fs.String("mode", "bench", "bench (paper experiments) or chaos (fault-injection exploration)")
		experiment = fs.String("experiment", "all", "which experiment to run: fig1, fig5, fig6, fig7, fig8, fig9, all")
		scale      = fs.Float64("scale", 1.0, "virtual-duration scale (1.0 = the paper's 60 s runs)")
		seed       = fs.Int64("seed", 1, "random seed")
		verify     = fs.Bool("verify", false, "record runs and check the atomic multicast properties (slower)")
		list       = fs.Bool("list", false, "list experiments and exit")

		schedules  = fs.Int("schedules", 100, "chaos: number of seeded fault schedules per protocol")
		protocol   = fs.String("protocol", "all", "chaos: flexcast, distributed, hierarchical or all")
		reproSeed  = fs.Int64("repro-seed", 0, "chaos: rerun exactly one schedule seed (from a failure report)")
		chaosBug   = fs.Int("chaos-bug", 0, "chaos: test-only ordering-bug hook; >0 flips every n-th delivery batch to validate the checker")
		closedLoop = fs.Bool("closed-loop", false, "chaos: closed-loop workload (each client issues on completion; denser schedules)")
		messages   = fs.Int("messages", 0, "chaos: multicasts per client (0 = default)")
		execute    = fs.Bool("execute", false, "chaos: run the gTPC-C store at every group and audit execution (serializability, invariants, replica digests)")
		profile    = fs.String("profile", "random", "chaos: environment profile: random (default) or wan (WAN latency matrix + gTPC-C destination locality)")
		durable    = fs.Bool("durable", false, "chaos: persist every node through the real durable WAL+snapshot backend; crashes abandon the files (half tear the WAL tail) and recovery rebuilds from disk")
		traceSmp   = fs.Int("trace-sample", 0, "chaos: lifecycle-trace one multicast in N in virtual time (0 = default 4, negative disables)")
		telem      = fs.String("telemetry", "", "serve /metrics (JSON) and /debug/pprof on this address (e.g. 127.0.0.1:8090)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *telem != "" {
		srv, err := telemetry.Serve(*telem, telemetry.Default)
		if err != nil {
			fmt.Fprintf(stderr, "flexbench: telemetry: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "telemetry on http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
	}
	if *mode == "chaos" {
		return runChaos(stdout, stderr, chaosRunConfig{
			protocol: *protocol, seed: *seed, schedules: *schedules, reproSeed: *reproSeed,
			bugEvery: *chaosBug, closedLoop: *closedLoop, messages: *messages,
			execute: *execute, profile: *profile, durable: *durable, traceSample: *traceSmp,
		})
	}
	if *mode != "bench" {
		fmt.Fprintf(stderr, "flexbench: unknown mode %q (bench or chaos)\n", *mode)
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "fig1  Figure 1:  per-group overhead of hierarchical T1, 90% locality")
		fmt.Fprintln(stdout, "fig5  Figure 5 / Table 2: latency per destination across overlays")
		fmt.Fprintln(stdout, "fig6  Figure 6:  throughput vs number of clients, 99% locality")
		fmt.Fprintln(stdout, "fig7  Figure 7 / Table 3: latency per destination across localities")
		fmt.Fprintln(stdout, "fig8  Figure 8:  per-node message cost (histories)")
		fmt.Fprintln(stdout, "fig9  Figure 9 / Table 4: tree overhead across localities")
		fmt.Fprintln(stdout, "all   everything above")
		return 0
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed, Verify: *verify}
	runs := map[string]func() (printer, error){
		"fig1": func() (printer, error) { return experiments.Fig1(opts) },
		"fig5": func() (printer, error) { return experiments.Fig5Table2(opts) },
		"fig6": func() (printer, error) { return experiments.Fig6(opts) },
		"fig7": func() (printer, error) { return experiments.Fig7Table3(opts) },
		"fig8": func() (printer, error) { return experiments.Fig8(opts) },
		"fig9": func() (printer, error) { return experiments.Fig9Table4(opts) },
	}

	order := []string{"fig1", "fig5", "fig6", "fig7", "fig8", "fig9"}
	var selected []string
	switch {
	case *experiment == "all":
		selected = order
	default:
		if _, ok := runs[*experiment]; !ok {
			fmt.Fprintf(stderr, "flexbench: unknown experiment %q (use -list)\n", *experiment)
			return 2
		}
		selected = []string{*experiment}
	}

	for _, name := range selected {
		start := time.Now()
		res, err := runs[name]()
		if err != nil {
			fmt.Fprintf(stderr, "flexbench: %s: %v\n", name, err)
			return 1
		}
		res.Print(stdout)
		fmt.Fprintf(stdout, "(%s computed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// chaosProtocols resolves the -protocol selector.
func chaosProtocols(sel string) ([]harness.Protocol, error) {
	switch strings.ToLower(sel) {
	case "all":
		return []harness.Protocol{harness.FlexCast, harness.Distributed, harness.Hierarchical}, nil
	case "flexcast":
		return []harness.Protocol{harness.FlexCast}, nil
	case "distributed", "skeen":
		return []harness.Protocol{harness.Distributed}, nil
	case "hierarchical", "tree":
		return []harness.Protocol{harness.Hierarchical}, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q (flexcast, distributed, hierarchical, all)", sel)
	}
}

// chaosRunConfig bundles the chaos-mode flags.
type chaosRunConfig struct {
	protocol    string
	seed        int64
	schedules   int
	reproSeed   int64
	bugEvery    int
	closedLoop  bool
	messages    int
	execute     bool
	profile     string
	durable     bool
	traceSample int
}

// runChaos drives the fault-injection explorer. The exit code reports
// safety: 0 only when every explored schedule upheld every invariant.
func runChaos(stdout, stderr io.Writer, rc chaosRunConfig) int {
	protocol, seed, schedules, reproSeed := rc.protocol, rc.seed, rc.schedules, rc.reproSeed
	protos, err := chaosProtocols(protocol)
	if err != nil {
		fmt.Fprintf(stderr, "flexbench: %v\n", err)
		return 2
	}
	if schedules <= 0 {
		fmt.Fprintf(stderr, "flexbench: -schedules must be > 0 (got %d)\n", schedules)
		return 2
	}
	opts := chaos.Options{Seed: seed, Schedules: schedules, BugFlipEvery: rc.bugEvery,
		ClosedLoop: rc.closedLoop, Messages: rc.messages, Durable: rc.durable,
		TraceSample: rc.traceSample}
	switch rc.profile {
	case "", "random":
	case "wan":
		harness.ApplyWANProfile(&opts, 0.95, rc.execute)
	default:
		fmt.Fprintf(stderr, "flexbench: unknown profile %q (random or wan)\n", rc.profile)
		return 2
	}
	failed := false
	for _, p := range protos {
		cfg := harness.ChaosConfig{Protocol: p, Options: opts, Execute: rc.execute}
		start := time.Now()
		if reproSeed != 0 {
			res, err := harness.ReplayChaos(cfg, reproSeed)
			if err != nil {
				fmt.Fprintf(stderr, "flexbench: chaos %s: %v\n", p, err)
				return 1
			}
			fmt.Fprintf(stdout, "chaos %-12s  seed=%d multicasts=%d deliveries=%d events=%d\n",
				p, res.Seed, res.Multicasts, res.Deliveries, res.Events)
			if res.Err != nil {
				failed = true
				fmt.Fprintf(stdout, "  INVARIANT VIOLATION: %v\n", res.Err)
				for _, line := range res.FaultTrace {
					fmt.Fprintf(stdout, "    %s\n", line)
				}
			} else {
				fmt.Fprintf(stdout, "  invariants: OK\n")
			}
			continue
		}
		rep, err := harness.RunChaos(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "flexbench: chaos %s: %v\n", p, err)
			return 1
		}
		if rep.Tracer != nil {
			// Expose the accumulated stage decomposition on a -telemetry
			// endpoint once this protocol's exploration completes.
			telemetry.Default.RegisterTracer("chaos_"+rep.Deployment, rep.Tracer)
		}
		rep.Print(stdout)
		fmt.Fprintf(stdout, "(%s explored in %v)\n\n", p, time.Since(start).Round(time.Millisecond))
		if rep.Failed() {
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}
