package flexcast

import "flexcast/internal/harness"

// Experiment configuration and results for the paper's evaluation: a
// protocol deployed on the simulated 12-region WAN under the gTPC-C
// workload. See cmd/flexbench and bench_test.go for the per-figure
// configurations.
type (
	// ExperimentConfig parameterizes one simulated run.
	ExperimentConfig = harness.Config
	// ExperimentResult carries latencies, throughput and traffic counters.
	ExperimentResult = harness.Result
	// Protocol selects the protocol under test in experiments.
	Protocol = harness.Protocol
)

// Protocols under evaluation (Table 1 of the paper).
const (
	// FlexCast is the paper's genuine C-DAG protocol.
	FlexCast = harness.FlexCast
	// Distributed is Skeen's genuine fully connected protocol.
	Distributed = harness.Distributed
	// Hierarchical is the non-genuine tree protocol.
	Hierarchical = harness.Hierarchical
)

// RunExperiment executes one simulated experiment.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	return harness.Run(cfg)
}

// RunExperimentChecked additionally records the run and verifies the
// atomic multicast properties (Validity, Agreement, Integrity, Prefix
// Order, Acyclic Order, and — for the genuine protocols — Minimality).
func RunExperimentChecked(cfg ExperimentConfig) (*ExperimentResult, error) {
	return harness.RunChecked(cfg)
}
