// Replicated groups: FlexCast with Paxos-based state machine replication
// (paper §4.4), surviving replica crashes.
//
// Three FlexCast groups each run three replicas. The program multicasts
// through the replicated deployment, crashes the Paxos leader of one
// group mid-run, and shows that delivery continues after failover —
// every message still reaches every destination group, in a consistent
// order across all surviving replicas.
//
//	go run ./examples/replicated
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"flexcast"
)

func main() {
	ov, err := flexcast.NewOverlay([]flexcast.GroupID{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	// seqs[group][replica] is the delivery order one replica observed.
	seqs := make(map[flexcast.GroupID]map[int][]flexcast.MsgID)

	cluster, err := flexcast.NewReplicatedCluster(flexcast.ReplicatedClusterConfig{
		Overlay:          ov,
		ReplicasPerGroup: 3,
		InterRegionRTT:   80 * time.Millisecond,
		OnDeliver: func(replica int, d flexcast.Delivery) {
			mu.Lock()
			if seqs[d.Group] == nil {
				seqs[d.Group] = make(map[int][]flexcast.MsgID)
			}
			seqs[d.Group][replica] = append(seqs[d.Group][replica], d.Msg.ID)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var ids []flexcast.MsgID
	multicast := func(dst []flexcast.GroupID, body string) {
		id, err := cluster.Multicast(dst, []byte(body))
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}

	// Phase 1: healthy cluster.
	multicast([]flexcast.GroupID{1, 2, 3}, "before-crash-1")
	multicast([]flexcast.GroupID{1, 2}, "before-crash-2")
	cluster.Run(3 * time.Second)

	// Phase 2: crash group 1's Paxos leader.
	leader := cluster.Leader(1)
	if leader < 0 {
		leader = 0
	}
	fmt.Printf("crashing replica %d (the leader) of group 1 at t=%v\n", leader, cluster.Now())
	if err := cluster.CrashReplica(1, leader); err != nil {
		log.Fatal(err)
	}

	multicast([]flexcast.GroupID{1, 2, 3}, "after-crash-1")
	multicast([]flexcast.GroupID{1, 3}, "after-crash-2")
	cluster.Run(20 * time.Second) // covers failure detection + re-election

	// Verify: every message was delivered by every destination group.
	for _, id := range ids {
		if !cluster.Delivered(id) {
			log.Fatalf("message %s was not delivered everywhere", id)
		}
	}
	fmt.Printf("new leader of group 1: replica %d\n", cluster.Leader(1))

	// Verify: surviving replicas of each group agree on the order.
	mu.Lock()
	defer mu.Unlock()
	for g, byReplica := range seqs {
		var ref []flexcast.MsgID
		for rep, seq := range byReplica {
			if rep == leader && g == 1 {
				continue // the crashed replica stopped mid-stream
			}
			if ref == nil {
				ref = seq
				continue
			}
			if len(seq) != len(ref) {
				log.Fatalf("group %d replicas disagree on length", g)
			}
			for i := range seq {
				if seq[i] != ref[i] {
					log.Fatalf("group %d replicas disagree at %d", g, i)
				}
			}
		}
		fmt.Printf("group %d: %d replicas delivered %d messages in identical order\n",
			g, len(byReplica), len(ref))
	}
	fmt.Println("all messages delivered everywhere despite the leader crash")
}
