// gTPC-C on the emulated 12-region WAN: the paper's evaluation scenario
// in miniature.
//
// The program runs the gTPC-C workload (global-only, 95 % locality, 240
// closed-loop clients) on the simulated AWS deployment for all three
// protocols and prints per-destination latency percentiles, reproducing
// one row block of the paper's Table 3.
//
//	go run ./examples/gtpcc
package main

import (
	"fmt"
	"log"

	"flexcast"
)

func main() {
	fmt.Println("gTPC-C, 12 AWS regions, 95% locality, 240 clients, 10 virtual seconds")
	fmt.Println()
	fmt.Printf("%-14s | %25s | %25s | %25s\n", "protocol",
		"1st dest 90/95/99p (ms)", "2nd dest 90/95/99p (ms)", "3rd dest 90/95/99p (ms)")

	for _, p := range []flexcast.Protocol{flexcast.FlexCast, flexcast.Hierarchical, flexcast.Distributed} {
		res, err := flexcast.RunExperiment(flexcast.ExperimentConfig{
			Protocol:   p,
			Locality:   0.95,
			NumClients: 240,
			GlobalOnly: true,
			Duration:   10_000_000, // 10 virtual seconds
			Seed:       42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s |", p)
		for k := 0; k < 3; k++ {
			fmt.Printf(" %s |", res.PerDest[k].PercentileRow(1000))
		}
		fmt.Printf("  (%d tx, %.1f kops/s)\n", res.Completed, res.Throughput()/1000)
	}

	fmt.Println()
	fmt.Println("Expected shape (paper §5.6): FlexCast wins the 1st destination;")
	fmt.Println("the hierarchical protocol competes at later destinations; the")
	fmt.Println("distributed protocol pays the timestamp exchange everywhere.")
}
