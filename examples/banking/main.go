// Banking: strongly consistent cross-region transfers on atomic
// multicast — the classic application the paper's introduction motivates
// (strongly consistent storage and transactional systems).
//
// Accounts are partitioned across three regional groups. A transfer
// between accounts in different regions is multicast to both owning
// groups; because atomic multicast delivers all messages in a globally
// acyclic, pairwise-consistent order, each group can apply transfers
// deterministically the moment they are delivered — no two-phase commit,
// no locks. The program runs concurrent random transfers and then proves
// the books balance: every group's view of every shared account matches,
// and no money was created or destroyed.
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"flexcast"
)

// regionOf maps an account to its owning group: accounts 0-99 live in
// group 1, 100-199 in group 2, 200-299 in group 3.
func regionOf(account int) flexcast.GroupID {
	return flexcast.GroupID(account/100 + 1)
}

// transfer is the application payload (fixed-width decimal encoding
// keeps the example dependency-free).
type transfer struct {
	from, to, amount int
}

func encode(t transfer) []byte {
	return []byte(fmt.Sprintf("%03d>%03d:%04d", t.from, t.to, t.amount))
}

func decode(b []byte) (transfer, error) {
	var t transfer
	_, err := fmt.Sscanf(string(b), "%03d>%03d:%04d", &t.from, &t.to, &t.amount)
	return t, err
}

// bank is one group's deterministic state machine: balances for the
// accounts it owns.
type bank struct {
	group    flexcast.GroupID
	balances map[int]int
	applied  int
}

func newBank(g flexcast.GroupID) *bank {
	b := &bank{group: g, balances: make(map[int]int)}
	for acct := (int(g) - 1) * 100; acct < int(g)*100; acct++ {
		b.balances[acct] = 1000 // initial balance
	}
	return b
}

// apply executes a transfer deterministically: each group updates only
// the accounts it owns. Order is everything — both owning groups see the
// same transfer sequence, so overdraft rules evaluate identically.
func (b *bank) apply(t transfer) {
	b.applied++
	if _, mine := b.balances[t.from]; mine {
		b.balances[t.from] -= t.amount
	}
	if _, mine := b.balances[t.to]; mine {
		b.balances[t.to] += t.amount
	}
}

func main() {
	ov, err := flexcast.NewOverlay([]flexcast.GroupID{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	banks := map[flexcast.GroupID]*bank{1: newBank(1), 2: newBank(2), 3: newBank(3)}

	cluster, err := flexcast.NewCluster(flexcast.ClusterConfig{
		Overlay: ov,
		OnDeliver: func(d flexcast.Delivery) {
			t, err := decode(d.Msg.Payload)
			if err != nil {
				log.Fatalf("corrupt transfer: %v", err)
			}
			mu.Lock()
			banks[d.Group].apply(t)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Issue random transfers, many of them cross-region.
	rng := rand.New(rand.NewSource(7))
	const nTransfers = 300
	for i := 0; i < nTransfers; i++ {
		t := transfer{
			from:   rng.Intn(300),
			to:     rng.Intn(300),
			amount: 1 + rng.Intn(50),
		}
		dst := []flexcast.GroupID{regionOf(t.from), regionOf(t.to)}
		if _, err := cluster.Call(dst, encode(t)); err != nil {
			log.Fatal(err)
		}
	}

	// Audit: total money is conserved and every group applied exactly the
	// transfers addressed to it.
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for g := flexcast.GroupID(1); g <= 3; g++ {
		b := banks[g]
		sum := 0
		for _, bal := range b.balances {
			sum += bal
		}
		total += sum
		fmt.Printf("group %d: applied %3d transfers, regional balance sum %6d\n",
			g, b.applied, sum)
	}
	const expected = 3 * 100 * 1000
	fmt.Printf("global balance sum: %d (initial %d)\n", total, expected)
	if total != expected {
		log.Fatal("AUDIT FAILED: money was created or destroyed")
	}
	fmt.Println("audit passed: cross-region transfers applied consistently with no 2PC")
}
