// Quickstart: a three-group FlexCast deployment in one process.
//
// Three groups A(1) < B(2) < C(3) form a complete DAG. The program
// multicasts a handful of messages to overlapping destination sets and
// prints each group's delivery order — identical relative orders at all
// common destinations, exactly what atomic multicast guarantees.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"flexcast"
)

func main() {
	ov, err := flexcast.NewOverlay([]flexcast.GroupID{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	order := make(map[flexcast.GroupID][]string)

	cluster, err := flexcast.NewCluster(flexcast.ClusterConfig{
		Overlay: ov,
		OnDeliver: func(d flexcast.Delivery) {
			mu.Lock()
			order[d.Group] = append(order[d.Group], string(d.Msg.Payload))
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Overlapping destination sets force real ordering work: group 2
	// must order m2 relative to both m1 and m3 even though their lcas
	// differ.
	msgs := []struct {
		dst  []flexcast.GroupID
		body string
	}{
		{[]flexcast.GroupID{1, 2}, "m1: debit account (groups 1,2)"},
		{[]flexcast.GroupID{1, 2, 3}, "m2: config update (all groups)"},
		{[]flexcast.GroupID{2, 3}, "m3: credit account (groups 2,3)"},
		{[]flexcast.GroupID{1, 3}, "m4: audit snapshot (groups 1,3)"},
		{[]flexcast.GroupID{3}, "m5: local note (group 3 only)"},
	}
	for _, m := range msgs {
		if _, err := cluster.Call(m.dst, []byte(m.body)); err != nil {
			log.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	groups := make([]flexcast.GroupID, 0, len(order))
	for g := range order {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for _, g := range groups {
		fmt.Printf("group %d delivered, in order:\n", g)
		for i, body := range order[g] {
			fmt.Printf("  %d. %s\n", i+1, body)
		}
	}
	fmt.Println("\nEvery pair of groups agrees on the relative order of the messages they share.")
}
