package flexcast_test

import (
	"sync"
	"testing"
	"time"

	"flexcast"
)

func abcOverlay(t *testing.T) *flexcast.Overlay {
	t.Helper()
	ov, err := flexcast.NewOverlay([]flexcast.GroupID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return ov
}

func TestClusterCallFlexCast(t *testing.T) {
	var mu sync.Mutex
	delivered := make(map[flexcast.GroupID][]flexcast.MsgID)
	cl, err := flexcast.NewCluster(flexcast.ClusterConfig{
		Overlay: abcOverlay(t),
		OnDeliver: func(d flexcast.Delivery) {
			mu.Lock()
			delivered[d.Group] = append(delivered[d.Group], d.Msg.ID)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	id1, err := cl.Call([]flexcast.GroupID{1, 3}, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := cl.Call([]flexcast.GroupID{1, 2, 3}, []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delivered[1]) != 2 || delivered[1][0] != id1 || delivered[1][1] != id2 {
		t.Fatalf("group 1 delivered %v, want [%v %v]", delivered[1], id1, id2)
	}
	if len(delivered[2]) != 1 || delivered[2][0] != id2 {
		t.Fatalf("group 2 delivered %v", delivered[2])
	}
}

func TestClusterAllProtocolsAgree(t *testing.T) {
	tree, err := flexcast.NewTree(1, map[flexcast.GroupID][]flexcast.GroupID{1: {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]flexcast.ClusterConfig{
		"flexcast":     {Protocol: flexcast.ProtocolFlexCast, Overlay: abcOverlay(t)},
		"skeen":        {Protocol: flexcast.ProtocolSkeen, Overlay: abcOverlay(t)},
		"hierarchical": {Protocol: flexcast.ProtocolHierarchical, Tree: tree},
	}
	for name, cfg := range configs {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			seqs := make(map[flexcast.GroupID][]flexcast.MsgID)
			cfg.OnDeliver = func(d flexcast.Delivery) {
				mu.Lock()
				seqs[d.Group] = append(seqs[d.Group], d.Msg.ID)
				mu.Unlock()
			}
			cl, err := flexcast.NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			for i := 0; i < 5; i++ {
				if _, err := cl.Call([]flexcast.GroupID{1, 2, 3}, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			mu.Lock()
			defer mu.Unlock()
			for g, seq := range seqs {
				if len(seq) != 5 {
					t.Fatalf("group %d delivered %d messages", g, len(seq))
				}
				for i := range seq {
					if seq[i] != seqs[1][i] {
						t.Fatalf("group %d order %v differs from group 1 %v", g, seq, seqs[1])
					}
				}
			}
		})
	}
}

func TestClusterMulticastAsync(t *testing.T) {
	done := make(chan flexcast.Delivery, 8)
	cl, err := flexcast.NewCluster(flexcast.ClusterConfig{
		Overlay:   abcOverlay(t),
		OnDeliver: func(d flexcast.Delivery) { done <- d },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	id, err := cl.Multicast([]flexcast.GroupID{2}, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-done:
		if d.Msg.ID != id || d.Group != 2 {
			t.Fatalf("delivery = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery never arrived")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := flexcast.NewCluster(flexcast.ClusterConfig{Protocol: flexcast.ProtocolFlexCast}); err == nil {
		t.Error("flexcast cluster without overlay accepted")
	}
	if _, err := flexcast.NewCluster(flexcast.ClusterConfig{Protocol: flexcast.ProtocolHierarchical}); err == nil {
		t.Error("hierarchical cluster without tree accepted")
	}
	cl, err := flexcast.NewCluster(flexcast.ClusterConfig{Overlay: abcOverlay(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Multicast(nil, nil); err == nil {
		t.Error("empty destination accepted")
	}
	if _, err := cl.Multicast([]flexcast.GroupID{9}, nil); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestClusterCloseIdempotentAndRejects(t *testing.T) {
	cl, err := flexcast.NewCluster(flexcast.ClusterConfig{Overlay: abcOverlay(t)})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close()
	if _, err := cl.Multicast([]flexcast.GroupID{1}, nil); err == nil {
		t.Error("multicast after close accepted")
	}
}

func TestAWSTopologyExports(t *testing.T) {
	if len(flexcast.AWSGroups()) != 12 {
		t.Fatal("AWS group count wrong")
	}
	if flexcast.O1().Len() != 12 || flexcast.O2().Len() != 12 {
		t.Fatal("overlay sizes wrong")
	}
	if flexcast.T1().Len() != 12 || flexcast.T2().Len() != 12 || flexcast.T3().Len() != 12 {
		t.Fatal("tree sizes wrong")
	}
	if flexcast.AWSRegionName(9) != "ap-northeast-1" {
		t.Fatal("region name wrong")
	}
	if flexcast.AWSRTTMicros(1, 2) <= 0 {
		t.Fatal("RTT not positive")
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	res, err := flexcast.RunExperimentChecked(flexcast.ExperimentConfig{
		Protocol:   flexcast.FlexCast,
		Locality:   0.95,
		NumClients: 24,
		GlobalOnly: true,
		Duration:   1_000_000,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("experiment completed nothing")
	}
}
