package flexcast_test

import (
	"testing"

	"flexcast"
)

// durableStore builds a StoreCluster persisting into dir with a tight
// snapshot cadence (so short tests exercise rotation and truncation).
func durableStore(t *testing.T, dir string) *flexcast.StoreCluster {
	t.Helper()
	sc, err := flexcast.NewStoreCluster(flexcast.StoreClusterConfig{
		Warehouses: 4,
		Durable:    &flexcast.DurableConfig{Dir: dir, SnapshotEvery: 4, FsyncEvery: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestDurableStoreClusterRecovers is the backend's end-to-end contract:
// a cluster persisted to disk, closed, and reopened on the same
// directory serves from byte-identical shard state — and the recovery
// replayed only a bounded WAL suffix, not the whole run.
func TestDurableStoreClusterRecovers(t *testing.T) {
	dir := t.TempDir()

	sc := durableStore(t, dir)
	for i := 0; i < 4; i++ {
		driveStore(t, sc)
	}
	if err := sc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	digests := make(map[flexcast.GroupID][32]byte)
	for _, w := range sc.Warehouses() {
		d, err := sc.Digest(w)
		if err != nil {
			t.Fatal(err)
		}
		digests[w] = d
	}
	if recs := sc.DurableRecoveries(); len(recs) != 4 {
		t.Fatalf("expected 4 recovery reports, got %d", len(recs))
	} else {
		for _, r := range recs {
			if r.Recovered {
				t.Fatalf("fresh directory reported recovery: %+v", r)
			}
		}
	}
	sc.Close()

	re := durableStore(t, dir)
	defer re.Close()
	recovered := false
	for _, r := range re.DurableRecoveries() {
		if !r.Recovered {
			t.Fatalf("group %d found no persisted state", r.Group)
		}
		if r.SnapshotEpoch > 0 {
			recovered = true
			// The bound: replay only the records since the last snapshot.
			// (One batched WAL record may carry several envelopes, so the
			// suffix can exceed the cadence by up to one batch.)
			if r.ReplayedEnvelopes >= 4+64 {
				t.Fatalf("group %d replayed %d envelopes, want cadence+batch at most", r.Group, r.ReplayedEnvelopes)
			}
		}
		if r.TornTailBytes != 0 {
			t.Fatalf("group %d: clean shutdown left a torn tail of %d bytes", r.Group, r.TornTailBytes)
		}
	}
	if !recovered {
		t.Fatal("no group restored from a snapshot; cadence 8 should have rotated")
	}
	for _, w := range re.Warehouses() {
		d, err := re.Digest(w)
		if err != nil {
			t.Fatal(err)
		}
		if d != digests[w] {
			t.Fatalf("warehouse %d digest changed across recovery", w)
		}
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The recovered cluster keeps executing.
	driveStore(t, re)
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableBackendMatchesInMemory: the durable wrap must not change
// execution — the same scripted workload lands on the same digests as
// the default in-memory backend.
func TestDurableBackendMatchesInMemory(t *testing.T) {
	mem, err := flexcast.NewStoreCluster(flexcast.StoreClusterConfig{Warehouses: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	dur := durableStore(t, t.TempDir())
	defer dur.Close()
	driveStore(t, mem)
	driveStore(t, dur)
	for _, w := range mem.Warehouses() {
		dm, err := mem.Digest(w)
		if err != nil {
			t.Fatal(err)
		}
		dd, err := dur.Digest(w)
		if err != nil {
			t.Fatal(err)
		}
		if dm != dd {
			t.Fatalf("warehouse %d: durable backend changed the digest", w)
		}
	}
}

// TestDurablePlainClusterRecovers covers the non-executing layer: a
// plain multicast Cluster with the durable backend recovers its
// protocol engine state (delivery sequences resume, no duplicates).
func TestDurablePlainClusterRecovers(t *testing.T) {
	dir := t.TempDir()
	ov, err := flexcast.NewOverlay([]flexcast.GroupID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	var first []flexcast.MsgID
	c, err := flexcast.NewCluster(flexcast.ClusterConfig{
		Overlay: ov,
		Durable: &flexcast.DurableConfig{Dir: dir, SnapshotEvery: 4},
		OnDeliver: func(d flexcast.Delivery) {
			if d.Group == 1 {
				first = append(first, d.Msg.ID)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := c.Call([]flexcast.GroupID{1, 2, 3}, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	// Reopen: recovery must not re-announce old deliveries, and new
	// traffic keeps delivering.
	var second []flexcast.MsgID
	re, err := flexcast.NewCluster(flexcast.ClusterConfig{
		Overlay: ov,
		Durable: &flexcast.DurableConfig{Dir: dir, SnapshotEvery: 4},
		OnDeliver: func(d flexcast.Delivery) {
			if d.Group == 1 {
				second = append(second, d.Msg.ID)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, r := range re.DurableRecoveries() {
		if !r.Recovered {
			t.Fatalf("group %d found no persisted state", r.Group)
		}
	}
	if len(second) != 0 {
		t.Fatalf("recovery re-announced %d deliveries", len(second))
	}
	if _, err := re.Call([]flexcast.GroupID{1, 3}, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if len(second) != 1 {
		t.Fatalf("post-recovery call delivered %d times at group 1, want 1", len(second))
	}
}
