// Package telemetry is the observability plane of the wall-clock
// runtimes: sampled message-lifecycle tracing (per-stage latency
// decomposition of the write path), a process-wide registry of
// counters, gauges and latency histograms, and an opt-in HTTP endpoint
// serving both as JSON plus net/http/pprof (DESIGN.md §1g).
//
// The tracer answers the question the end-to-end histogram cannot:
// where a slow request spent its time. Each sampled request is stamped
// with a monotonic timestamp as it crosses each pipeline stage —
// submit → inbound queue → engine step → execute → batcher flush →
// reply — and on completion the telescoping differences land in one
// histogram per stage, so Σ stage means reconstructs the end-to-end
// mean exactly.
//
// Sampling is deterministic: a request is traced iff its message id's
// per-client sequence number is divisible by the sampling interval, so
// every component of a deployment agrees on the sampled set with no
// coordination and the unsampled hot path costs one branch and one
// modulo, no allocation, no lock.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"flexcast/amcast"
	"flexcast/internal/metrics"
)

// Stage enumerates the lifecycle stages a traced request crosses, in
// pipeline order. The stamp policy per stage keeps multi-group requests
// monotone: entry stages (Submit..Deliver) keep the EARLIEST stamp
// across groups, completion stages (Execute..Reply) keep the LATEST —
// a prefix of minima followed by a suffix of maxima is always
// non-decreasing when each group's own stamps are ordered.
type Stage uint8

const (
	// StageSubmit is the client issuing the request (Begin).
	StageSubmit Stage = iota
	// StageEnqueue is the request entering a server's inbound queue
	// (first group to see the KindRequest envelope).
	StageEnqueue
	// StageDequeue is the worker popping the request into an engine
	// chunk.
	StageDequeue
	// StageDeliver is the engine emitting the delivery (first group).
	StageDeliver
	// StageExecute is the store having applied the delivery (last
	// group).
	StageExecute
	// StageFlush is the reply batch leaving the serving node's batcher
	// (last group).
	StageFlush
	// StageReply is the client completing the request (Finish).
	StageReply

	// NumStages is the number of lifecycle stages.
	NumStages = int(StageReply) + 1
)

// lastWins marks the completion stages (keep the latest stamp); the
// rest are entry stages (keep the earliest).
var lastWins = [NumStages]bool{
	StageExecute: true,
	StageFlush:   true,
	StageReply:   true,
}

// stageNames label the per-transition histograms by the LATER stage of
// each transition: stageNames[StageDequeue] is the enqueue→dequeue
// wait, and so on. stageNames[StageSubmit] labels nothing (Submit has
// no predecessor).
var stageNames = [NumStages]string{
	StageSubmit:  "submit",
	StageEnqueue: "ingress",    // submit → inbound queue (client batch + transport + backpressure)
	StageDequeue: "queue_wait", // inbound queue residency
	StageDeliver: "ordering",   // engine step: TS/NOTIF exchange until delivery
	StageExecute: "execute",    // delivery (first group) → store apply (last group)
	StageFlush:   "flush_wait", // apply → reply batch leaving the batcher
	StageReply:   "reply",      // flush → client completion (transport back)
}

// Name returns the label of the transition ENDING at stage s.
func (s Stage) Name() string { return stageNames[s] }

const traceShards = 16

type traceShard struct {
	mu sync.Mutex
	m  map[amcast.MsgID]*traceRecord
}

// traceRecord holds one sampled request's stage stamps. A stamp is the
// tracer clock plus one (so a stamp of 0 always means "unset", even
// under a clock that starts at zero).
type traceRecord struct {
	ts [NumStages]uint64
}

// Tracer samples and stamps request lifecycles. All methods are safe
// on a nil receiver (no-ops), so call sites need no configuration
// branches. Safe for concurrent use.
type Tracer struct {
	sample uint64
	clock  func() uint64

	shards [traceShards]traceShard

	// stage[s] is the duration histogram of the transition ending at
	// stage s (stage[StageSubmit] is unused); e2e is submit→reply.
	stage [NumStages]*metrics.Histogram
	e2e   *metrics.Histogram

	finished atomic.Uint64
	active   atomic.Int64
}

// NewTracer builds a tracer sampling one request in sampleEvery
// (sampleEvery <= 0 disables tracing and returns nil — the nil-safe
// methods make a disabled tracer free). clock returns monotonic
// nanoseconds; nil takes a wall-clock monotonic default. Sim-time
// harnesses pass their own clock scaled to ns.
func NewTracer(sampleEvery int, clock func() uint64) *Tracer {
	if sampleEvery <= 0 {
		return nil
	}
	if clock == nil {
		base := time.Now()
		clock = func() uint64 { return uint64(time.Since(base)) }
	}
	t := &Tracer{sample: uint64(sampleEvery), clock: clock, e2e: metrics.NewHistogram()}
	for s := 1; s < NumStages; s++ {
		t.stage[s] = metrics.NewHistogram()
	}
	for i := range t.shards {
		t.shards[i].m = make(map[amcast.MsgID]*traceRecord)
	}
	return t
}

// SampleEvery reports the sampling interval (0 when disabled).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.sample)
}

// Sampled reports whether id belongs to the deterministic sample set.
// This is the hot-path gate: one nil check and one modulo.
func (t *Tracer) Sampled(id amcast.MsgID) bool {
	return t != nil && id.Seq()%t.sample == 0
}

func (t *Tracer) shard(id amcast.MsgID) *traceShard {
	return &t.shards[(uint64(id)*0x9E3779B97F4A7C15)>>59&(traceShards-1)]
}

// Begin creates the trace record for a sampled request and stamps
// StageSubmit. Only Begin creates records: later stamps for ids never
// begun (flush multicasts, reads, unsampled ids) are dropped, so
// records cannot leak.
func (t *Tracer) Begin(id amcast.MsgID) {
	if !t.Sampled(id) {
		return
	}
	now := t.clock() + 1
	sh := t.shard(id)
	sh.mu.Lock()
	if _, ok := sh.m[id]; !ok {
		rec := &traceRecord{}
		rec.ts[StageSubmit] = now
		sh.m[id] = rec
		t.active.Add(1)
	}
	sh.mu.Unlock()
}

// Stamp records stage s for a sampled, begun request; entry stages
// keep the earliest stamp, completion stages the latest. Unsampled ids
// return after one modulo; sampled ids without a record (never begun)
// after one map lookup.
func (t *Tracer) Stamp(id amcast.MsgID, s Stage) {
	if !t.Sampled(id) {
		return
	}
	now := t.clock() + 1
	sh := t.shard(id)
	sh.mu.Lock()
	if rec, ok := sh.m[id]; ok {
		if cur := rec.ts[s]; cur == 0 || (lastWins[s] && now > cur) {
			rec.ts[s] = now
		}
	}
	sh.mu.Unlock()
}

// Finish stamps StageReply, folds the record's telescoping stage
// durations into the per-stage histograms (skipping stages the
// deployment never stamps, whose time lands in the next stamped
// stage), records the end-to-end latency, and retires the record.
func (t *Tracer) Finish(id amcast.MsgID) {
	if !t.Sampled(id) {
		return
	}
	now := t.clock() + 1
	sh := t.shard(id)
	sh.mu.Lock()
	rec, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if !ok {
		return
	}
	t.active.Add(-1)
	rec.ts[StageReply] = now
	prev := rec.ts[StageSubmit]
	for s := 1; s < NumStages; s++ {
		ts := rec.ts[s]
		if ts == 0 {
			continue
		}
		var d uint64
		if ts > prev {
			d = ts - prev
		}
		t.stage[s].Record(d)
		prev = ts
	}
	var e2e uint64
	if now > rec.ts[StageSubmit] {
		e2e = now - rec.ts[StageSubmit]
	}
	t.e2e.Record(e2e)
	t.finished.Add(1)
}

// Drop retires a begun record without recording anything (a request
// that failed or was abandoned).
func (t *Tracer) Drop(id amcast.MsgID) {
	if !t.Sampled(id) {
		return
	}
	sh := t.shard(id)
	sh.mu.Lock()
	_, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if ok {
		t.active.Add(-1)
	}
}

// Finished reports the number of completed trace records.
func (t *Tracer) Finished() uint64 {
	if t == nil {
		return 0
	}
	return t.finished.Load()
}

// Active reports the number of begun, unfinished trace records.
func (t *Tracer) Active() int64 {
	if t == nil {
		return 0
	}
	return t.active.Load()
}

// StageHist returns the duration histogram of the transition ending at
// stage s (nil for StageSubmit or a nil tracer).
func (t *Tracer) StageHist(s Stage) *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.stage[s]
}

// E2EHist returns the traced end-to-end latency histogram.
func (t *Tracer) E2EHist() *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.e2e
}

// Merge folds other's histograms and counters into t (records in
// flight in other are not carried over). Used by harnesses that run
// many short deployments (chaos schedules) under one report.
func (t *Tracer) Merge(other *Tracer) {
	if t == nil || other == nil {
		return
	}
	for s := 1; s < NumStages; s++ {
		t.stage[s].Merge(other.stage[s])
	}
	t.e2e.Merge(other.e2e)
	t.finished.Add(other.finished.Load())
}

// StageSummary is one transition's latency summary in the stages
// report.
type StageSummary struct {
	// Stage labels the transition by its later stage (see Stage.Name).
	Stage string `json:"stage"`
	metrics.NsSummary
}

// StagesReport is the serialized stage-latency decomposition: one
// summary per stamped transition, in pipeline order, plus the traced
// end-to-end distribution they telescope to.
type StagesReport struct {
	// SampleEvery is the sampling interval (1 in N).
	SampleEvery int `json:"sample_every"`
	// Records is the number of completed trace records.
	Records uint64 `json:"records"`
	// ActiveAtEnd counts begun records never finished (should be ~0 on
	// a drained run).
	ActiveAtEnd int64 `json:"active_at_end,omitempty"`
	// E2E is the traced submit→reply latency distribution.
	E2E metrics.NsSummary `json:"e2e_ns"`
	// Stages holds one summary per transition that recorded samples.
	Stages []StageSummary `json:"stages"`
}

// Report snapshots the tracer into its serialized form; nil when the
// tracer is disabled or recorded nothing.
func (t *Tracer) Report() *StagesReport {
	if t == nil || t.finished.Load() == 0 {
		return nil
	}
	r := &StagesReport{
		SampleEvery: int(t.sample),
		Records:     t.finished.Load(),
		ActiveAtEnd: t.active.Load(),
		E2E:         t.e2e.SummaryNs(),
	}
	for s := 1; s < NumStages; s++ {
		if t.stage[s].Count() == 0 {
			continue
		}
		r.Stages = append(r.Stages, StageSummary{
			Stage:     Stage(s).Name(),
			NsSummary: t.stage[s].SummaryNs(),
		})
	}
	return r
}
