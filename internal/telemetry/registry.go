package telemetry

import (
	"sort"
	"sync"

	"flexcast/internal/metrics"
)

// Registry is a process-wide catalog of live metrics: counters and
// gauges are read-through callbacks (the owning subsystem keeps its
// own atomic state; the registry only snapshots it on demand, so
// registration adds zero hot-path cost), histograms and tracers are
// referenced directly. Registering a name again replaces the previous
// entry — deployments that run several configurations in one process
// (flexload -ab) re-register each run and the endpoint always reflects
// the latest.
type Registry struct {
	mu       sync.Mutex
	counters map[string]func() uint64
	gauges   map[string]func() float64
	hists    map[string]*metrics.Histogram
	tracers  map[string]*Tracer
}

// Default is the process-wide registry the -telemetry endpoint serves.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]func() uint64),
		gauges:   make(map[string]func() float64),
		hists:    make(map[string]*metrics.Histogram),
		tracers:  make(map[string]*Tracer),
	}
}

// RegisterCounter registers a monotonic counter callback.
func (r *Registry) RegisterCounter(name string, f func() uint64) {
	r.mu.Lock()
	r.counters[name] = f
	r.mu.Unlock()
}

// RegisterGauge registers an instantaneous gauge callback.
func (r *Registry) RegisterGauge(name string, f func() float64) {
	r.mu.Lock()
	r.gauges[name] = f
	r.mu.Unlock()
}

// RegisterHistogram registers a latency histogram; by convention the
// name carries its unit suffix (most are _ns).
func (r *Registry) RegisterHistogram(name string, h *metrics.Histogram) {
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// RegisterTracer registers a lifecycle tracer; its stage decomposition
// appears under "stages" in the snapshot. A nil tracer unregisters.
func (r *Registry) RegisterTracer(name string, t *Tracer) {
	r.mu.Lock()
	if t == nil {
		delete(r.tracers, name)
	} else {
		r.tracers[name] = t
	}
	r.mu.Unlock()
}

// Snapshot is the serializable point-in-time view of the registry —
// the /metrics response body.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]metrics.NsSummary `json:"histograms"`
	Stages     map[string]*StagesReport     `json:"stages,omitempty"`
}

// Snapshot evaluates every registered callback and summarizes every
// histogram. Callbacks run outside the registry lock's critical
// sections' owners — they must be safe to call from any goroutine.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]string, 0, len(r.counters))
	for n := range r.counters {
		counters = append(counters, n)
	}
	gauges := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	cf := make(map[string]func() uint64, len(r.counters))
	for n, f := range r.counters {
		cf[n] = f
	}
	gf := make(map[string]func() float64, len(r.gauges))
	for n, f := range r.gauges {
		gf[n] = f
	}
	hs := make(map[string]*metrics.Histogram, len(r.hists))
	for n, h := range r.hists {
		hs[n] = h
	}
	ts := make(map[string]*Tracer, len(r.tracers))
	for n, t := range r.tracers {
		ts[n] = t
	}
	r.mu.Unlock()

	sort.Strings(counters)
	sort.Strings(gauges)
	snap := Snapshot{
		Counters:   make(map[string]uint64, len(cf)),
		Gauges:     make(map[string]float64, len(gf)),
		Histograms: make(map[string]metrics.NsSummary, len(hs)),
	}
	for _, n := range counters {
		snap.Counters[n] = cf[n]()
	}
	for _, n := range gauges {
		snap.Gauges[n] = gf[n]()
	}
	for n, h := range hs {
		snap.Histograms[n] = h.SummaryNs()
	}
	for n, t := range ts {
		if rep := t.Report(); rep != nil {
			if snap.Stages == nil {
				snap.Stages = make(map[string]*StagesReport, len(ts))
			}
			snap.Stages[n] = rep
		}
	}
	return snap
}
