package telemetry

import (
	"testing"

	"flexcast/amcast"
)

// fakeClock is a hand-advanced tracer clock.
type fakeClock struct{ now uint64 }

func (c *fakeClock) fn() uint64 { return c.now }

func id(client int, seq uint64) amcast.MsgID { return amcast.NewMsgID(client, seq) }

// TestStageTimestampsMonotone drives one record through every stage with
// out-of-order duplicate stamps (first-wins entry stages, last-wins
// completion stages) and checks the effective timestamps are
// non-decreasing and the stage durations telescope exactly to the
// end-to-end latency.
func TestStageTimestampsMonotone(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(1, clk.fn)
	m := id(0, 1)

	clk.now = 100
	tr.Begin(m)
	clk.now = 250
	tr.Stamp(m, StageEnqueue)
	clk.now = 400
	tr.Stamp(m, StageEnqueue) // duplicate: first wins, must not move it
	clk.now = 410
	tr.Stamp(m, StageDequeue)
	clk.now = 500
	tr.Stamp(m, StageDeliver) // first group delivers
	clk.now = 450
	tr.Stamp(m, StageDeliver) // late cross-group duplicate: entry stage, first wins
	clk.now = 700
	tr.Stamp(m, StageExecute)
	clk.now = 900
	tr.Stamp(m, StageExecute) // last wins: moves to 900
	clk.now = 950
	tr.Stamp(m, StageFlush)
	clk.now = 1100
	tr.Finish(m)

	if got := tr.Finished(); got != 1 {
		t.Fatalf("finished = %d, want 1", got)
	}
	if got := tr.Active(); got != 0 {
		t.Fatalf("active = %d, want 0", got)
	}

	// Expected effective stamps: submit 100, enqueue 250, dequeue 410,
	// deliver 500, execute 900, flush 950, reply 1100. Each transition
	// histogram holds exactly one sample equal to the difference.
	want := map[Stage]uint64{
		StageEnqueue: 150, // 250-100
		StageDequeue: 160, // 410-250
		StageDeliver: 90,  // 500-410
		StageExecute: 400, // 900-500
		StageFlush:   50,  // 950-900
		StageReply:   150, // 1100-950
	}
	var sum uint64
	prev := uint64(0)
	for s := StageEnqueue; s <= StageReply; s++ {
		h := tr.StageHist(s)
		if h.Count() != 1 {
			t.Fatalf("stage %s: %d samples, want 1", s.Name(), h.Count())
		}
		d := h.Max()
		if d != want[s] {
			t.Errorf("stage %s duration = %d, want %d", s.Name(), d, want[s])
		}
		// Durations are non-negative by construction; reconstruct the
		// timestamps and check monotonicity.
		ts := prev + d
		if ts < prev {
			t.Errorf("stage %s timestamp went backwards", s.Name())
		}
		prev = ts
		sum += d
	}
	if e2e := tr.E2EHist().Max(); sum != e2e {
		t.Errorf("stage durations sum to %d, e2e is %d — must telescope exactly", sum, e2e)
	}
	if e2e := tr.E2EHist().Max(); e2e != 1000 {
		t.Errorf("e2e = %d, want 1000", e2e)
	}
}

// TestSkippedStagesFoldForward checks a deployment that never stamps
// some stages (non-execute runs): their time lands in the next stamped
// stage and the telescoping sum still equals the end-to-end latency.
func TestSkippedStagesFoldForward(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(1, clk.fn)
	m := id(0, 1)
	clk.now = 0
	tr.Begin(m)
	clk.now = 300
	tr.Stamp(m, StageDeliver)
	clk.now = 1000
	tr.Finish(m)

	if got := tr.StageHist(StageDeliver).Max(); got != 300 {
		t.Errorf("ordering duration = %d, want 300 (submit→deliver with enqueue/dequeue unset)", got)
	}
	if got := tr.StageHist(StageReply).Max(); got != 700 {
		t.Errorf("reply duration = %d, want 700", got)
	}
	if got := tr.StageHist(StageEnqueue).Count(); got != 0 {
		t.Errorf("unset stage recorded %d samples", got)
	}
	if got := tr.E2EHist().Max(); got != 1000 {
		t.Errorf("e2e = %d, want 1000", got)
	}
}

// TestSamplingRate checks the deterministic 1-in-N gate: N times fewer
// records, chosen purely by sequence number.
func TestSamplingRate(t *testing.T) {
	const n = 8
	clk := &fakeClock{}
	tr := NewTracer(n, clk.fn)
	const total = 1024
	for seq := uint64(1); seq <= total; seq++ {
		m := id(3, seq)
		tr.Begin(m)
		clk.now += 10
		tr.Finish(m)
	}
	if got, want := tr.Finished(), uint64(total/n); got != want {
		t.Fatalf("finished = %d, want %d (1 in %d of %d)", got, want, n, total)
	}
	// The sampled set is a pure function of the id: every component
	// agrees with no coordination.
	for seq := uint64(1); seq <= 64; seq++ {
		if got, want := tr.Sampled(id(7, seq)), seq%n == 0; got != want {
			t.Fatalf("Sampled(seq=%d) = %v, want %v", seq, got, want)
		}
	}
}

// TestStampWithoutBeginDrops checks that stamps for ids never begun
// (flush multicasts, remote reads, other clients' traffic) leave no
// record behind.
func TestStampWithoutBeginDrops(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(1, clk.fn)
	m := id(0, 8)
	tr.Stamp(m, StageDeliver)
	tr.Finish(m)
	if got := tr.Finished(); got != 0 {
		t.Fatalf("finished = %d for a never-begun id", got)
	}
	if got := tr.Active(); got != 0 {
		t.Fatalf("active = %d for a never-begun id", got)
	}
}

// TestNilTracer checks every method is a no-op on a nil tracer.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr2 := NewTracer(0, nil); tr2 != nil {
		t.Fatalf("NewTracer(0) = %v, want nil", tr2)
	}
	m := id(0, 1)
	tr.Begin(m)
	tr.Stamp(m, StageDeliver)
	tr.Finish(m)
	tr.Drop(m)
	tr.Merge(nil)
	if tr.Sampled(m) || tr.Finished() != 0 || tr.Active() != 0 || tr.Report() != nil {
		t.Fatal("nil tracer must observe nothing")
	}
}

// TestMergeAndReport merges two tracers and checks the serialized
// stages report.
func TestMergeAndReport(t *testing.T) {
	clk := &fakeClock{}
	a := NewTracer(2, clk.fn)
	b := NewTracer(2, clk.fn)
	for seq := uint64(2); seq <= 8; seq += 2 {
		a.Begin(id(0, seq))
		clk.now += 100
		a.Stamp(id(0, seq), StageDeliver)
		clk.now += 50
		a.Finish(id(0, seq))
		b.Begin(id(1, seq))
		clk.now += 200
		b.Finish(id(1, seq))
	}
	a.Merge(b)
	rep := a.Report()
	if rep == nil {
		t.Fatal("nil report after merge")
	}
	if rep.Records != 8 {
		t.Fatalf("records = %d, want 8", rep.Records)
	}
	if rep.E2E.Count != 8 {
		t.Fatalf("e2e count = %d, want 8", rep.E2E.Count)
	}
	if len(rep.Stages) == 0 {
		t.Fatal("no stage summaries")
	}
	for _, sg := range rep.Stages {
		if sg.Stage == "" || sg.Count == 0 {
			t.Fatalf("malformed stage summary %+v", sg)
		}
	}
}
