package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"flexcast/internal/metrics"
)

// TestServeMetricsRoundTrip starts the endpoint on an ephemeral port,
// fetches /metrics mid-"run", and checks the body is valid JSON whose
// counters, gauges, histograms and stages survive a round trip.
func TestServeMetricsRoundTrip(t *testing.T) {
	reg := NewRegistry()
	var depth uint64 = 7
	reg.RegisterCounter("backpressure_stalls", func() uint64 { return 42 })
	reg.RegisterGauge("queue_depth", func() float64 { return float64(depth) })
	h := metrics.NewHistogram()
	h.Record(1000)
	h.Record(2000)
	reg.RegisterHistogram("fsync_batch_ns", h)

	clk := &fakeClock{}
	tr := NewTracer(2, clk.fn)
	m := id(0, 2)
	tr.Begin(m)
	clk.now = 500
	tr.Stamp(m, StageDeliver)
	clk.now = 800
	tr.Finish(m)
	reg.RegisterTracer("runtime", tr)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}

	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("body is not valid JSON: %v\n%s", err, body)
	}
	if got := snap.Counters["backpressure_stalls"]; got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if got := snap.Gauges["queue_depth"]; got != 7 {
		t.Errorf("gauge = %v, want 7", got)
	}
	if got := snap.Histograms["fsync_batch_ns"].Count; got != 2 {
		t.Errorf("histogram count = %d, want 2", got)
	}
	st, ok := snap.Stages["runtime"]
	if !ok || st == nil {
		t.Fatalf("stages section missing from /metrics: %s", body)
	}
	if st.SampleEvery != 2 || st.Records != 1 {
		t.Errorf("stages = {sample_every %d, records %d}, want {2, 1}", st.SampleEvery, st.Records)
	}
	if st.E2E.Max != 800 {
		t.Errorf("e2e max = %d, want 800", st.E2E.Max)
	}
	if len(st.Stages) != 2 {
		t.Fatalf("stage summaries = %d (%+v), want 2 (ordering, reply)", len(st.Stages), st.Stages)
	}
	if st.Stages[0].Stage != "ordering" || st.Stages[1].Stage != "reply" {
		t.Errorf("stage order = %q, %q; want ordering, reply", st.Stages[0].Stage, st.Stages[1].Stage)
	}

	// The pprof index must be mounted too.
	pp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", pp.StatusCode)
	}
}

// TestSnapshotLiveUpdates checks the endpoint is a live view: a second
// snapshot reflects counter movement after the first.
func TestSnapshotLiveUpdates(t *testing.T) {
	reg := NewRegistry()
	var n uint64
	reg.RegisterCounter("ops", func() uint64 { return n })
	if got := reg.Snapshot().Counters["ops"]; got != 0 {
		t.Fatalf("initial = %d", got)
	}
	n = 31
	if got := reg.Snapshot().Counters["ops"]; got != 31 {
		t.Fatalf("after update = %d, want 31", got)
	}
	// Re-registering a name replaces it (flexload -ab reuses names).
	reg.RegisterCounter("ops", func() uint64 { return 1000 })
	if got := reg.Snapshot().Counters["ops"]; got != 1000 {
		t.Fatalf("after re-register = %d, want 1000", got)
	}
}
