package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the live telemetry endpoint: /metrics serves the
// registry's JSON snapshot, /debug/pprof/* the standard Go profiler
// handlers — so a long benchmark or soak can be inspected mid-run
// without stopping it.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the telemetry endpoint on addr (host:port; :0 picks a
// free port, see Addr). The registry defaults to Default when nil.
func Serve(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = Default
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		buf, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(buf, '\n'))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}, ln: ln}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the endpoint's listen address (useful with :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
