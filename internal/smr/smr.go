// Package smr implements state machine replication of a protocol group,
// the fault-tolerance approach of the paper's §4.4: "processes within a
// group are kept consistent using state machine replication … processes
// in a group can fail as long as enough processes remain operational
// within the group".
//
// A Group runs N replicas. Each replica holds a Paxos participant and a
// deterministic protocol engine (FlexCast, Skeen or hierarchical — the
// amcast.Engine determinism contract exists exactly for this). Envelopes
// addressed to the group are sequenced through multi-Paxos; every replica
// applies the decided envelope sequence to its engine, so replicas stay
// byte-identical.
//
// Output strategy: every live replica emits its engine's outputs
// (protocol envelopes and client replies). This trades bandwidth for
// simplicity and fault tolerance — no output is lost when the leader
// crashes between deciding and sending — and is safe because every
// receiver in this repository is idempotent: engines deduplicate
// MSG/ACK/NOTIF/REQUEST/TS envelopes and clients deduplicate replies.
package smr

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flexcast/amcast"
	"flexcast/internal/codec"
	"flexcast/internal/metrics"
	"flexcast/internal/paxos"
	"flexcast/internal/sim"
)

// ErrLeaseExpired is returned by FollowerRead when the addressed
// follower does not hold a valid read lease — it has not yet applied a
// grant covering the current time (crashed and recovering, partitioned
// from the log, or leases disabled). Callers route the read to another
// replica; serving anyway would be the stale-serve bug the fast-read
// audit catches.
var ErrLeaseExpired = errors.New("smr: follower read lease expired")

// replicaBase offsets replica node ids: replica idx of group g lives at
// NodeID(g) + (idx+1)*replicaBase. Group ids stay below replicaBase and
// clients start at 1<<20, so the ranges never collide.
const replicaBase amcast.NodeID = 1 << 12

// ReplicaNode returns the network address of one replica.
func ReplicaNode(g amcast.GroupID, idx int) amcast.NodeID {
	return amcast.NodeID(g) + amcast.NodeID(idx+1)*replicaBase
}

// Config configures a replicated group.
type Config struct {
	// Group is the replicated group's id.
	Group amcast.GroupID
	// Replicas is the replication degree N (Paxos tolerates ⌊(N-1)/2⌋
	// crashes).
	Replicas int
	// NewEngine builds one engine instance; it is called once per replica
	// and every instance must be deterministic and identical.
	NewEngine func() (amcast.Engine, error)
	// IntraLatency is the one-way latency between replicas (co-located in
	// one region; default 200µs).
	IntraLatency sim.Time
	// TickEvery is the Paxos failure-detector tick period (default 50ms).
	TickEvery sim.Time
	// BatchWindow enables batched proposals: envelopes arriving at the
	// group's ingress within the window are sequenced through Paxos as
	// one decided value (a codec batch frame), amortizing consensus
	// rounds under load. 0 keeps per-envelope proposals. Replicas apply
	// a decided batch through the engine's batch fast path, which is
	// semantically identical to applying its envelopes in order, so
	// batched and unbatched groups stay byte-equivalent.
	BatchWindow sim.Time
	// BatchMax caps the envelopes per proposal when batching (default
	// 64); reaching it proposes immediately.
	BatchMax int
	// OnDeliver observes deliveries at replica 0's engine (or, more
	// precisely, at every replica; see OnDeliverAll) exactly once per
	// replica. May be nil.
	OnDeliver func(replica int, d amcast.Delivery)
	// LeaseTerm enables follower read leases: while it is > 0, the
	// current leader periodically (every LeaseTerm/3) sequences a lease
	// grant through the Paxos log, valid for LeaseTerm from its propose
	// time. Because grants ride decided log entries, every replica
	// learns the lease state deterministically, totally ordered with the
	// command stream — a replica that has not applied a current grant
	// (crashed, recovering, cut off) holds no lease and FollowerRead
	// refuses. 0 disables leases (FollowerRead always refuses).
	LeaseTerm sim.Time
	// LeaseMargin is the follower-side safety margin: a follower stops
	// serving once now+LeaseMargin reaches the grant's expiry, i.e.
	// strictly before the leader considers the lease dead. The margin is
	// what absorbs clock skew between grantor and follower — zero-cost
	// in the simulator's global clock, load-bearing on real transports
	// (DESIGN.md §1e). Default LeaseTerm/4.
	LeaseMargin sim.Time
	// SnapshotEvery, when > 0, has each replica snapshot its engine every
	// SnapshotEvery applied log entries and truncate its Paxos log at the
	// snapshot boundary (paxos.TruncateBefore) — the §4.3 flush-GC
	// discipline applied to the replicated log. The snapshot is retained
	// on the replica's stable storage (it survives Crash, like the Paxos
	// acceptor state), so Restart restores it and replays only the log
	// suffix: recovery work is bounded by the snapshot cadence, not the
	// run length. A recovering replica whose log predates a live peer's
	// truncation floor is instead shipped that peer's retained snapshot
	// and streams only the suffix (mirroring store.Executor's follower
	// attach). Requires the engine to implement amcast.SnapshotEngine;
	// 0 disables snapshots and keeps full-log replay.
	SnapshotEvery int
}

// Group is a replicated protocol group attached to a simulated network.
type Group struct {
	cfg      Config
	s        *sim.Simulator
	net      *sim.Network
	replicas []*replica
	stopped  bool

	// pending accumulates ingress envelopes while a batch window is open.
	pending      []amcast.Envelope
	flushPlanned bool
	// flushGen invalidates scheduled window timers: a size-triggered
	// flush bumps it, so the timer it orphaned becomes a no-op instead
	// of prematurely fragmenting the next window's batch.
	flushGen      uint64
	nBatchesProp  uint64
	nEnvsProposed uint64
	lastRecovery  *RecoveryStats

	// Telemetry (observers only — none of it feeds back into protocol
	// state, so determinism is untouched). proposedAt keys each proposal
	// by its first envelope's id; the first replica to apply the decided
	// value records the propose→decide latency and retires the entry.
	telem      GroupTelemetry
	proposedAt map[amcast.MsgID]sim.Time
}

// GroupTelemetry is the group's observability state: lease-protocol
// counters and the Paxos commit-latency distribution.
type GroupTelemetry struct {
	// LeaseGrants counts grant entries the leader sequenced (leaseTick),
	// LeaseRevocations revocation entries (RevokeLeases).
	LeaseGrants      uint64
	LeaseRevocations uint64
	// LeaseRenewals counts grant entries applied across all replicas
	// (each applied grant renews that replica's lease view).
	LeaseRenewals uint64
	// LeaseRefusals counts FollowerRead calls refused for want of a
	// valid lease.
	LeaseRefusals uint64
	// Commit is the propose→first-decide latency distribution in
	// nanoseconds (sim µs × 1000, matching the telemetry plane's unit).
	Commit *metrics.Histogram
}

type replica struct {
	grp     *Group
	idx     int
	node    amcast.NodeID
	pax     *paxos.Replica
	eng     amcast.Engine
	crashed bool
	applied uint64
	// leaseExpiry is the expiry of the newest lease grant this replica
	// has applied from the decided log (0: none). Each replica holds its
	// own view: a lagging replica holds an older — hence safer — lease.
	leaseExpiry sim.Time
	// Snapshot state (Config.SnapshotEvery > 0). snap is the retained
	// engine snapshot — conceptually on stable storage, so it survives
	// Crash like the Paxos acceptor state; snapDecided is the Paxos
	// instance boundary it covers (the log below it is truncated),
	// snapApplied/snapLease restore the replica's counters alongside it.
	snap        amcast.Snapshot
	snapDecided paxos.InstanceID
	snapApplied uint64
	snapLease   sim.Time
	sinceSnap   int
}

// New builds the group and registers its ingress and replicas on the
// network.
func New(cfg Config, s *sim.Simulator, net *sim.Network) (*Group, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("smr: need at least one replica")
	}
	if cfg.NewEngine == nil {
		return nil, fmt.Errorf("smr: missing engine factory")
	}
	if cfg.IntraLatency == 0 {
		cfg.IntraLatency = 200
	}
	if cfg.TickEvery == 0 {
		cfg.TickEvery = 50_000
	}
	if cfg.BatchMax == 0 {
		cfg.BatchMax = 64
	}
	if cfg.BatchMax > codec.MaxBatchEnvelopes {
		cfg.BatchMax = codec.MaxBatchEnvelopes
	}
	if cfg.LeaseTerm > 0 && cfg.LeaseMargin == 0 {
		cfg.LeaseMargin = cfg.LeaseTerm / 4
	}
	g := &Group{cfg: cfg, s: s, net: net, proposedAt: make(map[amcast.MsgID]sim.Time)}
	g.telem.Commit = metrics.NewHistogram()
	for i := 0; i < cfg.Replicas; i++ {
		eng, err := cfg.NewEngine()
		if err != nil {
			return nil, err
		}
		r := &replica{
			grp:  g,
			idx:  i,
			node: ReplicaNode(cfg.Group, i),
			pax:  paxos.MustNewReplica(paxos.Config{ID: paxos.ReplicaID(i), N: cfg.Replicas}),
			eng:  eng,
		}
		g.replicas = append(g.replicas, r)
	}
	for _, r := range g.replicas {
		g.stampReads(r)
	}
	// The group's logical endpoint: the paper treats each group as a
	// reliable entity; the ingress forwards external envelopes into the
	// replica set (to the believed leader, falling back to any live
	// replica).
	net.Register(amcast.GroupNode(cfg.Group), sim.HandlerFunc(g.ingress))
	return g, nil
}

// readStamper is implemented by store.Executor; asserted structurally
// so smr stays independent of the store package.
type readStamper interface {
	SetReadStamp(replica int32, lease func() bool)
}

// stampReads marks a read-capable engine (store.Executor) with its
// replica identity and this group's lease gate, so every fast-read
// audit record carries which replica served and whether it was allowed
// to — a follower serve through a regressed lease gate then fails
// trace.CheckFastReads instead of passing as a serving-node read. The
// leader needs no lease (it is the grantor and current by
// construction); a non-leading replica's authority is its applied
// lease. Re-applied on Restart, which builds a fresh engine.
func (g *Group) stampReads(r *replica) {
	s, ok := r.eng.(readStamper)
	if !ok {
		return
	}
	r2 := r
	s.SetReadStamp(int32(r.idx), func() bool {
		return r2.pax.IsLeader() || g.holdsLease(r2)
	})
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config, s *sim.Simulator, net *sim.Network) *Group {
	g, err := New(cfg, s, net)
	if err != nil {
		panic(err)
	}
	return g
}

// Start begins the Paxos failure-detector ticks (and, with LeaseTerm
// set, the leader's lease-grant loop).
func (g *Group) Start() {
	g.s.Schedule(g.cfg.TickEvery, g.tick)
	if g.cfg.LeaseTerm > 0 {
		g.s.Schedule(g.cfg.LeaseTerm/3, g.leaseTick)
	}
}

// Stop halts the tick loop (tests call it before draining the simulator).
func (g *Group) Stop() { g.stopped = true }

func (g *Group) tick() {
	if g.stopped {
		return
	}
	for _, r := range g.replicas {
		if r.crashed {
			continue
		}
		r.route(r.pax.Tick())
		r.apply()
	}
	g.s.Schedule(g.cfg.TickEvery, g.tick)
}

// Crash kills one replica (failure injection).
func (g *Group) Crash(idx int) {
	r := g.replicas[idx]
	r.crashed = true
	r.pax.Crash()
}

// RecoveryStats reports how the last Restart rebuilt its replica: which
// snapshot seeded the engine (its own retained one, a donor-shipped
// one, or none) and how many log entries were replayed on top. With
// SnapshotEvery set, Replayed is bounded by the snapshot cadence plus
// the decisions missed while down — independent of run length.
type RecoveryStats struct {
	// Replica is the restarted replica's index.
	Replica int
	// FromSnapshot: the replica restored its own retained snapshot.
	FromSnapshot bool
	// SnapshotShipped: the replica's log predated a live donor's
	// truncation floor, so the donor's retained snapshot was installed
	// instead (the smr analogue of store's follower snapshot shipping).
	SnapshotShipped bool
	// Donor is the shipping donor's index (-1 if none shipped).
	Donor int
	// Replayed counts decided log entries applied during recovery (own
	// suffix plus donor catch-up).
	Replayed int
}

// Restart recovers a crashed replica — the paper's §4.4 recovery path.
// The replica's engine state is rebuilt from its retained snapshot (if
// SnapshotEvery is set) plus a replay of its stable decided-log suffix
// (the Paxos log is the write-ahead log of engine inputs); without
// snapshots the whole log is replayed into a fresh engine. Decisions
// missed while down are state-transferred from the most advanced live
// peer — as a log suffix when the peer still retains the needed
// entries, or as that peer's snapshot plus suffix when truncation
// already dropped them. Replayed outputs are suppressed: live replicas
// already emitted them (every replica emits; receivers are idempotent),
// so recovery adds no duplicate traffic. OnDeliver is likewise not
// re-invoked for replayed entries.
func (g *Group) Restart(idx int) error {
	r := g.replicas[idx]
	if !r.crashed {
		return nil
	}
	eng, err := g.cfg.NewEngine()
	if err != nil {
		return fmt.Errorf("smr: restart replica %d: %w", idx, err)
	}
	r.eng = eng
	g.stampReads(r)
	r.applied = 0
	r.leaseExpiry = 0
	r.crashed = false
	r.pax.Recover()
	r.pax.TakeDecisions() // discard learner output stranded by the crash
	stats := RecoveryStats{Replica: idx, Donor: -1}

	var donor *replica
	for _, p := range g.replicas {
		if p.crashed || p.idx == idx {
			continue
		}
		if donor == nil || p.pax.Decided() > donor.pax.Decided() {
			donor = p
		}
	}

	switch {
	case donor != nil && donor.snap != nil && donor.pax.Base() > r.pax.Decided():
		// The donor truncated entries this replica still needs: its own
		// log is a strict prefix of what the donor's snapshot covers, so
		// install that snapshot and resume delivery at its boundary.
		if err := r.restore(donor.snap, donor.snapApplied, donor.snapLease); err != nil {
			return fmt.Errorf("smr: restart replica %d: install donor snapshot: %w", idx, err)
		}
		r.pax.InstallSnapshot(donor.snapDecided)
		// Discard the decisions InstallSnapshot queued for instances at or
		// above the boundary: the DecidedLog suffix replay below covers
		// exactly those entries, and draining them again in the catch-up
		// branch would double-apply them (overcounting Replayed and
		// leaning on engine idempotence for no reason).
		r.pax.TakeDecisions()
		// The shipped snapshot becomes this replica's own retained one —
		// it now sits on the replica's stable storage exactly like a
		// snapshot it took itself. Without this, a second crash before the
		// next own snapshot would pair the stale pre-ship snapshot (or
		// none) with the raised Paxos base and silently lose every entry
		// in between, and this replica acting as donor later would ship a
		// snapshot that does not cover its own truncation floor.
		r.snap, r.snapDecided = donor.snap, donor.snapDecided
		r.snapApplied, r.snapLease = donor.snapApplied, donor.snapLease
		stats.SnapshotShipped = true
		stats.Donor = donor.idx
	case r.snap != nil:
		// Own retained snapshot: the Paxos log was truncated at its
		// boundary pre-crash, so DecidedLog below is exactly the suffix.
		if err := r.restore(r.snap, r.snapApplied, r.snapLease); err != nil {
			return fmt.Errorf("smr: restart replica %d: restore snapshot: %w", idx, err)
		}
		stats.FromSnapshot = true
	}

	suffix := r.pax.DecidedLog()
	r.replay(suffix)
	stats.Replayed += len(suffix)

	if donor != nil && donor.pax.Decided() > r.pax.Decided() {
		from := r.pax.Decided()
		if from < donor.pax.Base() {
			// The donor truncated entries below from, yet the shipping
			// branch did not run — it retains no snapshot covering its own
			// floor, an invariant violation. SuffixFrom would silently
			// clamp to the donor's base and CatchUp would install those
			// values at the wrong instances; fail loudly instead.
			return fmt.Errorf("smr: restart replica %d: donor %d truncated its log below %d (base %d) without a covering snapshot",
				idx, donor.idx, from, donor.pax.Base())
		}
		r.pax.CatchUp(from, donor.pax.SuffixFrom(from))
		var vals [][]byte
		for _, dec := range r.pax.TakeDecisions() {
			vals = append(vals, dec.Value)
		}
		r.replay(vals)
		stats.Replayed += len(vals)
		if stats.Donor < 0 {
			stats.Donor = donor.idx
		}
	}
	r.sinceSnap = int(r.applied - r.snapApplied)
	g.lastRecovery = &stats
	return nil
}

// restore installs an engine snapshot plus the counters taken with it.
func (r *replica) restore(snap amcast.Snapshot, applied uint64, lease sim.Time) error {
	se, ok := r.eng.(amcast.SnapshotEngine)
	if !ok {
		return fmt.Errorf("engine %T does not support snapshots", r.eng)
	}
	if err := se.Restore(snap); err != nil {
		return err
	}
	r.applied = applied
	r.leaseExpiry = lease
	return nil
}

// LastRecovery returns the stats of the most recent Restart, or nil if
// no replica was restarted yet.
func (g *Group) LastRecovery() *RecoveryStats { return g.lastRecovery }

// maybeSnapshot takes an engine snapshot covering log instances below
// upTo and truncates the Paxos log there, once SnapshotEvery entries
// accumulated since the last one. upTo is the instance just applied
// plus one — NOT pax.Decided(), which mid-batch already counts entries
// the engine has not applied yet; truncating at it would drop log
// entries the snapshot does not cover. Called at applied-entry
// boundaries only: the engine has drained its deliveries, so the
// snapshot is a clean point.
func (r *replica) maybeSnapshot(upTo paxos.InstanceID) {
	if r.grp.cfg.SnapshotEvery <= 0 || r.sinceSnap < r.grp.cfg.SnapshotEvery {
		return
	}
	se, ok := r.eng.(amcast.SnapshotEngine)
	if !ok {
		return
	}
	r.snap = se.Snapshot()
	r.snapDecided = upTo
	r.snapApplied = r.applied
	r.snapLease = r.leaseExpiry
	r.sinceSnap = 0
	r.pax.TruncateBefore(upTo)
}

// replay applies a decided-value sequence to the engine without emitting
// outputs, replies or OnDeliver callbacks. Lease entries are replayed
// into the lease view too — their grant times are pre-crash, so a
// recovered replica's lease is typically already expired and it refuses
// follower reads until the live leader's next grant is decided.
func (r *replica) replay(vals [][]byte) {
	for _, v := range vals {
		if isLease(v) {
			r.applied++
			r.applyLease(v)
			continue
		}
		envs, err := codec.DecodeFrame(v)
		if err != nil {
			continue // mirrors apply: skip deterministically
		}
		r.applied++
		amcast.BatchStep(r.eng, envs)
		r.eng.TakeDeliveries()
	}
}

// leaseMarker discriminates lease entries from codec frames in the
// decided log: envelope kinds occupy 1..8 and batch frames start with
// codec.BatchKind (0x40), so the high marker byte is unambiguous.
const leaseMarker byte = 0xF5

// leaseValue encodes a lease entry: a grant valid until expiry, or a
// revocation (expiry 0).
func leaseValue(expiry sim.Time) []byte {
	buf := make([]byte, 1, 10)
	buf[0] = leaseMarker
	return binary.AppendUvarint(buf, uint64(expiry))
}

// isLease reports whether a decided value is a lease entry.
func isLease(v []byte) bool { return len(v) > 0 && v[0] == leaseMarker }

// applyLease installs one decided lease entry into this replica's lease
// view. Entries are applied in log order on every replica, so the view
// is deterministic — a replica that has not caught up simply holds an
// older (sooner-expiring, hence safer) lease.
func (r *replica) applyLease(v []byte) {
	expiry, n := binary.Uvarint(v[1:])
	if n <= 0 {
		return // corrupt lease entry: skip deterministically, like apply
	}
	r.leaseExpiry = sim.Time(expiry)
}

// leaseTick is the leader's grant loop: every LeaseTerm/3 the replica
// that currently leads sequences a grant through the Paxos log, valid
// for LeaseTerm from now. Riding the log (rather than a side channel)
// is what makes the lease state consistent with the command stream on
// every replica, including across leader changes and recoveries.
func (g *Group) leaseTick() {
	if g.stopped {
		return
	}
	if lead := g.Leader(); lead >= 0 {
		r := g.replicas[lead]
		g.telem.LeaseGrants++
		r.route(r.pax.Propose(leaseValue(g.s.Now() + g.cfg.LeaseTerm)))
		r.apply()
	}
	g.s.Schedule(g.cfg.LeaseTerm/3, g.leaseTick)
}

// RevokeLeases has the current leader sequence a revocation entry:
// replicas applying it refuse follower reads until a fresh grant is
// decided. No-op without a live leader (leases then expire on their
// own).
func (g *Group) RevokeLeases() {
	if lead := g.Leader(); lead >= 0 {
		r := g.replicas[lead]
		g.telem.LeaseRevocations++
		r.route(r.pax.Propose(leaseValue(0)))
		r.apply()
	}
}

// HoldsLease reports whether replica idx could serve a follower read
// now: it is live and has applied a grant whose expiry is more than
// LeaseMargin away.
func (g *Group) HoldsLease(idx int) bool { return g.holdsLease(g.replicas[idx]) }

func (g *Group) holdsLease(r *replica) bool {
	return !r.crashed && r.leaseExpiry > 0 && g.s.Now()+g.cfg.LeaseMargin < r.leaseExpiry
}

// LeaseExpiry exposes replica idx's applied lease expiry (tests).
func (g *Group) LeaseExpiry(idx int) sim.Time { return g.replicas[idx].leaseExpiry }

// FollowerRead runs read against replica idx's engine iff the replica
// holds a valid read lease (HoldsLease); otherwise the read is refused
// with ErrLeaseExpired (or a crash error) and read is not called. The
// read callback typically asserts the engine to its executor wrapper
// (store.Executor) and serves a fast read at the caller's session
// barrier against the replica's own delivered-prefix watermark.
func (g *Group) FollowerRead(idx int, read func(eng amcast.Engine) error) error {
	r := g.replicas[idx]
	if r.crashed {
		return fmt.Errorf("smr: follower read at crashed replica %d of group %d", idx, g.cfg.Group)
	}
	if !g.HoldsLease(idx) {
		g.telem.LeaseRefusals++
		return fmt.Errorf("replica %d of group %d (expiry %d, now %d): %w",
			idx, g.cfg.Group, r.leaseExpiry, g.s.Now(), ErrLeaseExpired)
	}
	return read(r.eng)
}

// Leader returns the index of the first live replica that believes it
// leads, or -1.
func (g *Group) Leader() int {
	for _, r := range g.replicas {
		if !r.crashed && r.pax.IsLeader() {
			return r.idx
		}
	}
	return -1
}

// Applied reports how many log entries replica idx has applied.
func (g *Group) Applied(idx int) uint64 { return g.replicas[idx].applied }

// Engine exposes replica idx's engine for test inspection.
func (g *Group) Engine(idx int) amcast.Engine { return g.replicas[idx].eng }

// ingress sequences an external envelope through Paxos: immediately, or
// accumulated into a batch proposal when BatchWindow is set.
func (g *Group) ingress(env amcast.Envelope) {
	// Commit-latency bookkeeping: key the eventual proposal by this
	// envelope's id, first-wins (a batch is keyed by its first member;
	// re-proposed ids keep their original ingress time).
	if _, ok := g.proposedAt[env.Msg.ID]; !ok {
		g.proposedAt[env.Msg.ID] = g.s.Now()
	}
	if g.cfg.BatchWindow <= 0 {
		g.propose(codec.Marshal(env), 1)
		return
	}
	g.pending = append(g.pending, env)
	if len(g.pending) >= g.cfg.BatchMax {
		g.flushProposal()
		return
	}
	if !g.flushPlanned {
		g.flushPlanned = true
		gen := g.flushGen
		g.s.Schedule(g.cfg.BatchWindow, func() {
			if g.flushGen != gen {
				return // a size-triggered flush already closed this window
			}
			g.flushProposal()
		})
	}
}

// flushProposal proposes the open batch as one Paxos value and closes
// the current window.
func (g *Group) flushProposal() {
	g.flushPlanned = false
	g.flushGen++
	if len(g.pending) == 0 || g.stopped {
		return
	}
	envs := g.pending
	g.pending = nil
	if len(envs) == 1 {
		g.propose(codec.Marshal(envs[0]), 1)
		return
	}
	g.propose(codec.MarshalBatch(envs), len(envs))
}

// propose sequences one encoded value (a single envelope or a batch
// frame) through the believed leader, falling back to any live replica.
func (g *Group) propose(value []byte, nEnvs int) {
	var target *replica
	for _, r := range g.replicas {
		if r.crashed {
			continue
		}
		if target == nil {
			target = r
		}
		if r.pax.IsLeader() {
			target = r
			break
		}
	}
	if target == nil {
		return // whole group down: the paper assumes this cannot happen
	}
	g.nBatchesProp++
	g.nEnvsProposed += uint64(nEnvs)
	target.route(target.pax.Propose(value))
	target.apply()
}

// Proposals reports how many Paxos values the group proposed and how
// many envelopes they carried (tests, metrics).
func (g *Group) Proposals() (values, envelopes uint64) {
	return g.nBatchesProp, g.nEnvsProposed
}

// Telemetry returns the group's observability state. The histogram
// pointer is live; the counters are a snapshot.
func (g *Group) Telemetry() GroupTelemetry { return g.telem }

// route transmits Paxos messages between replicas over the intra-group
// links.
func (r *replica) route(ms []paxos.Message) {
	for _, m := range ms {
		to := r.grp.replicas[m.To]
		m := m
		r.grp.s.Schedule(r.grp.cfg.IntraLatency, func() {
			if to.crashed || r.grp.stopped {
				return
			}
			to.route(to.pax.OnMessage(m))
			to.apply()
		})
	}
}

// apply replays newly decided values (single envelopes or batches) into
// the engine and emits its outputs and client replies.
func (r *replica) apply() {
	for _, dec := range r.pax.TakeDecisions() {
		if isLease(dec.Value) {
			r.applied++
			r.sinceSnap++
			r.applyLease(dec.Value)
			if r.leaseExpiry > 0 {
				r.grp.telem.LeaseRenewals++
			}
			r.maybeSnapshot(dec.Instance + 1)
			continue
		}
		envs, err := codec.DecodeFrame(dec.Value)
		if err != nil {
			// A corrupt decided value would be a codec bug; skip it
			// deterministically on every replica.
			continue
		}
		// First replica to apply this value records its propose→decide
		// latency (sim µs scaled to ns) and retires the key.
		if t0, ok := r.grp.proposedAt[envs[0].Msg.ID]; ok {
			delete(r.grp.proposedAt, envs[0].Msg.ID)
			r.grp.telem.Commit.Record(uint64(r.grp.s.Now()-t0) * 1000)
		}
		r.applied++
		r.sinceSnap++
		outs := amcast.BatchStep(r.eng, envs)
		for _, o := range outs {
			r.grp.net.Send(amcast.GroupNode(r.grp.cfg.Group), o.To, o.Env)
		}
		for _, d := range r.eng.TakeDeliveries() {
			if r.grp.cfg.OnDeliver != nil {
				r.grp.cfg.OnDeliver(r.idx, d)
			}
			if d.Msg.Sender.IsClient() {
				r.grp.net.Send(amcast.GroupNode(r.grp.cfg.Group), d.Msg.Sender, amcast.Envelope{
					Kind:      amcast.KindReply,
					From:      amcast.GroupNode(r.grp.cfg.Group),
					Msg:       d.Msg.Header(),
					TS:        d.Seq,
					Result:    d.Result,
					Watermark: d.Watermark,
				})
			}
		}
		r.maybeSnapshot(dec.Instance + 1)
	}
}
