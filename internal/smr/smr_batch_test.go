package smr

import (
	"reflect"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
	"flexcast/internal/sim"
	"flexcast/internal/trace"
)

// deployBatchedABC is deployABC with batched proposals enabled.
func deployBatchedABC(t *testing.T, nReplicas int, window sim.Time) *abcDeployment {
	t.Helper()
	d := &abcDeployment{
		s:         sim.New(),
		groups:    make(map[amcast.GroupID]*Group),
		delivered: make(map[amcast.GroupID][][]amcast.MsgID),
		rec:       trace.NewRecorder(),
	}
	d.ov = overlay.MustCDAG([]amcast.GroupID{1, 2, 3})
	d.net = sim.NewNetwork(d.s, func(from, to amcast.NodeID) sim.Time { return 2000 })
	for _, g := range d.ov.Order() {
		g := g
		d.delivered[g] = make([][]amcast.MsgID, nReplicas)
		grp := MustNew(Config{
			Group:       g,
			Replicas:    nReplicas,
			BatchWindow: window,
			NewEngine: func() (amcast.Engine, error) {
				return core.New(core.Config{Group: g, Overlay: d.ov})
			},
			OnDeliver: func(rep int, del amcast.Delivery) {
				d.delivered[g][rep] = append(d.delivered[g][rep], del.Msg.ID)
				if rep == 0 {
					if err := d.rec.OnDeliver(del); err != nil {
						t.Error(err)
					}
				}
			},
		}, d.s, d.net)
		d.groups[g] = grp
		grp.Start()
	}
	return d
}

// TestBatchedProposalsDeliverConsistently checks that batching envelopes
// into single Paxos values preserves replica consistency and the
// multicast properties, while actually reducing consensus values.
func TestBatchedProposalsDeliverConsistently(t *testing.T) {
	d := deployBatchedABC(t, 3, 5_000)
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	const n = 20
	for i := uint64(1); i <= n; i++ {
		d.multicast(t, i, 1, 2, 3)
	}
	d.run(t, 10_000_000)

	for g, reps := range d.delivered {
		for i := 1; i < len(reps); i++ {
			if !reflect.DeepEqual(reps[0], reps[i]) {
				t.Fatalf("group %d: replica 0 delivered %v, replica %d delivered %v",
					g, reps[0], i, reps[i])
			}
		}
		if len(reps[0]) != n {
			t.Fatalf("group %d delivered %d messages, want %d", g, len(reps[0]), n)
		}
	}
	if err := d.rec.CheckAll(false); err != nil {
		t.Fatal(err)
	}

	// The lca (group 1) absorbed all n requests in one injection burst:
	// batching must have collapsed them into fewer proposals.
	values, envs := d.groups[1].Proposals()
	if envs < n {
		t.Fatalf("group 1 proposed %d envelopes, want >= %d", envs, n)
	}
	if values >= envs {
		t.Fatalf("batching ineffective: %d values for %d envelopes", values, envs)
	}
}

// TestBatchedLogRecovery checks that a replica restarting from a decided
// log containing batch values replays it correctly and catches up.
func TestBatchedLogRecovery(t *testing.T) {
	d := deployBatchedABC(t, 3, 5_000)
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	for i := uint64(1); i <= 10; i++ {
		d.multicast(t, i, 1, 2, 3)
	}
	d.s.RunUntil(2_000_000)

	// Crash a follower of group 1, keep traffic flowing, then restart it.
	g1 := d.groups[1]
	victim := (g1.Leader() + 1) % 3
	g1.Crash(victim)
	for i := uint64(11); i <= 16; i++ {
		d.multicast(t, i, 1, 2)
	}
	d.s.RunUntil(4_000_000)
	if err := g1.Restart(victim); err != nil {
		t.Fatal(err)
	}
	d.run(t, 10_000_000)

	reps := d.delivered[1]
	// The restarted replica's post-restart deliveries must extend the
	// prefix it had delivered before the crash; replica 0's sequence is
	// the reference. (Replayed entries do not re-invoke OnDeliver, so
	// the victim's recorded sequence is a subsequence of the reference
	// ending at the same point.)
	ref := reps[0]
	vic := reps[victim]
	if len(ref) == 0 || len(vic) == 0 {
		t.Fatalf("deliveries missing: ref=%d victim=%d", len(ref), len(vic))
	}
	if g1.Applied(victim) != g1.Applied(0) {
		t.Fatalf("victim applied %d log entries, reference %d", g1.Applied(victim), g1.Applied(0))
	}
	if err := d.rec.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}
