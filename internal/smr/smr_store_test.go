package smr

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/gtpcc"
	"flexcast/internal/overlay"
	"flexcast/internal/sim"
	"flexcast/internal/store"
)

// storeDeployment replicates three store-backed FlexCast groups: each
// replica's engine is a store.Executor, so the Paxos log replay that
// rebuilds protocol state on restart rebuilds the warehouse shard too.
type storeDeployment struct {
	s      *sim.Simulator
	net    *sim.Network
	groups map[amcast.GroupID]*Group
	ov     *overlay.CDAG
	seq    uint64
}

func deployStoreABC(t *testing.T, nReplicas int) *storeDeployment {
	t.Helper()
	d := &storeDeployment{
		s:      sim.New(),
		groups: make(map[amcast.GroupID]*Group),
	}
	d.ov = overlay.MustCDAG([]amcast.GroupID{1, 2, 3})
	d.net = sim.NewNetwork(d.s, func(from, to amcast.NodeID) sim.Time { return 2000 })
	for _, g := range d.ov.Order() {
		g := g
		grp := MustNew(Config{
			Group:    g,
			Replicas: nReplicas,
			NewEngine: func() (amcast.Engine, error) {
				eng, err := core.New(core.Config{Group: g, Overlay: d.ov})
				if err != nil {
					return nil, err
				}
				return store.NewExecutor(eng, store.Config{Warehouse: g}, false)
			},
		}, d.s, d.net)
		d.groups[g] = grp
		grp.Start()
	}
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	return d
}

func (d *storeDeployment) exec(t *testing.T, tx gtpcc.Tx) {
	t.Helper()
	d.seq++
	m := amcast.Message{
		ID:      amcast.NewMsgID(0, d.seq),
		Sender:  amcast.ClientNode(0),
		Dst:     tx.Involved(),
		Payload: gtpcc.EncodeTx(tx),
	}
	cid := amcast.ClientNode(0)
	d.net.Send(cid, amcast.GroupNode(d.ov.Lca(m.Dst)), amcast.Envelope{
		Kind: amcast.KindRequest, From: cid, Msg: m,
	})
}

// workload issues a mix of single- and multi-shard transactions.
func (d *storeDeployment) workload(t *testing.T, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		d.exec(t, gtpcc.Tx{
			Type: gtpcc.NewOrder, Home: 1, Customer: int32(i % gtpcc.NumCustomers), Items: 2,
			Lines: []gtpcc.OrderLine{
				{Item: int32(i % gtpcc.NumItems), Supply: 1, Qty: 2},
				{Item: int32((i * 7) % gtpcc.NumItems), Supply: amcast.GroupID(2 + i%2), Qty: 3},
			},
			PayloadSize: 88,
		})
		d.exec(t, gtpcc.Tx{
			Type: gtpcc.Payment, Home: amcast.GroupID(1 + i%3), Customer: int32(i % gtpcc.NumCustomers),
			CustWarehouse: amcast.GroupID(1 + (i+1)%3), Amount: int64(10 + i), PayloadSize: 48,
		})
		if i%3 == 0 {
			d.exec(t, gtpcc.Tx{Type: gtpcc.Delivery, Home: 2, PayloadSize: 40})
		}
	}
}

func (d *storeDeployment) executor(t *testing.T, g amcast.GroupID, replica int) *store.Executor {
	t.Helper()
	ex, ok := d.groups[g].Engine(replica).(*store.Executor)
	if !ok {
		t.Fatalf("group %d replica %d engine is %T, not an executor", g, replica, d.groups[g].Engine(replica))
	}
	return ex
}

// TestReplicatedStoreDigestsIdentical verifies the heart of replicated
// execution: every replica of a group applies the same decided sequence
// through an identical store and lands on a byte-identical digest, and
// the cross-shard invariants hold over any replica's view.
func TestReplicatedStoreDigestsIdentical(t *testing.T) {
	d := deployStoreABC(t, 3)
	d.workload(t, 12)
	d.s.RunUntil(20_000_000)
	for _, g := range d.groups {
		g.Stop()
	}
	d.s.Run()

	var shards []*store.Shard
	for _, g := range d.ov.Order() {
		ex0 := d.executor(t, g, 0)
		if ex0.Shard().Applied() == 0 {
			t.Fatalf("group %d executed nothing", g)
		}
		d0 := ex0.Digest()
		for r := 1; r < 3; r++ {
			if dr := d.executor(t, g, r).Digest(); dr != d0 {
				t.Fatalf("group %d: replica %d digest %x != replica 0 digest %x",
					g, r, dr[:8], d0[:8])
			}
		}
		shards = append(shards, ex0.Shard())
	}
	if err := store.CheckInvariants(shards); err != nil {
		t.Fatal(err)
	}
}

// TestReplicatedStoreCrashRecovery crashes a replica mid-run, keeps
// executing, restarts it — recovery replays the Paxos decided log into
// a fresh engine AND a fresh shard — and requires byte-identical store
// digests across all replicas afterwards: the crash-restart audit now
// covers application state, not just protocol state.
func TestReplicatedStoreCrashRecovery(t *testing.T) {
	d := deployStoreABC(t, 3)
	d.workload(t, 6)
	d.s.RunUntil(8_000_000)

	g1 := d.groups[1]
	lead := g1.Leader()
	if lead < 0 {
		lead = 0
	}
	down := (lead + 1) % 3
	g1.Crash(down)

	// Transactions the crashed replica misses entirely, including
	// cross-shard ones touching its warehouse.
	d.workload(t, 6)
	d.s.RunUntil(16_000_000)

	if err := g1.Restart(down); err != nil {
		t.Fatal(err)
	}
	d.workload(t, 4)
	d.s.RunUntil(30_000_000)
	for _, g := range d.groups {
		g.Stop()
	}
	d.s.Run()

	var shards []*store.Shard
	for _, g := range d.ov.Order() {
		d0 := d.executor(t, g, 0).Digest()
		for r := 1; r < 3; r++ {
			if dr := d.executor(t, g, r).Digest(); dr != d0 {
				t.Fatalf("group %d: replica %d store digest diverged after crash recovery", g, r)
			}
		}
		shards = append(shards, d.executor(t, g, 0).Shard())
	}
	if err := store.CheckInvariants(shards); err != nil {
		t.Fatal(err)
	}
	if a := d.executor(t, 1, down).Shard().Applied(); a == 0 {
		t.Fatal("recovered replica's shard executed nothing")
	}
}
