package smr

import (
	"reflect"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/sim"
	"flexcast/internal/trace"

	"flexcast/internal/overlay"
)

// deploySnap is deployABC with per-replica engine snapshots enabled:
// every snapEvery applied entries each replica snapshots its engine and
// truncates its Paxos log at the boundary.
func deploySnap(t *testing.T, nReplicas, snapEvery int) *abcDeployment {
	t.Helper()
	d := &abcDeployment{
		s:         sim.New(),
		groups:    make(map[amcast.GroupID]*Group),
		delivered: make(map[amcast.GroupID][][]amcast.MsgID),
		rec:       trace.NewRecorder(),
	}
	d.ov = overlay.MustCDAG([]amcast.GroupID{1, 2, 3})
	d.net = sim.NewNetwork(d.s, func(from, to amcast.NodeID) sim.Time { return 2000 })
	for _, g := range d.ov.Order() {
		g := g
		d.delivered[g] = make([][]amcast.MsgID, nReplicas)
		grp := MustNew(Config{
			Group:         g,
			Replicas:      nReplicas,
			SnapshotEvery: snapEvery,
			NewEngine: func() (amcast.Engine, error) {
				return core.New(core.Config{Group: g, Overlay: d.ov})
			},
			OnDeliver: func(rep int, del amcast.Delivery) {
				d.delivered[g][rep] = append(d.delivered[g][rep], del.Msg.ID)
				if rep == 0 {
					if err := d.rec.OnDeliver(del); err != nil {
						t.Error(err)
					}
				}
			},
		}, d.s, d.net)
		d.groups[g] = grp
		grp.Start()
	}
	return d
}

// TestSnapshotsTruncateLog: with snapshots on, replicas GC their Paxos
// log — the retained suffix stays bounded by the cadence while the
// delivery sequences remain identical to an unsnapshotted deployment.
func TestSnapshotsTruncateLog(t *testing.T) {
	plain := deployABC(t, 3)
	plain.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	snapped := deploySnap(t, 3, 4)
	snapped.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	for _, d := range []*abcDeployment{plain, snapped} {
		for i := uint64(1); i <= 12; i++ {
			d.multicast(t, i, 1, 2, 3)
		}
		d.run(t, 10_000_000)
	}
	for g := range snapped.groups {
		for idx := 0; idx < 3; idx++ {
			if !reflect.DeepEqual(plain.delivered[g][idx], snapped.delivered[g][idx]) {
				t.Fatalf("group %d replica %d: snapshotting changed the delivery sequence", g, idx)
			}
		}
		grp := snapped.groups[g]
		for idx, r := range grp.replicas {
			if r.snap == nil {
				t.Fatalf("group %d replica %d never snapshotted (applied %d)", g, idx, r.applied)
			}
			if r.pax.Base() == 0 {
				t.Fatalf("group %d replica %d never truncated its log", g, idx)
			}
			if retained := len(r.pax.DecidedLog()); retained > int(r.pax.Decided()) {
				t.Fatalf("group %d replica %d retained %d > decided %d", g, idx, retained, r.pax.Decided())
			}
		}
	}
	if err := snapped.rec.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotBoundedRestart: a crashed replica restarts from its
// retained snapshot and replays only the log suffix — recovery work is
// bounded by the snapshot cadence plus the decisions missed while down,
// not by the run length.
func TestSnapshotBoundedRestart(t *testing.T) {
	d := deploySnap(t, 3, 4)
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	// Long pre-crash history: far more entries than the cadence.
	for i := uint64(1); i <= 16; i++ {
		d.multicast(t, i, 1, 2, 3)
	}
	d.s.RunUntil(8_000_000)

	g1 := d.groups[1]
	lead := g1.Leader()
	if lead < 0 {
		lead = 0
	}
	down := (lead + 1) % 3
	appliedAtCrash := g1.Applied(down)
	g1.Crash(down)

	for i := uint64(17); i <= 19; i++ {
		d.multicast(t, i, 1, 3)
	}
	d.s.RunUntil(12_000_000)

	if err := g1.Restart(down); err != nil {
		t.Fatal(err)
	}
	stats := g1.LastRecovery()
	if stats == nil || stats.Replica != down {
		t.Fatalf("missing recovery stats for replica %d: %+v", down, stats)
	}
	if !stats.FromSnapshot && !stats.SnapshotShipped {
		t.Fatalf("recovery did not use a snapshot: %+v", stats)
	}
	if got, want := g1.Applied(down), g1.Applied(lead); got != want {
		t.Fatalf("restarted replica applied %d entries, live peer %d", got, want)
	}
	// The bound: replay covers at most the missed entries plus one
	// cadence window — strictly less than full-log replay.
	missed := g1.Applied(lead) - appliedAtCrash
	if bound := int(missed) + 2*4; stats.Replayed > bound {
		t.Fatalf("replayed %d entries, want <= missed(%d) + 2*cadence", stats.Replayed, missed)
	}
	if stats.Replayed >= int(g1.Applied(lead)) {
		t.Fatalf("replayed the whole log (%d of %d): snapshot did not bound recovery",
			stats.Replayed, g1.Applied(lead))
	}

	// The recovered replica keeps delivering consistently.
	pre := len(d.delivered[1][down])
	for i := uint64(20); i <= 22; i++ {
		d.multicast(t, i, 1, 2)
	}
	d.run(t, 16_000_000)
	post := d.delivered[1][down][pre:]
	full := d.delivered[1][lead]
	if len(post) == 0 {
		t.Fatal("restarted replica delivered nothing after restart")
	}
	if len(full) < len(post) || !reflect.DeepEqual(full[len(full)-len(post):], post) {
		t.Fatalf("post-restart deliveries %v not a suffix of live sequence %v", post, full)
	}
	if err := d.rec.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}

// TestDonorSnapshotShipping: a replica that crashes early and misses so
// much history that live peers truncated past its position cannot catch
// up from any retained log — the donor ships its snapshot and the
// recoverer streams only the suffix (the smr analogue of the store's
// follower snapshot shipping).
func TestDonorSnapshotShipping(t *testing.T) {
	d := deploySnap(t, 3, 4)
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	// Crash one replica of group 1 almost immediately.
	d.multicast(t, 1, 1, 2, 3)
	d.s.RunUntil(1_500_000)
	g1 := d.groups[1]
	lead := g1.Leader()
	if lead < 0 {
		lead = 0
	}
	down := (lead + 1) % 3
	downDecided := g1.replicas[down].pax.Decided()
	g1.Crash(down)

	// Enough traffic that every live replica snapshots and truncates
	// well past the crashed replica's decided position.
	for i := uint64(2); i <= 20; i++ {
		d.multicast(t, i, 1, 3)
	}
	d.s.RunUntil(10_000_000)
	if base := g1.replicas[lead].pax.Base(); base <= downDecided {
		t.Fatalf("test premise broken: donor base %d has not passed crashed replica's decided %d",
			base, downDecided)
	}

	if err := g1.Restart(down); err != nil {
		t.Fatal(err)
	}
	stats := g1.LastRecovery()
	if stats == nil || !stats.SnapshotShipped {
		t.Fatalf("expected donor snapshot shipping, got %+v", stats)
	}
	if stats.Donor < 0 || stats.Donor == down {
		t.Fatalf("implausible donor %d", stats.Donor)
	}
	if got, want := g1.Applied(down), g1.Applied(lead); got != want {
		t.Fatalf("shipped replica applied %d entries, live peer %d", got, want)
	}

	// And it participates normally afterwards.
	pre := len(d.delivered[1][down])
	for i := uint64(21); i <= 23; i++ {
		d.multicast(t, i, 1, 2)
	}
	d.run(t, 14_000_000)
	post := d.delivered[1][down][pre:]
	full := d.delivered[1][lead]
	if len(post) == 0 {
		t.Fatal("shipped replica delivered nothing after restart")
	}
	if len(full) < len(post) || !reflect.DeepEqual(full[len(full)-len(post):], post) {
		t.Fatalf("post-restart deliveries %v not a suffix of live sequence %v", post, full)
	}
	if err := d.rec.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}

// TestShippedSnapshotRetained: a donor-shipped snapshot becomes the
// recipient's own retained snapshot. A second crash before the replica
// takes its own snapshot must recover from the shipped one — pairing a
// stale (or nil) snapshot with the raised Paxos base would silently
// lose every entry below the base. Also pins the replay accounting: the
// shipping recovery applies each retained suffix entry exactly once.
func TestShippedSnapshotRetained(t *testing.T) {
	d := deploySnap(t, 3, 4)
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	d.multicast(t, 1, 1, 2, 3)
	d.s.RunUntil(1_500_000)
	g1 := d.groups[1]
	lead := g1.Leader()
	if lead < 0 {
		lead = 0
	}
	down := (lead + 1) % 3
	g1.Crash(down)

	// Enough traffic that live replicas truncate past the crashed
	// replica's position (forcing donor shipping on restart) AND retain
	// a suffix of at least two entries past the snapshot boundary, so
	// the catch-up branch below runs.
	for i := uint64(2); i <= 22; i++ {
		d.multicast(t, i, 1, 3)
	}
	d.s.RunUntil(10_000_000)
	// Simulate a pre-crash gapped learn at the donor's snapshot
	// boundary: the replica heard a Decide for that instance (stable
	// storage, so it survives the crash) while still missing earlier
	// ones. InstallSnapshot re-queues it as deliverable; recovery must
	// apply it exactly once, via the suffix replay.
	donorRep := g1.replicas[(down+1)%3]
	if other := g1.replicas[(down+2)%3]; other.pax.Decided() > donorRep.pax.Decided() {
		donorRep = other
	}
	tail := donorRep.pax.SuffixFrom(donorRep.pax.Base())
	if len(tail) < 2 {
		t.Fatalf("test premise broken: donor retains %d entries past its snapshot, need >= 2", len(tail))
	}
	g1.replicas[down].pax.CatchUp(donorRep.pax.Base(), tail[:1])
	if err := g1.Restart(down); err != nil {
		t.Fatal(err)
	}
	stats := g1.LastRecovery()
	if stats == nil || !stats.SnapshotShipped {
		t.Fatalf("test premise broken: expected donor snapshot shipping, got %+v", stats)
	}
	r := g1.replicas[down]
	if r.snap == nil || r.snapDecided != r.pax.Base() {
		t.Fatalf("shipped snapshot not retained as the replica's own: snap=%v snapDecided=%d base=%d",
			r.snap != nil, r.snapDecided, r.pax.Base())
	}
	if max := int(r.pax.Decided() - r.pax.Base()); stats.Replayed > max {
		t.Fatalf("replayed %d entries but the retained suffix holds only %d — entries applied twice",
			stats.Replayed, max)
	}

	// Crash again immediately: no own-snapshot cadence has fired, so the
	// only snapshot covering the truncated prefix is the shipped one.
	g1.Crash(down)
	d.s.RunUntil(10_500_000)
	if err := g1.Restart(down); err != nil {
		t.Fatal(err)
	}
	stats = g1.LastRecovery()
	if stats == nil || (!stats.FromSnapshot && !stats.SnapshotShipped) {
		t.Fatalf("second recovery ignored the retained shipped snapshot: %+v", stats)
	}
	if got, want := g1.Applied(down), g1.Applied(lead); got != want {
		t.Fatalf("twice-crashed replica applied %d entries, live peer %d", got, want)
	}

	// And it keeps delivering consistently with the survivors.
	pre := len(d.delivered[1][down])
	for i := uint64(23); i <= 25; i++ {
		d.multicast(t, i, 1, 2)
	}
	d.run(t, 14_000_000)
	post := d.delivered[1][down][pre:]
	full := d.delivered[1][lead]
	if len(post) == 0 {
		t.Fatal("replica delivered nothing after the second restart")
	}
	if len(full) < len(post) || !reflect.DeepEqual(full[len(full)-len(post):], post) {
		t.Fatalf("post-restart deliveries %v not a suffix of live sequence %v", post, full)
	}
	if err := d.rec.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotEveryZeroKeepsFullReplay: the default config replays the
// whole log on restart, exactly as before snapshots existed.
func TestSnapshotEveryZeroKeepsFullReplay(t *testing.T) {
	d := deployABC(t, 3)
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	for i := uint64(1); i <= 6; i++ {
		d.multicast(t, i, 1, 2)
	}
	d.s.RunUntil(4_000_000)
	g1 := d.groups[1]
	lead := g1.Leader()
	if lead < 0 {
		lead = 0
	}
	down := (lead + 1) % 3
	g1.Crash(down)
	d.s.RunUntil(5_000_000)
	if err := g1.Restart(down); err != nil {
		t.Fatal(err)
	}
	stats := g1.LastRecovery()
	if stats == nil {
		t.Fatal("missing recovery stats")
	}
	if stats.FromSnapshot || stats.SnapshotShipped {
		t.Fatalf("snapshots used with SnapshotEvery=0: %+v", stats)
	}
	if stats.Replayed != int(g1.replicas[down].pax.Decided()) {
		t.Fatalf("full replay expected: replayed %d of %d decided",
			stats.Replayed, g1.replicas[down].pax.Decided())
	}
	d.run(t, 8_000_000)
	if err := d.rec.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}
