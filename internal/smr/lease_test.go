package smr

import (
	"errors"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/gtpcc"
	"flexcast/internal/overlay"
	"flexcast/internal/sim"
	"flexcast/internal/store"
	"flexcast/internal/trace"
)

const (
	testLeaseTerm   = sim.Time(900_000) // 900ms in sim µs
	testLeaseMargin = sim.Time(150_000)
)

// deployLeasedABC is deployStoreABC with follower read leases enabled
// and the fast-read audit attached to every replica's executor.
func deployLeasedABC(t *testing.T, nReplicas int) (*storeDeployment, *trace.ExecRecorder) {
	t.Helper()
	d := &storeDeployment{
		s:      sim.New(),
		groups: make(map[amcast.GroupID]*Group),
	}
	rec := trace.NewExecRecorder()
	d.ov = overlay.MustCDAG([]amcast.GroupID{1, 2, 3})
	d.net = sim.NewNetwork(d.s, func(from, to amcast.NodeID) sim.Time { return 2000 })
	for _, g := range d.ov.Order() {
		g := g
		grp := MustNew(Config{
			Group:       g,
			Replicas:    nReplicas,
			LeaseTerm:   testLeaseTerm,
			LeaseMargin: testLeaseMargin,
			NewEngine: func() (amcast.Engine, error) {
				eng, err := core.New(core.Config{Group: g, Overlay: d.ov})
				if err != nil {
					return nil, err
				}
				ex, err := store.NewExecutor(eng, store.Config{Warehouse: g}, false)
				if err != nil {
					return nil, err
				}
				ex.SetExecObserver(rec.OnApply)
				ex.SetReadObserver(rec.OnFastRead)
				return ex, nil
			},
		}, d.s, d.net)
		d.groups[g] = grp
		grp.Start()
	}
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	return d, rec
}

// followerRead serves one order-status read at replica idx of group g,
// at the given session barrier, through the lease gate.
func followerRead(d *storeDeployment, g amcast.GroupID, idx int, barrier uint64) (store.ReadResult, error) {
	var res store.ReadResult
	err := d.groups[g].FollowerRead(idx, func(eng amcast.Engine) error {
		ex := eng.(*store.Executor)
		var rerr error
		res, rerr = ex.TryRead(gtpcc.Tx{Type: gtpcc.OrderStatus, Home: g, Customer: 1}, barrier)
		return rerr
	})
	return res, err
}

// TestLeaseGrantRenewalExpiry drives the full lease lifecycle: no lease
// before the first grant is decided, grants renewed while the leader
// lives, refusal after revocation, and expiry once grants stop.
func TestLeaseGrantRenewalExpiry(t *testing.T) {
	d, _ := deployLeasedABC(t, 3)
	g1 := d.groups[1]

	// Before the first grant is decided, followers refuse.
	if _, err := followerRead(d, 1, 1, 0); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("ungranted follower served: %v", err)
	}

	// Run past a few grant periods: every replica must hold a lease.
	d.s.RunUntil(2_000_000)
	for idx := 0; idx < 3; idx++ {
		if !g1.HoldsLease(idx) {
			t.Fatalf("replica %d holds no lease after grant periods (expiry %d, now %d)",
				idx, g1.LeaseExpiry(idx), d.s.Now())
		}
	}
	first := g1.LeaseExpiry(1)
	if first <= 0 {
		t.Fatal("no lease applied")
	}

	// Renewal: expiries keep moving as long as the leader lives.
	d.s.RunUntil(4_000_000)
	if g1.LeaseExpiry(1) <= first {
		t.Fatalf("lease not renewed: expiry still %d", g1.LeaseExpiry(1))
	}
	if _, err := followerRead(d, 1, 1, 0); err != nil {
		t.Fatalf("leased follower refused: %v", err)
	}

	// Revocation rides the log like grants do.
	g1.RevokeLeases()
	d.s.RunUntil(4_100_000)
	if _, err := followerRead(d, 1, 1, 0); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("read after revocation served: %v", err)
	}

	// The next grant period re-establishes the lease; then stop the
	// whole group: with no leader proposing grants the lease expires on
	// its own within one term.
	d.s.RunUntil(5_000_000)
	if !g1.HoldsLease(1) {
		t.Fatal("lease not re-granted after revocation")
	}
	g1.Stop()
	for i := 0; i < 3; i++ {
		g1.Crash(i)
	}
	g2 := d.groups[2]
	_ = g2
	d.s.RunUntil(5_000_000 + int64(testLeaseTerm) + 1)
	g1.replicas[1].crashed = false // inspect the lease gate alone
	if g1.HoldsLease(1) {
		t.Fatalf("lease survived a full term with no leader (expiry %d, now %d)",
			g1.LeaseExpiry(1), d.s.Now())
	}
}

// TestLeaseCrashRecoveryRefusesThenRecovers exercises the two recovery
// shapes. A follower that crashes while a majority stays live catches
// up by state transfer — including the grants decided during its
// downtime — so it may serve again exactly because its state is
// current. A follower recovering with no live peer ahead of it replays
// only pre-crash grants (stale by construction) and must refuse reads
// until a fresh grant is decided — the "expired-lease reads are
// refused" contract.
func TestLeaseCrashRecoveryRefusesThenRecovers(t *testing.T) {
	d, rec := deployLeasedABC(t, 3)
	d.workload(t, 6)
	d.s.RunUntil(3_000_000)

	g1 := d.groups[1]
	if !g1.HoldsLease(1) {
		t.Fatal("follower holds no lease before crash")
	}
	g1.Crash(1)
	if _, err := followerRead(d, 1, 1, 0); err == nil {
		t.Fatal("crashed follower served a read")
	}

	// Majority-alive recovery: the donor's log includes current grants,
	// so the caught-up replica holds a lease consistent with its now-
	// current state.
	d.s.RunUntil(3_000_000 + int64(testLeaseTerm) + int64(testLeaseMargin))
	if err := g1.Restart(1); err != nil {
		t.Fatal(err)
	}
	if !g1.HoldsLease(1) {
		t.Fatalf("caught-up replica holds no lease (expiry %d, now %d) — state transfer lost the grant stream",
			g1.LeaseExpiry(1), d.s.Now())
	}

	// Whole-group crash: recovery replays only the replica's own stable
	// log, whose grants are all pre-crash. Waiting out the term leaves
	// the recovered replica lease-less, and it must refuse.
	crashAt := d.s.Now()
	for i := 0; i < 3; i++ {
		g1.Crash(i)
	}
	d.s.RunUntil(crashAt + 2*int64(testLeaseTerm))
	if err := g1.Restart(1); err != nil {
		t.Fatal(err)
	}
	if g1.HoldsLease(1) {
		t.Fatalf("lone recovered replica holds a pre-crash lease (expiry %d, now %d)",
			g1.LeaseExpiry(1), d.s.Now())
	}
	if _, err := followerRead(d, 1, 1, 0); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("lone recovered replica served before a fresh grant: %v", err)
	}

	// Restart the rest of the group: a leader re-establishes, the next
	// grant is decided, and the follower serves again — at its own
	// watermark, recorded for the audit.
	if err := g1.Restart(0); err != nil {
		t.Fatal(err)
	}
	if err := g1.Restart(2); err != nil {
		t.Fatal(err)
	}
	d.s.RunUntil(d.s.Now() + 2_000_000)
	if !g1.HoldsLease(1) {
		t.Fatal("recovered replica never re-acquired a lease")
	}
	res, err := followerRead(d, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Watermark == 0 {
		t.Fatal("recovered follower served at watermark 0 after a workload")
	}
	if rec.FastReads() == 0 {
		t.Fatal("no fast-read records reached the audit")
	}
	if err := rec.CheckFastReads(); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerReadsMatchLeaderState serves reads at every replica and
// checks the values agree with the serving state (byte-identical
// replicas ⇒ identical read results at equal watermarks).
func TestFollowerReadsMatchLeaderState(t *testing.T) {
	d, rec := deployLeasedABC(t, 3)
	d.workload(t, 8)
	d.s.RunUntil(6_000_000)

	// Records from replica 1 of group 1 must carry its identity and
	// serve-time lease validity (the stamp smr wires into every
	// replica's executor) — the audit's handle on stale follower serves.
	var got []trace.FastReadRecord
	d.executor(t, 1, 1).SetReadObserver(func(r trace.FastReadRecord) {
		got = append(got, r)
		rec.OnFastRead(r)
	})

	for _, g := range d.ov.Order() {
		ex0 := d.executor(t, g, 0)
		want, err := ex0.TryRead(gtpcc.Tx{Type: gtpcc.OrderStatus, Home: g, Customer: 1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for idx := 1; idx < 3; idx++ {
			got, err := followerRead(d, g, idx, 0)
			if err != nil {
				t.Fatalf("group %d replica %d: %v", g, idx, err)
			}
			if got.Value != want.Value {
				t.Fatalf("group %d replica %d read %d, leader read %d", g, idx, got.Value, want.Value)
			}
		}
	}
	if len(got) == 0 {
		t.Fatal("replica 1 of group 1 recorded no reads")
	}
	for _, r := range got {
		if r.Replica != 1 || !r.LeaseOK {
			t.Fatalf("follower read record mis-stamped: %+v", r)
		}
	}
	if err := rec.CheckFastReads(); err != nil {
		t.Fatal(err)
	}
	for _, g := range d.groups {
		g.Stop()
	}
	d.s.Run()
}
