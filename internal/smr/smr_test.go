package smr

import (
	"reflect"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
	"flexcast/internal/sim"
	"flexcast/internal/trace"
)

// abcDeployment builds a 3-group FlexCast overlay where every group is
// replicated by nReplicas.
type abcDeployment struct {
	s      *sim.Simulator
	net    *sim.Network
	groups map[amcast.GroupID]*Group
	// delivered[g][replica] is the delivery sequence of one replica.
	delivered map[amcast.GroupID][][]amcast.MsgID
	rec       *trace.Recorder
	ov        *overlay.CDAG
}

func deployABC(t *testing.T, nReplicas int) *abcDeployment {
	t.Helper()
	d := &abcDeployment{
		s:         sim.New(),
		groups:    make(map[amcast.GroupID]*Group),
		delivered: make(map[amcast.GroupID][][]amcast.MsgID),
		rec:       trace.NewRecorder(),
	}
	d.ov = overlay.MustCDAG([]amcast.GroupID{1, 2, 3})
	// Inter-node latency 2ms; intra-group replica links are configured on
	// the group itself.
	d.net = sim.NewNetwork(d.s, func(from, to amcast.NodeID) sim.Time { return 2000 })
	for _, g := range d.ov.Order() {
		g := g
		d.delivered[g] = make([][]amcast.MsgID, nReplicas)
		grp := MustNew(Config{
			Group:    g,
			Replicas: nReplicas,
			NewEngine: func() (amcast.Engine, error) {
				return core.New(core.Config{Group: g, Overlay: d.ov})
			},
			OnDeliver: func(rep int, del amcast.Delivery) {
				d.delivered[g][rep] = append(d.delivered[g][rep], del.Msg.ID)
				if rep == 0 {
					if err := d.rec.OnDeliver(del); err != nil {
						t.Error(err)
					}
				}
			},
		}, d.s, d.net)
		d.groups[g] = grp
		grp.Start()
	}
	return d
}

func (d *abcDeployment) multicast(t *testing.T, id uint64, dst ...amcast.GroupID) {
	t.Helper()
	m := amcast.Message{
		ID:     amcast.MsgID(id),
		Sender: amcast.ClientNode(0),
		Dst:    amcast.NormalizeDst(dst),
	}
	d.rec.OnMulticast(m)
	cid := amcast.ClientNode(0)
	d.net.Send(cid, amcast.GroupNode(d.ov.Lca(m.Dst)), amcast.Envelope{
		Kind: amcast.KindRequest, From: cid, Msg: m,
	})
}

func (d *abcDeployment) run(t *testing.T, horizon sim.Time) {
	t.Helper()
	d.s.RunUntil(horizon)
	for _, g := range d.groups {
		g.Stop()
	}
	d.s.Run()
}

func TestReplicatedGroupsDeliverConsistently(t *testing.T) {
	d := deployABC(t, 3)
	// The client node must exist to absorb replies.
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	for i := uint64(1); i <= 8; i++ {
		d.multicast(t, i, 1, 2, 3)
	}
	d.multicast(t, 9, 2, 3)
	d.multicast(t, 10, 1, 3)
	d.run(t, 5_000_000)

	// Every replica of every group must have delivered the identical
	// sequence (determinism + identical decided logs).
	for g, reps := range d.delivered {
		for i := 1; i < len(reps); i++ {
			if !reflect.DeepEqual(reps[0], reps[i]) {
				t.Fatalf("group %d: replica 0 delivered %v, replica %d delivered %v",
					g, reps[0], i, reps[i])
			}
		}
		if len(reps[0]) == 0 {
			t.Fatalf("group %d delivered nothing", g)
		}
	}
	// The protocol's own guarantees must hold across replicated groups.
	if err := d.rec.CheckAll(false); err != nil {
		t.Fatal(err)
	}
}

func TestFollowerCrashTolerated(t *testing.T) {
	d := deployABC(t, 3)
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	d.multicast(t, 1, 1, 2)
	d.s.RunUntil(1_000_000)
	// Crash one follower in every group.
	for _, g := range d.groups {
		idx := g.Leader()
		g.Crash((idx + 1) % 3)
	}
	for i := uint64(2); i <= 5; i++ {
		d.multicast(t, i, 1, 2, 3)
	}
	d.run(t, 10_000_000)
	for g := range d.groups {
		live := d.delivered[g]
		// The two live replicas agree; find them by non-empty sequences.
		if len(live[0]) == 0 {
			t.Fatalf("group %d replica 0 delivered nothing", g)
		}
	}
	if err := d.rec.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaderCrashFailover(t *testing.T) {
	d := deployABC(t, 3)
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	d.multicast(t, 1, 1, 2)
	d.s.RunUntil(1_000_000)
	// Crash the current leader of group 1.
	lead := d.groups[1].Leader()
	if lead < 0 {
		lead = 0
	}
	d.groups[1].Crash(lead)
	for i := uint64(2); i <= 4; i++ {
		d.multicast(t, i, 1, 2)
	}
	d.run(t, 30_000_000)
	// The surviving replicas of group 1 must have delivered all four
	// messages.
	for idx, seq := range d.delivered[1] {
		if idx == lead {
			continue
		}
		if len(seq) != 4 {
			t.Fatalf("replica %d of group 1 delivered %v, want 4 messages", idx, seq)
		}
	}
	if newLead := d.groups[1].Leader(); newLead == lead || newLead < 0 {
		t.Fatalf("leadership did not move: %d -> %d", lead, newLead)
	}
}

func TestReplicaNodeAddressing(t *testing.T) {
	seen := make(map[amcast.NodeID]bool)
	for g := amcast.GroupID(1); g <= 12; g++ {
		gn := amcast.GroupNode(g)
		if gn.IsClient() {
			t.Fatal("group node in client range")
		}
		for i := 0; i < 5; i++ {
			n := ReplicaNode(g, i)
			if seen[n] {
				t.Fatalf("replica node collision at g=%d i=%d", g, i)
			}
			seen[n] = true
			if n.IsClient() {
				t.Fatalf("replica node %v in client range", n)
			}
			if n == gn {
				t.Fatal("replica node collides with group node")
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	s := sim.New()
	net := sim.NewNetwork(s, func(from, to amcast.NodeID) sim.Time { return 1 })
	if _, err := New(Config{Group: 1, Replicas: 0}, s, net); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := New(Config{Group: 1, Replicas: 1}, s, net); err == nil {
		t.Error("missing engine factory accepted")
	}
	ov := overlay.MustCDAG([]amcast.GroupID{1})
	if _, err := New(Config{
		Group: 1, Replicas: 1,
		NewEngine: func() (amcast.Engine, error) { return core.New(core.Config{Group: 1, Overlay: ov}) },
	}, s, net); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestSingleReplicaGroupBehavesLikePlainEngine(t *testing.T) {
	d := deployABC(t, 1)
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	for i := uint64(1); i <= 5; i++ {
		d.multicast(t, i, 1, 2, 3)
	}
	d.run(t, 5_000_000)
	want := []amcast.MsgID{1, 2, 3, 4, 5}
	for g, reps := range d.delivered {
		if !reflect.DeepEqual(reps[0], want) {
			t.Fatalf("group %d delivered %v, want %v", g, reps[0], want)
		}
	}
	if err := d.rec.CheckAll(false); err != nil {
		t.Fatal(err)
	}
}

func TestAppliedCountsMatch(t *testing.T) {
	d := deployABC(t, 3)
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	for i := uint64(1); i <= 6; i++ {
		d.multicast(t, i, 1, 2, 3)
	}
	d.run(t, 5_000_000)
	for g, grp := range d.groups {
		a0 := grp.Applied(0)
		if a0 == 0 {
			t.Fatalf("group %d applied nothing", g)
		}
		for i := 1; i < 3; i++ {
			if grp.Applied(i) != a0 {
				t.Fatalf("group %d: applied counts diverge: %d vs %d", g, a0, grp.Applied(i))
			}
		}
	}
}

// TestCrashedReplicaRestartsAndCatchesUp exercises the §4.4 recovery
// path: a crashed follower restarts, rebuilds its engine by replaying
// its stable decided log, state-transfers the suffix it missed from a
// live peer, and then participates normally.
func TestCrashedReplicaRestartsAndCatchesUp(t *testing.T) {
	d := deployABC(t, 3)
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	d.multicast(t, 1, 1, 2, 3)
	d.multicast(t, 2, 1, 2)
	d.s.RunUntil(2_000_000)

	g1 := d.groups[1]
	lead := g1.Leader()
	if lead < 0 {
		lead = 0
	}
	down := (lead + 1) % 3
	g1.Crash(down)

	// Traffic the crashed replica misses entirely.
	for i := uint64(3); i <= 6; i++ {
		d.multicast(t, i, 1, 3)
	}
	d.s.RunUntil(6_000_000)

	if err := g1.Restart(down); err != nil {
		t.Fatal(err)
	}
	// The restarted replica must already have caught up to a live peer.
	if got, want := g1.Applied(down), g1.Applied(lead); got != want {
		t.Fatalf("restarted replica applied %d entries, live peer %d", got, want)
	}

	// And it keeps up with new traffic.
	preRestart := len(d.delivered[1][down])
	for i := uint64(7); i <= 9; i++ {
		d.multicast(t, i, 1, 2)
	}
	d.run(t, 12_000_000)

	for idx := 0; idx < 3; idx++ {
		if got, want := g1.Applied(idx), g1.Applied(lead); got != want {
			t.Fatalf("replica %d applied %d entries, leader %d", idx, got, want)
		}
	}
	post := d.delivered[1][down][preRestart:]
	if len(post) == 0 {
		t.Fatal("restarted replica delivered nothing after restart")
	}
	// Replayed deliveries are suppressed, so the restarted replica's
	// post-restart deliveries must be a suffix of a live replica's full
	// sequence (consistent order, no duplicates, no gaps at the end).
	full := d.delivered[1][lead]
	if len(full) < len(post) || !reflect.DeepEqual(full[len(full)-len(post):], post) {
		t.Fatalf("post-restart deliveries %v are not a suffix of live sequence %v", post, full)
	}
	if err := d.rec.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartOfLiveReplicaIsNoop covers the guard.
func TestRestartOfLiveReplicaIsNoop(t *testing.T) {
	d := deployABC(t, 3)
	d.net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))
	d.multicast(t, 1, 1, 2)
	d.s.RunUntil(1_000_000)
	before := d.groups[1].Applied(1)
	if err := d.groups[1].Restart(1); err != nil {
		t.Fatal(err)
	}
	if d.groups[1].Applied(1) != before {
		t.Fatal("restart of live replica rebuilt its state")
	}
}
