package trace

import (
	"strings"
	"testing"

	"flexcast/amcast"
)

func msg(id uint64, dst ...amcast.GroupID) amcast.Message {
	return amcast.Message{ID: amcast.MsgID(id), Sender: amcast.ClientNode(0), Dst: amcast.NormalizeDst(dst)}
}

func deliver(t *testing.T, r *Recorder, g amcast.GroupID, id uint64) {
	t.Helper()
	if err := r.OnDeliver(amcast.Delivery{Group: g, Msg: amcast.Message{ID: amcast.MsgID(id)}}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleDeliveryRejected(t *testing.T) {
	r := NewRecorder()
	r.OnMulticast(msg(1, 1))
	deliver(t, r, 1, 1)
	if err := r.OnDeliver(amcast.Delivery{Group: 1, Msg: amcast.Message{ID: 1}}); err == nil {
		t.Fatal("double delivery accepted")
	}
}

func TestIntegrityViolations(t *testing.T) {
	t.Run("never multicast", func(t *testing.T) {
		r := NewRecorder()
		deliver(t, r, 1, 7)
		if err := r.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "never-multicast") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("wrong destination", func(t *testing.T) {
		r := NewRecorder()
		r.OnMulticast(msg(1, 2))
		deliver(t, r, 1, 1)
		if err := r.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "addressed") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("clean", func(t *testing.T) {
		r := NewRecorder()
		r.OnMulticast(msg(1, 1))
		deliver(t, r, 1, 1)
		if err := r.CheckIntegrity(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAgreement(t *testing.T) {
	r := NewRecorder()
	r.OnMulticast(msg(1, 1, 2))
	deliver(t, r, 1, 1)
	if err := r.CheckAgreement(); err == nil {
		t.Fatal("missing delivery at group 2 not detected")
	}
	deliver(t, r, 2, 1)
	if err := r.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixOrder(t *testing.T) {
	t.Run("violation", func(t *testing.T) {
		r := NewRecorder()
		r.OnMulticast(msg(1, 1, 2))
		r.OnMulticast(msg(2, 1, 2))
		deliver(t, r, 1, 1)
		deliver(t, r, 1, 2)
		deliver(t, r, 2, 2)
		deliver(t, r, 2, 1)
		if err := r.CheckPrefixOrder(); err == nil {
			t.Fatal("opposite orders not detected")
		}
	})
	t.Run("interleaved but consistent", func(t *testing.T) {
		r := NewRecorder()
		// Group 1 delivers 1,5,2; group 2 delivers 1,9,2: common = 1,2 in
		// the same order.
		for _, id := range []uint64{1, 2, 5, 9} {
			r.OnMulticast(msg(id, 1, 2))
		}
		deliver(t, r, 1, 1)
		deliver(t, r, 1, 5)
		deliver(t, r, 1, 2)
		deliver(t, r, 2, 1)
		deliver(t, r, 2, 9)
		deliver(t, r, 2, 2)
		if err := r.CheckPrefixOrder(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAcyclicOrder(t *testing.T) {
	r := NewRecorder()
	// 1 < 2 at group 1; 2 < 3 at group 2; 3 < 1 at group 3: a cycle that
	// no single pair of groups exposes.
	deliver(t, r, 1, 1)
	deliver(t, r, 1, 2)
	deliver(t, r, 2, 2)
	deliver(t, r, 2, 3)
	deliver(t, r, 3, 3)
	deliver(t, r, 3, 1)
	if err := r.CheckAcyclicOrder(); err == nil {
		t.Fatal("3-group delivery cycle not detected")
	}
	// Note: prefix order on pairs does not catch this cycle; each group
	// pair shares only one message here.
	if err := r.CheckPrefixOrder(); err != nil {
		t.Fatalf("prefix order unexpectedly caught the cycle: %v", err)
	}
}

func sendEnv(r *Recorder, from, to amcast.NodeID, kind amcast.Kind, m amcast.Message) {
	r.OnSend(from, to, amcast.Envelope{Kind: kind, From: from, Msg: m})
}

func TestMinimality(t *testing.T) {
	g := amcast.GroupNode
	t.Run("msg to non-destination", func(t *testing.T) {
		r := NewRecorder()
		m := msg(1, 1, 2)
		r.OnMulticast(m)
		sendEnv(r, g(1), g(3), amcast.KindMsg, m)
		if err := r.CheckMinimality(); err == nil {
			t.Fatal("MSG to non-destination accepted")
		}
	})
	t.Run("ack from non-destination without notif", func(t *testing.T) {
		r := NewRecorder()
		m := msg(1, 1, 3)
		r.OnMulticast(m)
		sendEnv(r, g(2), g(3), amcast.KindAck, m.Header())
		if err := r.CheckMinimality(); err == nil {
			t.Fatal("unjustified ACK accepted")
		}
	})
	t.Run("ack from notified group ok", func(t *testing.T) {
		r := NewRecorder()
		m := msg(1, 1, 3)
		m2 := msg(2, 1, 2) // justifies group 2 receiving traffic
		r.OnMulticast(m)
		r.OnMulticast(m2)
		sendEnv(r, g(1), g(2), amcast.KindNotif, m.Header())
		sendEnv(r, g(2), g(3), amcast.KindAck, m.Header())
		if err := r.CheckMinimality(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("notif to destination rejected", func(t *testing.T) {
		r := NewRecorder()
		m := msg(1, 1, 2)
		r.OnMulticast(m)
		sendEnv(r, g(1), g(2), amcast.KindNotif, m.Header())
		if err := r.CheckMinimality(); err == nil {
			t.Fatal("NOTIF to destination accepted")
		}
	})
	t.Run("notif to never-addressed group rejected", func(t *testing.T) {
		r := NewRecorder()
		m := msg(1, 1, 3)
		r.OnMulticast(m)
		sendEnv(r, g(1), g(2), amcast.KindNotif, m.Header())
		if err := r.CheckMinimality(); err == nil {
			t.Fatal("NOTIF to group no multicast addresses accepted")
		}
	})
}

func TestCheckAllOrder(t *testing.T) {
	r := NewRecorder()
	r.OnMulticast(msg(1, 1))
	deliver(t, r, 1, 1)
	if err := r.CheckAll(true); err != nil {
		t.Fatal(err)
	}
	if r.Multicasts() != 1 || r.Deliveries() != 1 {
		t.Fatalf("counts: %d multicasts, %d deliveries", r.Multicasts(), r.Deliveries())
	}
	if got := r.Sequence(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Sequence(1) = %v", got)
	}
}
