// Package trace records protocol runs and checks them against the atomic
// multicast specification of the paper's §2.2: Validity, Agreement,
// Integrity, Prefix Order and Acyclic Order, plus the Minimality property
// that defines genuineness. Tests run random workloads through each
// protocol and hand the recorded run to the checkers.
package trace

import (
	"fmt"
	"sort"

	"flexcast/amcast"
)

// Send is one recorded transmission.
type Send struct {
	From, To amcast.NodeID
	Kind     amcast.Kind
	MsgID    amcast.MsgID
}

// Recorder accumulates one run. Not safe for concurrent use; the
// simulator is single-threaded and tests own the recorder.
type Recorder struct {
	multicast map[amcast.MsgID]amcast.Message
	// seqs[g] is g's delivery sequence in order.
	seqs map[amcast.GroupID][]amcast.MsgID
	// pos[g][id] is the index of id in seqs[g].
	pos   map[amcast.GroupID]map[amcast.MsgID]int
	sends []Send
}

// NewRecorder returns an empty run recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		multicast: make(map[amcast.MsgID]amcast.Message),
		seqs:      make(map[amcast.GroupID][]amcast.MsgID),
		pos:       make(map[amcast.GroupID]map[amcast.MsgID]int),
	}
}

// OnMulticast records a client multicast.
func (r *Recorder) OnMulticast(m amcast.Message) {
	r.multicast[m.ID] = m
}

// OnDeliver records a delivery. It returns an error immediately when the
// same group delivers the same message twice (the first half of
// Integrity), because later checks assume unique positions.
func (r *Recorder) OnDeliver(d amcast.Delivery) error {
	p, ok := r.pos[d.Group]
	if !ok {
		p = make(map[amcast.MsgID]int)
		r.pos[d.Group] = p
	}
	if _, dup := p[d.Msg.ID]; dup {
		return fmt.Errorf("integrity: group %d delivered message %s twice", d.Group, d.Msg.ID)
	}
	p[d.Msg.ID] = len(r.seqs[d.Group])
	r.seqs[d.Group] = append(r.seqs[d.Group], d.Msg.ID)
	return nil
}

// OnSend records a transmission for the minimality audit.
func (r *Recorder) OnSend(from, to amcast.NodeID, env amcast.Envelope) {
	r.sends = append(r.sends, Send{From: from, To: to, Kind: env.Kind, MsgID: env.Msg.ID})
}

// Multicasts returns the number of recorded multicasts.
func (r *Recorder) Multicasts() int { return len(r.multicast) }

// Message returns the recorded multicast for id, and whether one exists.
// Failure analysis uses it to recover a cycle member's destination set.
func (r *Recorder) Message(id amcast.MsgID) (amcast.Message, bool) {
	m, ok := r.multicast[id]
	return m, ok
}

// Groups returns the groups that delivered at least one message, sorted.
func (r *Recorder) Groups() []amcast.GroupID {
	gs := make([]amcast.GroupID, 0, len(r.seqs))
	for g := range r.seqs {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	return gs
}

// Deliveries returns the total number of recorded deliveries.
func (r *Recorder) Deliveries() int {
	n := 0
	for _, s := range r.seqs {
		n += len(s)
	}
	return n
}

// Sequence returns group g's delivery order.
func (r *Recorder) Sequence(g amcast.GroupID) []amcast.MsgID {
	return append([]amcast.MsgID(nil), r.seqs[g]...)
}

// CheckIntegrity verifies that every delivery was (i) at most once per
// group (enforced on record), (ii) at a destination of the message, and
// (iii) of a message that was previously multicast.
func (r *Recorder) CheckIntegrity() error {
	for g, seq := range r.seqs {
		for _, id := range seq {
			m, ok := r.multicast[id]
			if !ok {
				return fmt.Errorf("integrity: group %d delivered never-multicast message %s", g, id)
			}
			if !m.HasDst(g) {
				return fmt.Errorf("integrity: group %d delivered message %s addressed to %v", g, id, m.Dst)
			}
		}
	}
	return nil
}

// CheckAgreement verifies that, at the end of a quiesced run, every
// multicast message was delivered by all of its destinations (Validity
// plus Agreement for runs without failures).
func (r *Recorder) CheckAgreement() error {
	ids := make([]amcast.MsgID, 0, len(r.multicast))
	for id := range r.multicast {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m := r.multicast[id]
		for _, g := range m.Dst {
			if _, ok := r.pos[g][id]; !ok {
				return fmt.Errorf("agreement: message %s (dst %v) not delivered at group %d", id, m.Dst, g)
			}
		}
	}
	return nil
}

// CheckPrefixOrder verifies the paper's prefix-order property: any two
// messages sharing two or more destination groups are delivered in the
// same relative order at every common destination that delivered both.
//
// Implementation: for every pair of groups (g, h), take the messages
// delivered by both in g's delivery order; their positions in h's order
// must be strictly increasing. Any inversion is a pair delivered in
// opposite orders. This is O(common · log) per group pair instead of the
// naive O(n²) over message pairs.
func (r *Recorder) CheckPrefixOrder() error {
	groups := make([]amcast.GroupID, 0, len(r.seqs))
	for g := range r.seqs {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for i, g := range groups {
		for _, h := range groups[i+1:] {
			if err := r.checkPairOrder(g, h); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *Recorder) checkPairOrder(g, h amcast.GroupID) error {
	posH := r.pos[h]
	lastPos := -1
	var lastID amcast.MsgID
	for _, id := range r.seqs[g] {
		p, ok := posH[id]
		if !ok {
			continue
		}
		if p < lastPos {
			return fmt.Errorf("prefix order: groups %d and %d deliver %s and %s in opposite orders",
				g, h, lastID, id)
		}
		lastPos, lastID = p, id
	}
	return nil
}

// CheckAcyclicOrder verifies that the global relation ≺ ("delivered
// before at some group") is acyclic, by cycle-detecting the union of the
// per-group delivery chains.
func (r *Recorder) CheckAcyclicOrder() error {
	succ := make(map[amcast.MsgID]map[amcast.MsgID]bool)
	for _, seq := range r.seqs {
		for i := 0; i+1 < len(seq); i++ {
			s, ok := succ[seq[i]]
			if !ok {
				s = make(map[amcast.MsgID]bool)
				succ[seq[i]] = s
			}
			s[seq[i+1]] = true
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[amcast.MsgID]int)
	var visit func(id amcast.MsgID) error
	visit = func(id amcast.MsgID) error {
		color[id] = gray
		for s := range succ[id] {
			switch color[s] {
			case gray:
				return fmt.Errorf("acyclic order: delivery cycle through %s and %s", id, s)
			case white:
				if err := visit(s); err != nil {
					return err
				}
			}
		}
		color[id] = black
		return nil
	}
	for id := range succ {
		if color[id] == white {
			if err := visit(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckMinimality audits FlexCast's genuineness argument (§4.1.1):
//
//   - MSG and ACK envelopes about m flow only between m's destinations,
//     except ACKs from groups that were notified about m;
//   - a NOTIF about m from g to h is allowed only when h is not a
//     destination of m and some message addressed to h was multicast in
//     the run — the Minimality property's justification for h receiving
//     traffic (§2.2: a process receives a message only if some multicast
//     in the run names it).
//
// Skeen's protocol passes trivially (TS only between destinations); the
// hierarchical protocol fails it by design.
func (r *Recorder) CheckMinimality() error {
	notified := make(map[amcast.MsgID]map[amcast.GroupID]bool)
	// isDst[g] reports whether any multicast in the run addresses g.
	isDst := make(map[amcast.GroupID]bool)
	for _, m := range r.multicast {
		for _, g := range m.Dst {
			isDst[g] = true
		}
	}
	for _, s := range r.sends {
		m, known := r.multicast[s.MsgID]
		switch s.Kind {
		case amcast.KindRequest:
			if known && !s.To.IsClient() && !m.HasDst(s.To.Group()) {
				return fmt.Errorf("minimality: request for %s sent to non-destination %s", s.MsgID, s.To)
			}
		case amcast.KindMsg:
			if known && !s.To.IsClient() && !m.HasDst(s.To.Group()) {
				return fmt.Errorf("minimality: MSG %s sent to non-destination %s", s.MsgID, s.To)
			}
		case amcast.KindAck:
			if !known || s.To.IsClient() || s.From.IsClient() {
				continue
			}
			fromOK := m.HasDst(s.From.Group()) || notified[s.MsgID][s.From.Group()]
			if !fromOK {
				return fmt.Errorf("minimality: ACK for %s from non-destination, non-notified %s", s.MsgID, s.From)
			}
			if !m.HasDst(s.To.Group()) {
				return fmt.Errorf("minimality: ACK for %s sent to non-destination %s", s.MsgID, s.To)
			}
		case amcast.KindNotif:
			if known && !s.To.IsClient() && m.HasDst(s.To.Group()) {
				return fmt.Errorf("minimality: NOTIF for %s sent to destination %s", s.MsgID, s.To)
			}
			if !s.To.IsClient() && !isDst[s.To.Group()] {
				return fmt.Errorf("minimality: NOTIF for %s sent to %s, which no multicast in the run addresses",
					s.MsgID, s.To)
			}
			n, ok := notified[s.MsgID]
			if !ok {
				n = make(map[amcast.GroupID]bool)
				notified[s.MsgID] = n
			}
			n[s.To.Group()] = true
		}
	}
	return nil
}

// CheckAll runs every specification check appropriate for a quiesced,
// failure-free run. minimality selects whether the genuineness audit runs
// (it must be false for the hierarchical protocol).
func (r *Recorder) CheckAll(minimality bool) error {
	if err := r.CheckIntegrity(); err != nil {
		return err
	}
	if err := r.CheckAgreement(); err != nil {
		return err
	}
	if err := r.CheckPrefixOrder(); err != nil {
		return err
	}
	if err := r.CheckAcyclicOrder(); err != nil {
		return err
	}
	if minimality {
		return r.CheckMinimality()
	}
	return nil
}
