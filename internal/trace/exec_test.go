package trace

import (
	"strings"
	"testing"

	"flexcast/amcast"
)

func rec(g amcast.GroupID, seq uint64, tx amcast.MsgID, readSet uint64, involved []amcast.GroupID, rows ...Row) ExecRecord {
	return ExecRecord{
		Group: g, Seq: seq, TxID: tx, Kind: 1, Committed: true,
		ReadSet: readSet, Involved: involved, Rows: rows,
	}
}

func w(g amcast.GroupID, table uint8, key int32) Row {
	return Row{Shard: g, Table: table, Key: key, Write: true}
}

func rd(g amcast.GroupID, table uint8, key int32) Row {
	return Row{Shard: g, Table: table, Key: key, Write: false}
}

func TestExecCleanRunPasses(t *testing.T) {
	r := NewExecRecorder()
	both := []amcast.GroupID{1, 2}
	// Two cross-shard transactions applied in the same order at both
	// shards, plus a local one.
	r.OnApply(rec(1, 0, 10, 0xA, both, w(1, TableStock, 3)))
	r.OnApply(rec(1, 1, 11, 0xB, both, w(1, TableStock, 3)))
	r.OnApply(rec(2, 0, 10, 0xA, both, w(2, TableStock, 7)))
	r.OnApply(rec(2, 1, 11, 0xB, both, w(2, TableStock, 7)))
	r.OnApply(rec(2, 2, 12, 0xC, []amcast.GroupID{2}, w(2, TableCustomer, 1)))
	if err := r.CheckAll(); err != nil {
		t.Fatal(err)
	}
	if r.Records() != 5 {
		t.Fatalf("records = %d, want 5", r.Records())
	}
}

func TestExecDetectsConflictCycle(t *testing.T) {
	r := NewExecRecorder()
	both := []amcast.GroupID{1, 2}
	// Shard 1 applies 10 before 11; shard 2 applies 11 before 10, with
	// write-write conflicts on both shards: a classic serializability
	// cycle that per-shard checks cannot see.
	r.OnApply(rec(1, 0, 10, 0xA, both, w(1, TableStock, 3)))
	r.OnApply(rec(1, 1, 11, 0xB, both, w(1, TableStock, 3)))
	r.OnApply(rec(2, 0, 11, 0xB, both, w(2, TableStock, 3)))
	r.OnApply(rec(2, 1, 10, 0xA, both, w(2, TableStock, 3)))
	err := r.CheckAll()
	if err == nil || !strings.Contains(err.Error(), "not serializable") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestExecReadOnlyDoesNotConflict(t *testing.T) {
	r := NewExecRecorder()
	both := []amcast.GroupID{1, 2}
	// Opposite application orders are fine when all common accesses are
	// reads.
	r.OnApply(rec(1, 0, 10, 0xA, both, rd(1, TableStock, 3)))
	r.OnApply(rec(1, 1, 11, 0xB, both, rd(1, TableStock, 3)))
	r.OnApply(rec(2, 0, 11, 0xB, both, rd(2, TableStock, 3)))
	r.OnApply(rec(2, 1, 10, 0xA, both, rd(2, TableStock, 3)))
	if err := r.CheckAll(); err != nil {
		t.Fatal(err)
	}
}

func TestExecReadWriteConflictDetected(t *testing.T) {
	r := NewExecRecorder()
	both := []amcast.GroupID{1, 2}
	// T10 reads what T11 writes on shard 1 (10 before 11) but on shard 2
	// the write lands first — a read-write cycle.
	r.OnApply(rec(1, 0, 10, 0xA, both, rd(1, TableStock, 3)))
	r.OnApply(rec(1, 1, 11, 0xB, both, w(1, TableStock, 3)))
	r.OnApply(rec(2, 0, 11, 0xB, both, w(2, TableStock, 3)))
	r.OnApply(rec(2, 1, 10, 0xA, both, rd(2, TableStock, 3)))
	err := r.CheckAll()
	if err == nil || !strings.Contains(err.Error(), "not serializable") {
		t.Fatalf("read-write cycle not detected: %v", err)
	}
}

func TestExecDetectsReadSetMismatch(t *testing.T) {
	r := NewExecRecorder()
	both := []amcast.GroupID{1, 2}
	r.OnApply(rec(1, 0, 10, 0xA, both, w(1, TableStock, 1)))
	r.OnApply(rec(2, 0, 10, 0xDEAD, both, w(2, TableStock, 1)))
	err := r.CheckAll()
	if err == nil || !strings.Contains(err.Error(), "read-set digest differs") {
		t.Fatalf("read-set mismatch not detected: %v", err)
	}
}

func TestExecDetectsVerdictMismatch(t *testing.T) {
	r := NewExecRecorder()
	both := []amcast.GroupID{1, 2}
	r.OnApply(rec(1, 0, 10, 0xA, both))
	bad := rec(2, 0, 10, 0xA, both)
	bad.Committed = false
	r.OnApply(bad)
	err := r.CheckAll()
	if err == nil || !strings.Contains(err.Error(), "verdict differs") {
		t.Fatalf("verdict mismatch not detected: %v", err)
	}
}

func TestExecDetectsMissingApplication(t *testing.T) {
	r := NewExecRecorder()
	r.OnApply(rec(1, 0, 10, 0xA, []amcast.GroupID{1, 2}, w(1, TableStock, 1)))
	err := r.CheckAll()
	if err == nil || !strings.Contains(err.Error(), "never applied") {
		t.Fatalf("missing application not detected: %v", err)
	}
}

func TestExecDetectsForeignRow(t *testing.T) {
	r := NewExecRecorder()
	r.OnApply(rec(1, 0, 10, 0xA, []amcast.GroupID{1}, w(2, TableStock, 1)))
	err := r.CheckAll()
	if err == nil || !strings.Contains(err.Error(), "foreign row") {
		t.Fatalf("foreign row not detected: %v", err)
	}
}

func TestExecDetectsUninvolvedShard(t *testing.T) {
	r := NewExecRecorder()
	r.OnApply(rec(3, 0, 10, 0xA, []amcast.GroupID{1, 2}, w(3, TableStock, 1)))
	err := r.CheckAll()
	if err == nil || !strings.Contains(err.Error(), "without being involved") {
		t.Fatalf("uninvolved application not detected: %v", err)
	}
}

func TestExecRecoveryReplayFoldsIdenticalDuplicates(t *testing.T) {
	r := NewExecRecorder()
	one := []amcast.GroupID{1}
	a := rec(1, 0, 10, 0xA, one, w(1, TableStock, 1))
	r.OnApply(a)
	r.OnApply(a) // WAL replay after a crash re-applies identically
	if err := r.CheckAll(); err != nil {
		t.Fatal(err)
	}
	if r.Records() != 1 {
		t.Fatalf("records = %d, want 1 (duplicate folded)", r.Records())
	}
}

func TestExecRecoveryReplayDivergenceDetected(t *testing.T) {
	r := NewExecRecorder()
	one := []amcast.GroupID{1}
	r.OnApply(rec(1, 0, 10, 0xA, one, w(1, TableStock, 1)))
	diverged := rec(1, 0, 10, 0xA, one, w(1, TableStock, 2))
	r.OnApply(diverged)
	err := r.CheckAll()
	if err == nil || !strings.Contains(err.Error(), "replay") {
		t.Fatalf("replay divergence not detected: %v", err)
	}
}

func TestExecOutOfOrderApplicationDetected(t *testing.T) {
	r := NewExecRecorder()
	one := []amcast.GroupID{1}
	r.OnApply(rec(1, 0, 10, 0xA, one))
	r.OnApply(rec(1, 5, 11, 0xB, one)) // skipped indices 1..4
	err := r.CheckAll()
	if err == nil || !strings.Contains(err.Error(), "lost or reordered") {
		t.Fatalf("application gap not detected: %v", err)
	}
}
