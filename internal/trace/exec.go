package trace

import (
	"fmt"
	"reflect"
	"sort"
	"sync"

	"flexcast/amcast"
)

// Execution-level checking for partially replicated state machines
// (internal/store): the store reports every transaction it applies as an
// ExecRecord, and the ExecRecorder verifies that the execution — not
// merely the delivery order — is cross-group serializable:
//
//   - read-set agreement: every group involved in a transaction decodes
//     the same transaction (identical read-set digest, type, involved
//     set) and reaches the same commit/abort verdict;
//   - containment: a shard only touches rows it owns (the partial-
//     replication contract: warehouse = group = shard), and only applies
//     transactions it is involved in;
//   - conflict serializability: the union over shards of the per-shard
//     conflict orders (two transactions conflict when they touch a
//     common row and at least one writes it) is acyclic, so the
//     execution is equivalent to some serial one;
//   - execution agreement: once a run quiesces, every transaction was
//     applied at every involved shard.
//
// Recovery replay re-applies transactions at a recovering shard; the
// recorder folds such duplicates, requiring them to be byte-identical to
// the original application — a replay that diverges from the pre-crash
// execution is reported as a violation.

// Table identifiers of the store's rows, part of the shared checking
// vocabulary so conflict detection does not depend on store internals.
const (
	// TableStock is the per-item stock table.
	TableStock uint8 = 1
	// TableCustomer is the per-customer balance table.
	TableCustomer uint8 = 2
	// TableWarehouse is the warehouse row (year-to-date totals).
	TableWarehouse uint8 = 3
	// TableOrders is the warehouse's order queue (new-order appends,
	// delivery pops — modelled as one coarse row).
	TableOrders uint8 = 4
)

// Row identifies one accessed record of the partitioned store.
type Row struct {
	// Shard is the warehouse owning the row.
	Shard amcast.GroupID
	// Table discriminates the row's table (TableStock, ...).
	Table uint8
	// Key is the row key within the table (item or customer index; 0
	// for single-row tables).
	Key int32
	// Write reports whether the access mutated the row.
	Write bool
}

// ExecRecord is one transaction application at one shard.
type ExecRecord struct {
	// Group is the shard that applied the transaction.
	Group amcast.GroupID
	// Seq is the shard-local application index (0-based, gap-free).
	Seq uint64
	// TxID is the transaction's multicast message id.
	TxID amcast.MsgID
	// Kind is the transaction type (gtpcc.TxType as uint8).
	Kind uint8
	// Committed is the commit/abort verdict.
	Committed bool
	// ReadSet digests the transaction's payload-derived access set; all
	// involved groups must report the same value.
	ReadSet uint64
	// Involved is the transaction's full shard set (sorted).
	Involved []amcast.GroupID
	// Rows lists the rows the shard touched applying the transaction.
	Rows []Row
}

// FastReadRecord is one fast-path read-only transaction served from a
// shard's local state without multicast (the local-read fast path,
// DESIGN.md §1d). The read's serialization point is the cut between
// applied transactions recorded in TxWatermark; the checker audits the
// rows against that cut.
type FastReadRecord struct {
	// Group is the shard that served the read.
	Group amcast.GroupID
	// Watermark is the shard's delivered-prefix watermark (group-local
	// delivery sequence space) when the read executed.
	Watermark uint64
	// Barrier is the delivered prefix the issuing client required; the
	// executor must only serve the read once Watermark >= Barrier
	// (read-your-writes), which the checker verifies.
	Barrier uint64
	// TxWatermark is the shard-local applied-transaction count at the
	// read's serialization point: the read observed exactly the writes
	// of the shard's first TxWatermark applied transactions.
	TxWatermark uint64
	// Kind is the transaction type (gtpcc.TxType as uint8).
	Kind uint8
	// ReadSet digests the read's transaction payload (ExecRecord.ReadSet
	// vocabulary).
	ReadSet uint64
	// Value is the read's result.
	Value int64
	// Rows lists the rows read; all must be read-only and owned by Group.
	Rows []Row
	// Replica identifies which replica of the group served the read: 0
	// is the serving node (needs no lease), >= 1 a follower read replica
	// (DESIGN.md §1e). The replica's apply sequence is, by determinism,
	// a prefix of the group's, so TxWatermark indexes the same
	// serialization cut whichever replica served.
	Replica int32
	// LeaseOK reports that the serving replica held a valid read lease
	// when the read executed (vacuously true for the serving node). A
	// false record is a stale follower serve — the implementation was
	// required to refuse — and fails the audit.
	LeaseOK bool
}

// ExecRecorder accumulates execution records and checks them. Safe for
// concurrent OnApply calls (runtime nodes execute on separate
// goroutines); the checks must run after the run quiesces.
type ExecRecorder struct {
	mu sync.Mutex
	// byShard[g] is g's application sequence in order.
	byShard map[amcast.GroupID][]*ExecRecord
	// byTx[id][g] is the application of id at shard g.
	byTx map[amcast.MsgID]map[amcast.GroupID]*ExecRecord
	// reads[g] collects g's fast-path reads in execution order.
	reads map[amcast.GroupID][]*FastReadRecord
	// firstErr holds the first OnApply-time violation (replay mismatch,
	// out-of-order application).
	firstErr error
}

// NewExecRecorder returns an empty execution recorder.
func NewExecRecorder() *ExecRecorder {
	return &ExecRecorder{
		byShard: make(map[amcast.GroupID][]*ExecRecord),
		byTx:    make(map[amcast.MsgID]map[amcast.GroupID]*ExecRecord),
		reads:   make(map[amcast.GroupID][]*FastReadRecord),
	}
}

// OnFastRead records one fast-path read.
func (r *ExecRecorder) OnFastRead(rec FastReadRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := rec
	r.reads[rec.Group] = append(r.reads[rec.Group], &cp)
}

// FastReads reports how many fast-path reads were recorded.
func (r *ExecRecorder) FastReads() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, rs := range r.reads {
		n += len(rs)
	}
	return n
}

// CheckFastReads verifies the fast-path read contract: every read is
// read-only (no write rows), contained to the serving shard, served
// under a valid lease (follower replicas; a stale serve fails here), at
// or after its barrier (read-your-writes), and serialized at a cut no
// deeper than the shard's applied sequence.
func (r *ExecRecorder) CheckFastReads() error {
	for _, g := range r.readShards() {
		for i, rec := range r.reads[g] {
			if !rec.LeaseOK {
				return fmt.Errorf("exec: fast read %d at shard %d served by replica %d without a valid lease — stale follower serve",
					i, g, rec.Replica)
			}
			if rec.Barrier > rec.Watermark {
				return fmt.Errorf("exec: fast read %d at shard %d served before its barrier (barrier %d > watermark %d) — read-your-writes broken",
					i, g, rec.Barrier, rec.Watermark)
			}
			if rec.TxWatermark > uint64(len(r.byShard[g])) {
				return fmt.Errorf("exec: fast read %d at shard %d serialized at cut %d beyond the shard's %d applied transactions",
					i, g, rec.TxWatermark, len(r.byShard[g]))
			}
			for _, row := range rec.Rows {
				if row.Write {
					return fmt.Errorf("exec: fast read %d at shard %d wrote row {table %d key %d} — fast path is read-only",
						i, g, row.Table, row.Key)
				}
				if row.Shard != g {
					return fmt.Errorf("exec: fast read %d at shard %d touched foreign row {shard %d table %d key %d}",
						i, g, row.Shard, row.Table, row.Key)
				}
			}
		}
	}
	return nil
}

// readShards returns the shards with recorded fast reads in ascending
// order.
func (r *ExecRecorder) readShards() []amcast.GroupID {
	gs := make([]amcast.GroupID, 0, len(r.reads))
	for g := range r.reads {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	return gs
}

// OnApply records one application. Duplicate (group, tx) applications —
// crash-recovery replay — must be identical to the original record.
func (r *ExecRecorder) OnApply(rec ExecRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	byGroup, ok := r.byTx[rec.TxID]
	if !ok {
		byGroup = make(map[amcast.GroupID]*ExecRecord)
		r.byTx[rec.TxID] = byGroup
	}
	if prev, dup := byGroup[rec.Group]; dup {
		if !reflect.DeepEqual(*prev, rec) && r.firstErr == nil {
			r.firstErr = fmt.Errorf("exec: recovery replay of tx %s at shard %d diverged:\n  replay %+v\n  original %+v",
				rec.TxID, rec.Group, rec, *prev)
		}
		return
	}
	seq := r.byShard[rec.Group]
	if want := uint64(len(seq)); rec.Seq != want && r.firstErr == nil {
		r.firstErr = fmt.Errorf("exec: shard %d applied tx %s at index %d, expected %d (lost or reordered application)",
			rec.Group, rec.TxID, rec.Seq, want)
	}
	cp := rec
	byGroup[rec.Group] = &cp
	r.byShard[rec.Group] = append(seq, &cp)
}

// Records reports how many applications were recorded.
func (r *ExecRecorder) Records() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, seq := range r.byShard {
		n += len(seq)
	}
	return n
}

// shards returns the recorded shard ids in ascending order.
func (r *ExecRecorder) shards() []amcast.GroupID {
	gs := make([]amcast.GroupID, 0, len(r.byShard))
	for g := range r.byShard {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	return gs
}

// txIDs returns the recorded transaction ids in ascending order.
func (r *ExecRecorder) txIDs() []amcast.MsgID {
	ids := make([]amcast.MsgID, 0, len(r.byTx))
	for id := range r.byTx {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CheckReadSets verifies that all shards involved in a transaction
// applied it against the same read-set digest, transaction type,
// involved set and commit verdict.
func (r *ExecRecorder) CheckReadSets() error {
	for _, id := range r.txIDs() {
		byGroup := r.byTx[id]
		var ref *ExecRecord
		gs := make([]amcast.GroupID, 0, len(byGroup))
		for g := range byGroup {
			gs = append(gs, g)
		}
		sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
		for _, g := range gs {
			rec := byGroup[g]
			if ref == nil {
				ref = rec
				continue
			}
			if rec.ReadSet != ref.ReadSet {
				return fmt.Errorf("exec: tx %s read-set digest differs: shard %d has %x, shard %d has %x",
					id, ref.Group, ref.ReadSet, rec.Group, rec.ReadSet)
			}
			if rec.Kind != ref.Kind {
				return fmt.Errorf("exec: tx %s type differs across shards %d and %d", id, ref.Group, rec.Group)
			}
			if rec.Committed != ref.Committed {
				return fmt.Errorf("exec: tx %s verdict differs: shard %d committed=%v, shard %d committed=%v",
					id, ref.Group, ref.Committed, rec.Group, rec.Committed)
			}
			if !reflect.DeepEqual(rec.Involved, ref.Involved) {
				return fmt.Errorf("exec: tx %s involved set differs: shard %d has %v, shard %d has %v",
					id, ref.Group, ref.Involved, rec.Group, rec.Involved)
			}
		}
	}
	return nil
}

// CheckContainment verifies the partial-replication contract: every
// shard touches only rows it owns, and only applies transactions whose
// involved set names it.
func (r *ExecRecorder) CheckContainment() error {
	for _, g := range r.shards() {
		for _, rec := range r.byShard[g] {
			involved := false
			for _, h := range rec.Involved {
				if h == g {
					involved = true
					break
				}
			}
			if !involved {
				return fmt.Errorf("exec: shard %d applied tx %s without being involved (%v)",
					g, rec.TxID, rec.Involved)
			}
			for _, row := range rec.Rows {
				if row.Shard != g {
					return fmt.Errorf("exec: shard %d touched foreign row {shard %d table %d key %d} applying tx %s",
						g, row.Shard, row.Table, row.Key, rec.TxID)
				}
			}
		}
	}
	return nil
}

// CheckExecutionAgreement verifies that, at the end of a quiesced run,
// every recorded transaction was applied by every shard in its involved
// set.
func (r *ExecRecorder) CheckExecutionAgreement() error {
	for _, id := range r.txIDs() {
		byGroup := r.byTx[id]
		var ref *ExecRecord
		for _, rec := range byGroup {
			ref = rec
			break
		}
		for _, g := range ref.Involved {
			if _, ok := byGroup[g]; !ok {
				return fmt.Errorf("exec: tx %s (involved %v) never applied at shard %d", id, ref.Involved, g)
			}
		}
	}
	return nil
}

// rowKey folds a Row (ignoring Write) for conflict indexing.
type rowKey struct {
	shard amcast.GroupID
	table uint8
	key   int32
}

// gnode is one vertex of the conflict graph: a transaction (read == 0)
// or a fast-path read (read == i+1 for the serving shard's i-th read).
type gnode struct {
	tx    amcast.MsgID
	shard amcast.GroupID
	read  int
}

func (n gnode) label() string {
	if n.read > 0 {
		return fmt.Sprintf("fast read #%d at shard %d", n.read-1, n.shard)
	}
	return fmt.Sprintf("tx %s", n.tx)
}

func (n gnode) less(o gnode) bool {
	if n.tx != o.tx {
		return n.tx < o.tx
	}
	if n.shard != o.shard {
		return n.shard < o.shard
	}
	return n.read < o.read
}

// CheckConflictSerializability builds the conflict graph — T1 → T2 when
// some shard applied T1 before T2 and the two touch a common row with at
// least one write — and verifies it is acyclic, i.e. the execution is
// equivalent to a serial one. Fast-path reads participate as read-only
// vertices serialized at their recorded cut (TxWatermark): they read
// after the shard's first TxWatermark applied transactions and before
// the rest, so a fast path serving a prefix inconsistent with the global
// serialization order closes a cycle here.
func (r *ExecRecorder) CheckConflictSerializability() error {
	succ := make(map[gnode]map[gnode]bool)
	addEdge := func(from, to gnode) {
		if from == to {
			return
		}
		s, ok := succ[from]
		if !ok {
			s = make(map[gnode]bool)
			succ[from] = s
		}
		s[to] = true
	}
	for _, g := range r.shards() {
		lastWrite := make(map[rowKey]gnode)
		readers := make(map[rowKey][]gnode)
		access := func(n gnode, rows []Row) {
			for _, row := range rows {
				k := rowKey{shard: row.Shard, table: row.Table, key: row.Key}
				if row.Write {
					if w, ok := lastWrite[k]; ok {
						addEdge(w, n)
					}
					for _, rd := range readers[k] {
						addEdge(rd, n)
					}
					lastWrite[k] = n
					delete(readers, k)
				} else {
					if w, ok := lastWrite[k]; ok {
						addEdge(w, n)
					}
					readers[k] = append(readers[k], n)
				}
			}
		}
		// Merge the shard's fast reads into its apply sequence at their
		// serialization cuts (stable by recorded order within a cut).
		reads := append([]*FastReadRecord(nil), r.reads[g]...)
		sort.SliceStable(reads, func(i, j int) bool { return reads[i].TxWatermark < reads[j].TxWatermark })
		ri := 0
		readNode := func(i int) gnode { return gnode{shard: g, read: i + 1} }
		readIdx := make(map[*FastReadRecord]int, len(reads))
		for i, rec := range r.reads[g] {
			readIdx[rec] = i
		}
		for i, rec := range r.byShard[g] {
			for ri < len(reads) && reads[ri].TxWatermark <= uint64(i) {
				access(readNode(readIdx[reads[ri]]), reads[ri].Rows)
				ri++
			}
			access(gnode{tx: rec.TxID}, rec.Rows)
		}
		for ; ri < len(reads); ri++ {
			access(readNode(readIdx[reads[ri]]), reads[ri].Rows)
		}
	}
	// Iterative three-color DFS (execution logs can be long).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[gnode]int, len(succ))
	roots := make([]gnode, 0, len(succ))
	for id := range succ {
		roots = append(roots, id)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].less(roots[j]) })
	type frame struct {
		id   gnode
		next []gnode
	}
	for _, root := range roots {
		if color[root] != white {
			continue
		}
		stack := []frame{{id: root, next: sortedSucc(succ[root])}}
		color[root] = gray
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if len(top.next) == 0 {
				color[top.id] = black
				stack = stack[:len(stack)-1]
				continue
			}
			s := top.next[0]
			top.next = top.next[1:]
			switch color[s] {
			case gray:
				return fmt.Errorf("exec: conflict cycle through %s and %s — execution is not serializable",
					top.id.label(), s.label())
			case white:
				color[s] = gray
				stack = append(stack, frame{id: s, next: sortedSucc(succ[s])})
			}
		}
	}
	return nil
}

func sortedSucc(s map[gnode]bool) []gnode {
	out := make([]gnode, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// CheckAll runs every execution check appropriate for a quiesced run.
func (r *ExecRecorder) CheckAll() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.firstErr != nil {
		return r.firstErr
	}
	if err := r.CheckReadSets(); err != nil {
		return err
	}
	if err := r.CheckContainment(); err != nil {
		return err
	}
	if err := r.CheckExecutionAgreement(); err != nil {
		return err
	}
	if err := r.CheckFastReads(); err != nil {
		return err
	}
	return r.CheckConflictSerializability()
}
