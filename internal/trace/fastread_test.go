package trace

import (
	"strings"
	"testing"

	"flexcast/amcast"
)

func fastRead(g amcast.GroupID, cut uint64, rows ...Row) FastReadRecord {
	return FastReadRecord{
		Group:       g,
		Watermark:   cut,
		Barrier:     cut,
		TxWatermark: cut,
		Kind:        3, // order-status
		Rows:        rows,
		LeaseOK:     true,
	}
}

func TestCheckFastReadsViolations(t *testing.T) {
	base := func() *ExecRecorder {
		r := NewExecRecorder()
		r.OnApply(ExecRecord{
			Group: 1, Seq: 0, TxID: 1, Kind: 1, Committed: true,
			Involved: []amcast.GroupID{1},
			Rows:     []Row{{Shard: 1, Table: TableCustomer, Key: 3, Write: true}},
		})
		return r
	}

	r := base()
	r.OnFastRead(fastRead(1, 1, Row{Shard: 1, Table: TableCustomer, Key: 3}))
	if err := r.CheckAll(); err != nil {
		t.Fatalf("clean fast read rejected: %v", err)
	}

	r = base()
	rec := fastRead(1, 1, Row{Shard: 1, Table: TableCustomer, Key: 3})
	rec.Barrier = 2 // served before the barrier it claims to require
	r.OnFastRead(rec)
	if err := r.CheckFastReads(); err == nil || !strings.Contains(err.Error(), "read-your-writes") {
		t.Fatalf("barrier violation not caught: %v", err)
	}

	r = base()
	r.OnFastRead(fastRead(1, 1, Row{Shard: 1, Table: TableCustomer, Key: 3, Write: true}))
	if err := r.CheckFastReads(); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("write row not caught: %v", err)
	}

	r = base()
	r.OnFastRead(fastRead(1, 1, Row{Shard: 2, Table: TableCustomer, Key: 3}))
	if err := r.CheckFastReads(); err == nil || !strings.Contains(err.Error(), "foreign row") {
		t.Fatalf("foreign row not caught: %v", err)
	}

	r = base()
	r.OnFastRead(fastRead(1, 5, Row{Shard: 1, Table: TableCustomer, Key: 3}))
	if err := r.CheckFastReads(); err == nil || !strings.Contains(err.Error(), "beyond") {
		t.Fatalf("cut beyond applied sequence not caught: %v", err)
	}

	// A follower that serves after its lease expired must be caught: the
	// implementation is required to refuse (store.ErrLeaseExpired), so a
	// record claiming a lease-less serve is a stale-serve bug.
	r = base()
	rec = fastRead(1, 1, Row{Shard: 1, Table: TableCustomer, Key: 3})
	rec.Replica = 2
	rec.LeaseOK = false
	r.OnFastRead(rec)
	if err := r.CheckFastReads(); err == nil || !strings.Contains(err.Error(), "stale follower serve") {
		t.Fatalf("lease-less follower serve not caught: %v", err)
	}
}

// TestFastReadClosesCycle builds the anomaly the fast path must never
// produce: the read observes T_b but not T_a while the global
// serialization order puts T_a first. The read's cut edges (T_b → R,
// R → T_a) combined with the cross-shard order (T_a → T_b) close a
// cycle the serializability check must report.
func TestFastReadClosesCycle(t *testing.T) {
	build := func() *ExecRecorder {
		r := NewExecRecorder()
		ta, tb := amcast.MsgID(10), amcast.MsgID(20)
		inv := []amcast.GroupID{1, 2}
		// Shard 1 applies T_b then T_a, touching disjoint rows there.
		r.OnApply(ExecRecord{Group: 1, Seq: 0, TxID: tb, Kind: 1, Committed: true, Involved: inv,
			Rows: []Row{{Shard: 1, Table: TableStock, Key: 1, Write: true}}})
		r.OnApply(ExecRecord{Group: 1, Seq: 1, TxID: ta, Kind: 1, Committed: true, Involved: inv,
			Rows: []Row{{Shard: 1, Table: TableStock, Key: 2, Write: true}}})
		// Shard 2 orders T_a before T_b on a shared row: T_a → T_b.
		r.OnApply(ExecRecord{Group: 2, Seq: 0, TxID: ta, Kind: 1, Committed: true, Involved: inv,
			Rows: []Row{{Shard: 2, Table: TableStock, Key: 9, Write: true}}})
		r.OnApply(ExecRecord{Group: 2, Seq: 1, TxID: tb, Kind: 1, Committed: true, Involved: inv,
			Rows: []Row{{Shard: 2, Table: TableStock, Key: 9, Write: true}}})
		return r
	}

	if err := build().CheckConflictSerializability(); err != nil {
		t.Fatalf("base execution should be serializable: %v", err)
	}

	r := build()
	// The read at shard 1, cut 1: after T_b, before T_a, reading both rows.
	r.OnFastRead(fastRead(1, 1,
		Row{Shard: 1, Table: TableStock, Key: 1},
		Row{Shard: 1, Table: TableStock, Key: 2}))
	if err := r.CheckConflictSerializability(); err == nil || !strings.Contains(err.Error(), "fast read") {
		t.Fatalf("inconsistent fast-read cut not caught: %v", err)
	}

	// The follower-read variant of the same anomaly: a crashed-and-stale
	// follower hypothetically serving the identical inconsistent cut. By
	// determinism a follower's apply sequence is a prefix of the group's,
	// so its reads merge into the group's conflict graph at their
	// recorded cut exactly like serving-node reads — the cycle must be
	// caught with replica identity attached, whichever replica served.
	r = build()
	follower := fastRead(1, 1,
		Row{Shard: 1, Table: TableStock, Key: 1},
		Row{Shard: 1, Table: TableStock, Key: 2})
	follower.Replica = 1
	r.OnFastRead(follower)
	if err := r.CheckConflictSerializability(); err == nil || !strings.Contains(err.Error(), "fast read") {
		t.Fatalf("inconsistent follower-read cut not caught: %v", err)
	}
}
