package history

import (
	"bytes"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/codec"
)

func roundTrip(t *testing.T, h *History) *History {
	t.Helper()
	data := h.AppendBinary(nil)
	r := codec.NewReader(data)
	dec := Decode(r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !h.Equal(dec) {
		t.Fatal("decoded history differs from original")
	}
	if again := dec.AppendBinary(nil); !bytes.Equal(data, again) {
		t.Fatal("re-encoded history differs from original encoding")
	}
	return dec
}

// TestCodecRoundTrip covers the binary codec across the structure's
// life cycle: growth, placeholder materialization, pruning (dead log
// entries must survive encoding verbatim) and log compaction.
func TestCodecRoundTrip(t *testing.T) {
	h := New()
	roundTrip(t, h) // empty

	for i := uint64(1); i <= 8; i++ {
		h.AppendDelivered(Node{ID: amcast.MsgID(i), Dst: []amcast.GroupID{1, amcast.GroupID(i % 3)}})
	}
	h.AddEdge(100, 3) // placeholder endpoint
	roundTrip(t, h)

	h.PruneBefore(6)
	dec := roundTrip(t, h) // pruned entries still in log
	if dec.Len() != h.Len() || dec.LogLen() != h.LogLen() {
		t.Fatalf("decoded sizes %d/%d != %d/%d", dec.Len(), dec.LogLen(), h.Len(), h.LogLen())
	}

	var c Cursor
	h.CompactLog([]*Cursor{&c})
	dec = roundTrip(t, h)

	// The decoded history must behave identically: same diffs, same
	// reachability.
	d1, _ := h.DiffSince(0)
	d2, _ := dec.DiffSince(0)
	if (d1 == nil) != (d2 == nil) {
		t.Fatal("decoded history produced a different diff")
	}
	if d1 != nil && (len(d1.Nodes) != len(d2.Nodes) || len(d1.Edges) != len(d2.Edges)) {
		t.Fatalf("decoded diff %d nodes/%d edges, want %d/%d",
			len(d2.Nodes), len(d2.Edges), len(d1.Nodes), len(d1.Edges))
	}
	if h.DependsOn(8, 6) != dec.DependsOn(8, 6) {
		t.Fatal("decoded history disagrees on reachability")
	}
	if err := dec.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
}
