package history

import (
	"encoding/binary"

	"flexcast/amcast"
	"flexcast/internal/codec"
)

// AppendBinary appends a canonical encoding of the history: lastDlvd,
// the append-only log (pruned entries included — diff cursors are
// indexes into it, so the log must survive serialization verbatim),
// live nodes sorted by id, and live edges sorted by (from, to). The
// pred index and msgsTo counters are derived on decode.
func (h *History) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(h.last))
	buf = binary.AppendUvarint(buf, uint64(len(h.log)))
	for _, le := range h.log {
		buf = codec.AppendBool(buf, le.isEdge)
		if le.isEdge {
			buf = binary.AppendUvarint(buf, uint64(le.edge.From))
			buf = binary.AppendUvarint(buf, uint64(le.edge.To))
		} else {
			buf = binary.AppendUvarint(buf, uint64(le.node.ID))
			buf = codec.AppendGroups(buf, le.node.Dst)
		}
	}
	ns, es := h.Snapshot()
	buf = binary.AppendUvarint(buf, uint64(len(ns)))
	for _, n := range ns {
		buf = binary.AppendUvarint(buf, uint64(n.ID))
		buf = codec.AppendGroups(buf, n.Dst)
	}
	buf = binary.AppendUvarint(buf, uint64(len(es)))
	for _, e := range es {
		buf = binary.AppendUvarint(buf, uint64(e.From))
		buf = binary.AppendUvarint(buf, uint64(e.To))
	}
	return buf
}

// Decode reads an AppendBinary record from r and rebuilds the history.
// Returns a usable empty history if the reader has latched an error;
// the caller checks r.Err/Close once at the end.
func Decode(r *codec.Reader) *History {
	h := New()
	h.last = amcast.MsgID(r.Uvarint())
	nLog := r.Count()
	h.log = make([]logEntry, 0, nLog)
	for i := 0; i < nLog && r.Err() == nil; i++ {
		if r.Bool() {
			h.log = append(h.log, logEntry{isEdge: true, edge: amcast.HistEdge{
				From: amcast.MsgID(r.Uvarint()),
				To:   amcast.MsgID(r.Uvarint()),
			}})
		} else {
			h.log = append(h.log, logEntry{node: Node{
				ID:  amcast.MsgID(r.Uvarint()),
				Dst: r.Groups(),
			}})
		}
	}
	nNodes := r.Count()
	for i := 0; i < nNodes && r.Err() == nil; i++ {
		n := Node{ID: amcast.MsgID(r.Uvarint()), Dst: r.Groups()}
		h.nodes[n.ID] = n
		for _, g := range n.Dst {
			h.msgsTo[g]++
		}
	}
	nEdges := r.Count()
	for i := 0; i < nEdges && r.Err() == nil; i++ {
		from := amcast.MsgID(r.Uvarint())
		to := amcast.MsgID(r.Uvarint())
		addSet(h.succ, from, to)
		addSet(h.pred, to, from)
	}
	return h
}

// Equal reports whether two histories have identical live state and log
// (test helper for codec round-trips).
func (h *History) Equal(o *History) bool {
	if h.last != o.last || len(h.log) != len(o.log) {
		return false
	}
	for i, le := range h.log {
		ol := o.log[i]
		if le.isEdge != ol.isEdge || le.edge != ol.edge || le.node.ID != ol.node.ID {
			return false
		}
		if len(le.node.Dst) != len(ol.node.Dst) {
			return false
		}
		for j := range le.node.Dst {
			if le.node.Dst[j] != ol.node.Dst[j] {
				return false
			}
		}
	}
	an, ae := h.Snapshot()
	bn, be := o.Snapshot()
	if len(an) != len(bn) || len(ae) != len(be) {
		return false
	}
	for i := range an {
		if an[i].ID != bn[i].ID || len(an[i].Dst) != len(bn[i].Dst) {
			return false
		}
		for j := range an[i].Dst {
			if an[i].Dst[j] != bn[i].Dst[j] {
				return false
			}
		}
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}
