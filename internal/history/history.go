// Package history implements FlexCast's history data structure (paper
// §4.1, Strategy a, and Algorithm 1): a DAG whose vertexes are messages
// (id + destination set) and whose edges record relative delivery order.
// Every group maintains one history; it grows by local deliveries and by
// merging the history diffs received from ancestor groups, and it shrinks
// through flush-based garbage collection (§4.3).
//
// The structure also maintains an append-only log of first-seen nodes and
// edges. Per-descendant diff tracking (diff-hst in Algorithm 3) is a pair
// of indexes into this log, which makes computing "the part of my history
// I have not yet sent to h" O(new entries) instead of O(|history|).
package history

import (
	"fmt"
	"sort"

	"flexcast/amcast"
)

// Node is one history vertex: a message id and its destinations.
type Node struct {
	ID  amcast.MsgID
	Dst []amcast.GroupID
}

type logEntry struct {
	// isEdge selects which of the two fields below is meaningful.
	isEdge bool
	node   Node
	edge   amcast.HistEdge
}

// History is the history H = (M, D, lastDlvd) of one group. The zero value
// is not usable; call New.
type History struct {
	nodes map[amcast.MsgID]Node
	succ  map[amcast.MsgID]map[amcast.MsgID]struct{}
	pred  map[amcast.MsgID]map[amcast.MsgID]struct{}
	last  amcast.MsgID // lastDlvd; 0 means ⊥
	// msgsTo counts live nodes addressed to each group, backing the
	// hst.containsMsgTo(d) test of Algorithm 3 (send-notifs).
	msgsTo map[amcast.GroupID]int
	// log records first-seen nodes and edges in insertion order; pruned
	// entries are left in place (they are dead weight for at most one diff
	// per descendant) so that diff cursors remain valid monotonic indexes.
	log []logEntry
}

// New returns an empty history.
func New() *History {
	return &History{
		nodes:  make(map[amcast.MsgID]Node),
		succ:   make(map[amcast.MsgID]map[amcast.MsgID]struct{}),
		pred:   make(map[amcast.MsgID]map[amcast.MsgID]struct{}),
		msgsTo: make(map[amcast.GroupID]int),
	}
}

// Len returns the number of live nodes.
func (h *History) Len() int { return len(h.nodes) }

// EdgeCount returns the number of live edges.
func (h *History) EdgeCount() int {
	n := 0
	for _, s := range h.succ {
		n += len(s)
	}
	return n
}

// Contains reports whether the message id is a live node.
func (h *History) Contains(id amcast.MsgID) bool {
	_, ok := h.nodes[id]
	return ok
}

// NodeOf returns the node for id, and whether it exists.
func (h *History) NodeOf(id amcast.MsgID) (Node, bool) {
	n, ok := h.nodes[id]
	return n, ok
}

// LastDelivered returns the id of the last message delivered at this
// group, or 0 if none.
func (h *History) LastDelivered() amcast.MsgID { return h.last }

// ContainsMsgTo reports whether the history holds any live message
// addressed to g (hst.containsMsgTo in Algorithm 3 line 38).
func (h *History) ContainsMsgTo(g amcast.GroupID) bool { return h.msgsTo[g] > 0 }

// AddNode inserts a node if it is not already present, returning true when
// the node is new. If the node exists as a placeholder (empty destination
// set, materialized by an edge that referenced it), the destinations are
// filled in and the node is NOT reported as new.
func (h *History) AddNode(n Node) bool {
	existing, ok := h.nodes[n.ID]
	if ok {
		if len(existing.Dst) == 0 && len(n.Dst) > 0 {
			h.nodes[n.ID] = n
			for _, g := range n.Dst {
				h.msgsTo[g]++
			}
			// Re-log the now-complete node so descendants whose diff
			// cursor already passed the placeholder entry still learn the
			// destinations.
			h.log = append(h.log, logEntry{node: n})
		}
		return false
	}
	h.nodes[n.ID] = n
	for _, g := range n.Dst {
		h.msgsTo[g]++
	}
	h.log = append(h.log, logEntry{node: n})
	return true
}

// AddEdge inserts a dependency edge (from ordered before to), returning
// true when the edge is new. Unknown endpoints are materialized as
// placeholder nodes so that reachability through pruned or not-yet-known
// messages is preserved.
func (h *History) AddEdge(from, to amcast.MsgID) bool {
	if from == to {
		return false
	}
	if s, ok := h.succ[from]; ok {
		if _, dup := s[to]; dup {
			return false
		}
	}
	h.ensureNode(from)
	h.ensureNode(to)
	addSet(h.succ, from, to)
	addSet(h.pred, to, from)
	h.log = append(h.log, logEntry{isEdge: true, edge: amcast.HistEdge{From: from, To: to}})
	return true
}

func (h *History) ensureNode(id amcast.MsgID) {
	if _, ok := h.nodes[id]; !ok {
		n := Node{ID: id}
		h.nodes[id] = n
		h.log = append(h.log, logEntry{node: n})
	}
}

func addSet(m map[amcast.MsgID]map[amcast.MsgID]struct{}, k, v amcast.MsgID) {
	s, ok := m[k]
	if !ok {
		s = make(map[amcast.MsgID]struct{})
		m[k] = s
	}
	s[v] = struct{}{}
}

// AppendDelivered records a local delivery (hst-add in Algorithm 3): the
// node is inserted, ordered after the previous local delivery, and becomes
// lastDlvd. Returns the nodes newly added to the history (the message
// itself if it was unknown).
func (h *History) AppendDelivered(n Node) bool {
	isNew := h.AddNode(n)
	if h.last != 0 && h.last != n.ID {
		h.AddEdge(h.last, n.ID)
	}
	h.last = n.ID
	return isNew
}

// Merge integrates a received history diff (update-hst in Algorithm 3)
// and returns the nodes that were new to this history — including
// placeholder nodes (materialized earlier by an edge) whose destinations
// this diff fills in: the caller maintains its open-dependency set from
// the returned nodes, and a fill-in is the first time the destinations
// are known, so omitting it would leave a hole in dependency tracking.
func (h *History) Merge(d *amcast.HistDelta) []Node {
	if d == nil {
		return nil
	}
	var added []Node
	for _, hn := range d.Nodes {
		n := Node{ID: hn.ID, Dst: hn.Dst}
		prev, existed := h.nodes[n.ID]
		if h.AddNode(n) {
			added = append(added, n)
		} else if existed && len(prev.Dst) == 0 && len(n.Dst) > 0 {
			added = append(added, n)
		}
	}
	for _, e := range d.Edges {
		before := len(h.log)
		h.AddEdge(e.From, e.To)
		// AddEdge may materialize placeholder endpoints; report them too so
		// the engine can track them if they later gain destinations.
		for _, le := range h.log[before:] {
			if !le.isEdge {
				added = append(added, le.node)
			}
		}
	}
	return added
}

// Cursor is a per-descendant diff position: an index into the append-only
// log. A zero Cursor means "nothing sent yet".
type Cursor int

// DiffSince returns the portion of the history appended after the cursor
// as a wire delta, plus the advanced cursor (diff-hst in Algorithm 3).
// Entries pruned by garbage collection are skipped: they recorded
// dependencies that are fully resolved system-wide (everything before a
// delivered flush), so descendants no longer need them — this is what
// keeps FlexCast's history piggybacking bounded (§4.3).
func (h *History) DiffSince(c Cursor) (*amcast.HistDelta, Cursor) {
	if int(c) >= len(h.log) {
		return nil, c
	}
	var d *amcast.HistDelta
	for _, le := range h.log[c:] {
		if le.isEdge {
			if s, ok := h.succ[le.edge.From]; !ok {
				continue
			} else if _, live := s[le.edge.To]; !live {
				continue
			}
			if d == nil {
				d = &amcast.HistDelta{}
			}
			d.Edges = append(d.Edges, le.edge)
		} else {
			n, ok := h.nodes[le.node.ID]
			if !ok {
				continue
			}
			if d == nil {
				d = &amcast.HistDelta{}
			}
			d.Nodes = append(d.Nodes, amcast.HistNode{ID: n.ID, Dst: n.Dst})
		}
	}
	return d, Cursor(len(h.log))
}

// CompactLog drops dead (pruned) entries from the log and remaps the
// given diff cursors to the compacted positions. Engines call it after a
// flush prune so long-lived runs keep bounded memory.
func (h *History) CompactLog(cursors []*Cursor) {
	live := h.log[:0]
	// remap[i] = number of surviving entries strictly before old index i.
	remap := make([]Cursor, len(h.log)+1)
	for i, le := range h.log {
		remap[i] = Cursor(len(live))
		keep := false
		if le.isEdge {
			if s, ok := h.succ[le.edge.From]; ok {
				_, keep = s[le.edge.To]
			}
		} else {
			_, keep = h.nodes[le.node.ID]
		}
		if keep {
			live = append(live, le)
		}
	}
	remap[len(h.log)] = Cursor(len(live))
	h.log = live
	for _, c := range cursors {
		if int(*c) >= len(remap) {
			*c = Cursor(len(live))
			continue
		}
		*c = remap[*c]
	}
}

// LogLen reports the log size (tests and memory accounting).
func (h *History) LogLen() int { return len(h.log) }

// AnyBefore walks every node with a (transitive) path to m, excluding m
// itself, and reports whether pred returns true for any of them. This
// implements the second can-deliver condition of Algorithm 3: "is there an
// undelivered message addressed to me ordered before m".
func (h *History) AnyBefore(m amcast.MsgID, pred func(amcast.MsgID) bool) bool {
	return h.AnyBeforeUntil(m, pred, nil)
}

// AnyBeforeUntil is AnyBefore with search pruning: nodes for which stop
// returns true are tested against pred but their own predecessors are not
// explored. FlexCast prunes at locally delivered messages — the protocol
// guarantees that when a message is delivered every predecessor addressed
// to this group was delivered first, so nothing open can hide behind a
// delivered node. This turns the per-delivery dependency check from
// O(|history|) into O(open frontier).
func (h *History) AnyBeforeUntil(m amcast.MsgID, pred, stop func(amcast.MsgID) bool) bool {
	seen := map[amcast.MsgID]bool{m: true}
	stack := make([]amcast.MsgID, 0, 8)
	for p := range h.pred[m] {
		if !seen[p] {
			seen[p] = true
			stack = append(stack, p)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if pred(cur) {
			return true
		}
		if stop != nil && stop(cur) {
			continue
		}
		for p := range h.pred[cur] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// DependsOn reports whether m transitively depends on mPrime (mPrime was
// ordered before m somewhere in the system; depend(m, m') in Algorithm 3).
func (h *History) DependsOn(m, mPrime amcast.MsgID) bool {
	return h.AnyBefore(m, func(id amcast.MsgID) bool { return id == mPrime })
}

// PruneBefore removes every node with a path to flushID (i.e. every
// message ordered before the flush message) and their edges, implementing
// the garbage collection of §4.3. The flush node itself survives as the
// new history root. Returns the number of removed nodes.
func (h *History) PruneBefore(flushID amcast.MsgID) int {
	if _, ok := h.nodes[flushID]; !ok {
		return 0
	}
	// Collect the prune set: all strict ancestors of flushID.
	doomed := make(map[amcast.MsgID]bool)
	h.AnyBefore(flushID, func(id amcast.MsgID) bool {
		doomed[id] = true
		return false
	})
	for id := range doomed {
		n := h.nodes[id]
		for _, g := range n.Dst {
			h.msgsTo[g]--
		}
		delete(h.nodes, id)
		for s := range h.succ[id] {
			delete(h.pred[s], id)
		}
		for p := range h.pred[id] {
			delete(h.succ[p], id)
		}
		delete(h.succ, id)
		delete(h.pred, id)
	}
	return len(doomed)
}

// Clone returns a deep copy of the history: mutating either copy leaves
// the other untouched. Node destination slices are shared — they are
// immutable once inserted. Engines use Clone to implement the
// amcast.SnapshotEngine crash/recovery contract.
func (h *History) Clone() *History {
	c := &History{
		nodes:  make(map[amcast.MsgID]Node, len(h.nodes)),
		succ:   make(map[amcast.MsgID]map[amcast.MsgID]struct{}, len(h.succ)),
		pred:   make(map[amcast.MsgID]map[amcast.MsgID]struct{}, len(h.pred)),
		last:   h.last,
		msgsTo: make(map[amcast.GroupID]int, len(h.msgsTo)),
		log:    append([]logEntry(nil), h.log...),
	}
	for id, n := range h.nodes {
		c.nodes[id] = n
	}
	for id, s := range h.succ {
		cs := make(map[amcast.MsgID]struct{}, len(s))
		for v := range s {
			cs[v] = struct{}{}
		}
		c.succ[id] = cs
	}
	for id, s := range h.pred {
		cs := make(map[amcast.MsgID]struct{}, len(s))
		for v := range s {
			cs[v] = struct{}{}
		}
		c.pred[id] = cs
	}
	for g, n := range h.msgsTo {
		c.msgsTo[g] = n
	}
	return c
}

// Snapshot returns all live nodes sorted by id and all live edges sorted
// by (from, to); used by tests and debugging dumps.
func (h *History) Snapshot() ([]Node, []amcast.HistEdge) {
	ns := make([]Node, 0, len(h.nodes))
	for _, n := range h.nodes {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
	var es []amcast.HistEdge
	for from, s := range h.succ {
		for to := range s {
			es = append(es, amcast.HistEdge{From: from, To: to})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	return ns, es
}

// CheckAcyclic verifies that the live dependency graph is a DAG. A cycle
// would mean the protocol violated acyclic order; tests call this after
// every merge.
func (h *History) CheckAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[amcast.MsgID]int, len(h.nodes))
	var visit func(id amcast.MsgID) error
	visit = func(id amcast.MsgID) error {
		color[id] = gray
		for s := range h.succ[id] {
			switch color[s] {
			case gray:
				return fmt.Errorf("history: cycle through %s and %s", id, s)
			case white:
				if err := visit(s); err != nil {
					return err
				}
			}
		}
		color[id] = black
		return nil
	}
	for id := range h.nodes {
		if color[id] == white {
			if err := visit(id); err != nil {
				return err
			}
		}
	}
	return nil
}
