package history

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"flexcast/amcast"
)

func node(id int, dst ...int) Node {
	n := Node{ID: amcast.MsgID(id)}
	for _, d := range dst {
		n.Dst = append(n.Dst, amcast.GroupID(d))
	}
	return n
}

func TestAddNode(t *testing.T) {
	h := New()
	if !h.AddNode(node(1, 1, 2)) {
		t.Fatal("first AddNode returned false")
	}
	if h.AddNode(node(1, 1, 2)) {
		t.Fatal("duplicate AddNode returned true")
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
	if !h.ContainsMsgTo(1) || !h.ContainsMsgTo(2) || h.ContainsMsgTo(3) {
		t.Fatal("ContainsMsgTo wrong after AddNode")
	}
}

func TestPlaceholderFillIn(t *testing.T) {
	h := New()
	h.AddEdge(1, 2) // materializes placeholders 1 and 2
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2 placeholders", h.Len())
	}
	if h.ContainsMsgTo(5) {
		t.Fatal("placeholder must have no destinations")
	}
	if h.AddNode(node(1, 5)) {
		t.Fatal("fill-in reported as new node")
	}
	if !h.ContainsMsgTo(5) {
		t.Fatal("destinations not filled into placeholder")
	}
	n, ok := h.NodeOf(1)
	if !ok || len(n.Dst) != 1 || n.Dst[0] != 5 {
		t.Fatalf("NodeOf(1) = %+v", n)
	}
}

func TestAppendDeliveredBuildsChain(t *testing.T) {
	h := New()
	h.AppendDelivered(node(1, 1))
	h.AppendDelivered(node(2, 1))
	h.AppendDelivered(node(3, 1))
	if h.LastDelivered() != 3 {
		t.Fatalf("LastDelivered = %v, want 3", h.LastDelivered())
	}
	if !h.DependsOn(3, 1) || !h.DependsOn(3, 2) || !h.DependsOn(2, 1) {
		t.Fatal("delivery chain dependencies missing")
	}
	if h.DependsOn(1, 3) {
		t.Fatal("reverse dependency must not hold")
	}
	if h.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d, want 2", h.EdgeCount())
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	h := New()
	h.AddNode(node(1, 1))
	if h.AddEdge(1, 1) {
		t.Fatal("self edge added")
	}
	// Delivering the same id twice must not create a self loop.
	h.AppendDelivered(node(1, 1))
	h.AppendDelivered(node(1, 1))
	if h.EdgeCount() != 0 {
		t.Fatalf("EdgeCount = %d, want 0", h.EdgeCount())
	}
}

func TestMergeReportsNewAndFilledNodes(t *testing.T) {
	h := New()
	h.AddNode(node(1, 1))
	added := h.Merge(&amcast.HistDelta{
		Nodes: []amcast.HistNode{
			{ID: 1, Dst: []amcast.GroupID{1}}, // known
			{ID: 2, Dst: []amcast.GroupID{2}}, // new
		},
		Edges: []amcast.HistEdge{{From: 2, To: 3}}, // 3 is a new placeholder
	})
	ids := make(map[amcast.MsgID]bool)
	for _, n := range added {
		ids[n.ID] = true
	}
	if !ids[2] || !ids[3] || ids[1] {
		t.Fatalf("Merge reported %v, want {2,3}", ids)
	}
	if !h.DependsOn(3, 2) {
		t.Fatal("merged edge missing")
	}
}

func TestMergeNilIsNoop(t *testing.T) {
	h := New()
	if got := h.Merge(nil); got != nil {
		t.Fatalf("Merge(nil) = %v", got)
	}
}

func TestDiffSince(t *testing.T) {
	h := New()
	h.AppendDelivered(node(1, 1))
	d1, c1 := h.DiffSince(0)
	if len(d1.Nodes) != 1 || d1.Nodes[0].ID != 1 || len(d1.Edges) != 0 {
		t.Fatalf("first diff = %+v", d1)
	}
	// Nothing new: nil diff, same cursor.
	d2, c2 := h.DiffSince(c1)
	if d2 != nil || c2 != c1 {
		t.Fatalf("empty diff = %+v cursor %d->%d", d2, c1, c2)
	}
	h.AppendDelivered(node(2, 1))
	d3, _ := h.DiffSince(c1)
	if len(d3.Nodes) != 1 || d3.Nodes[0].ID != 2 || len(d3.Edges) != 1 {
		t.Fatalf("incremental diff = %+v", d3)
	}
	if d3.Edges[0] != (amcast.HistEdge{From: 1, To: 2}) {
		t.Fatalf("diff edge = %+v", d3.Edges[0])
	}
	// A cursor from zero sees everything.
	dAll, _ := h.DiffSince(0)
	if len(dAll.Nodes) != 2 || len(dAll.Edges) != 1 {
		t.Fatalf("full diff = %+v", dAll)
	}
}

func TestDiffRoundTripsThroughMerge(t *testing.T) {
	src := New()
	src.AppendDelivered(node(1, 1, 2))
	src.AppendDelivered(node(2, 2))
	src.AddEdge(5, 2)
	dst := New()
	d, _ := src.DiffSince(0)
	dst.Merge(d)
	sn, se := src.Snapshot()
	dn, de := dst.Snapshot()
	if !reflect.DeepEqual(sn, dn) || !reflect.DeepEqual(se, de) {
		t.Fatalf("merge of full diff differs:\nsrc %v %v\ndst %v %v", sn, se, dn, de)
	}
}

func TestAnyBeforeTransitive(t *testing.T) {
	h := New()
	// 1 -> 2 -> 3, and 4 isolated.
	h.AddEdge(1, 2)
	h.AddEdge(2, 3)
	h.AddNode(node(4))
	if !h.AnyBefore(3, func(id amcast.MsgID) bool { return id == 1 }) {
		t.Fatal("transitive predecessor not found")
	}
	if h.AnyBefore(3, func(id amcast.MsgID) bool { return id == 4 }) {
		t.Fatal("unrelated node reported as predecessor")
	}
	if h.AnyBefore(1, func(id amcast.MsgID) bool { return true }) {
		t.Fatal("source node has no predecessors")
	}
}

func TestAnyBeforeUntilPrunes(t *testing.T) {
	h := New()
	// 1 -> 2 -> 3; stopping at 2 must hide 1.
	h.AddEdge(1, 2)
	h.AddEdge(2, 3)
	found := h.AnyBeforeUntil(3,
		func(id amcast.MsgID) bool { return id == 1 },
		func(id amcast.MsgID) bool { return id == 2 })
	if found {
		t.Fatal("search did not prune at stop node")
	}
	// The stop node itself is still tested against pred.
	found = h.AnyBeforeUntil(3,
		func(id amcast.MsgID) bool { return id == 2 },
		func(id amcast.MsgID) bool { return id == 2 })
	if !found {
		t.Fatal("stop node skipped pred test")
	}
}

func TestPruneBefore(t *testing.T) {
	h := New()
	h.AppendDelivered(node(1, 1))
	h.AppendDelivered(node(2, 2))
	h.AppendDelivered(node(10, 3)) // flush
	h.AppendDelivered(node(3, 1))
	removed := h.PruneBefore(10)
	if removed != 2 {
		t.Fatalf("removed %d nodes, want 2", removed)
	}
	if h.Contains(1) || h.Contains(2) {
		t.Fatal("pruned nodes still present")
	}
	if !h.Contains(10) || !h.Contains(3) {
		t.Fatal("flush or successor pruned")
	}
	if !h.DependsOn(3, 10) {
		t.Fatal("surviving edge lost")
	}
	if h.ContainsMsgTo(2) {
		t.Fatal("msgsTo not decremented for pruned node")
	}
	if h.ContainsMsgTo(1) == false {
		t.Fatal("msgsTo lost for surviving node 3 (dst 1)")
	}
}

func TestPruneBeforeUnknownFlush(t *testing.T) {
	h := New()
	h.AppendDelivered(node(1, 1))
	if got := h.PruneBefore(99); got != 0 {
		t.Fatalf("PruneBefore(unknown) = %d, want 0", got)
	}
}

func TestPruneThenDiffStillMergeable(t *testing.T) {
	// A diff computed across a prune boundary must still merge cleanly at
	// a receiver (pruned entries are dead weight, not corruption).
	src := New()
	src.AppendDelivered(node(1, 1))
	src.AppendDelivered(node(10, 1, 2))
	src.PruneBefore(10)
	src.AppendDelivered(node(2, 2))
	d, _ := src.DiffSince(0)
	dst := New()
	dst.Merge(d)
	if !dst.DependsOn(2, 10) {
		t.Fatal("post-prune dependency lost in diff")
	}
	if err := dst.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckAcyclic(t *testing.T) {
	h := New()
	h.AddEdge(1, 2)
	h.AddEdge(2, 3)
	if err := h.CheckAcyclic(); err != nil {
		t.Fatalf("acyclic graph reported cycle: %v", err)
	}
	h.AddEdge(3, 1)
	if err := h.CheckAcyclic(); err == nil {
		t.Fatal("cycle not detected")
	}
}

// TestRandomMergeCommutes checks that merging the same set of deltas in
// different orders produces the same live graph — histories are CRDT-like
// grow-only sets, which is what lets FlexCast merge ancestor histories in
// arrival order.
func TestRandomMergeCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var deltas []*amcast.HistDelta
		for i := 0; i < 10; i++ {
			d := &amcast.HistDelta{}
			for j := 0; j < rng.Intn(5); j++ {
				d.Nodes = append(d.Nodes, amcast.HistNode{
					ID:  amcast.MsgID(rng.Intn(20) + 1),
					Dst: []amcast.GroupID{amcast.GroupID(rng.Intn(3) + 1)},
				})
			}
			for j := 0; j < rng.Intn(5); j++ {
				a, b := rng.Intn(20)+1, rng.Intn(20)+1
				if a == b {
					continue
				}
				// Only forward edges: keeps the graph acyclic.
				if a > b {
					a, b = b, a
				}
				d.Edges = append(d.Edges, amcast.HistEdge{From: amcast.MsgID(a), To: amcast.MsgID(b)})
			}
			deltas = append(deltas, d)
		}
		h1, h2 := New(), New()
		for _, d := range deltas {
			h1.Merge(d)
		}
		for i := len(deltas) - 1; i >= 0; i-- {
			h2.Merge(deltas[i])
		}
		n1, e1 := h1.Snapshot()
		n2, e2 := h2.Snapshot()
		// Node destination fill-in is first-writer-wins, but IDs and edges
		// must match exactly.
		if len(n1) != len(n2) || !reflect.DeepEqual(e1, e2) {
			return false
		}
		for i := range n1 {
			if n1[i].ID != n2[i].ID {
				return false
			}
		}
		return h1.CheckAcyclic() == nil && h2.CheckAcyclic() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
