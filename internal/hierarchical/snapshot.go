package hierarchical

import (
	"fmt"

	"flexcast/amcast"
)

// snapshot is the hierarchical engine's amcast.Snapshot: the seen set and
// delivery state (the engine has no other mutable state — ordering comes
// from FIFO links).
type snapshot struct {
	g          amcast.GroupID
	seen       map[amcast.MsgID]bool
	deliveries []amcast.Delivery
	seq        uint64
	relayed    uint64
}

// SnapshotGroup implements amcast.Snapshot.
func (s *snapshot) SnapshotGroup() amcast.GroupID { return s.g }

var _ amcast.SnapshotEngine = (*Engine)(nil)

// Snapshot implements amcast.SnapshotEngine.
func (e *Engine) Snapshot() amcast.Snapshot {
	s := &snapshot{
		g:          e.g,
		seen:       make(map[amcast.MsgID]bool, len(e.seen)),
		deliveries: append([]amcast.Delivery(nil), e.deliveries...),
		seq:        e.seq,
		relayed:    e.relayed,
	}
	for id, v := range e.seen {
		s.seen[id] = v
	}
	return s
}

// Restore implements amcast.SnapshotEngine.
func (e *Engine) Restore(snap amcast.Snapshot) error {
	s, ok := snap.(*snapshot)
	if !ok {
		return fmt.Errorf("hierarchical: restore of foreign snapshot %T", snap)
	}
	if s.g != e.g {
		return fmt.Errorf("hierarchical: restore of group %d snapshot into group %d", s.g, e.g)
	}
	e.seen = make(map[amcast.MsgID]bool, len(s.seen))
	for id, v := range s.seen {
		e.seen[id] = v
	}
	e.deliveries = append([]amcast.Delivery(nil), s.deliveries...)
	e.seq = s.seq
	e.relayed = s.relayed
	return nil
}
