// Package hierarchical implements the tree-overlay atomic multicast used
// as the paper's non-genuine baseline (§3, §5.1) — ByzCast's ordering
// scheme with single-process groups, without the Byzantine machinery.
//
// Protocol: a multicast message m enters the tree at the lowest common
// ancestor of m.dst and flows down: each group orders incoming messages in
// arrival order (its local total order), delivers m if it is a
// destination, and forwards m to every child whose subtree contains a
// destination. FIFO links make lower groups preserve the order induced by
// higher groups. Groups relay messages they are not addressed by — the
// communication overhead quantified in the paper's Figures 1 and 9.
package hierarchical

import (
	"fmt"

	"flexcast/amcast"
	"flexcast/internal/overlay"
)

// Config configures one hierarchical engine.
type Config struct {
	// Group is the group this engine serves.
	Group amcast.GroupID
	// Tree is the shared overlay tree.
	Tree *overlay.Tree
}

// Engine is the hierarchical state machine for one group. It implements
// amcast.Engine. Not safe for concurrent use.
type Engine struct {
	g    amcast.GroupID
	tree *overlay.Tree

	seen       map[amcast.MsgID]bool
	deliveries []amcast.Delivery
	seq        uint64
	relayed    uint64
}

var _ amcast.Engine = (*Engine)(nil)

var _ amcast.BatchStepper = (*Engine)(nil)

// New builds a hierarchical engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Tree == nil {
		return nil, fmt.Errorf("hierarchical: nil tree")
	}
	if !cfg.Tree.Contains(cfg.Group) {
		return nil, fmt.Errorf("hierarchical: group %d not in tree", cfg.Group)
	}
	return &Engine{g: cfg.Group, tree: cfg.Tree, seen: make(map[amcast.MsgID]bool)}, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Group implements amcast.Engine.
func (e *Engine) Group() amcast.GroupID { return e.g }

// TakeDeliveries implements amcast.Engine.
func (e *Engine) TakeDeliveries() []amcast.Delivery {
	d := e.deliveries
	e.deliveries = nil
	return d
}

// Relayed reports how many messages this group forwarded without being a
// destination — its absolute communication overhead (tests).
func (e *Engine) Relayed() uint64 { return e.relayed }

// OnEnvelope implements amcast.Engine.
func (e *Engine) OnEnvelope(env amcast.Envelope) []amcast.Output {
	var outs []amcast.Output
	e.step(env, &outs)
	return outs
}

// BatchStep implements amcast.BatchStepper: the batch is processed
// envelope by envelope with the output slice shared across the batch.
func (e *Engine) BatchStep(envs []amcast.Envelope) []amcast.Output {
	var outs []amcast.Output
	for _, env := range envs {
		e.step(env, &outs)
	}
	return outs
}

func (e *Engine) step(env amcast.Envelope, outs *[]amcast.Output) {
	switch env.Kind {
	case amcast.KindRequest:
		// Clients must address the lowest common ancestor of the
		// destination set; misrouted requests are dropped.
		if e.tree.Lca(env.Msg.Dst) != e.g {
			return
		}
		e.handle(env.Msg, outs)
	case amcast.KindFwd:
		e.handle(env.Msg, outs)
	}
}

func (e *Engine) handle(m amcast.Message, outs *[]amcast.Output) {
	if e.seen[m.ID] {
		return
	}
	e.seen[m.ID] = true
	if m.HasDst(e.g) {
		e.deliveries = append(e.deliveries, amcast.Delivery{Group: e.g, Seq: e.seq, Msg: m})
		e.seq++
	} else {
		e.relayed++
	}
	for _, c := range e.tree.Children(e.g) {
		if !e.tree.SubtreeHasAny(c, m.Dst) {
			continue
		}
		*outs = append(*outs, amcast.Output{
			To:  amcast.GroupNode(c),
			Env: amcast.Envelope{Kind: amcast.KindFwd, From: amcast.GroupNode(e.g), Msg: m},
		})
	}
}
