package hierarchical_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/hierarchical"
	"flexcast/internal/prototest"
	"flexcast/internal/wan"
)

// TestBatchStepEquivalence checks the amcast.BatchStepper contract:
// draining a group's input sequence in arbitrary chunks produces exactly
// the outputs and deliveries of the per-envelope path.
func TestBatchStepEquivalence(t *testing.T) {
	tr := wan.T1()
	for seed := int64(0); seed < 4; seed++ {
		prototest.RunBatchEquivalence(t, prototest.RandomConfig{
			Groups:   tr.Groups(),
			Clients:  3,
			Messages: 20,
			Route: func(m amcast.Message) []amcast.NodeID {
				return []amcast.NodeID{amcast.GroupNode(tr.Lca(m.Dst))}
			},
			Factory: func(g amcast.GroupID) amcast.Engine {
				return hierarchical.MustNew(hierarchical.Config{Group: g, Tree: tr})
			},
			Seed: seed*29 + 11,
		})
	}
}

// TestPriorityDrainSafety runs the chunked executions with the
// receiver-side control-priority reordering (runtime.Node.take's
// permutation) on the tree protocol; the hierarchical baseline is not
// genuine, so minimality is not asserted.
func TestPriorityDrainSafety(t *testing.T) {
	tr := wan.T1()
	for seed := int64(0); seed < 2; seed++ {
		prototest.RunChunkedSafety(t, prototest.RandomConfig{
			Groups:   tr.Groups(),
			Clients:  3,
			Messages: 15,
			Route: func(m amcast.Message) []amcast.NodeID {
				return []amcast.NodeID{amcast.GroupNode(tr.Lca(m.Dst))}
			},
			Factory: func(g amcast.GroupID) amcast.Engine {
				return hierarchical.MustNew(hierarchical.Config{Group: g, Tree: tr})
			},
			Seed:          seed*37 + 5,
			PriorityDrain: true,
		}, false)
	}
}
