package hierarchical

import (
	"encoding/binary"
	"fmt"
	"sort"

	"flexcast/amcast"
	"flexcast/internal/codec"
)

// Binary snapshot codec for the hierarchical engine; sorted map
// iteration keeps the encoding canonical.

var _ amcast.BinarySnapshot = (*snapshot)(nil)

// MarshalBinary implements amcast.BinarySnapshot.
func (s *snapshot) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 128)
	buf = binary.AppendUvarint(buf, uint64(uint32(s.g)))
	ids := make([]amcast.MsgID, 0, len(s.seen))
	for id := range s.seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = codec.AppendBool(buf, s.seen[id])
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.deliveries)))
	for _, d := range s.deliveries {
		buf = codec.AppendDelivery(buf, d)
	}
	buf = binary.AppendUvarint(buf, s.seq)
	buf = binary.AppendUvarint(buf, s.relayed)
	return buf, nil
}

// UnmarshalSnapshot decodes a snapshot previously produced by
// MarshalBinary.
func UnmarshalSnapshot(data []byte) (amcast.Snapshot, error) {
	r := codec.NewReader(data)
	s := &snapshot{g: amcast.GroupID(r.Uvarint())}
	nSeen := r.Count()
	s.seen = make(map[amcast.MsgID]bool, nSeen)
	for i := 0; i < nSeen && r.Err() == nil; i++ {
		id := amcast.MsgID(r.Uvarint())
		s.seen[id] = r.Bool()
	}
	nD := r.Count()
	s.deliveries = make([]amcast.Delivery, 0, nD)
	for i := 0; i < nD && r.Err() == nil; i++ {
		s.deliveries = append(s.deliveries, r.Delivery())
	}
	s.seq = r.Uvarint()
	s.relayed = r.Uvarint()
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("hierarchical: snapshot decode: %w", err)
	}
	return s, nil
}
