package hierarchical_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/hierarchical"
	"flexcast/internal/overlay"
	"flexcast/internal/prototest"
)

// TestSnapshotReplay checks the SnapshotEngine contract for the
// hierarchical protocol under random workloads.
func TestSnapshotReplay(t *testing.T) {
	tree := overlay.MustTree(1, map[amcast.GroupID][]amcast.GroupID{
		1: {2, 3},
		2: {4, 5},
	})
	groups := tree.Groups()
	route := func(m amcast.Message) []amcast.NodeID {
		return []amcast.NodeID{amcast.GroupNode(tree.Lca(m.Dst))}
	}
	factory := func(g amcast.GroupID) amcast.Engine {
		return hierarchical.MustNew(hierarchical.Config{Group: g, Tree: tree})
	}
	for _, snapAfter := range []int{0, 5, 30} {
		for seed := int64(1); seed <= 4; seed++ {
			prototest.RunSnapshotReplay(t, prototest.RandomConfig{
				Groups:   groups,
				Clients:  3,
				Messages: 12,
				Route:    route,
				Factory:  factory,
				Seed:     seed,
				Jitter:   3000,
			}, snapAfter)
		}
	}
}

// TestDurableReplay audits recovery from the real durable backend's
// kill -9 image under clean and torn-WAL-tail crash shapes.
func TestDurableReplay(t *testing.T) {
	tree := overlay.MustTree(1, map[amcast.GroupID][]amcast.GroupID{
		1: {2, 3},
		2: {4, 5},
	})
	groups := tree.Groups()
	route := func(m amcast.Message) []amcast.NodeID {
		return []amcast.NodeID{amcast.GroupNode(tree.Lca(m.Dst))}
	}
	factory := func(g amcast.GroupID) amcast.Engine {
		return hierarchical.MustNew(hierarchical.Config{Group: g, Tree: tree})
	}
	for seed := int64(1); seed <= 3; seed++ {
		prototest.RunDurableReplay(t, prototest.RandomConfig{
			Groups:   groups,
			Clients:  3,
			Messages: 12,
			Route:    route,
			Factory:  factory,
			Seed:     seed,
		}, hierarchical.UnmarshalSnapshot, 11)
	}
}

// TestRestoreRejectsMismatch verifies the Restore guard rails.
func TestRestoreRejectsMismatch(t *testing.T) {
	tree := overlay.MustTree(1, map[amcast.GroupID][]amcast.GroupID{1: {2}})
	e1 := hierarchical.MustNew(hierarchical.Config{Group: 1, Tree: tree})
	e2 := hierarchical.MustNew(hierarchical.Config{Group: 2, Tree: tree})
	if err := e2.Restore(e1.Snapshot()); err == nil {
		t.Fatal("restore of group 1 snapshot into group 2 engine succeeded")
	}
}
