package hierarchical_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/hierarchical"
	"flexcast/internal/overlay"
	"flexcast/internal/prototest"
)

// TestSnapshotBinaryRoundTrip audits the hierarchical binary snapshot
// codec over mid-run state: marshal → decode → restore → re-marshal
// must be byte-identical.
func TestSnapshotBinaryRoundTrip(t *testing.T) {
	tree := overlay.MustTree(1, map[amcast.GroupID][]amcast.GroupID{
		1: {2, 3},
		2: {4, 5},
	})
	groups := tree.Groups()
	route := func(m amcast.Message) []amcast.NodeID {
		return []amcast.NodeID{amcast.GroupNode(tree.Lca(m.Dst))}
	}
	factory := func(g amcast.GroupID) amcast.Engine {
		return hierarchical.MustNew(hierarchical.Config{Group: g, Tree: tree})
	}
	for seed := int64(1); seed <= 4; seed++ {
		prototest.RunRandom(t, prototest.RandomConfig{
			Groups:   groups,
			Clients:  3,
			Messages: 15,
			Route:    route,
			Factory:  factory,
			Seed:     seed,
			Jitter:   3000,
			OnEngines: func(engines map[amcast.GroupID]amcast.Engine) {
				for g, eng := range engines {
					fresh := hierarchical.MustNew(hierarchical.Config{Group: g, Tree: tree})
					prototest.CheckBinarySnapshot(t, eng.(amcast.SnapshotEngine), fresh, hierarchical.UnmarshalSnapshot)
				}
			},
		})
	}
}
