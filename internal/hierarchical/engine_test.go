package hierarchical_test

import (
	"fmt"
	"reflect"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/hierarchical"
	"flexcast/internal/overlay"
	"flexcast/internal/prototest"
)

// Test tree:
//
//	    1
//	   / \
//	  2   3
//	 / \
//	4   5
func testTree() *overlay.Tree {
	return overlay.MustTree(1, map[amcast.GroupID][]amcast.GroupID{
		1: {2, 3},
		2: {4, 5},
	})
}

func router(t *testing.T) (*prototest.Router, map[amcast.GroupID]*hierarchical.Engine) {
	t.Helper()
	tr := testTree()
	engines := make(map[amcast.GroupID]*hierarchical.Engine)
	r := prototest.NewRouter(t, tr.Groups(), func(g amcast.GroupID) amcast.Engine {
		e := hierarchical.MustNew(hierarchical.Config{Group: g, Tree: tr})
		engines[g] = e
		return e
	})
	return r, engines
}

func ids(vs ...uint64) []amcast.MsgID {
	out := make([]amcast.MsgID, len(vs))
	for i, v := range vs {
		out[i] = amcast.MsgID(v)
	}
	return out
}

func TestEntryAtTreeLcaAndForwarding(t *testing.T) {
	r, engines := router(t)
	// dst {4,5}: tree lca is 2; the message never touches 1 or 3.
	m := prototest.Msg(1, 4, 5)
	r.Multicast(2, m)
	r.Drain()
	if got := r.Seq(4); !reflect.DeepEqual(got, ids(1)) {
		t.Fatalf("4 delivered %v", got)
	}
	if got := r.Seq(5); !reflect.DeepEqual(got, ids(1)) {
		t.Fatalf("5 delivered %v", got)
	}
	if len(r.Seq(1))+len(r.Seq(3)) != 0 {
		t.Fatal("non-destination delivered")
	}
	// Group 2 relayed without being a destination: the protocol's
	// non-genuineness.
	if engines[2].Relayed() != 1 {
		t.Fatalf("relayed = %d, want 1", engines[2].Relayed())
	}
	if engines[1].Relayed() != 0 {
		t.Fatal("root relayed a message it never saw")
	}
}

func TestInnerDestinationDeliversAndForwards(t *testing.T) {
	r, engines := router(t)
	m := prototest.Msg(1, 2, 4) // lca is 2, which is also a destination
	r.Multicast(2, m)
	r.Drain()
	if got := r.Seq(2); !reflect.DeepEqual(got, ids(1)) {
		t.Fatalf("2 delivered %v", got)
	}
	if got := r.Seq(4); !reflect.DeepEqual(got, ids(1)) {
		t.Fatalf("4 delivered %v", got)
	}
	if engines[2].Relayed() != 0 {
		t.Fatal("destination counted as relay")
	}
}

func TestCrossSubtreeGoesThroughRoot(t *testing.T) {
	r, engines := router(t)
	m := prototest.Msg(1, 3, 4) // lca is the root
	r.Multicast(1, m)
	r.Drain()
	if !reflect.DeepEqual(r.Seq(3), ids(1)) || !reflect.DeepEqual(r.Seq(4), ids(1)) {
		t.Fatalf("3: %v, 4: %v", r.Seq(3), r.Seq(4))
	}
	// Root and group 2 both relay.
	if engines[1].Relayed() != 1 || engines[2].Relayed() != 1 {
		t.Fatalf("relays: root=%d, 2=%d", engines[1].Relayed(), engines[2].Relayed())
	}
}

func TestHigherGroupOrderPreserved(t *testing.T) {
	r, _ := router(t)
	// Both messages ordered at the root, then delivered at 4 and 5 in the
	// same order via FIFO links.
	m1 := prototest.Msg(1, 3, 4, 5)
	m2 := prototest.Msg(2, 3, 4, 5)
	r.Multicast(1, m1)
	r.Multicast(1, m2)
	r.Drain()
	for _, g := range []amcast.GroupID{3, 4, 5} {
		if got := r.Seq(g); !reflect.DeepEqual(got, ids(1, 2)) {
			t.Fatalf("group %d delivered %v", g, got)
		}
	}
	if err := r.Recorder.CheckAll(false); err != nil {
		t.Fatal(err)
	}
}

func TestMisroutedRequestDropped(t *testing.T) {
	r, _ := router(t)
	r.Multicast(4, prototest.Msg(1, 4, 5)) // lca is 2, not 4
	r.Drain()
	if len(r.Seq(4)) != 0 {
		t.Fatal("misrouted request delivered")
	}
}

func TestDuplicateForwardIgnored(t *testing.T) {
	r, _ := router(t)
	m := prototest.Msg(1, 2)
	r.Multicast(2, m)
	r.Multicast(2, m)
	if got := r.Seq(2); !reflect.DeepEqual(got, ids(1)) {
		t.Fatalf("2 delivered %v", got)
	}
}

func TestNewValidation(t *testing.T) {
	tr := testTree()
	if _, err := hierarchical.New(hierarchical.Config{Group: 1}); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := hierarchical.New(hierarchical.Config{Group: 9, Tree: tr}); err == nil {
		t.Error("group outside tree accepted")
	}
}

func TestRandomWorkloadProperties(t *testing.T) {
	trees := map[string]*overlay.Tree{
		"balanced": testTree(),
		"star": overlay.MustTree(1, map[amcast.GroupID][]amcast.GroupID{
			1: {2, 3, 4, 5},
		}),
		"chain": overlay.MustTree(1, map[amcast.GroupID][]amcast.GroupID{
			1: {2}, 2: {3}, 3: {4}, 4: {5},
		}),
	}
	for name, tr := range trees {
		tr := tr
		for seed := int64(0); seed < 4; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				rec := prototest.RunRandom(t, prototest.RandomConfig{
					Groups:   tr.Groups(),
					Clients:  4,
					Messages: 25,
					Route: func(m amcast.Message) []amcast.NodeID {
						return []amcast.NodeID{amcast.GroupNode(tr.Lca(m.Dst))}
					},
					Factory: func(g amcast.GroupID) amcast.Engine {
						return hierarchical.MustNew(hierarchical.Config{Group: g, Tree: tr})
					},
					Seed:   seed*13 + 7,
					Jitter: 500,
				})
				// Minimality must NOT be checked: the protocol is not
				// genuine by design.
				if err := rec.CheckAll(false); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
