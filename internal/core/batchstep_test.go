package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
	"flexcast/internal/prototest"
	rt "flexcast/internal/runtime"
)

// TestBatchStepSafety validates the FlexCast batch fast path (one
// reprocess fixpoint per chunk, consolidated acks) against the full
// atomic multicast specification over seeded random chunked executions,
// including determinism over batch sequences.
func TestBatchStepSafety(t *testing.T) {
	for _, n := range []int{3, 6} {
		for seed := int64(0); seed < 4; seed++ {
			n, seed := n, seed
			t.Run(fmt.Sprintf("groups=%d/seed=%d", n, seed), func(t *testing.T) {
				groups := make([]amcast.GroupID, n)
				for i := range groups {
					groups[i] = amcast.GroupID(i + 1)
				}
				ov := overlay.MustCDAG(groups)
				prototest.RunChunkedSafety(t, prototest.RandomConfig{
					Groups:   groups,
					Clients:  3,
					Messages: 20,
					Route: func(m amcast.Message) []amcast.NodeID {
						return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
					},
					Factory: func(g amcast.GroupID) amcast.Engine {
						return core.MustNew(core.Config{Group: g, Overlay: ov})
					},
					Seed: seed*137 + int64(n),
				}, true)
			})
		}
	}
}

// TestPriorityDrainSafety validates the node runtime's receiver-side
// control-priority drain against the full multicast specification:
// chunked executions in which every chunk is reordered control-first
// (per-sender FIFO preserved — the exact permutation runtime.Node.take
// applies under backlog) must still deliver acyclically, agree, stay
// genuine and remain deterministic. FlexCast is the protocol whose
// incremental history diffs are most sensitive to reordering, which is
// why the drain's safety argument (DESIGN.md §1b) is proven here.
func TestPriorityDrainSafety(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3, 4, 5}
	ov := overlay.MustCDAG(groups)
	for seed := int64(0); seed < 4; seed++ {
		prototest.RunChunkedSafety(t, prototest.RandomConfig{
			Groups:   groups,
			Clients:  3,
			Messages: 25,
			Route: func(m amcast.Message) []amcast.NodeID {
				return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
			},
			Factory: func(g amcast.GroupID) amcast.Engine {
				return core.MustNew(core.Config{Group: g, Overlay: ov})
			},
			Seed:          911 + seed,
			PriorityDrain: true,
		}, true)
	}
}

// TestAdaptiveControllerChunkSafety proves the adaptive batching
// controller (runtime.BatchController, DESIGN.md §1h) never changes
// protocol outcomes — only timing. The controller is plugged in as the
// chunked runner's ChunkSizer, so every chunk boundary in the run is
// chosen by a live controller trajectory (each node's controller ticks
// on its own buffered depth, exactly the signal the runtime feeds it),
// and the run must still satisfy the full atomic multicast
// specification, deterministically. Combined with the per-sender-FIFO
// priority drain the controller shares the worker with, this is the
// safety half of the §1h argument: batch size is a scheduling choice,
// and every scheduling choice is just another arrival interleaving.
func TestAdaptiveControllerChunkSafety(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3, 4, 5}
	ov := overlay.MustCDAG(groups)
	for seed := int64(0); seed < 4; seed++ {
		ctrls := make(map[amcast.GroupID]*rt.BatchController)
		reset := func() {
			for _, g := range groups {
				ctrls[g] = rt.NewBatchController(rt.AdaptiveConfig{MinBatch: 1, MaxBatch: 8})
			}
		}
		prototest.RunChunkedSafety(t, prototest.RandomConfig{
			OnRunStart: reset,
			Groups:     groups,
			Clients:    3,
			Messages:   25,
			Route: func(m amcast.Message) []amcast.NodeID {
				return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
			},
			Factory: func(g amcast.GroupID) amcast.Engine {
				return core.MustNew(core.Config{Group: g, Overlay: ov})
			},
			Seed: 1733 + seed,
			ChunkSizer: func(g amcast.GroupID, buffered int) int {
				batch, _ := ctrls[g].Tick(buffered)
				return batch
			},
			PriorityDrain: true,
		}, true)
	}
}

// TestBatchStepSingletonMatchesOnEnvelope pins the chunk-size-1 case:
// a 1-envelope batch must be byte-identical to OnEnvelope.
func TestBatchStepSingletonMatchesOnEnvelope(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3}
	ov := overlay.MustCDAG(groups)
	a := core.MustNew(core.Config{Group: 2, Overlay: ov})
	b := core.MustNew(core.Config{Group: 2, Overlay: ov})

	msgs := []amcast.Envelope{
		{Kind: amcast.KindMsg, From: amcast.GroupNode(1), Msg: amcast.Message{
			ID: amcast.NewMsgID(0, 1), Sender: amcast.ClientNode(0), Dst: []amcast.GroupID{1, 2},
		}},
		{Kind: amcast.KindAck, From: amcast.GroupNode(1), Msg: amcast.Message{
			ID: amcast.NewMsgID(0, 1), Dst: []amcast.GroupID{1, 2},
		}},
		{Kind: amcast.KindRequest, From: amcast.ClientNode(0), Msg: amcast.Message{
			ID: amcast.NewMsgID(0, 2), Sender: amcast.ClientNode(0), Dst: []amcast.GroupID{2, 3},
		}},
	}
	for i, env := range msgs {
		outsA := a.OnEnvelope(env)
		outsB := b.BatchStep([]amcast.Envelope{env})
		if !reflect.DeepEqual(outsA, outsB) {
			t.Fatalf("envelope %d: outputs diverge:\n OnEnvelope %v\n BatchStep  %v", i, outsA, outsB)
		}
		if !reflect.DeepEqual(a.TakeDeliveries(), b.TakeDeliveries()) {
			t.Fatalf("envelope %d: deliveries diverge", i)
		}
	}
}
