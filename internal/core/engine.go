// Package core implements the FlexCast protocol engine — the paper's
// primary contribution (§4, Algorithms 1-3). One Engine instance runs the
// protocol logic of one group on a complete-DAG overlay.
//
// Protocol recap:
//
//   - A client multicasts m by sending it to m's lca, the lowest-ranked
//     destination. The lca delivers immediately and propagates m (MSG) to
//     the remaining destinations together with a diff of its history
//     (Strategy a).
//   - A non-lca destination g queues m until (i) it has ACKs from every
//     ancestor destination other than the lca and from every notified
//     ancestor (Strategy b), and (ii) no undelivered message addressed to
//     g precedes m in g's history. On delivery it ACKs m to the
//     destinations ranked above it.
//   - Before forwarding m (or its ACK), a group sends NOTIF to
//     non-destination descendants that are ancestors of some destination
//     and to which it previously sent application traffic (Strategy c);
//     a notified group flushes its dependencies down the C-DAG by ACKing m
//     once it has no open dependencies, and notifies further groups
//     inductively.
//
// The deviations from the paper's pseudocode that any executable
// implementation must make are listed in DESIGN.md §4.
package core

import (
	"fmt"
	"sort"
	"strings"

	"flexcast/amcast"
	"flexcast/internal/history"
	"flexcast/internal/overlay"
)

// Config configures one FlexCast engine.
type Config struct {
	// Group is the group this engine serves.
	Group amcast.GroupID
	// Overlay is the shared C-DAG rank order.
	Overlay *overlay.CDAG
	// DisableGC turns off history pruning on flush deliveries; tests use
	// it to exercise unbounded histories.
	DisableGC bool
}

// pairKey identifies one (notifier → notified) notification pair; the
// certification epoch is tracked as the map value, not part of the key.
type pairKey struct {
	notifier, notified amcast.GroupID
}

// notifState is the notifier-side record of the last NOTIF sent about
// one message to one notified group: the certification epoch used and
// the trafficSeq snapshot it certified (see Engine.trafficSeq).
type notifState struct {
	epoch uint64
	seq   uint64
}

// pending tracks protocol state for one not-yet-delivered message
// (Algorithm 1 lines 5-6: m.acks and m.notifList, plus the message body).
type pending struct {
	msg    amcast.Message
	hasMsg bool // the MSG/REQUEST envelope carrying the payload arrived
	queued bool
	acks   map[amcast.GroupID]bool
	// notif maps each known (notifier → notified) pair to the highest
	// certification epoch announced for it. Pairs, not a flat set: each
	// notifier's notification must be answered by a flush ack that
	// causally follows it (the notifier sends the NOTIF on the same
	// FIFO link as its earlier traffic), or a stale ack could hide
	// dependencies the notifier knows about. The epoch closes the
	// remaining window: a flush ack covering epoch e-1 cannot satisfy a
	// pair re-certified at epoch e (DESIGN.md §4 deviation 8).
	notif map[pairKey]uint64
	// notifAcks[n][notifier] is the highest certification epoch of
	// notifier's notifications that group n has flushed (learned from
	// AckCovers on n's acks).
	notifAcks map[amcast.GroupID]map[amcast.GroupID]uint64
}

// pendingNotif is a deferred notification (Algorithm 2 line 16): the ACK
// answering notifier's NOTIF for msg is withheld until every open
// dependency in deps is delivered. One entry per (message, notifier,
// epoch) — a later notifier's (or a re-certifying epoch's) NOTIF
// snapshots its own, possibly larger, open set.
type pendingNotif struct {
	msg      amcast.Message
	notifier amcast.GroupID
	epoch    uint64
	deps     map[amcast.MsgID]bool
}

// Engine is the FlexCast state machine for one group. It implements
// amcast.Engine. Not safe for concurrent use; runtimes serialize access.
type Engine struct {
	cfg Config
	g   amcast.GroupID
	ov  *overlay.CDAG

	hst *history.History
	// delivered doubles as deliveredInG and as the tombstone set that
	// prevents re-delivery after garbage collection.
	delivered map[amcast.MsgID]bool
	// open is the open-dependency set: messages present in hst, addressed
	// to g, not yet delivered (open-dependencies() in Algorithm 3).
	open map[amcast.MsgID]bool
	// queues holds the per-ancestor FIFO queues of undelivered application
	// messages, keyed by the message's lca (Algorithm 1 line 14).
	queues map[amcast.GroupID][]amcast.MsgID
	// pend tracks acks/notifLists per in-flight message; entries are
	// created on first reference because an ACK can overtake its MSG on a
	// different link.
	pend map[amcast.MsgID]*pending
	// pendNotif holds notifications waiting for open dependencies.
	pendNotif []*pendingNotif
	// notifDone records, per message, the highest certification epoch
	// of each notifier's NOTIF this group already accepted (flushed or
	// deferred). A NOTIF at an epoch ≤ the accepted one is folded as a
	// duplicate; a higher epoch means the notifier has certified a
	// fresh edge since, and is processed anew with a fresh dependency
	// snapshot. Distinct notifiers are never folded against each other:
	// each snapshots its own dependency set — see the pending.notif
	// comment and DESIGN.md §4.
	notifDone map[amcast.MsgID]map[amcast.GroupID]uint64
	// trafficSeq[d] counts the history nodes addressed to d that have
	// entered this engine's history (merged diffs and local
	// deliveries). A NOTIF to d certifies the edges known at a given
	// count; when the count has advanced since the last NOTIF about a
	// message, the next NOTIF bumps its certification epoch so the
	// notified group cannot fold it — the targeted re-certification
	// that closes the fresh-request staircase ring (DESIGN.md §4
	// deviation 8). Monotone counters rather than history sizes: GC
	// pruning must not make the signal go backwards.
	trafficSeq map[amcast.GroupID]uint64
	// notifSent[id][d] is the notifier-side record of the last NOTIF
	// sent about id to d (epoch + trafficSeq snapshot). Entries for a
	// message this group delivers are dropped at delivery (a
	// destination never notifies about a message after delivering it);
	// notified groups' entries share notifDone's lifecycle.
	notifSent map[amcast.MsgID]map[amcast.GroupID]notifState
	// cursors tracks, per descendant, the prefix of the history already
	// sent (hst(h) in Algorithm 1 line 18, as a log cursor).
	cursors map[amcast.GroupID]history.Cursor

	deliveries []amcast.Delivery
	seq        uint64

	// counters for tests and debugging.
	nPruned int
}

var _ amcast.Engine = (*Engine)(nil)

var _ amcast.BatchStepper = (*Engine)(nil)

// New builds a FlexCast engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Overlay == nil {
		return nil, fmt.Errorf("core: nil overlay")
	}
	if !cfg.Overlay.Contains(cfg.Group) {
		return nil, fmt.Errorf("core: group %d not in overlay", cfg.Group)
	}
	return &Engine{
		cfg:        cfg,
		g:          cfg.Group,
		ov:         cfg.Overlay,
		hst:        history.New(),
		delivered:  make(map[amcast.MsgID]bool),
		open:       make(map[amcast.MsgID]bool),
		queues:     make(map[amcast.GroupID][]amcast.MsgID),
		pend:       make(map[amcast.MsgID]*pending),
		notifDone:  make(map[amcast.MsgID]map[amcast.GroupID]uint64),
		trafficSeq: make(map[amcast.GroupID]uint64),
		notifSent:  make(map[amcast.MsgID]map[amcast.GroupID]notifState),
		cursors:    make(map[amcast.GroupID]history.Cursor),
	}, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Group implements amcast.Engine.
func (e *Engine) Group() amcast.GroupID { return e.g }

// TakeDeliveries implements amcast.Engine.
func (e *Engine) TakeDeliveries() []amcast.Delivery {
	d := e.deliveries
	e.deliveries = nil
	return d
}

// HistoryLen reports the number of live history nodes (tests, metrics).
func (e *Engine) HistoryLen() int { return e.hst.Len() }

// PrunedNodes reports how many history nodes GC removed so far.
func (e *Engine) PrunedNodes() int { return e.nPruned }

// QueuedMessages reports the total number of queued undelivered messages.
func (e *Engine) QueuedMessages() int {
	n := 0
	for _, q := range e.queues {
		n += len(q)
	}
	return n
}

// OnEnvelope implements amcast.Engine (Algorithm 2).
func (e *Engine) OnEnvelope(env amcast.Envelope) []amcast.Output {
	var outs []amcast.Output
	e.step(env, &outs)
	return outs
}

// BatchStep implements amcast.BatchStepper — the engine's batch fast
// path: every envelope's state updates (history merges, ack and
// notification bookkeeping, immediate lca deliveries) are applied in
// order, and the reprocess fixpoint — the dominant per-envelope cost,
// scanning ancestor queues and walking history dependencies — runs once
// for the whole batch instead of once per envelope. Deferring the
// fixpoint is protocol-equivalent to per-envelope processing: the
// deliverability conditions a message satisfies are exactly those it
// would satisfy had the batch arrived as individual envelopes processed
// by a momentarily busy server, and the acks the fixpoint emits simply
// carry consolidated history diffs. Deliveries and outputs remain a
// deterministic function of the batch sequence (what state machine
// replication requires); the per-envelope execution stays available
// through OnEnvelope and is what the simulator and chaos explorer run.
// TestBatchStepSafety validates chunked executions against the full
// multicast specification.
func (e *Engine) BatchStep(envs []amcast.Envelope) []amcast.Output {
	var outs []amcast.Output
	for _, env := range envs {
		e.apply(env, &outs)
	}
	e.reprocess(&outs)
	return outs
}

func (e *Engine) step(env amcast.Envelope, outs *[]amcast.Output) {
	e.apply(env, outs)
	e.reprocess(outs)
}

// apply performs one envelope's state updates without the trailing
// reprocess fixpoint.
func (e *Engine) apply(env amcast.Envelope, outs *[]amcast.Output) {
	switch env.Kind {
	case amcast.KindRequest:
		e.onRequest(env, outs)
	case amcast.KindMsg:
		e.onMsg(env, outs)
	case amcast.KindAck:
		e.onAck(env, outs)
	case amcast.KindNotif:
		e.onNotif(env, outs)
	}
}

// onRequest handles a client message entering the overlay at its lca
// (Algorithm 2 lines 1-2): the lca delivers immediately, imposing its
// order on all descendants.
func (e *Engine) onRequest(env amcast.Envelope, outs *[]amcast.Output) {
	m := env.Msg
	if len(m.Dst) == 0 || e.ov.Lca(m.Dst) != e.g || e.delivered[m.ID] {
		return
	}
	e.deliver(m, outs)
}

// onMsg handles an application message propagated by its lca (Algorithm 2
// lines 3-6).
func (e *Engine) onMsg(env amcast.Envelope, outs *[]amcast.Output) {
	e.mergeHist(env.Hist)
	m := env.Msg
	if !m.HasDst(e.g) || e.delivered[m.ID] {
		// Duplicate or misrouted: the history merge above is still useful.
		return
	}
	p := e.pending(m.ID)
	if !p.hasMsg {
		p.msg = m
		p.hasMsg = true
	}
	e.mergeNotifList(p, env.NotifList)
	if !p.queued {
		lca := e.ov.Lca(m.Dst)
		e.queues[lca] = append(e.queues[lca], m.ID)
		p.queued = true
	}
}

// onAck handles an acknowledgment from an ancestor destination or a
// notified ancestor (Algorithm 2 lines 7-11).
func (e *Engine) onAck(env amcast.Envelope, outs *[]amcast.Output) {
	e.mergeHist(env.Hist)
	m := env.Msg
	if e.delivered[m.ID] {
		return
	}
	from := env.From
	if !from.IsClient() {
		p := e.pending(m.ID)
		p.acks[from.Group()] = true
		for _, c := range env.AckCovers {
			covered, ok := p.notifAcks[from.Group()]
			if !ok {
				covered = make(map[amcast.GroupID]uint64)
				p.notifAcks[from.Group()] = covered
			}
			if c.Epoch > covered[c.Notifier] {
				covered[c.Notifier] = c.Epoch
			}
		}
		e.mergeNotifList(p, env.NotifList)
	}
}

// onNotif handles a notification: this group is not a destination of the
// message but must flush its dependencies down the C-DAG (Algorithm 2
// lines 12-18). Every distinct notifier is processed: its NOTIF arrived
// on the same FIFO link as the notifier's earlier history traffic, so
// the open-dependency snapshot taken here covers everything the notifier
// ordered before the message. A NOTIF is folded as a duplicate only when
// its certification epoch does not exceed the highest already accepted
// from that notifier; a bumped epoch certifies a fresh edge and is
// processed anew — its dependency snapshot, taken after the FIFO link
// delivered the traffic that caused the bump, covers the fresh message.
// The resulting ack declares the (notifier, epoch) entries it answers
// (AckCovers), letting destinations pair acks with notifier epochs.
func (e *Engine) onNotif(env amcast.Envelope, outs *[]amcast.Output) {
	e.mergeHist(env.Hist)
	m := env.Msg
	notifier := env.From.Group()
	epoch := env.CertEpoch
	if epoch == 0 {
		epoch = 1
	}
	if m.HasDst(e.g) || env.From.IsClient() || epoch <= e.notifDone[m.ID][notifier] {
		// Destinations ack on delivery; notifications already accepted
		// at this epoch (or a later one) are folded.
		return
	}
	done, ok := e.notifDone[m.ID]
	if !ok {
		done = make(map[amcast.GroupID]uint64)
		e.notifDone[m.ID] = done
	}
	done[notifier] = epoch
	deps := make(map[amcast.MsgID]bool, len(e.open))
	for id := range e.open {
		deps[id] = true
	}
	if len(deps) > 0 {
		e.pendNotif = append(e.pendNotif, &pendingNotif{msg: m.Header(), notifier: notifier, epoch: epoch, deps: deps})
	} else {
		e.sendFlushAck(m.Header(), []amcast.AckCover{{Notifier: notifier, Epoch: epoch}}, outs)
	}
}

func (e *Engine) pending(id amcast.MsgID) *pending {
	p, ok := e.pend[id]
	if !ok {
		p = &pending{
			acks:      make(map[amcast.GroupID]bool),
			notif:     make(map[pairKey]uint64),
			notifAcks: make(map[amcast.GroupID]map[amcast.GroupID]uint64),
		}
		e.pend[id] = p
	}
	return p
}

func (e *Engine) mergeNotifList(p *pending, ps []amcast.NotifPair) {
	for _, pr := range ps {
		k := pairKey{notifier: pr.Notifier, notified: pr.Notified}
		epoch := pr.Epoch
		if epoch == 0 {
			epoch = 1
		}
		if epoch > p.notif[k] {
			p.notif[k] = epoch
		}
	}
}

// mergeHist integrates a received history diff (update-hst in Algorithm 3)
// and maintains the open-dependency set and the per-group traffic
// counters driving NOTIF re-certification.
func (e *Engine) mergeHist(d *amcast.HistDelta) {
	for _, n := range e.hst.Merge(d) {
		for _, dst := range n.Dst {
			e.trafficSeq[dst]++
		}
		if e.delivered[n.ID] {
			continue
		}
		for _, dst := range n.Dst {
			if dst == e.g {
				e.open[n.ID] = true
				break
			}
		}
	}
}

// deliver delivers m at this group (Algorithm 3 lines 20-31), appending
// the outputs it generates.
func (e *Engine) deliver(m amcast.Message, outs *[]amcast.Output) {
	if !e.hst.Contains(m.ID) {
		// A locally appended node is new traffic for its destinations,
		// exactly like a merged one (mergeHist counts those).
		for _, dst := range m.Dst {
			e.trafficSeq[dst]++
		}
	}
	e.hst.AppendDelivered(history.Node{ID: m.ID, Dst: m.Dst})
	e.delivered[m.ID] = true
	delete(e.open, m.ID)
	e.deliveries = append(e.deliveries, amcast.Delivery{Group: e.g, Seq: e.seq, Msg: m})
	e.seq++

	lca := e.ov.Lca(m.Dst)
	if lca == e.g {
		e.sendDescendants(m, amcast.KindMsg, nil, outs)
	} else {
		e.dequeue(lca, m.ID)
		e.sendDescendants(m.Header(), amcast.KindAck, nil, outs)
	}
	delete(e.pend, m.ID)
	// This group never notifies about m again after delivering it (all
	// sends for m happen above), so its notifier-side record is dead.
	delete(e.notifSent, m.ID)

	// Unblock pending notifications waiting on this delivery. Entries
	// for the same message that unblock together are answered with one
	// ack covering all their (notifier, epoch) entries.
	kept := e.pendNotif[:0]
	var readyIDs []amcast.MsgID
	readyMsg := make(map[amcast.MsgID]amcast.Message)
	readyCovers := make(map[amcast.MsgID][]amcast.AckCover)
	for _, pn := range e.pendNotif {
		delete(pn.deps, m.ID)
		if len(pn.deps) > 0 {
			kept = append(kept, pn)
			continue
		}
		if _, ok := readyMsg[pn.msg.ID]; !ok {
			readyMsg[pn.msg.ID] = pn.msg
			readyIDs = append(readyIDs, pn.msg.ID)
		}
		readyCovers[pn.msg.ID] = append(readyCovers[pn.msg.ID], amcast.AckCover{Notifier: pn.notifier, Epoch: pn.epoch})
	}
	e.pendNotif = kept
	for _, id := range readyIDs {
		e.sendFlushAck(readyMsg[id], readyCovers[id], outs)
	}

	if m.Flags&amcast.FlagFlush != 0 && !e.cfg.DisableGC {
		e.nPruned += e.hst.PruneBefore(m.ID)
		e.compactCursors()
	}
}

// compactCursors shrinks the history log after a prune, keeping the
// per-descendant diff cursors consistent.
func (e *Engine) compactCursors() {
	keys := make([]amcast.GroupID, 0, len(e.cursors))
	vals := make([]history.Cursor, 0, len(e.cursors))
	for g, c := range e.cursors {
		keys = append(keys, g)
		vals = append(vals, c)
	}
	ptrs := make([]*history.Cursor, len(vals))
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	e.hst.CompactLog(ptrs)
	for i, g := range keys {
		e.cursors[g] = vals[i]
	}
}

func (e *Engine) dequeue(lca amcast.GroupID, id amcast.MsgID) {
	q := e.queues[lca]
	for i, qid := range q {
		if qid == id {
			e.queues[lca] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// sendFlushAck answers one or more notifiers' NOTIFs for m: an ACK to
// every destination above this group, declaring the covered
// (notifier, epoch) entries.
func (e *Engine) sendFlushAck(m amcast.Message, covers []amcast.AckCover, outs *[]amcast.Output) {
	e.sendDescendants(m, amcast.KindAck, amcast.NormalizeCovers(covers), outs)
}

// sendDescendants implements Algorithm 3 lines 32-35: notify
// non-destination descendants as needed (Strategy c), then send the
// MSG/ACK with a history diff to every destination ranked above this
// group. covers, set on a notified group's flush ack, names the
// (notifier, epoch) entries the ack answers (nil on delivery acks and
// MSG). The NOTIFs and the MSG/ACK leave in one atomic step, so the
// pair list announced to destinations always carries the epochs the
// NOTIFs were actually sent at — a destination can never learn a pair
// without also learning its current certification epoch.
func (e *Engine) sendDescendants(m amcast.Message, kind amcast.Kind, covers []amcast.AckCover, outs *[]amcast.Output) {
	notifList := e.sendNotifs(m, outs)
	if p, ok := e.pend[m.ID]; ok {
		for k, epoch := range p.notif {
			notifList = append(notifList, amcast.NotifPair{Notifier: k.notifier, Notified: k.notified, Epoch: epoch})
		}
	}
	notifList = amcast.NormalizePairs(notifList)

	myRank := e.ov.Rank(e.g)
	for _, d := range m.Dst {
		if e.ov.Rank(d) <= myRank {
			continue
		}
		delta := e.diffFor(d)
		*outs = append(*outs, amcast.Output{
			To: amcast.GroupNode(d),
			Env: amcast.Envelope{
				Kind:      kind,
				From:      amcast.GroupNode(e.g),
				Msg:       m,
				Hist:      delta,
				NotifList: notifList,
				AckCovers: covers,
			},
		})
	}
}

// sendNotifs implements Algorithm 3 lines 36-40 (Strategy c): for every
// descendant d that is not a destination of m but is an ancestor of some
// destination, and to which this group's history holds application
// traffic, send a NOTIF so d can flush its dependencies. Each NOTIF
// carries a certification epoch: 1 on the first NOTIF about m to d,
// bumped whenever traffic addressed to d has entered this group's
// history since the last NOTIF (trafficSeq advanced) — the NOTIF then
// certifies edges the earlier one could not have, so the notified group
// must not fold it. With no new traffic the epoch is unchanged and the
// receiver folds the re-send (its history diff still advances d's
// knowledge). Returns the (this group → d) pairs at the epochs actually
// sent, for the accompanying MSG/ACK's pair list.
func (e *Engine) sendNotifs(m amcast.Message, outs *[]amcast.Output) []amcast.NotifPair {
	maxRank := -1
	for _, d := range m.Dst {
		if r := e.ov.Rank(d); r > maxRank {
			maxRank = r
		}
	}
	var notified []amcast.NotifPair
	myRank := e.ov.Rank(e.g)
	for r := myRank + 1; r < maxRank; r++ {
		d := e.ov.GroupAt(r)
		if m.HasDst(d) || !e.hst.ContainsMsgTo(d) {
			continue
		}
		sent := e.notifSent[m.ID]
		st := sent[d]
		cur := e.trafficSeq[d]
		switch {
		case st.epoch == 0 || cur > st.seq:
			st = notifState{epoch: st.epoch + 1, seq: cur}
		}
		if sent == nil {
			sent = make(map[amcast.GroupID]notifState)
			e.notifSent[m.ID] = sent
		}
		sent[d] = st
		delta := e.diffFor(d)
		*outs = append(*outs, amcast.Output{
			To: amcast.GroupNode(d),
			Env: amcast.Envelope{
				Kind:      amcast.KindNotif,
				From:      amcast.GroupNode(e.g),
				Msg:       m.Header(),
				Hist:      delta,
				CertEpoch: st.epoch,
			},
		})
		notified = append(notified, amcast.NotifPair{Notifier: e.g, Notified: d, Epoch: st.epoch})
	}
	return notified
}

func (e *Engine) diffFor(d amcast.GroupID) *amcast.HistDelta {
	delta, cur := e.hst.DiffSince(e.cursors[d])
	e.cursors[d] = cur
	return delta
}

// reprocess drains the ancestor queues while progress is possible
// (Algorithm 3 lines 41-48). outs accumulates all generated envelopes;
// the (possibly grown) slice is returned for convenience.
func (e *Engine) reprocess(outs *[]amcast.Output) []amcast.Output {
	for {
		progressed := false
		// Iterate ancestors in rank order for determinism.
		for _, lca := range e.ov.Ancestors(e.g) {
			q := e.queues[lca]
			if len(q) == 0 {
				continue
			}
			id := q[0]
			if e.canDeliver(id) {
				e.deliver(e.pend[id].msg, outs)
				progressed = true
			}
		}
		if !progressed {
			return *outs
		}
	}
}

// canDeliver implements Algorithm 3 lines 49-54.
func (e *Engine) canDeliver(id amcast.MsgID) bool {
	p := e.pend[id]
	if p == nil || !p.hasMsg {
		return false
	}
	// Condition 1: acks from every ancestor destination except the lca,
	// and, for every known notification pair whose notified group is an
	// ancestor of g, a flush ack from that group covering that notifier
	// at the pair's certification epoch or later (notified groups
	// ranked above g ack only their own descendants). Pair-wise
	// matching is what makes the wait causally meaningful: the covering
	// ack was sent after the notified group processed that notifier's
	// NOTIF at that epoch, which on FIFO links follows every message
	// the notifier had ordered before m — including the fresh traffic
	// that caused an epoch bump (DESIGN.md §4 deviation 8).
	m := p.msg
	lca := e.ov.Lca(m.Dst)
	myRank := e.ov.Rank(e.g)
	for _, d := range m.Dst {
		if d == lca || e.ov.Rank(d) >= myRank {
			continue
		}
		if !p.acks[d] {
			return false
		}
	}
	for pr, epoch := range p.notif {
		if e.ov.Rank(pr.notified) < myRank && p.notifAcks[pr.notified][pr.notifier] < epoch {
			return false
		}
	}
	// Condition 2: no undelivered message addressed to g precedes m. The
	// search prunes at locally delivered nodes: everything ordered before
	// a delivered message and addressed to g was delivered first, so no
	// open dependency can hide behind one.
	return !e.hst.AnyBeforeUntil(id,
		func(x amcast.MsgID) bool { return e.open[x] },
		func(x amcast.MsgID) bool { return e.delivered[x] })
}

// CheckHistoryAcyclic verifies that the merged history remains a DAG —
// the internal invariant behind the Acyclic Order property; exposed for
// tests.
func (e *Engine) CheckHistoryAcyclic() error { return e.hst.CheckAcyclic() }

// HistorySnapshot returns the live history nodes and edges, sorted;
// exposed for tests and chaos failure analysis.
func (e *Engine) HistorySnapshot() ([]history.Node, []amcast.HistEdge) {
	return e.hst.Snapshot()
}

// OpenDependencies returns the ids of undelivered messages addressed to
// this group that appear in its history, sorted; exposed for tests.
func (e *Engine) OpenDependencies() []amcast.MsgID {
	ids := make([]amcast.MsgID, 0, len(e.open))
	for id := range e.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// DebugDump renders the engine's blocking state — queued messages with
// the acks they hold and need, open dependencies, withheld notifications
// — for chaos-schedule failure analysis and tests.
func (e *Engine) DebugDump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "group %d: delivered=%d open=%v\n", e.g, len(e.delivered), e.OpenDependencies())
	lcas := make([]amcast.GroupID, 0, len(e.queues))
	for lca := range e.queues {
		lcas = append(lcas, lca)
	}
	sort.Slice(lcas, func(i, j int) bool { return lcas[i] < lcas[j] })
	for _, lca := range lcas {
		for _, id := range e.queues[lca] {
			p := e.pend[id]
			if p == nil {
				fmt.Fprintf(&sb, "  q[lca %d] %s: no pending state\n", lca, id)
				continue
			}
			pairs := make([]amcast.NotifPair, 0, len(p.notif))
			for k, epoch := range p.notif {
				pairs = append(pairs, amcast.NotifPair{Notifier: k.notifier, Notified: k.notified, Epoch: epoch})
			}
			pairs = amcast.NormalizePairs(pairs)
			fmt.Fprintf(&sb, "  q[lca %d] %s: hasMsg=%v dst=%v acks=%v notif=%v canDeliver=%v\n",
				lca, id, p.hasMsg, p.msg.Dst, sortedGroups(p.acks), pairs, e.canDeliver(id))
		}
	}
	for _, pn := range e.pendNotif {
		deps := make([]amcast.MsgID, 0, len(pn.deps))
		for id := range pn.deps {
			deps = append(deps, id)
		}
		sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
		fmt.Fprintf(&sb, "  withheld notif-ack for %s (notifier %d epoch %d): waiting on %v\n", pn.msg.ID, pn.notifier, pn.epoch, deps)
	}
	return sb.String()
}
