package core_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
	"flexcast/internal/prototest"
)

// TestFreshRequestRingCycle is the shrunk, scripted form of the
// acyclic-order violation behind the long-open fig5 repro
//
//	flexbench -experiment fig5 -scale 0.02 -seed 2 -verify
//
// (ROADMAP "known issue"; DESIGN.md §4). In the wild trace, five
// two-destination messages over five rank-adjacent groups form a ring:
// each adjacent pair shares exactly ONE destination group, so pairwise
// prefix order holds everywhere and only the global acyclicity audit
// sees the cycle. This test replays that ring move by move.
//
// Groups ranked 1 < 2 < 3 < 4 < 5. Ring members (all two-destination):
//
//	mA = {1,2}, mB = {1,5}, mC = {2,3}, mD = {3,4}, mE = {4,5}
//
// plus two seeds that only make g1's and g3's histories carry traffic
// for the NOTIF gate: s3 = {1,3} and s34 = {3,4}.
//
// Mechanism — a staircase of lca fast-path deliveries racing in-flight
// MSGs: g1 delivers mA then mB; g2 delivers fresh mC just before
// MSG(mA) lands (mC ≺ mA); g3 delivers fresh mD just before MSG(mC)
// lands (mD ≺ mC); g4 delivers fresh mE just before MSG(mD) lands
// (mE ≺ mD); g5 finally delivers mB before MSG(mE) — closing
// mA ≺ mB ≺ mE ≺ mD ≺ mC ≺ mA.
//
// Every flush ack collected by g5 is legitimate: each notified group's
// ack snapshots dependencies AFTER the notifier's earlier traffic
// (FIFO), and each group's fatal inversion is created only after its
// last mB-related send, so no ack can carry it. The one mechanism that
// could still ship the final edge (mE ≺ mD, created at g4) to g5 is
// g3's re-notification of g4 — but g4 already answered a NOTIF from g3
// once, so the duplicate is folded and no fresh ack is sent. That fold
// is the escape hatch: in 3- and 4-group variants of this ring the
// re-notify chain necessarily follows the staircase MSG on the same
// FIFO link, the covering ack carries the fatal edge, and the pair-wise
// wait (DESIGN.md §4, the PR 1 fix) blocks the cycle — this scripted
// 5-group configuration is minimal.
//
// The test pins today's behaviour step by step, then Skips: this is a
// protocol-level hole (flush acks certify only orderings that exist at
// ack time; nothing re-certifies after a notified group orders a new
// message before in-flight traffic), not an implementation slip. A fix
// must break the staircase and should flip this test to assert the
// cycle-free order.
func TestFreshRequestRingCycle(t *testing.T) {
	const (
		g1 amcast.GroupID = 1
		g2 amcast.GroupID = 2
		g3 amcast.GroupID = 3
		g4 amcast.GroupID = 4
		g5 amcast.GroupID = 5
	)
	ov := overlay.MustCDAG([]amcast.GroupID{g1, g2, g3, g4, g5})
	r := prototest.NewRouter(t, ov.Order(), func(g amcast.GroupID) amcast.Engine {
		return core.MustNew(core.Config{Group: g, Overlay: ov})
	})
	s3 := prototest.Msg(1, g1, g3)
	mA := prototest.Msg(2, g1, g2)
	mB := prototest.Msg(3, g1, g5)
	s34 := prototest.Msg(4, g3, g4)
	mC := prototest.Msg(5, g2, g3)
	mD := prototest.Msg(6, g3, g4)
	mE := prototest.Msg(7, g4, g5)

	// g1 delivers s3, mA, mB on the lca fast path. mB's delivery sends
	// MSG(mB) to g5 and — g1's history holding traffic for g2 (mA) and
	// g3 (s3) — NOTIF(mB) to both, creating pairs (g1→g2) and (g1→g3).
	r.Multicast(g1, s3)
	r.Multicast(g1, mA)
	r.Multicast(g1, mB)
	wantOrder(t, r.Seq(g1), 1, 2, 3)

	// g3 seeds its history with s34 (fresh lca) and s3, then answers
	// g1's NOTIF(mB) with nothing open: the flush ack (covering g1)
	// heads for g5, and — g3's history holding s34, addressed to g4 —
	// g3 re-notifies g4, creating pair (g3→g4). All of this happens
	// before g3's staircase step, exactly as in the wild trace.
	r.Multicast(g3, s34)
	r.Step(g1, g3, amcast.KindMsg, 1)
	r.Step(g1, g3, amcast.KindNotif, 3)
	wantOrder(t, r.Seq(g3), 4, 1)

	// g2's staircase step: fresh mC is delivered before the in-flight
	// MSG(mA) lands — the first ring inversion, mC ≺ mA. The NOTIF(mB)
	// answer then carries that edge to g5 (harmless: neither mC nor mA
	// is addressed to g5) and re-notifies g3, creating pair (g2→g3).
	r.Multicast(g2, mC)
	r.Step(g1, g2, amcast.KindMsg, 2)
	r.Step(g1, g2, amcast.KindNotif, 3)
	wantOrder(t, r.Seq(g2), 5, 2)

	// g4 discharges ALL of its mB obligations before its own staircase
	// step: it delivers s34, then answers g3's NOTIF with nothing open.
	// Its covering ack predates the fatal edge by construction.
	r.Step(g3, g4, amcast.KindMsg, 4)
	r.Step(g3, g4, amcast.KindNotif, 3)
	wantOrder(t, r.Seq(g4), 4)

	// g3's staircase step: fresh mD before the in-flight MSG(mC) —
	// mD ≺ mC. Answering g2's NOTIF (a different notifier, so not
	// folded) sends a second flush ack that DOES carry mD ≺ mC to g5 —
	// harmless again, since neither is addressed to g5 — and re-sends
	// NOTIF(mB) to g4.
	r.Multicast(g3, mD)
	r.Step(g2, g3, amcast.KindMsg, 5)
	r.Step(g2, g3, amcast.KindNotif, 3)
	wantOrder(t, r.Seq(g3), 4, 1, 6, 5)

	// g4's staircase step: fresh mE before the in-flight MSG(mD) — the
	// fatal edge mE ≺ mD, created AFTER g4's last mB-related send. g3's
	// re-sent NOTIF(mB) then lands and is folded as a duplicate: the
	// one message that could have carried the fatal edge to g5 in a
	// fresh covering ack is never sent.
	before := r.LinkDepth(g4, g5)
	r.Multicast(g4, mE)
	r.Step(g3, g4, amcast.KindMsg, 6)
	r.Step(g3, g4, amcast.KindNotif, 3)
	wantOrder(t, r.Seq(g4), 4, 7, 6)
	if got := r.LinkDepth(g4, g5) - before; got != 1 {
		t.Fatalf("g4 sent %d envelopes to g5 after its staircase step, want 1 (MSG(mE) only; "+
			"the duplicate NOTIF must be folded)", got)
	}

	// g5 collects MSG(mB) and the covering flush acks one by one. The
	// pair-wise wait (the PR 1 fix) blocks delivery until every known
	// (notifier → notified) pair is covered — working exactly as
	// designed, and still not enough.
	r.Step(g1, g5, amcast.KindMsg, 3)
	if got := r.Seq(g5); len(got) != 0 {
		t.Fatalf("g5 delivered %v with no flush acks", got)
	}
	r.Step(g2, g5, amcast.KindAck, 3) // g2 covering g1
	r.Step(g3, g5, amcast.KindAck, 3) // g3 covering g1, announcing (g3→g4)
	r.Step(g3, g5, amcast.KindAck, 3) // g3 covering g2, carrying mD ≺ mC
	if got := r.Seq(g5); len(got) != 0 {
		t.Fatalf("g5 delivered %v before g4's ack covered the (g3→g4) pair", got)
	}
	// The last covering ack arrives — sent before g4's fatal edge
	// existed. g5 now knows mD ≺ mC ≺ mA ≺ mB, but none of those is
	// addressed to g5, and the edge mE ≺ mD exists only inside g4:
	// every wait is satisfied and mB is delivered.
	r.Step(g4, g5, amcast.KindAck, 3)
	wantOrder(t, r.Seq(g5), 3)

	// MSG(mE) lands with no known predecessors: mB ≺ mE closes the ring.
	r.Step(g4, g5, amcast.KindMsg, 7)
	wantOrder(t, r.Seq(g5), 3, 7)

	r.Drain()

	// Integrity, agreement and pairwise prefix order all hold — the
	// ring is invisible to every check but the global acyclicity audit.
	if err := r.Recorder.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if err := r.Recorder.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
	if err := r.Recorder.CheckPrefixOrder(); err != nil {
		t.Fatal(err)
	}
	err := r.Recorder.CheckAcyclicOrder()
	if err == nil {
		t.Fatal("ring scenario no longer cycles: the known issue appears fixed — " +
			"flip this test to assert the corrected order and update DESIGN.md §4 " +
			"and ROADMAP.md")
	}
	t.Skipf("known protocol-level hole, reproduced deterministically (see DESIGN.md §4, "+
		"ROADMAP.md; wild repro: flexbench -experiment fig5 -scale 0.02 -seed 2 -verify): %v", err)
}
