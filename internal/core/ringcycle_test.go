package core_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
	"flexcast/internal/prototest"
)

// TestFreshRequestRingCycle is the shrunk, scripted form of the
// acyclic-order violation that used to reproduce as
//
//	flexbench -experiment fig5 -scale 0.02 -seed 2 -verify
//
// (DESIGN.md §4 deviation 8, now closed). Five two-destination messages
// over five rank-adjacent groups form a ring: each adjacent pair shares
// exactly ONE destination group, so pairwise prefix order holds
// everywhere and only the global acyclicity audit would see the cycle.
// This test replays that ring move by move and asserts the
// re-certification fix breaks it.
//
// Groups ranked 1 < 2 < 3 < 4 < 5. Ring members (all two-destination):
//
//	mA = {1,2}, mB = {1,5}, mC = {2,3}, mD = {3,4}, mE = {4,5}
//
// plus two seeds that only make g1's and g3's histories carry traffic
// for the NOTIF gate: s3 = {1,3} and s34 = {3,4}.
//
// Mechanism — a staircase of lca fast-path deliveries racing in-flight
// MSGs: g1 delivers mA then mB; g2 delivers fresh mC just before
// MSG(mA) lands (mC ≺ mA); g3 delivers fresh mD just before MSG(mC)
// lands (mD ≺ mC); g4 delivers fresh mE just before MSG(mD) lands
// (mE ≺ mD); g5 would then deliver mB before MSG(mE), closing
// mA ≺ mB ≺ mE ≺ mD ≺ mC ≺ mA.
//
// Before the fix, the staircase escaped every wait: each flush ack
// snapshots dependencies at ack time, each group's fatal inversion is
// created only after its last mB-related send, and the one message that
// could carry the final edge (mE ≺ mD) to g5 — g3's re-notification of
// g4 — was folded as a duplicate because g4 had already answered a
// NOTIF(mB) from g3 once.
//
// The fix is latency-bounded edge re-certification: a NOTIF carries a
// certification epoch that g3 bumps when its history has gained traffic
// for g4 since the last NOTIF(mB) it sent there (here: mD). The bumped
// pair (g3→g4)@2 is announced on g3's accompanying flush ack, so g5
// raises its wait; g4 cannot fold the epoch-2 NOTIF and must answer
// with a fresh flush ack whose history diff — sent after MSG(mE) on the
// same FIFO link — carries the fatal edge. g5 then orders mB after mE
// and the ring never closes. This test walks that exact sequence.
func TestFreshRequestRingCycle(t *testing.T) {
	const (
		g1 amcast.GroupID = 1
		g2 amcast.GroupID = 2
		g3 amcast.GroupID = 3
		g4 amcast.GroupID = 4
		g5 amcast.GroupID = 5
	)
	ov := overlay.MustCDAG([]amcast.GroupID{g1, g2, g3, g4, g5})
	r := prototest.NewRouter(t, ov.Order(), func(g amcast.GroupID) amcast.Engine {
		return core.MustNew(core.Config{Group: g, Overlay: ov})
	})
	s3 := prototest.Msg(1, g1, g3)
	mA := prototest.Msg(2, g1, g2)
	mB := prototest.Msg(3, g1, g5)
	s34 := prototest.Msg(4, g3, g4)
	mC := prototest.Msg(5, g2, g3)
	mD := prototest.Msg(6, g3, g4)
	mE := prototest.Msg(7, g4, g5)

	// g1 delivers s3, mA, mB on the lca fast path. mB's delivery sends
	// MSG(mB) to g5 and — g1's history holding traffic for g2 (mA) and
	// g3 (s3) — NOTIF(mB) to both, creating pairs (g1→g2) and (g1→g3).
	r.Multicast(g1, s3)
	r.Multicast(g1, mA)
	r.Multicast(g1, mB)
	wantOrder(t, r.Seq(g1), 1, 2, 3)

	// g3 seeds its history with s34 (fresh lca) and s3, then answers
	// g1's NOTIF(mB) with nothing open: the flush ack (covering g1)
	// heads for g5, and — g3's history holding s34, addressed to g4 —
	// g3 re-notifies g4 at epoch 1, creating pair (g3→g4)@1.
	r.Multicast(g3, s34)
	r.Step(g1, g3, amcast.KindMsg, 1)
	r.Step(g1, g3, amcast.KindNotif, 3)
	wantOrder(t, r.Seq(g3), 4, 1)

	// g2's staircase step: fresh mC is delivered before the in-flight
	// MSG(mA) lands — the first ring inversion, mC ≺ mA. The NOTIF(mB)
	// answer then carries that edge to g5 (harmless: neither mC nor mA
	// is addressed to g5) and re-notifies g3, creating pair (g2→g3).
	r.Multicast(g2, mC)
	r.Step(g1, g2, amcast.KindMsg, 2)
	r.Step(g1, g2, amcast.KindNotif, 3)
	wantOrder(t, r.Seq(g2), 5, 2)

	// g4 discharges its first round of mB obligations before its own
	// staircase step: it delivers s34, then answers g3's epoch-1 NOTIF
	// with nothing open. Its covering ack predates the fatal edge.
	r.Step(g3, g4, amcast.KindMsg, 4)
	r.Step(g3, g4, amcast.KindNotif, 3)
	wantOrder(t, r.Seq(g4), 4)

	// g3's staircase step: fresh mD before the in-flight MSG(mC) —
	// mD ≺ mC. Answering g2's NOTIF (a different notifier, so not
	// folded) sends a second flush ack that carries mD ≺ mC to g5 AND
	// re-sends NOTIF(mB) to g4. g3's history has gained traffic for g4
	// since its epoch-1 NOTIF (mD is addressed to g4), so the re-NOTIF
	// goes out at epoch 2 and the ack announces the bumped (g3→g4)@2.
	r.Multicast(g3, mD)
	r.Step(g2, g3, amcast.KindMsg, 5)
	r.Step(g2, g3, amcast.KindNotif, 3)
	wantOrder(t, r.Seq(g3), 4, 1, 6, 5)

	// g4's staircase step: fresh mE before the in-flight MSG(mD) — the
	// fatal edge mE ≺ mD, created AFTER g4's epoch-1 ack. g3's epoch-2
	// NOTIF(mB) then lands and is NOT foldable: g4 must answer with a
	// fresh flush ack. On the FIFO g4→g5 link that ack follows MSG(mE),
	// so its history diff carries the fatal edge to g5.
	before := r.LinkDepth(g4, g5)
	r.Multicast(g4, mE)
	r.Step(g3, g4, amcast.KindMsg, 6)
	r.Step(g3, g4, amcast.KindNotif, 3)
	wantOrder(t, r.Seq(g4), 4, 7, 6)
	if got := r.LinkDepth(g4, g5) - before; got != 2 {
		t.Fatalf("g4 sent %d envelopes to g5 after its staircase step, want 2 "+
			"(MSG(mE) plus the epoch-2 re-certification ack)", got)
	}

	// g5 collects MSG(mB) and the covering flush acks one by one. The
	// pair-wise wait blocks delivery until every known (notifier →
	// notified) pair is covered at its highest announced epoch.
	r.Step(g1, g5, amcast.KindMsg, 3)
	if got := r.Seq(g5); len(got) != 0 {
		t.Fatalf("g5 delivered %v with no flush acks", got)
	}
	r.Step(g2, g5, amcast.KindAck, 3) // g2 covering g1
	r.Step(g3, g5, amcast.KindAck, 3) // g3 covering g1, announcing (g3→g4)@1
	r.Step(g3, g5, amcast.KindAck, 3) // g3 covering g2, announcing (g3→g4)@2
	if got := r.Seq(g5); len(got) != 0 {
		t.Fatalf("g5 delivered %v before g4's ack covered the (g3→g4) pair", got)
	}
	// g4's epoch-1 ack — sent before the fatal edge existed — arrives
	// first on the FIFO link. It covers (g3→g4) only at epoch 1, and g5
	// knows the pair was re-certified at epoch 2: mB stays blocked.
	// This is the exact point where the pre-fix engine delivered mB and
	// closed the ring.
	r.Step(g4, g5, amcast.KindAck, 3)
	if got := r.Seq(g5); len(got) != 0 {
		t.Fatalf("g5 delivered %v on a stale epoch-1 cover of the re-certified "+
			"(g3→g4) pair", got)
	}

	// MSG(mE) lands next on the link. mE has no undelivered
	// predecessors addressed to g5, so it delivers immediately — and
	// now precedes mB in g5's local order, exactly opposite the pre-fix
	// run.
	r.Step(g4, g5, amcast.KindMsg, 7)

	// g4's epoch-2 ack completes the wait; its history diff carries
	// mE ≺ mD, so mB is ordered after mE. No ring.
	r.Step(g4, g5, amcast.KindAck, 3)
	wantOrder(t, r.Seq(g5), 7, 3)

	r.Drain()

	// Integrity, agreement, pairwise prefix order AND the global
	// acyclicity audit — the check only the pre-fix trace failed — all
	// hold.
	if err := r.Recorder.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if err := r.Recorder.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
	if err := r.Recorder.CheckPrefixOrder(); err != nil {
		t.Fatal(err)
	}
	if err := r.Recorder.CheckAcyclicOrder(); err != nil {
		t.Fatal(err)
	}
}
