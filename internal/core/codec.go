package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"flexcast/amcast"
	"flexcast/internal/codec"
	"flexcast/internal/history"
)

// Binary snapshot codec for the FlexCast engine. Map iteration is
// always sorted, so the same snapshot marshals to the same bytes; the
// history log is serialized verbatim (its entries back diff cursors).

var _ amcast.BinarySnapshot = (*snapshot)(nil)

func sortedIDs[V any](m map[amcast.MsgID]V) []amcast.MsgID {
	ids := make([]amcast.MsgID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sortedGroups[V any](m map[amcast.GroupID]V) []amcast.GroupID {
	gs := make([]amcast.GroupID, 0, len(m))
	for g := range m {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	return gs
}

func appendIDSet(buf []byte, m map[amcast.MsgID]bool) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	for _, id := range sortedIDs(m) {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = codec.AppendBool(buf, m[id])
	}
	return buf
}

func readIDSet(r *codec.Reader) map[amcast.MsgID]bool {
	n := r.Count()
	m := make(map[amcast.MsgID]bool, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		id := amcast.MsgID(r.Uvarint())
		m[id] = r.Bool()
	}
	return m
}

func appendGroupSet(buf []byte, m map[amcast.GroupID]bool) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	for _, g := range sortedGroups(m) {
		buf = binary.AppendUvarint(buf, uint64(uint32(g)))
		buf = codec.AppendBool(buf, m[g])
	}
	return buf
}

func readGroupSet(r *codec.Reader) map[amcast.GroupID]bool {
	n := r.Count()
	m := make(map[amcast.GroupID]bool, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		g := amcast.GroupID(r.Uvarint())
		m[g] = r.Bool()
	}
	return m
}

func appendGroupEpochs(buf []byte, m map[amcast.GroupID]uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	for _, g := range sortedGroups(m) {
		buf = binary.AppendUvarint(buf, uint64(uint32(g)))
		buf = binary.AppendUvarint(buf, m[g])
	}
	return buf
}

func readGroupEpochs(r *codec.Reader) map[amcast.GroupID]uint64 {
	n := r.Count()
	m := make(map[amcast.GroupID]uint64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		g := amcast.GroupID(r.Uvarint())
		m[g] = r.Uvarint()
	}
	return m
}

func appendPending(buf []byte, p *pending) []byte {
	buf = codec.AppendMessage(buf, p.msg)
	buf = codec.AppendBool(buf, p.hasMsg)
	buf = codec.AppendBool(buf, p.queued)
	buf = appendGroupSet(buf, p.acks)
	pairs := make([]amcast.NotifPair, 0, len(p.notif))
	for k, epoch := range p.notif {
		pairs = append(pairs, amcast.NotifPair{Notifier: k.notifier, Notified: k.notified, Epoch: epoch})
	}
	amcast.NormalizePairs(pairs)
	buf = binary.AppendUvarint(buf, uint64(len(pairs)))
	for _, pr := range pairs {
		buf = binary.AppendUvarint(buf, uint64(uint32(pr.Notifier)))
		buf = binary.AppendUvarint(buf, uint64(uint32(pr.Notified)))
		buf = binary.AppendUvarint(buf, pr.Epoch)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.notifAcks)))
	for _, g := range sortedGroups(p.notifAcks) {
		buf = binary.AppendUvarint(buf, uint64(uint32(g)))
		buf = appendGroupEpochs(buf, p.notifAcks[g])
	}
	return buf
}

func readPending(r *codec.Reader) *pending {
	p := &pending{
		msg:    r.Message(),
		hasMsg: r.Bool(),
		queued: r.Bool(),
		acks:   readGroupSet(r),
		notif:  make(map[pairKey]uint64),
	}
	nPairs := r.Count()
	for i := 0; i < nPairs && r.Err() == nil; i++ {
		k := pairKey{
			notifier: amcast.GroupID(r.Uvarint()),
			notified: amcast.GroupID(r.Uvarint()),
		}
		p.notif[k] = r.Uvarint()
	}
	nAcks := r.Count()
	p.notifAcks = make(map[amcast.GroupID]map[amcast.GroupID]uint64, nAcks)
	for i := 0; i < nAcks && r.Err() == nil; i++ {
		g := amcast.GroupID(r.Uvarint())
		p.notifAcks[g] = readGroupEpochs(r)
	}
	return p
}

// MarshalBinary implements amcast.BinarySnapshot.
func (s *snapshot) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 1024)
	buf = binary.AppendUvarint(buf, uint64(uint32(s.g)))
	buf = s.hst.AppendBinary(buf)
	buf = appendIDSet(buf, s.delivered)
	buf = appendIDSet(buf, s.open)
	buf = binary.AppendUvarint(buf, uint64(len(s.queues)))
	for _, g := range sortedGroups(s.queues) {
		buf = binary.AppendUvarint(buf, uint64(uint32(g)))
		q := s.queues[g]
		buf = binary.AppendUvarint(buf, uint64(len(q)))
		for _, id := range q {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.pend)))
	for _, id := range sortedIDs(s.pend) {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = appendPending(buf, s.pend[id])
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.pendNotif)))
	for _, pn := range s.pendNotif {
		buf = codec.AppendMessage(buf, pn.msg)
		buf = binary.AppendUvarint(buf, uint64(uint32(pn.notifier)))
		buf = binary.AppendUvarint(buf, pn.epoch)
		buf = binary.AppendUvarint(buf, uint64(len(pn.deps)))
		for _, id := range sortedIDs(pn.deps) {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.notifDone)))
	for _, id := range sortedIDs(s.notifDone) {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = appendGroupEpochs(buf, s.notifDone[id])
	}
	buf = appendGroupEpochs(buf, s.trafficSeq)
	buf = binary.AppendUvarint(buf, uint64(len(s.notifSent)))
	for _, id := range sortedIDs(s.notifSent) {
		buf = binary.AppendUvarint(buf, uint64(id))
		sent := s.notifSent[id]
		buf = binary.AppendUvarint(buf, uint64(len(sent)))
		for _, g := range sortedGroups(sent) {
			buf = binary.AppendUvarint(buf, uint64(uint32(g)))
			buf = binary.AppendUvarint(buf, sent[g].epoch)
			buf = binary.AppendUvarint(buf, sent[g].seq)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.cursors)))
	for _, g := range sortedGroups(s.cursors) {
		buf = binary.AppendUvarint(buf, uint64(uint32(g)))
		buf = binary.AppendUvarint(buf, uint64(s.cursors[g]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.deliveries)))
	for _, d := range s.deliveries {
		buf = codec.AppendDelivery(buf, d)
	}
	buf = binary.AppendUvarint(buf, s.seq)
	buf = binary.AppendUvarint(buf, uint64(s.nPruned))
	return buf, nil
}

// UnmarshalSnapshot decodes a snapshot previously produced by
// MarshalBinary. The result restores into an Engine of the same group.
func UnmarshalSnapshot(data []byte) (amcast.Snapshot, error) {
	r := codec.NewReader(data)
	s := &snapshot{
		g:   amcast.GroupID(r.Uvarint()),
		hst: history.Decode(r),
	}
	s.delivered = readIDSet(r)
	s.open = readIDSet(r)
	nQ := r.Count()
	s.queues = make(map[amcast.GroupID][]amcast.MsgID, nQ)
	for i := 0; i < nQ && r.Err() == nil; i++ {
		g := amcast.GroupID(r.Uvarint())
		nIDs := r.Count()
		q := make([]amcast.MsgID, 0, nIDs)
		for j := 0; j < nIDs && r.Err() == nil; j++ {
			q = append(q, amcast.MsgID(r.Uvarint()))
		}
		s.queues[g] = q
	}
	nPend := r.Count()
	s.pend = make(map[amcast.MsgID]*pending, nPend)
	for i := 0; i < nPend && r.Err() == nil; i++ {
		id := amcast.MsgID(r.Uvarint())
		s.pend[id] = readPending(r)
	}
	nPN := r.Count()
	for i := 0; i < nPN && r.Err() == nil; i++ {
		pn := &pendingNotif{
			msg:      r.Message(),
			notifier: amcast.GroupID(r.Uvarint()),
			epoch:    r.Uvarint(),
			deps:     make(map[amcast.MsgID]bool),
		}
		nDeps := r.Count()
		for j := 0; j < nDeps && r.Err() == nil; j++ {
			pn.deps[amcast.MsgID(r.Uvarint())] = true
		}
		s.pendNotif = append(s.pendNotif, pn)
	}
	nND := r.Count()
	s.notifDone = make(map[amcast.MsgID]map[amcast.GroupID]uint64, nND)
	for i := 0; i < nND && r.Err() == nil; i++ {
		id := amcast.MsgID(r.Uvarint())
		s.notifDone[id] = readGroupEpochs(r)
	}
	s.trafficSeq = readGroupEpochs(r)
	nNS := r.Count()
	s.notifSent = make(map[amcast.MsgID]map[amcast.GroupID]notifState, nNS)
	for i := 0; i < nNS && r.Err() == nil; i++ {
		id := amcast.MsgID(r.Uvarint())
		nG := r.Count()
		sent := make(map[amcast.GroupID]notifState, nG)
		for j := 0; j < nG && r.Err() == nil; j++ {
			g := amcast.GroupID(r.Uvarint())
			sent[g] = notifState{epoch: r.Uvarint(), seq: r.Uvarint()}
		}
		s.notifSent[id] = sent
	}
	nCur := r.Count()
	s.cursors = make(map[amcast.GroupID]history.Cursor, nCur)
	for i := 0; i < nCur && r.Err() == nil; i++ {
		g := amcast.GroupID(r.Uvarint())
		s.cursors[g] = history.Cursor(r.Uvarint())
	}
	nDel := r.Count()
	s.deliveries = make([]amcast.Delivery, 0, nDel)
	for i := 0; i < nDel && r.Err() == nil; i++ {
		s.deliveries = append(s.deliveries, r.Delivery())
	}
	s.seq = r.Uvarint()
	s.nPruned = int(r.Uvarint())
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("core: snapshot decode: %w", err)
	}
	return s, nil
}
