package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
	"flexcast/internal/prototest"
)

// The three-group overlay of the paper's Figure 3: A → B → C with
// ascending ranks. Group ids: A=1, B=2, C=3.
const (
	gA amcast.GroupID = 1
	gB amcast.GroupID = 2
	gC amcast.GroupID = 3
)

func abcRouter(t *testing.T) *prototest.Router {
	t.Helper()
	ov := overlay.MustCDAG([]amcast.GroupID{gA, gB, gC})
	return prototest.NewRouter(t, ov.Order(), func(g amcast.GroupID) amcast.Engine {
		return core.MustNew(core.Config{Group: g, Overlay: ov})
	})
}

func ids(vs ...uint64) []amcast.MsgID {
	out := make([]amcast.MsgID, len(vs))
	for i, v := range vs {
		out[i] = amcast.MsgID(v)
	}
	return out
}

func wantSeq(t *testing.T, r *prototest.Router, g amcast.GroupID, want []amcast.MsgID) {
	t.Helper()
	if got := r.Seq(g); !reflect.DeepEqual(got, want) {
		t.Fatalf("group %d delivered %v, want %v", g, got, want)
	}
}

// TestLcaDeliversImmediately checks Algorithm 2 lines 1-2: the lca
// delivers a client message on receipt and propagates it.
func TestLcaDeliversImmediately(t *testing.T) {
	r := abcRouter(t)
	r.Multicast(gA, prototest.Msg(1, gA, gC))
	wantSeq(t, r, gA, ids(1))
	if r.InFlight() != 1 {
		t.Fatalf("in flight = %d, want 1 (MSG to C)", r.InFlight())
	}
	r.Step(gA, gC, amcast.KindMsg, 1)
	wantSeq(t, r, gC, ids(1))
}

// TestLocalMessage checks that single-destination messages involve no one
// else.
func TestLocalMessage(t *testing.T) {
	r := abcRouter(t)
	r.Multicast(gB, prototest.Msg(1, gB))
	wantSeq(t, r, gB, ids(1))
	if r.InFlight() != 0 {
		t.Fatalf("local message produced %d envelopes", r.InFlight())
	}
}

// TestFigure3aHistories replays Figure 3(a): C receives m3 (which depends
// on m1 through A's and B's histories) before m1, and must wait.
func TestFigure3aHistories(t *testing.T) {
	r := abcRouter(t)
	m1 := prototest.Msg(1, gA, gC)
	m2 := prototest.Msg(2, gA, gB)
	m3 := prototest.Msg(3, gB, gC)

	r.Multicast(gA, m1) // A delivers m1; MSG m1 -> C in flight
	r.Multicast(gA, m2) // A delivers m2; MSG m2 -> B in flight
	r.Step(gA, gB, amcast.KindMsg, 2)
	wantSeq(t, r, gB, ids(2))
	r.Multicast(gB, m3) // B delivers m3 after m2; MSG m3 -> C in flight

	// C receives m3 first: it must block, because B's history shows
	// m1 ≺ m2 ≺ m3 and m1 is addressed to C but undelivered.
	r.Step(gB, gC, amcast.KindMsg, 3)
	wantSeq(t, r, gC, nil)

	// m1 arrives: C delivers m1 and then unblocks m3.
	r.Step(gA, gC, amcast.KindMsg, 1)
	wantSeq(t, r, gC, ids(1, 3))

	r.Drain()
	if err := r.Recorder.CheckAll(true); err != nil {
		t.Fatal(err)
	}
}

// TestFigure3bAcks replays Figure 3(b): C must wait for B's ACK on m2
// before delivering it, because B (a lower destination of m2 that is not
// the lca) may have created dependencies.
func TestFigure3bAcks(t *testing.T) {
	r := abcRouter(t)
	m1 := prototest.Msg(1, gB, gC)
	m2 := prototest.Msg(2, gA, gB, gC)

	r.Multicast(gB, m1) // B delivers m1; MSG m1 -> C held in flight
	r.Multicast(gA, m2) // A delivers m2; MSG m2 -> B, C

	// C receives m2 first: blocked waiting for B's ack.
	r.Step(gA, gC, amcast.KindMsg, 2)
	wantSeq(t, r, gC, nil)

	// B receives m2, delivers it after m1, and acks to C with its
	// history m1 ≺ m2. The B→C link now carries [MSG m1, ACK m2] in FIFO
	// order.
	r.Step(gA, gB, amcast.KindMsg, 2)
	wantSeq(t, r, gB, ids(1, 2))

	// m1 arrives at C and is delivered, but m2 stays blocked: B's ack has
	// not arrived yet (Strategy b's whole point).
	r.Step(gB, gC, amcast.KindMsg, 1)
	wantSeq(t, r, gC, ids(1))

	// The ACK arrives: C delivers m2 — the paper's required order.
	r.Step(gB, gC, amcast.KindAck, 2)
	wantSeq(t, r, gC, ids(1, 2))

	r.Drain()
	if err := r.Recorder.CheckAll(true); err != nil {
		t.Fatal(err)
	}
}

// TestFigure3bAcksAlternativeInterleaving varies Figure 3(b): m1 reaches
// C before the ack; C may deliver m1 at once and m2 only after the ack.
func TestFigure3bAcksAlternativeInterleaving(t *testing.T) {
	r := abcRouter(t)
	m1 := prototest.Msg(1, gB, gC)
	m2 := prototest.Msg(2, gA, gB, gC)

	r.Multicast(gB, m1)
	r.Multicast(gA, m2)
	r.Step(gA, gC, amcast.KindMsg, 2) // C blocked on ack
	r.Step(gB, gC, amcast.KindMsg, 1) // m1 deliverable immediately
	wantSeq(t, r, gC, ids(1))
	r.Step(gA, gB, amcast.KindMsg, 2)
	r.Step(gB, gC, amcast.KindAck, 2)
	wantSeq(t, r, gC, ids(1, 2))

	r.Drain()
	if err := r.Recorder.CheckAll(true); err != nil {
		t.Fatal(err)
	}
}

// TestFigure3cNotifs replays Figure 3(c): the dependency m1 ≺ m2 exists
// only at B, which is not a destination of m3; A must NOTIF B so that B
// flushes its history to C before C delivers m3.
func TestFigure3cNotifs(t *testing.T) {
	r := abcRouter(t)
	m1 := prototest.Msg(1, gB, gC)
	m2 := prototest.Msg(2, gA, gB)
	m3 := prototest.Msg(3, gA, gC)

	r.Multicast(gB, m1) // B delivers m1; MSG m1 -> C held
	r.Multicast(gA, m2) // A delivers m2; MSG m2 -> B
	r.Step(gA, gB, amcast.KindMsg, 2)
	wantSeq(t, r, gB, ids(1, 2)) // dependency m1 ≺ m2 exists only at B

	// A multicasts m3 = {A, C}. A's history contains m2 (addressed to B),
	// so A must notify B and C must wait for B's ack.
	r.Multicast(gA, m3)
	r.Step(gA, gC, amcast.KindMsg, 3)
	wantSeq(t, r, gC, nil) // blocked: notified ancestor B has not acked

	// B processes the NOTIF: no open dependencies, so it acks m3 to C
	// carrying its history m1 ≺ m2 (≺ m3). The B→C link now carries
	// [MSG m1, ACK m3] in FIFO order.
	r.Step(gA, gB, amcast.KindNotif, 3)

	// m1 arrives and is delivered, but m3 still lacks B's ack.
	r.Step(gB, gC, amcast.KindMsg, 1)
	wantSeq(t, r, gC, ids(1))

	// The ACK lands: C delivers m3 after m1, avoiding the m1≺m2≺m3 cycle.
	r.Step(gB, gC, amcast.KindAck, 3)
	wantSeq(t, r, gC, ids(1, 3))

	r.Drain()
	if err := r.Recorder.CheckAll(true); err != nil {
		t.Fatal(err)
	}
}

// TestNotifWithOpenDependencyIsDeferred checks Algorithm 2 lines 15-16: a
// notified group with an open dependency withholds its ack until the
// dependency is delivered. Under FIFO links the open dependency must come
// from a different ancestor than the notifier, so this uses four groups
// X ≺ A ≺ B ≺ C.
func TestNotifWithOpenDependencyIsDeferred(t *testing.T) {
	const (
		gX amcast.GroupID = 1
		gA amcast.GroupID = 2
		gB amcast.GroupID = 3
		gC amcast.GroupID = 4
	)
	ov := overlay.MustCDAG([]amcast.GroupID{gX, gA, gB, gC})
	r := prototest.NewRouter(t, ov.Order(), func(g amcast.GroupID) amcast.Engine {
		return core.MustNew(core.Config{Group: g, Overlay: ov})
	})
	m0 := prototest.Msg(1, gX, gB)  // creates B's future open dependency
	m0p := prototest.Msg(2, gX, gA) // carries m0 into A's history
	m2 := prototest.Msg(3, gA, gC)  // triggers A's NOTIF to B

	r.Multicast(gX, m0)  // X delivers; MSG m0 -> B held in flight
	r.Multicast(gX, m0p) // X delivers; MSG m0' -> A with history m0 ≺ m0'
	r.Step(gX, gA, amcast.KindMsg, 2)
	wantSeq(t, r, gA, ids(2)) // A now knows m0, addressed to B

	// A multicasts m2 = {A, C}: A's history contains m0 (addressed to B),
	// so A notifies B and C waits for B's ack.
	r.Multicast(gA, m2)
	r.Step(gA, gC, amcast.KindMsg, 3)
	wantSeq(t, r, gC, nil)

	// B processes the NOTIF: its history now holds m0 (addressed to B,
	// undelivered) — the ack is deferred, nothing leaves B yet.
	r.Step(gA, gB, amcast.KindNotif, 3)
	if r.InFlight() != 1 { // only X's MSG m0 -> B remains
		t.Fatalf("in flight = %d, want 1 (deferred ack must not be sent)", r.InFlight())
	}

	// B receives and delivers m0; the pending notification unblocks and
	// the ack (with m0 ≺ …) reaches C.
	r.Step(gX, gB, amcast.KindMsg, 1)
	wantSeq(t, r, gB, ids(1))
	r.Step(gB, gC, amcast.KindAck, 3)
	wantSeq(t, r, gC, ids(3))

	r.Drain()
	if err := r.Recorder.CheckAll(true); err != nil {
		t.Fatal(err)
	}
}

// TestAckBeforeMsg checks robustness when an ACK overtakes its MSG
// (different links): the pending record must absorb the early ack.
func TestAckBeforeMsg(t *testing.T) {
	r := abcRouter(t)
	m := prototest.Msg(1, gA, gB, gC)
	r.Multicast(gA, m)
	r.Step(gA, gB, amcast.KindMsg, 1) // B delivers, ACK -> C
	r.Step(gB, gC, amcast.KindAck, 1) // ACK overtakes A's MSG
	wantSeq(t, r, gC, nil)
	r.Step(gA, gC, amcast.KindMsg, 1)
	wantSeq(t, r, gC, ids(1))
	r.Drain()
	if err := r.Recorder.CheckAll(true); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateRequestIgnored checks Integrity under client retries.
func TestDuplicateRequestIgnored(t *testing.T) {
	r := abcRouter(t)
	m := prototest.Msg(1, gA, gB)
	r.Multicast(gA, m)
	r.Multicast(gA, m)
	wantSeq(t, r, gA, ids(1))
	r.Drain()
	wantSeq(t, r, gB, ids(1))
}

// TestMisroutedRequestDropped checks that a request reaching a non-lca
// group is not delivered there out of band.
func TestMisroutedRequestDropped(t *testing.T) {
	r := abcRouter(t)
	r.Multicast(gB, prototest.Msg(1, gA, gB)) // lca is A, not B
	wantSeq(t, r, gB, nil)
	if r.InFlight() != 0 {
		t.Fatal("misrouted request produced traffic")
	}
}

// TestFlushGarbageCollection checks §4.3: delivering a flush message
// prunes everything ordered before it, and the protocol keeps working.
func TestFlushGarbageCollection(t *testing.T) {
	ov := overlay.MustCDAG([]amcast.GroupID{gA, gB, gC})
	engines := make(map[amcast.GroupID]*core.Engine)
	r := prototest.NewRouter(t, ov.Order(), func(g amcast.GroupID) amcast.Engine {
		e := core.MustNew(core.Config{Group: g, Overlay: ov})
		engines[g] = e
		return e
	})
	for i := uint64(1); i <= 5; i++ {
		r.Multicast(gA, prototest.Msg(i, gA, gB, gC))
	}
	r.Drain()
	before := engines[gC].HistoryLen()
	flush := prototest.Msg(100, gA, gB, gC)
	flush.Flags = amcast.FlagFlush
	r.Multicast(gA, flush)
	r.Drain()
	for g, e := range engines {
		if e.PrunedNodes() == 0 {
			t.Errorf("group %d pruned nothing", g)
		}
		if e.HistoryLen() >= before {
			t.Errorf("group %d history grew after flush: %d -> %d", g, before, e.HistoryLen())
		}
	}
	// The protocol still orders correctly after the prune.
	for i := uint64(6); i <= 10; i++ {
		r.Multicast(gA, prototest.Msg(i, gA, gB, gC))
	}
	r.Drain()
	if err := r.Recorder.CheckAll(true); err != nil {
		t.Fatal(err)
	}
}

// TestDisableGC checks that the GC switch works.
func TestDisableGC(t *testing.T) {
	ov := overlay.MustCDAG([]amcast.GroupID{gA, gB})
	var engA *core.Engine
	r := prototest.NewRouter(t, ov.Order(), func(g amcast.GroupID) amcast.Engine {
		e := core.MustNew(core.Config{Group: g, Overlay: ov, DisableGC: true})
		if g == gA {
			engA = e
		}
		return e
	})
	r.Multicast(gA, prototest.Msg(1, gA, gB))
	flush := prototest.Msg(2, gA, gB)
	flush.Flags = amcast.FlagFlush
	r.Multicast(gA, flush)
	r.Drain()
	if engA.PrunedNodes() != 0 {
		t.Fatal("GC ran despite DisableGC")
	}
}

func TestNewValidation(t *testing.T) {
	ov := overlay.MustCDAG([]amcast.GroupID{gA, gB})
	if _, err := core.New(core.Config{Group: gA}); err == nil {
		t.Error("nil overlay accepted")
	}
	if _, err := core.New(core.Config{Group: 9, Overlay: ov}); err == nil {
		t.Error("group outside overlay accepted")
	}
	if _, err := core.New(core.Config{Group: gA, Overlay: ov}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestRandomWorkloadProperties drives random workloads over random C-DAG
// sizes with link jitter and checks the full atomic multicast
// specification including minimality.
func TestRandomWorkloadProperties(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6} {
		for seed := int64(0); seed < 6; seed++ {
			n, seed := n, seed
			t.Run(fmt.Sprintf("groups=%d/seed=%d", n, seed), func(t *testing.T) {
				groups := make([]amcast.GroupID, n)
				for i := range groups {
					groups[i] = amcast.GroupID(i + 1)
				}
				ov := overlay.MustCDAG(groups)
				rec := prototest.RunRandom(t, prototest.RandomConfig{
					Groups:   groups,
					Clients:  4,
					Messages: 25,
					Route: func(m amcast.Message) []amcast.NodeID {
						return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
					},
					Factory: func(g amcast.GroupID) amcast.Engine {
						return core.MustNew(core.Config{Group: g, Overlay: ov})
					},
					Seed:   seed*31 + int64(n),
					Jitter: 500,
				})
				if err := rec.CheckAll(true); err != nil {
					t.Fatal(err)
				}
				if rec.Deliveries() == 0 {
					t.Fatal("nothing delivered")
				}
			})
		}
	}
}
