package core_test

import (
	"math/rand"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
	"flexcast/internal/prototest"
	"flexcast/internal/sim"
	"flexcast/internal/trace"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed*2654435761 + 1)) }

// TestHistoriesStayAcyclicUnderRandomWorkloads drives random workloads
// through FlexCast and asserts the internal invariant behind Acyclic
// Order: every group's merged history remains a DAG at quiescence.
func TestHistoriesStayAcyclicUnderRandomWorkloads(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		groups := []amcast.GroupID{1, 2, 3, 4, 5}
		ov := overlay.MustCDAG(groups)
		engines := make(map[amcast.GroupID]*core.Engine)
		rec := prototest.RunRandom(t, prototest.RandomConfig{
			Groups:   groups,
			Clients:  3,
			Messages: 30,
			Route: func(m amcast.Message) []amcast.NodeID {
				return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
			},
			Factory: func(g amcast.GroupID) amcast.Engine {
				e := core.MustNew(core.Config{Group: g, Overlay: ov})
				engines[g] = e
				return e
			},
			Seed:   seed,
			Jitter: 700,
		})
		if err := rec.CheckAll(true); err != nil {
			t.Fatal(err)
		}
		for g, e := range engines {
			if err := e.CheckHistoryAcyclic(); err != nil {
				t.Fatalf("seed %d, group %d: %v", seed, g, err)
			}
			if got := len(e.OpenDependencies()); got != 0 {
				t.Fatalf("seed %d, group %d: %d open dependencies after quiescence",
					seed, g, got)
			}
			if got := e.QueuedMessages(); got != 0 {
				t.Fatalf("seed %d, group %d: %d messages still queued", seed, g, got)
			}
		}
	}
}

// TestRandomWorkloadWithPeriodicFlush interleaves flush messages with a
// random workload and re-checks the full specification — GC must never
// compromise ordering.
func TestRandomWorkloadWithPeriodicFlush(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		groups := []amcast.GroupID{1, 2, 3, 4}
		ov := overlay.MustCDAG(groups)
		s := sim.New()
		rec := trace.NewRecorder()
		var checkErr error
		net := sim.NewNetwork(s,
			func(from, to amcast.NodeID) sim.Time { return 300 },
			sim.WithSendHook(func(from, to amcast.NodeID, env amcast.Envelope) {
				if env.Kind == amcast.KindRequest {
					rec.OnMulticast(env.Msg)
				}
				rec.OnSend(from, to, env)
			}))
		engines := make(map[amcast.GroupID]*core.Engine)
		for _, g := range groups {
			g := g
			eng := core.MustNew(core.Config{Group: g, Overlay: ov})
			engines[g] = eng
			net.Register(amcast.GroupNode(g), sim.HandlerFunc(func(env amcast.Envelope) {
				for _, out := range eng.OnEnvelope(env) {
					net.Send(amcast.GroupNode(g), out.To, out.Env)
				}
				for _, d := range eng.TakeDeliveries() {
					if err := rec.OnDeliver(d); err != nil && checkErr == nil {
						checkErr = err
					}
				}
			}))
		}
		net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))

		// Interleave application messages with flushes: every 5th message
		// is a flush to all groups.
		rng := newRng(seed)
		for i := 0; i < 60; i++ {
			var m amcast.Message
			if i%5 == 4 {
				m = amcast.Message{
					ID:     amcast.NewMsgID(0, uint64(i+1)),
					Sender: amcast.ClientNode(0),
					Dst:    append([]amcast.GroupID(nil), groups...),
					Flags:  amcast.FlagFlush,
				}
			} else {
				n := 1 + rng.Intn(len(groups))
				perm := rng.Perm(len(groups))
				dst := make([]amcast.GroupID, 0, n)
				for _, p := range perm[:n] {
					dst = append(dst, groups[p])
				}
				m = amcast.Message{
					ID:     amcast.NewMsgID(0, uint64(i+1)),
					Sender: amcast.ClientNode(0),
					Dst:    amcast.NormalizeDst(dst),
				}
			}
			// m is declared inside the loop body, so each closure captures
			// its own copy.
			at := sim.Time(rng.Int63n(30_000))
			s.ScheduleAt(at, func() {
				rec.OnMulticast(m)
				net.Send(m.Sender, amcast.GroupNode(ov.Lca(m.Dst)),
					amcast.Envelope{Kind: amcast.KindRequest, From: m.Sender, Msg: m})
			})
		}
		s.Run()
		if checkErr != nil {
			t.Fatal(checkErr)
		}
		if err := rec.CheckAll(true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pruned := 0
		for _, e := range engines {
			pruned += e.PrunedNodes()
			if err := e.CheckHistoryAcyclic(); err != nil {
				t.Fatal(err)
			}
		}
		if pruned == 0 {
			t.Fatal("flush messages pruned nothing")
		}
	}
}
