package core

import (
	"fmt"

	"flexcast/amcast"
	"flexcast/internal/history"
)

// snapshot is the FlexCast engine's amcast.Snapshot: a deep copy of every
// mutable field of Engine. Config (group, overlay, GC switch) is not
// captured — a snapshot is restored into an engine built with the same
// configuration, which Restore verifies via the group id.
type snapshot struct {
	g          amcast.GroupID
	hst        *history.History
	delivered  map[amcast.MsgID]bool
	open       map[amcast.MsgID]bool
	queues     map[amcast.GroupID][]amcast.MsgID
	pend       map[amcast.MsgID]*pending
	pendNotif  []*pendingNotif
	notifDone  map[amcast.MsgID]map[amcast.GroupID]uint64
	trafficSeq map[amcast.GroupID]uint64
	notifSent  map[amcast.MsgID]map[amcast.GroupID]notifState
	cursors    map[amcast.GroupID]history.Cursor

	deliveries []amcast.Delivery
	seq        uint64
	nPruned    int
}

// SnapshotGroup implements amcast.Snapshot.
func (s *snapshot) SnapshotGroup() amcast.GroupID { return s.g }

var _ amcast.SnapshotEngine = (*Engine)(nil)

func copyIDSet(m map[amcast.MsgID]bool) map[amcast.MsgID]bool {
	c := make(map[amcast.MsgID]bool, len(m))
	for id, v := range m {
		c[id] = v
	}
	return c
}

func copyGroupSet(m map[amcast.GroupID]bool) map[amcast.GroupID]bool {
	c := make(map[amcast.GroupID]bool, len(m))
	for g, v := range m {
		c[g] = v
	}
	return c
}

func copyGroupEpochs(m map[amcast.GroupID]uint64) map[amcast.GroupID]uint64 {
	c := make(map[amcast.GroupID]uint64, len(m))
	for g, v := range m {
		c[g] = v
	}
	return c
}

func copyNotifDone(m map[amcast.MsgID]map[amcast.GroupID]uint64) map[amcast.MsgID]map[amcast.GroupID]uint64 {
	c := make(map[amcast.MsgID]map[amcast.GroupID]uint64, len(m))
	for id, set := range m {
		c[id] = copyGroupEpochs(set)
	}
	return c
}

func copyNotifSent(m map[amcast.MsgID]map[amcast.GroupID]notifState) map[amcast.MsgID]map[amcast.GroupID]notifState {
	c := make(map[amcast.MsgID]map[amcast.GroupID]notifState, len(m))
	for id, sent := range m {
		cs := make(map[amcast.GroupID]notifState, len(sent))
		for g, st := range sent {
			cs[g] = st
		}
		c[id] = cs
	}
	return c
}

func copyPending(p *pending) *pending {
	c := &pending{
		msg:       p.msg,
		hasMsg:    p.hasMsg,
		queued:    p.queued,
		acks:      copyGroupSet(p.acks),
		notif:     make(map[pairKey]uint64, len(p.notif)),
		notifAcks: make(map[amcast.GroupID]map[amcast.GroupID]uint64, len(p.notifAcks)),
	}
	for pr, v := range p.notif {
		c.notif[pr] = v
	}
	for g, covered := range p.notifAcks {
		c.notifAcks[g] = copyGroupEpochs(covered)
	}
	return c
}

// capture deep-copies the engine's mutable state. It backs both Snapshot
// (engine → snapshot) and Restore (snapshot → engine), so a snapshot can
// be restored repeatedly without the running engine corrupting it.
func (e *Engine) capture() *snapshot {
	s := &snapshot{
		g:          e.g,
		hst:        e.hst.Clone(),
		delivered:  copyIDSet(e.delivered),
		open:       copyIDSet(e.open),
		queues:     make(map[amcast.GroupID][]amcast.MsgID, len(e.queues)),
		pend:       make(map[amcast.MsgID]*pending, len(e.pend)),
		notifDone:  copyNotifDone(e.notifDone),
		trafficSeq: copyGroupEpochs(e.trafficSeq),
		notifSent:  copyNotifSent(e.notifSent),
		cursors:    make(map[amcast.GroupID]history.Cursor, len(e.cursors)),
		deliveries: append([]amcast.Delivery(nil), e.deliveries...),
		seq:        e.seq,
		nPruned:    e.nPruned,
	}
	for g, q := range e.queues {
		s.queues[g] = append([]amcast.MsgID(nil), q...)
	}
	for id, p := range e.pend {
		s.pend[id] = copyPending(p)
	}
	for _, pn := range e.pendNotif {
		deps := make(map[amcast.MsgID]bool, len(pn.deps))
		for id := range pn.deps {
			deps[id] = true
		}
		s.pendNotif = append(s.pendNotif, &pendingNotif{msg: pn.msg, notifier: pn.notifier, epoch: pn.epoch, deps: deps})
	}
	for g, c := range e.cursors {
		s.cursors[g] = c
	}
	return s
}

// install is the inverse of capture: it deep-copies snapshot state into
// the engine.
func (e *Engine) install(s *snapshot) {
	e.hst = s.hst.Clone()
	e.delivered = copyIDSet(s.delivered)
	e.open = copyIDSet(s.open)
	e.queues = make(map[amcast.GroupID][]amcast.MsgID, len(s.queues))
	for g, q := range s.queues {
		e.queues[g] = append([]amcast.MsgID(nil), q...)
	}
	e.pend = make(map[amcast.MsgID]*pending, len(s.pend))
	for id, p := range s.pend {
		e.pend[id] = copyPending(p)
	}
	e.pendNotif = nil
	for _, pn := range s.pendNotif {
		deps := make(map[amcast.MsgID]bool, len(pn.deps))
		for id := range pn.deps {
			deps[id] = true
		}
		e.pendNotif = append(e.pendNotif, &pendingNotif{msg: pn.msg, notifier: pn.notifier, epoch: pn.epoch, deps: deps})
	}
	e.notifDone = copyNotifDone(s.notifDone)
	e.trafficSeq = copyGroupEpochs(s.trafficSeq)
	e.notifSent = copyNotifSent(s.notifSent)
	e.cursors = make(map[amcast.GroupID]history.Cursor, len(s.cursors))
	for g, c := range s.cursors {
		e.cursors[g] = c
	}
	e.deliveries = append([]amcast.Delivery(nil), s.deliveries...)
	e.seq = s.seq
	e.nPruned = s.nPruned
}

// Snapshot implements amcast.SnapshotEngine.
func (e *Engine) Snapshot() amcast.Snapshot { return e.capture() }

// Restore implements amcast.SnapshotEngine.
func (e *Engine) Restore(snap amcast.Snapshot) error {
	s, ok := snap.(*snapshot)
	if !ok {
		return fmt.Errorf("core: restore of foreign snapshot %T", snap)
	}
	if s.g != e.g {
		return fmt.Errorf("core: restore of group %d snapshot into group %d", s.g, e.g)
	}
	e.install(s)
	return nil
}
