package core_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
	"flexcast/internal/prototest"
)

func snapFactory(ov *overlay.CDAG) prototest.EngineFactory {
	return func(g amcast.GroupID) amcast.Engine {
		return core.MustNew(core.Config{Group: g, Overlay: ov})
	}
}

// TestSnapshotReplay checks the SnapshotEngine contract under random
// workloads: an engine restored from a mid-run snapshot must replay the
// remaining inputs to byte-identical outputs and deliveries. FlexCast is
// the hardest case — the snapshot must capture the history DAG, the
// per-ancestor queues, pending acks/notifications and the diff cursors.
func TestSnapshotReplay(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3, 4, 5}
	ov := overlay.MustCDAG(groups)
	route := func(m amcast.Message) []amcast.NodeID {
		return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
	}
	for _, snapAfter := range []int{0, 1, 7, 40} {
		for seed := int64(1); seed <= 4; seed++ {
			prototest.RunSnapshotReplay(t, prototest.RandomConfig{
				Groups:   groups,
				Clients:  3,
				Messages: 12,
				Route:    route,
				Factory:  snapFactory(ov),
				Seed:     seed,
				Jitter:   3000,
			}, snapAfter)
		}
	}
}

// TestDurableReplay runs the on-disk sibling of TestSnapshotReplay: the
// engines persist through the real durable backend, and the kill -9
// image of each group is recovered under three crash shapes — clean,
// a torn frame appended past the last record, and the last record
// truncated mid-frame — with the recovered state audited byte for byte.
func TestDurableReplay(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3, 4, 5}
	ov := overlay.MustCDAG(groups)
	route := func(m amcast.Message) []amcast.NodeID {
		return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
	}
	for _, snapEvery := range []int{7, 1 << 20} {
		for seed := int64(1); seed <= 3; seed++ {
			prototest.RunDurableReplay(t, prototest.RandomConfig{
				Groups:   groups,
				Clients:  3,
				Messages: 12,
				Route:    route,
				Factory:  snapFactory(ov),
				Seed:     seed,
			}, core.UnmarshalSnapshot, snapEvery)
		}
	}
}

// TestRestoreRejectsMismatch verifies the Restore guard rails: wrong
// group and foreign snapshot types are refused.
func TestRestoreRejectsMismatch(t *testing.T) {
	ov := overlay.MustCDAG([]amcast.GroupID{1, 2})
	e1 := core.MustNew(core.Config{Group: 1, Overlay: ov})
	e2 := core.MustNew(core.Config{Group: 2, Overlay: ov})
	if err := e2.Restore(e1.Snapshot()); err == nil {
		t.Fatal("restore of group 1 snapshot into group 2 engine succeeded")
	}
	if err := e1.Restore(badSnapshot{}); err == nil {
		t.Fatal("restore of foreign snapshot type succeeded")
	}
}

type badSnapshot struct{}

func (badSnapshot) SnapshotGroup() amcast.GroupID { return 1 }

// TestSnapshotIsolation verifies a snapshot shares no mutable state with
// its engine: the engine keeps running after the snapshot, and restoring
// the snapshot twice must give identical engines.
func TestSnapshotIsolation(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3}
	ov := overlay.MustCDAG(groups)
	e := core.MustNew(core.Config{Group: 3, Overlay: ov})

	// Feed a MSG that stays queued (no acks yet): rich pending state.
	m := prototest.Msg(7, 1, 2, 3)
	e.OnEnvelope(amcast.Envelope{Kind: amcast.KindMsg, From: amcast.GroupNode(1), Msg: m,
		Hist: &amcast.HistDelta{Nodes: []amcast.HistNode{{ID: m.ID, Dst: m.Dst}}}})
	snap := e.Snapshot()

	// Mutate the engine past the snapshot: deliver m by supplying the ack.
	e.OnEnvelope(amcast.Envelope{Kind: amcast.KindAck, From: amcast.GroupNode(2), Msg: m.Header()})
	if len(e.TakeDeliveries()) == 0 {
		t.Fatal("setup: ack did not unblock delivery")
	}

	for i := 0; i < 2; i++ {
		r := core.MustNew(core.Config{Group: 3, Overlay: ov})
		if err := r.Restore(snap); err != nil {
			t.Fatalf("restore %d: %v", i, err)
		}
		if r.QueuedMessages() != 1 {
			t.Fatalf("restore %d: queued = %d, want 1 (snapshot corrupted by running engine?)", i, r.QueuedMessages())
		}
		outs := r.OnEnvelope(amcast.Envelope{Kind: amcast.KindAck, From: amcast.GroupNode(2), Msg: m.Header()})
		dels := r.TakeDeliveries()
		if len(dels) != 1 || dels[0].Msg.ID != m.ID {
			t.Fatalf("restore %d: deliveries after ack = %v, want [%s]", i, dels, m.ID)
		}
		_ = outs
	}
}
