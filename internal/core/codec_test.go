package core_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
	"flexcast/internal/prototest"
)

// TestSnapshotBinaryRoundTrip runs random workloads to populate rich
// engine state (history DAG, pending tables, notif state, cursors) and
// audits the binary snapshot codec: marshal → decode → restore →
// re-marshal must be byte-identical.
func TestSnapshotBinaryRoundTrip(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3, 4}
	ov, err := overlay.NewCDAG(groups)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(g amcast.GroupID) amcast.Engine {
		return core.MustNew(core.Config{Group: g, Overlay: ov})
	}
	route := func(m amcast.Message) []amcast.NodeID {
		return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
	}
	for seed := int64(1); seed <= 4; seed++ {
		prototest.RunRandom(t, prototest.RandomConfig{
			Groups:   groups,
			Clients:  3,
			Messages: 15,
			Route:    route,
			Factory:  factory,
			Seed:     seed,
			Jitter:   3000,
			OnEngines: func(engines map[amcast.GroupID]amcast.Engine) {
				for g, eng := range engines {
					fresh := core.MustNew(core.Config{Group: g, Overlay: ov})
					prototest.CheckBinarySnapshot(t, eng.(amcast.SnapshotEngine), fresh, core.UnmarshalSnapshot)
				}
			},
		})
	}
}

// TestSnapshotDecodeRejectsCorruption checks the decoder fails cleanly
// (error, not panic) on truncated and bit-flipped records.
func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	ov, err := overlay.NewCDAG([]amcast.GroupID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.MustNew(core.Config{Group: 1, Overlay: ov})
	eng.OnEnvelope(amcast.Envelope{
		Kind: amcast.KindRequest,
		From: amcast.ClientNode(0),
		Msg: amcast.Message{
			ID: amcast.NewMsgID(0, 1), Sender: amcast.ClientNode(0),
			Dst: []amcast.GroupID{1}, Payload: []byte("x"),
		},
	})
	data, err := eng.Snapshot().(amcast.BinarySnapshot).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 3 {
		if _, err := core.UnmarshalSnapshot(data[:cut]); err == nil {
			t.Fatalf("decode of %d/%d-byte truncation succeeded", cut, len(data))
		}
	}
	if _, err := core.UnmarshalSnapshot(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("decode with trailing byte succeeded")
	}
}
