package core_test

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
	"flexcast/internal/prototest"
)

// TestStaleNotifAckCycle replays, step by step, a delivery-cycle scenario
// found by the chaos explorer (internal/chaos): a group notified about a
// message by TWO different notifiers used to satisfy a destination's
// notified-ack wait with the ack answering the FIRST notifier — sent
// before the SECOND notifier's dependencies were knowable. The protocol
// now tracks (notifier → notified) pairs and destinations wait for a
// flush ack covering each notifier (see DESIGN.md §4).
//
// Groups ranked 1 < 2 < 3 < 4. Messages:
//
//	m0 = {1,2,3} — puts a message addressed to g3 into g1's history
//	mX = {2,3}   — puts a message addressed to g3 into g2's history
//	mT = {1,2,4} — the notified message: g1 and g2 both notify g3
//	mF = {3,4}   — fresh lca-g3 message that closes the cycle
//
// Buggy run: g3 answers g1's NOTIF(mT) early; g2 then orders mX ≺ mT and
// re-notifies g3 (carrying mX, addressed to g3), but the duplicate NOTIF
// is folded; g4 delivers mT with the stale ack; g3 delivers mF before mX
// (lca fast path); g4 then delivers mF after mT. Global order:
// mT ≺ mF (g4), mF ≺ mX (g3), mX ≺ mT (g2) — a cycle.
func TestStaleNotifAckCycle(t *testing.T) {
	const (
		g1 amcast.GroupID = 1
		g2 amcast.GroupID = 2
		g3 amcast.GroupID = 3
		g4 amcast.GroupID = 4
	)
	ov := overlay.MustCDAG([]amcast.GroupID{g1, g2, g3, g4})
	r := prototest.NewRouter(t, ov.Order(), func(g amcast.GroupID) amcast.Engine {
		return core.MustNew(core.Config{Group: g, Overlay: ov})
	})
	m0 := prototest.Msg(1, g1, g2, g3)
	mX := prototest.Msg(2, g2, g3)
	mT := prototest.Msg(3, g1, g2, g4)
	mF := prototest.Msg(4, g3, g4)

	// g1 delivers m0 (lca) and holds MSGs to g2, g3 in flight.
	r.Multicast(g1, m0)
	// g3 queues m0: it needs g2's ack, which is held in flight.
	r.Step(g1, g3, amcast.KindMsg, 1)

	// g1 delivers mT; its history holds m0 (addressed to g3, not a
	// destination of mT), so g1 notifies g3 about mT.
	r.Multicast(g1, mT)
	r.Step(g1, g3, amcast.KindNotif, 3)
	// g3 has an open dependency (m0), so the ack for g1's NOTIF is
	// withheld. Release it: g2 delivers m0 and acks to g3.
	r.Step(g1, g2, amcast.KindMsg, 1)
	r.Step(g2, g3, amcast.KindAck, 1)
	// g3 delivered m0 and flushed the NOTIF: its ack (covering g1) plus
	// the m0 delivery ack head for g4.

	// g2 delivers mX (lca) and then mT: order mX ≺ mT at g2. Its ack for
	// mT re-notifies g3 — g2's history holds mX, addressed to g3.
	r.Multicast(g2, mX)
	r.Step(g1, g2, amcast.KindMsg, 3)
	wantOrder(t, r.Seq(g2), 1, 2, 3) // m0, mX, mT at g2

	// g4 receives everything EXCEPT g3's answer to g2's notification:
	// the MSG from g1, g2's ack (naming the pair g2→g3), g3's early
	// flush ack (covering g1 only) and g3's m0 delivery ack.
	r.Step(g1, g4, amcast.KindMsg, 3)
	r.Step(g2, g4, amcast.KindAck, 3)
	drainLink(t, r, g3, g4)

	// The guard under test: g4 must NOT deliver mT yet — it knows the
	// pair (g2 → g3) but has no ack from g3 covering g2.
	if got := r.Seq(g4); len(got) != 0 {
		t.Fatalf("g4 delivered %v with a stale notified ack (pre-fix bug)", got)
	}

	// g3 delivers mF immediately (lca fast path, jumping over queued
	// mX), then mX once g2's TS... ack arrives; its chain is mF ≺ mX.
	r.Multicast(g3, mF)
	wantOrder(t, r.Seq(g3), 1, 4) // m0, mF delivered; mX still queued

	// Now let everything settle and check the global properties: with
	// pair-wise acks g4 learns (via g3's covering ack) that mF precedes
	// mX ≺ mT, so it delivers mF before mT and no cycle forms.
	r.Drain()
	if err := r.Recorder.CheckAll(true); err != nil {
		t.Fatal(err)
	}
	wantOrder(t, r.Seq(g3), 1, 4, 2) // m0, mF, mX
	wantOrder(t, r.Seq(g4), 4, 3)    // mF before mT — cycle avoided
}

// drainLink delivers every envelope currently in flight from one group to
// another, in FIFO order.
func drainLink(t *testing.T, r *prototest.Router, from, to amcast.GroupID) {
	t.Helper()
	for r.LinkDepth(from, to) > 0 {
		r.StepAny(from, to)
	}
}

func wantOrder(t *testing.T, got []amcast.MsgID, want ...uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("delivery sequence = %v, want %v", got, want)
	}
	for i, id := range want {
		if got[i] != amcast.MsgID(id) {
			t.Fatalf("delivery sequence = %v, want %v", got, want)
		}
	}
}
