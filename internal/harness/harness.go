// Package harness assembles full experiment deployments: one protocol
// engine per group on the simulated 12-region WAN, closed-loop gTPC-C
// clients, optional flush-based garbage collection, metrics, and latency
// recording. Every table and figure of the paper's evaluation is a
// harness configuration; see bench_test.go and cmd/flexbench.
package harness

import (
	"fmt"
	"math/rand"

	"flexcast/amcast"
	"flexcast/internal/client"
	"flexcast/internal/codec"
	"flexcast/internal/core"
	"flexcast/internal/gtpcc"
	"flexcast/internal/hierarchical"
	"flexcast/internal/metrics"
	"flexcast/internal/overlay"
	"flexcast/internal/sim"
	"flexcast/internal/skeen"
	"flexcast/internal/stats"
	"flexcast/internal/trace"
	"flexcast/internal/wan"
)

// Protocol selects which of the three evaluated protocols a deployment
// runs.
type Protocol int

const (
	// FlexCast is the paper's contribution: genuine, C-DAG overlay.
	FlexCast Protocol = iota + 1
	// Distributed is Skeen's protocol: genuine, fully connected.
	Distributed
	// Hierarchical is the ByzCast-style tree protocol: non-genuine.
	Hierarchical
)

// String names the protocol as in the paper's figures.
func (p Protocol) String() string {
	switch p {
	case FlexCast:
		return "FlexCast"
	case Distributed:
		return "Distributed"
	case Hierarchical:
		return "Hierarchical"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config is one experiment configuration.
type Config struct {
	// Protocol selects the multicast protocol.
	Protocol Protocol
	// Overlay is FlexCast's C-DAG (default wan.O1()).
	Overlay *overlay.CDAG
	// Tree is the hierarchical protocol's overlay (default wan.T1()).
	Tree *overlay.Tree
	// Locality is the gTPC-C locality rate (default 0.95).
	Locality float64
	// NumClients is the total number of clients, spread round-robin over
	// the 12 regions (default 240, the paper's latency configuration).
	NumClients int
	// GlobalOnly restricts the workload to multi-warehouse transactions
	// (the paper's latency experiments). The throughput experiment uses
	// the full mix.
	GlobalOnly bool
	// Duration is the virtual run length in microseconds (default 60 s,
	// the paper's run length).
	Duration sim.Time
	// TrimFrac is the warm-up/cool-down fraction discarded from both ends
	// of the run (default 0.1, as in the paper).
	TrimFrac float64
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// ProcCostBase is the per-envelope serial processing cost at group
	// nodes in microseconds; 0 models infinitely fast servers (latency
	// experiments). The throughput experiment sets it to model saturation.
	ProcCostBase sim.Time
	// ProcCostPerKB adds processing cost proportional to envelope size,
	// in microseconds per KiB; FlexCast's larger history-carrying messages
	// then cost more, as observed in the paper.
	ProcCostPerKB float64
	// FlushEvery enables the flush/garbage-collection client with the
	// given virtual period (paper §4.3); 0 disables it.
	FlushEvery sim.Time
	// Record enables trace recording; RunChecked then verifies the atomic
	// multicast properties after draining the run.
	Record bool
}

func (c *Config) fill() {
	if c.Overlay == nil {
		c.Overlay = wan.O1()
	}
	if c.Tree == nil {
		c.Tree = wan.T1()
	}
	if c.Locality == 0 {
		c.Locality = 0.95
	}
	if c.NumClients == 0 {
		c.NumClients = 240
	}
	if c.Duration == 0 {
		c.Duration = 60_000_000
	}
	if c.TrimFrac == 0 {
		c.TrimFrac = 0.1
	}
}

// Result carries everything the paper's tables and figures report.
type Result struct {
	Cfg Config
	// PerDest[k] records the latency (µs) of the (k+1)-th destination
	// reply for global messages issued inside the measurement window.
	PerDest []*stats.Recorder
	// Completed counts transactions completed in the measurement window.
	Completed int
	// WindowSecs is the measurement window length in seconds.
	WindowSecs float64
	// Metrics holds per-node traffic counters for the whole run.
	Metrics *metrics.Registry
	// Trace is non-nil when Config.Record was set.
	Trace *trace.Recorder
	// Events is the number of simulator events executed.
	Events uint64
	// FinalHistoryLen maps each group to its engine's live history size
	// at the end of the run (FlexCast only; zero for other protocols).
	// It quantifies the effect of flush-based garbage collection.
	FinalHistoryLen map[amcast.GroupID]int
}

// Throughput returns completed transactions per second in the
// measurement window.
func (r *Result) Throughput() float64 {
	if r.WindowSecs == 0 {
		return 0
	}
	return float64(r.Completed) / r.WindowSecs
}

// Overhead returns the per-group communication overhead (fractions).
func (r *Result) Overhead() map[amcast.GroupID]float64 {
	out := make(map[amcast.GroupID]float64, wan.NumRegions)
	for _, g := range wan.Groups() {
		c := r.Metrics.Node(amcast.GroupNode(g))
		out[g] = c.Overhead()
	}
	return out
}

// deployment wires one full experiment.
type deployment struct {
	cfg     Config
	sim     *sim.Simulator
	net     *sim.Network
	reg     *metrics.Registry
	rec     *trace.Recorder
	clients []*client.Client
	engines map[amcast.GroupID]amcast.Engine
	homes   map[amcast.NodeID]amcast.GroupID
	res     *Result
	flush   *client.Client
	checkEr error
}

// Run executes the experiment and returns its results.
func Run(cfg Config) (*Result, error) {
	d, err := build(cfg)
	if err != nil {
		return nil, err
	}
	d.sim.RunUntil(cfg.Duration)
	if cfg.Record {
		// Quiesce: stop the clients and drain in-flight traffic so the
		// agreement check is meaningful.
		for _, c := range d.clients {
			c.Stop()
		}
		if d.flush != nil {
			d.flush.Stop()
		}
		d.sim.Run()
	}
	if d.checkEr != nil {
		return nil, d.checkEr
	}
	d.res.Events = d.sim.Steps()
	d.res.FinalHistoryLen = make(map[amcast.GroupID]int, len(d.engines))
	for g, eng := range d.engines {
		if h, ok := eng.(interface{ HistoryLen() int }); ok {
			d.res.FinalHistoryLen[g] = h.HistoryLen()
		}
	}
	return d.res, nil
}

// RunChecked runs with trace recording and verifies the atomic multicast
// properties (Minimality only for the genuine protocols).
func RunChecked(cfg Config) (*Result, error) {
	cfg.Record = true
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	if err := res.Trace.CheckAll(cfg.Protocol != Hierarchical); err != nil {
		return res, fmt.Errorf("harness: %s run violates spec: %w", cfg.Protocol, err)
	}
	return res, nil
}

func build(cfg Config) (*deployment, error) {
	cfg.fill()
	d := &deployment{
		cfg:     cfg,
		sim:     sim.New(),
		reg:     metrics.NewRegistry(),
		engines: make(map[amcast.GroupID]amcast.Engine),
		homes:   make(map[amcast.NodeID]amcast.GroupID),
		res:     &Result{Cfg: cfg},
	}
	d.res.Metrics = d.reg
	for i := 0; i < 3; i++ {
		d.res.PerDest = append(d.res.PerDest, &stats.Recorder{})
	}
	if cfg.Record {
		d.rec = trace.NewRecorder()
		d.res.Trace = d.rec
	}

	opts := []sim.NetworkOption{sim.WithSendHook(func(from, to amcast.NodeID, env amcast.Envelope) {
		d.reg.OnSend(from, to, env)
		if d.rec != nil {
			if env.Kind == amcast.KindRequest {
				d.rec.OnMulticast(env.Msg)
			}
			d.rec.OnSend(from, to, env)
		}
	})}
	if cfg.ProcCostBase > 0 || cfg.ProcCostPerKB > 0 {
		base, perKB := cfg.ProcCostBase, cfg.ProcCostPerKB
		opts = append(opts, sim.WithProcCost(func(n amcast.NodeID, env amcast.Envelope) sim.Time {
			if n.IsClient() {
				return 0
			}
			return base + sim.Time(perKB*float64(codec.Size(env))/1024)
		}))
	}
	d.net = sim.NewNetwork(d.sim, d.latency, opts...)

	if err := d.buildGroups(); err != nil {
		return nil, err
	}
	if err := d.buildClients(); err != nil {
		return nil, err
	}
	return d, nil
}

// latency is the one-way delay model: inter-region for group-group pairs,
// the client's home region against the group's region for client traffic.
func (d *deployment) latency(from, to amcast.NodeID) sim.Time {
	return wan.OneWayMicros(d.region(from), d.region(to))
}

func (d *deployment) region(n amcast.NodeID) amcast.GroupID {
	if n.IsClient() {
		return d.homes[n]
	}
	return n.Group()
}

// engineNode adapts an amcast.Engine to the simulated network: outputs
// are transmitted, deliveries are recorded and acknowledged to clients.
type engineNode struct {
	d   *deployment
	id  amcast.NodeID
	eng amcast.Engine
}

func (n *engineNode) HandleEnvelope(env amcast.Envelope) {
	outs := n.eng.OnEnvelope(env)
	for _, o := range outs {
		n.d.net.Send(n.id, o.To, o.Env)
	}
	for _, del := range n.eng.TakeDeliveries() {
		n.d.reg.OnDeliver(del.Group)
		if n.d.rec != nil {
			if err := n.d.rec.OnDeliver(del); err != nil && n.d.checkEr == nil {
				n.d.checkEr = err
			}
		}
		if del.Msg.Sender.IsClient() {
			n.d.net.Send(n.id, del.Msg.Sender, amcast.Envelope{
				Kind:   amcast.KindReply,
				From:   n.id,
				Msg:    del.Msg.Header(),
				TS:     del.Seq,
				Result: del.Result,
			})
		}
	}
}

func (d *deployment) buildGroups() error {
	for _, g := range wan.Groups() {
		var eng amcast.Engine
		var err error
		switch d.cfg.Protocol {
		case FlexCast:
			eng, err = core.New(core.Config{Group: g, Overlay: d.cfg.Overlay})
		case Distributed:
			eng, err = skeen.New(skeen.Config{Group: g, Groups: wan.Groups()})
		case Hierarchical:
			eng, err = hierarchical.New(hierarchical.Config{Group: g, Tree: d.cfg.Tree})
		default:
			err = fmt.Errorf("harness: unknown protocol %d", d.cfg.Protocol)
		}
		if err != nil {
			return err
		}
		id := amcast.GroupNode(g)
		d.engines[g] = eng
		d.net.Register(id, &engineNode{d: d, id: id, eng: eng})
	}
	return nil
}

func (d *deployment) route(m amcast.Message) []amcast.NodeID {
	switch d.cfg.Protocol {
	case FlexCast:
		return []amcast.NodeID{amcast.GroupNode(d.cfg.Overlay.Lca(m.Dst))}
	case Hierarchical:
		return []amcast.NodeID{amcast.GroupNode(d.cfg.Tree.Lca(m.Dst))}
	default:
		nodes := make([]amcast.NodeID, len(m.Dst))
		for i, g := range m.Dst {
			nodes[i] = amcast.GroupNode(g)
		}
		return nodes
	}
}

func (d *deployment) buildClients() error {
	cfg := d.cfg
	lo := sim.Time(float64(cfg.Duration) * cfg.TrimFrac)
	hi := cfg.Duration - lo
	d.res.WindowSecs = float64(hi-lo) / 1e6

	groups := wan.Groups()
	for i := 0; i < cfg.NumClients; i++ {
		home := groups[i%len(groups)]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		gen, err := gtpcc.New(gtpcc.Config{
			Home:       home,
			Nearest:    wan.NearestOrder(home),
			Locality:   cfg.Locality,
			GlobalOnly: cfg.GlobalOnly,
		}, rng)
		if err != nil {
			return err
		}
		src := client.TxSourceFunc(func() client.Tx {
			tx := gen.Next()
			return client.Tx{Dst: tx.Dst, Payload: make([]byte, tx.PayloadSize)}
		})
		cl, err := client.New(client.Config{
			Index:      i,
			Home:       home,
			Route:      d.route,
			Source:     src,
			OnComplete: d.onComplete(lo, hi),
		}, d.sim, d.net)
		if err != nil {
			return err
		}
		d.homes[cl.ID()] = home
		d.clients = append(d.clients, cl)
		// Stagger starts a few hundred microseconds apart so the first
		// round does not arrive as a single synchronized burst.
		cl.Start(sim.Time(i%len(groups)) * 137)
	}

	if cfg.FlushEvery > 0 {
		// The distinguished flush process (paper §4.3) multicasts a flush
		// message to every group on a fixed period.
		idx := cfg.NumClients
		home := groups[0]
		fl, err := client.New(client.Config{
			Index: idx,
			Home:  home,
			Route: d.route,
			Source: client.TxSourceFunc(func() client.Tx {
				return client.Tx{Dst: wan.Groups(), Flags: amcast.FlagFlush}
			}),
			ThinkTime: cfg.FlushEvery,
		}, d.sim, d.net)
		if err != nil {
			return err
		}
		d.homes[fl.ID()] = home
		d.flush = fl
		fl.Start(cfg.FlushEvery)
	}

	return nil
}

func (d *deployment) onComplete(lo, hi sim.Time) func(c client.Completion) {
	return func(c client.Completion) {
		if c.Msg.Flags&amcast.FlagFlush != 0 {
			return
		}
		if c.Issued < lo || c.Issued > hi {
			return
		}
		d.res.Completed++
		if !c.Msg.IsGlobal() {
			return
		}
		for k, rep := range c.Replies {
			if k >= len(d.res.PerDest) {
				break
			}
			d.res.PerDest[k].Add(float64(rep.At - c.Issued))
		}
	}
}
