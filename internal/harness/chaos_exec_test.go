package harness_test

import (
	"strings"
	"testing"

	"flexcast/internal/chaos"
	"flexcast/internal/harness"
)

// TestChaosExecuteStoreAudits runs store-backed chaos schedules — full
// fault model including crash/recovery, so store state is rebuilt from
// snapshot + WAL — and requires every execution-level audit (read-set
// agreement, conflict serializability, cross-shard invariants, mirror
// digests) to pass alongside the multicast safety properties.
func TestChaosExecuteStoreAudits(t *testing.T) {
	for _, p := range []harness.Protocol{harness.FlexCast, harness.Distributed, harness.Hierarchical} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			rep, err := harness.RunChaos(harness.ChaosConfig{
				Protocol: p,
				Execute:  true,
				Options:  chaos.Options{Seed: 11, Schedules: 6},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				var b strings.Builder
				rep.Print(&b)
				t.Fatalf("execute-mode schedules violated invariants:\n%s", b.String())
			}
			if rep.Deliveries == 0 {
				t.Fatal("nothing delivered")
			}
			if rep.FastReads == 0 {
				t.Fatal("execute-mode schedules issued no fast-path reads")
			}
		})
	}
}

// TestChaosFastReadsUnderFaults drives the local-read fast path hard —
// every reply triggers a read — under the full fault model including
// crash/recovery, on both loop modes. The delivered-prefix barrier must
// hold at every read (a TryRead failure is a violation), and the
// ExecRecorder audits (fast-read containment, read-only rows, conflict
// serializability with reads merged at their cuts) must stay green.
func TestChaosFastReadsUnderFaults(t *testing.T) {
	for _, closedLoop := range []bool{false, true} {
		name := "open-loop"
		if closedLoop {
			name = "closed-loop"
		}
		t.Run(name, func(t *testing.T) {
			rep, err := harness.RunChaos(harness.ChaosConfig{
				Protocol: harness.FlexCast,
				Execute:  true,
				Options: chaos.Options{
					Seed: 77, Schedules: 4,
					ClosedLoop:   closedLoop,
					FastReadProb: 1,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				var b strings.Builder
				rep.Print(&b)
				t.Fatalf("fast-read schedules violated invariants:\n%s", b.String())
			}
			if rep.FastReads == 0 {
				t.Fatal("no fast reads issued")
			}
			if rep.Faults.Crashes == 0 {
				t.Fatal("schedules explored no crash/recovery alongside the reads")
			}
		})
	}
}

// TestChaosLeaseRefusalsAcrossCrashes drives follower reads under an
// aggressive crash/partition schedule: every reply triggers a read,
// half of them routed to the group's lease-holding follower replica.
// Schedules whose faults delay a reply past the lease term meet a
// lapsed lease — the group's node (the grantor) crashed or its log
// stalled mid-read — and the follower must refuse rather than serve
// stale. The test requires both outcomes to be observed (reads served
// by followers AND lease refusals), with every audit green: refusal is
// correct behavior, a stale serve would fail CheckFastReads (see
// trace.TestCheckFastReadsViolations for the detector proof).
func TestChaosLeaseRefusalsAcrossCrashes(t *testing.T) {
	rep, err := harness.RunChaos(harness.ChaosConfig{
		Protocol: harness.FlexCast,
		Execute:  true,
		Options: chaos.Options{
			Seed: 42, Schedules: 8,
			ClosedLoop:   true,
			FastReadProb: 1,
			Crashes:      3,
			Partitions:   4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		var b strings.Builder
		rep.Print(&b)
		t.Fatalf("lease schedules violated invariants:\n%s", b.String())
	}
	if rep.Faults.Crashes == 0 {
		t.Fatal("schedules explored no crashes alongside the leased reads")
	}
	if rep.FastReads == 0 {
		t.Fatal("no reads issued")
	}
	if rep.LeaseRefusals == 0 {
		t.Fatal("no lease refusals observed — the schedules never exercised the expired-lease gate")
	}
	if rep.LeaseRefusals >= rep.FastReads {
		t.Fatalf("every read refused (%d of %d) — followers never served", rep.LeaseRefusals, rep.FastReads)
	}
}

// TestChaosExecuteClosedLoopWANProfile combines everything: the WAN
// latency matrix, gTPC-C destination locality, closed-loop saturation,
// executable payloads and the full fault model.
func TestChaosExecuteClosedLoopWANProfile(t *testing.T) {
	opts := chaos.Options{Seed: 3, Schedules: 4, ClosedLoop: true}
	harness.ApplyWANProfile(&opts, 0.95, true)
	rep, err := harness.RunChaos(harness.ChaosConfig{
		Protocol: harness.FlexCast,
		Execute:  true,
		Options:  opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		var b strings.Builder
		rep.Print(&b)
		t.Fatalf("WAN-profile execute schedules violated invariants:\n%s", b.String())
	}
}

// TestChaosExecuteReplayMatchesExploration ensures the reproduction
// path uses the same executable workload as exploration (a replayed
// seed must rebuild the identical schedule).
func TestChaosExecuteReplayMatchesExploration(t *testing.T) {
	cfg := harness.ChaosConfig{
		Protocol: harness.FlexCast,
		Execute:  true,
		Options:  chaos.Options{Seed: 21, Schedules: 2},
	}
	rep, err := harness.RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatal("exploration failed")
	}
	res, err := harness.ReplayChaos(cfg, chaos.ScheduleSeed(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("replay violated invariants: %v", res.Err)
	}
	if res.Multicasts == 0 || res.Deliveries == 0 {
		t.Fatalf("replay ran empty: %+v", res)
	}
}
