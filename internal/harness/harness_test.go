package harness

import (
	"math"
	"testing"
)

// small returns a configuration small enough for unit tests but large
// enough to exercise cross-message dependencies.
func small(p Protocol) Config {
	return Config{
		Protocol:   p,
		Locality:   0.90,
		NumClients: 36,
		GlobalOnly: true,
		Duration:   3_000_000, // 3 virtual seconds
		Seed:       1,
	}
}

func TestRunCheckedAllProtocols(t *testing.T) {
	for _, p := range []Protocol{FlexCast, Distributed, Hierarchical} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			res, err := RunChecked(small(p))
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed == 0 {
				t.Fatal("no transactions completed in the measurement window")
			}
			if res.PerDest[0].Len() == 0 {
				t.Fatal("no first-destination latencies recorded")
			}
			if got := res.PerDest[0].Percentile(50); math.IsNaN(got) || got <= 0 {
				t.Fatalf("implausible median first-destination latency: %v", got)
			}
			t.Logf("%s: completed=%d p90(1st)=%.1fms events=%d",
				p, res.Completed, res.PerDest[0].Percentile(90)/1000, res.Events)
		})
	}
}

func TestFlexCastWithFlushGC(t *testing.T) {
	cfg := small(FlexCast)
	cfg.FlushEvery = 300_000 // flush every 0.3 virtual seconds
	res, err := RunChecked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no transactions completed")
	}
}

func TestGenuineProtocolsHaveZeroOverhead(t *testing.T) {
	for _, p := range []Protocol{FlexCast, Distributed} {
		// Quiesced runs: messages still in flight at the horizon would
		// otherwise count as received-but-undelivered.
		res, err := RunChecked(small(p))
		if err != nil {
			t.Fatal(err)
		}
		for g, ov := range res.Overhead() {
			if ov != 0 {
				t.Errorf("%s: group %d has overhead %.3f, want 0", p, g, ov)
			}
		}
	}
}

func TestHierarchicalHasOverhead(t *testing.T) {
	res, err := Run(small(Hierarchical))
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, ov := range res.Overhead() {
		total += ov
	}
	if total == 0 {
		t.Fatal("hierarchical protocol shows zero overhead everywhere; relaying not happening")
	}
}
