package harness

import (
	"reflect"
	"sort"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/wan"
)

// TestAllProtocolsDeliverTheSameMessageSets runs the identical workload
// (same seed, same clients) through all three protocols and checks that
// every group delivers exactly the same set of messages under each —
// the protocols may order differently, but Validity/Agreement make the
// delivered sets a pure function of the workload.
func TestAllProtocolsDeliverTheSameMessageSets(t *testing.T) {
	sets := make(map[Protocol]map[amcast.GroupID][]amcast.MsgID)
	for _, p := range []Protocol{FlexCast, Distributed, Hierarchical} {
		res, err := RunChecked(Config{
			Protocol:   p,
			Locality:   0.90,
			NumClients: 24,
			GlobalOnly: true,
			Duration:   2_000_000,
			Seed:       99,
		})
		if err != nil {
			t.Fatal(err)
		}
		perGroup := make(map[amcast.GroupID][]amcast.MsgID)
		for _, g := range wan.Groups() {
			seq := res.Trace.Sequence(g)
			sort.Slice(seq, func(i, j int) bool { return seq[i] < seq[j] })
			perGroup[g] = seq
		}
		sets[p] = perGroup
	}
	// Closed-loop clients complete transactions at protocol-dependent
	// speeds, so the number of issued messages per client differs across
	// protocols. The generator stream per client is seed-deterministic,
	// so the comparable population is the per-client common prefix:
	// messages with seq <= min over protocols of that client's highest
	// delivered seq. Restricted to that population, the delivered sets
	// must be identical per group.
	maxSeq := make(map[Protocol]map[int]uint64)
	for p, perGroup := range sets {
		m := make(map[int]uint64)
		for _, seq := range perGroup {
			for _, id := range seq {
				if id.Seq() > m[id.Client()] {
					m[id.Client()] = id.Seq()
				}
			}
		}
		maxSeq[p] = m
	}
	common := make(map[int]uint64)
	for c := range maxSeq[FlexCast] {
		min := maxSeq[FlexCast][c]
		for _, p := range []Protocol{Distributed, Hierarchical} {
			if s := maxSeq[p][c]; s < min {
				min = s
			}
		}
		common[c] = min
	}
	restrict := func(seq []amcast.MsgID) map[amcast.MsgID]bool {
		out := make(map[amcast.MsgID]bool)
		for _, id := range seq {
			if id.Seq() <= common[id.Client()] {
				out[id] = true
			}
		}
		return out
	}
	for _, g := range wan.Groups() {
		ref := restrict(sets[FlexCast][g])
		for _, p := range []Protocol{Distributed, Hierarchical} {
			got := restrict(sets[p][g])
			if len(got) != len(ref) {
				t.Fatalf("group %d: %s delivered %d common-prefix messages, FlexCast %d",
					g, p, len(got), len(ref))
			}
			for id := range ref {
				if !got[id] {
					t.Fatalf("group %d: message %s delivered under FlexCast but not %s", g, id, p)
				}
			}
		}
	}
}

// TestFlushKeepsHistoriesBounded runs FlexCast long enough for several
// flush cycles and verifies the flush mechanism's purpose (§4.3): live
// history size stays bounded instead of growing with the run.
func TestFlushKeepsHistoriesBounded(t *testing.T) {
	run := func(flush int64, dur int64) int {
		res, err := Run(Config{
			Protocol:   FlexCast,
			Locality:   0.95,
			NumClients: 60,
			GlobalOnly: true,
			Duration:   dur,
			Seed:       5,
			FlushEvery: flush,
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, n := range res.FinalHistoryLen {
			total += n
		}
		return total
	}
	// Without GC, history size scales with the run length; with GC it is
	// bounded by the flush period regardless of run length.
	gcShort := run(250_000, 3_000_000)
	gcLong := run(250_000, 9_000_000)
	noGCShort := run(0, 3_000_000)
	noGCLong := run(0, 9_000_000)
	if noGCLong < noGCShort*2 {
		t.Errorf("without GC, histories did not grow with the run: %d -> %d nodes", noGCShort, noGCLong)
	}
	if gcLong > gcShort*2 {
		t.Errorf("with GC, histories grew with the run: %d -> %d nodes", gcShort, gcLong)
	}
	if gcLong >= noGCLong {
		t.Errorf("GC did not shrink histories: %d (gc) vs %d (no gc)", gcLong, noGCLong)
	}
}

// TestThroughputSaturatesWithProcessingCost checks the Figure-6
// mechanism in isolation: with a processing-cost model, adding clients
// beyond saturation must not increase throughput proportionally.
func TestThroughputSaturatesWithProcessingCost(t *testing.T) {
	run := func(clients int) float64 {
		res, err := Run(Config{
			Protocol:      FlexCast,
			Locality:      0.99,
			NumClients:    clients,
			GlobalOnly:    false,
			Duration:      2_000_000,
			Seed:          3,
			ProcCostBase:  400,
			ProcCostPerKB: 900,
			FlushEvery:    250_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput()
	}
	low := run(24)
	high := run(480)
	if high < low {
		t.Fatalf("more clients reduced throughput below the 24-client level: %.0f -> %.0f", low, high)
	}
	// 20x the clients must NOT give anywhere near 20x the throughput once
	// saturated.
	if high > low*10 {
		t.Fatalf("no saturation: %.0f -> %.0f ops/s for 20x clients", low, high)
	}
}

// TestLatencyDistributionsAreDeterministic re-runs one configuration and
// compares full percentile rows.
func TestLatencyDistributionsAreDeterministic(t *testing.T) {
	run := func() []float64 {
		res, err := Run(small(FlexCast))
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for k := 0; k < 3; k++ {
			for _, p := range []float64{50, 90, 99} {
				out = append(out, res.PerDest[k].Percentile(p))
			}
		}
		return out
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different distributions:\n%v\n%v", a, b)
	}
}

// TestUnknownProtocolRejected covers the configuration error path.
func TestUnknownProtocolRejected(t *testing.T) {
	if _, err := Run(Config{Protocol: Protocol(99), NumClients: 1, Duration: 1000}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

// TestResultAccessors covers Throughput and Overhead edge cases.
func TestResultAccessors(t *testing.T) {
	r := &Result{}
	if r.Throughput() != 0 {
		t.Fatal("zero-window throughput not zero")
	}
}
