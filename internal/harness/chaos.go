package harness

import (
	"fmt"

	"flexcast/amcast"
	"flexcast/internal/chaos"
	"flexcast/internal/core"
	"flexcast/internal/hierarchical"
	"flexcast/internal/overlay"
	"flexcast/internal/skeen"
	"flexcast/internal/wan"
)

// ChaosConfig configures the chaos deployment mode: instead of the
// paper's measurement runs, the protocol is subjected to randomized
// fault-injection schedules (internal/chaos) on the 12-group deployment
// and every schedule is validated against the safety properties.
type ChaosConfig struct {
	// Protocol selects the multicast protocol.
	Protocol Protocol
	// Overlay is FlexCast's C-DAG (default wan.O1()).
	Overlay *overlay.CDAG
	// Tree is the hierarchical protocol's overlay (default wan.T1()).
	Tree *overlay.Tree
	// Options parameterize the exploration (seeds, schedules, fault
	// intensities); see chaos.Options.
	Options chaos.Options
}

func (c *ChaosConfig) fill() {
	if c.Overlay == nil {
		c.Overlay = wan.O1()
	}
	if c.Tree == nil {
		c.Tree = wan.T1()
	}
}

// chaosDeployment adapts a protocol to the chaos explorer.
func chaosDeployment(cfg ChaosConfig) (chaos.Deployment, error) {
	cfg.fill()
	groups := wan.Groups()
	d := chaos.Deployment{
		Name:       cfg.Protocol.String(),
		Groups:     groups,
		Minimality: cfg.Protocol != Hierarchical,
	}
	switch cfg.Protocol {
	case FlexCast:
		ov := cfg.Overlay
		d.Factory = func(g amcast.GroupID) (amcast.SnapshotEngine, error) {
			return core.New(core.Config{Group: g, Overlay: ov})
		}
		d.Route = func(m amcast.Message) []amcast.NodeID {
			return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
		}
	case Distributed:
		d.Factory = func(g amcast.GroupID) (amcast.SnapshotEngine, error) {
			return skeen.New(skeen.Config{Group: g, Groups: groups})
		}
		d.Route = func(m amcast.Message) []amcast.NodeID {
			nodes := make([]amcast.NodeID, len(m.Dst))
			for i, g := range m.Dst {
				nodes[i] = amcast.GroupNode(g)
			}
			return nodes
		}
	case Hierarchical:
		tree := cfg.Tree
		d.Factory = func(g amcast.GroupID) (amcast.SnapshotEngine, error) {
			return hierarchical.New(hierarchical.Config{Group: g, Tree: tree})
		}
		d.Route = func(m amcast.Message) []amcast.NodeID {
			return []amcast.NodeID{amcast.GroupNode(tree.Lca(m.Dst))}
		}
	default:
		return d, fmt.Errorf("harness: unknown protocol %d", cfg.Protocol)
	}
	return d, nil
}

// RunChaos explores the protocol under randomized fault schedules and
// returns the aggregated safety report.
func RunChaos(cfg ChaosConfig) (*chaos.Report, error) {
	d, err := chaosDeployment(cfg)
	if err != nil {
		return nil, err
	}
	return chaos.Explore(d, cfg.Options)
}

// ReplayChaos reruns exactly one seeded schedule — the reproduction path
// for a seed printed in a failure report.
func ReplayChaos(cfg ChaosConfig, seed int64) (*chaos.ScheduleResult, error) {
	d, err := chaosDeployment(cfg)
	if err != nil {
		return nil, err
	}
	return chaos.RunSchedule(d, cfg.Options, seed)
}
