package harness

import (
	"errors"
	"fmt"
	"math/rand"

	"flexcast/amcast"
	"flexcast/internal/chaos"
	"flexcast/internal/core"
	"flexcast/internal/gtpcc"
	"flexcast/internal/hierarchical"
	"flexcast/internal/overlay"
	"flexcast/internal/sim"
	"flexcast/internal/skeen"
	"flexcast/internal/store"
	"flexcast/internal/trace"
	"flexcast/internal/wan"
)

// ChaosConfig configures the chaos deployment mode: instead of the
// paper's measurement runs, the protocol is subjected to randomized
// fault-injection schedules (internal/chaos) on the 12-group deployment
// and every schedule is validated against the safety properties.
type ChaosConfig struct {
	// Protocol selects the multicast protocol.
	Protocol Protocol
	// Overlay is FlexCast's C-DAG (default wan.O1()).
	Overlay *overlay.CDAG
	// Tree is the hierarchical protocol's overlay (default wan.T1()).
	Tree *overlay.Tree
	// Options parameterize the exploration (seeds, schedules, fault
	// intensities); see chaos.Options.
	Options chaos.Options
	// Execute runs the partitioned gTPC-C store at every group: the
	// workload switches to executable transaction payloads (gTPC-C
	// destination locality included), every schedule executes them
	// through store.Executor — with crash recovery rebuilding store
	// state from snapshot + WAL — and the post-run audits add the
	// cross-group serializability checker, the cross-shard invariants
	// and mirror-replica digest equality.
	Execute bool
}

func (c *ChaosConfig) fill() {
	if c.Overlay == nil {
		c.Overlay = wan.O1()
	}
	if c.Tree == nil {
		c.Tree = wan.T1()
	}
}

// chaosDeployment adapts a protocol to the chaos explorer.
func chaosDeployment(cfg ChaosConfig) (chaos.Deployment, error) {
	cfg.fill()
	groups := wan.Groups()
	d := chaos.Deployment{
		Name:       cfg.Protocol.String(),
		Groups:     groups,
		Minimality: cfg.Protocol != Hierarchical,
	}
	switch cfg.Protocol {
	case FlexCast:
		ov := cfg.Overlay
		d.Factory = func(g amcast.GroupID) (amcast.SnapshotEngine, error) {
			return core.New(core.Config{Group: g, Overlay: ov})
		}
		d.Route = func(m amcast.Message) []amcast.NodeID {
			return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
		}
		d.Decode = core.UnmarshalSnapshot
	case Distributed:
		d.Factory = func(g amcast.GroupID) (amcast.SnapshotEngine, error) {
			return skeen.New(skeen.Config{Group: g, Groups: groups})
		}
		d.Route = func(m amcast.Message) []amcast.NodeID {
			nodes := make([]amcast.NodeID, len(m.Dst))
			for i, g := range m.Dst {
				nodes[i] = amcast.GroupNode(g)
			}
			return nodes
		}
		d.Decode = skeen.UnmarshalSnapshot
	case Hierarchical:
		tree := cfg.Tree
		d.Factory = func(g amcast.GroupID) (amcast.SnapshotEngine, error) {
			return hierarchical.New(hierarchical.Config{Group: g, Tree: tree})
		}
		d.Route = func(m amcast.Message) []amcast.NodeID {
			return []amcast.NodeID{amcast.GroupNode(tree.Lca(m.Dst))}
		}
		d.Decode = hierarchical.UnmarshalSnapshot
	default:
		return d, fmt.Errorf("harness: unknown protocol %d", cfg.Protocol)
	}
	if cfg.Execute {
		base := d.Factory
		d.Factory = func(g amcast.GroupID) (amcast.SnapshotEngine, error) {
			eng, err := base(g)
			if err != nil {
				return nil, err
			}
			return store.NewExecutor(eng, store.Config{Warehouse: g}, true)
		}
		// Executor snapshots embed the protocol snapshot; compose the
		// decoders so durable mode can recover executor-wrapped engines.
		proto := d.Decode
		d.Decode = func(data []byte) (amcast.Snapshot, error) {
			return store.UnmarshalSnapshot(data, proto)
		}
		d.Instrument = instrumentExecution
	}
	return d, nil
}

// chaosLeaseTerm and chaosLeaseMargin parameterize the follower read
// leases of execute-mode chaos schedules (sim µs). Grants ride the
// shipped log, so a lease is at most as old as the group's last apply;
// the term is chosen short relative to the injected fault delays —
// link latencies reach 20ms, retransmission backoffs 30ms, partitions
// average 150ms and crash downtimes 200ms — so schedules actually
// drive followers into the expired-lease state and prove the refusal
// path: a read triggered by a reply that faults delayed past
// term−margin meets a lapsed lease and must be refused, not served
// stale.
const (
	chaosLeaseTerm   = 40_000
	chaosLeaseMargin = 10_000
)

// instrumentExecution attaches a per-schedule execution recorder to
// every store executor, plus one lease-holding follower read replica
// per group (lockstep-fed from the executor's applied-delivery log;
// grants ride the feed, so a group that stops shipping its log — crash,
// partition — lets its follower's lease lapse within one term). The
// returned instrumentation routes each fast read either to the serving
// node (TryRead at the client's barrier — in the simulator a reply
// always implies the prefix is applied, so a failed barrier is a
// violation, not a wait) or to the group's follower through the lease
// gate, and runs the post-schedule audit.
func instrumentExecution(engines map[amcast.GroupID]amcast.SnapshotEngine, now func() sim.Time) *chaos.Instrumentation {
	rec := trace.NewExecRecorder()
	execs := make(map[amcast.GroupID]*store.Executor, len(engines))
	reps := make(map[amcast.GroupID]*store.Replica, len(engines))
	clock := func() uint64 { return uint64(now()) }
	for g, eng := range engines {
		ex, ok := eng.(*store.Executor)
		if !ok {
			g := g
			return &chaos.Instrumentation{PostCheck: func() error {
				return fmt.Errorf("harness: execute-mode engine of group %d is %T, not a store executor", g, engines[g])
			}}
		}
		ex.SetExecObserver(rec.OnApply)
		ex.SetReadObserver(rec.OnFastRead)
		rep, err := ex.AttachFollower(store.ReplicaConfig{
			Idx:           1,
			Clock:         clock,
			AutoGrantTerm: chaosLeaseTerm,
			Margin:        chaosLeaseMargin,
		})
		if err != nil {
			g := g
			return &chaos.Instrumentation{PostCheck: func() error {
				return fmt.Errorf("harness: attach follower at group %d: %w", g, err)
			}}
		}
		rep.SetReadObserver(rec.OnFastRead)
		execs[g] = ex
		reps[g] = rep
	}
	return &chaos.Instrumentation{
		FastRead: func(rng *rand.Rand, g amcast.GroupID, barrier uint64, simNow sim.Time) (bool, error) {
			ex, ok := execs[g]
			if !ok {
				return false, fmt.Errorf("harness: fast read at unknown group %d", g)
			}
			var tx gtpcc.Tx
			if rng.Intn(2) == 0 {
				tx = gtpcc.Tx{Type: gtpcc.OrderStatus, Home: g, Customer: int32(rng.Intn(gtpcc.NumCustomers))}
			} else {
				tx = gtpcc.Tx{Type: gtpcc.StockLevel, Home: g, Threshold: int32(10 + rng.Intn(11))}
			}
			// Half the reads route to the follower replica through the
			// lease gate; an expired lease is a refusal (counted by the
			// explorer), any other failure a violation. The follower is
			// lockstep-fed, so its watermark equals the serving node's at
			// every reply — an unmet barrier is as much a violation there
			// as at the serving node.
			if rng.Intn(2) == 0 {
				_, err := reps[g].TryReadAt(tx, barrier, uint64(simNow))
				if errors.Is(err, store.ErrLeaseExpired) {
					return false, nil
				}
				return err == nil, err
			}
			_, err := ex.TryRead(tx, barrier)
			return err == nil, err
		},
		PostCheck: func() error {
			if rec.Records() == 0 {
				return fmt.Errorf("harness: execute-mode schedule executed nothing")
			}
			if err := rec.CheckAll(); err != nil {
				return err
			}
			shards := make([]*store.Shard, 0, len(execs))
			for _, g := range wan.Groups() {
				ex, ok := execs[g]
				if !ok {
					continue
				}
				if err := ex.CheckMirror(); err != nil {
					return err
				}
				// The lockstep follower applied the identical delivery
				// log: its state must be byte-identical to the serving
				// node's — the replicated-read analogue of the mirror
				// audit.
				if a, b := ex.Digest(), reps[g].Shard().Digest(); a != b {
					return fmt.Errorf("harness: group %d follower digest diverged (%x != %x)", g, a[:8], b[:8])
				}
				shards = append(shards, ex.Shard())
			}
			return store.CheckInvariants(shards)
		},
	}
}

// ApplyWANProfile installs the chaos profile that mirrors the paper's
// measurement harness instead of chaos's uniform random environment:
// link latencies come from the WAN matrix (wan.OneWayMicros; clients
// are co-located with their home region) and the workload becomes
// gTPC-C — destination sets drawn with geographic locality, payloads
// executable when execute is set. This is the ROADMAP's "next angle"
// for the flush-GC ordering bug: the dense schedules the harness
// produces depend on exactly this latency/destination structure.
func ApplyWANProfile(o *chaos.Options, locality float64, execute bool) {
	groups := wan.Groups()
	clientHome := func(n amcast.NodeID) amcast.GroupID {
		return groups[n.ClientIndex()%len(groups)]
	}
	o.Latency = func(from, to amcast.NodeID) sim.Time {
		a, b := from, to
		ha := amcast.GroupID(0)
		if a.IsClient() {
			ha = clientHome(a)
		} else {
			ha = a.Group()
		}
		hb := amcast.GroupID(0)
		if b.IsClient() {
			hb = clientHome(b)
		} else {
			hb = b.Group()
		}
		if ha == hb {
			return sim.Time(wan.LocalRTTMicros / 2)
		}
		return sim.Time(wan.OneWayMicros(ha, hb))
	}
	o.NextTx = gtpccNextTx(locality, execute)
}

// gtpccNextTx builds the chaos workload hook that draws gTPC-C
// transactions (destination locality over the WAN's nearest-warehouse
// order) instead of uniform random destination sets.
func gtpccNextTx(locality float64, execute bool) func(scheduleSeed int64, client int) func(i int) ([]amcast.GroupID, []byte) {
	groups := wan.Groups()
	return func(scheduleSeed int64, client int) func(i int) ([]amcast.GroupID, []byte) {
		home := groups[client%len(groups)]
		gen := gtpcc.MustNew(gtpcc.Config{
			Home:     home,
			Nearest:  wan.NearestOrder(home),
			Locality: locality,
		}, rand.New(rand.NewSource(chaos.ScheduleSeed(scheduleSeed, 1000+client))))
		return func(i int) ([]amcast.GroupID, []byte) {
			tx := gen.Next()
			if execute {
				return tx.Dst, gtpcc.EncodeTx(tx)
			}
			return tx.Dst, make([]byte, tx.PayloadSize)
		}
	}
}

// fillExecuteWorkload gives execute-mode runs an executable gTPC-C
// workload unless the caller installed one (reproduction must use the
// same hook as exploration).
func (c *ChaosConfig) fillExecuteWorkload() {
	if c.Execute && c.Options.NextTx == nil {
		c.Options.NextTx = gtpccNextTx(0.95, true)
	}
}

// RunChaos explores the protocol under randomized fault schedules and
// returns the aggregated safety report.
func RunChaos(cfg ChaosConfig) (*chaos.Report, error) {
	cfg.fillExecuteWorkload()
	d, err := chaosDeployment(cfg)
	if err != nil {
		return nil, err
	}
	return chaos.Explore(d, cfg.Options)
}

// ReplayChaos reruns exactly one seeded schedule — the reproduction path
// for a seed printed in a failure report.
func ReplayChaos(cfg ChaosConfig, seed int64) (*chaos.ScheduleResult, error) {
	cfg.fillExecuteWorkload()
	d, err := chaosDeployment(cfg)
	if err != nil {
		return nil, err
	}
	return chaos.RunSchedule(d, cfg.Options, seed)
}
