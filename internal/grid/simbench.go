package grid

import (
	"fmt"
	"time"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/gtpcc"
	"flexcast/internal/overlay"
	"flexcast/internal/sim"
	"flexcast/internal/smr"
	"flexcast/internal/store"
)

// runSimbench measures smr.Group.FollowerRead itself — the follower
// read path's fixed costs, isolated from transport and workload: the
// lease-gate overhead (validity check around a no-op), a full serve
// (gate + TryRead at a satisfied barrier), the refusal path (before
// any grant is decided), and the bare executor TryRead as the no-gate
// baseline. The deployment is the sim-backed smr group set from the
// lease tests; sim time is frozen while the wall-clock loops run, so
// leases stay valid for exactly as long as the measurement needs.
//
// Metrics (medians over repeats like every cell):
//
//	followerread_gate_ns_op     lease gate around a no-op read
//	followerread_serve_ns_op    gate + store TryRead at the barrier
//	followerread_refused_ns_op  ErrLeaseExpired path (no grant yet)
//	leader_read_ns_op           bare executor TryRead (no gate)
//	followerread_gate_overhead_ns  serve − leader-read delta
func runSimbench(cell Cell, repeat int) (map[string]float64, error) {
	p, err := decodeParams(cell.Name, cell.Params)
	if err != nil {
		return nil, err
	}
	groups := p.Groups
	if groups == 0 {
		groups = 3
	}
	replicas := p.Replicas
	if replicas == 0 {
		replicas = 3
	}
	if replicas < 2 {
		return nil, fmt.Errorf("grid: cell %s: simbench needs replicas >= 2", cell.Name)
	}
	leaseTerm := sim.Time(900_000) // sim µs, the lease-test term
	if p.LeaseTermMs > 0 {
		leaseTerm = sim.Time(p.LeaseTermMs * 1000)
	}
	ops := p.SimOps
	if ops == 0 {
		ops = 20_000
	}

	ids := make([]amcast.GroupID, groups)
	for i := range ids {
		ids[i] = amcast.GroupID(i + 1)
	}
	s := sim.New()
	ov, err := overlay.NewCDAG(ids)
	if err != nil {
		return nil, err
	}
	net := sim.NewNetwork(s, func(from, to amcast.NodeID) sim.Time { return 2000 })
	grps := make(map[amcast.GroupID]*smr.Group, groups)
	for _, g := range ids {
		g := g
		grp, err := smr.New(smr.Config{
			Group:     g,
			Replicas:  replicas,
			LeaseTerm: leaseTerm,
			NewEngine: func() (amcast.Engine, error) {
				eng, err := core.New(core.Config{Group: g, Overlay: ov})
				if err != nil {
					return nil, err
				}
				return store.NewExecutor(eng, store.Config{Warehouse: g}, false)
			},
		}, s, net)
		if err != nil {
			return nil, err
		}
		grps[g] = grp
		grp.Start()
	}
	net.Register(amcast.ClientNode(0), sim.HandlerFunc(func(amcast.Envelope) {}))

	target := grps[ids[0]]
	read := gtpcc.Tx{Type: gtpcc.OrderStatus, Home: ids[0], Customer: 1}
	noop := func(amcast.Engine) error { return nil }
	serve := func(eng amcast.Engine) error {
		_, rerr := eng.(*store.Executor).TryRead(read, 0)
		return rerr
	}

	// Refusal path first: no grant has been decided yet, so every
	// FollowerRead takes the ErrLeaseExpired exit.
	refusedNs, err := measureOps(ops/4, func() error {
		if err := target.FollowerRead(1, noop); err == nil {
			return fmt.Errorf("grid: cell %s: ungranted follower served", cell.Name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Run the sim past a few grant periods; every measured replica must
	// hold a lease before the serving loops run against frozen time.
	s.RunUntil(2 * (leaseTerm + 200_000))
	for idx := 1; idx < replicas; idx++ {
		if !target.HoldsLease(idx) {
			return nil, fmt.Errorf("grid: cell %s: replica %d holds no lease after grant periods", cell.Name, idx)
		}
	}

	gateNs, err := measureOps(ops, func() error { return target.FollowerRead(1, noop) })
	if err != nil {
		return nil, fmt.Errorf("grid: cell %s: gate loop: %w", cell.Name, err)
	}
	serveNs, err := measureOps(ops, func() error { return target.FollowerRead(1, serve) })
	if err != nil {
		return nil, fmt.Errorf("grid: cell %s: serve loop: %w", cell.Name, err)
	}

	// The no-gate baseline: the same TryRead against a standalone
	// executor (identical store population, no smr wrapping).
	eng, err := core.New(core.Config{Group: ids[0], Overlay: ov})
	if err != nil {
		return nil, err
	}
	ex, err := store.NewExecutor(eng, store.Config{Warehouse: ids[0]}, false)
	if err != nil {
		return nil, err
	}
	leaderNs, err := measureOps(ops, func() error {
		_, rerr := ex.TryRead(read, 0)
		return rerr
	})
	if err != nil {
		return nil, fmt.Errorf("grid: cell %s: baseline loop: %w", cell.Name, err)
	}

	for _, grp := range grps {
		grp.Stop()
	}
	s.Run()

	return map[string]float64{
		"followerread_gate_ns_op":       gateNs,
		"followerread_serve_ns_op":      serveNs,
		"followerread_refused_ns_op":    refusedNs,
		"leader_read_ns_op":             leaderNs,
		"followerread_gate_overhead_ns": serveNs - leaderNs,
	}, nil
}

// measureOps times n repetitions of op and returns wall-clock ns/op.
func measureOps(n int, op func() error) (float64, error) {
	if n < 1 {
		n = 1
	}
	// Warm caches and branch predictors outside the timed window.
	for i := 0; i < n/10+1; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), nil
}
