// Package grid is the declarative experiment grid runner behind
// cmd/flexgrid: it expands an experiments.json (axes × repeats) into
// cells, executes each cell in-process against internal/loadgen (or
// the sim microbenchmarks and soak checks for the non-load kinds),
// and aggregates the repeats into a summary with per-cell medians,
// IQR noise bands and fig5/fig6-style curve tables. On top of the
// summary sit the trajectory layer (BENCH_history.jsonl, one line per
// grid run) and the regression gate (Compare), which CI runs against
// a committed baseline.
package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// SpecSchema tags the experiments.json format.
const SpecSchema = "flexgrid/experiments/v1"

// Spec is the experiments.json schema: a common parameter base, a
// default repeat count, and one Experiment per named grid, each
// expanding its axes into cells.
type Spec struct {
	Schema string `json:"schema"`
	// Repeats is the default number of repeats per cell (default 3).
	Repeats int `json:"repeats,omitempty"`
	// Common is the parameter base merged under every experiment's
	// config (experiment config wins, axis values win over both).
	Common map[string]any `json:"common,omitempty"`
	// Experiments are the grids; names must be unique.
	Experiments []Experiment `json:"experiments"`
}

// Experiment is one named grid: a parameter override set, the axes to
// sweep (cartesian product), and optionally a curve table to emit and
// a regression gate for Compare.
type Experiment struct {
	Name string `json:"name"`
	// Kind selects the cell runner: "load" (default, one
	// loadgen.Run per repeat), "simbench" (the FollowerRead sim
	// microbenchmark), "soak" (a durable run with disk-footprint and
	// heap-flatness assertions) or "fig5-verify" (the fig5 latency
	// configuration replayed under full trace verification).
	Kind string `json:"kind,omitempty"`
	// Repeats overrides the spec default for this experiment.
	Repeats int `json:"repeats,omitempty"`
	// Config overrides Common for every cell of the experiment.
	Config map[string]any `json:"config,omitempty"`
	// Axes maps parameter names to the values to sweep; cells are the
	// cartesian product in sorted-key order.
	Axes map[string][]any `json:"axes,omitempty"`
	// Curve, when set, emits a curve table from the experiment's cells
	// (fig5/fig6 style: Y against the X axis, one series per value of
	// the Series axis).
	Curve *CurveSpec `json:"curve,omitempty"`
	// Gate configures the regression gate for the experiment's cells;
	// nil cells are compared with the default gate.
	Gate *GateSpec `json:"gate,omitempty"`
	// Soak parameterizes kind "soak".
	Soak *SoakSpec `json:"soak,omitempty"`
}

// CurveSpec selects a fig5/fig6-style curve table: Y metrics plotted
// against the numeric X axis, one series per value of the Series axis
// (empty: a single series).
type CurveSpec struct {
	X      string   `json:"x"`
	Series string   `json:"series,omitempty"`
	Y      []string `json:"y"`
}

// GateSpec configures the regression gate of an experiment's cells.
// A candidate median fails against a baseline median when it moves in
// the metric's bad direction by more than the noise band
//
//	max(IQRMult × max(base IQR, cand IQR), MinRel × |base median|).
type GateSpec struct {
	// Metrics lists the tracked metric keys (default: the kind's
	// tracked set — see trackedMetrics).
	Metrics []string `json:"metrics,omitempty"`
	// IQRMult scales the repeats' IQR into the noise band (default 3).
	IQRMult float64 `json:"iqr_mult,omitempty"`
	// MinRel is the noise-band floor as a fraction of the baseline
	// median (default 0.10) — it absorbs machine-to-machine variance
	// the repeats' IQR cannot see.
	MinRel float64 `json:"min_rel,omitempty"`
}

// SoakSpec parameterizes a soak cell's assertions.
type SoakSpec struct {
	// DiskBoundFactor bounds peak on-disk footprint at
	// DiskBoundFactor × groups × (max snapshot + max WAL epoch bytes)
	// — the durable backend retains one snapshot plus one rotating WAL
	// epoch per group, so a factor of 3 (the default) allows rotation
	// transients while still failing on unbounded growth.
	DiskBoundFactor float64 `json:"disk_bound_factor,omitempty"`
	// MaxHeapRatio bounds the median heap of the run's second half
	// over its first half (default 1.6): a leak grows monotonically
	// and fails it, while a flat gauge passes with margin.
	MaxHeapRatio float64 `json:"max_heap_ratio,omitempty"`
	// SampleMs is the disk/heap sampling period (default 250).
	SampleMs int `json:"sample_ms,omitempty"`
}

// Cell is one expanded grid cell: an experiment with one concrete
// axis assignment.
type Cell struct {
	Experiment string
	Name       string // experiment name + "/" + axis assignment
	Kind       string
	Repeats    int
	// Params is the merged parameter set (common < config < axis).
	Params map[string]any
	// Axis is just this cell's axis assignment.
	Axis map[string]any
	Gate *GateSpec
	Soak *SoakSpec
}

// ParseSpec decodes and validates an experiments.json document.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("grid: parse spec: %w", err)
	}
	if s.Schema != SpecSchema {
		return nil, fmt.Errorf("grid: spec schema %q, want %q", s.Schema, SpecSchema)
	}
	if s.Repeats == 0 {
		s.Repeats = 3
	}
	if s.Repeats < 1 {
		return nil, fmt.Errorf("grid: repeats %d below 1", s.Repeats)
	}
	if len(s.Experiments) == 0 {
		return nil, fmt.Errorf("grid: no experiments")
	}
	seen := map[string]bool{}
	for i := range s.Experiments {
		e := &s.Experiments[i]
		if e.Name == "" {
			return nil, fmt.Errorf("grid: experiment %d has no name", i)
		}
		if strings.ContainsAny(e.Name, "/ \t") {
			return nil, fmt.Errorf("grid: experiment name %q contains a separator", e.Name)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("grid: duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		switch e.Kind {
		case "":
			e.Kind = "load"
		case "load", "simbench", "soak", "fig5-verify":
		default:
			return nil, fmt.Errorf("grid: experiment %q: unknown kind %q", e.Name, e.Kind)
		}
		if e.Repeats == 0 {
			e.Repeats = s.Repeats
		}
		if e.Repeats < 1 {
			return nil, fmt.Errorf("grid: experiment %q: repeats %d below 1", e.Name, e.Repeats)
		}
		if e.Curve != nil {
			if e.Curve.X == "" || len(e.Curve.Y) == 0 {
				return nil, fmt.Errorf("grid: experiment %q: curve needs x and y", e.Name)
			}
			if _, ok := e.Axes[e.Curve.X]; !ok {
				return nil, fmt.Errorf("grid: experiment %q: curve x %q is not an axis", e.Name, e.Curve.X)
			}
			if e.Curve.Series != "" {
				if _, ok := e.Axes[e.Curve.Series]; !ok {
					return nil, fmt.Errorf("grid: experiment %q: curve series %q is not an axis", e.Name, e.Curve.Series)
				}
			}
		}
	}
	return &s, nil
}

// LoadSpec reads and parses an experiments.json file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

// Cells expands every experiment's axes into the grid's cell list, in
// spec order (axes in sorted-key order, values in listed order).
func (s *Spec) Cells() ([]Cell, error) {
	var out []Cell
	for i := range s.Experiments {
		e := &s.Experiments[i]
		keys := make([]string, 0, len(e.Axes))
		for k := range e.Axes {
			if len(e.Axes[k]) == 0 {
				return nil, fmt.Errorf("grid: experiment %q: axis %q has no values", e.Name, k)
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		assigns := []map[string]any{{}}
		for _, k := range keys {
			var next []map[string]any
			for _, base := range assigns {
				for _, v := range e.Axes[k] {
					a := make(map[string]any, len(base)+1)
					for bk, bv := range base {
						a[bk] = bv
					}
					a[k] = v
					next = append(next, a)
				}
			}
			assigns = next
		}
		for _, axis := range assigns {
			params := map[string]any{}
			for k, v := range s.Common {
				params[k] = v
			}
			for k, v := range e.Config {
				params[k] = v
			}
			for k, v := range axis {
				params[k] = v
			}
			out = append(out, Cell{
				Experiment: e.Name,
				Name:       cellName(e.Name, keys, axis),
				Kind:       e.Kind,
				Repeats:    e.Repeats,
				Params:     params,
				Axis:       axis,
				Gate:       e.Gate,
				Soak:       e.Soak,
			})
		}
	}
	names := map[string]bool{}
	for _, c := range out {
		if names[c.Name] {
			return nil, fmt.Errorf("grid: duplicate cell %q", c.Name)
		}
		names[c.Name] = true
	}
	return out, nil
}

// cellName renders "experiment/axis1=v1,axis2=v2" (bare experiment
// name when there are no axes) — the stable key cells keep across
// summaries, history lines and baselines.
func cellName(exp string, keys []string, axis map[string]any) string {
	if len(keys) == 0 {
		return exp
	}
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, axis[k]))
	}
	return exp + "/" + strings.Join(parts, ",")
}
