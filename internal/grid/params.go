package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"flexcast/internal/loadgen"
)

// loadParams is the JSON face of a load cell's parameters: one field
// per loadgen.Config knob, durations in explicit units so
// experiments.json stays plain numbers. Unknown keys are rejected, so
// a typo in an axis name fails the spec instead of silently sweeping
// nothing.
type loadParams struct {
	Transport            string  `json:"transport,omitempty"`
	Protocol             string  `json:"protocol,omitempty"`
	Groups               int     `json:"groups,omitempty"`
	Clients              int     `json:"clients,omitempty"`
	Workers              int     `json:"workers,omitempty"`
	Rate                 float64 `json:"rate,omitempty"`
	MaxOutstanding       int     `json:"max_outstanding,omitempty"`
	FlushEveryMs         float64 `json:"flush_every_ms,omitempty"`
	WarmupMs             float64 `json:"warmup_ms,omitempty"`
	DurationMs           float64 `json:"duration_ms,omitempty"`
	Batch                int     `json:"batch,omitempty"`
	FlushIntervalUs      float64 `json:"flush_interval_us,omitempty"`
	Payload              int     `json:"payload,omitempty"`
	Locality             float64 `json:"locality,omitempty"`
	GlobalOnly           bool    `json:"global_only,omitempty"`
	Seed                 int64   `json:"seed,omitempty"`
	TimeoutMs            float64 `json:"timeout_ms,omitempty"`
	Execute              bool    `json:"execute,omitempty"`
	StoreSeed            int64   `json:"store_seed,omitempty"`
	ReadPct              float64 `json:"read_pct,omitempty"`
	Replicas             int     `json:"replicas,omitempty"`
	FollowerReads        bool    `json:"follower_reads,omitempty"`
	ReadWorkers          int     `json:"read_workers,omitempty"`
	LeaseTermMs          float64 `json:"lease_term_ms,omitempty"`
	Zipf                 float64 `json:"zipf,omitempty"`
	Durable              bool    `json:"durable,omitempty"`
	DurableSnapshotEvery int     `json:"durable_snapshot_every,omitempty"`
	DurableFsyncEvery    int     `json:"durable_fsync_every,omitempty"`
	TraceSample          int     `json:"trace_sample,omitempty"`
	Adaptive             bool    `json:"adaptive,omitempty"`
	SLOMs                float64 `json:"slo_ms,omitempty"`
	Sessions             int     `json:"sessions,omitempty"`
	SessionOutstanding   int     `json:"session_outstanding,omitempty"`
	SessionBurst         int     `json:"session_burst,omitempty"`

	// Simbench-only knobs; load cells reject them.
	SimOps int `json:"sim_ops,omitempty"`

	// Fig5-verify-only knobs; load cells reject them.
	Fig5Scale float64 `json:"fig5_scale,omitempty"`
	Fig5Seeds int     `json:"fig5_seeds,omitempty"`
}

// decodeParams round-trips a cell's merged parameter map through JSON
// into the typed struct, rejecting unknown keys.
func decodeParams(cell string, params map[string]any) (*loadParams, error) {
	raw, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var p loadParams
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("grid: cell %s: %w", cell, err)
	}
	return &p, nil
}

// loadConfig converts a cell's parameters into the loadgen
// configuration of one repeat. Each repeat offsets the workload seed
// so repeats measure run-to-run variance over distinct (but
// reproducible) workloads, not the same RNG stream replayed.
func (p *loadParams) loadConfig(repeat int) loadgen.Config {
	cfg := loadgen.Config{
		Transport:            p.Transport,
		Protocol:             p.Protocol,
		Groups:               p.Groups,
		Clients:              p.Clients,
		Workers:              p.Workers,
		Rate:                 p.Rate,
		MaxOutstanding:       p.MaxOutstanding,
		FlushEvery:           time.Duration(p.FlushEveryMs * float64(time.Millisecond)),
		Warmup:               time.Duration(p.WarmupMs * float64(time.Millisecond)),
		Duration:             time.Duration(p.DurationMs * float64(time.Millisecond)),
		MaxBatch:             p.Batch,
		FlushInterval:        time.Duration(p.FlushIntervalUs * float64(time.Microsecond)),
		PayloadSize:          p.Payload,
		Locality:             p.Locality,
		GlobalOnly:           p.GlobalOnly,
		Seed:                 p.Seed,
		Timeout:              time.Duration(p.TimeoutMs * float64(time.Millisecond)),
		Execute:              p.Execute,
		StoreSeed:            p.StoreSeed,
		ReadPct:              p.ReadPct,
		Replicas:             p.Replicas,
		FollowerReads:        p.FollowerReads,
		ReadWorkers:          p.ReadWorkers,
		LeaseTerm:            time.Duration(p.LeaseTermMs * float64(time.Millisecond)),
		Zipf:                 p.Zipf,
		Durable:              p.Durable,
		DurableSnapshotEvery: p.DurableSnapshotEvery,
		DurableFsyncEvery:    p.DurableFsyncEvery,
		TraceSample:          p.TraceSample,
		Adaptive:             p.Adaptive,
		SLOMs:                p.SLOMs,
		Sessions:             p.Sessions,
		SessionOutstanding:   p.SessionOutstanding,
		SessionBurst:         p.SessionBurst,
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cfg.Seed += int64(repeat) * 7919
	return cfg
}
