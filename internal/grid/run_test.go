package grid

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestRunSpecEndToEnd drives a tiny real grid — 2 load cells × 2
// repeats plus one simbench cell — through RunSpec and checks the
// summary, raw artifacts, curves, history line and self-compare.
func TestRunSpecEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real load grid")
	}
	spec := testSpec(t, `{
		"schema": "flexgrid/experiments/v1",
		"repeats": 2,
		"common": {"groups": 3, "clients": 1, "workers": 4,
		           "warmup_ms": 100, "duration_ms": 300, "timeout_ms": 60000},
		"experiments": [
			{"name": "e2e",
			 "axes": {"batch": [1, 64]},
			 "curve": {"x": "batch", "y": ["throughput_tx_s"]}},
			{"name": "micro", "kind": "simbench", "repeats": 1,
			 "config": {"groups": 3, "replicas": 3, "sim_ops": 2000}}
		]
	}`)
	outDir := t.TempDir()
	var log strings.Builder
	sum, err := RunSpec(spec, Options{OutDir: outDir, Log: &log, Spec: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sum.Cells) != 3 {
		t.Fatalf("summary has %d cells, want 3", len(sum.Cells))
	}
	for _, name := range []string{"e2e/batch=1", "e2e/batch=64"} {
		c := sum.Cell(name)
		if c == nil {
			t.Fatalf("cell %s missing", name)
		}
		if c.Repeats != 2 || c.Metrics["throughput_tx_s"].N != 2 {
			t.Fatalf("cell %s repeats wrong: %+v", name, c)
		}
		if c.Metrics["throughput_tx_s"].Median <= 0 {
			t.Fatalf("cell %s has no throughput", name)
		}
		// PR 7's stage decomposition must survive aggregation.
		if c.Metrics["stage_ordering_p50_ns"].N == 0 {
			t.Fatalf("cell %s lost its stage decomposition: %v", name, keysOf(c.Metrics))
		}
	}
	micro := sum.Cell("micro")
	if micro == nil || micro.Metrics["followerread_gate_ns_op"].Median <= 0 {
		t.Fatalf("simbench cell wrong: %+v", micro)
	}

	// One curve table with a single series of both batch points in order.
	if len(sum.Curves) != 1 || len(sum.Curves[0].Series) != 1 {
		t.Fatalf("curves wrong: %+v", sum.Curves)
	}
	pts := sum.Curves[0].Series[0].Points
	if len(pts) != 2 || pts[0].X != 1 || pts[1].X != 64 {
		t.Fatalf("curve points wrong: %+v", pts)
	}

	// Raw artifacts: one file per run.
	ents, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 5 { // 2 cells × 2 repeats + 1 simbench repeat
		t.Fatalf("%d raw artifacts, want 5", len(ents))
	}

	// Summary file + history round trip on real output.
	sumPath := filepath.Join(t.TempDir(), "summary.json")
	if err := sum.WriteFile(sumPath); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSummary(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	histPath := filepath.Join(t.TempDir(), "hist.jsonl")
	if err := AppendHistory(histPath, HistoryFromSummary(back)); err != nil {
		t.Fatal(err)
	}
	hist, err := ReadHistory(histPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || len(hist[0].Cells) != 3 {
		t.Fatalf("history wrong: %+v", hist)
	}

	// A summary must always pass the gate against itself.
	if v := Compare(back, back); !v.OK {
		t.Fatalf("self-compare failed: %s", v.Format())
	}

	if !strings.Contains(log.String(), "grid complete: 3 cells") {
		t.Fatalf("progress log wrong:\n%s", log.String())
	}
}

func TestRunSpecFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sim microbenchmark")
	}
	spec := testSpec(t, `{
		"schema": "flexgrid/experiments/v1",
		"experiments": [
			{"name": "skipme", "axes": {"batch": [1]}},
			{"name": "micro", "kind": "simbench", "repeats": 1,
			 "config": {"sim_ops": 1000}}
		]
	}`)
	sum, err := RunSpec(spec, Options{Filter: regexp.MustCompile(`^micro$`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Cells) != 1 || sum.Cells[0].Name != "micro" {
		t.Fatalf("filter ran wrong cells: %+v", sum.Cells)
	}
	// A filter matching nothing is an error, not an empty summary.
	if _, err := RunSpec(spec, Options{Filter: regexp.MustCompile(`^nothing$`)}); err == nil {
		t.Fatal("empty filtered grid succeeded")
	}
}

func keysOf(m map[string]MetricSummary) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
