package grid

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"flexcast/internal/loadgen"
	"flexcast/internal/stats"
)

// runSoak executes a durable load run while a sampler walks the
// persistence directory and the heap gauge, then asserts the first
// slice of the ROADMAP soak item: the on-disk footprint stays bounded
// by the snapshot cadence (the durable backend retains one snapshot
// plus one rotating WAL epoch per group — KeepEpochs off — so peak
// disk must sit within DiskBoundFactor × groups × (max snapshot + max
// WAL epoch)), and the heap gauge stays flat (the median heap of the
// run's second half within MaxHeapRatio of the first half's). Either
// bound failing fails the cell, and with it the grid run.
func runSoak(cell Cell, repeat int) (map[string]float64, error) {
	p, err := decodeParams(cell.Name, cell.Params)
	if err != nil {
		return nil, err
	}
	cfg := p.loadConfig(repeat)
	if !cfg.Durable || !cfg.Execute {
		return nil, fmt.Errorf("grid: cell %s: soak requires durable+execute", cell.Name)
	}
	soak := cell.Soak
	if soak == nil {
		soak = &SoakSpec{}
	}
	boundFactor := soak.DiskBoundFactor
	if boundFactor == 0 {
		boundFactor = 3
	}
	maxHeapRatio := soak.MaxHeapRatio
	if maxHeapRatio == 0 {
		maxHeapRatio = 1.6
	}
	samplePeriod := time.Duration(soak.SampleMs) * time.Millisecond
	if samplePeriod == 0 {
		samplePeriod = 250 * time.Millisecond
	}

	// The grid owns the persistence root so the sampler can walk it
	// while the run writes (loadgen.Run persists into a run-* subdir
	// of the configured root and leaves it behind).
	root, err := os.MkdirTemp("", "flexgrid-soak-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	cfg.DurableDir = root

	sampler := &soakSampler{root: root, period: samplePeriod}
	sampler.start()
	res, runErr := loadgen.Run(cfg)
	sampler.stop()
	if runErr != nil {
		return nil, runErr
	}

	sm := sampler.metrics()
	if sm.samples < 4 {
		return nil, fmt.Errorf("grid: cell %s: only %d soak samples — lengthen the run or shorten sample_ms", cell.Name, sm.samples)
	}
	liveSet := float64(cfg.Groups) * (sm.maxSnapBytes + sm.maxWalBytes)
	diskBound := boundFactor * liveSet
	m := resultMetrics(res)
	m["soak_disk_peak_bytes"] = sm.peakDiskBytes
	m["soak_disk_bound_bytes"] = diskBound
	m["soak_heap_ratio"] = sm.heapRatio
	m["soak_samples"] = float64(sm.samples)
	if sm.peakDiskBytes > diskBound {
		return nil, fmt.Errorf("grid: cell %s: peak disk %0.f bytes exceeds the snapshot-cadence bound %.0f (%.0fx groups×(snap %0.f + wal %0.f)) — epochs are not being truncated",
			cell.Name, sm.peakDiskBytes, diskBound, boundFactor, sm.maxSnapBytes, sm.maxWalBytes)
	}
	if sm.heapRatio > maxHeapRatio {
		return nil, fmt.Errorf("grid: cell %s: heap grew %.2fx from the first half of the run to the second (bound %.2fx) — the gauge is not flat",
			cell.Name, sm.heapRatio, maxHeapRatio)
	}
	return m, nil
}

// soakSampler periodically walks the durable root (total bytes, max
// single snapshot, max single WAL epoch) and reads the heap gauge.
type soakSampler struct {
	root   string
	period time.Duration

	stopCh chan struct{}
	wg     sync.WaitGroup

	mu      sync.Mutex
	disk    []float64 // total bytes per sample
	heap    []float64 // HeapAlloc per sample
	maxSnap float64
	maxWal  float64
}

func (s *soakSampler) start() {
	s.stopCh = make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.period)
		defer t.Stop()
		for {
			s.sample()
			select {
			case <-s.stopCh:
				return
			case <-t.C:
			}
		}
	}()
}

func (s *soakSampler) stop() {
	close(s.stopCh)
	s.wg.Wait()
	s.sample() // one final post-run sample
}

func (s *soakSampler) sample() {
	var total, maxSnap, maxWal float64
	filepath.WalkDir(s.root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil // files vanish mid-walk as epochs truncate; skip
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		sz := float64(info.Size())
		total += sz
		switch {
		case strings.HasSuffix(d.Name(), ".snap"):
			if sz > maxSnap {
				maxSnap = sz
			}
		case strings.HasSuffix(d.Name(), ".log"):
			if sz > maxWal {
				maxWal = sz
			}
		}
		return nil
	})
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.disk = append(s.disk, total)
	s.heap = append(s.heap, float64(ms.HeapAlloc))
	if maxSnap > s.maxSnap {
		s.maxSnap = maxSnap
	}
	if maxWal > s.maxWal {
		s.maxWal = maxWal
	}
}

type soakMetrics struct {
	samples       int
	peakDiskBytes float64
	maxSnapBytes  float64
	maxWalBytes   float64
	heapRatio     float64
}

func (s *soakSampler) metrics() soakMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := soakMetrics{samples: len(s.disk), maxSnapBytes: s.maxSnap, maxWalBytes: s.maxWal}
	for _, v := range s.disk {
		if v > m.peakDiskBytes {
			m.peakDiskBytes = v
		}
	}
	// Flatness: median heap of the run's second half over the first
	// half's. A leak grows monotonically, driving the ratio up; a flat
	// gauge hovers near 1 regardless of the absolute level.
	if n := len(s.heap); n >= 2 {
		first := stats.Median(s.heap[:n/2])
		second := stats.Median(s.heap[n/2:])
		if first > 0 {
			m.heapRatio = second / first
		} else {
			m.heapRatio = 1
		}
	}
	return m
}
