package grid

import (
	"fmt"

	"flexcast/internal/harness"
	"flexcast/internal/sim"
	"flexcast/internal/stats"
	"flexcast/internal/wan"
)

// runFig5Verify replays the paper's fig5 latency configuration — the
// shape that used to form the fresh-request staircase ring (DESIGN.md
// §4 deviation 8) — with full trace verification: FlexCast on O1, 240
// closed-loop clients, global-only gTPC-C at 90 % locality, recording
// on, and trace.CheckAll (integrity, agreement, prefix order, global
// acyclicity, minimality) after the run. Any violation fails the cell,
// and with it the grid run: this is the `-verify` audit promoted into
// the experiment grid so the CI gate rings if the ring ever comes back.
//
// fig5_scale multiplies the paper's 60-virtual-second duration
// (default 0.02, the historical repro's scale; a 2-virtual-second
// floor applies, exactly like flexbench -scale). fig5_seeds widens
// each repeat into a consecutive-seed sweep (default 1).
func runFig5Verify(cell Cell, repeat int) (map[string]float64, error) {
	p, err := decodeParams(cell.Name, cell.Params)
	if err != nil {
		return nil, err
	}
	scale := p.Fig5Scale
	if scale == 0 {
		scale = 0.02
	}
	seeds := p.Fig5Seeds
	if seeds == 0 {
		seeds = 1
	}
	duration := sim.Time(60_000_000 * scale)
	if duration < 2_000_000 {
		duration = 2_000_000
	}
	flushEvery := sim.Time(250_000)
	if p.FlushEveryMs > 0 {
		flushEvery = sim.Time(p.FlushEveryMs * 1000)
	}
	locality := p.Locality
	if locality == 0 {
		locality = 0.90
	}
	clients := p.Clients
	if clients == 0 {
		clients = 240
	}
	baseSeed := p.Seed
	if baseSeed == 0 {
		baseSeed = 1
	}
	baseSeed += int64(repeat) * 7919

	var lat1 stats.Recorder
	var completed, windowSecs, events float64
	for i := 0; i < seeds; i++ {
		seed := baseSeed + int64(i)
		res, err := harness.Run(harness.Config{
			Protocol:   harness.FlexCast,
			Overlay:    wan.O1(),
			Locality:   locality,
			NumClients: clients,
			GlobalOnly: true,
			Duration:   duration,
			TrimFrac:   0.1,
			Seed:       seed,
			FlushEvery: flushEvery,
			Record:     true,
		})
		if err != nil {
			return nil, fmt.Errorf("grid: cell %s: seed %d: %w", cell.Name, seed, err)
		}
		if err := res.Trace.CheckAll(true); err != nil {
			return nil, fmt.Errorf("grid: cell %s: seed %d violates the multicast spec: %w", cell.Name, seed, err)
		}
		completed += float64(res.Completed)
		windowSecs += res.WindowSecs
		events += float64(res.Events)
		if len(res.PerDest) > 0 {
			lat1.Add(res.PerDest[0].Percentile(50))
		}
	}
	m := map[string]float64{
		"fig5_verified_runs": float64(seeds),
		"latency_p50_us":     lat1.Median(),
		"sim_events":         events,
	}
	if windowSecs > 0 {
		m["throughput_tx_s"] = completed / windowSecs
	}
	return m, nil
}
