package grid

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"time"

	"flexcast/internal/loadgen"
)

// Options parameterizes one grid execution.
type Options struct {
	// OutDir receives one raw JSON per run (<cell>-r<k>.json); empty
	// disables raw artifacts.
	OutDir string
	// Log receives progress lines (nil: quiet).
	Log io.Writer
	// Filter restricts execution to cells whose name matches (nil:
	// the whole grid).
	Filter *regexp.Regexp
	// Spec labels the summary with the config file it came from.
	Spec string
}

// rawRun is the per-run artifact: one repeat of one cell, its exact
// parameters, the flattened metrics, and (for load cells) the full
// loadgen result for archaeology.
type rawRun struct {
	Cell    string             `json:"cell"`
	Kind    string             `json:"kind"`
	Repeat  int                `json:"repeat"`
	Params  map[string]any     `json:"params"`
	Metrics map[string]float64 `json:"metrics"`
	Result  *loadgen.Result    `json:"result,omitempty"`
}

// RunSpec executes every cell of the spec (repeats included) and
// aggregates the runs into a summary. Cell kinds that assert (soak)
// fail the whole run on violation — a grid that published numbers
// past a failed assertion would be a different benchmark.
func RunSpec(spec *Spec, opt Options) (*Summary, error) {
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	if opt.Filter != nil {
		var kept []Cell
		for _, c := range cells {
			if opt.Filter.MatchString(c.Name) {
				kept = append(kept, c)
			}
		}
		cells = kept
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("grid: no cells to run")
	}
	if opt.OutDir != "" {
		if err := os.MkdirAll(opt.OutDir, 0o755); err != nil {
			return nil, err
		}
	}
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, format, args...)
		}
	}

	summary := &Summary{
		Schema: Schema,
		Commit: gitCommit(),
		Date:   time.Now().UTC().Format(time.RFC3339),
		Spec:   opt.Spec,
		Host: map[string]any{
			"go":   runtime.Version(),
			"os":   runtime.GOOS,
			"arch": runtime.GOARCH,
			"cpus": runtime.NumCPU(),
		},
	}
	start := time.Now()
	for ci, cell := range cells {
		repeats := make([]map[string]float64, 0, cell.Repeats)
		for rep := 0; rep < cell.Repeats; rep++ {
			runStart := time.Now()
			metrics, result, err := runCell(cell, rep)
			if err != nil {
				return nil, fmt.Errorf("grid: cell %s repeat %d: %w", cell.Name, rep, err)
			}
			repeats = append(repeats, metrics)
			logf("[%d/%d] %s r%d: %s  (%.1fs)\n", ci+1, len(cells), cell.Name, rep,
				headline(cell.Kind, metrics), time.Since(runStart).Seconds())
			if opt.OutDir != "" {
				raw := rawRun{Cell: cell.Name, Kind: cell.Kind, Repeat: rep,
					Params: cell.Params, Metrics: metrics, Result: result}
				data, err := json.MarshalIndent(raw, "", "  ")
				if err != nil {
					return nil, err
				}
				path := filepath.Join(opt.OutDir, rawName(cell.Name, rep))
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					return nil, err
				}
			}
		}
		summary.Cells = append(summary.Cells, aggregate(cell, repeats))
	}
	curves, err := buildCurves(spec, summary.Cells)
	if err != nil {
		return nil, err
	}
	summary.Curves = curves
	if err := summary.Validate(); err != nil {
		return nil, fmt.Errorf("grid: produced an invalid summary: %w", err)
	}
	logf("grid complete: %d cells in %.1fs\n", len(cells), time.Since(start).Seconds())
	return summary, nil
}

// runCell executes one repeat of one cell by kind.
func runCell(cell Cell, repeat int) (map[string]float64, *loadgen.Result, error) {
	switch cell.Kind {
	case "simbench":
		m, err := runSimbench(cell, repeat)
		return m, nil, err
	case "soak":
		m, err := runSoak(cell, repeat)
		return m, nil, err
	case "fig5-verify":
		m, err := runFig5Verify(cell, repeat)
		return m, nil, err
	default:
		p, err := decodeParams(cell.Name, cell.Params)
		if err != nil {
			return nil, nil, err
		}
		if p.SimOps != 0 {
			return nil, nil, fmt.Errorf("grid: sim_ops is a simbench parameter")
		}
		if p.Fig5Scale != 0 || p.Fig5Seeds != 0 {
			return nil, nil, fmt.Errorf("grid: fig5_scale/fig5_seeds are fig5-verify parameters")
		}
		res, err := loadgen.Run(p.loadConfig(repeat))
		if err != nil {
			return nil, nil, err
		}
		return resultMetrics(res), res, nil
	}
}

// headline picks the one-line progress figure per kind.
func headline(kind string, m map[string]float64) string {
	switch kind {
	case "simbench":
		return fmt.Sprintf("gate %.0f ns/op, serve %.0f ns/op", m["followerread_gate_ns_op"], m["followerread_serve_ns_op"])
	case "soak":
		return fmt.Sprintf("%.0f tx/s, disk peak %.0f/%.0f bytes, heap ratio %.2f",
			m["throughput_tx_s"], m["soak_disk_peak_bytes"], m["soak_disk_bound_bytes"], m["soak_heap_ratio"])
	case "fig5-verify":
		return fmt.Sprintf("%.0f verified runs clean, %.0f tx/s, p50 %.0f µs",
			m["fig5_verified_runs"], m["throughput_tx_s"], m["latency_p50_us"])
	default:
		return fmt.Sprintf("%.0f tx/s, p50 %.0f µs", m["throughput_tx_s"], m["latency_p50_us"])
	}
}

// rawName renders a cell's raw-artifact filename: the cell name with
// path-hostile characters flattened.
func rawName(cell string, repeat int) string {
	r := strings.NewReplacer("/", "__", ",", "_", "=", "-")
	return fmt.Sprintf("%s-r%d.json", r.Replace(cell), repeat)
}

// gitCommit stamps summaries with the working tree's commit (short
// hash, "-dirty" suffixed when the tree has modifications); "unknown"
// outside a repository.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	commit := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(st) > 0 {
		commit += "-dirty"
	}
	return commit
}
