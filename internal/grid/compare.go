package grid

import (
	"fmt"
	"math"
	"strings"
)

// Default gate parameters: the noise band is
// max(IQRMult × max(IQRs), MinRel × |baseline median|). The relative
// floor absorbs cross-machine variance the repeats' IQR cannot see;
// the IQR term widens the band on genuinely noisy cells.
const (
	DefaultIQRMult = 3.0
	DefaultMinRel  = 0.10
)

// trackedMetrics is the default tracked set per cell kind — what the
// gate checks when the experiment declares no explicit metric list.
// Deliberately small: medians of the headline metrics, not every
// stage percentile (those remain in the summary for humans).
func trackedMetrics(kind string) []string {
	switch kind {
	case "simbench":
		return []string{"followerread_gate_ns_op", "followerread_serve_ns_op"}
	case "soak":
		return []string{"soak_disk_peak_bytes", "soak_heap_ratio"}
	case "fig5-verify":
		return []string{"throughput_tx_s", "latency_p50_us"}
	default:
		return []string{"throughput_tx_s", "latency_p50_us", "latency_p99_us"}
	}
}

// higherIsBetter classifies a metric's good direction: rates and
// counts of useful work go up, latencies / costs / footprints go
// down.
func higherIsBetter(metric string) bool {
	switch {
	case strings.HasSuffix(metric, "_tx_s"),
		metric == "completed", metric == "reads", metric == "tx_applied",
		metric == "avg_batch", strings.HasSuffix(metric, "_ops_s"):
		return true
	default:
		// _us/_ns latencies, _ns_op costs, _bytes footprints, ratios,
		// refusal/shed counts: lower is better.
		return false
	}
}

// Delta is one gated comparison: a tracked metric of one cell,
// baseline vs candidate.
type Delta struct {
	Cell   string  `json:"cell"`
	Metric string  `json:"metric"`
	Base   float64 `json:"base"`
	Cand   float64 `json:"cand"`
	// Rel is the signed relative change, positive in the metric's bad
	// direction (so 0.2 always reads "20% worse").
	Rel float64 `json:"rel"`
	// Band is the allowed noise band, as an absolute delta.
	Band float64 `json:"band"`
	// Regressed marks a change beyond the band in the bad direction.
	Regressed bool `json:"regressed"`
}

// Verdict is the regression gate's outcome over a whole summary pair.
type Verdict struct {
	OK          bool    `json:"ok"`
	Checked     int     `json:"checked"`
	Regressions []Delta `json:"regressions,omitempty"`
	// Improvements lists beyond-band moves in the good direction
	// (worth a look: they often mean the baseline is stale).
	Improvements []Delta `json:"improvements,omitempty"`
	// Missing lists baseline cells or tracked metrics absent from the
	// candidate — a silently shrunk grid must not pass the gate.
	Missing []string `json:"missing,omitempty"`
}

// Compare gates a candidate summary against a baseline: every tracked
// metric of every baseline cell must be present in the candidate and
// not regressed beyond its noise band. Cells only in the candidate
// (a grown grid) are fine; cells only in the baseline are not.
func Compare(base, cand *Summary) *Verdict {
	v := &Verdict{OK: true}
	for i := range base.Cells {
		bc := &base.Cells[i]
		cc := cand.Cell(bc.Name)
		if cc == nil {
			v.Missing = append(v.Missing, bc.Name)
			v.OK = false
			continue
		}
		gate := cc.Gate
		if gate == nil {
			gate = bc.Gate
		}
		iqrMult, minRel := DefaultIQRMult, DefaultMinRel
		metrics := trackedMetrics(bc.Kind)
		if gate != nil {
			if gate.IQRMult > 0 {
				iqrMult = gate.IQRMult
			}
			if gate.MinRel > 0 {
				minRel = gate.MinRel
			}
			if len(gate.Metrics) > 0 {
				metrics = gate.Metrics
			}
		}
		for _, key := range metrics {
			bm, ok := bc.Metrics[key]
			if !ok {
				// The baseline never measured it (e.g. a gate listing a
				// read metric on a cell without reads): nothing to hold
				// the candidate to.
				continue
			}
			cm, ok := cc.Metrics[key]
			if !ok {
				v.Missing = append(v.Missing, bc.Name+":"+key)
				v.OK = false
				continue
			}
			band := math.Max(iqrMult*math.Max(bm.IQR, cm.IQR), minRel*math.Abs(bm.Median))
			d := Delta{Cell: bc.Name, Metric: key, Base: bm.Median, Cand: cm.Median, Band: band}
			diff := cm.Median - bm.Median // positive = candidate larger
			bad := diff
			if higherIsBetter(key) {
				bad = -diff
			}
			if bm.Median != 0 {
				d.Rel = bad / math.Abs(bm.Median)
			}
			v.Checked++
			switch {
			case bad > band:
				d.Regressed = true
				v.Regressions = append(v.Regressions, d)
				v.OK = false
			case bad < -band:
				v.Improvements = append(v.Improvements, d)
			}
		}
	}
	return v
}

// Format renders the verdict for terminal output.
func (v *Verdict) Format() string {
	var b strings.Builder
	for _, d := range v.Regressions {
		fmt.Fprintf(&b, "REGRESSION %-46s %-22s %12.1f -> %12.1f (%+.1f%%, band ±%.1f)\n",
			d.Cell, d.Metric, d.Base, d.Cand, d.Rel*100, d.Band)
	}
	for _, d := range v.Improvements {
		fmt.Fprintf(&b, "improved   %-46s %-22s %12.1f -> %12.1f (%+.1f%%, band ±%.1f)\n",
			d.Cell, d.Metric, d.Base, d.Cand, -d.Rel*100, d.Band)
	}
	for _, m := range v.Missing {
		fmt.Fprintf(&b, "MISSING    %s (in baseline, absent from candidate)\n", m)
	}
	if v.OK {
		fmt.Fprintf(&b, "ok: %d tracked metrics within their noise bands (%d improved)\n",
			v.Checked, len(v.Improvements))
	} else {
		fmt.Fprintf(&b, "FAIL: %d regression(s), %d missing of %d tracked metrics\n",
			len(v.Regressions), len(v.Missing), v.Checked)
	}
	return b.String()
}
