package grid

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// HistorySchema tags one BENCH_history.jsonl line.
const HistorySchema = "flexgrid-history/v1"

// HistoryEntry is one line of the committed perf trajectory: one grid
// run reduced to provenance plus each cell's metric medians. Raw
// repeats and IQRs stay in the run's own summary artifact; the
// history keeps only what trend plots and bisection need.
type HistoryEntry struct {
	Schema string `json:"schema"`
	Commit string `json:"commit"`
	Date   string `json:"date"`
	Spec   string `json:"spec,omitempty"`
	// Cells maps cell name → metric key → median.
	Cells map[string]map[string]float64 `json:"cells"`
}

// HistoryFromSummary reduces a summary to its history line.
func HistoryFromSummary(s *Summary) HistoryEntry {
	e := HistoryEntry{
		Schema: HistorySchema,
		Commit: s.Commit,
		Date:   s.Date,
		Spec:   s.Spec,
		Cells:  make(map[string]map[string]float64, len(s.Cells)),
	}
	for _, c := range s.Cells {
		ms := make(map[string]float64, len(c.Metrics))
		for k, m := range c.Metrics {
			ms[k] = m.Median
		}
		e.Cells[c.Name] = ms
	}
	return e
}

// Validate checks one history line.
func (e *HistoryEntry) Validate() error {
	if e.Schema != HistorySchema {
		return fmt.Errorf("history schema %q, want %q", e.Schema, HistorySchema)
	}
	if e.Commit == "" {
		return fmt.Errorf("history entry without commit")
	}
	if e.Date == "" {
		return fmt.Errorf("history entry without date")
	}
	if len(e.Cells) == 0 {
		return fmt.Errorf("history entry with no cells")
	}
	for cell, ms := range e.Cells {
		if len(ms) == 0 {
			return fmt.Errorf("history cell %q with no metrics", cell)
		}
	}
	return nil
}

// AppendHistory folds one entry onto the history file (one JSON
// object per line), creating it if missing.
func AppendHistory(path string, e HistoryEntry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return err
	}
	return f.Sync()
}

// ReadHistory reads and validates every line of a history file.
func ReadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	ln := 0
	for sc.Scan() {
		ln++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("grid: %s line %d: %w", path, ln, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("grid: %s line %d: %w", path, ln, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
