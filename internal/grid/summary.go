package grid

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"

	"flexcast/internal/loadgen"
	"flexcast/internal/stats"
)

// Schema tags the aggregated grid summary format.
const Schema = "flexgrid/v1"

// MetricSummary aggregates one metric over a cell's repeats: the
// interpolated median, the interquartile range (the noise band the
// regression gate scales), and the observed extremes.
type MetricSummary struct {
	Median float64 `json:"median"`
	IQR    float64 `json:"iqr"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	N      int     `json:"n"`
}

// CellSummary is one cell's aggregate: its identity (experiment, axis
// assignment), the gate it is compared under, and every metric's
// summary across repeats.
type CellSummary struct {
	Name       string                   `json:"name"`
	Experiment string                   `json:"experiment"`
	Kind       string                   `json:"kind"`
	Axis       map[string]any           `json:"axis,omitempty"`
	Repeats    int                      `json:"repeats"`
	Gate       *GateSpec                `json:"gate,omitempty"`
	Metrics    map[string]MetricSummary `json:"metrics"`
}

// CurvePoint is one point of a curve series: the numeric X axis
// value, the Y metric's median and its IQR.
type CurvePoint struct {
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	IQR  float64 `json:"iqr"`
	N    int     `json:"n"`
	Cell string  `json:"cell"`
}

// CurveSeries is one line of a curve table (one value of the series
// axis), points sorted by X.
type CurveSeries struct {
	Label  string       `json:"label,omitempty"`
	Points []CurvePoint `json:"points"`
}

// CurveTable is a fig5/fig6-style table: one Y metric against the X
// axis, one series per series-axis value.
type CurveTable struct {
	Experiment string        `json:"experiment"`
	X          string        `json:"x"`
	Y          string        `json:"y"`
	Series     []CurveSeries `json:"series"`
}

// Summary is one grid run's aggregate: provenance, every cell's
// metric summaries, and the curve tables the spec requested.
type Summary struct {
	Schema string         `json:"schema"`
	Commit string         `json:"commit,omitempty"`
	Date   string         `json:"date,omitempty"`
	Spec   string         `json:"spec,omitempty"`
	Host   map[string]any `json:"host,omitempty"`
	Cells  []CellSummary  `json:"cells"`
	Curves []CurveTable   `json:"curves,omitempty"`
}

// resultMetrics flattens one loadgen result into the grid's uniform
// metric map — scalar keys the aggregation, curves, history and
// compare layers all operate on, stage decomposition included
// (stage_<name>_{p50,p99,mean}_ns) so cells compare stage by stage.
func resultMetrics(res *loadgen.Result) map[string]float64 {
	m := map[string]float64{
		"completed":       float64(res.Completed),
		"throughput_tx_s": res.Throughput,
		"window_s":        res.WindowSecs,
		"latency_p50_us":  float64(res.Latency.P50),
		"latency_p90_us":  float64(res.Latency.P90),
		"latency_p99_us":  float64(res.Latency.P99),
		"latency_mean_us": res.Latency.Mean,
		"avg_batch":       res.AvgBatch,
	}
	if res.Reads > 0 {
		m["reads"] = float64(res.Reads)
		m["read_throughput_tx_s"] = res.ReadThroughput
		m["total_throughput_tx_s"] = res.TotalThroughput
	}
	if res.ReadLatencyNs != nil {
		m["read_p50_ns"] = float64(res.ReadLatencyNs.P50)
		m["read_p99_ns"] = float64(res.ReadLatencyNs.P99)
		m["read_mean_ns"] = res.ReadLatencyNs.Mean
	}
	if len(res.ReadsPerReplica) > 0 {
		m["lease_refusals"] = float64(res.LeaseRefusals)
		m["remote_reads"] = float64(res.RemoteReads)
	}
	if res.Execute != nil {
		m["abort_rate"] = res.Execute.AbortRate
		m["tx_applied"] = float64(res.Execute.TxApplied)
	}
	if res.SLO != nil {
		// slo_goodput_tx_s compares up (the _tx_s suffix); shed and
		// slo_shed_rate compare down (the default direction).
		m["slo_goodput_tx_s"] = res.SLO.Goodput
		m["slo_good_fraction"] = res.SLO.GoodFraction
		m["slo_shed_rate"] = res.SLO.ShedRate
		m["shed"] = float64(res.Shed)
	}
	if res.Durable != nil {
		m["recovery_mean_us"] = res.Durable.RecoveryMeanUs
		m["recovery_max_us"] = float64(res.Durable.RecoveryMaxUs)
		m["max_replayed_envelopes"] = float64(res.Durable.MaxReplayedEnvelopes)
	}
	if st := res.Stages; st != nil {
		m["e2e_p50_ns"] = float64(st.E2E.P50)
		m["e2e_p99_ns"] = float64(st.E2E.P99)
		for _, sg := range st.Stages {
			m["stage_"+sg.Stage+"_p50_ns"] = float64(sg.P50)
			m["stage_"+sg.Stage+"_p99_ns"] = float64(sg.P99)
			m["stage_"+sg.Stage+"_mean_ns"] = sg.Mean
		}
	}
	return m
}

// aggregate folds the repeats' metric maps into one cell summary.
// Metrics missing from some repeats (a stage that recorded no sample
// in one run) aggregate over the repeats that have them.
func aggregate(cell Cell, repeats []map[string]float64) CellSummary {
	byKey := map[string][]float64{}
	for _, rm := range repeats {
		for k, v := range rm {
			byKey[k] = append(byKey[k], v)
		}
	}
	out := CellSummary{
		Name:       cell.Name,
		Experiment: cell.Experiment,
		Kind:       cell.Kind,
		Axis:       cell.Axis,
		Repeats:    len(repeats),
		Gate:       cell.Gate,
		Metrics:    make(map[string]MetricSummary, len(byKey)),
	}
	for k, xs := range byKey {
		q1, q2, q3 := stats.Quartiles(xs)
		out.Metrics[k] = MetricSummary{
			Median: q2,
			IQR:    q3 - q1,
			Min:    xs[minIdx(xs)],
			Max:    xs[maxIdx(xs)],
			N:      len(xs),
		}
	}
	return out
}

func minIdx(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
	}
	return best
}

func maxIdx(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// axisFloat renders an axis value as the numeric X of a curve point.
func axisFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	case string:
		f, err := strconv.ParseFloat(x, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// buildCurves assembles the spec's curve tables from the aggregated
// cells.
func buildCurves(spec *Spec, cells []CellSummary) ([]CurveTable, error) {
	byExp := map[string][]CellSummary{}
	for _, c := range cells {
		byExp[c.Experiment] = append(byExp[c.Experiment], c)
	}
	var out []CurveTable
	for _, e := range spec.Experiments {
		if e.Curve == nil {
			continue
		}
		for _, y := range e.Curve.Y {
			tbl := CurveTable{Experiment: e.Name, X: e.Curve.X, Y: y}
			series := map[string][]CurvePoint{}
			var labels []string
			for _, c := range byExp[e.Name] {
				x, ok := axisFloat(c.Axis[e.Curve.X])
				if !ok {
					return nil, fmt.Errorf("grid: experiment %q: curve x axis %q has non-numeric value %v",
						e.Name, e.Curve.X, c.Axis[e.Curve.X])
				}
				ms, ok := c.Metrics[y]
				if !ok {
					return nil, fmt.Errorf("grid: experiment %q: cell %s has no metric %q for its curve",
						e.Name, c.Name, y)
				}
				label := ""
				if e.Curve.Series != "" {
					label = fmt.Sprintf("%v", c.Axis[e.Curve.Series])
				}
				if _, seen := series[label]; !seen {
					labels = append(labels, label)
				}
				series[label] = append(series[label], CurvePoint{
					X: x, Y: ms.Median, IQR: ms.IQR, N: ms.N, Cell: c.Name,
				})
			}
			sort.Strings(labels)
			for _, label := range labels {
				pts := series[label]
				sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
				tbl.Series = append(tbl.Series, CurveSeries{Label: label, Points: pts})
			}
			out = append(out, tbl)
		}
	}
	return out, nil
}

// WriteFile writes the summary as indented JSON, validating first.
func (s *Summary) WriteFile(path string) error {
	if err := s.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSummary reads and validates a summary file.
func LoadSummary(path string) (*Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("grid: parse summary %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("grid: %s: %w", path, err)
	}
	return &s, nil
}

// Validate checks a summary's internal consistency: schema tag, at
// least one cell, unique cell names, finite metric values, coherent
// quartile bounds, and every load cell carrying the core write-path
// metrics (throughput and p50) the trajectory is built on.
func (s *Summary) Validate() error {
	if s.Schema != Schema {
		return fmt.Errorf("summary schema %q, want %q", s.Schema, Schema)
	}
	if len(s.Cells) == 0 {
		return fmt.Errorf("summary has no cells")
	}
	names := map[string]bool{}
	for _, c := range s.Cells {
		if c.Name == "" {
			return fmt.Errorf("cell with empty name")
		}
		if names[c.Name] {
			return fmt.Errorf("duplicate cell %q", c.Name)
		}
		names[c.Name] = true
		if c.Repeats < 1 {
			return fmt.Errorf("cell %s: %d repeats", c.Name, c.Repeats)
		}
		if len(c.Metrics) == 0 {
			return fmt.Errorf("cell %s has no metrics", c.Name)
		}
		for k, m := range c.Metrics {
			for what, v := range map[string]float64{"median": m.Median, "iqr": m.IQR, "min": m.Min, "max": m.Max} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("cell %s metric %s: non-finite %s", c.Name, k, what)
				}
			}
			if m.N < 1 || m.N > c.Repeats {
				return fmt.Errorf("cell %s metric %s: n=%d outside [1, %d]", c.Name, k, m.N, c.Repeats)
			}
			if m.IQR < 0 || m.Min > m.Max || m.Median < m.Min || m.Median > m.Max {
				return fmt.Errorf("cell %s metric %s: incoherent summary %+v", c.Name, k, m)
			}
		}
		if c.Kind == "load" {
			for _, want := range []string{"throughput_tx_s", "latency_p50_us"} {
				ms, ok := c.Metrics[want]
				if !ok {
					return fmt.Errorf("load cell %s missing %s", c.Name, want)
				}
				if ms.Median <= 0 {
					return fmt.Errorf("load cell %s: %s median %v not positive", c.Name, want, ms.Median)
				}
			}
		}
	}
	for _, tbl := range s.Curves {
		if len(tbl.Series) == 0 {
			return fmt.Errorf("curve %s/%s has no series", tbl.Experiment, tbl.Y)
		}
		for _, sr := range tbl.Series {
			if len(sr.Points) == 0 {
				return fmt.Errorf("curve %s/%s series %q has no points", tbl.Experiment, tbl.Y, sr.Label)
			}
			for _, p := range sr.Points {
				if !names[p.Cell] {
					return fmt.Errorf("curve %s/%s references unknown cell %q", tbl.Experiment, tbl.Y, p.Cell)
				}
			}
		}
	}
	return nil
}

// Cell returns the named cell summary, or nil.
func (s *Summary) Cell(name string) *CellSummary {
	for i := range s.Cells {
		if s.Cells[i].Name == name {
			return &s.Cells[i]
		}
	}
	return nil
}
