package grid

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func appendRawLine(t *testing.T, path, line string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(line + "\n"); err != nil {
		t.Fatal(err)
	}
}

func testSpec(t *testing.T, doc string) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpecExpansion(t *testing.T) {
	s := testSpec(t, `{
		"schema": "flexgrid/experiments/v1",
		"repeats": 2,
		"common": {"groups": 3, "workers": 8},
		"experiments": [
			{"name": "sweep",
			 "config": {"workers": 16},
			 "axes": {"batch": [1, 64], "transport": ["inmem", "wan"]}},
			{"name": "solo", "kind": "simbench", "repeats": 5}
		]
	}`)
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("expanded %d cells, want 5 (2×2 + 1)", len(cells))
	}
	// Axes expand in sorted-key order, values in listed order.
	wantNames := []string{
		"sweep/batch=1,transport=inmem",
		"sweep/batch=1,transport=wan",
		"sweep/batch=64,transport=inmem",
		"sweep/batch=64,transport=wan",
		"solo",
	}
	for i, want := range wantNames {
		if cells[i].Name != want {
			t.Errorf("cell %d = %q, want %q", i, cells[i].Name, want)
		}
	}
	// Merge precedence: common < config < axis.
	c0 := cells[0]
	if c0.Params["groups"] != float64(3) || c0.Params["workers"] != float64(16) || c0.Params["batch"] != float64(1) {
		t.Fatalf("merged params wrong: %v", c0.Params)
	}
	if cells[4].Repeats != 5 || cells[0].Repeats != 2 {
		t.Fatalf("repeat override lost: %d / %d", cells[4].Repeats, cells[0].Repeats)
	}
	if cells[4].Kind != "simbench" || cells[0].Kind != "load" {
		t.Fatalf("kinds wrong: %q / %q", cells[4].Kind, cells[0].Kind)
	}
}

func TestSpecRejections(t *testing.T) {
	cases := map[string]string{
		"bad schema":     `{"schema": "nope/v1", "experiments": [{"name": "a"}]}`,
		"no experiments": `{"schema": "flexgrid/experiments/v1", "experiments": []}`,
		"dup name":       `{"schema": "flexgrid/experiments/v1", "experiments": [{"name": "a"}, {"name": "a"}]}`,
		"bad kind":       `{"schema": "flexgrid/experiments/v1", "experiments": [{"name": "a", "kind": "nope"}]}`,
		"unknown field":  `{"schema": "flexgrid/experiments/v1", "experiment": []}`,
		"curve non-axis": `{"schema": "flexgrid/experiments/v1", "experiments": [{"name": "a", "curve": {"x": "batch", "y": ["throughput_tx_s"]}}]}`,
	}
	for label, doc := range cases {
		if _, err := ParseSpec([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestDecodeParamsRejectsUnknownKeys(t *testing.T) {
	if _, err := decodeParams("c", map[string]any{"bacth": 64}); err == nil {
		t.Fatal("typo'd parameter accepted")
	}
	p, err := decodeParams("c", map[string]any{"batch": float64(64), "transport": "wan"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.loadConfig(0)
	if cfg.MaxBatch != 64 || cfg.Transport != "wan" {
		t.Fatalf("conversion wrong: %+v", cfg)
	}
	// Repeats get distinct seeds, deterministically.
	if p.loadConfig(0).Seed == p.loadConfig(1).Seed {
		t.Fatal("repeats share a workload seed")
	}
	if p.loadConfig(1).Seed != p.loadConfig(1).Seed {
		t.Fatal("repeat seed not deterministic")
	}
}

func testCell(name string, gate *GateSpec) Cell {
	return Cell{Experiment: name, Name: name, Kind: "load", Repeats: 3, Gate: gate}
}

func summaryFrom(t *testing.T, cells ...CellSummary) *Summary {
	t.Helper()
	s := &Summary{Schema: Schema, Commit: "test", Date: "2026-01-01T00:00:00Z", Cells: cells}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func loadCellSummary(name string, throughput, iqr float64, gate *GateSpec) CellSummary {
	return CellSummary{
		Name: name, Experiment: name, Kind: "load", Repeats: 3, Gate: gate,
		Metrics: map[string]MetricSummary{
			"throughput_tx_s": {Median: throughput, IQR: iqr, Min: throughput - iqr, Max: throughput + iqr, N: 3},
			"latency_p50_us":  {Median: 100, IQR: 5, Min: 95, Max: 105, N: 3},
			"latency_p99_us":  {Median: 500, IQR: 20, Min: 480, Max: 520, N: 3},
		},
	}
}

func TestAggregateMedianIQR(t *testing.T) {
	cell := testCell("c", nil)
	got := aggregate(cell, []map[string]float64{
		{"throughput_tx_s": 100, "latency_p50_us": 10},
		{"throughput_tx_s": 110, "latency_p50_us": 12},
		{"throughput_tx_s": 130, "latency_p50_us": 11},
		// A metric present in only some repeats aggregates over those.
		{"throughput_tx_s": 120, "latency_p50_us": 13, "stage_execute_p50_ns": 400},
	})
	tp := got.Metrics["throughput_tx_s"]
	if tp.Median != 115 || tp.N != 4 || tp.Min != 100 || tp.Max != 130 {
		t.Fatalf("throughput summary wrong: %+v", tp)
	}
	if tp.IQR != 15 { // q1 107.5, q3 122.5
		t.Fatalf("throughput IQR = %v, want 15", tp.IQR)
	}
	st := got.Metrics["stage_execute_p50_ns"]
	if st.N != 1 || st.Median != 400 {
		t.Fatalf("partial metric summary wrong: %+v", st)
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := summaryFrom(t, loadCellSummary("a", 1000, 20, nil))

	// Identical candidate: clean pass.
	cand := summaryFrom(t, loadCellSummary("a", 1000, 20, nil))
	if v := Compare(base, cand); !v.OK || v.Checked != 3 || len(v.Regressions) != 0 {
		t.Fatalf("identical compare failed: %+v", v)
	}

	// Within the noise band (IQR 20 → ±60, rel floor ±100): passes.
	cand = summaryFrom(t, loadCellSummary("a", 950, 20, nil))
	if v := Compare(base, cand); !v.OK {
		t.Fatalf("in-band noise flagged: %+v", v.Regressions)
	}

	// A 20% throughput regression must fail under the default gate.
	cand = summaryFrom(t, loadCellSummary("a", 800, 20, nil))
	v := Compare(base, cand)
	if v.OK || len(v.Regressions) != 1 || v.Regressions[0].Metric != "throughput_tx_s" {
		t.Fatalf("20%% regression passed: %+v", v)
	}
	if math.Abs(v.Regressions[0].Rel-0.2) > 1e-9 {
		t.Fatalf("regression rel = %v, want 0.2", v.Regressions[0].Rel)
	}

	// Lower-is-better direction: latency up 20% fails, throughput up
	// 20% is an improvement, not a regression.
	worse := loadCellSummary("a", 1200, 20, nil)
	worse.Metrics["latency_p99_us"] = MetricSummary{Median: 600, IQR: 20, Min: 580, Max: 620, N: 3}
	v = Compare(base, summaryFrom(t, worse))
	if v.OK || len(v.Regressions) != 1 || v.Regressions[0].Metric != "latency_p99_us" {
		t.Fatalf("latency regression missed: %+v", v)
	}
	if len(v.Improvements) != 1 || v.Improvements[0].Metric != "throughput_tx_s" {
		t.Fatalf("improvement not reported: %+v", v.Improvements)
	}

	// Noisy cells earn wider bands: the same 20% drop passes when the
	// IQR is huge.
	cand = summaryFrom(t, loadCellSummary("a", 800, 200, nil))
	if v := Compare(base, cand); !v.OK {
		t.Fatalf("20%% drop inside 3×IQR flagged: %+v", v.Regressions)
	}

	// A custom gate can relax the floor.
	lax := &GateSpec{Metrics: []string{"throughput_tx_s"}, MinRel: 0.5}
	cand = summaryFrom(t, loadCellSummary("a", 800, 20, lax))
	if v := Compare(base, cand); !v.OK {
		t.Fatalf("lax gate still failed: %+v", v.Regressions)
	}

	// A missing cell or metric fails loudly.
	other := summaryFrom(t, loadCellSummary("b", 1000, 20, nil))
	if v := Compare(base, other); v.OK || len(v.Missing) != 1 {
		t.Fatalf("missing cell passed: %+v", v)
	}
	noTp := loadCellSummary("a", 1000, 20, nil)
	delete(noTp.Metrics, "throughput_tx_s")
	// (Built by hand: a load cell without throughput would not pass
	// Summary.Validate, but the gate must still fail it explicitly.)
	cand = &Summary{Schema: Schema, Commit: "test", Date: "d", Cells: []CellSummary{noTp}}
	if v := Compare(base, cand); v.OK || len(v.Missing) != 1 {
		t.Fatalf("missing metric passed: %+v", v)
	}
}

func TestSummaryValidation(t *testing.T) {
	good := summaryFrom(t, loadCellSummary("a", 1000, 20, nil))
	bad := *good
	bad.Schema = "nope"
	if err := bad.Validate(); err == nil {
		t.Error("bad schema accepted")
	}
	dup := summaryFrom(t, loadCellSummary("a", 1000, 20, nil))
	dup.Cells = append(dup.Cells, dup.Cells[0])
	if err := dup.Validate(); err == nil {
		t.Error("duplicate cell accepted")
	}
	nan := summaryFrom(t, loadCellSummary("a", 1000, 20, nil))
	nan.Cells[0].Metrics["x"] = MetricSummary{Median: math.NaN(), N: 1}
	if err := nan.Validate(); err == nil {
		t.Error("NaN metric accepted")
	}
	incoherent := summaryFrom(t, loadCellSummary("a", 1000, 20, nil))
	incoherent.Cells[0].Metrics["x"] = MetricSummary{Median: 5, Min: 10, Max: 20, N: 1}
	if err := incoherent.Validate(); err == nil {
		t.Error("median below min accepted")
	}
	zeroTp := summaryFrom(t, loadCellSummary("a", 1000, 20, nil))
	zeroTp.Cells[0].Metrics["throughput_tx_s"] = MetricSummary{Median: 0, N: 1}
	if err := zeroTp.Validate(); err == nil {
		t.Error("zero-throughput load cell accepted")
	}
}

func TestSummaryFileRoundTrip(t *testing.T) {
	s := summaryFrom(t, loadCellSummary("a", 1000, 20, nil))
	path := filepath.Join(t.TempDir(), "summary.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Commit != "test" || len(back.Cells) != 1 || back.Cells[0].Metrics["throughput_tx_s"].Median != 1000 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestHistoryRoundTripAndValidation(t *testing.T) {
	s := summaryFrom(t, loadCellSummary("a", 1000, 20, nil), loadCellSummary("b", 2000, 30, nil))
	e := HistoryFromSummary(s)
	if e.Schema != HistorySchema || len(e.Cells) != 2 {
		t.Fatalf("history entry wrong: %+v", e)
	}
	if e.Cells["a"]["throughput_tx_s"] != 1000 || e.Cells["b"]["latency_p50_us"] != 100 {
		t.Fatalf("medians lost: %+v", e.Cells)
	}

	path := filepath.Join(t.TempDir(), "hist.jsonl")
	if err := AppendHistory(path, e); err != nil {
		t.Fatal(err)
	}
	e2 := e
	e2.Commit = "test2"
	if err := AppendHistory(path, e2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Commit != "test" || got[1].Commit != "test2" {
		t.Fatalf("history read back %d entries: %+v", len(got), got)
	}
	if got[1].Cells["a"]["throughput_tx_s"] != 1000 {
		t.Fatalf("history medians lost: %+v", got[1].Cells)
	}

	// Schema violations are rejected on append and on read.
	if err := AppendHistory(path, HistoryEntry{Schema: "nope"}); err == nil {
		t.Fatal("bad schema appended")
	}
	badPath := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := AppendHistory(badPath, e); err != nil {
		t.Fatal(err)
	}
	appendRawLine(t, badPath, `{"schema":"flexgrid-history/v1","commit":"x","date":"d","cells":{}}`)
	if _, err := ReadHistory(badPath); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("empty-cells line accepted: %v", err)
	}
}
