// Package overlay implements the communication overlays used by the
// protocols: the complete directed acyclic graph (C-DAG) used by FlexCast
// and the tree overlays used by the hierarchical protocol, together with
// the greedy nearest-neighbour chain construction the paper uses to build
// the C-DAG rank orders O1 and O2 (§5.4).
package overlay

import (
	"fmt"
	"sort"

	"flexcast/amcast"
)

// CDAG is a complete directed acyclic graph over a set of groups: each
// group has a unique rank in 0..n-1 and there is a directed edge from every
// group of rank i to every group of rank j > i. "Ancestors" of g are the
// groups ranked below g, "descendants" the groups ranked above g (paper
// §4.1).
type CDAG struct {
	order []amcast.GroupID       // order[rank] = group
	rank  map[amcast.GroupID]int // group -> rank
}

// NewCDAG builds a C-DAG whose rank order is the given group sequence:
// order[0] is the lowest-ranked group (everyone's potential ancestor).
func NewCDAG(order []amcast.GroupID) (*CDAG, error) {
	if len(order) == 0 {
		return nil, fmt.Errorf("overlay: empty rank order")
	}
	rank := make(map[amcast.GroupID]int, len(order))
	for i, g := range order {
		if g == amcast.NoGroup {
			return nil, fmt.Errorf("overlay: rank %d uses reserved group id 0", i)
		}
		if _, dup := rank[g]; dup {
			return nil, fmt.Errorf("overlay: group %d appears twice in rank order", g)
		}
		rank[g] = i
	}
	return &CDAG{order: append([]amcast.GroupID(nil), order...), rank: rank}, nil
}

// MustCDAG is NewCDAG for known-good literals; it panics on error.
func MustCDAG(order []amcast.GroupID) *CDAG {
	d, err := NewCDAG(order)
	if err != nil {
		panic(err)
	}
	return d
}

// Len returns the number of groups.
func (d *CDAG) Len() int { return len(d.order) }

// Order returns the rank order (a copy).
func (d *CDAG) Order() []amcast.GroupID {
	return append([]amcast.GroupID(nil), d.order...)
}

// Groups returns the member groups sorted by id.
func (d *CDAG) Groups() []amcast.GroupID {
	gs := d.Order()
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	return gs
}

// Contains reports whether g is part of the overlay.
func (d *CDAG) Contains(g amcast.GroupID) bool {
	_, ok := d.rank[g]
	return ok
}

// Rank returns g's rank; it panics if g is not in the overlay.
func (d *CDAG) Rank(g amcast.GroupID) int {
	r, ok := d.rank[g]
	if !ok {
		panic(fmt.Sprintf("overlay: group %d not in C-DAG", g))
	}
	return r
}

// GroupAt returns the group with the given rank.
func (d *CDAG) GroupAt(rank int) amcast.GroupID { return d.order[rank] }

// Lca returns the lowest-ranked group among dst (m.lca() in Algorithm 1).
// dst must be non-empty and contained in the overlay.
func (d *CDAG) Lca(dst []amcast.GroupID) amcast.GroupID {
	if len(dst) == 0 {
		panic("overlay: Lca of empty destination set")
	}
	best := dst[0]
	bestRank := d.Rank(best)
	for _, g := range dst[1:] {
		if r := d.Rank(g); r < bestRank {
			best, bestRank = g, r
		}
	}
	return best
}

// IsAncestor reports whether a is an ancestor of g (strictly lower rank).
func (d *CDAG) IsAncestor(a, g amcast.GroupID) bool { return d.Rank(a) < d.Rank(g) }

// Ancestors returns the groups ranked strictly below g, in rank order.
func (d *CDAG) Ancestors(g amcast.GroupID) []amcast.GroupID {
	return append([]amcast.GroupID(nil), d.order[:d.Rank(g)]...)
}

// Descendants returns the groups ranked strictly above g, in rank order.
func (d *CDAG) Descendants(g amcast.GroupID) []amcast.GroupID {
	return append([]amcast.GroupID(nil), d.order[d.Rank(g)+1:]...)
}

// SortByRank sorts groups ascending by rank, in place, and returns them.
// Protocol engines use it to emit envelopes in a deterministic order.
func (d *CDAG) SortByRank(gs []amcast.GroupID) []amcast.GroupID {
	sort.Slice(gs, func(i, j int) bool { return d.Rank(gs[i]) < d.Rank(gs[j]) })
	return gs
}

// GreedyChain implements the paper's O1/O2 construction rule (§5.4): start
// from a chosen group, then repeatedly append the unvisited group closest
// to the previously appended one. rtt reports the symmetric distance
// between two groups; ties break toward the smaller group id so the result
// is deterministic.
func GreedyChain(start amcast.GroupID, groups []amcast.GroupID, rtt func(a, b amcast.GroupID) int64) ([]amcast.GroupID, error) {
	remaining := make(map[amcast.GroupID]bool, len(groups))
	for _, g := range groups {
		remaining[g] = true
	}
	if !remaining[start] {
		return nil, fmt.Errorf("overlay: start group %d not in group set", start)
	}
	chain := []amcast.GroupID{start}
	delete(remaining, start)
	cur := start
	for len(remaining) > 0 {
		var next amcast.GroupID
		var best int64 = -1
		// Deterministic iteration: visit candidates in id order.
		cands := make([]amcast.GroupID, 0, len(remaining))
		for g := range remaining {
			cands = append(cands, g)
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		for _, g := range cands {
			d := rtt(cur, g)
			if best < 0 || d < best {
				best, next = d, g
			}
		}
		chain = append(chain, next)
		delete(remaining, next)
		cur = next
	}
	return chain, nil
}
