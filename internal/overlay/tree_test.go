package overlay

import (
	"reflect"
	"testing"

	"flexcast/amcast"
)

// testTree builds the tree
//
//	     1
//	   / | \
//	  2  3  4
//	 / \     \
//	5   6     7
func testTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := NewTree(1, map[amcast.GroupID][]amcast.GroupID{
		1: {2, 3, 4},
		2: {5, 6},
		4: {7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTreeValidation(t *testing.T) {
	tests := []struct {
		name     string
		root     amcast.GroupID
		children map[amcast.GroupID][]amcast.GroupID
		wantErr  bool
	}{
		{"valid", 1, map[amcast.GroupID][]amcast.GroupID{1: {2}}, false},
		{"single node", 1, nil, false},
		{"cycle", 1, map[amcast.GroupID][]amcast.GroupID{1: {2}, 2: {1}}, true},
		{"duplicate child", 1, map[amcast.GroupID][]amcast.GroupID{1: {2, 3}, 3: {2}}, true},
		{"unreachable parent", 1, map[amcast.GroupID][]amcast.GroupID{1: {2}, 9: {3}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewTree(tt.root, tt.children)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewTree error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTreeBasics(t *testing.T) {
	tr := testTree(t)
	if tr.Root() != 1 {
		t.Errorf("Root = %d, want 1", tr.Root())
	}
	if tr.Len() != 7 {
		t.Errorf("Len = %d, want 7", tr.Len())
	}
	if got := tr.Groups(); !reflect.DeepEqual(got, gs(1, 2, 3, 4, 5, 6, 7)) {
		t.Errorf("Groups = %v", got)
	}
	if p, ok := tr.Parent(5); !ok || p != 2 {
		t.Errorf("Parent(5) = %d,%v, want 2,true", p, ok)
	}
	if _, ok := tr.Parent(1); ok {
		t.Error("root must have no parent")
	}
	if got := tr.Children(2); !reflect.DeepEqual(got, gs(5, 6)) {
		t.Errorf("Children(2) = %v, want [5 6]", got)
	}
	wantDepth := map[amcast.GroupID]int{1: 0, 2: 1, 3: 1, 4: 1, 5: 2, 6: 2, 7: 2}
	for g, d := range wantDepth {
		if got := tr.Depth(g); got != d {
			t.Errorf("Depth(%d) = %d, want %d", g, got, d)
		}
	}
	if got := tr.InnerNodes(); !reflect.DeepEqual(got, gs(1, 2, 4)) {
		t.Errorf("InnerNodes = %v, want [1 2 4]", got)
	}
}

func TestTreeSubtree(t *testing.T) {
	tr := testTree(t)
	if !tr.InSubtree(2, 6) || !tr.InSubtree(2, 2) {
		t.Error("subtree of 2 must contain 2 and 6")
	}
	if tr.InSubtree(2, 7) {
		t.Error("subtree of 2 must not contain 7")
	}
	if !tr.SubtreeHasAny(4, gs(7)) || tr.SubtreeHasAny(4, gs(5, 6, 3)) {
		t.Error("SubtreeHasAny(4) wrong")
	}
}

func TestTreeLca(t *testing.T) {
	tr := testTree(t)
	tests := []struct {
		dst  []amcast.GroupID
		want amcast.GroupID
	}{
		{gs(5), 5},
		{gs(5, 6), 2},
		{gs(5, 2), 2},
		{gs(5, 7), 1},
		{gs(3, 4), 1},
		{gs(5, 6, 2), 2},
		{gs(6, 7, 3), 1},
	}
	for _, tt := range tests {
		if got := tr.Lca(tt.dst); got != tt.want {
			t.Errorf("Lca(%v) = %d, want %d", tt.dst, got, tt.want)
		}
	}
}

func TestTreePathLen(t *testing.T) {
	tr := testTree(t)
	tests := []struct {
		a, b amcast.GroupID
		want int
	}{
		{5, 5, 0},
		{5, 6, 2},
		{5, 2, 1},
		{5, 7, 4},
		{1, 7, 2},
	}
	for _, tt := range tests {
		if got := tr.PathLen(tt.a, tt.b); got != tt.want {
			t.Errorf("PathLen(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestTreeLcaPanicsOnEmpty(t *testing.T) {
	tr := testTree(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Lca(nil) did not panic")
		}
	}()
	tr.Lca(nil)
}
