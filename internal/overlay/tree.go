package overlay

import (
	"fmt"
	"sort"

	"flexcast/amcast"
)

// Tree is a rooted tree overlay for the hierarchical (ByzCast-style)
// protocol: a group may only exchange messages with its parent and
// children. Messages enter at the lowest common ancestor of their
// destination set and are forwarded down the tree.
type Tree struct {
	root     amcast.GroupID
	parent   map[amcast.GroupID]amcast.GroupID
	children map[amcast.GroupID][]amcast.GroupID
	depth    map[amcast.GroupID]int
	// subtree[g] is the set of groups in the subtree rooted at g
	// (including g itself).
	subtree map[amcast.GroupID]map[amcast.GroupID]bool
}

// NewTree builds a tree from a root and a parent->children adjacency map.
// Every group other than the root must appear exactly once as a child.
func NewTree(root amcast.GroupID, children map[amcast.GroupID][]amcast.GroupID) (*Tree, error) {
	t := &Tree{
		root:     root,
		parent:   make(map[amcast.GroupID]amcast.GroupID),
		children: make(map[amcast.GroupID][]amcast.GroupID),
		depth:    make(map[amcast.GroupID]int),
		subtree:  make(map[amcast.GroupID]map[amcast.GroupID]bool),
	}
	for p, cs := range children {
		sorted := append([]amcast.GroupID(nil), cs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		t.children[p] = sorted
	}
	// BFS from the root: assign parents and depths, detect cycles and
	// unreachable groups.
	seen := map[amcast.GroupID]bool{root: true}
	queue := []amcast.GroupID{root}
	t.depth[root] = 0
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, c := range t.children[p] {
			if seen[c] {
				return nil, fmt.Errorf("overlay: group %d reachable twice in tree", c)
			}
			seen[c] = true
			t.parent[c] = p
			t.depth[c] = t.depth[p] + 1
			queue = append(queue, c)
		}
	}
	for p := range children {
		if !seen[p] {
			return nil, fmt.Errorf("overlay: group %d has children but is not reachable from root %d", p, root)
		}
	}
	// Subtree sets, computed bottom-up over the BFS order reversed.
	order := t.bfsOrder()
	for i := len(order) - 1; i >= 0; i-- {
		g := order[i]
		set := map[amcast.GroupID]bool{g: true}
		for _, c := range t.children[g] {
			for m := range t.subtree[c] {
				set[m] = true
			}
		}
		t.subtree[g] = set
	}
	return t, nil
}

// MustTree is NewTree for known-good literals; it panics on error.
func MustTree(root amcast.GroupID, children map[amcast.GroupID][]amcast.GroupID) *Tree {
	t, err := NewTree(root, children)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tree) bfsOrder() []amcast.GroupID {
	order := []amcast.GroupID{t.root}
	for i := 0; i < len(order); i++ {
		order = append(order, t.children[order[i]]...)
	}
	return order
}

// Root returns the tree root.
func (t *Tree) Root() amcast.GroupID { return t.root }

// Len returns the number of groups in the tree.
func (t *Tree) Len() int { return len(t.subtree) }

// Groups returns the member groups sorted by id.
func (t *Tree) Groups() []amcast.GroupID {
	gs := make([]amcast.GroupID, 0, len(t.subtree))
	for g := range t.subtree {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	return gs
}

// Contains reports whether g is part of the tree.
func (t *Tree) Contains(g amcast.GroupID) bool {
	_, ok := t.subtree[g]
	return ok
}

// Parent returns g's parent and false if g is the root.
func (t *Tree) Parent(g amcast.GroupID) (amcast.GroupID, bool) {
	p, ok := t.parent[g]
	return p, ok
}

// Children returns g's children in ascending id order.
func (t *Tree) Children(g amcast.GroupID) []amcast.GroupID {
	return append([]amcast.GroupID(nil), t.children[g]...)
}

// Depth returns g's distance from the root.
func (t *Tree) Depth(g amcast.GroupID) int { return t.depth[g] }

// InnerNodes returns the non-leaf groups sorted by id. The paper compares
// trees by their number of inner nodes (§5.4).
func (t *Tree) InnerNodes() []amcast.GroupID {
	var inner []amcast.GroupID
	for g, cs := range t.children {
		if len(cs) > 0 {
			inner = append(inner, g)
		}
	}
	sort.Slice(inner, func(i, j int) bool { return inner[i] < inner[j] })
	return inner
}

// InSubtree reports whether member is in the subtree rooted at g.
func (t *Tree) InSubtree(g, member amcast.GroupID) bool { return t.subtree[g][member] }

// SubtreeHasAny reports whether any destination lies in the subtree rooted
// at g; the hierarchical protocol uses it to prune forwarding.
func (t *Tree) SubtreeHasAny(g amcast.GroupID, dst []amcast.GroupID) bool {
	set := t.subtree[g]
	for _, d := range dst {
		if set[d] {
			return true
		}
	}
	return false
}

// Lca returns the lowest common ancestor of dst: the deepest group whose
// subtree contains every destination. A multicast enters the tree there
// (ByzCast's entry rule).
func (t *Tree) Lca(dst []amcast.GroupID) amcast.GroupID {
	if len(dst) == 0 {
		panic("overlay: tree Lca of empty destination set")
	}
	cur := dst[0]
	for _, d := range dst[1:] {
		cur = t.lca2(cur, d)
	}
	return cur
}

func (t *Tree) lca2(a, b amcast.GroupID) amcast.GroupID {
	for t.depth[a] > t.depth[b] {
		a = t.parent[a]
	}
	for t.depth[b] > t.depth[a] {
		b = t.parent[b]
	}
	for a != b {
		a = t.parent[a]
		b = t.parent[b]
	}
	return a
}

// PathLen returns the number of tree edges between a and b; the
// hierarchical protocol's delivery latency is governed by these path
// lengths.
func (t *Tree) PathLen(a, b amcast.GroupID) int {
	l := t.lca2(a, b)
	return t.depth[a] + t.depth[b] - 2*t.depth[l]
}
