package overlay

import (
	"reflect"
	"testing"
	"testing/quick"

	"flexcast/amcast"
)

func gs(ids ...int) []amcast.GroupID {
	out := make([]amcast.GroupID, len(ids))
	for i, id := range ids {
		out[i] = amcast.GroupID(id)
	}
	return out
}

func TestNewCDAGValidation(t *testing.T) {
	tests := []struct {
		name    string
		order   []amcast.GroupID
		wantErr bool
	}{
		{"valid", gs(3, 1, 2), false},
		{"single", gs(7), false},
		{"empty", nil, true},
		{"duplicate", gs(1, 2, 1), true},
		{"reserved zero id", gs(1, 0, 2), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewCDAG(tt.order)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewCDAG(%v) error = %v, wantErr %v", tt.order, err, tt.wantErr)
			}
		})
	}
}

func TestCDAGRanksAndRelations(t *testing.T) {
	d := MustCDAG(gs(8, 7, 6, 5))
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	wantRanks := map[amcast.GroupID]int{8: 0, 7: 1, 6: 2, 5: 3}
	for g, r := range wantRanks {
		if got := d.Rank(g); got != r {
			t.Errorf("Rank(%d) = %d, want %d", g, got, r)
		}
		if got := d.GroupAt(r); got != g {
			t.Errorf("GroupAt(%d) = %d, want %d", r, got, g)
		}
	}
	if !d.IsAncestor(8, 5) || d.IsAncestor(5, 8) {
		t.Error("ancestor relation does not follow rank order")
	}
	if got := d.Ancestors(6); !reflect.DeepEqual(got, gs(8, 7)) {
		t.Errorf("Ancestors(6) = %v, want [8 7]", got)
	}
	if got := d.Descendants(6); !reflect.DeepEqual(got, gs(5)) {
		t.Errorf("Descendants(6) = %v, want [5]", got)
	}
	if got := d.Descendants(5); len(got) != 0 {
		t.Errorf("Descendants(5) = %v, want empty", got)
	}
}

func TestCDAGLca(t *testing.T) {
	d := MustCDAG(gs(8, 7, 6, 5, 2, 1))
	tests := []struct {
		dst  []amcast.GroupID
		want amcast.GroupID
	}{
		{gs(5), 5},
		{gs(1, 2), 2},
		{gs(1, 5, 7), 7},
		{gs(8, 1), 8},
		{gs(6, 5, 2, 1), 6},
	}
	for _, tt := range tests {
		if got := d.Lca(tt.dst); got != tt.want {
			t.Errorf("Lca(%v) = %d, want %d", tt.dst, got, tt.want)
		}
	}
}

func TestCDAGLcaPanicsOnEmpty(t *testing.T) {
	d := MustCDAG(gs(1, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("Lca(nil) did not panic")
		}
	}()
	d.Lca(nil)
}

func TestCDAGRankPanicsOnUnknownGroup(t *testing.T) {
	d := MustCDAG(gs(1, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("Rank(99) did not panic")
		}
	}()
	d.Rank(99)
}

func TestSortByRank(t *testing.T) {
	d := MustCDAG(gs(8, 7, 6, 5))
	got := d.SortByRank(gs(5, 8, 6))
	if !reflect.DeepEqual(got, gs(8, 6, 5)) {
		t.Fatalf("SortByRank = %v, want [8 6 5]", got)
	}
}

func TestGreedyChain(t *testing.T) {
	// Distances on a line: 1-2-3-4 with unit spacing; chain from 3 visits
	// nearest-first with ties toward smaller ids.
	dist := func(a, b amcast.GroupID) int64 {
		d := int64(a) - int64(b)
		if d < 0 {
			d = -d
		}
		return d
	}
	chain, err := GreedyChain(3, gs(1, 2, 3, 4), dist)
	if err != nil {
		t.Fatal(err)
	}
	// From 3: nearest is 2 or 4 (tie -> 2), then from 2: 1, then 4.
	if !reflect.DeepEqual(chain, gs(3, 2, 1, 4)) {
		t.Fatalf("chain = %v, want [3 2 1 4]", chain)
	}
}

func TestGreedyChainUnknownStart(t *testing.T) {
	if _, err := GreedyChain(9, gs(1, 2), func(a, b amcast.GroupID) int64 { return 1 }); err == nil {
		t.Fatal("expected error for unknown start group")
	}
}

func TestGreedyChainIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		// Pseudo-random symmetric distances derived from the seed.
		dist := func(a, b amcast.GroupID) int64 {
			x := int64(a*31+b*17) ^ seed
			y := int64(b*31+a*17) ^ seed
			v := (x + y) % 1000
			if v < 0 {
				v = -v
			}
			return v + 1
		}
		groups := gs(1, 2, 3, 4, 5, 6, 7)
		chain, err := GreedyChain(4, groups, dist)
		if err != nil || len(chain) != len(groups) {
			return false
		}
		seen := make(map[amcast.GroupID]bool)
		for _, g := range chain {
			if seen[g] {
				return false
			}
			seen[g] = true
		}
		return chain[0] == 4 && len(seen) == len(groups)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
