package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is an HDR-style latency histogram: values are bucketed into
// powers of two subdivided linearly, giving a bounded relative error of
// 1/subBuckets (≈1.6%) at any magnitude with fixed memory and O(1)
// recording. Unlike stats.Recorder — which keeps every sample and is the
// right tool for the paper's bounded 60-second experiment runs — the
// histogram sustains indefinite load (cmd/flexload) without growing, and
// its percentiles are computed exactly from the recorded counts rather
// than approximated from a mean and standard deviation.
//
// All methods are safe for concurrent use: Record is a single atomic
// add, and readers see a (possibly slightly stale but never torn)
// consistent-enough view for reporting.
type Histogram struct {
	counts [nBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	min    atomic.Uint64
	max    atomic.Uint64
}

const (
	// subBucketBits fixes the linear subdivision of each power of two:
	// 64 sub-buckets ⇒ at most 1/64 ≈ 1.6% relative error.
	subBucketBits = 6
	subBuckets    = 1 << subBucketBits
	// maxExp covers values up to 2^41-1 (≈25 days in microseconds).
	maxExp = 40
	// nBuckets: the linear range [0, 64) plus 64 sub-buckets per exponent
	// in [subBucketBits, maxExp].
	nBuckets = (maxExp - subBucketBits + 2) * subBuckets
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxUint64)
	return h
}

// bucketOf maps a value to its bucket index. Values < subBuckets land in
// the linear range one-to-one (exact); larger values are sliced into 64
// linear sub-buckets of their power-of-two range.
func bucketOf(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // v >= 64 ⇒ exp >= 6
	if exp > maxExp {
		exp = maxExp
		v = 1<<(maxExp+1) - 1
	}
	sub := int((v >> (uint(exp) - subBucketBits)) & (subBuckets - 1))
	return (exp-subBucketBits)*subBuckets + subBuckets + sub
}

// bucketHigh returns the largest value mapping to bucket i — the value
// reported for percentiles falling in that bucket, so reported
// percentiles never under-state latency.
func bucketHigh(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	exp := uint(i/subBuckets-1) + subBucketBits
	sub := uint64(i % subBuckets)
	// Bucket i covers [(64+sub) << (exp-6), (64+sub+1) << (exp-6)).
	lo := (uint64(subBuckets) + sub) << (exp - subBucketBits)
	width := uint64(1) << (exp - subBucketBits)
	return lo + width - 1
}

// Record adds one value (typically a latency in microseconds). Negative
// durations are clamped to zero by the caller's conversion; Record
// itself accepts any uint64.
func (h *Histogram) Record(v uint64) {
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the arithmetic mean, or NaN when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return math.NaN()
	}
	return float64(h.sum.Load()) / float64(n)
}

// Min returns the smallest recorded value, or 0 when empty.
func (h *Histogram) Min() uint64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest recorded value, or 0 when empty.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Percentile returns the p-th percentile (0 < p <= 100) by nearest-rank
// over the bucket counts: the upper bound of the bucket containing the
// p-th ranked value (exact rank selection; value resolution bounded by
// the bucket width). Returns 0 when empty.
func (h *Histogram) Percentile(p float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i := 0; i < nBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			hi := bucketHigh(i)
			if m := h.max.Load(); hi > m {
				// The histogram never reports beyond the observed maximum.
				hi = m
			}
			return hi
		}
	}
	return h.max.Load()
}

// Merge adds other's counts into h. Safe for concurrent use with
// writers; the merge is not atomic as a whole, only per bucket.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := 0; i < nBuckets; i++ {
		if c := other.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	if other.count.Load() > 0 {
		for {
			cur := h.min.Load()
			v := other.min.Load()
			if v >= cur || h.min.CompareAndSwap(cur, v) {
				break
			}
		}
		for {
			cur := h.max.Load()
			v := other.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
	}
}

// LatencySummary is a point-in-time percentile snapshot, the unit the
// benchmark subsystem reports and serializes (BENCH_runtime.json).
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_us"`
	Min   uint64  `json:"min_us"`
	P50   uint64  `json:"p50_us"`
	P90   uint64  `json:"p90_us"`
	P99   uint64  `json:"p99_us"`
	P999  uint64  `json:"p999_us"`
	Max   uint64  `json:"max_us"`
}

// Summary snapshots the histogram's percentiles.
func (h *Histogram) Summary() LatencySummary {
	s := LatencySummary{
		Count: h.Count(),
		Min:   h.Min(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.Max(),
	}
	if s.Count > 0 {
		s.Mean = h.Mean()
	}
	return s
}

// PercentileRow formats the 90th/95th/99th percentiles scaled by div,
// matching stats.Recorder.PercentileRow (milliseconds when the recorded
// values are microseconds and div is 1000).
func (h *Histogram) PercentileRow(div float64) string {
	if h.Count() == 0 {
		return "      -       -       -"
	}
	return fmt.Sprintf("%7.1f %7.1f %7.1f",
		float64(h.Percentile(90))/div, float64(h.Percentile(95))/div, float64(h.Percentile(99))/div)
}
