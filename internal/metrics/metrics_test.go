package metrics

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/codec"
)

func fwd(id uint64) amcast.Envelope {
	return amcast.Envelope{
		Kind: amcast.KindFwd,
		From: amcast.GroupNode(1),
		Msg:  amcast.Message{ID: amcast.MsgID(id), Dst: []amcast.GroupID{2}, Payload: []byte("x")},
	}
}

func ack(id uint64) amcast.Envelope {
	return amcast.Envelope{Kind: amcast.KindAck, From: amcast.GroupNode(1),
		Msg: amcast.Message{ID: amcast.MsgID(id), Dst: []amcast.GroupID{2}}}
}

func TestSendAccounting(t *testing.T) {
	r := NewRegistry()
	e := fwd(1)
	r.OnSend(amcast.GroupNode(1), amcast.GroupNode(2), e)
	from := r.Node(amcast.GroupNode(1))
	to := r.Node(amcast.GroupNode(2))
	size := uint64(codec.Size(e))
	if from.EnvsSent != 1 || from.BytesSent != size {
		t.Fatalf("sender counters = %+v", from)
	}
	if to.EnvsReceived != 1 || to.BytesReceived != size || to.PayloadReceived != 1 {
		t.Fatalf("receiver counters = %+v", to)
	}
	if to.ReceivedByKind[amcast.KindFwd] != 1 {
		t.Fatalf("per-kind counters = %+v", to.ReceivedByKind)
	}
}

func TestAuxiliaryKindsNotPayload(t *testing.T) {
	r := NewRegistry()
	r.OnSend(amcast.GroupNode(1), amcast.GroupNode(2), ack(1))
	if got := r.Node(amcast.GroupNode(2)).PayloadReceived; got != 0 {
		t.Fatalf("ACK counted as payload: %d", got)
	}
}

func TestOverhead(t *testing.T) {
	r := NewRegistry()
	// Group 2 receives 4 payload messages, delivers 3 => overhead 25%.
	for i := 0; i < 4; i++ {
		r.OnSend(amcast.GroupNode(1), amcast.GroupNode(2), fwd(uint64(i)))
	}
	for i := 0; i < 3; i++ {
		r.OnDeliver(2)
	}
	if got := r.Node(amcast.GroupNode(2)).Overhead(); got != 0.25 {
		t.Fatalf("overhead = %v, want 0.25", got)
	}
}

func TestOverheadEdgeCases(t *testing.T) {
	var c NodeCounters
	if c.Overhead() != 0 {
		t.Fatal("empty counters must report zero overhead")
	}
	// Delivered > received (flush or locally originated deliveries) clamps
	// to zero rather than going negative.
	c.PayloadReceived = 1
	c.Delivered = 2
	if c.Overhead() != 0 {
		t.Fatalf("overhead = %v, want 0 (clamped)", c.Overhead())
	}
}

func TestAvgReceivedSize(t *testing.T) {
	r := NewRegistry()
	e := fwd(1)
	r.OnSend(amcast.GroupNode(1), amcast.GroupNode(2), e)
	r.OnSend(amcast.GroupNode(1), amcast.GroupNode(2), e)
	want := float64(codec.Size(e))
	if got := r.Node(amcast.GroupNode(2)).AvgReceivedSize(); got != want {
		t.Fatalf("avg size = %v, want %v", got, want)
	}
	var zero NodeCounters
	if zero.AvgReceivedSize() != 0 {
		t.Fatal("empty avg size not zero")
	}
}

func TestNodeReturnsCopy(t *testing.T) {
	r := NewRegistry()
	r.OnSend(amcast.GroupNode(1), amcast.GroupNode(2), fwd(1))
	c := r.Node(amcast.GroupNode(2))
	c.ReceivedByKind[amcast.KindFwd] = 99
	if r.Node(amcast.GroupNode(2)).ReceivedByKind[amcast.KindFwd] == 99 {
		t.Fatal("Node leaked internal map")
	}
	// Unknown nodes return usable zero counters.
	unknown := r.Node(amcast.GroupNode(9))
	if unknown.EnvsReceived != 0 || unknown.ReceivedByKind == nil {
		t.Fatalf("unknown node counters = %+v", unknown)
	}
}

func TestGroupsListsOnlyGroups(t *testing.T) {
	r := NewRegistry()
	r.OnSend(amcast.ClientNode(1), amcast.GroupNode(3), fwd(1))
	r.OnSend(amcast.GroupNode(3), amcast.GroupNode(1), ack(1))
	gs := r.Groups()
	if len(gs) != 2 || gs[0] != 1 || gs[1] != 3 {
		t.Fatalf("Groups = %v, want [1 3]", gs)
	}
}
