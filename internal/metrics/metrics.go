// Package metrics collects per-node communication counters: envelopes and
// bytes sent/received, payload messages received, and application messages
// delivered. These counters back the paper's communication-overhead
// metric (Figures 1 and 9, Table 4: overhead = 1 − delivered/received over
// payload messages) and the message-cost experiment (Figure 8: messages
// per second, average message size, and KB/s per node).
package metrics

import (
	"sort"
	"sync"

	"flexcast/amcast"
	"flexcast/internal/codec"
)

// NodeCounters aggregates traffic for one node.
type NodeCounters struct {
	EnvsSent      uint64
	BytesSent     uint64
	EnvsReceived  uint64
	BytesReceived uint64
	// ReceivedByKind counts received envelopes per kind.
	ReceivedByKind map[amcast.Kind]uint64
	// PayloadReceived counts received envelopes of payload-carrying kinds
	// (REQUEST/MSG/FWD) — the denominator of the overhead metric.
	PayloadReceived uint64
	// Delivered counts application messages delivered by the node — the
	// numerator of the overhead metric.
	Delivered uint64
}

// Overhead returns the paper's communication overhead for this node:
// 1 − delivered/received over payload messages, as a fraction in [0,1].
// Nodes that received nothing report 0.
func (c NodeCounters) Overhead() float64 {
	if c.PayloadReceived == 0 {
		return 0
	}
	ratio := float64(c.Delivered) / float64(c.PayloadReceived)
	if ratio > 1 {
		ratio = 1
	}
	return 1 - ratio
}

// AvgReceivedSize returns the mean received envelope size in bytes.
func (c NodeCounters) AvgReceivedSize() float64 {
	if c.EnvsReceived == 0 {
		return 0
	}
	return float64(c.BytesReceived) / float64(c.EnvsReceived)
}

// Registry holds counters for all nodes of a deployment. Safe for
// concurrent use (the TCP runtime updates it from multiple goroutines; the
// simulator is single-threaded).
type Registry struct {
	mu    sync.Mutex
	nodes map[amcast.NodeID]*NodeCounters
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{nodes: make(map[amcast.NodeID]*NodeCounters)}
}

func (r *Registry) counters(n amcast.NodeID) *NodeCounters {
	c, ok := r.nodes[n]
	if !ok {
		c = &NodeCounters{ReceivedByKind: make(map[amcast.Kind]uint64)}
		r.nodes[n] = c
	}
	return c
}

// OnSend records a transmission; wire size is computed with the real
// codec so simulated and TCP runs report identical numbers.
func (r *Registry) OnSend(from, to amcast.NodeID, env amcast.Envelope) {
	size := uint64(codec.Size(env))
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters(from)
	c.EnvsSent++
	c.BytesSent += size
	d := r.counters(to)
	d.EnvsReceived++
	d.BytesReceived += size
	d.ReceivedByKind[env.Kind]++
	if env.Kind.IsPayload() {
		d.PayloadReceived++
	}
}

// OnDeliver records an application delivery at a group.
func (r *Registry) OnDeliver(g amcast.GroupID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters(amcast.GroupNode(g)).Delivered++
}

// Node returns a copy of the counters for one node.
func (r *Registry) Node(n amcast.NodeID) NodeCounters {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.nodes[n]
	if !ok {
		return NodeCounters{ReceivedByKind: map[amcast.Kind]uint64{}}
	}
	cp := *c
	cp.ReceivedByKind = make(map[amcast.Kind]uint64, len(c.ReceivedByKind))
	for k, v := range c.ReceivedByKind {
		cp.ReceivedByKind[k] = v
	}
	return cp
}

// Groups returns the group nodes present in the registry, sorted.
func (r *Registry) Groups() []amcast.GroupID {
	r.mu.Lock()
	defer r.mu.Unlock()
	var gs []amcast.GroupID
	for n := range r.nodes {
		if !n.IsClient() {
			gs = append(gs, n.Group())
		}
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	return gs
}
