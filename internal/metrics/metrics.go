// Package metrics collects per-node communication counters: envelopes and
// bytes sent/received, payload messages received, and application messages
// delivered. These counters back the paper's communication-overhead
// metric (Figures 1 and 9, Table 4: overhead = 1 − delivered/received over
// payload messages) and the message-cost experiment (Figure 8: messages
// per second, average message size, and KB/s per node).
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"

	"flexcast/amcast"
	"flexcast/internal/codec"
)

// NodeCounters aggregates traffic for one node.
type NodeCounters struct {
	EnvsSent      uint64
	BytesSent     uint64
	EnvsReceived  uint64
	BytesReceived uint64
	// ReceivedByKind counts received envelopes per kind.
	ReceivedByKind map[amcast.Kind]uint64
	// PayloadReceived counts received envelopes of payload-carrying kinds
	// (REQUEST/MSG/FWD) — the denominator of the overhead metric.
	PayloadReceived uint64
	// Delivered counts application messages delivered by the node — the
	// numerator of the overhead metric.
	Delivered uint64
}

// Overhead returns the paper's communication overhead for this node:
// 1 − delivered/received over payload messages, as a fraction in [0,1].
// Nodes that received nothing report 0.
func (c NodeCounters) Overhead() float64 {
	if c.PayloadReceived == 0 {
		return 0
	}
	ratio := float64(c.Delivered) / float64(c.PayloadReceived)
	if ratio > 1 {
		ratio = 1
	}
	return 1 - ratio
}

// AvgReceivedSize returns the mean received envelope size in bytes.
func (c NodeCounters) AvgReceivedSize() float64 {
	if c.EnvsReceived == 0 {
		return 0
	}
	return float64(c.BytesReceived) / float64(c.EnvsReceived)
}

// kindSlots sizes the fixed per-kind counter array: the protocol kinds
// are a small dense enum (KindRequest=1 … KindRead=8), so a received
// envelope increments one array slot instead of a map entry under a
// lock. Slot 0 collects any out-of-range kind a future protocol might
// introduce before this array is widened.
const kindSlots = int(amcast.KindRead) + 1

// counterStripe is one stripe of a node's counters. Striping by the
// sending node spreads concurrent updates to a hot receiver (every
// client updates its serving group's receive counters) over distinct
// cache lines; a snapshot sums the stripes.
// The stripe keeps the minimal independent set: envelopes received and
// payload envelopes received are recomputed from the per-kind counts at
// snapshot time (every envelope has exactly one kind), so recording a
// receive is two atomic adds, not four.
type counterStripe struct {
	envsSent      atomic.Uint64
	bytesSent     atomic.Uint64
	bytesReceived atomic.Uint64
	byKind        [kindSlots]atomic.Uint64
	delivered     atomic.Uint64
	// pad the stripe to a cache-line multiple so neighbouring stripes
	// never share a line.
	_ [3]uint64
}

const counterStripes = 8

// nodeCounters is the internal all-atomic form of one node's counters:
// every update is one atomic add into the stripe picked by the peer
// node, so send accounting never serializes the TCP runtime's
// connection goroutines behind a registry-wide mutex — nor behind one
// hot node's cache lines.
type nodeCounters struct {
	stripes [counterStripes]counterStripe
}

// stripeOf picks the stripe a peer's updates land in.
func stripeOf(peer amcast.NodeID) int {
	return int((uint64(peer) * 0x9E3779B97F4A7C15) >> 61 & (counterStripes - 1))
}

// Registry holds counters for all nodes of a deployment. Safe for
// concurrent use (the TCP runtime updates it from multiple goroutines; the
// simulator is single-threaded). The hot paths (OnSend, OnDeliver) are
// lock-free: the node table is an atomic pointer to an immutable map,
// rebuilt copy-on-write on the rare insert of a new node (the node set
// stabilizes as soon as a deployment is up), and every counter is an
// atomic add — no registry-wide mutex serializing transmissions.
type Registry struct {
	nodes atomic.Pointer[map[amcast.NodeID]*nodeCounters]
	mu    sync.Mutex // serializes copy-on-write inserts only
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	m := make(map[amcast.NodeID]*nodeCounters)
	r.nodes.Store(&m)
	return r
}

func (r *Registry) counters(n amcast.NodeID) *nodeCounters {
	if c, ok := (*r.nodes.Load())[n]; ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := *r.nodes.Load()
	if c, ok := m[n]; ok {
		return c
	}
	next := make(map[amcast.NodeID]*nodeCounters, len(m)+1)
	for k, v := range m {
		next[k] = v
	}
	c := &nodeCounters{}
	next[n] = c
	r.nodes.Store(&next)
	return c
}

// OnSend records a transmission; wire size is computed with the real
// codec so simulated and TCP runs report identical numbers.
func (r *Registry) OnSend(from, to amcast.NodeID, env amcast.Envelope) {
	size := uint64(codec.Size(env))
	c := &r.counters(from).stripes[stripeOf(to)]
	c.envsSent.Add(1)
	c.bytesSent.Add(size)
	d := &r.counters(to).stripes[stripeOf(from)]
	d.bytesReceived.Add(size)
	slot := int(env.Kind)
	if slot >= kindSlots {
		slot = 0
	}
	d.byKind[slot].Add(1)
}

// OnDeliver records an application delivery at a group.
func (r *Registry) OnDeliver(g amcast.GroupID) {
	n := amcast.GroupNode(g)
	r.counters(n).stripes[stripeOf(n)].delivered.Add(1)
}

// Node returns a snapshot of the counters for one node. Concurrent
// writers may land between field loads; each counter is individually
// consistent, which is all reporting needs.
func (r *Registry) Node(n amcast.NodeID) NodeCounters {
	c, ok := (*r.nodes.Load())[n]
	if !ok {
		return NodeCounters{ReceivedByKind: map[amcast.Kind]uint64{}}
	}
	cp := NodeCounters{ReceivedByKind: make(map[amcast.Kind]uint64)}
	var byKind [kindSlots]uint64
	for i := range c.stripes {
		s := &c.stripes[i]
		cp.EnvsSent += s.envsSent.Load()
		cp.BytesSent += s.bytesSent.Load()
		cp.BytesReceived += s.bytesReceived.Load()
		cp.Delivered += s.delivered.Load()
		for k := range s.byKind {
			byKind[k] += s.byKind[k].Load()
		}
	}
	for k, v := range byKind {
		if v == 0 {
			continue
		}
		cp.ReceivedByKind[amcast.Kind(k)] = v
		cp.EnvsReceived += v
		if amcast.Kind(k).IsPayload() {
			cp.PayloadReceived += v
		}
	}
	return cp
}

// Groups returns the group nodes present in the registry, sorted.
func (r *Registry) Groups() []amcast.GroupID {
	var gs []amcast.GroupID
	for n := range *r.nodes.Load() {
		if !n.IsClient() {
			gs = append(gs, n.Group())
		}
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	return gs
}
