package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Percentile(50) != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatalf("empty histogram not zeroed: %+v", h.Summary())
	}
	if !math.IsNaN(h.Mean()) {
		t.Fatalf("empty mean = %v, want NaN", h.Mean())
	}
	if got := h.PercentileRow(1000); got != "      -       -       -" {
		t.Fatalf("empty row = %q", got)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below 64 are bucketed one-to-one, so percentiles are exact
	// and must match the nearest-rank definition.
	h := NewHistogram()
	for v := uint64(1); v <= 50; v++ {
		h.Record(v)
	}
	for _, tt := range []struct {
		p    float64
		want uint64
	}{{50, 25}, {90, 45}, {99, 50}, {100, 50}} {
		if got := h.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %d, want %d", tt.p, got, tt.want)
		}
	}
	if h.Min() != 1 || h.Max() != 50 || h.Count() != 50 {
		t.Fatalf("min/max/count = %d/%d/%d", h.Min(), h.Max(), h.Count())
	}
	if got := h.Mean(); got != 25.5 {
		t.Fatalf("mean = %v, want 25.5", got)
	}
}

func TestHistogramBoundedRelativeError(t *testing.T) {
	// Against a brute-force exact percentile over the same samples, the
	// histogram must stay within the sub-bucket resolution (1/64) and
	// never under-report.
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	var samples []uint64
	for i := 0; i < 20000; i++ {
		// Log-uniform across six orders of magnitude, like latencies.
		v := uint64(math.Exp(rng.Float64() * 14))
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		rank := int(math.Ceil(p / 100 * float64(len(samples))))
		exact := samples[rank-1]
		got := h.Percentile(p)
		if got < exact {
			t.Errorf("Percentile(%v) = %d under-reports exact %d", p, got, exact)
		}
		if float64(got) > float64(exact)*(1+2.0/subBuckets)+1 {
			t.Errorf("Percentile(%v) = %d exceeds error bound around exact %d", p, got, exact)
		}
	}
}

func TestHistogramNeverExceedsObservedMax(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	for _, p := range []float64{50, 99, 99.9, 100} {
		if got := h.Percentile(p); got != 1000 {
			t.Fatalf("Percentile(%v) = %d, want clamped to max 1000", p, got)
		}
	}
}

func TestHistogramHugeValueClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(math.MaxUint64) // far beyond maxExp: lands in the top bucket, no panic
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	// Percentiles report the top bucket's bound (the histogram's range
	// ends at 2^41-1); Max stays exact.
	if got := h.Percentile(99); got != uint64(1)<<41-1 {
		t.Fatalf("Percentile(99) = %d, want top-bucket bound %d", got, uint64(1)<<41-1)
	}
	if h.Max() != math.MaxUint64 {
		t.Fatalf("Max = %d", h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for v := uint64(1); v <= 100; v++ {
		a.Record(v)
	}
	for v := uint64(101); v <= 200; v++ {
		b.Record(v)
	}
	a.Merge(b)
	a.Merge(nil)
	if a.Count() != 200 || a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged count/min/max = %d/%d/%d", a.Count(), a.Min(), a.Max())
	}
	got := a.Percentile(50)
	if got < 100 || got > 102 {
		t.Fatalf("merged p50 = %d, want ~100", got)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const goroutines, each = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < each; i++ {
				h.Record(uint64(rng.Intn(1_000_000)))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*each {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*each)
	}
	s := h.Summary()
	if s.P50 == 0 || s.P99 < s.P50 || s.Max < s.P999 {
		t.Fatalf("implausible summary: %+v", s)
	}
}
