package metrics

// NsSummary is a percentile snapshot of a histogram recorded in
// nanoseconds — the unit the telemetry subsystem reports in, fine
// enough to resolve the sub-microsecond read fast path the
// microsecond summary truncates to zero. The histogram's bucket range
// (2^41-1) covers ≈36 minutes at ns resolution, far beyond any
// per-request latency this repository measures.
type NsSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_ns"`
	Min   uint64  `json:"min_ns"`
	P50   uint64  `json:"p50_ns"`
	P90   uint64  `json:"p90_ns"`
	P99   uint64  `json:"p99_ns"`
	P999  uint64  `json:"p999_ns"`
	Max   uint64  `json:"max_ns"`
}

// SummaryNs snapshots a histogram whose recorded values are
// nanoseconds.
func (h *Histogram) SummaryNs() NsSummary {
	s := NsSummary{
		Count: h.Count(),
		Min:   h.Min(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.Max(),
	}
	if s.Count > 0 {
		s.Mean = h.Mean()
	}
	return s
}

// ToMicros derives the backward-compatible microsecond summary from a
// nanosecond one (integer truncation, matching what recording in µs
// would have produced).
func (s NsSummary) ToMicros() LatencySummary {
	return LatencySummary{
		Count: s.Count,
		Mean:  s.Mean / 1e3,
		Min:   s.Min / 1e3,
		P50:   s.P50 / 1e3,
		P90:   s.P90 / 1e3,
		P99:   s.P99 / 1e3,
		P999:  s.P999 / 1e3,
		Max:   s.Max / 1e3,
	}
}
