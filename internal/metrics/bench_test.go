package metrics

import (
	"sync"
	"sync/atomic"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/codec"
)

// benchEnv is a representative two-destination payload message.
var benchEnv = amcast.Envelope{
	Kind: amcast.KindMsg,
	From: amcast.GroupNode(1),
	Msg:  amcast.Message{ID: amcast.NewMsgID(0, 1), Dst: []amcast.GroupID{1, 2}, Payload: make([]byte, 64)},
}

// sendRecorder is the common surface of the registry and its mutex
// baseline, so both run the identical benchmark body.
type sendRecorder interface {
	OnSend(from, to amcast.NodeID, env amcast.Envelope)
	OnDeliver(g amcast.GroupID)
}

// benchOnSend models the TCP runtime's contention pattern: every
// connection goroutine records traffic for its own sender (distinct
// client nodes) into a small shared set of group receivers. A global
// registry mutex serializes all of them; per-node atomics only contend
// on the shared receivers.
func benchOnSend(b *testing.B, r sendRecorder) {
	var worker atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		from := amcast.ClientNode(int(worker.Add(1)))
		i := 0
		for pb.Next() {
			i++
			r.OnSend(from, amcast.GroupNode(amcast.GroupID(1+i%4)), benchEnv)
		}
	})
}

func benchOnDeliver(b *testing.B, r sendRecorder) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			r.OnDeliver(amcast.GroupID(1 + i%4))
		}
	})
}

func BenchmarkRegistryOnSend(b *testing.B)    { benchOnSend(b, NewRegistry()) }
func BenchmarkRegistryOnDeliver(b *testing.B) { benchOnDeliver(b, NewRegistry()) }

func BenchmarkMutexRegistryOnSend(b *testing.B)    { benchOnSend(b, newMutexRegistry()) }
func BenchmarkMutexRegistryOnDeliver(b *testing.B) { benchOnDeliver(b, newMutexRegistry()) }

// mutexRegistry replicates the registry's previous implementation — one
// global mutex over a map of plain counters — as the baseline the
// lock-free registry is measured against.
type mutexRegistry struct {
	mu    sync.Mutex
	nodes map[amcast.NodeID]*NodeCounters
}

func newMutexRegistry() *mutexRegistry {
	return &mutexRegistry{nodes: make(map[amcast.NodeID]*NodeCounters)}
}

func (r *mutexRegistry) counters(n amcast.NodeID) *NodeCounters {
	c, ok := r.nodes[n]
	if !ok {
		c = &NodeCounters{ReceivedByKind: make(map[amcast.Kind]uint64)}
		r.nodes[n] = c
	}
	return c
}

func (r *mutexRegistry) OnSend(from, to amcast.NodeID, env amcast.Envelope) {
	size := uint64(codec.Size(env))
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters(from)
	c.EnvsSent++
	c.BytesSent += size
	d := r.counters(to)
	d.EnvsReceived++
	d.BytesReceived += size
	d.ReceivedByKind[env.Kind]++
	if env.Kind.IsPayload() {
		d.PayloadReceived++
	}
}

func (r *mutexRegistry) OnDeliver(g amcast.GroupID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters(amcast.GroupNode(g)).Delivered++
}
