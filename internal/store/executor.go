package store

import (
	"fmt"
	"sync"
	"time"

	"flexcast/amcast"
	"flexcast/internal/gtpcc"
	"flexcast/internal/telemetry"
	"flexcast/internal/trace"
)

// Executor attaches a shard to a protocol engine: deliveries drained
// from the engine are executed against the shard (in delivery order,
// the only order the runtime ever observes them in) before they leave
// TakeDeliveries, and each delivery's Result carries the commit/abort
// verdict for the client reply. The Executor itself implements
// amcast.SnapshotEngine — snapshots and restores cover engine state AND
// store state together — so every runtime layer (the batched node
// runtime, the chaos crash/recovery harness, Paxos-replicated groups)
// runs an executing group without modification: wrap the engine factory
// and nothing else changes.
type Executor struct {
	eng amcast.SnapshotEngine

	// mu guards the store state (shard, mirror, watermark) against the
	// local-read fast path: deliveries are applied by the one goroutine
	// that drains the engine (write lock), but Read/TryRead execute on
	// the issuing clients' goroutines and only read shard state, so
	// they share a read lock — concurrent readers never serialize on
	// each other, only against applies. The engine itself stays
	// single-owner and is never touched under mu. cond is tied to the
	// read side (waiters hold RLocks).
	mu     sync.RWMutex
	cond   *sync.Cond
	shard  *Shard
	mirror *Shard
	// watermark is the delivered-prefix watermark in group-local
	// delivery-sequence space: every delivery with Seq < watermark has
	// been applied to the shard. Client replies carry delivery sequence
	// numbers, so a client's observed prefix is directly comparable —
	// the fast-path read barrier (DESIGN.md §1d).
	watermark uint64

	// onApply observes executed transactions (the serializability
	// checker's feed). Set before traffic flows; called (under mu) from
	// whatever goroutine drains the engine — observers must not call
	// back into the Executor.
	onApply func(trace.ExecRecord)
	// onRead observes fast-path reads (the fast-read audit's feed);
	// same contract as onApply.
	onRead func(trace.FastReadRecord)

	// shardCfg is the shard's population configuration, retained so
	// follower read replicas (AttachFollower) start from the identical
	// seeded state the serving node started from.
	shardCfg Config
	// replicaID and leaseStamp identify this executor among a
	// replicated group's replicas (SetReadStamp): fast-read records
	// carry the identity and the serving authority evaluated at serve
	// time, so the audit sees follower serves as follower serves.
	replicaID  int32
	leaseStamp func() bool
	// followers are the attached read replicas; every applied delivery
	// batch is shipped to each, in order, after the executor's lock is
	// released (the followers have their own locks and watermarks).
	followers []*Replica

	// tracer, when non-nil, stamps sampled client deliveries'
	// StageDeliver (first-wins, pre-apply) and StageExecute (last-wins,
	// post-apply) in TakeDeliveries.
	tracer *telemetry.Tracer
}

// Wrap builds an executor over a protocol engine, asserting the
// snapshot capability the executor needs — the one factory-wrapping
// helper every execute-mode deployment (StoreCluster, loadgen, the
// chaos harness) shares.
func Wrap(eng amcast.Engine, cfg Config, mirror bool) (*Executor, error) {
	se, ok := eng.(amcast.SnapshotEngine)
	if !ok {
		return nil, fmt.Errorf("store: engine %T does not support snapshots", eng)
	}
	return NewExecutor(se, cfg, mirror)
}

// NewExecutor wraps an engine with a freshly populated shard. mirror
// adds a second, independently maintained shard replica fed the same
// deliveries; CheckMirror then audits that Apply is deterministic
// (byte-identical replica digests) without deploying Paxos groups.
func NewExecutor(eng amcast.SnapshotEngine, cfg Config, mirror bool) (*Executor, error) {
	if g := eng.Group(); g != cfg.Warehouse && cfg.Warehouse != amcast.NoGroup {
		return nil, fmt.Errorf("store: engine group %d != warehouse %d", g, cfg.Warehouse)
	}
	cfg.Warehouse = eng.Group()
	shard, err := New(cfg)
	if err != nil {
		return nil, err
	}
	e := &Executor{eng: eng, shard: shard, shardCfg: cfg}
	e.cond = sync.NewCond(e.mu.RLocker())
	if mirror {
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		e.mirror = m
	}
	return e, nil
}

// Shard exposes the live shard (invariant checks, digests). Read it
// only after the owning runtime has quiesced.
func (e *Executor) Shard() *Shard { return e.shard }

// AttachFollower builds a follower read replica by snapshot shipping:
// the joining replica installs a clone of the serving shard at the
// current delivered-prefix watermark and then consumes only the log
// suffix the feed streams from that point on — never the full delivery
// history (DESIGN.md §1f). Attach is safe at any time, including
// mid-run: the clone and the watermark are captured atomically under
// the executor's lock, so the replica misses no delivery and re-applies
// none (feeds below the watermark are skipped as duplicates).
func (e *Executor) AttachFollower(cfg ReplicaConfig) (*Replica, error) {
	start := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	r, err := newReplicaAt(e.shard.Clone(), e.watermark, cfg)
	if err != nil {
		return nil, err
	}
	e.followers = append(e.followers, r)
	shipHist.Record(uint64(time.Since(start)))
	return r, nil
}

// Followers returns the attached read replicas in attach order.
func (e *Executor) Followers() []*Replica {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]*Replica(nil), e.followers...)
}

// SetTracer attaches the lifecycle tracer (nil detaches). Set before
// traffic flows, like the observers.
func (e *Executor) SetTracer(t *telemetry.Tracer) { e.tracer = t }

// SetExecObserver installs the execution-record observer.
func (e *Executor) SetExecObserver(f func(trace.ExecRecord)) { e.onApply = f }

// SetReadObserver installs the fast-read record observer.
func (e *Executor) SetReadObserver(f func(trace.FastReadRecord)) { e.onRead = f }

// SetReadStamp identifies this executor among a replicated group's
// replicas (internal/smr wires it for every replica's executor):
// fast-read records carry the replica index, and lease is evaluated at
// serve time to stamp the record's LeaseOK — so a read served through
// a regressed lease gate reaches the audit labeled as the stale
// follower serve it is (trace.CheckFastReads rejects it) instead of
// masquerading as a lease-exempt serving-node read. Unset, the
// executor records itself as replica 0, which needs no lease.
func (e *Executor) SetReadStamp(replica int32, lease func() bool) {
	e.replicaID = replica
	e.leaseStamp = lease
}

// Digest returns the live shard's state digest.
func (e *Executor) Digest() [32]byte { return e.shard.Digest() }

// CheckMirror verifies that the mirror replica — fed the identical
// delivery sequence — reached a byte-identical digest.
func (e *Executor) CheckMirror() error {
	if e.mirror == nil {
		return nil
	}
	if a, b := e.shard.Digest(), e.mirror.Digest(); a != b {
		return fmt.Errorf("store: warehouse %d replica digests diverged (%x != %x): Apply is not deterministic",
			e.shard.Warehouse(), a[:8], b[:8])
	}
	return nil
}

// Group implements amcast.Engine.
func (e *Executor) Group() amcast.GroupID { return e.eng.Group() }

// OnEnvelope implements amcast.Engine.
func (e *Executor) OnEnvelope(env amcast.Envelope) []amcast.Output {
	return e.eng.OnEnvelope(env)
}

// BatchStep implements amcast.BatchStepper via the inner engine's fast
// path (or its per-envelope fallback).
func (e *Executor) BatchStep(envs []amcast.Envelope) []amcast.Output {
	return amcast.BatchStep(e.eng, envs)
}

// TakeDeliveries drains the engine and executes each delivery against
// the shard (and mirror), stamping the execution verdict onto the
// delivery for the client reply. Applying also advances the delivered-
// prefix watermark, releasing any fast-path reads waiting on it; the
// watermark moves before the runtime can transmit the reply, so a
// client that has seen a reply for delivery s can always read at
// barrier s+1 without blocking.
func (e *Executor) TakeDeliveries() []amcast.Delivery {
	dels := e.eng.TakeDeliveries()
	if len(dels) == 0 {
		return dels
	}
	tr := e.tracer
	e.mu.Lock()
	for i := range dels {
		if dels[i].Msg.Sender.IsClient() {
			// Entry stage, first-wins: the earliest group to deliver
			// marks the ordering point (the runtime's own post-drain
			// stamp loses against this earlier one).
			tr.Stamp(dels[i].Msg.ID, telemetry.StageDeliver)
		}
		res := e.shard.Apply(dels[i])
		if e.mirror != nil {
			e.mirror.Apply(dels[i])
		}
		dels[i].Result = res.Code
		if wm := dels[i].Seq + 1; wm > e.watermark {
			e.watermark = wm
		}
		if e.onApply != nil && res.Code != amcast.ResultNone {
			e.onApply(res.Record)
		}
		// Stamp the delivery's watermark: the runtime copies it to the
		// KindReply envelope, feeding the client's session barrier. Seq+1
		// (not the batch-final watermark) keeps deliveries identical
		// under any chunking — a batch is a scheduling unit, never a
		// semantic one (amcast.BatchStepper).
		dels[i].Watermark = dels[i].Seq + 1
		if dels[i].Msg.Sender.IsClient() {
			// Completion stage, last-wins: the final group to apply
			// closes the execute window.
			tr.Stamp(dels[i].Msg.ID, telemetry.StageExecute)
		}
	}
	// Capture the follower set before unlocking: AttachFollower appends
	// under the same lock, so a replica attached mid-feed either sees
	// this batch in its installed snapshot (cloned under the lock) or in
	// a later feed — never both, never neither.
	followers := e.followers
	e.mu.Unlock()
	e.cond.Broadcast()
	// Ship the applied batch to the follower read replicas, in apply
	// order (TakeDeliveries is called by the engine's single owner, so
	// feeds are ordered). Recovery replay re-feeds a prefix; followers
	// skip sequences they already applied.
	for _, f := range followers {
		f.Feed(dels)
	}
	return dels
}

// ReadResult is the outcome of one fast-path read.
type ReadResult struct {
	// Value is the read's result: order-status returns the customer's
	// most recent home-order id (-1 when none), stock-level the low-
	// stock item count.
	Value int64
	// Watermark is the delivered prefix the read executed at (>= the
	// requested barrier).
	Watermark uint64
}

// TryRead executes a read-only transaction (order-status, stock-level)
// directly against the local shard at the current delivered prefix,
// without multicast. It fails — rather than waits — when the shard has
// not yet applied the caller's barrier: callers whose barrier comes
// from an observed reply are always satisfiable, so a failure means the
// prefix contract is broken (the discrete-event harnesses treat it as a
// violation).
func (e *Executor) TryRead(tx gtpcc.Tx, barrier uint64) (ReadResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.watermark < barrier {
		return ReadResult{}, fmt.Errorf("store: warehouse %d read barrier %d ahead of delivered prefix %d",
			e.shard.Warehouse(), barrier, e.watermark)
	}
	return e.readLocked(tx, barrier)
}

// Read is TryRead that waits (up to timeout) for the delivered-prefix
// barrier instead of failing — the form the wall-clock runtimes use,
// where the watermark advances concurrently.
func (e *Executor) Read(tx gtpcc.Tx, barrier uint64, timeout time.Duration) (ReadResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.watermark < barrier {
		expired := false
		t := time.AfterFunc(timeout, func() {
			e.mu.Lock()
			expired = true
			e.mu.Unlock()
			e.cond.Broadcast()
		})
		for e.watermark < barrier && !expired {
			e.cond.Wait()
		}
		t.Stop()
		if e.watermark < barrier {
			return ReadResult{}, fmt.Errorf("store: warehouse %d read barrier %d not reached within %v (delivered prefix %d)",
				e.shard.Warehouse(), barrier, timeout, e.watermark)
		}
	}
	return e.readLocked(tx, barrier)
}

// readLocked executes the read at the current watermark and reports it
// to the fast-read observer through the shared fast-read core (see
// readTx in replica.go). Callers hold mu (read side suffices: nothing
// here mutates shard or executor state, and the observer is
// concurrency-safe).
func (e *Executor) readLocked(tx gtpcc.Tx, barrier uint64) (ReadResult, error) {
	leaseOK := true
	if e.leaseStamp != nil {
		leaseOK = e.leaseStamp()
	}
	return readTx(e.shard, tx, barrier, e.watermark, e.replicaID, leaseOK, e.onRead)
}

// Watermark returns the delivered-prefix watermark (deliveries with
// group-local sequence below it have been applied).
func (e *Executor) Watermark() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.watermark
}

// CheckHistoryAcyclic forwards the inner engine's internal ordering
// audit (the FlexCast history DAG) so wrapping an engine does not hide
// it from the chaos explorer.
func (e *Executor) CheckHistoryAcyclic() error {
	if c, ok := e.eng.(interface{ CheckHistoryAcyclic() error }); ok {
		return c.CheckHistoryAcyclic()
	}
	return nil
}

// execSnapshot is the combined engine+store snapshot.
type execSnapshot struct {
	eng       amcast.Snapshot
	shard     *Shard
	mirror    *Shard
	watermark uint64
}

func (s *execSnapshot) SnapshotGroup() amcast.GroupID { return s.eng.SnapshotGroup() }

// Snapshot implements amcast.SnapshotEngine: engine and store state are
// captured together, so crash/recovery replay (chaos WAL, Paxos log)
// rebuilds application state alongside protocol state. The delivered-
// prefix watermark is part of the state: recovery replay re-advances it
// to (at least) its pre-crash value before any new traffic flows.
func (e *Executor) Snapshot() amcast.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &execSnapshot{eng: e.eng.Snapshot(), shard: e.shard.Clone(), watermark: e.watermark}
	if e.mirror != nil {
		s.mirror = e.mirror.Clone()
	}
	return s
}

// Restore implements amcast.SnapshotEngine. The snapshot stays usable
// for further restores.
func (e *Executor) Restore(snap amcast.Snapshot) error {
	s, ok := snap.(*execSnapshot)
	if !ok {
		return fmt.Errorf("store: snapshot type %T is not an executor snapshot", snap)
	}
	if g := s.SnapshotGroup(); g != e.eng.Group() {
		return fmt.Errorf("store: snapshot of group %d restored into group %d", g, e.eng.Group())
	}
	if err := e.eng.Restore(s.eng); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.shard = s.shard.Clone()
	e.watermark = s.watermark
	if e.mirror != nil {
		if s.mirror != nil {
			e.mirror = s.mirror.Clone()
		} else {
			e.mirror = s.shard.Clone()
		}
	}
	return nil
}
