package store

import (
	"fmt"

	"flexcast/amcast"
	"flexcast/internal/trace"
)

// Executor attaches a shard to a protocol engine: deliveries drained
// from the engine are executed against the shard (in delivery order,
// the only order the runtime ever observes them in) before they leave
// TakeDeliveries, and each delivery's Result carries the commit/abort
// verdict for the client reply. The Executor itself implements
// amcast.SnapshotEngine — snapshots and restores cover engine state AND
// store state together — so every runtime layer (the batched node
// runtime, the chaos crash/recovery harness, Paxos-replicated groups)
// runs an executing group without modification: wrap the engine factory
// and nothing else changes.
type Executor struct {
	eng    amcast.SnapshotEngine
	shard  *Shard
	mirror *Shard
	// onApply observes executed transactions (the serializability
	// checker's feed). Set before traffic flows; called from whatever
	// goroutine drains the engine.
	onApply func(trace.ExecRecord)
}

// NewExecutor wraps an engine with a freshly populated shard. mirror
// adds a second, independently maintained shard replica fed the same
// deliveries; CheckMirror then audits that Apply is deterministic
// (byte-identical replica digests) without deploying Paxos groups.
func NewExecutor(eng amcast.SnapshotEngine, cfg Config, mirror bool) (*Executor, error) {
	if g := eng.Group(); g != cfg.Warehouse && cfg.Warehouse != amcast.NoGroup {
		return nil, fmt.Errorf("store: engine group %d != warehouse %d", g, cfg.Warehouse)
	}
	cfg.Warehouse = eng.Group()
	shard, err := New(cfg)
	if err != nil {
		return nil, err
	}
	e := &Executor{eng: eng, shard: shard}
	if mirror {
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		e.mirror = m
	}
	return e, nil
}

// Shard exposes the live shard (invariant checks, digests). Read it
// only after the owning runtime has quiesced.
func (e *Executor) Shard() *Shard { return e.shard }

// SetExecObserver installs the execution-record observer.
func (e *Executor) SetExecObserver(f func(trace.ExecRecord)) { e.onApply = f }

// Digest returns the live shard's state digest.
func (e *Executor) Digest() [32]byte { return e.shard.Digest() }

// CheckMirror verifies that the mirror replica — fed the identical
// delivery sequence — reached a byte-identical digest.
func (e *Executor) CheckMirror() error {
	if e.mirror == nil {
		return nil
	}
	if a, b := e.shard.Digest(), e.mirror.Digest(); a != b {
		return fmt.Errorf("store: warehouse %d replica digests diverged (%x != %x): Apply is not deterministic",
			e.shard.Warehouse(), a[:8], b[:8])
	}
	return nil
}

// Group implements amcast.Engine.
func (e *Executor) Group() amcast.GroupID { return e.eng.Group() }

// OnEnvelope implements amcast.Engine.
func (e *Executor) OnEnvelope(env amcast.Envelope) []amcast.Output {
	return e.eng.OnEnvelope(env)
}

// BatchStep implements amcast.BatchStepper via the inner engine's fast
// path (or its per-envelope fallback).
func (e *Executor) BatchStep(envs []amcast.Envelope) []amcast.Output {
	return amcast.BatchStep(e.eng, envs)
}

// TakeDeliveries drains the engine and executes each delivery against
// the shard (and mirror), stamping the execution verdict onto the
// delivery for the client reply.
func (e *Executor) TakeDeliveries() []amcast.Delivery {
	dels := e.eng.TakeDeliveries()
	for i := range dels {
		res := e.shard.Apply(dels[i])
		if e.mirror != nil {
			e.mirror.Apply(dels[i])
		}
		dels[i].Result = res.Code
		if e.onApply != nil && res.Code != amcast.ResultNone {
			e.onApply(res.Record)
		}
	}
	return dels
}

// CheckHistoryAcyclic forwards the inner engine's internal ordering
// audit (the FlexCast history DAG) so wrapping an engine does not hide
// it from the chaos explorer.
func (e *Executor) CheckHistoryAcyclic() error {
	if c, ok := e.eng.(interface{ CheckHistoryAcyclic() error }); ok {
		return c.CheckHistoryAcyclic()
	}
	return nil
}

// execSnapshot is the combined engine+store snapshot.
type execSnapshot struct {
	eng    amcast.Snapshot
	shard  *Shard
	mirror *Shard
}

func (s *execSnapshot) SnapshotGroup() amcast.GroupID { return s.eng.SnapshotGroup() }

// Snapshot implements amcast.SnapshotEngine: engine and store state are
// captured together, so crash/recovery replay (chaos WAL, Paxos log)
// rebuilds application state alongside protocol state.
func (e *Executor) Snapshot() amcast.Snapshot {
	s := &execSnapshot{eng: e.eng.Snapshot(), shard: e.shard.Clone()}
	if e.mirror != nil {
		s.mirror = e.mirror.Clone()
	}
	return s
}

// Restore implements amcast.SnapshotEngine. The snapshot stays usable
// for further restores.
func (e *Executor) Restore(snap amcast.Snapshot) error {
	s, ok := snap.(*execSnapshot)
	if !ok {
		return fmt.Errorf("store: snapshot type %T is not an executor snapshot", snap)
	}
	if g := s.SnapshotGroup(); g != e.eng.Group() {
		return fmt.Errorf("store: snapshot of group %d restored into group %d", g, e.eng.Group())
	}
	if err := e.eng.Restore(s.eng); err != nil {
		return err
	}
	e.shard = s.shard.Clone()
	if e.mirror != nil {
		if s.mirror != nil {
			e.mirror = s.mirror.Clone()
		} else {
			e.mirror = s.shard.Clone()
		}
	}
	return nil
}
