package store

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/codec"
	"flexcast/internal/core"
	"flexcast/internal/prototest"
)

// decodeExecCore composes the executor snapshot decoder over the
// FlexCast engine decoder — the shape flexload and the durable backend
// use in execute mode.
func decodeExecCore(data []byte) (amcast.Snapshot, error) {
	return UnmarshalSnapshot(data, core.UnmarshalSnapshot)
}

// TestExecutorSnapshotBinaryRoundTrip audits the combined engine+store
// binary snapshot codec over a mid-run gTPC-C workload: marshal →
// decode → restore → re-marshal must be byte-identical, and the decoded
// shard must digest identically to the live one.
func TestExecutorSnapshotBinaryRoundTrip(t *testing.T) {
	factory, route := flexcastFactory(t)
	dep := newExecDeployment(t, factory, nil)
	prototest.RunRandom(t, prototest.RandomConfig{
		Groups:      testGroups,
		Clients:     3,
		Messages:    40,
		Route:       route,
		Factory:     dep.Factory,
		Seed:        17,
		Jitter:      3000,
		NextMessage: gtpccWorkload(testGroups, 17),
		OnEngines: func(engines map[amcast.GroupID]amcast.Engine) {
			for g, eng := range engines {
				ex := eng.(*Executor)
				fresh, err := NewExecutor(factory(g), Config{Warehouse: g}, true)
				if err != nil {
					t.Fatal(err)
				}
				prototest.CheckBinarySnapshot(t, ex, fresh, decodeExecCore)
				if a, b := ex.Digest(), fresh.Digest(); a != b {
					t.Fatalf("group %d: decoded shard digest %x != live %x", g, b[:8], a[:8])
				}
				if err := fresh.CheckMirror(); err != nil {
					t.Fatalf("group %d: restored mirror: %v", g, err)
				}
				if ex.Watermark() != fresh.Watermark() {
					t.Fatalf("group %d: decoded watermark %d != live %d", g, fresh.Watermark(), ex.Watermark())
				}
			}
		},
	})
}

// TestShardBinaryRoundTrip covers the shard codec directly, including
// pending orders and cross-warehouse sourcing state.
func TestShardBinaryRoundTrip(t *testing.T) {
	s := MustNew(Config{Warehouse: 3, Items: 50, Customers: 20, Seed: 9})
	// Mutate through the public Apply surface so the encoded state is a
	// reachable one (pending orders, debits, deliveries).
	msgs := gtpccWorkload([]amcast.GroupID{3, 4}, 9)
	for i := 0; i < 60; i++ {
		m := msgs(0, i, nil)
		s.Apply(amcast.Delivery{Group: 3, Seq: uint64(i), Msg: m})
	}
	data := s.AppendBinary(nil)
	r := codec.NewReader(data)
	dec := DecodeShard(r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if a, b := s.Digest(), dec.Digest(); a != b {
		t.Fatalf("decoded shard digest %x != original %x", b[:8], a[:8])
	}
	if string(dec.AppendBinary(nil)) != string(data) {
		t.Fatal("re-encoded shard differs from original encoding")
	}
}
