package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexcast/amcast"
	"flexcast/internal/gtpcc"
	"flexcast/internal/trace"
)

// ErrLeaseExpired is returned when a follower replica refuses a fast
// read because it does not hold a valid read lease. Callers fall back
// to the group's serving node (or another replica) and count the
// refusal; serving the read anyway would be the stale-serve bug the
// fast-read audit exists to catch (trace.FastReadRecord.LeaseOK).
var ErrLeaseExpired = errors.New("store: read lease expired")

// ReplicaConfig configures one follower read replica.
type ReplicaConfig struct {
	// Idx identifies the replica within its group's replica set; the
	// serving node (leader) is 0, followers are 1..R-1. Stamped onto
	// every fast-read record (trace.FastReadRecord.Replica).
	Idx int32
	// Margin is the lease safety margin in lease-clock units (µs): the
	// replica refuses reads once now+Margin reaches the lease expiry,
	// so it stops serving strictly before the grantor considers the
	// lease dead. The margin absorbs clock skew between grantor and
	// follower — zero in the simulator's global clock, nonzero on real
	// transports (DESIGN.md §1e). Defaults to a quarter of the first
	// granted term.
	Margin uint64
	// Clock supplies the replica's lease clock (µs): sim time under the
	// discrete-event harnesses, wall-clock micros on real transports
	// (the default when nil). TryReadAt may alternatively pass its own
	// "now".
	Clock func() uint64
	// AutoGrantTerm, when > 0, renews the replica's lease on every Feed:
	// expiry = Clock() + AutoGrantTerm. This models the grant protocol of
	// the replicated deployments — lease renewals ride the shipped log
	// exactly like smr's lease entries ride the Paxos decided log — so a
	// replica cut off from the log (grantor crashed, link partitioned)
	// stops serving within one term.
	AutoGrantTerm uint64
	// Async applies feeds on the replica's own goroutine (the wall-clock
	// deployments); the default applies them inline on the feeding
	// goroutine (the deterministic harnesses).
	Async bool
}

// Replica is a follower read replica of one group's warehouse shard: it
// applies the group's delivery sequence — shipped in order by the
// group's serving node (Executor.AttachFollower) — to its own shard
// copy, maintains its own delivered-prefix watermark, and serves
// lease-gated fast reads at that watermark. Replicas never execute the
// protocol engine, never emit outputs and never take the serving node's
// locks: they multiply a group's read capacity by the replication
// factor while the write path is untouched (DESIGN.md §1e).
type Replica struct {
	cfg ReplicaConfig

	// mu mirrors the Executor's locking split: the applier mutates
	// shard/watermark under the write lock, reads share the read lock —
	// concurrent readers never serialize on each other, only against
	// applies (the whole point of a read replica). cond is tied to the
	// read side (barrier waiters hold RLocks).
	mu   sync.RWMutex
	cond *sync.Cond
	// shard is this replica's copy of the warehouse state; next is the
	// first delivery sequence it has not applied (feeds below it are
	// recovery-replay duplicates and are skipped), and watermark is its
	// delivered-prefix read barrier.
	shard     *Shard
	next      uint64
	watermark uint64
	// leaseEpoch/leaseExpiry are the newest lease this replica holds;
	// expiry 0 means revoked/never granted.
	leaseEpoch  uint64
	leaseExpiry uint64
	closed      bool

	refusals atomic.Uint64
	reads    atomic.Uint64
	renewals atomic.Uint64
	onRead   func(trace.FastReadRecord)

	queue chan []amcast.Delivery
	wg    sync.WaitGroup
}

// newReplica builds a follower over a fresh seeded shard (the same pure
// population function as the serving node's, so applying the same
// delivery prefix reproduces the same state).
func newReplica(shardCfg Config, cfg ReplicaConfig) (*Replica, error) {
	shard, err := New(shardCfg)
	if err != nil {
		return nil, err
	}
	return newReplicaAt(shard, 0, cfg)
}

// newReplicaAt builds a follower over an installed (snapshot-shipped)
// shard: the shard already reflects every delivery below start, so the
// replica's watermark begins there and earlier feeds are skipped as
// duplicates. The caller hands over ownership of the shard.
func newReplicaAt(shard *Shard, start uint64, cfg ReplicaConfig) (*Replica, error) {
	if cfg.Idx <= 0 {
		return nil, fmt.Errorf("store: follower replica index must be >= 1, got %d", cfg.Idx)
	}
	if cfg.Clock == nil {
		// Externally granted replicas still evaluate the lease at serve
		// time: default to the wall clock (expiries are then wall-clock
		// micros, matching Grant's natural units on real deployments).
		cfg.Clock = func() uint64 { return uint64(time.Now().UnixMicro()) }
	}
	if cfg.Margin == 0 && cfg.AutoGrantTerm > 0 {
		cfg.Margin = cfg.AutoGrantTerm / 4
	}
	r := &Replica{cfg: cfg, shard: shard, next: start, watermark: start}
	r.cond = sync.NewCond(r.mu.RLocker())
	if cfg.Async {
		r.queue = make(chan []amcast.Delivery, 64)
		r.wg.Add(1)
		go r.applier()
	}
	return r, nil
}

// Idx returns the replica's index within its group's replica set.
func (r *Replica) Idx() int32 { return r.cfg.Idx }

// SetReadObserver installs the fast-read record observer (the audit
// feed); set before traffic flows.
func (r *Replica) SetReadObserver(f func(trace.FastReadRecord)) { r.onRead = f }

// Feed ships one applied delivery batch to the replica, in the group's
// delivery order. Async replicas enqueue and apply on their own
// goroutine; the deterministic form applies inline. With AutoGrantTerm
// set, every feed also renews the replica's lease — the grant rides the
// log. Feed must not be called after Close: deployments stop the
// serving nodes (the feeders) before closing their replicas.
func (r *Replica) Feed(dels []amcast.Delivery) {
	if len(dels) == 0 {
		return
	}
	if r.cfg.AutoGrantTerm > 0 {
		now := r.cfg.Clock()
		r.mu.Lock()
		r.leaseEpoch++
		r.leaseExpiry = now + r.cfg.AutoGrantTerm
		r.mu.Unlock()
		r.renewals.Add(1)
	}
	if r.queue != nil {
		cp := append([]amcast.Delivery(nil), dels...)
		r.queue <- cp
		return
	}
	r.apply(dels)
}

// applier is the async replica's apply loop.
func (r *Replica) applier() {
	defer r.wg.Done()
	for dels := range r.queue {
		r.apply(dels)
	}
}

// apply executes one shipped batch against the replica's shard,
// skipping sequences it has already applied (recovery replay re-ships a
// prefix after the serving node restores a snapshot; the log is
// deterministic, so re-applied entries would be byte-identical — the
// skip just keeps the watermark honest).
func (r *Replica) apply(dels []amcast.Delivery) {
	r.mu.Lock()
	for i := range dels {
		if dels[i].Seq < r.next {
			continue
		}
		r.shard.Apply(dels[i])
		r.next = dels[i].Seq + 1
		if wm := dels[i].Seq + 1; wm > r.watermark {
			r.watermark = wm
		}
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Grant installs a read lease: the replica may serve fast reads until
// expiry (lease-clock µs), with the configured safety margin. Epochs
// only move forward; a stale grant (smaller epoch) is ignored.
func (r *Replica) Grant(epoch, expiry uint64) {
	r.mu.Lock()
	renewed := epoch >= r.leaseEpoch
	if renewed {
		r.leaseEpoch = epoch
		r.leaseExpiry = expiry
	}
	r.mu.Unlock()
	if renewed {
		r.renewals.Add(1)
	}
}

// Revoke withdraws the replica's lease immediately (administrative
// revocation; an expired lease needs no revoke).
func (r *Replica) Revoke() {
	r.mu.Lock()
	r.leaseExpiry = 0
	r.mu.Unlock()
}

// HoldsLease reports whether the replica would serve a read at
// lease-clock time now.
func (r *Replica) HoldsLease(now uint64) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.leaseValidLocked(now)
}

func (r *Replica) leaseValidLocked(now uint64) bool {
	return r.leaseExpiry > 0 && now+r.cfg.Margin < r.leaseExpiry
}

// Refusals reports how many reads the replica refused for want of a
// valid lease.
func (r *Replica) Refusals() uint64 { return r.refusals.Load() }

// Reads reports how many fast reads the replica served.
func (r *Replica) Reads() uint64 { return r.reads.Load() }

// Renewals reports how many lease renewals the replica received
// (auto-grants riding the log feed plus explicit Grants that advanced
// the epoch).
func (r *Replica) Renewals() uint64 { return r.renewals.Load() }

// Watermark returns the replica's delivered-prefix watermark.
func (r *Replica) Watermark() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.watermark
}

// Shard exposes the replica's shard (digest comparisons in tests). Read
// it only after the owning deployment has quiesced.
func (r *Replica) Shard() *Shard { return r.shard }

// refuse counts and reports one lease refusal. Callers hold mu (read
// side suffices).
func (r *Replica) refuse() error {
	r.refusals.Add(1)
	return fmt.Errorf("replica %d of warehouse %d at lease epoch %d: %w",
		r.cfg.Idx, r.shard.Warehouse(), r.leaseEpoch, ErrLeaseExpired)
}

// TryReadAt serves one read-only transaction at the replica's current
// delivered prefix, at lease-clock time now — the deterministic form:
// an expired lease refuses (ErrLeaseExpired, counted), and a barrier
// ahead of the replica's watermark fails, which in the lockstep
// harnesses means the delivered-prefix contract broke.
func (r *Replica) TryReadAt(tx gtpcc.Tx, barrier, now uint64) (ReadResult, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.leaseValidLocked(now) {
		return ReadResult{}, r.refuse()
	}
	if r.watermark < barrier {
		return ReadResult{}, fmt.Errorf("store: replica %d of warehouse %d read barrier %d ahead of delivered prefix %d",
			r.cfg.Idx, r.shard.Warehouse(), barrier, r.watermark)
	}
	return r.readLocked(tx, barrier)
}

// Read is TryReadAt that waits (up to timeout) for the delivered-prefix
// barrier instead of failing — the wall-clock form, where the replica's
// applier advances the watermark concurrently. The lease is re-checked
// throughout the wait, not just at serve time: a barrier this replica
// cannot meet usually means its log feed stalled — exactly the
// condition that lapses the lease — so the read refuses promptly with
// ErrLeaseExpired (the error the callers' serving-node fallback
// matches) instead of burning the whole timeout on a dead replica.
func (r *Replica) Read(tx gtpcc.Tx, barrier uint64, timeout time.Duration) (ReadResult, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	deadline := time.Now().Add(timeout)
	for r.watermark < barrier {
		if !r.leaseValidLocked(r.cfg.Clock()) {
			return ReadResult{}, r.refuse()
		}
		if r.closed || time.Now().After(deadline) {
			return ReadResult{}, fmt.Errorf("store: replica %d of warehouse %d read barrier %d not reached within %v (delivered prefix %d)",
				r.cfg.Idx, r.shard.Warehouse(), barrier, timeout, r.watermark)
		}
		// Feeds broadcast on every apply; the periodic wake exists to
		// re-check the lease and deadline when the feeder has gone
		// quiet (a stalled feeder never broadcasts). The wake flag is
		// set under the write lock, which cannot be acquired until this
		// waiter is parked in Wait (it holds the read lock until then),
		// so the wakeup cannot be lost.
		wake := false
		t := time.AfterFunc(5*time.Millisecond, func() {
			r.mu.Lock()
			wake = true
			r.mu.Unlock()
			r.cond.Broadcast()
		})
		for r.watermark < barrier && !wake && !r.closed {
			r.cond.Wait()
		}
		t.Stop()
	}
	if !r.leaseValidLocked(r.cfg.Clock()) {
		return ReadResult{}, r.refuse()
	}
	return r.readLocked(tx, barrier)
}

// readTx is the shared fast-read core of Executor and Replica: execute
// one read-only transaction against a shard at the current cut, report
// it to the audit (with the serving replica's identity and lease
// validity), and return the result. Callers hold their own lock.
func readTx(shard *Shard, tx gtpcc.Tx, barrier, watermark uint64, replica int32, leaseOK bool, onRead func(trace.FastReadRecord)) (ReadResult, error) {
	if tx.Home != shard.Warehouse() {
		return ReadResult{}, fmt.Errorf("store: read for warehouse %d routed to a replica of warehouse %d",
			tx.Home, shard.Warehouse())
	}
	val, rows, err := shard.ReadTx(tx)
	if err != nil {
		return ReadResult{}, err
	}
	if onRead != nil {
		onRead(trace.FastReadRecord{
			Group:       shard.Warehouse(),
			Watermark:   watermark,
			Barrier:     barrier,
			TxWatermark: shard.Applied(),
			Kind:        uint8(tx.Type),
			ReadSet:     readSetDigest(gtpcc.EncodeTx(tx)),
			Value:       val,
			Rows:        rows,
			Replica:     replica,
			LeaseOK:     leaseOK,
		})
	}
	return ReadResult{Value: val, Watermark: watermark}, nil
}

// readLocked executes the read at the replica's cut and reports it to
// the audit. The replica's apply sequence is, by determinism, a prefix
// of the group's — so the record's cut (TxWatermark) indexes the same
// serialization point the serving node's records define, and the
// conflict-graph checker can merge follower reads into the group's
// order exactly like leader reads (DESIGN.md §1e).
func (r *Replica) readLocked(tx gtpcc.Tx, barrier uint64) (ReadResult, error) {
	res, err := readTx(r.shard, tx, barrier, r.watermark, r.cfg.Idx, true, r.onRead)
	if err == nil {
		r.reads.Add(1)
	}
	return res, err
}

// Close stops an async replica's applier after draining shipped
// batches; inline replicas only mark themselves closed.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
	if r.queue != nil {
		close(r.queue)
		r.wg.Wait()
	}
}
