package store

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/gtpcc"
)

func shard(t *testing.T, w amcast.GroupID) *Shard {
	t.Helper()
	s, err := New(Config{Warehouse: w})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// deliver wraps a transaction as the delivery each involved shard sees.
func deliver(id uint64, seq uint64, g amcast.GroupID, tx gtpcc.Tx) amcast.Delivery {
	return amcast.Delivery{
		Group: g,
		Seq:   seq,
		Msg: amcast.Message{
			ID:      amcast.MsgID(id),
			Sender:  amcast.ClientNode(0),
			Dst:     tx.Involved(),
			Payload: gtpcc.EncodeTx(tx),
		},
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing warehouse accepted")
	}
	s := MustNew(Config{Warehouse: 3})
	if s.Warehouse() != 3 {
		t.Fatal("warehouse mismatch")
	}
}

func TestNewOrderUpdatesStockAndOrders(t *testing.T) {
	s1, s2 := shard(t, 1), shard(t, 2)
	tx := gtpcc.Tx{
		Type: gtpcc.NewOrder, Home: 1, Customer: 4, Items: 2,
		Lines: []gtpcc.OrderLine{
			{Item: 7, Supply: 1, Qty: 3},
			{Item: 9, Supply: 2, Qty: 5},
		},
		PayloadSize: 88,
	}
	r1 := s1.Apply(deliver(10, 0, 1, tx))
	r2 := s2.Apply(deliver(10, 0, 2, tx))
	if r1.Code != amcast.ResultCommitted || r2.Code != amcast.ResultCommitted {
		t.Fatalf("codes %d %d", r1.Code, r2.Code)
	}
	if r1.Record.ReadSet != r2.Record.ReadSet {
		t.Fatal("read-set digests differ across involved shards")
	}
	if s1.stockYTD[7] != 3 || s2.stockYTD[9] != 5 {
		t.Fatalf("stock YTD: %d %d", s1.stockYTD[7], s2.stockYTD[9])
	}
	if len(s1.pending) != 1 || len(s2.pending) != 0 {
		t.Fatalf("order queues: home %d, remote %d", len(s1.pending), len(s2.pending))
	}
	if s1.lastOrder[4] != 0 {
		t.Fatalf("lastOrder = %d", s1.lastOrder[4])
	}
	if s1.orderedFrom[1] != 3 || s1.orderedFrom[2] != 5 {
		t.Fatalf("orderedFrom = %v", s1.orderedFrom)
	}
	if err := CheckInvariants([]*Shard{s1, s2}); err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderRollbackMutatesNothing(t *testing.T) {
	s := shard(t, 1)
	before := s.Digest()
	tx := gtpcc.Tx{
		Type: gtpcc.NewOrder, Home: 1, Rollback: true, Items: 1,
		Lines:       []gtpcc.OrderLine{{Item: 1, Supply: 1, Qty: 2}},
		PayloadSize: 76,
	}
	res := s.Apply(deliver(11, 0, 1, tx))
	if res.Code != amcast.ResultAborted {
		t.Fatalf("code %d, want aborted", res.Code)
	}
	if len(res.Record.Rows) != 0 {
		t.Fatalf("aborted tx touched rows: %v", res.Record.Rows)
	}
	after := s.Digest()
	// applied advances (the abort is part of the serial order) but no
	// table row changed.
	if before == after {
		t.Fatal("digest must reflect the applied counter")
	}
	if s.stockYTD[1] != 0 || len(s.pending) != 0 {
		t.Fatal("rollback mutated state")
	}
}

func TestPaymentConservationAcrossShards(t *testing.T) {
	home, cust := shard(t, 1), shard(t, 2)
	tx := gtpcc.Tx{
		Type: gtpcc.Payment, Home: 1, Customer: 3, CustWarehouse: 2,
		Amount: 250, PayloadSize: 48,
	}
	home.Apply(deliver(12, 0, 1, tx))
	cust.Apply(deliver(12, 0, 2, tx))
	if home.ytd != 250 || cust.paidTotal != 250 {
		t.Fatalf("ytd %d, paid %d", home.ytd, cust.paidTotal)
	}
	if err := CheckInvariants([]*Shard{home, cust}); err != nil {
		t.Fatal(err)
	}
	// A partially applied payment (home only) must break conservation.
	home2, cust2 := shard(t, 1), shard(t, 2)
	home2.Apply(deliver(13, 0, 1, tx))
	if err := CheckInvariants([]*Shard{home2, cust2}); err == nil {
		t.Fatal("partial payment not detected")
	}
}

func TestPartialNewOrderBreaksConservation(t *testing.T) {
	s1, s2 := shard(t, 1), shard(t, 2)
	tx := gtpcc.Tx{
		Type: gtpcc.NewOrder, Home: 1, Items: 1,
		Lines:       []gtpcc.OrderLine{{Item: 2, Supply: 2, Qty: 4}},
		PayloadSize: 76,
	}
	s1.Apply(deliver(14, 0, 1, tx)) // home applies, supplier does not
	if err := CheckInvariants([]*Shard{s1, s2}); err == nil {
		t.Fatal("partial new-order not detected")
	}
}

func TestDeliveryCreditsCustomers(t *testing.T) {
	s := shard(t, 1)
	no := gtpcc.Tx{
		Type: gtpcc.NewOrder, Home: 1, Customer: 2, Items: 1,
		Lines:       []gtpcc.OrderLine{{Item: 5, Supply: 1, Qty: 2}},
		PayloadSize: 76,
	}
	s.Apply(deliver(15, 0, 1, no))
	balBefore := s.balance[2]
	s.Apply(deliver(16, 1, 1, gtpcc.Tx{Type: gtpcc.Delivery, Home: 1, PayloadSize: 40}))
	credit := 2 * ItemPrice(s.cfg.Seed, 1, 5)
	if got := s.balance[2] - balBefore; got != credit {
		t.Fatalf("delivery credit %d, want %d", got, credit)
	}
	if len(s.pending) != 0 || s.delivered != 1 {
		t.Fatalf("pending %d, delivered %d", len(s.pending), s.delivered)
	}
	if err := s.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyTransactionsCommitWithoutMutating(t *testing.T) {
	s := shard(t, 4)
	base := s.Digest()
	for i, tx := range []gtpcc.Tx{
		{Type: gtpcc.OrderStatus, Home: 4, Customer: 1, PayloadSize: 40},
		{Type: gtpcc.StockLevel, Home: 4, Threshold: 15, PayloadSize: 40},
	} {
		res := s.Apply(deliver(uint64(20+i), uint64(i), 4, tx))
		if res.Code != amcast.ResultCommitted {
			t.Fatalf("code %d", res.Code)
		}
		for _, row := range res.Record.Rows {
			if row.Write {
				t.Fatalf("read-only tx wrote row %+v", row)
			}
		}
	}
	_ = base
	if err := s.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushAndForeignPayloadsAreNoOps(t *testing.T) {
	s := shard(t, 1)
	before := s.Digest()
	res := s.Apply(amcast.Delivery{Group: 1, Msg: amcast.Message{
		ID: 1, Dst: []amcast.GroupID{1}, Flags: amcast.FlagFlush,
	}})
	if res.Code != amcast.ResultNone {
		t.Fatalf("flush executed: code %d", res.Code)
	}
	res = s.Apply(amcast.Delivery{Group: 1, Msg: amcast.Message{
		ID: 2, Dst: []amcast.GroupID{1}, Payload: []byte("not a transaction"),
	}})
	if res.Code != amcast.ResultNone {
		t.Fatalf("foreign payload executed: code %d", res.Code)
	}
	if s.Digest() != before {
		t.Fatal("no-op deliveries mutated state")
	}
}

func TestDigestDeterministicAndOrderSensitive(t *testing.T) {
	a, b, c := shard(t, 1), shard(t, 1), shard(t, 1)
	// A delivery and a new-order do not commute: delivered-after leaves
	// an empty queue and a credited customer, delivered-before leaves
	// the order pending.
	tx1 := gtpcc.Tx{Type: gtpcc.Delivery, Home: 1, PayloadSize: 40}
	tx2 := gtpcc.Tx{
		Type: gtpcc.NewOrder, Home: 1, Customer: 1, Items: 1,
		Lines:       []gtpcc.OrderLine{{Item: 1, Supply: 1, Qty: 1}},
		PayloadSize: 76,
	}
	a.Apply(deliver(1, 0, 1, tx1))
	a.Apply(deliver(2, 1, 1, tx2))
	b.Apply(deliver(1, 0, 1, tx1))
	b.Apply(deliver(2, 1, 1, tx2))
	if a.Digest() != b.Digest() {
		t.Fatal("same sequence, different digests")
	}
	c.Apply(deliver(2, 0, 1, tx2))
	c.Apply(deliver(1, 1, 1, tx1))
	if a.Digest() == c.Digest() {
		t.Fatal("different order produced the same digest (order-insensitive digest is useless as a replica witness)")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := shard(t, 1)
	tx := gtpcc.Tx{
		Type: gtpcc.NewOrder, Home: 1, Customer: 1, Items: 1,
		Lines:       []gtpcc.OrderLine{{Item: 3, Supply: 1, Qty: 2}},
		PayloadSize: 76,
	}
	s.Apply(deliver(1, 0, 1, tx))
	snap := s.Clone()
	want := snap.Digest()
	s.Apply(deliver(2, 1, 1, gtpcc.Tx{Type: gtpcc.Payment, Home: 1, Customer: 2, CustWarehouse: 1, Amount: 99, PayloadSize: 48}))
	s.Apply(deliver(3, 2, 1, gtpcc.Tx{Type: gtpcc.Delivery, Home: 1, PayloadSize: 40}))
	if snap.Digest() != want {
		t.Fatal("clone aliased the live shard")
	}
}

// TestApplyIsTotalOverHostileKeys: Apply must never panic, whatever
// int32 keys a decodable payload carries (negative values survive the
// uint32 varint round-trip) — it normalizes them deterministically.
func TestApplyIsTotalOverHostileKeys(t *testing.T) {
	a, b := shard(t, 1), shard(t, 1)
	txs := []gtpcc.Tx{
		{Type: gtpcc.NewOrder, Home: 1, Customer: -7, Items: 1,
			Lines:       []gtpcc.OrderLine{{Item: -5, Supply: 1, Qty: 2}},
			PayloadSize: 76},
		{Type: gtpcc.Payment, Home: 1, Customer: -1, CustWarehouse: 1, Amount: 5, PayloadSize: 48},
		{Type: gtpcc.OrderStatus, Home: 1, Customer: 1 << 30, PayloadSize: 40},
		{Type: gtpcc.StockLevel, Home: 1, Threshold: -3, PayloadSize: 40},
	}
	for i, tx := range txs {
		ra := a.Apply(deliver(uint64(100+i), uint64(i), 1, tx))
		rb := b.Apply(deliver(uint64(100+i), uint64(i), 1, tx))
		if ra.Code != rb.Code || ra.Record.ReadSet != rb.Record.ReadSet {
			t.Fatalf("tx %d: hostile keys executed nondeterministically", i)
		}
	}
	if a.Digest() != b.Digest() {
		t.Fatal("hostile keys diverged replicas")
	}
	if err := a.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSeedChangesPopulation(t *testing.T) {
	a := MustNew(Config{Warehouse: 1, Seed: 1})
	b := MustNew(Config{Warehouse: 1, Seed: 2})
	if a.Digest() == b.Digest() {
		t.Fatal("different seeds produced identical populations")
	}
}
