package store

import (
	"encoding/binary"
	"fmt"
	"sort"

	"flexcast/amcast"
	"flexcast/internal/codec"
	"flexcast/internal/gtpcc"
)

// Binary codecs for the shard and the combined executor snapshot. Like
// the engine snapshot codecs, map iteration is sorted so the same state
// always marshals to the same bytes — recovered and never-crashed
// shards are diffable at the byte level, not just by digest.

// AppendBinary appends the shard's canonical serialization (the same
// field walk Digest hashes, plus the configuration needed to rebuild).
func (s *Shard) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(uint32(s.cfg.Warehouse)))
	buf = binary.AppendUvarint(buf, uint64(s.cfg.Items))
	buf = binary.AppendUvarint(buf, uint64(s.cfg.Customers))
	buf = binary.AppendUvarint(buf, uint64(s.cfg.Seed))
	buf = binary.AppendUvarint(buf, s.applied)
	buf = binary.AppendUvarint(buf, uint64(s.ytd))
	buf = binary.AppendUvarint(buf, uint64(s.paidTotal))
	buf = binary.AppendUvarint(buf, s.delivered)
	buf = binary.AppendUvarint(buf, uint64(s.deliveredSum))
	buf = binary.AppendUvarint(buf, s.nextOrder)
	buf = binary.AppendUvarint(buf, uint64(s.refills))
	buf = binary.AppendUvarint(buf, uint64(len(s.stockQty)))
	for i := range s.stockQty {
		buf = binary.AppendUvarint(buf, uint64(uint32(s.stockQty[i])))
		buf = binary.AppendUvarint(buf, uint64(s.stockYTD[i]))
		buf = binary.AppendUvarint(buf, uint64(uint32(s.stockCnt[i])))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.balance)))
	for c := range s.balance {
		buf = binary.AppendUvarint(buf, uint64(s.balance[c]))
		buf = binary.AppendUvarint(buf, uint64(s.ytdPaid[c]))
		buf = binary.AppendUvarint(buf, uint64(uint32(s.payCnt[c])))
		buf = binary.AppendUvarint(buf, uint64(s.lastOrder[c]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.pending)))
	for _, o := range s.pending {
		buf = binary.AppendUvarint(buf, o.id)
		buf = binary.AppendUvarint(buf, uint64(uint32(o.cust)))
		buf = binary.AppendUvarint(buf, uint64(o.total))
		buf = binary.AppendUvarint(buf, uint64(len(o.lines)))
		for _, l := range o.lines {
			buf = binary.AppendUvarint(buf, uint64(uint32(l.Item)))
			buf = binary.AppendUvarint(buf, uint64(uint32(l.Supply)))
			buf = binary.AppendUvarint(buf, uint64(uint32(l.Qty)))
		}
	}
	ws := make([]amcast.GroupID, 0, len(s.orderedFrom))
	for w := range s.orderedFrom {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ws)))
	for _, w := range ws {
		buf = binary.AppendUvarint(buf, uint64(uint32(w)))
		buf = binary.AppendUvarint(buf, uint64(s.orderedFrom[w]))
	}
	return buf
}

// DecodeShard reads an AppendBinary record from r.
func DecodeShard(r *codec.Reader) *Shard {
	s := &Shard{
		cfg: Config{
			Warehouse: amcast.GroupID(r.Uvarint()),
			Items:     int(r.Uvarint()),
			Customers: int(r.Uvarint()),
			Seed:      int64(r.Uvarint()),
		},
		orderedFrom: make(map[amcast.GroupID]int64),
	}
	s.applied = r.Uvarint()
	s.ytd = int64(r.Uvarint())
	s.paidTotal = int64(r.Uvarint())
	s.delivered = r.Uvarint()
	s.deliveredSum = int64(r.Uvarint())
	s.nextOrder = r.Uvarint()
	s.refills = int64(r.Uvarint())
	nItems := r.Count()
	s.stockQty = make([]int32, 0, nItems)
	s.stockYTD = make([]int64, 0, nItems)
	s.stockCnt = make([]int32, 0, nItems)
	for i := 0; i < nItems && r.Err() == nil; i++ {
		s.stockQty = append(s.stockQty, int32(r.Uvarint()))
		s.stockYTD = append(s.stockYTD, int64(r.Uvarint()))
		s.stockCnt = append(s.stockCnt, int32(r.Uvarint()))
	}
	nCust := r.Count()
	s.balance = make([]int64, 0, nCust)
	s.ytdPaid = make([]int64, 0, nCust)
	s.payCnt = make([]int32, 0, nCust)
	s.lastOrder = make([]int64, 0, nCust)
	for c := 0; c < nCust && r.Err() == nil; c++ {
		s.balance = append(s.balance, int64(r.Uvarint()))
		s.ytdPaid = append(s.ytdPaid, int64(r.Uvarint()))
		s.payCnt = append(s.payCnt, int32(r.Uvarint()))
		s.lastOrder = append(s.lastOrder, int64(r.Uvarint()))
	}
	nPend := r.Count()
	s.pending = make([]order, 0, nPend)
	for i := 0; i < nPend && r.Err() == nil; i++ {
		o := order{
			id:    r.Uvarint(),
			cust:  int32(r.Uvarint()),
			total: int64(r.Uvarint()),
		}
		nLines := r.Count()
		o.lines = make([]gtpcc.OrderLine, 0, nLines)
		for j := 0; j < nLines && r.Err() == nil; j++ {
			o.lines = append(o.lines, gtpcc.OrderLine{
				Item:   int32(r.Uvarint()),
				Supply: amcast.GroupID(r.Uvarint()),
				Qty:    int32(r.Uvarint()),
			})
		}
		s.pending = append(s.pending, o)
	}
	nOF := r.Count()
	for i := 0; i < nOF && r.Err() == nil; i++ {
		w := amcast.GroupID(r.Uvarint())
		s.orderedFrom[w] = int64(r.Uvarint())
	}
	return s
}

var _ amcast.BinarySnapshot = (*execSnapshot)(nil)

// MarshalBinary implements amcast.BinarySnapshot: the inner engine
// snapshot (which must itself be an amcast.BinarySnapshot), the shard,
// the optional mirror, and the delivered-prefix watermark.
func (s *execSnapshot) MarshalBinary() ([]byte, error) {
	bs, ok := s.eng.(amcast.BinarySnapshot)
	if !ok {
		return nil, fmt.Errorf("store: engine snapshot %T has no binary form", s.eng)
	}
	engBytes, err := bs.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(engBytes)+1024)
	buf = binary.AppendUvarint(buf, uint64(len(engBytes)))
	buf = append(buf, engBytes...)
	buf = s.shard.AppendBinary(buf)
	buf = codec.AppendBool(buf, s.mirror != nil)
	if s.mirror != nil {
		buf = s.mirror.AppendBinary(buf)
	}
	buf = binary.AppendUvarint(buf, s.watermark)
	return buf, nil
}

// UnmarshalSnapshot decodes an executor snapshot. engDecode decodes the
// embedded engine snapshot — pass the UnmarshalSnapshot of the protocol
// package the deployment runs (core, skeen, hierarchical).
func UnmarshalSnapshot(data []byte, engDecode func([]byte) (amcast.Snapshot, error)) (amcast.Snapshot, error) {
	r := codec.NewReader(data)
	n := r.Count()
	engBytes := r.BytesN(n)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("store: snapshot decode: %w", err)
	}
	eng, err := engDecode(engBytes)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot decode: %w", err)
	}
	s := &execSnapshot{eng: eng, shard: DecodeShard(r)}
	if r.Bool() {
		s.mirror = DecodeShard(r)
	}
	s.watermark = r.Uvarint()
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("store: snapshot decode: %w", err)
	}
	return s, nil
}
