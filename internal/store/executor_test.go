package store

import (
	"math/rand"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/gtpcc"
	"flexcast/internal/overlay"
	"flexcast/internal/prototest"
	"flexcast/internal/skeen"
	"flexcast/internal/trace"
)

var testGroups = []amcast.GroupID{1, 2, 3, 4}

// gtpccWorkload builds a memoized prototest workload: client c's i-th
// message is a gTPC-C transaction whose payload the store executes.
// Memoization keeps the workload identical across repeated runs of the
// same config (determinism comparisons re-run the generator).
func gtpccWorkload(groups []amcast.GroupID, seed int64) func(c, i int, rng *rand.Rand) amcast.Message {
	type client struct {
		gen  *gtpcc.Gen
		msgs []amcast.Message
	}
	clients := make(map[int]*client)
	return func(c, i int, _ *rand.Rand) amcast.Message {
		cl := clients[c]
		if cl == nil {
			home := groups[c%len(groups)]
			var nearest []amcast.GroupID
			for _, g := range groups {
				if g != home {
					nearest = append(nearest, g)
				}
			}
			cl = &client{gen: gtpcc.MustNew(gtpcc.Config{
				Home: home, Nearest: nearest, Locality: 0.9,
			}, rand.New(rand.NewSource(seed+int64(c)*7919)))}
			clients[c] = cl
		}
		for len(cl.msgs) <= i {
			tx := cl.gen.Next()
			cl.msgs = append(cl.msgs, amcast.Message{
				ID:      amcast.NewMsgID(c, uint64(len(cl.msgs)+1)),
				Sender:  amcast.ClientNode(c),
				Dst:     tx.Dst,
				Payload: gtpcc.EncodeTx(tx),
			})
		}
		return cl.msgs[i]
	}
}

// execDeployment wires Executor-wrapped engines into prototest runs and
// keeps the created executors for post-run audits.
type execDeployment struct {
	t         *testing.T
	factory   func(g amcast.GroupID) amcast.SnapshotEngine
	rec       *trace.ExecRecorder
	executors map[amcast.GroupID][]*Executor
}

func newExecDeployment(t *testing.T, factory func(g amcast.GroupID) amcast.SnapshotEngine, rec *trace.ExecRecorder) *execDeployment {
	return &execDeployment{
		t: t, factory: factory, rec: rec,
		executors: make(map[amcast.GroupID][]*Executor),
	}
}

func (d *execDeployment) Factory(g amcast.GroupID) amcast.Engine {
	ex, err := NewExecutor(d.factory(g), Config{Warehouse: g}, true)
	if err != nil {
		d.t.Fatal(err)
	}
	if d.rec != nil {
		ex.SetExecObserver(d.rec.OnApply)
	}
	d.executors[g] = append(d.executors[g], ex)
	return ex
}

// liveShards returns the first-created executor's shard per group.
func (d *execDeployment) liveShards() []*Shard {
	var shards []*Shard
	for _, g := range testGroups {
		if exs := d.executors[g]; len(exs) > 0 {
			shards = append(shards, exs[0].Shard())
		}
	}
	return shards
}

func (d *execDeployment) checkMirrors() {
	d.t.Helper()
	for _, exs := range d.executors {
		for _, ex := range exs {
			if err := ex.CheckMirror(); err != nil {
				d.t.Fatal(err)
			}
		}
	}
}

func flexcastFactory(t *testing.T) (func(g amcast.GroupID) amcast.SnapshotEngine, func(m amcast.Message) []amcast.NodeID) {
	t.Helper()
	ov, err := overlay.NewCDAG(testGroups)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(g amcast.GroupID) amcast.SnapshotEngine {
		eng, err := core.New(core.Config{Group: g, Overlay: ov})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	route := func(m amcast.Message) []amcast.NodeID {
		return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
	}
	return factory, route
}

// TestStoreSnapshotReplay exercises the combined engine+store snapshot
// under the generic snapshot-replay audit: restored executors must
// reproduce the live outputs AND deliveries (including execution
// verdicts) exactly.
func TestStoreSnapshotReplay(t *testing.T) {
	factory, route := flexcastFactory(t)
	dep := newExecDeployment(t, factory, nil)
	prototest.RunSnapshotReplay(t, prototest.RandomConfig{
		Groups:      testGroups,
		Clients:     3,
		Messages:    40,
		Route:       route,
		Factory:     dep.Factory,
		Seed:        11,
		NextMessage: gtpccWorkload(testGroups, 11),
	}, 30)
}

// TestExecutionSerializableUnderChunking drives the chunked execution
// (random chunk sizes through the engines' batch fast paths) and checks
// the store-level properties: the execution is cross-group
// serializable, the cross-shard invariants hold, and mirror replicas
// reach byte-identical digests.
func TestExecutionSerializableUnderChunking(t *testing.T) {
	for runSeed := int64(1); runSeed <= 3; runSeed++ {
		factory, route := flexcastFactory(t)
		execRec := trace.NewExecRecorder()
		dep := newExecDeployment(t, factory, execRec)
		rec := prototest.RunChunked(t, prototest.RandomConfig{
			Groups:      testGroups,
			Clients:     3,
			Messages:    50,
			Route:       route,
			Factory:     dep.Factory,
			Seed:        23,
			NextMessage: gtpccWorkload(testGroups, 23),
		}, runSeed)
		if err := rec.CheckAll(true); err != nil {
			t.Fatalf("run seed %d: multicast spec: %v", runSeed, err)
		}
		if execRec.Records() == 0 {
			t.Fatalf("run seed %d: nothing executed", runSeed)
		}
		if err := execRec.CheckAll(); err != nil {
			t.Fatalf("run seed %d: %v", runSeed, err)
		}
		if err := CheckInvariants(dep.liveShards()); err != nil {
			t.Fatalf("run seed %d: %v", runSeed, err)
		}
		dep.checkMirrors()
	}
}

// TestExecutionSerializablePerEnvelope is the per-envelope counterpart:
// the simulator drives Executor-wrapped FlexCast engines with jitter,
// and the execution must satisfy the same store-level properties.
func TestExecutionSerializablePerEnvelope(t *testing.T) {
	factory, route := flexcastFactory(t)
	execRec := trace.NewExecRecorder()
	dep := newExecDeployment(t, factory, execRec)
	rec := prototest.RunRandom(t, prototest.RandomConfig{
		Groups:      testGroups,
		Clients:     4,
		Messages:    60,
		Route:       route,
		Factory:     dep.Factory,
		Seed:        5,
		Jitter:      3_000,
		NextMessage: gtpccWorkload(testGroups, 5),
	})
	if err := rec.CheckAll(true); err != nil {
		t.Fatal(err)
	}
	if err := execRec.CheckAll(); err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariants(dep.liveShards()); err != nil {
		t.Fatal(err)
	}
	dep.checkMirrors()
}

// TestChunkedAndPerEnvelopeDigestsIdentical verifies store determinism
// across execution strategies on the strong batch-equivalence contract
// (Skeen's engine): replaying each group's exact input sequence through
// BatchStep in random chunks must land every shard on a byte-identical
// digest.
func TestChunkedAndPerEnvelopeDigestsIdentical(t *testing.T) {
	factory := func(g amcast.GroupID) amcast.SnapshotEngine {
		eng, err := skeen.New(skeen.Config{Group: g, Groups: testGroups})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	dep := newExecDeployment(t, factory, nil)
	prototest.RunBatchEquivalence(t, prototest.RandomConfig{
		Groups:   testGroups,
		Clients:  3,
		Messages: 50,
		Route: func(m amcast.Message) []amcast.NodeID {
			nodes := make([]amcast.NodeID, len(m.Dst))
			for i, g := range m.Dst {
				nodes[i] = amcast.GroupNode(g)
			}
			return nodes
		},
		Factory:     dep.Factory,
		Seed:        31,
		NextMessage: gtpccWorkload(testGroups, 31),
	})
	for _, g := range testGroups {
		exs := dep.executors[g]
		if len(exs) != 2 {
			t.Fatalf("group %d: %d executors, want live+replay", g, len(exs))
		}
		if a, b := exs[0].Digest(), exs[1].Digest(); a != b {
			t.Fatalf("group %d: per-envelope digest %x != chunked digest %x", g, a[:8], b[:8])
		}
	}
	dep.checkMirrors()
}

// TestExecutorRestoreRejectsWrongSnapshots covers the snapshot type and
// group guards.
func TestExecutorRestoreRejectsWrongSnapshots(t *testing.T) {
	factory, _ := flexcastFactory(t)
	ex1, err := NewExecutor(factory(1), Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := NewExecutor(factory(2), Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex1.Restore(ex2.Snapshot()); err == nil {
		t.Fatal("cross-group restore accepted")
	}
	if err := ex1.Restore(factory(1).Snapshot()); err == nil {
		t.Fatal("bare engine snapshot accepted by executor")
	}
	if err := ex1.Restore(ex1.Snapshot()); err != nil {
		t.Fatal(err)
	}
}
