package store

import (
	"sync"
	"testing"
	"time"

	"flexcast/amcast"
	"flexcast/internal/gtpcc"
	"flexcast/internal/trace"
)

// stubEngine is a minimal SnapshotEngine feeding scripted deliveries —
// the executor read tests need delivery sequencing, not protocol logic.
type stubEngine struct {
	g    amcast.GroupID
	dels []amcast.Delivery
}

func (f *stubEngine) Group() amcast.GroupID { return f.g }

func (f *stubEngine) OnEnvelope(env amcast.Envelope) []amcast.Output { return nil }

func (f *stubEngine) TakeDeliveries() []amcast.Delivery {
	d := f.dels
	f.dels = nil
	return d
}

type stubSnapshot struct{ g amcast.GroupID }

func (s *stubSnapshot) SnapshotGroup() amcast.GroupID { return s.g }

func (f *stubEngine) Snapshot() amcast.Snapshot { return &stubSnapshot{g: f.g} }

func (f *stubEngine) Restore(s amcast.Snapshot) error { return nil }

// deliver queues one transaction delivery with the given sequence.
func (f *stubEngine) deliver(seq uint64, id uint64, tx gtpcc.Tx) {
	f.dels = append(f.dels, amcast.Delivery{
		Group: f.g,
		Seq:   seq,
		Msg: amcast.Message{
			ID:      amcast.MsgID(id),
			Sender:  amcast.ClientNode(0),
			Dst:     tx.Involved(),
			Payload: gtpcc.EncodeTx(tx),
		},
	})
}

func newReadExecutor(t *testing.T) (*Executor, *stubEngine) {
	t.Helper()
	eng := &stubEngine{g: 1}
	ex, err := NewExecutor(eng, Config{Warehouse: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	return ex, eng
}

func TestShardReadTx(t *testing.T) {
	s := MustNew(Config{Warehouse: 1})
	val, rows, err := s.ReadTx(gtpcc.Tx{Type: gtpcc.OrderStatus, Home: 1, Customer: 3})
	if err != nil {
		t.Fatal(err)
	}
	if val != -1 {
		t.Fatalf("fresh customer's last order = %d, want -1", val)
	}
	for _, r := range rows {
		if r.Write {
			t.Fatalf("order-status read reported a write row %+v", r)
		}
	}
	if _, _, err := s.ReadTx(gtpcc.Tx{Type: gtpcc.Payment, Home: 1}); err == nil {
		t.Fatal("ReadTx accepted a payment transaction")
	}
	// A read must not mutate shard state.
	before := s.Digest()
	if _, _, err := s.ReadTx(gtpcc.Tx{Type: gtpcc.StockLevel, Home: 1, Threshold: 15}); err != nil {
		t.Fatal(err)
	}
	if s.Digest() != before {
		t.Fatal("read-only transaction changed the shard digest")
	}
}

func TestExecutorReadYourWrites(t *testing.T) {
	ex, eng := newReadExecutor(t)
	rec := trace.NewExecRecorder()
	ex.SetExecObserver(rec.OnApply)
	ex.SetReadObserver(rec.OnFastRead)

	// Before any delivery: read at barrier 0 sees the initial state.
	res, err := ex.TryRead(gtpcc.Tx{Type: gtpcc.OrderStatus, Home: 1, Customer: 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != -1 || res.Watermark != 0 {
		t.Fatalf("initial read = %+v, want value -1 at watermark 0", res)
	}

	// A barrier ahead of the delivered prefix fails TryRead.
	if _, err := ex.TryRead(gtpcc.Tx{Type: gtpcc.OrderStatus, Home: 1, Customer: 7}, 1); err == nil {
		t.Fatal("TryRead served a read ahead of its barrier")
	}

	// Apply a new-order for customer 7, then read at the observed prefix:
	// the read must see the write.
	order := gtpcc.Tx{
		Type: gtpcc.NewOrder, Home: 1, Customer: 7, Items: 1,
		Lines: []gtpcc.OrderLine{{Item: 2, Supply: 1, Qty: 1}},
	}
	order.Dst = order.Involved()
	eng.deliver(0, 101, order)
	dels := ex.TakeDeliveries()
	if len(dels) != 1 || dels[0].Result != amcast.ResultCommitted {
		t.Fatalf("delivery results = %+v", dels)
	}
	res, err = ex.Read(gtpcc.Tx{Type: gtpcc.OrderStatus, Home: 1, Customer: 7}, 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("read after new-order = %d, want order id 0", res.Value)
	}
	if res.Watermark != 1 {
		t.Fatalf("watermark = %d, want 1", res.Watermark)
	}

	// Reads routed to the wrong warehouse are rejected.
	if _, err := ex.TryRead(gtpcc.Tx{Type: gtpcc.OrderStatus, Home: 2, Customer: 7}, 0); err == nil {
		t.Fatal("TryRead accepted a foreign warehouse's read")
	}

	if rec.FastReads() != 2 {
		t.Fatalf("recorded %d fast reads, want 2", rec.FastReads())
	}
	if err := rec.CheckAll(); err != nil {
		t.Fatal(err)
	}
}

// TestExecutorReadBarrierWait exercises the blocking form: a read issued
// ahead of the delivered prefix parks until the apply path catches up.
func TestExecutorReadBarrierWait(t *testing.T) {
	ex, eng := newReadExecutor(t)
	status := gtpcc.Tx{Type: gtpcc.OrderStatus, Home: 1, Customer: 4}

	var wg sync.WaitGroup
	wg.Add(1)
	var res ReadResult
	var readErr error
	go func() {
		defer wg.Done()
		res, readErr = ex.Read(status, 1, 5*time.Second)
	}()

	// Give the reader a moment to park, then deliver.
	time.Sleep(10 * time.Millisecond)
	pay := gtpcc.Tx{Type: gtpcc.Payment, Home: 1, CustWarehouse: 1, Customer: 4, Amount: 10}
	pay.Dst = pay.Involved()
	eng.deliver(0, 201, pay)
	ex.TakeDeliveries()
	wg.Wait()

	if readErr != nil {
		t.Fatal(readErr)
	}
	if res.Watermark < 1 {
		t.Fatalf("read served at watermark %d before its barrier", res.Watermark)
	}

	// A barrier that never arrives times out with an error.
	if _, err := ex.Read(status, 99, 30*time.Millisecond); err == nil {
		t.Fatal("Read returned without reaching its barrier")
	}
}

// TestExecutorReadWatermarkSnapshot verifies the watermark travels with
// snapshots: restore rolls it back, replay re-advances it.
func TestExecutorReadWatermarkSnapshot(t *testing.T) {
	ex, eng := newReadExecutor(t)
	pay := gtpcc.Tx{Type: gtpcc.Payment, Home: 1, CustWarehouse: 1, Customer: 2, Amount: 5}
	pay.Dst = pay.Involved()

	eng.deliver(0, 301, pay)
	ex.TakeDeliveries()
	snap := ex.Snapshot()

	eng.deliver(1, 302, pay)
	ex.TakeDeliveries()
	if got := ex.Watermark(); got != 2 {
		t.Fatalf("watermark = %d, want 2", got)
	}

	if err := ex.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := ex.Watermark(); got != 1 {
		t.Fatalf("watermark after restore = %d, want 1", got)
	}
	// Replay the lost delivery: the watermark re-advances and a read at
	// the old barrier is serveable again.
	eng.deliver(1, 302, pay)
	ex.TakeDeliveries()
	if _, err := ex.TryRead(gtpcc.Tx{Type: gtpcc.OrderStatus, Home: 1, Customer: 2}, 2); err != nil {
		t.Fatal(err)
	}
}
