package store

import (
	"errors"
	"testing"
	"time"

	"flexcast/amcast"
	"flexcast/internal/gtpcc"
	"flexcast/internal/trace"
)

// feedTx pushes one committed new-order through the executor (and so
// into every attached follower's log feed).
func feedTx(t *testing.T, ex *Executor, eng *stubEngine, seq, id uint64) {
	t.Helper()
	eng.deliver(seq, id, gtpcc.Tx{
		Type: gtpcc.NewOrder, Home: 1, Customer: int32(id % gtpcc.NumCustomers), Items: 1,
		Lines: []gtpcc.OrderLine{{Item: int32(id % gtpcc.NumItems), Supply: 1, Qty: 1}},
	})
	ex.TakeDeliveries()
}

func TestReplicaAppliesLogAndServesLeasedReads(t *testing.T) {
	ex, eng := newReadExecutor(t)
	now := uint64(0)
	clock := func() uint64 { return now }
	rep, err := ex.AttachFollower(ReplicaConfig{Idx: 1, Clock: clock, AutoGrantTerm: 1000, Margin: 200})
	if err != nil {
		t.Fatal(err)
	}

	// Before any grant, reads are refused — not served stale.
	if _, err := rep.TryReadAt(gtpcc.Tx{Type: gtpcc.OrderStatus, Home: 1, Customer: 2}, 0, now); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("ungranted replica served a read: %v", err)
	}
	if rep.Refusals() != 1 {
		t.Fatalf("refusals = %d, want 1", rep.Refusals())
	}

	feedTx(t, ex, eng, 0, 7)
	feedTx(t, ex, eng, 1, 8)
	if rep.Watermark() != 2 {
		t.Fatalf("follower watermark = %d, want 2", rep.Watermark())
	}
	if a, b := rep.Shard().Digest(), ex.Digest(); a != b {
		t.Fatalf("follower digest diverged from serving node: %x != %x", a[:8], b[:8])
	}

	// The feed renewed the lease (auto-grant rides the log): reads serve
	// at the follower's own watermark.
	res, err := rep.TryReadAt(gtpcc.Tx{Type: gtpcc.OrderStatus, Home: 1, Customer: 7 % gtpcc.NumCustomers}, 2, now)
	if err != nil {
		t.Fatal(err)
	}
	if res.Watermark != 2 {
		t.Fatalf("read watermark = %d, want 2", res.Watermark)
	}
	if rep.Reads() != 1 {
		t.Fatalf("reads = %d, want 1", rep.Reads())
	}

	// Inside the margin the replica already refuses — it stops serving
	// strictly before the grantor considers the lease dead.
	now += 850 // expiry 1000, margin 200: 850+200 >= 1000
	if _, err := rep.TryReadAt(gtpcc.Tx{Type: gtpcc.OrderStatus, Home: 1, Customer: 2}, 0, now); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("read inside the safety margin served: %v", err)
	}

	// A fresh feed renews; revocation refuses immediately.
	feedTx(t, ex, eng, 2, 9)
	if !rep.HoldsLease(now) {
		t.Fatal("lease not renewed by log feed")
	}
	rep.Revoke()
	if _, err := rep.TryReadAt(gtpcc.Tx{Type: gtpcc.OrderStatus, Home: 1, Customer: 2}, 0, now); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("read after revoke served: %v", err)
	}
}

func TestReplicaSkipsReplayedPrefix(t *testing.T) {
	ex, eng := newReadExecutor(t)
	rep, err := ex.AttachFollower(ReplicaConfig{Idx: 1})
	if err != nil {
		t.Fatal(err)
	}
	feedTx(t, ex, eng, 0, 7)
	feedTx(t, ex, eng, 1, 8)
	dig := rep.Shard().Digest()

	// Recovery replay re-feeds the applied prefix: the follower must
	// skip it (its state already reflects those deliveries) and keep its
	// watermark.
	eng.deliver(0, 7, gtpcc.Tx{
		Type: gtpcc.NewOrder, Home: 1, Customer: 7 % gtpcc.NumCustomers, Items: 1,
		Lines: []gtpcc.OrderLine{{Item: 7, Supply: 1, Qty: 1}},
	})
	ex.TakeDeliveries()
	if rep.Watermark() != 2 {
		t.Fatalf("replayed feed moved the watermark to %d", rep.Watermark())
	}
	if rep.Shard().Digest() != dig {
		t.Fatal("replayed feed mutated follower state")
	}
}

func TestReplicaAsyncReadWaitsForBarrier(t *testing.T) {
	ex, eng := newReadExecutor(t)
	now := func() uint64 { return 0 }
	rep, err := ex.AttachFollower(ReplicaConfig{Idx: 1, Async: true, Clock: now, AutoGrantTerm: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	var recs []trace.FastReadRecord
	rep.SetReadObserver(func(r trace.FastReadRecord) { recs = append(recs, r) })

	// A blocking read refuses promptly when no lease is held (the
	// barrier wait is pointless on a lease-less replica).
	if _, err := rep.Read(gtpcc.Tx{Type: gtpcc.StockLevel, Home: 1, Threshold: 10}, 2, time.Second); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("lease-less blocking read did not refuse: %v", err)
	}
	rep.Grant(1, 1<<40)

	done := make(chan error, 1)
	go func() {
		// Barrier 2 is ahead of the follower: the read must block until
		// the async applier catches up, then serve.
		_, err := rep.Read(gtpcc.Tx{Type: gtpcc.StockLevel, Home: 1, Threshold: 10}, 2, 5*time.Second)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	feedTx(t, ex, eng, 0, 3)
	feedTx(t, ex, eng, 1, 4)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recorded %d reads, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Replica != 1 || !rec.LeaseOK || rec.Barrier != 2 || rec.Watermark < 2 {
		t.Fatalf("bad follower read record: %+v", rec)
	}
	if rec.Group != amcast.GroupID(1) {
		t.Fatalf("record group = %d", rec.Group)
	}

	// An unreachable barrier times out rather than hanging.
	if _, err := rep.Read(gtpcc.Tx{Type: gtpcc.StockLevel, Home: 1, Threshold: 10}, 99, 20*time.Millisecond); err == nil {
		t.Fatal("unreachable barrier served")
	}
}
