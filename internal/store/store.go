// Package store is the executable side of the gTPC-C workload: a
// deterministic, partitioned TPC-C state machine in which every
// warehouse is one shard owned by one multicast group (warehouse = group
// = shard — the paper's partial-replication model, §2 and §5.3). A shard
// holds the stock, customer and order rows of its warehouse only;
// transactions arrive as atomically multicast messages and are executed
// at every involved shard in delivery order:
//
//   - single-shard transactions (order-status, delivery, stock-level,
//     and the ~98 % of new-orders and ~85 % of payments that stay home)
//     execute locally at their one destination group;
//   - multi-shard new-order and payment execute at every involved
//     group, each group applying exactly the portion touching its rows
//     (remote stock decrements, remote customer debits).
//
// Execution is one-shot and fully deterministic from (payload, shard
// state): commit/abort verdicts derive from the payload alone (the
// TPC-C 1 % new-order rollback travels in the transaction), so involved
// shards never need to communicate and replicas replaying the same
// delivery sequence reach byte-identical state — Digest() is the
// auditable witness. Every application is also reported as a
// trace.ExecRecord so the cross-group serializability checker can
// verify the execution, not just the delivery order.
//
// The static item catalog (prices) is replicated logic, not state: a
// pure function of (seed, warehouse, item), mirroring TPC-C's
// fully-replicated ITEM table, which is what lets a home warehouse
// price order lines supplied by remote warehouses without holding their
// rows.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"flexcast/amcast"
	"flexcast/internal/gtpcc"
	"flexcast/internal/trace"
)

// Config parameterizes one shard.
type Config struct {
	// Warehouse is the owning group (required).
	Warehouse amcast.GroupID
	// Items is the stock table size (default gtpcc.NumItems).
	Items int
	// Customers is the customer table size (default gtpcc.NumCustomers).
	Customers int
	// Seed drives the initial population; every shard of a deployment
	// must share it (default 1).
	Seed int64
}

func (c *Config) fill() error {
	if c.Warehouse == amcast.NoGroup {
		return fmt.Errorf("store: missing warehouse")
	}
	if c.Items == 0 {
		c.Items = gtpcc.NumItems
	}
	if c.Customers == 0 {
		c.Customers = gtpcc.NumCustomers
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// order is one undelivered order at its home warehouse.
type order struct {
	id    uint64
	cust  int32
	total int64
	lines []gtpcc.OrderLine
}

// Shard is one warehouse's partition of the gTPC-C database. Not safe
// for concurrent use: a shard is owned by the runtime that drains its
// group's engine, exactly like the engine itself.
type Shard struct {
	cfg Config

	// applied counts executed transactions (the shard-local serial
	// order the serializability checker audits).
	applied uint64

	// Stock table (per item).
	stockQty []int32
	stockYTD []int64 // quantity ordered against this warehouse's stock
	stockCnt []int32 // order count per item
	refills  int64   // number of +91 restocks (TPC-C §2.4.2.2)

	// Customer table.
	balance   []int64
	ytdPaid   []int64 // per-customer payment debits at this shard
	payCnt    []int32
	lastOrder []int64 // most recent home order id per customer, -1 none

	// Warehouse row.
	ytd          int64 // payments received as the home warehouse
	paidTotal    int64 // total debited from customers resident here
	delivered    uint64
	deliveredSum int64 // order totals credited back by delivery txs

	// Order queue (home warehouse only).
	nextOrder uint64
	pending   []order
	// orderedFrom[w] is the total quantity this warehouse's new-orders
	// sourced from supply warehouse w (including itself); the cross-
	// shard conservation check matches it against w's stockYTD.
	orderedFrom map[amcast.GroupID]int64
}

// New builds a freshly populated shard.
func New(cfg Config) (*Shard, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Shard{
		cfg:         cfg,
		stockQty:    make([]int32, cfg.Items),
		stockYTD:    make([]int64, cfg.Items),
		stockCnt:    make([]int32, cfg.Items),
		balance:     make([]int64, cfg.Customers),
		ytdPaid:     make([]int64, cfg.Customers),
		payCnt:      make([]int32, cfg.Customers),
		lastOrder:   make([]int64, cfg.Customers),
		orderedFrom: make(map[amcast.GroupID]int64),
	}
	for i := range s.stockQty {
		s.stockQty[i] = initStock(cfg.Seed, cfg.Warehouse, int32(i))
	}
	for c := range s.balance {
		s.balance[c] = initBalance(cfg.Seed, cfg.Warehouse, int32(c))
		s.lastOrder[c] = -1
	}
	return s, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Shard {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Warehouse returns the shard's owning group.
func (s *Shard) Warehouse() amcast.GroupID { return s.cfg.Warehouse }

// Applied reports how many transactions the shard has executed.
func (s *Shard) Applied() uint64 { return s.applied }

// splitmix64 is the population hash: every initial row value is a pure
// function of (seed, warehouse, table, key), so any node can recompute
// any warehouse's static catalog (prices) and initial sums without
// holding the shard.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func popHash(seed int64, w amcast.GroupID, table uint8, key int32) uint64 {
	return splitmix64(uint64(seed)<<40 ^ uint64(uint32(w))<<8 ^ uint64(table)<<48 ^ uint64(uint32(key)))
}

// ItemPrice returns the catalog price of an item at a supply warehouse —
// static, fully replicated data (TPC-C's ITEM table).
func ItemPrice(seed int64, w amcast.GroupID, item int32) int64 {
	return 1 + int64(popHash(seed, w, 0, item)%100)
}

func initStock(seed int64, w amcast.GroupID, item int32) int32 {
	return 10 + int32(popHash(seed, w, trace.TableStock, item)%91) // TPC-C: 10..100
}

func initBalance(seed int64, w amcast.GroupID, cust int32) int64 {
	return 1_000 + int64(popHash(seed, w, trace.TableCustomer, cust)%9_000)
}

// initBalanceSum recomputes the shard's initial customer balance total.
func initBalanceSum(cfg Config) int64 {
	var sum int64
	for c := 0; c < cfg.Customers; c++ {
		sum += initBalance(cfg.Seed, cfg.Warehouse, int32(c))
	}
	return sum
}

func initStockSum(cfg Config) int64 {
	var sum int64
	for i := 0; i < cfg.Items; i++ {
		sum += int64(initStock(cfg.Seed, cfg.Warehouse, int32(i)))
	}
	return sum
}

// Result is the outcome of applying one delivery.
type Result struct {
	// Code is the client-visible verdict (amcast.ResultCommitted,
	// amcast.ResultAborted, or amcast.ResultNone for deliveries that are
	// not transactions: flush multicasts, foreign payloads).
	Code uint8
	// Record is the execution record handed to the serializability
	// checker; meaningful only when Code != amcast.ResultNone.
	Record trace.ExecRecord
}

// Apply executes one delivered message against the shard. It must be
// called in delivery order; determinism is the contract that keeps
// replicas and recovery replays byte-identical.
func (s *Shard) Apply(d amcast.Delivery) Result {
	if d.Msg.Flags&amcast.FlagFlush != 0 {
		return Result{Code: amcast.ResultNone}
	}
	tx, err := gtpcc.DecodeTx(d.Msg.Payload)
	if err != nil {
		// Not a transaction payload (pure-multicast workloads sharing a
		// deployment). Skipping is deterministic: every replica and
		// every involved shard sees the same bytes.
		return Result{Code: amcast.ResultNone}
	}
	rec := trace.ExecRecord{
		Group:    s.cfg.Warehouse,
		Seq:      s.applied,
		TxID:     d.Msg.ID,
		Kind:     uint8(tx.Type),
		ReadSet:  readSetDigest(d.Msg.Payload),
		Involved: tx.Involved(),
	}
	s.applied++
	switch tx.Type {
	case gtpcc.NewOrder:
		rec.Committed, rec.Rows = s.newOrder(tx)
	case gtpcc.Payment:
		rec.Committed, rec.Rows = s.payment(tx)
	case gtpcc.OrderStatus:
		_, rec.Rows = s.orderStatus(tx)
		rec.Committed = true
	case gtpcc.Delivery:
		rec.Committed, rec.Rows = s.deliverOrders()
	case gtpcc.StockLevel:
		_, rec.Rows = s.stockLevel(tx)
		rec.Committed = true
	}
	code := amcast.ResultCommitted
	if !rec.Committed {
		code = amcast.ResultAborted
	}
	return Result{Code: code, Record: rec}
}

// readSetDigest folds the transaction payload: all involved shards
// execute against the same decoded transaction iff they hash the same
// bytes (decoding is deterministic).
func readSetDigest(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

func (s *Shard) row(table uint8, key int32, write bool) trace.Row {
	return trace.Row{Shard: s.cfg.Warehouse, Table: table, Key: key, Write: write}
}

// index folds an arbitrary decoded key into the table: Apply must be
// total and deterministic over any decodable payload (including
// negative int32s produced by hostile uint32 encodings), never panic.
func index(v, n int32) int32 {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

// newOrder executes this shard's portion of a new-order: decrement
// stock for locally supplied lines; as the home warehouse additionally
// record the order and the customer's latest order. The TPC-C 1 %
// rollback travels in the payload, so every shard reaches the same
// verdict without communicating.
func (s *Shard) newOrder(tx gtpcc.Tx) (bool, []trace.Row) {
	if tx.Rollback {
		return false, nil
	}
	var rows []trace.Row
	for _, l := range tx.Lines {
		if l.Supply != s.cfg.Warehouse {
			continue
		}
		item := index(l.Item, int32(s.cfg.Items))
		q := s.stockQty[item] - l.Qty
		if q < 10 {
			q += 91 // TPC-C §2.4.2.2: restock low items
			s.refills++
		}
		s.stockQty[item] = q
		s.stockYTD[item] += int64(l.Qty)
		s.stockCnt[item]++
		rows = append(rows, s.row(trace.TableStock, item, true))
		// The table-version row: scans (stock-level) read it, writes
		// write it, giving scans exact R/W conflict semantics.
		rows = append(rows, s.row(trace.TableStock, -1, true))
	}
	if tx.Home == s.cfg.Warehouse {
		cust := index(tx.Customer, int32(s.cfg.Customers))
		var total int64
		for _, l := range tx.Lines {
			total += int64(l.Qty) * ItemPrice(s.cfg.Seed, l.Supply, index(l.Item, int32(s.cfg.Items)))
			s.orderedFrom[l.Supply] += int64(l.Qty)
		}
		id := s.nextOrder
		s.nextOrder++
		s.pending = append(s.pending, order{
			id:    id,
			cust:  cust,
			total: total,
			lines: append([]gtpcc.OrderLine(nil), tx.Lines...),
		})
		s.lastOrder[cust] = int64(id)
		rows = append(rows,
			s.row(trace.TableOrders, 0, true),
			s.row(trace.TableCustomer, cust, true))
	}
	return true, rows
}

// payment executes this shard's portion of a payment: the home
// warehouse banks the amount; the customer's warehouse debits the
// customer (TPC-C: remote 15 % of the time).
func (s *Shard) payment(tx gtpcc.Tx) (bool, []trace.Row) {
	var rows []trace.Row
	if tx.Home == s.cfg.Warehouse {
		s.ytd += tx.Amount
		rows = append(rows, s.row(trace.TableWarehouse, 0, true))
	}
	if tx.CustWarehouse == s.cfg.Warehouse {
		cust := index(tx.Customer, int32(s.cfg.Customers))
		s.balance[cust] -= tx.Amount
		s.ytdPaid[cust] += tx.Amount
		s.payCnt[cust]++
		s.paidTotal += tx.Amount
		rows = append(rows, s.row(trace.TableCustomer, cust, true))
	}
	return true, rows
}

// orderStatus reads the customer's most recent order (read-only,
// local): the value is the last home-order id (-1 when none). Both the
// multicast apply path and the fast-path ReadTx execute through it, so
// the two paths can never disagree on the rows they declare — the
// conflict-serializability audit depends on that agreement.
func (s *Shard) orderStatus(tx gtpcc.Tx) (int64, []trace.Row) {
	cust := index(tx.Customer, int32(s.cfg.Customers))
	return s.lastOrder[cust], []trace.Row{
		s.row(trace.TableCustomer, cust, false),
		s.row(trace.TableOrders, 0, false),
	}
}

// deliverOrders pops up to ten of the oldest undelivered orders and
// credits their totals back to the ordering customers (local).
func (s *Shard) deliverOrders() (bool, []trace.Row) {
	n := len(s.pending)
	if n > 10 {
		n = 10
	}
	rows := []trace.Row{s.row(trace.TableOrders, 0, true)}
	for _, o := range s.pending[:n] {
		s.balance[o.cust] += o.total
		s.deliveredSum += o.total
		s.delivered++
		rows = append(rows, s.row(trace.TableCustomer, o.cust, true))
	}
	s.pending = append(s.pending[:0], s.pending[n:]...)
	return true, rows
}

// stockLevel counts low-stock items (read-only, local). The scan reads
// the stock table-version row, conflicting with any stock write. Shared
// by the apply path and ReadTx like orderStatus.
func (s *Shard) stockLevel(tx gtpcc.Tx) (int64, []trace.Row) {
	low := int64(0)
	for _, q := range s.stockQty {
		if q < tx.Threshold {
			low++
		}
	}
	return low, []trace.Row{s.row(trace.TableStock, -1, false)}
}

// ReadTx executes a read-only transaction (order-status or stock-level)
// against the shard's current state without mutating it: the shard-local
// applied counter does not advance, so the read is a snapshot at the cut
// point between applied transactions — the serialization point the
// fast-path read audit (trace.FastReadRecord) records. It returns the
// read's value (order-status: the customer's most recent order id, -1
// when none; stock-level: the low-stock item count) and the rows read —
// computed by the same functions the multicast apply path runs, so both
// paths always declare identical row sets.
func (s *Shard) ReadTx(tx gtpcc.Tx) (int64, []trace.Row, error) {
	switch tx.Type {
	case gtpcc.OrderStatus:
		val, rows := s.orderStatus(tx)
		return val, rows, nil
	case gtpcc.StockLevel:
		val, rows := s.stockLevel(tx)
		return val, rows, nil
	default:
		return 0, nil, fmt.Errorf("store: %s is not a read-only transaction", tx.Type)
	}
}

// Clone returns a deep copy of the shard (snapshots, mirrors).
func (s *Shard) Clone() *Shard {
	c := *s
	c.stockQty = append([]int32(nil), s.stockQty...)
	c.stockYTD = append([]int64(nil), s.stockYTD...)
	c.stockCnt = append([]int32(nil), s.stockCnt...)
	c.balance = append([]int64(nil), s.balance...)
	c.ytdPaid = append([]int64(nil), s.ytdPaid...)
	c.payCnt = append([]int32(nil), s.payCnt...)
	c.lastOrder = append([]int64(nil), s.lastOrder...)
	c.pending = make([]order, len(s.pending))
	for i, o := range s.pending {
		o.lines = append([]gtpcc.OrderLine(nil), o.lines...)
		c.pending[i] = o
	}
	c.orderedFrom = make(map[amcast.GroupID]int64, len(s.orderedFrom))
	for w, q := range s.orderedFrom {
		c.orderedFrom[w] = q
	}
	return &c
}

// Digest returns a SHA-256 over the shard's canonical serialization:
// replicas of a group (and recovery replays) must agree byte-for-byte.
func (s *Shard) Digest() [32]byte {
	h := sha256.New()
	le := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	le(uint64(uint32(s.cfg.Warehouse)), uint64(s.cfg.Items), uint64(s.cfg.Customers), uint64(s.cfg.Seed))
	le(s.applied, uint64(s.ytd), uint64(s.paidTotal), s.delivered, uint64(s.deliveredSum),
		s.nextOrder, uint64(s.refills))
	for i := range s.stockQty {
		le(uint64(uint32(s.stockQty[i])), uint64(s.stockYTD[i]), uint64(uint32(s.stockCnt[i])))
	}
	for c := range s.balance {
		le(uint64(s.balance[c]), uint64(s.ytdPaid[c]), uint64(uint32(s.payCnt[c])), uint64(s.lastOrder[c]))
	}
	le(uint64(len(s.pending)))
	for _, o := range s.pending {
		le(o.id, uint64(uint32(o.cust)), uint64(o.total), uint64(len(o.lines)))
		for _, l := range o.lines {
			le(uint64(uint32(l.Item)), uint64(uint32(l.Supply)), uint64(uint32(l.Qty)))
		}
	}
	ws := make([]amcast.GroupID, 0, len(s.orderedFrom))
	for w := range s.orderedFrom {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	le(uint64(len(ws)))
	for _, w := range ws {
		le(uint64(uint32(w)), uint64(s.orderedFrom[w]))
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Totals is the shard's contribution to the cross-shard invariants.
type Totals struct {
	// WarehouseYTD is the payment total banked as the home warehouse.
	WarehouseYTD int64
	// PaidTotal is the payment total debited from resident customers.
	PaidTotal int64
	// StockOrderedYTD is the quantity ordered against this shard's stock.
	StockOrderedYTD int64
	// OrderedFrom is the quantity this shard's new-orders sourced per
	// supply warehouse.
	OrderedFrom map[amcast.GroupID]int64
	// Applied counts executed transactions.
	Applied uint64
}

// Totals snapshots the invariant inputs.
func (s *Shard) Totals() Totals {
	t := Totals{
		WarehouseYTD: s.ytd,
		PaidTotal:    s.paidTotal,
		Applied:      s.applied,
		OrderedFrom:  make(map[amcast.GroupID]int64, len(s.orderedFrom)),
	}
	for w, q := range s.orderedFrom {
		t.OrderedFrom[w] = q
	}
	for _, y := range s.stockYTD {
		t.StockOrderedYTD += y
	}
	return t
}

// CheckLocalInvariants verifies the shard's self-consistency: stock and
// balance conservation against the seeded initial population.
func (s *Shard) CheckLocalInvariants() error {
	var qty, ordered int64
	for i := range s.stockQty {
		qty += int64(s.stockQty[i])
		ordered += s.stockYTD[i]
	}
	if want := initStockSum(s.cfg) - ordered + 91*s.refills; qty != want {
		return fmt.Errorf("store: warehouse %d stock conservation broken: have %d units, want %d (ordered %d, refills %d)",
			s.cfg.Warehouse, qty, want, ordered, s.refills)
	}
	var bal, paid int64
	for c := range s.balance {
		bal += s.balance[c]
		paid += s.ytdPaid[c]
	}
	if paid != s.paidTotal {
		return fmt.Errorf("store: warehouse %d payment ledger broken: per-customer %d, total %d",
			s.cfg.Warehouse, paid, s.paidTotal)
	}
	if want := initBalanceSum(s.cfg) - s.paidTotal + s.deliveredSum; bal != want {
		return fmt.Errorf("store: warehouse %d balance conservation broken: have %d, want %d (paid %d, delivered credits %d)",
			s.cfg.Warehouse, bal, want, s.paidTotal, s.deliveredSum)
	}
	return nil
}

// CheckInvariants verifies the cross-shard invariants over a quiesced
// deployment: every committed multi-shard transaction must have landed
// in full at every involved shard, or the conservation sums split.
//
//   - payment conservation: the amounts banked by home warehouses equal
//     the amounts debited from customers across all shards;
//   - order-line conservation: for every warehouse w, the quantities
//     all home warehouses sourced from w equal the quantity w's stock
//     recorded as ordered.
//
// Each shard's local conservation (stock and balances against the
// seeded population) is checked too.
func CheckInvariants(shards []*Shard) error {
	byW := make(map[amcast.GroupID]Totals, len(shards))
	var ytd, paid int64
	for _, s := range shards {
		if err := s.CheckLocalInvariants(); err != nil {
			return err
		}
		t := s.Totals()
		byW[s.Warehouse()] = t
		ytd += t.WarehouseYTD
		paid += t.PaidTotal
	}
	if ytd != paid {
		return fmt.Errorf("store: payment conservation broken: warehouses banked %d, customers paid %d (a cross-shard payment applied partially)",
			ytd, paid)
	}
	sourced := make(map[amcast.GroupID]int64)
	for _, t := range byW {
		for w, q := range t.OrderedFrom {
			sourced[w] += q
		}
	}
	ws := make([]amcast.GroupID, 0, len(byW))
	for w := range byW {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	for _, w := range ws {
		if got, want := byW[w].StockOrderedYTD, sourced[w]; got != want {
			return fmt.Errorf("store: order-line conservation broken at warehouse %d: stock recorded %d units ordered, homes sourced %d (a cross-shard new-order applied partially)",
				w, got, want)
		}
	}
	for w, q := range sourced {
		if _, ok := byW[w]; !ok && q != 0 {
			return fmt.Errorf("store: orders sourced from unknown warehouse %d (%d units)", w, q)
		}
	}
	return nil
}
