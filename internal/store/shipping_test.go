package store

import (
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
)

// newSingleGroupExecutor builds an executor over a one-group FlexCast
// engine: every request delivers immediately, so tests drive the
// executor's apply/feed path directly without a network.
func newSingleGroupExecutor(t *testing.T) *Executor {
	t.Helper()
	ov, err := overlay.NewCDAG([]amcast.GroupID{1})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.MustNew(core.Config{Group: 1, Overlay: ov})
	ex, err := NewExecutor(eng, Config{Warehouse: 1, Items: 40, Customers: 15}, false)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// applyTxs pushes n single-group gTPC-C transactions through the
// executor and returns every applied delivery batch.
func applyTxs(t *testing.T, ex *Executor, from, n int) [][]amcast.Delivery {
	t.Helper()
	var batches [][]amcast.Delivery
	for i := from; i < from+n; i++ {
		m := txMsg(i)
		ex.OnEnvelope(amcast.Envelope{Kind: amcast.KindRequest, From: m.Sender, Msg: m})
		if dels := ex.TakeDeliveries(); len(dels) > 0 {
			batches = append(batches, dels)
		}
	}
	return batches
}

var txWorkload = gtpccWorkload([]amcast.GroupID{1, 2}, 31)

// txMsg returns the i-th single-group transaction of the shared
// workload, re-addressed to group 1 only (the single-group harness).
func txMsg(i int) amcast.Message {
	m := txWorkload(0, i, nil)
	m.Dst = []amcast.GroupID{1}
	return m
}

// TestAttachFollowerShippingEquivalence is the tentpole acceptance
// property: a follower attached mid-run (snapshot-shipped, sees only
// the log suffix) must reach a byte-identical digest to a follower
// attached at delivery 0 (full replay) and to the serving shard.
func TestAttachFollowerShippingEquivalence(t *testing.T) {
	ex := newSingleGroupExecutor(t)
	full, err := ex.AttachFollower(ReplicaConfig{Idx: 1, Clock: func() uint64 { return 0 }})
	if err != nil {
		t.Fatal(err)
	}
	applyTxs(t, ex, 0, 25)

	// Mid-feed attach: the shipped snapshot covers deliveries [0, wm).
	wmAtAttach := ex.Watermark()
	shipped, err := ex.AttachFollower(ReplicaConfig{Idx: 2, Clock: func() uint64 { return 0 }})
	if err != nil {
		t.Fatal(err)
	}
	if shipped.Watermark() != wmAtAttach {
		t.Fatalf("shipped follower watermark %d, want attach-point %d", shipped.Watermark(), wmAtAttach)
	}
	if wmAtAttach == 0 {
		t.Fatal("nothing delivered before mid-feed attach; test is vacuous")
	}

	applyTxs(t, ex, 25, 25)

	lead := ex.Digest()
	if d := full.Shard().Digest(); d != lead {
		t.Fatalf("full-replay follower digest %x != serving %x", d[:8], lead[:8])
	}
	if d := shipped.Shard().Digest(); d != lead {
		t.Fatalf("snapshot-shipped follower digest %x != serving %x", d[:8], lead[:8])
	}
	if a, b := full.Watermark(), shipped.Watermark(); a != b || a != ex.Watermark() {
		t.Fatalf("watermarks diverged: full %d, shipped %d, serving %d", a, b, ex.Watermark())
	}
}

// TestFollowerDuplicateFeedDedup re-ships already-applied batches (the
// recovery-replay shape: a restarted serving node re-feeds a prefix)
// and asserts the follower's dedup keeps state and watermark exact.
func TestFollowerDuplicateFeedDedup(t *testing.T) {
	ex := newSingleGroupExecutor(t)
	f, err := ex.AttachFollower(ReplicaConfig{Idx: 1, Clock: func() uint64 { return 0 }})
	if err != nil {
		t.Fatal(err)
	}
	batches := applyTxs(t, ex, 0, 30)
	want := f.Shard().Digest()
	wm := f.Watermark()

	// Re-feed the whole prefix, twice, including interleaved stale
	// batches out of order — every sequence is below next and skipped.
	for i := 0; i < 2; i++ {
		for _, b := range batches {
			f.Feed(b)
		}
	}
	for i := len(batches) - 1; i >= 0; i-- {
		f.Feed(batches[i])
	}
	if got := f.Shard().Digest(); got != want {
		t.Fatalf("duplicate feeds changed follower state: %x != %x", got[:8], want[:8])
	}
	if got := f.Watermark(); got != wm {
		t.Fatalf("duplicate feeds moved watermark %d -> %d", wm, got)
	}

	// A genuinely new batch after the duplicates still applies.
	more := applyTxs(t, ex, 30, 5)
	if len(more) == 0 {
		t.Fatal("no new batches applied")
	}
	if got := f.Shard().Digest(); got != ex.Digest() {
		t.Fatal("follower diverged after post-duplicate feed")
	}
}

// TestMidFeedAttachMissesNothing attaches a follower between every
// batch of a run; each must converge to the serving digest — no
// attach point loses or double-applies the batch in flight.
func TestMidFeedAttachMissesNothing(t *testing.T) {
	ex := newSingleGroupExecutor(t)
	var followers []*Replica
	for i := 0; i < 20; i++ {
		f, err := ex.AttachFollower(ReplicaConfig{Idx: int32(i + 1), Clock: func() uint64 { return 0 }})
		if err != nil {
			t.Fatal(err)
		}
		followers = append(followers, f)
		applyTxs(t, ex, i*3, 3)
	}
	lead := ex.Digest()
	for i, f := range followers {
		if d := f.Shard().Digest(); d != lead {
			t.Fatalf("follower attached before batch %d diverged: %x != %x", i, d[:8], lead[:8])
		}
	}
}
