package store

import (
	"flexcast/internal/metrics"
)

// shipHist is the snapshot-shipping duration distribution: the time
// AttachFollower holds the executor's write lock cloning the serving
// shard and installing it into the joining replica — the pause snapshot
// shipping inserts into the write path. Package-level and process-wide
// (values in nanoseconds), like the durable layer's histograms.
var shipHist = metrics.NewHistogram()

// SnapshotShipHist returns the snapshot-shipping duration histogram;
// commands register it with the telemetry registry as snapshot_ship_ns.
func SnapshotShipHist() *metrics.Histogram { return shipHist }
