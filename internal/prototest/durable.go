package prototest

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/durable"
	"flexcast/internal/sim"
)

// engineState fingerprints an engine as its canonical snapshot bytes.
func engineState(t *testing.T, eng amcast.SnapshotEngine) []byte {
	t.Helper()
	bs, ok := eng.Snapshot().(amcast.BinarySnapshot)
	if !ok {
		t.Fatalf("prototest: engine %T snapshot has no binary form", eng)
	}
	data, err := bs.MarshalBinary()
	if err != nil {
		t.Fatalf("prototest: marshal engine state: %v", err)
	}
	return data
}

// copyCrashImage clones a durable directory — the kill -9 image the
// recovery variants mutate and recover from, leaving the original
// untouched for the next variant.
func copyCrashImage(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if !ent.Type().IsRegular() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// RunDurableReplay is RunSnapshotReplay's on-disk sibling: the random
// workload runs with every engine wrapped in the real durable backend
// (WAL appends, snapshot rotation on the given cadence), and at
// quiescence each group's directory — the exact image a kill -9 would
// leave — is recovered into fresh engines under three crash shapes:
//
//   - clean: the recovered state must equal the live engine's byte for
//     byte, with the replay length bounded by the snapshot age;
//   - torn appended frame (durable.TearTail): a partial record after
//     the last complete one must be discarded, same state;
//   - last record truncated mid-frame (durable.TruncateLastRecord): the
//     final input is lost with the torn record, so recovery must stop
//     cleanly at the state before it — not fail, not misparse.
//
// Any divergence means the WAL framing, snapshot codec, or recovery
// path mishandles a crash artifact.
func RunDurableReplay(t *testing.T, cfg RandomConfig, decode func([]byte) (amcast.Snapshot, error), snapshotEvery int) {
	t.Helper()
	if cfg.MaxDst == 0 || cfg.MaxDst > len(cfg.Groups) {
		cfg.MaxDst = len(cfg.Groups)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := sim.New()
	root := t.TempDir()

	type durTap struct {
		de  *durable.Engine
		dir string
		log []amcast.Envelope
	}
	taps := make(map[amcast.GroupID]*durTap, len(cfg.Groups))

	lat := make(map[[2]amcast.NodeID]sim.Time)
	latency := func(from, to amcast.NodeID) sim.Time {
		key := [2]amcast.NodeID{from, to}
		l, ok := lat[key]
		if !ok {
			l = sim.Time(100 + rng.Intn(1900))
			lat[key] = l
		}
		return l
	}
	net := sim.NewNetwork(s, latency)
	for _, g := range cfg.Groups {
		g := g
		eng, ok := cfg.Factory(g).(amcast.SnapshotEngine)
		if !ok {
			t.Fatalf("prototest: engine for group %d does not implement amcast.SnapshotEngine", g)
		}
		dir := filepath.Join(root, fmt.Sprintf("group-%d", g))
		de, err := durable.Wrap(eng, durable.Options{
			Dir:           dir,
			SnapshotEvery: snapshotEvery,
			FsyncEvery:    -1,
			Decode:        decode,
		})
		if err != nil {
			t.Fatalf("prototest: durable wrap for group %d: %v", g, err)
		}
		tap := &durTap{de: de, dir: dir}
		taps[g] = tap
		net.Register(amcast.GroupNode(g), sim.HandlerFunc(func(env amcast.Envelope) {
			tap.log = append(tap.log, env)
			for _, out := range de.OnEnvelope(env) {
				net.Send(amcast.GroupNode(g), out.To, out.Env)
			}
			de.TakeDeliveries()
		}))
	}
	for c := 0; c < cfg.Clients; c++ {
		cid := amcast.ClientNode(c)
		net.Register(cid, sim.HandlerFunc(func(env amcast.Envelope) {}))
		for i := 0; i < cfg.Messages; i++ {
			m := cfg.message(c, i, cfg.MaxDst, rng)
			at := sim.Time(rng.Int63n(50_000))
			s.ScheduleAt(at, func() {
				for _, to := range cfg.Route(m) {
					net.Send(cid, to, amcast.Envelope{Kind: amcast.KindRequest, From: cid, Msg: m})
				}
			})
		}
	}
	s.Run()

	recoverImage := func(g amcast.GroupID, dir string) (amcast.SnapshotEngine, durable.RecoveryStats) {
		fresh, _ := cfg.Factory(g).(amcast.SnapshotEngine)
		de, err := durable.Wrap(fresh, durable.Options{
			Dir:           dir,
			SnapshotEvery: snapshotEvery,
			FsyncEvery:    -1,
			Decode:        decode,
		})
		if err != nil {
			t.Fatalf("prototest: recover group %d from %s: %v", g, dir, err)
		}
		st := de.Recovery()
		de.Close()
		return fresh, st
	}

	for _, g := range cfg.Groups {
		tap := taps[g]
		if err := tap.de.Err(); err != nil {
			t.Fatalf("prototest: durable backend of group %d: %v", g, err)
		}
		live := engineState(t, tap.de.Inner())
		since := tap.de.SinceSnapshot()
		tap.de.Close()

		// Clean kill -9 image: full state back, replay bounded by the
		// snapshot age.
		fresh, st := recoverImage(g, copyCrashImage(t, tap.dir))
		if st.TornTailBytes != 0 {
			t.Fatalf("prototest: group %d clean image reported a torn tail of %d bytes", g, st.TornTailBytes)
		}
		if st.ReplayedEnvelopes != since {
			t.Fatalf("prototest: group %d replayed %d envelopes, want the %d since the last snapshot",
				g, st.ReplayedEnvelopes, since)
		}
		if !bytes.Equal(engineState(t, fresh), live) {
			t.Fatalf("prototest: group %d clean recovery diverged from the live engine", g)
		}

		// Torn frame appended past the last complete record: discarded,
		// same state.
		dir := copyCrashImage(t, tap.dir)
		if _, err := durable.TearTail(dir, nil); err != nil {
			t.Fatalf("prototest: tear tail of group %d: %v", g, err)
		}
		fresh, st = recoverImage(g, dir)
		if st.TornTailBytes == 0 {
			t.Fatalf("prototest: group %d torn tail injected but recovery discarded nothing", g)
		}
		if !bytes.Equal(engineState(t, fresh), live) {
			t.Fatalf("prototest: group %d recovery after a torn tail diverged from the live engine", g)
		}

		// Last record truncated mid-frame: its input is lost with it, so
		// recovery lands exactly one input earlier — rebuilt here as the
		// reference by replaying the full input log minus that input.
		dir = copyCrashImage(t, tap.dir)
		cut, err := durable.TruncateLastRecord(dir)
		if err != nil {
			t.Fatalf("prototest: truncate last record of group %d: %v", g, err)
		}
		if !cut {
			continue // the last input triggered a rotation; nothing in the current epoch to tear
		}
		fresh, st = recoverImage(g, dir)
		if st.TornTailBytes == 0 {
			t.Fatalf("prototest: group %d truncated record not reported as a torn tail", g)
		}
		ref, _ := cfg.Factory(g).(amcast.SnapshotEngine)
		for _, env := range tap.log[:len(tap.log)-1] {
			ref.OnEnvelope(env)
			ref.TakeDeliveries()
		}
		if !bytes.Equal(engineState(t, fresh), engineState(t, ref)) {
			t.Fatalf("prototest: group %d recovery after mid-frame truncation diverged from the all-but-last reference", g)
		}
	}
}
