package prototest

import (
	"math/rand"
	"reflect"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/sim"
)

// RunBatchEquivalence exercises the strong form of the
// amcast.BatchStepper contract under a random workload: the live run
// drives engines envelope by envelope and logs every group's input
// sequence; afterwards a fresh engine per group replays its log through
// amcast.BatchStep in random chunk sizes. The concatenated outputs and
// deliveries must be identical to the live run's. This holds for the
// Skeen and hierarchical engines, whose batch fast paths change only
// delivery timing within a chunk; the FlexCast engine consolidates acks
// across a chunk and is validated by RunChunkedSafety instead.
func RunBatchEquivalence(t *testing.T, cfg RandomConfig) {
	t.Helper()
	if cfg.MaxDst == 0 || cfg.MaxDst > len(cfg.Groups) {
		cfg.MaxDst = len(cfg.Groups)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := sim.New()

	type tap struct {
		eng    amcast.Engine
		inputs []amcast.Envelope
		outs   []amcast.Output
		dels   []amcast.Delivery
	}
	taps := make(map[amcast.GroupID]*tap, len(cfg.Groups))

	lat := make(map[[2]amcast.NodeID]sim.Time)
	latency := func(from, to amcast.NodeID) sim.Time {
		key := [2]amcast.NodeID{from, to}
		l, ok := lat[key]
		if !ok {
			l = sim.Time(100 + rng.Intn(1900))
			lat[key] = l
		}
		return l
	}
	net := sim.NewNetwork(s, latency)
	for _, g := range cfg.Groups {
		g := g
		tp := &tap{eng: cfg.Factory(g)}
		taps[g] = tp
		net.Register(amcast.GroupNode(g), sim.HandlerFunc(func(env amcast.Envelope) {
			tp.inputs = append(tp.inputs, env)
			outs := tp.eng.OnEnvelope(env)
			tp.outs = append(tp.outs, outs...)
			tp.dels = append(tp.dels, tp.eng.TakeDeliveries()...)
			for _, out := range outs {
				net.Send(amcast.GroupNode(g), out.To, out.Env)
			}
		}))
	}
	for c := 0; c < cfg.Clients; c++ {
		cid := amcast.ClientNode(c)
		net.Register(cid, sim.HandlerFunc(func(env amcast.Envelope) {}))
		for i := 0; i < cfg.Messages; i++ {
			m := cfg.message(c, i, cfg.MaxDst, rng)
			at := sim.Time(rng.Int63n(50_000))
			s.ScheduleAt(at, func() {
				for _, to := range cfg.Route(m) {
					net.Send(cid, to, amcast.Envelope{Kind: amcast.KindRequest, From: cid, Msg: m})
				}
			})
		}
	}
	s.Run()

	for _, g := range cfg.Groups {
		tp := taps[g]
		fresh := cfg.Factory(g)
		var outs []amcast.Output
		var dels []amcast.Delivery
		for i := 0; i < len(tp.inputs); {
			n := 1 + rng.Intn(8)
			if i+n > len(tp.inputs) {
				n = len(tp.inputs) - i
			}
			outs = append(outs, amcast.BatchStep(fresh, tp.inputs[i:i+n])...)
			dels = append(dels, fresh.TakeDeliveries()...)
			i += n
		}
		if !reflect.DeepEqual(normOuts(outs), normOuts(tp.outs)) {
			t.Fatalf("prototest: group %d BatchStep outputs diverge from OnEnvelope (inputs=%d)", g, len(tp.inputs))
		}
		if !reflect.DeepEqual(normDels(dels), normDels(tp.dels)) {
			t.Fatalf("prototest: group %d BatchStep deliveries diverge from OnEnvelope (inputs=%d)", g, len(tp.inputs))
		}
	}
}
