package prototest

import (
	"bytes"
	"testing"

	"flexcast/amcast"
)

// CheckBinarySnapshot audits the amcast.BinarySnapshot contract on a
// (typically mid-run, richly populated) engine: the snapshot must
// marshal canonically (same bytes twice), decode, restore into a fresh
// engine, and re-marshal from the restored engine to the identical
// bytes — proving the encoding captures the complete state and nothing
// else. Returns the canonical encoding for callers that want to stash
// or corrupt it.
func CheckBinarySnapshot(t *testing.T, eng, fresh amcast.SnapshotEngine, decode func([]byte) (amcast.Snapshot, error)) []byte {
	t.Helper()
	snap := eng.Snapshot()
	bs, ok := snap.(amcast.BinarySnapshot)
	if !ok {
		t.Fatalf("prototest: snapshot %T has no binary form", snap)
	}
	data, err := bs.MarshalBinary()
	if err != nil {
		t.Fatalf("prototest: marshal snapshot: %v", err)
	}
	again, err := bs.MarshalBinary()
	if err != nil {
		t.Fatalf("prototest: re-marshal snapshot: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("prototest: snapshot encoding is not canonical: %d vs %d bytes differ", len(data), len(again))
	}
	dec, err := decode(data)
	if err != nil {
		t.Fatalf("prototest: decode snapshot: %v", err)
	}
	if dec.SnapshotGroup() != snap.SnapshotGroup() {
		t.Fatalf("prototest: decoded snapshot group %d, want %d", dec.SnapshotGroup(), snap.SnapshotGroup())
	}
	if err := fresh.Restore(dec); err != nil {
		t.Fatalf("prototest: restore decoded snapshot: %v", err)
	}
	re, ok := fresh.Snapshot().(amcast.BinarySnapshot)
	if !ok {
		t.Fatalf("prototest: restored engine snapshot has no binary form")
	}
	data2, err := re.MarshalBinary()
	if err != nil {
		t.Fatalf("prototest: marshal restored snapshot: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("prototest: group %d decode+restore+re-marshal diverged: %d bytes vs %d — the codec misses state",
			snap.SnapshotGroup(), len(data), len(data2))
	}
	return data
}
