package prototest

import (
	"reflect"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/skeen"
)

func skeenFactory(groups []amcast.GroupID) EngineFactory {
	return func(g amcast.GroupID) amcast.Engine {
		return skeen.MustNew(skeen.Config{Group: g, Groups: groups})
	}
}

func skeenRoute(m amcast.Message) []amcast.NodeID {
	nodes := make([]amcast.NodeID, len(m.Dst))
	for i, g := range m.Dst {
		nodes[i] = amcast.GroupNode(g)
	}
	return nodes
}

// TestMsgNormalizesDst covers the Msg helper.
func TestMsgNormalizesDst(t *testing.T) {
	m := Msg(7, 3, 1, 3, 2)
	if !reflect.DeepEqual(m.Dst, []amcast.GroupID{1, 2, 3}) {
		t.Fatalf("Dst = %v, want [1 2 3]", m.Dst)
	}
	if m.ID != 7 || !m.Sender.IsClient() {
		t.Fatalf("unexpected message %+v", m)
	}
}

// TestRouterStepAndDrain drives a two-group Skeen exchange by hand:
// Multicast parks the engines' outputs per link, Step delivers them in
// FIFO order, Drain quiesces, and the recorder sees a correct run.
func TestRouterStepAndDrain(t *testing.T) {
	groups := []amcast.GroupID{1, 2}
	r := NewRouter(t, groups, skeenFactory(groups))
	m := Msg(1, 1, 2)
	r.Multicast(1, m)
	r.Multicast(2, m) // Skeen: the client sends to every destination
	if r.InFlight() != 2 {
		t.Fatalf("in flight = %d, want 2 timestamp exchanges", r.InFlight())
	}
	if r.LinkDepth(1, 2) != 1 || r.LinkDepth(2, 1) != 1 {
		t.Fatalf("link depths = %d/%d, want 1/1", r.LinkDepth(1, 2), r.LinkDepth(2, 1))
	}
	r.Step(1, 2, amcast.KindTS, 1)
	r.StepAny(2, 1)
	if r.InFlight() != 0 {
		t.Fatalf("in flight = %d after both timestamps, want 0", r.InFlight())
	}
	if !reflect.DeepEqual(r.Seq(1), []amcast.MsgID{1}) || !reflect.DeepEqual(r.Seq(2), []amcast.MsgID{1}) {
		t.Fatalf("sequences = %v / %v, want [1] / [1]", r.Seq(1), r.Seq(2))
	}
	r.Drain() // idempotent on a quiesced router
	if err := r.Recorder.CheckAll(true); err != nil {
		t.Fatal(err)
	}
}

// TestRunRandomProducesCheckedRun covers the randomized runner: the
// recorded run is non-trivial, quiesced, and satisfies the spec.
func TestRunRandomProducesCheckedRun(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3, 4}
	rec := RunRandom(t, RandomConfig{
		Groups:   groups,
		Clients:  3,
		Messages: 8,
		Route:    skeenRoute,
		Factory:  skeenFactory(groups),
		Seed:     5,
		Jitter:   2000,
	})
	if rec.Multicasts() != 24 {
		t.Fatalf("multicasts = %d, want 24", rec.Multicasts())
	}
	if rec.Deliveries() < rec.Multicasts() {
		t.Fatalf("deliveries = %d < multicasts = %d", rec.Deliveries(), rec.Multicasts())
	}
	if err := rec.CheckAll(true); err != nil {
		t.Fatal(err)
	}
}

// TestRunRandomDeterminism: equal seeds must produce identical runs.
func TestRunRandomDeterminism(t *testing.T) {
	groups := []amcast.GroupID{1, 2, 3}
	run := func() map[amcast.GroupID][]amcast.MsgID {
		rec := RunRandomNoFIFO(t, RandomConfig{
			Groups:   groups,
			Clients:  2,
			Messages: 6,
			Route:    skeenRoute,
			Factory:  skeenFactory(groups),
			Seed:     11,
		})
		out := make(map[amcast.GroupID][]amcast.MsgID)
		for _, g := range groups {
			out[g] = rec.Sequence(g)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
}
