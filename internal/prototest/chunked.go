package prototest

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/trace"
)

// chunkedRun is one deterministic chunked execution: a router where
// every node buffers inbound envelopes and drains them through
// amcast.BatchStep in seeded random chunk sizes, interleaving links in
// seeded random order. It returns the recorded trace and, per group, the
// delivery sequence (for determinism comparison).
func chunkedRun(t *testing.T, cfg RandomConfig, runSeed int64) (*trace.Recorder, map[amcast.GroupID][]amcast.MsgID) {
	t.Helper()
	if cfg.OnRunStart != nil {
		cfg.OnRunStart()
	}
	rng := rand.New(rand.NewSource(runSeed))
	rec := trace.NewRecorder()
	engines := make(map[amcast.GroupID]amcast.Engine, len(cfg.Groups))
	buffers := make(map[amcast.GroupID][]amcast.Envelope, len(cfg.Groups))
	seqs := make(map[amcast.GroupID][]amcast.MsgID, len(cfg.Groups))
	for _, g := range cfg.Groups {
		engines[g] = cfg.Factory(g)
	}

	type link struct{ from, to amcast.NodeID }
	flight := make(map[link][]amcast.Envelope)
	var checkErr error

	flush := func(g amcast.GroupID) {
		envs := buffers[g]
		if len(envs) == 0 {
			return
		}
		buffers[g] = nil
		if cfg.PriorityDrain {
			envs = priorityReorder(envs)
		}
		eng := engines[g]
		for _, out := range amcast.BatchStep(eng, envs) {
			l := link{from: amcast.GroupNode(g), to: out.To}
			rec.OnSend(l.from, l.to, out.Env)
			flight[l] = append(flight[l], out.Env)
		}
		for _, d := range eng.TakeDeliveries() {
			if err := rec.OnDeliver(d); err != nil && checkErr == nil {
				checkErr = err
			}
			seqs[d.Group] = append(seqs[d.Group], d.Msg.ID)
		}
	}

	// Inject the workload: every multicast enters its route node's buffer
	// up front; interleaving comes from the seeded link scheduling below.
	mcRNG := rand.New(rand.NewSource(cfg.Seed))
	maxDst := cfg.MaxDst
	if maxDst == 0 || maxDst > len(cfg.Groups) {
		maxDst = len(cfg.Groups)
	}
	for c := 0; c < cfg.Clients; c++ {
		cid := amcast.ClientNode(c)
		for i := 0; i < cfg.Messages; i++ {
			m := cfg.message(c, i, maxDst, mcRNG)
			rec.OnMulticast(m)
			env := amcast.Envelope{Kind: amcast.KindRequest, From: cid, Msg: m}
			for _, to := range cfg.Route(m) {
				rec.OnSend(cid, to, env)
				buffers[to.Group()] = append(buffers[to.Group()], env)
			}
		}
	}

	// Drive to quiescence: repeatedly either move one in-flight envelope
	// into its destination's buffer, or flush a buffered node through
	// BatchStep — both picked by the run seed, so chunk boundaries land
	// everywhere across protocol phases.
	for {
		var links []link
		for l, q := range flight {
			if len(q) > 0 && !l.to.IsClient() {
				links = append(links, l)
			}
		}
		var buffered []amcast.GroupID
		for g, b := range buffers {
			if len(b) > 0 {
				buffered = append(buffered, g)
			}
		}
		if len(links) == 0 && len(buffered) == 0 {
			break
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].from != links[j].from {
				return links[i].from < links[j].from
			}
			return links[i].to < links[j].to
		})
		sort.Slice(buffered, func(i, j int) bool { return buffered[i] < buffered[j] })

		// Prefer moving traffic (70%) so buffers accumulate real chunks;
		// otherwise flush a random buffered node.
		if len(links) > 0 && (len(buffered) == 0 || rng.Intn(10) < 7) {
			l := links[rng.Intn(len(links))]
			q := flight[l]
			flight[l] = q[1:]
			buffers[l.to.Group()] = append(buffers[l.to.Group()], q[0])
			// Cap buffers so a hot node still flushes: at the controller's
			// chunk size when one is plugged in, otherwise seeded random.
			cap := 1 + rng.Intn(8)
			if cfg.ChunkSizer != nil {
				cap = cfg.ChunkSizer(l.to.Group(), len(buffers[l.to.Group()]))
			}
			if len(buffers[l.to.Group()]) >= cap {
				flush(l.to.Group())
			}
			continue
		}
		flush(buffered[rng.Intn(len(buffered))])
	}
	if checkErr != nil {
		t.Fatal(checkErr)
	}
	if cfg.OnEngines != nil {
		cfg.OnEngines(engines)
	}
	return rec, seqs
}

// priorityReorder mirrors the node runtime's receiver-side
// control-priority drain (runtime.Node.take) exactly: the head is kept
// first (take's fairness rule always selects it), then control
// envelopes whose sender has no earlier unpromoted envelope, then the
// rest in arrival order — for every sender the subsequence is
// unchanged, so per-link FIFO is preserved.
func priorityReorder(envs []amcast.Envelope) []amcast.Envelope {
	out := make([]amcast.Envelope, 0, len(envs))
	promoted := make([]bool, len(envs))
	blocked := make(map[amcast.NodeID]bool)
	promoted[0] = true
	out = append(out, envs[0])
	for i := 1; i < len(envs); i++ {
		env := envs[i]
		if !env.Kind.IsPayload() && !blocked[env.From] {
			promoted[i] = true
			out = append(out, env)
			continue
		}
		blocked[env.From] = true
	}
	for i, env := range envs {
		if !promoted[i] {
			out = append(out, env)
		}
	}
	return out
}

// RunChunked executes one seeded chunked run (random chunk sizes and
// link interleavings, everything through amcast.BatchStep) and returns
// the recorded trace. Store-backed tests combine it with
// RandomConfig.OnEngines to compare state digests against a
// per-envelope execution of the same workload.
func RunChunked(t *testing.T, cfg RandomConfig, runSeed int64) *trace.Recorder {
	t.Helper()
	rec, _ := chunkedRun(t, cfg, runSeed)
	return rec
}

// RunChunkedSafety exercises the weak (protocol-equivalence) form of the
// amcast.BatchStepper contract: a random workload is driven through the
// engines entirely via BatchStep with seeded random chunk sizes and link
// interleavings, and the recorded run must satisfy the full atomic
// multicast specification. The same seeds must also reproduce the exact
// run (determinism over batch sequences — what replicated groups need),
// and chunk boundaries must not lose deliveries (agreement implies every
// multicast lands everywhere).
func RunChunkedSafety(t *testing.T, cfg RandomConfig, minimality bool) {
	t.Helper()
	for runSeed := int64(1); runSeed <= 3; runSeed++ {
		rec, seqs := chunkedRun(t, cfg, runSeed)
		if err := rec.CheckAll(minimality); err != nil {
			t.Fatalf("chunked run (seed %d/%d) violates spec: %v", cfg.Seed, runSeed, err)
		}
		if rec.Deliveries() == 0 {
			t.Fatalf("chunked run (seed %d/%d) delivered nothing", cfg.Seed, runSeed)
		}
		rec2, seqs2 := chunkedRun(t, cfg, runSeed)
		if rec.Deliveries() != rec2.Deliveries() || !reflect.DeepEqual(seqs, seqs2) {
			t.Fatalf("chunked run (seed %d/%d) is not deterministic", cfg.Seed, runSeed)
		}
	}
}
