// Package prototest provides shared machinery for protocol-level tests:
// a scripted router that lets a test deliver protocol envelopes in a
// chosen interleaving, and a randomized workload runner that drives any
// protocol over the simulator and hands the recorded run to the
// trace checkers. It is imported only by _test files.
package prototest

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/sim"
	"flexcast/internal/trace"
)

// EngineFactory builds one protocol engine per group.
type EngineFactory func(g amcast.GroupID) amcast.Engine

// Router drives a set of engines by hand: outputs are parked in flight
// and the test chooses which envelope to deliver next, simulating any
// link interleaving (per-link FIFO is preserved).
type Router struct {
	t       *testing.T
	engines map[amcast.GroupID]amcast.Engine
	// flight[link] is the FIFO of in-flight envelopes per (from,to) link.
	flight map[link][]amcast.Envelope
	// Deliveries accumulates everything the engines delivered.
	Deliveries map[amcast.GroupID][]amcast.MsgID
	Recorder   *trace.Recorder
}

type link struct{ from, to amcast.NodeID }

// NewRouter builds engines for the given groups.
func NewRouter(t *testing.T, groups []amcast.GroupID, f EngineFactory) *Router {
	t.Helper()
	r := &Router{
		t:          t,
		engines:    make(map[amcast.GroupID]amcast.Engine),
		flight:     make(map[link][]amcast.Envelope),
		Deliveries: make(map[amcast.GroupID][]amcast.MsgID),
		Recorder:   trace.NewRecorder(),
	}
	for _, g := range groups {
		r.engines[g] = f(g)
	}
	return r
}

// Msg builds a test message. Destination order is normalized.
func Msg(id uint64, dst ...amcast.GroupID) amcast.Message {
	return amcast.Message{
		ID:     amcast.MsgID(id),
		Sender: amcast.ClientNode(0),
		Dst:    amcast.NormalizeDst(dst),
	}
}

// Multicast injects a client request at the given group.
func (r *Router) Multicast(at amcast.GroupID, m amcast.Message) {
	r.Recorder.OnMulticast(m)
	env := amcast.Envelope{Kind: amcast.KindRequest, From: m.Sender, Msg: m}
	r.Recorder.OnSend(m.Sender, amcast.GroupNode(at), env)
	r.feed(at, env)
}

func (r *Router) feed(g amcast.GroupID, env amcast.Envelope) {
	eng, ok := r.engines[g]
	if !ok {
		r.t.Fatalf("prototest: envelope for unknown group %d", g)
	}
	for _, out := range eng.OnEnvelope(env) {
		l := link{from: amcast.GroupNode(g), to: out.To}
		e := out.Env
		r.Recorder.OnSend(l.from, l.to, e)
		r.flight[l] = append(r.flight[l], e)
	}
	for _, d := range eng.TakeDeliveries() {
		if err := r.Recorder.OnDeliver(d); err != nil {
			r.t.Fatal(err)
		}
		r.Deliveries[d.Group] = append(r.Deliveries[d.Group], d.Msg.ID)
	}
}

// InFlight reports how many envelopes are parked.
func (r *Router) InFlight() int {
	n := 0
	for _, q := range r.flight {
		n += len(q)
	}
	return n
}

// Step delivers the oldest in-flight envelope on the (from→to) link that
// matches kind and message id (0 id matches any). It fails the test when
// no such envelope exists.
func (r *Router) Step(from, to amcast.GroupID, kind amcast.Kind, id uint64) {
	r.t.Helper()
	l := link{from: amcast.GroupNode(from), to: amcast.GroupNode(to)}
	q := r.flight[l]
	if len(q) == 0 {
		r.t.Fatalf("prototest: no envelope in flight on %d->%d", from, to)
	}
	head := q[0]
	if head.Kind != kind || (id != 0 && head.Msg.ID != amcast.MsgID(id)) {
		r.t.Fatalf("prototest: head of %d->%d is %s %s, want %s %d",
			from, to, head.Kind, head.Msg.ID, kind, id)
	}
	r.flight[l] = q[1:]
	r.feed(to, head)
}

// LinkDepth reports how many envelopes are in flight on the (from→to)
// link.
func (r *Router) LinkDepth(from, to amcast.GroupID) int {
	return len(r.flight[link{from: amcast.GroupNode(from), to: amcast.GroupNode(to)}])
}

// StepAny delivers the oldest in-flight envelope on the (from→to) link,
// whatever its kind. It fails the test when the link is empty.
func (r *Router) StepAny(from, to amcast.GroupID) {
	r.t.Helper()
	l := link{from: amcast.GroupNode(from), to: amcast.GroupNode(to)}
	q := r.flight[l]
	if len(q) == 0 {
		r.t.Fatalf("prototest: no envelope in flight on %d->%d", from, to)
	}
	r.flight[l] = q[1:]
	r.feed(to, q[0])
}

// Drain delivers all remaining in-flight envelopes in a deterministic
// link order until quiescence.
func (r *Router) Drain() {
	for {
		links := make([]link, 0, len(r.flight))
		for l, q := range r.flight {
			if len(q) > 0 && !l.to.IsClient() {
				links = append(links, l)
			}
		}
		if len(links) == 0 {
			return
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].from != links[j].from {
				return links[i].from < links[j].from
			}
			return links[i].to < links[j].to
		})
		for _, l := range links {
			q := r.flight[l]
			r.flight[l] = q[1:]
			r.feed(l.to.Group(), q[0])
		}
	}
}

// Seq returns a group's delivery sequence.
func (r *Router) Seq(g amcast.GroupID) []amcast.MsgID {
	return append([]amcast.MsgID(nil), r.Deliveries[g]...)
}

// RandomConfig parameterizes RunRandom.
type RandomConfig struct {
	// Groups is the group set (ids are arbitrary).
	Groups []amcast.GroupID
	// Clients is the number of concurrent multicast sources.
	Clients int
	// Messages is the number of multicasts per client.
	Messages int
	// MaxDst bounds the destination-set size (default: all groups).
	MaxDst int
	// Route maps a message to its entry node(s).
	Route func(m amcast.Message) []amcast.NodeID
	// Factory builds the engines.
	Factory EngineFactory
	// Seed drives destinations and link latencies.
	Seed int64
	// Jitter adds random per-transmission latency (FIFO still enforced),
	// exercising adversarial interleavings across links.
	Jitter sim.Time
	// NextMessage, when non-nil, replaces the uniform random workload:
	// it builds client c's i-th multicast (id, destinations, payload)
	// from the given rng. Store-backed tests use it to generate
	// executable gTPC-C transaction payloads.
	NextMessage func(c, i int, rng *rand.Rand) amcast.Message
	// OnEngines, when non-nil, observes the engines after the run
	// quiesces (digest comparisons across execution strategies).
	OnEngines func(engines map[amcast.GroupID]amcast.Engine)
	// ChunkSizer, when non-nil, replaces the chunked runner's seeded
	// random chunk sizes: it is consulted with a node's group and current
	// buffered depth and returns the batch size at which that node
	// flushes. The runtime's adaptive batching controller plugs in here,
	// proving controller-chosen chunk boundaries stay inside the
	// protocols' safety envelope just like random ones.
	ChunkSizer func(g amcast.GroupID, buffered int) int
	// OnRunStart, when non-nil, fires at the top of every chunked run.
	// A stateful ChunkSizer resets here so the determinism re-run of
	// RunChunkedSafety sees identical chunk boundaries.
	OnRunStart func()
	// PriorityDrain makes the chunked runner reorder every chunk the way
	// the node runtime's receiver-side control-priority drain does
	// (internal/runtime): control envelopes ahead of payload envelopes
	// from other senders, per-sender FIFO preserved. Chunked-equivalence
	// runs with it prove the drain's reordering stays inside the
	// protocols' safety envelope.
	PriorityDrain bool
}

// message builds client c's i-th multicast: via NextMessage when set,
// otherwise a uniform random destination set.
func (cfg *RandomConfig) message(c, i, maxDst int, rng *rand.Rand) amcast.Message {
	if cfg.NextMessage != nil {
		return cfg.NextMessage(c, i, rng)
	}
	nDst := 1 + rng.Intn(maxDst)
	perm := rng.Perm(len(cfg.Groups))
	dst := make([]amcast.GroupID, 0, nDst)
	for _, p := range perm[:nDst] {
		dst = append(dst, cfg.Groups[p])
	}
	return amcast.Message{
		ID:      amcast.NewMsgID(c, uint64(i+1)),
		Sender:  amcast.ClientNode(c),
		Dst:     amcast.NormalizeDst(dst),
		Payload: []byte(fmt.Sprintf("payload-%d-%d", c, i)),
	}
}

// RunRandom drives a random workload through the protocol on the
// simulator and returns the recorded run after quiescence.
func RunRandom(t *testing.T, cfg RandomConfig) *trace.Recorder {
	t.Helper()
	return runRandom(t, cfg, false)
}

// RunRandomNoFIFO is RunRandom with the per-link FIFO clamp disabled,
// for protocols (like Skeen's) that do not rely on FIFO channels.
func RunRandomNoFIFO(t *testing.T, cfg RandomConfig) *trace.Recorder {
	t.Helper()
	return runRandom(t, cfg, true)
}

// snapTap wraps one engine during RunSnapshotReplay: it logs inputs,
// snapshots after snapAfter envelopes, and records the outputs and
// deliveries produced after the snapshot point for later comparison.
type snapTap struct {
	eng       amcast.SnapshotEngine
	snapAfter int
	inputs    int
	snap      amcast.Snapshot
	log       []amcast.Envelope
	outs      [][]amcast.Output
	dels      [][]amcast.Delivery
}

func (s *snapTap) consume(env amcast.Envelope) ([]amcast.Output, []amcast.Delivery) {
	s.inputs++
	logged := s.inputs > s.snapAfter
	if logged {
		s.log = append(s.log, env)
	}
	outs := s.eng.OnEnvelope(env)
	dels := s.eng.TakeDeliveries()
	if logged {
		s.outs = append(s.outs, outs)
		s.dels = append(s.dels, dels)
	}
	if s.inputs == s.snapAfter {
		s.snap = s.eng.Snapshot()
	}
	return outs, dels
}

// RunSnapshotReplay exercises the amcast.SnapshotEngine contract under a
// random workload: every engine is snapshotted after snapAfter input
// envelopes (engines that see fewer inputs are snapshotted at their
// initial state), the live run continues to quiescence, and then a fresh
// engine per group is restored from the snapshot and replays the
// post-snapshot input log. The replayed outputs and deliveries must be
// identical to the live ones — any state missed by Snapshot/Restore, or
// any aliasing between snapshot and engine, shows up as a divergence.
func RunSnapshotReplay(t *testing.T, cfg RandomConfig, snapAfter int) {
	t.Helper()
	if cfg.MaxDst == 0 || cfg.MaxDst > len(cfg.Groups) {
		cfg.MaxDst = len(cfg.Groups)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := sim.New()
	taps := make(map[amcast.GroupID]*snapTap, len(cfg.Groups))

	lat := make(map[[2]amcast.NodeID]sim.Time)
	latency := func(from, to amcast.NodeID) sim.Time {
		key := [2]amcast.NodeID{from, to}
		l, ok := lat[key]
		if !ok {
			l = sim.Time(100 + rng.Intn(1900))
			lat[key] = l
		}
		return l
	}
	net := sim.NewNetwork(s, latency)
	for _, g := range cfg.Groups {
		g := g
		eng, ok := cfg.Factory(g).(amcast.SnapshotEngine)
		if !ok {
			t.Fatalf("prototest: engine for group %d does not implement amcast.SnapshotEngine", g)
		}
		tap := &snapTap{eng: eng, snapAfter: snapAfter, snap: eng.Snapshot()}
		taps[g] = tap
		net.Register(amcast.GroupNode(g), sim.HandlerFunc(func(env amcast.Envelope) {
			outs, _ := tap.consume(env)
			for _, out := range outs {
				net.Send(amcast.GroupNode(g), out.To, out.Env)
			}
		}))
	}
	for c := 0; c < cfg.Clients; c++ {
		cid := amcast.ClientNode(c)
		net.Register(cid, sim.HandlerFunc(func(env amcast.Envelope) {}))
		for i := 0; i < cfg.Messages; i++ {
			m := cfg.message(c, i, cfg.MaxDst, rng)
			at := sim.Time(rng.Int63n(50_000))
			s.ScheduleAt(at, func() {
				for _, to := range cfg.Route(m) {
					net.Send(cid, to, amcast.Envelope{Kind: amcast.KindRequest, From: cid, Msg: m})
				}
			})
		}
	}
	s.Run()

	if cfg.OnEngines != nil {
		engines := make(map[amcast.GroupID]amcast.Engine, len(taps))
		for g, tap := range taps {
			engines[g] = tap.eng
		}
		cfg.OnEngines(engines)
	}

	for _, g := range cfg.Groups {
		tap := taps[g]
		fresh, _ := cfg.Factory(g).(amcast.SnapshotEngine)
		if err := fresh.Restore(tap.snap); err != nil {
			t.Fatalf("prototest: restore at group %d: %v", g, err)
		}
		// Restore discards undrained deliveries; at the snapshot point the
		// live engine had just been drained, so start replay drained too.
		fresh.TakeDeliveries()
		for i, env := range tap.log {
			outs := fresh.OnEnvelope(env)
			dels := fresh.TakeDeliveries()
			if !reflect.DeepEqual(normOuts(outs), normOuts(tap.outs[i])) {
				t.Fatalf("prototest: group %d diverged on replayed input %d (%s %s): outputs %v != live %v",
					g, i, env.Kind, env.Msg.ID, outs, tap.outs[i])
			}
			if !reflect.DeepEqual(normDels(dels), normDels(tap.dels[i])) {
				t.Fatalf("prototest: group %d diverged on replayed input %d (%s %s): deliveries %v != live %v",
					g, i, env.Kind, env.Msg.ID, dels, tap.dels[i])
			}
		}
	}
}

// normOuts and normDels map empty slices to nil so DeepEqual ignores the
// nil-vs-empty distinction.
func normOuts(o []amcast.Output) []amcast.Output {
	if len(o) == 0 {
		return nil
	}
	return o
}

func normDels(d []amcast.Delivery) []amcast.Delivery {
	if len(d) == 0 {
		return nil
	}
	return d
}

func runRandom(t *testing.T, cfg RandomConfig, noFIFO bool) *trace.Recorder {
	t.Helper()
	if cfg.MaxDst == 0 || cfg.MaxDst > len(cfg.Groups) {
		cfg.MaxDst = len(cfg.Groups)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := sim.New()
	rec := trace.NewRecorder()

	// Random but fixed link latencies in [100, 2000] µs.
	lat := make(map[[2]amcast.NodeID]sim.Time)
	latency := func(from, to amcast.NodeID) sim.Time {
		key := [2]amcast.NodeID{from, to}
		l, ok := lat[key]
		if !ok {
			l = sim.Time(100 + rng.Intn(1900))
			lat[key] = l
		}
		return l
	}
	opts := []sim.NetworkOption{sim.WithSendHook(func(from, to amcast.NodeID, env amcast.Envelope) {
		rec.OnSend(from, to, env)
	})}
	if cfg.Jitter > 0 {
		j := cfg.Jitter
		opts = append(opts, sim.WithJitter(func(from, to amcast.NodeID) sim.Time {
			return sim.Time(rng.Int63n(int64(j)))
		}))
	}
	if noFIFO {
		opts = append(opts, sim.WithoutFIFO())
	}
	net := sim.NewNetwork(s, latency, opts...)

	var checkErr error
	engines := make(map[amcast.GroupID]amcast.Engine, len(cfg.Groups))
	for _, g := range cfg.Groups {
		g := g
		eng := cfg.Factory(g)
		engines[g] = eng
		net.Register(amcast.GroupNode(g), sim.HandlerFunc(func(env amcast.Envelope) {
			for _, out := range eng.OnEnvelope(env) {
				net.Send(amcast.GroupNode(g), out.To, out.Env)
			}
			for _, d := range eng.TakeDeliveries() {
				if err := rec.OnDeliver(d); err != nil && checkErr == nil {
					checkErr = err
				}
			}
		}))
	}
	// Clients fire all their messages up front at random times; replies
	// are not needed for the property checks.
	for c := 0; c < cfg.Clients; c++ {
		cid := amcast.ClientNode(c)
		net.Register(cid, sim.HandlerFunc(func(env amcast.Envelope) {}))
		for i := 0; i < cfg.Messages; i++ {
			m := cfg.message(c, i, cfg.MaxDst, rng)
			rec.OnMulticast(m)
			at := sim.Time(rng.Int63n(50_000))
			s.ScheduleAt(at, func() {
				for _, to := range cfg.Route(m) {
					net.Send(cid, to, amcast.Envelope{Kind: amcast.KindRequest, From: cid, Msg: m})
				}
			})
		}
	}
	s.Run()
	if checkErr != nil {
		t.Fatal(checkErr)
	}
	if cfg.OnEngines != nil {
		cfg.OnEngines(engines)
	}
	return rec
}
