package durable

import (
	"flexcast/internal/metrics"
)

// Durability latency histograms, package-level and process-wide: every
// durable engine in the process folds into the same distributions (a
// deployment runs one engine per group, and the question the telemetry
// plane answers — "is the disk the bottleneck?" — is per process, not
// per group). Recorded values are nanoseconds; commands register them
// with the telemetry registry as wal_fsync_ns and snapshot_write_ns.
var (
	fsyncHist    = metrics.NewHistogram()
	snapshotHist = metrics.NewHistogram()
)

// FsyncHist is the WAL fsync-batch latency distribution: one sample per
// actual fsync(2) (batched appends share one sample; skipped no-op
// syncs record nothing).
func FsyncHist() *metrics.Histogram { return fsyncHist }

// SnapshotHist is the snapshot write duration distribution: marshal,
// WAL sync, tmp-file write+fsync, rename and directory sync — the full
// stall a snapshot cadence point inserts into the engine's input path.
func SnapshotHist() *metrics.Histogram { return snapshotHist }
