package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
)

// newCoreEngine builds a single-group FlexCast engine: every request
// destined to group 1 delivers immediately, which is all the WAL and
// snapshot machinery needs for focused tests.
func newCoreEngine(t *testing.T) amcast.SnapshotEngine {
	t.Helper()
	ov, err := overlay.NewCDAG([]amcast.GroupID{1})
	if err != nil {
		t.Fatal(err)
	}
	return core.MustNew(core.Config{Group: 1, Overlay: ov})
}

func reqEnv(i uint64) amcast.Envelope {
	return amcast.Envelope{
		Kind: amcast.KindRequest,
		From: amcast.ClientNode(0),
		Msg: amcast.Message{
			ID:      amcast.NewMsgID(0, i),
			Sender:  amcast.ClientNode(0),
			Dst:     []amcast.GroupID{1},
			Payload: []byte(fmt.Sprintf("payload-%d", i)),
		},
	}
}

// feed pushes n requests through the engine the way a runtime would:
// input, then drain.
func feed(eng amcast.SnapshotEngine, from, n uint64) int {
	dels := 0
	for i := from; i < from+n; i++ {
		eng.OnEnvelope(reqEnv(i))
		dels += len(eng.TakeDeliveries())
	}
	return dels
}

func marshalState(t *testing.T, eng amcast.SnapshotEngine) []byte {
	t.Helper()
	data, err := eng.Snapshot().(amcast.BinarySnapshot).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func opts(dir string, snapEvery int) Options {
	return Options{Dir: dir, SnapshotEvery: snapEvery, FsyncEvery: 4, Decode: core.UnmarshalSnapshot}
}

// TestRecoverReplaysOnlySuffix is the core recovery-bound property: a
// hard stop (no Close, no graceful snapshot — the kill -9 image) must
// recover to the exact live state by restoring the newest snapshot and
// replaying only the post-snapshot WAL suffix.
func TestRecoverReplaysOnlySuffix(t *testing.T) {
	dir := t.TempDir()
	live := newCoreEngine(t)
	deng, err := Wrap(live, opts(dir, 10))
	if err != nil {
		t.Fatal(err)
	}
	if deng.Recovery().Recovered {
		t.Fatal("fresh directory reported recovered state")
	}
	if got := feed(deng, 1, 35); got != 35 {
		t.Fatalf("delivered %d of 35", got)
	}
	if err := deng.Err(); err != nil {
		t.Fatal(err)
	}
	want := marshalState(t, live)
	// Kill -9: abandon the wrapper without Close or a final snapshot.

	rec := newCoreEngine(t)
	deng2, err := Wrap(rec, opts(dir, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer deng2.Close()
	st := deng2.Recovery()
	if !st.Recovered {
		t.Fatal("recovery found nothing")
	}
	if st.SnapshotEpoch == 0 {
		t.Fatal("recovery did not restore a snapshot")
	}
	if st.ReplayedEnvelopes >= 10 {
		t.Fatalf("replayed %d envelopes, want < SnapshotEvery=10 (recovery must be bounded by snapshot age)", st.ReplayedEnvelopes)
	}
	if got := marshalState(t, rec); !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs from live state (%d vs %d bytes)", len(got), len(want))
	}
	// The recovered engine is live: new inputs append and deliver.
	if got := feed(deng2, 36, 5); got != 5 {
		t.Fatalf("post-recovery delivered %d of 5", got)
	}
}

// TestRecoveryBoundIndependentOfRunLength doubles the run length and
// asserts the replay length stays bounded by the snapshot cadence — the
// recovery-in-bounded-time argument, not merely "recovery works".
func TestRecoveryBoundIndependentOfRunLength(t *testing.T) {
	for _, n := range []uint64{200, 400} {
		dir := t.TempDir()
		live := newCoreEngine(t)
		deng, err := Wrap(live, opts(dir, 25))
		if err != nil {
			t.Fatal(err)
		}
		feed(deng, 1, n)
		rec := newCoreEngine(t)
		deng2, err := Wrap(rec, opts(dir, 25))
		if err != nil {
			t.Fatal(err)
		}
		st := deng2.Recovery()
		deng2.Close()
		if st.ReplayedEnvelopes >= 25 {
			t.Fatalf("run length %d: replayed %d envelopes, want < 25", n, st.ReplayedEnvelopes)
		}
		if got, want := marshalState(t, rec), marshalState(t, live); !bytes.Equal(got, want) {
			t.Fatalf("run length %d: recovered state differs", n)
		}
	}
}

// TestTornTailDiscarded injects the partial record a kill -9 can leave
// mid-write and asserts recovery truncates it cleanly: state equals the
// pre-tear state, the torn bytes are reported, and the log accepts new
// appends afterward.
func TestTornTailDiscarded(t *testing.T) {
	tears := map[string]func([]byte) []byte{
		"half-header": func(rec []byte) []byte { return rec[:walHeaderSize/2] },
		"half-payload": func(rec []byte) []byte {
			return rec[:walHeaderSize+(len(rec)-walHeaderSize)/2]
		},
		"corrupt-crc": func(rec []byte) []byte {
			bad := append([]byte(nil), rec...)
			bad[4] ^= 0xFF
			return bad
		},
	}
	for name, tear := range tears {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			live := newCoreEngine(t)
			deng, err := Wrap(live, opts(dir, -1))
			if err != nil {
				t.Fatal(err)
			}
			feed(deng, 1, 7)
			want := marshalState(t, live)
			// Tear: an unprocessed input was mid-append when the process
			// died. The record is framed correctly, then cut (or corrupted),
			// exactly as an interrupted write() sequence would leave it.
			rec := appendWALRecord(nil, []byte("unprocessed input never fully written"))
			walFile := walPath(dir, deng.Epoch())
			f, err := os.OpenFile(walFile, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tear(rec)); err != nil {
				t.Fatal(err)
			}
			f.Close()

			eng2 := newCoreEngine(t)
			deng2, err := Wrap(eng2, opts(dir, -1))
			if err != nil {
				t.Fatalf("recovery failed on torn tail: %v", err)
			}
			st := deng2.Recovery()
			if st.TornTailBytes == 0 {
				t.Fatal("torn tail not reported")
			}
			if st.ReplayedEnvelopes != 7 {
				t.Fatalf("replayed %d envelopes, want 7 (the tail must not eat valid records)", st.ReplayedEnvelopes)
			}
			if got := marshalState(t, eng2); !bytes.Equal(got, want) {
				t.Fatal("recovered state differs from pre-tear state")
			}
			// The tail was truncated: appends after recovery land where the
			// tear was and survive another recovery.
			feed(deng2, 8, 3)
			deng2.Close()
			eng3 := newCoreEngine(t)
			deng3, err := Wrap(eng3, opts(dir, -1))
			if err != nil {
				t.Fatal(err)
			}
			defer deng3.Close()
			if st := deng3.Recovery(); st.ReplayedEnvelopes != 10 || st.TornTailBytes != 0 {
				t.Fatalf("second recovery replayed %d envelopes (torn %d bytes), want 10 clean",
					st.ReplayedEnvelopes, st.TornTailBytes)
			}
		})
	}
}

// TestSnapshotRotationTruncatesOldEpochs asserts the GC half of the
// design: once snap-e exists, epochs < e are deleted — the WAL never
// accumulates the whole run.
func TestSnapshotRotationTruncatesOldEpochs(t *testing.T) {
	dir := t.TempDir()
	deng, err := Wrap(newCoreEngine(t), opts(dir, 5))
	if err != nil {
		t.Fatal(err)
	}
	feed(deng, 1, 42)
	if err := deng.Close(); err != nil {
		t.Fatal(err)
	}
	wals, snaps, err := scanEpochs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(wals) != 1 || len(snaps) != 1 {
		t.Fatalf("after rotation: %d wal files %v, %d snapshots %v; want 1 and 1", len(wals), wals, len(snaps), snaps)
	}
	if wals[0] != snaps[0] {
		t.Fatalf("wal epoch %d != snapshot epoch %d", wals[0], snaps[0])
	}
	if wals[0] < 8 {
		t.Fatalf("epoch %d after 42 inputs at cadence 5: rotation did not keep up", wals[0])
	}
}

// TestKeepEpochsRetainsHistory covers the debugging knob.
func TestKeepEpochsRetainsHistory(t *testing.T) {
	dir := t.TempDir()
	o := opts(dir, 5)
	o.KeepEpochs = true
	deng, err := Wrap(newCoreEngine(t), o)
	if err != nil {
		t.Fatal(err)
	}
	feed(deng, 1, 20)
	deng.Close()
	wals, _, err := scanEpochs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(wals) < 3 {
		t.Fatalf("KeepEpochs retained only %d wal files", len(wals))
	}
}

// TestCrashBetweenSnapshotAndRotation simulates the in-between crash:
// snap-(e+1) written but the WAL never rotated. Recovery must prefer
// the snapshot and ignore the superseded wal-e records.
func TestCrashBetweenSnapshotAndRotation(t *testing.T) {
	dir := t.TempDir()
	live := newCoreEngine(t)
	deng, err := Wrap(live, opts(dir, -1))
	if err != nil {
		t.Fatal(err)
	}
	feed(deng, 1, 9)
	// Write snap-(e+1) by hand, as if the process died right after the
	// rename and before rotation.
	data := marshalState(t, live)
	if err := os.WriteFile(snapPath(dir, deng.Epoch()+1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec := newCoreEngine(t)
	deng2, err := Wrap(rec, opts(dir, -1))
	if err != nil {
		t.Fatal(err)
	}
	defer deng2.Close()
	st := deng2.Recovery()
	if st.ReplayedEnvelopes != 0 {
		t.Fatalf("replayed %d envelopes over a snapshot that already covers them", st.ReplayedEnvelopes)
	}
	if got := marshalState(t, rec); !bytes.Equal(got, data) {
		t.Fatal("recovered state differs")
	}
}

// TestCorruptSnapshotFallsBack: an undecodable newest snapshot must not
// kill recovery while older epochs still cover the log.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	o := opts(dir, 5)
	o.KeepEpochs = true // retain older snapshots to fall back on
	live := newCoreEngine(t)
	deng, err := Wrap(live, o)
	if err != nil {
		t.Fatal(err)
	}
	feed(deng, 1, 23)
	want := marshalState(t, live)
	_, snaps, err := scanEpochs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("need ≥2 snapshots, have %d", len(snaps))
	}
	newest := snaps[len(snaps)-1]
	if err := os.WriteFile(snapPath(dir, newest), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := newCoreEngine(t)
	deng2, err := Wrap(rec, o)
	if err != nil {
		t.Fatalf("recovery failed on corrupt newest snapshot: %v", err)
	}
	defer deng2.Close()
	st := deng2.Recovery()
	if st.SnapshotEpoch >= newest {
		t.Fatalf("recovery claims snapshot epoch %d, which is corrupt", st.SnapshotEpoch)
	}
	if st.CorruptSnapshots != 1 {
		t.Fatalf("CorruptSnapshots = %d, want 1 (the fallback must be surfaced, not silent)", st.CorruptSnapshots)
	}
	if got := marshalState(t, rec); !bytes.Equal(got, want) {
		t.Fatal("fallback recovery diverged from live state")
	}
}

// TestCorruptOnlySnapshotFailsLoudly: without KeepEpochs, truncation
// already deleted every older snapshot and WAL epoch — when the one
// remaining snapshot does not decode there is nothing to fall back on,
// and recovery must fail instead of silently rebuilding from fresh
// state plus only the current WAL epoch (silent data loss).
func TestCorruptOnlySnapshotFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	deng, err := Wrap(newCoreEngine(t), opts(dir, 5))
	if err != nil {
		t.Fatal(err)
	}
	feed(deng, 1, 23)
	deng.Close()
	_, snaps, err := scanEpochs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("test premise broken: want exactly 1 retained snapshot, have %v", snaps)
	}
	if err := os.WriteFile(snapPath(dir, snaps[0]), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Wrap(newCoreEngine(t), opts(dir, 5)); err == nil {
		t.Fatal("recovery silently succeeded with the only snapshot corrupt")
	}
}

// FuzzWALRecover hammers the WAL reader with arbitrary bytes: it must
// never panic, must account for every byte (records + torn tail), and
// truncating to goodLen must yield a byte-stable scan (the recovery
// path truncates exactly there).
func FuzzWALRecover(f *testing.F) {
	var valid []byte
	for i := 0; i < 3; i++ {
		valid = appendWALRecord(valid, []byte(fmt.Sprintf("record-%d", i)))
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})
	corrupt := append([]byte(nil), valid...)
	corrupt[5] ^= 0xA5
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal-00000000.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		scan, err := readWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if scan.goodLen+scan.tornBytes != int64(len(data)) {
			t.Fatalf("goodLen %d + torn %d != %d bytes", scan.goodLen, scan.tornBytes, len(data))
		}
		if scan.goodLen > int64(len(data)) || scan.goodLen < 0 {
			t.Fatalf("goodLen %d out of range", scan.goodLen)
		}
		// Truncating at goodLen (what openWALWriter does) must preserve
		// exactly the valid records and report a clean file.
		if err := os.WriteFile(path, data[:scan.goodLen], 0o644); err != nil {
			t.Fatal(err)
		}
		again, err := readWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if again.tornBytes != 0 || len(again.records) != len(scan.records) {
			t.Fatalf("re-scan after truncation: %d records torn %d, want %d records torn 0",
				len(again.records), again.tornBytes, len(scan.records))
		}
		for i := range scan.records {
			if !bytes.Equal(scan.records[i], again.records[i]) {
				t.Fatalf("record %d changed across truncation", i)
			}
		}
	})
}
