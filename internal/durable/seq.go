package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// SeqFile persists a monotonic sequence reservation for a client.
// Message ids must be unique across client incarnations: a restarted
// cluster that restarts its client counter at zero would reissue ids
// its recovered engines already delivered, and the duplicates would be
// silently deduplicated instead of ordered. SeqFile prevents that by
// reserving sequence numbers in blocks — the file always holds an upper
// bound on every sequence ever handed out, so a crash (even a torn
// write, thanks to the write-temp-then-rename protocol) can only waste
// the unissued remainder of a block, never reuse a number.
type SeqFile struct {
	path  string
	chunk uint64

	mu    sync.Mutex
	next  uint64 // next sequence to hand out
	limit uint64 // reservation persisted on disk; next < limit always
}

// seqFileSize is u64le reservation + u32le CRC-32C.
const seqFileSize = 12

// OpenSeqFile opens (or creates) the reservation file at path. chunk is
// the reservation block size (<= 0 takes 4096). The first sequence a
// fresh file hands out is 1.
func OpenSeqFile(path string, chunk uint64) (*SeqFile, error) {
	if chunk <= 0 {
		chunk = 4096
	}
	s := &SeqFile{path: path, chunk: chunk}
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// Fresh file: reserve the first block below.
	case err != nil:
		return nil, err
	case len(data) != seqFileSize:
		return nil, fmt.Errorf("durable: seq file %s: %d bytes, want %d", path, len(data), seqFileSize)
	default:
		reserved := binary.LittleEndian.Uint64(data[0:8])
		if got, want := binary.LittleEndian.Uint32(data[8:12]), crc32.Checksum(data[0:8], crcTable); got != want {
			return nil, fmt.Errorf("durable: seq file %s: checksum mismatch", path)
		}
		s.next = reserved
	}
	if err := s.reserve(s.next + chunk); err != nil {
		return nil, err
	}
	return s, nil
}

// Next returns the next sequence number, extending the on-disk
// reservation before crossing into an unreserved block.
func (s *SeqFile) Next() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next+1 >= s.limit {
		if err := s.reserve(s.limit + s.chunk); err != nil {
			return 0, err
		}
	}
	s.next++
	return s.next, nil
}

// reserve durably records that every sequence below bound may have been
// issued. Write-temp-fsync-rename keeps the update atomic: a crash
// leaves either the old bound or the new one, never a torn value.
func (s *SeqFile) reserve(bound uint64) error {
	var buf [seqFileSize]byte
	binary.LittleEndian.PutUint64(buf[0:8], bound)
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(buf[0:8], crcTable))
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return err
	}
	syncDir(filepath.Dir(s.path))
	s.limit = bound
	return nil
}

// syncDir best-effort fsyncs a directory so a completed rename inside
// it survives a machine crash, not just a process crash.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
