package durable

import (
	"fmt"
	"os"
)

// TearTail appends the prefix of a valid record — cut mid-frame — to the
// newest WAL under dir, reproducing on demand the torn tail a process
// killed mid-append leaves behind. The fragment carries the full
// record's length and checksum header, so only the framing discipline
// (incomplete body, checksum over missing bytes) can reject it — the
// hardest torn shape to detect. Returns the number of garbage bytes
// appended. It is a fault-injection helper for crash tests; the engine
// itself never calls it.
func TearTail(dir string, payload []byte) (int64, error) {
	wals, _, err := scanEpochs(dir)
	if err != nil {
		return 0, err
	}
	if len(wals) == 0 {
		return 0, fmt.Errorf("durable: no WAL under %s to tear", dir)
	}
	if len(payload) == 0 {
		payload = []byte("torn-tail-fragment-never-recovered")
	}
	rec := appendWALRecord(nil, payload)
	cut := walHeaderSize + len(payload)/2
	f, err := os.OpenFile(walPath(dir, wals[len(wals)-1]), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(rec[:cut]); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return int64(cut), nil
}

// TruncateLastRecord cuts the newest WAL's final complete record in half
// — header plus a partial payload — turning it into a torn tail, as if
// the crash had struck mid-append of that record (so its input is lost
// and recovery must stop cleanly at the record before it). Returns false
// when the newest WAL holds no complete record to truncate. Like
// TearTail, it is a fault-injection helper for crash tests.
func TruncateLastRecord(dir string) (bool, error) {
	wals, _, err := scanEpochs(dir)
	if err != nil {
		return false, err
	}
	if len(wals) == 0 {
		return false, nil
	}
	path := walPath(dir, wals[len(wals)-1])
	scan, err := readWAL(path)
	if err != nil {
		return false, err
	}
	if len(scan.records) == 0 {
		return false, nil
	}
	last := int64(len(scan.records[len(scan.records)-1]))
	recStart := scan.goodLen - walHeaderSize - last
	if err := os.Truncate(path, recStart+walHeaderSize+last/2); err != nil {
		return false, err
	}
	return true, nil
}
