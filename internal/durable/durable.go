// Package durable is the pluggable persistence layer behind the
// amcast.SnapshotEngine seam: a write-ahead log of every input envelope
// (CRC-framed, fsync-batched) plus periodic snapshot files, organized
// in epochs.
//
//	wal-%08d.log   input records of epoch e (wire-codec frames)
//	snap-%08d.snap engine state after every record of epochs < e
//
// Taking a snapshot writes snap-(e+1) (tmp + rename, so a crash never
// leaves a half-written snapshot under the real name), rotates the log
// to wal-(e+1), and deletes older epochs — the store-level consumer of
// the paper's §4.3 truncate-delivered-prefixes rule. Recovery restores
// the highest decodable snapshot and replays only the WAL epochs at or
// after it, so recovery work is bounded by the snapshot cadence, never
// by run length. A torn record at the WAL tail (the partial write a
// kill -9 leaves) is detected by its frame CRC and truncated away.
//
// The failure model is process crash (kill -9): write()n data survives
// in the page cache even when the process dies before fsync. Batched
// fsync (Options.FsyncEvery) bounds what a simultaneous machine crash
// could lose; tests inject torn tails explicitly rather than relying on
// the kernel to produce them.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"flexcast/amcast"
	"flexcast/internal/codec"
)

// Options configures a durable engine.
type Options struct {
	// Dir is the persistence directory (required; created if missing).
	// One engine per directory.
	Dir string
	// SnapshotEvery takes a snapshot and rotates the WAL every N input
	// envelopes (default 256; <0 disables snapshots, the WAL grows
	// unbounded and recovery replays it all).
	SnapshotEvery int
	// FsyncEvery fsyncs the WAL every N appends (default 64; 1 fsyncs
	// every append, <0 never fsyncs — kill -9 durability only).
	FsyncEvery int
	// Decode decodes a snapshot file previously written by the engine's
	// Snapshot (an amcast.BinarySnapshot). Required: it is the protocol
	// half of the on-disk format (core.UnmarshalSnapshot, or
	// store.UnmarshalSnapshot composed over it for executors).
	Decode func([]byte) (amcast.Snapshot, error)
	// KeepEpochs retains superseded WAL and snapshot files instead of
	// deleting them (debugging, archaeology).
	KeepEpochs bool
}

func (o *Options) fill() error {
	if o.Dir == "" {
		return fmt.Errorf("durable: missing directory")
	}
	if o.Decode == nil {
		return fmt.Errorf("durable: missing snapshot decoder")
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 256
	}
	if o.FsyncEvery == 0 {
		o.FsyncEvery = 64
	}
	return nil
}

// RecoveryStats reports what Wrap found and replayed on open.
type RecoveryStats struct {
	// Recovered is true when any prior state (snapshot or WAL records)
	// was found.
	Recovered bool
	// SnapshotEpoch is the epoch of the restored snapshot (0 = none,
	// recovery started from the engine's fresh state).
	SnapshotEpoch uint64
	// SnapshotBytes is the restored snapshot's size.
	SnapshotBytes int
	// ReplayedRecords counts the WAL records replayed (each one input
	// frame: a single envelope or a batch).
	ReplayedRecords int
	// ReplayedEnvelopes counts the envelopes inside those records — the
	// recovery bound the crash tests assert on.
	ReplayedEnvelopes int
	// TornTailBytes is the length of the discarded torn WAL tail.
	TornTailBytes int64
	// CorruptSnapshots counts snapshot files that existed but failed to
	// read or decode, forcing fallback to an older epoch. Recovery fails
	// outright when no snapshot on disk decodes at all.
	CorruptSnapshots int
	// Elapsed is the wall-clock recovery time (restore + replay).
	Elapsed time.Duration
}

func walPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", epoch))
}

func snapPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", epoch))
}

// scanEpochs lists the wal and snapshot epochs present in dir, sorted
// ascending.
func scanEpochs(dir string) (wals, snaps []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range ents {
		var e uint64
		switch {
		case matchEpoch(ent.Name(), "wal-%08d.log", &e):
			wals = append(wals, e)
		case matchEpoch(ent.Name(), "snap-%08d.snap", &e):
			snaps = append(snaps, e)
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return wals, snaps, nil
}

func matchEpoch(name, pattern string, e *uint64) bool {
	var got uint64
	if n, err := fmt.Sscanf(name, pattern, &got); n == 1 && err == nil {
		if fmt.Sprintf(pattern, got) == name {
			*e = got
			return true
		}
	}
	return false
}

// Engine wraps an amcast.SnapshotEngine with the durable backend. It is
// single-owner like the engine it wraps: the runtime goroutine that
// feeds the engine is the only goroutine that may call it, so the input
// path needs no locking. I/O errors latch (Err) rather than panic — the
// wrapped engine keeps running, durability is reported broken.
type Engine struct {
	inner amcast.SnapshotEngine
	opts  Options

	epoch uint64
	w     *walWriter
	// sinceSnap counts input envelopes appended since the last snapshot
	// (the replay length a crash right now would pay).
	sinceSnap int
	stats     RecoveryStats
	err       error
}

// Wrap opens (or creates) the durable state under opts.Dir, recovers
// the wrapped engine from it — restore the newest snapshot, replay the
// WAL suffix, truncate any torn tail — and returns the engine ready to
// append. The engine must be freshly constructed (its pre-Wrap state is
// the epoch-0 baseline a recovery without snapshot replays onto).
func Wrap(inner amcast.SnapshotEngine, opts Options) (*Engine, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	e := &Engine{inner: inner, opts: opts}
	if err := e.recover(); err != nil {
		return nil, err
	}
	return e, nil
}

// recover restores the newest decodable snapshot, replays WAL epochs at
// or after it, and opens the current WAL for appending (past any torn
// tail, which is truncated).
func (e *Engine) recover() error {
	start := time.Now()
	wals, snaps, err := scanEpochs(e.opts.Dir)
	if err != nil {
		return err
	}
	// Restore the newest snapshot that decodes. An unreadable snapshot
	// costs replay length, not correctness, when an older one plus its
	// WAL epochs still exist (KeepEpochs) — fall back and report it in
	// CorruptSnapshots. When nothing on disk decodes the truncated prefix
	// is unrecoverable: fail loudly below instead of silently starting
	// from fresh state plus the surviving WAL suffix.
	snapEpoch := uint64(0)
	var snapErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(snapPath(e.opts.Dir, snaps[i]))
		if err != nil {
			snapErr = fmt.Errorf("durable: read snapshot epoch %d: %w", snaps[i], err)
			e.stats.CorruptSnapshots++
			continue
		}
		snap, err := e.opts.Decode(data)
		if err != nil {
			snapErr = fmt.Errorf("durable: decode snapshot epoch %d: %w", snaps[i], err)
			e.stats.CorruptSnapshots++
			continue
		}
		if err := e.inner.Restore(snap); err != nil {
			return fmt.Errorf("durable: restore snapshot epoch %d: %w", snaps[i], err)
		}
		e.inner.TakeDeliveries() // restore discards undrained deliveries
		snapEpoch = snaps[i]
		e.stats.SnapshotEpoch = snaps[i]
		e.stats.SnapshotBytes = len(data)
		e.stats.Recovered = true
		break
	}
	if snapEpoch == 0 && snapErr != nil {
		return snapErr
	}
	// Replay the WAL suffix: every record of every epoch >= snapEpoch,
	// ascending. Outputs and deliveries were already emitted before the
	// crash; replay only rebuilds state.
	curEpoch := snapEpoch
	var curGoodLen int64
	for _, we := range wals {
		if we < snapEpoch {
			continue
		}
		scan, err := readWAL(walPath(e.opts.Dir, we))
		if err != nil {
			return err
		}
		for _, rec := range scan.records {
			envs, err := codec.DecodeFrame(rec)
			if err != nil {
				return fmt.Errorf("durable: wal epoch %d record %d: %w", we, e.stats.ReplayedRecords, err)
			}
			amcast.BatchStep(e.inner, envs)
			e.inner.TakeDeliveries()
			e.stats.ReplayedRecords++
			e.stats.ReplayedEnvelopes += len(envs)
			e.stats.Recovered = true
		}
		e.stats.TornTailBytes += scan.tornBytes
		if we >= curEpoch {
			curEpoch, curGoodLen = we, scan.goodLen
		}
	}
	e.epoch = curEpoch
	e.sinceSnap = e.stats.ReplayedEnvelopes
	e.w, err = openWALWriter(walPath(e.opts.Dir, curEpoch), e.opts.FsyncEvery, curGoodLen)
	if err != nil {
		return err
	}
	if !e.opts.KeepEpochs {
		e.truncateBelow(snapEpoch)
	}
	e.stats.Elapsed = time.Since(start)
	return nil
}

// truncateBelow deletes WAL and snapshot files of epochs strictly below
// e — they are covered by snapshot e. Superseded snapshots go first:
// a crash mid-truncate then leaves an orphaned old WAL (harmless, re-
// deleted next time) rather than an old snapshot whose WAL epochs are
// gone, which recovery could otherwise fall back on and silently replay
// an incomplete suffix.
func (e *Engine) truncateBelow(epoch uint64) {
	wals, snaps, err := scanEpochs(e.opts.Dir)
	if err != nil {
		return
	}
	for _, se := range snaps {
		if se < epoch {
			os.Remove(snapPath(e.opts.Dir, se))
		}
	}
	for _, we := range wals {
		if we < epoch {
			os.Remove(walPath(e.opts.Dir, we))
		}
	}
}

// writeFileSync is os.WriteFile plus an fsync before close, for writes
// whose only other copy is about to be deleted.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Recovery reports what Wrap restored and replayed.
func (e *Engine) Recovery() RecoveryStats { return e.stats }

// Inner returns the wrapped engine — for layers that need the concrete
// engine underneath (read fast paths, audits). Callers must respect the
// single-owner discipline of the engine they unwrap.
func (e *Engine) Inner() amcast.SnapshotEngine { return e.inner }

// Err returns the latched I/O error, if any: the first WAL append or
// snapshot write that failed. State on disk is frozen at that point.
func (e *Engine) Err() error { return e.err }

// Epoch returns the current WAL epoch.
func (e *Engine) Epoch() uint64 { return e.epoch }

// SinceSnapshot reports the input envelopes appended since the last
// snapshot — the replay length a crash right now would pay.
func (e *Engine) SinceSnapshot() int { return e.sinceSnap }

// append logs one input frame before it reaches the engine.
func (e *Engine) append(frame []byte, envelopes int) {
	if e.err != nil {
		return
	}
	if err := e.w.append(frame); err != nil {
		e.err = err
		return
	}
	e.sinceSnap += envelopes
}

// Group implements amcast.Engine.
func (e *Engine) Group() amcast.GroupID { return e.inner.Group() }

// OnEnvelope implements amcast.Engine: the envelope is appended to the
// WAL, then forwarded.
func (e *Engine) OnEnvelope(env amcast.Envelope) []amcast.Output {
	e.append(codec.Marshal(env), 1)
	return e.inner.OnEnvelope(env)
}

// BatchStep implements amcast.BatchStepper: the batch is appended as
// one record (one frame, one CRC), then forwarded to the engine's batch
// fast path.
func (e *Engine) BatchStep(envs []amcast.Envelope) []amcast.Output {
	if len(envs) == 0 {
		return nil
	}
	e.append(codec.MarshalBatch(envs), len(envs))
	return amcast.BatchStep(e.inner, envs)
}

// TakeDeliveries implements amcast.Engine and is the snapshot point:
// right after a drain the engine's delivery buffer is empty, so the
// snapshot restores to a state with nothing half-emitted. When the
// snapshot cadence is due the engine state is written to snap-(e+1),
// the WAL rotates to epoch e+1, and older epochs are deleted.
func (e *Engine) TakeDeliveries() []amcast.Delivery {
	dels := e.inner.TakeDeliveries()
	if e.err == nil && e.opts.SnapshotEvery > 0 && e.sinceSnap >= e.opts.SnapshotEvery {
		if err := e.snapshot(); err != nil {
			e.err = err
		}
	}
	return dels
}

// SnapshotNow forces a snapshot + rotation regardless of cadence. The
// engine's delivery buffer must be drained (call it from the owning
// goroutine between TakeDeliveries and the next input).
func (e *Engine) SnapshotNow() error {
	if e.err != nil {
		return e.err
	}
	if err := e.snapshot(); err != nil {
		e.err = err
	}
	return e.err
}

func (e *Engine) snapshot() error {
	start := time.Now()
	bs, ok := e.inner.Snapshot().(amcast.BinarySnapshot)
	if !ok {
		return fmt.Errorf("durable: engine %T snapshot has no binary form", e.inner)
	}
	data, err := bs.MarshalBinary()
	if err != nil {
		return err
	}
	// The WAL must be on disk before the snapshot that supersedes it:
	// snap-(e+1) claims to cover every record of epoch e.
	if err := e.w.sync(); err != nil {
		return err
	}
	next := e.epoch + 1
	tmp := snapPath(e.opts.Dir, next) + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, snapPath(e.opts.Dir, next)); err != nil {
		return err
	}
	// The snapshot must be durable — data fsynced above, rename fsynced
	// here — before truncateBelow deletes the WAL epochs it supersedes:
	// they are the only other copy of this state.
	syncDir(e.opts.Dir)
	if err := e.w.close(); err != nil {
		return err
	}
	w, err := openWALWriter(walPath(e.opts.Dir, next), e.opts.FsyncEvery, 0)
	if err != nil {
		return err
	}
	e.w = w
	e.epoch = next
	e.sinceSnap = 0
	if !e.opts.KeepEpochs {
		e.truncateBelow(next)
	}
	snapshotHist.Record(uint64(time.Since(start)))
	return nil
}

// Snapshot implements amcast.SnapshotEngine (forwarded).
func (e *Engine) Snapshot() amcast.Snapshot { return e.inner.Snapshot() }

// Restore implements amcast.SnapshotEngine (forwarded). Restoring past
// state does not rewind the on-disk log — it is a test-harness seam
// (the chaos explorer's in-memory model), not a durability operation.
func (e *Engine) Restore(s amcast.Snapshot) error { return e.inner.Restore(s) }

// CheckHistoryAcyclic forwards the inner engine's ordering audit.
func (e *Engine) CheckHistoryAcyclic() error {
	if c, ok := e.inner.(interface{ CheckHistoryAcyclic() error }); ok {
		return c.CheckHistoryAcyclic()
	}
	return nil
}

// Sync forces the WAL to disk.
func (e *Engine) Sync() error {
	if e.err != nil {
		return e.err
	}
	if err := e.w.sync(); err != nil {
		e.err = err
	}
	return e.err
}

// Close flushes and closes the WAL. The engine must not be used after.
func (e *Engine) Close() error {
	if e.w == nil {
		return e.err
	}
	err := e.w.close()
	e.w = nil
	if e.err == nil {
		e.err = err
	}
	return err
}

var _ amcast.SnapshotEngine = (*Engine)(nil)
var _ amcast.BatchStepper = (*Engine)(nil)
