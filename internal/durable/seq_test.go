package durable

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSeqFileNeverReusesAcrossReopen: sequences from a reopened file
// must be strictly greater than anything the previous incarnation could
// have issued — even when the process died without closing cleanly
// (there is no close; the reservation on disk is always the bound).
func TestSeqFileNeverReusesAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "client.seq")
	s, err := OpenSeqFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 20; i++ { // crosses two reservation blocks
		n, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if n <= last {
			t.Fatalf("sequence went backwards: %d after %d", n, last)
		}
		last = n
	}
	// Simulated crash: just reopen; no shutdown step exists.
	re, err := OpenSeqFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := re.Next()
	if err != nil {
		t.Fatal(err)
	}
	if n <= last {
		t.Fatalf("reopened file reissued %d, already handed out through %d", n, last)
	}
}

// TestSeqFileFreshStartsAtOne pins the fresh-file contract clients
// depend on (MsgID seq 0 is reserved as a sentinel by convention).
func TestSeqFileFreshStartsAtOne(t *testing.T) {
	s, err := OpenSeqFile(filepath.Join(t.TempDir(), "client.seq"), 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("fresh file handed out %d first, want 1", n)
	}
}

// TestSeqFileRejectsCorruption: a torn or bit-flipped reservation file
// must fail loudly — silently starting over would reuse ids.
func TestSeqFileRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "client.seq")
	if _, err := OpenSeqFile(path, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated file.
	if err := os.WriteFile(path, data[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSeqFile(path, 0); err == nil {
		t.Fatal("truncated seq file opened without error")
	}
	// Bit flip under an intact length.
	data[3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSeqFile(path, 0); err == nil {
		t.Fatal("corrupt seq file opened without error")
	}
}
