package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// WAL record framing: [u32le payload length][u32le CRC-32C][payload].
// The payload is a wire-codec envelope frame (single or batch), so the
// log reuses the codec's canonical encodings end to end. A record is
// valid only if it is complete and its checksum matches; the reader
// stops at the first invalid record, which is how a torn tail — the
// partial write a kill -9 leaves behind — is detected and discarded.

const walHeaderSize = 8

// maxWALRecord bounds a single record; anything larger is corruption
// (it exceeds the largest frame the codec can legally produce by a wide
// margin) and must not drive a multi-gigabyte allocation during replay.
const maxWALRecord = 1 << 26

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendWALRecord frames payload into buf.
func appendWALRecord(buf, payload []byte) []byte {
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// walScan is the result of reading one WAL file.
type walScan struct {
	// records holds the payloads of every valid record, in order.
	records [][]byte
	// goodLen is the byte offset of the end of the last valid record;
	// everything past it is a torn tail (or trailing corruption).
	goodLen int64
	// tornBytes is the length of the discarded tail (0 when clean).
	tornBytes int64
}

// readWAL reads every valid record of a WAL file, stopping cleanly at
// the first incomplete or corrupt record. Only I/O errors are returned;
// a torn tail is a normal crash artifact, reported via the scan.
func readWAL(path string) (walScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return walScan{}, err
	}
	var scan walScan
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < walHeaderSize {
			break
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxWALRecord || int64(len(rest)) < walHeaderSize+n {
			break
		}
		payload := rest[walHeaderSize : walHeaderSize+n]
		if crc32.Checksum(payload, crcTable) != sum {
			break
		}
		scan.records = append(scan.records, payload)
		off += walHeaderSize + n
	}
	scan.goodLen = off
	scan.tornBytes = int64(len(data)) - off
	return scan, nil
}

// walWriter appends framed records to an open WAL file with batched
// fsync: records are written immediately (so a killed process loses at
// most what the kernel had not flushed), and the file is fsynced every
// fsyncEvery appends (1 = every append, <0 = never).
type walWriter struct {
	f          *os.File
	fsyncEvery int
	sinceSync  int
	buf        []byte
}

func openWALWriter(path string, fsyncEvery int, goodLen int64) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	// Drop any torn tail from a previous crash before appending: the
	// reader would stop there anyway, but new records written after
	// garbage would be unreachable.
	if err := f.Truncate(goodLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(goodLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, fsyncEvery: fsyncEvery}, nil
}

func (w *walWriter) append(payload []byte) error {
	w.buf = appendWALRecord(w.buf[:0], payload)
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("durable: wal append: %w", err)
	}
	w.sinceSync++
	if w.fsyncEvery > 0 && w.sinceSync >= w.fsyncEvery {
		return w.sync()
	}
	return nil
}

func (w *walWriter) sync() error {
	if w.sinceSync == 0 {
		return nil
	}
	w.sinceSync = 0
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: wal fsync: %w", err)
	}
	fsyncHist.Record(uint64(time.Since(start)))
	return nil
}

func (w *walWriter) close() error {
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
