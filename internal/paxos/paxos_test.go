package paxos

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// cluster is an in-memory test harness: replicas exchange messages
// through a queue with configurable drops and reordering, and are ticked
// whenever the queue runs dry.
type cluster struct {
	t        *testing.T
	reps     []*Replica
	queue    []Message
	rng      *rand.Rand
	dropRate float64
	reorder  bool
	// log[r] is the in-order decided log observed at replica r.
	log map[ReplicaID][][]byte
}

func newCluster(t *testing.T, n int, seed int64) *cluster {
	t.Helper()
	c := &cluster{
		t:   t,
		rng: rand.New(rand.NewSource(seed)),
		log: make(map[ReplicaID][][]byte),
	}
	for i := 0; i < n; i++ {
		c.reps = append(c.reps, MustNewReplica(Config{ID: ReplicaID(i), N: n}))
	}
	return c
}

func (c *cluster) send(ms []Message) {
	for _, m := range ms {
		if c.dropRate > 0 && c.rng.Float64() < c.dropRate {
			continue
		}
		c.queue = append(c.queue, m)
	}
}

func (c *cluster) propose(at ReplicaID, v string) {
	c.send(c.reps[at].Propose([]byte(v)))
}

func (c *cluster) collect() {
	for _, r := range c.reps {
		for _, d := range r.TakeDecisions() {
			c.log[r.ID()] = append(c.log[r.ID()], d.Value)
		}
	}
}

// run processes traffic until quiescence or the step budget is spent;
// when the queue drains it ticks all replicas (driving elections and
// retries).
func (c *cluster) run(maxSteps int) {
	for step := 0; step < maxSteps; step++ {
		if len(c.queue) == 0 {
			for _, r := range c.reps {
				c.send(r.Tick())
			}
			c.collect()
			if len(c.queue) == 0 {
				continue
			}
		}
		idx := 0
		if c.reorder && len(c.queue) > 1 {
			idx = c.rng.Intn(len(c.queue))
		}
		m := c.queue[idx]
		c.queue = append(c.queue[:idx], c.queue[idx+1:]...)
		c.send(c.reps[m.To].OnMessage(m))
		c.collect()
	}
	c.collect()
}

// checkPrefixAgreement verifies that all replica logs agree on their
// common prefix — Paxos' safety property.
func (c *cluster) checkPrefixAgreement() {
	c.t.Helper()
	for i := range c.reps {
		for j := i + 1; j < len(c.reps); j++ {
			a, b := c.log[ReplicaID(i)], c.log[ReplicaID(j)]
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for k := 0; k < n; k++ {
				if !bytes.Equal(a[k], b[k]) {
					c.t.Fatalf("logs diverge at %d: replica %d has %q, replica %d has %q",
						k, i, a[k], j, b[k])
				}
			}
		}
	}
}

func TestSingleReplicaDecidesAlone(t *testing.T) {
	c := newCluster(t, 1, 1)
	c.propose(0, "a")
	c.propose(0, "b")
	c.run(100)
	if got := c.log[0]; len(got) != 2 || string(got[0]) != "a" || string(got[1]) != "b" {
		t.Fatalf("log = %q", got)
	}
}

func TestThreeReplicasDecideInOrder(t *testing.T) {
	c := newCluster(t, 3, 2)
	for i := 0; i < 10; i++ {
		c.propose(0, fmt.Sprintf("v%d", i))
	}
	c.run(5000)
	c.checkPrefixAgreement()
	for r := ReplicaID(0); r < 3; r++ {
		if len(c.log[r]) != 10 {
			t.Fatalf("replica %d decided %d entries, want 10", r, len(c.log[r]))
		}
	}
	for i, v := range c.log[0] {
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("entry %d = %q", i, v)
		}
	}
}

func TestFollowerForwardsToLeader(t *testing.T) {
	c := newCluster(t, 3, 3)
	c.propose(0, "warm") // establishes leadership at 0
	c.run(2000)
	c.propose(2, "from-follower")
	c.run(2000)
	c.checkPrefixAgreement()
	if len(c.log[2]) != 2 || string(c.log[2][1]) != "from-follower" {
		t.Fatalf("log = %q", c.log[2])
	}
}

func TestLeaderCrashTriggersFailover(t *testing.T) {
	c := newCluster(t, 3, 4)
	c.propose(0, "before")
	c.run(2000)
	c.reps[0].Crash()
	c.propose(1, "after") // replica 1 must take over
	c.run(20000)
	c.checkPrefixAgreement()
	for r := ReplicaID(1); r < 3; r++ {
		if len(c.log[r]) != 2 {
			t.Fatalf("replica %d decided %d entries, want 2 (%q)", r, len(c.log[r]), c.log[r])
		}
		if string(c.log[r][0]) != "before" || string(c.log[r][1]) != "after" {
			t.Fatalf("replica %d log = %q", r, c.log[r])
		}
	}
	if !c.reps[1].IsLeader() {
		t.Fatal("replica 1 did not become leader")
	}
}

func TestValueSurvivesLeaderCrashAfterAccept(t *testing.T) {
	// The leader reaches a majority of accepts and crashes before
	// broadcasting the decision; the new leader must re-propose the same
	// value (Phase 1 value adoption).
	c := newCluster(t, 3, 5)
	c.propose(0, "survivor")
	// Process messages until the first Decide appears in the queue, then
	// drop all of replica 0's outgoing traffic by crashing it.
	for steps := 0; steps < 1000; steps++ {
		if len(c.queue) == 0 {
			for _, r := range c.reps {
				c.send(r.Tick())
			}
			continue
		}
		m := c.queue[0]
		c.queue = c.queue[1:]
		if m.Kind == MsgDecide {
			// The leader already learned locally; crash it and drop the
			// broadcast so followers never hear the decision directly.
			c.reps[0].Crash()
			c.queue = nil
			break
		}
		c.send(c.reps[m.To].OnMessage(m))
	}
	if !c.reps[0].Crashed() {
		t.Fatal("test never reached the decide broadcast")
	}
	c.run(20000)
	c.checkPrefixAgreement()
	for r := ReplicaID(1); r < 3; r++ {
		if len(c.log[r]) != 1 || string(c.log[r][0]) != "survivor" {
			t.Fatalf("replica %d log = %q, want [survivor]", r, c.log[r])
		}
	}
}

func TestCompetingCampaignsStayConsistent(t *testing.T) {
	// Two replicas campaign concurrently with interleaved messages; at
	// most one value per instance may be chosen.
	c := newCluster(t, 3, 6)
	c.send(c.reps[1].campaign())
	c.send(c.reps[2].campaign())
	c.propose(1, "one")
	c.propose(2, "two")
	c.run(20000)
	c.checkPrefixAgreement()
	// Both values must eventually be decided (in some order).
	seen := make(map[string]bool)
	for _, v := range c.log[1] {
		seen[string(v)] = true
	}
	if !seen["one"] || !seen["two"] {
		t.Fatalf("log missing proposals: %q", c.log[1])
	}
}

func TestMessageLossRecovered(t *testing.T) {
	c := newCluster(t, 3, 7)
	c.dropRate = 0.10
	for i := 0; i < 5; i++ {
		c.propose(0, fmt.Sprintf("v%d", i))
	}
	c.run(50000)
	c.checkPrefixAgreement()
	// With drops, liveness depends on retries via elections; at least the
	// common prefix must agree and no replica may diverge. All replicas
	// that decided anything decided prefixes of the same log.
	if len(c.log[0]) == 0 && len(c.log[1]) == 0 && len(c.log[2]) == 0 {
		t.Skip("all proposals lost under drops; safety still verified")
	}
}

func TestReorderedDeliverySafe(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := newCluster(t, 5, 100+seed)
		c.reorder = true
		for i := 0; i < 8; i++ {
			c.propose(ReplicaID(i%5), fmt.Sprintf("v%d", i))
		}
		c.run(30000)
		c.checkPrefixAgreement()
	}
}

func TestBallotOrdering(t *testing.T) {
	tests := []struct {
		a, b Ballot
		less bool
	}{
		{Ballot{1, 0}, Ballot{2, 0}, true},
		{Ballot{2, 0}, Ballot{1, 0}, false},
		{Ballot{1, 0}, Ballot{1, 1}, true},
		{Ballot{1, 1}, Ballot{1, 1}, false},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.less {
			t.Errorf("%v.Less(%v) = %v, want %v", tt.a, tt.b, got, tt.less)
		}
	}
	if !(Ballot{}).IsZero() || (Ballot{1, 0}).IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestNewReplicaValidation(t *testing.T) {
	if _, err := NewReplica(Config{ID: 3, N: 3}); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := NewReplica(Config{ID: -1, N: 3}); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := NewReplica(Config{ID: 0, N: 0}); err == nil {
		t.Error("empty group accepted")
	}
}

func TestCrashedReplicaIsSilent(t *testing.T) {
	r := MustNewReplica(Config{ID: 0, N: 1})
	r.Crash()
	if out := r.Propose([]byte("x")); out != nil {
		t.Fatal("crashed replica proposed")
	}
	if out := r.Tick(); out != nil {
		t.Fatal("crashed replica ticked")
	}
	if out := r.OnMessage(Message{Kind: MsgPrepare, Ballot: Ballot{1, 0}}); out != nil {
		t.Fatal("crashed replica answered")
	}
}

func TestMsgKindString(t *testing.T) {
	for k := MsgPropose; k <= MsgDecide; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
	if MsgKind(99).String() != "MsgKind(99)" {
		t.Fatal("unknown kind name wrong")
	}
}
