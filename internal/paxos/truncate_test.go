package paxos

import (
	"bytes"
	"fmt"
	"testing"
)

// decideN drives n values through a 3-replica cluster and returns it
// with all replicas having delivered everything.
func decideN(t *testing.T, n int) *cluster {
	t.Helper()
	c := newCluster(t, 3, 1)
	for i := 0; i < n; i++ {
		c.propose(0, fmt.Sprintf("v%03d", i))
	}
	c.run(40 * n)
	for id, r := range c.reps {
		if got := int(r.Decided()); got != n {
			t.Fatalf("replica %d decided %d of %d", id, got, n)
		}
	}
	return c
}

func TestTruncateBeforeDropsOnlyDeliveredPrefix(t *testing.T) {
	c := decideN(t, 12)
	r := c.reps[1]
	r.TruncateBefore(7)
	if r.Base() != 7 {
		t.Fatalf("base %d, want 7", r.Base())
	}
	// Retained suffix is intact and indexed correctly.
	suffix := r.DecidedLog()
	if len(suffix) != 5 {
		t.Fatalf("retained %d entries, want 5", len(suffix))
	}
	for i, v := range suffix {
		if want := fmt.Sprintf("v%03d", 7+i); string(v) != want {
			t.Fatalf("suffix[%d] = %q, want %q", i, v, want)
		}
	}
	// Dropped entries are genuinely gone.
	for i := InstanceID(0); i < 7; i++ {
		if _, ok := r.decidedVals[i]; ok {
			t.Fatalf("instance %d survived truncation", i)
		}
		if _, ok := r.insts[i]; ok {
			t.Fatalf("instance %d acceptor state survived truncation", i)
		}
	}
	// Truncation beyond the delivered prefix clamps; truncation below the
	// floor is a no-op.
	r.TruncateBefore(100)
	if r.Base() != r.Decided() {
		t.Fatalf("over-truncation: base %d, want clamp at %d", r.Base(), r.Decided())
	}
	r.TruncateBefore(3)
	if r.Base() != r.Decided() {
		t.Fatal("truncation floor moved backwards")
	}
}

func TestSuffixFromClampsAtBase(t *testing.T) {
	c := decideN(t, 10)
	r := c.reps[0]
	r.TruncateBefore(6)
	if got := r.SuffixFrom(2); len(got) != 4 || string(got[0]) != "v006" {
		t.Fatalf("SuffixFrom below base: got %d entries starting %q, want 4 from v006", len(got), got[0])
	}
	if got := r.SuffixFrom(8); len(got) != 2 || string(got[0]) != "v008" {
		t.Fatalf("SuffixFrom(8): got %d entries", len(got))
	}
	if got := r.SuffixFrom(10); got != nil {
		t.Fatalf("SuffixFrom at end: got %d entries, want none", len(got))
	}
}

// TestTruncatedClusterKeepsDeciding is the safety check: after replicas
// truncate different prefixes, new proposals still decide consistently
// and late traffic about truncated instances cannot resurrect state.
func TestTruncatedClusterKeepsDeciding(t *testing.T) {
	c := decideN(t, 8)
	c.reps[0].TruncateBefore(8)
	c.reps[1].TruncateBefore(4)
	// Replica 2 keeps its full log.
	for i := 8; i < 16; i++ {
		c.propose(ReplicaID(i%3), fmt.Sprintf("v%03d", i))
	}
	c.run(800)
	for id, r := range c.reps {
		if got := int(r.Decided()); got != 16 {
			t.Fatalf("replica %d decided %d of 16 after truncation", id, got)
		}
		if r.Base() > 0 {
			for i := InstanceID(0); i < r.Base(); i++ {
				if _, ok := r.decidedVals[i]; ok {
					t.Fatalf("replica %d: truncated instance %d resurrected", id, i)
				}
			}
		}
	}
	c.checkPrefixAgreement()
}

// TestLateDecideBelowBaseIgnored feeds a stale Decide for a truncated
// instance directly; it must not recreate state below the floor.
func TestLateDecideBelowBaseIgnored(t *testing.T) {
	c := decideN(t, 6)
	r := c.reps[2]
	r.TruncateBefore(6)
	r.OnMessage(Message{Kind: MsgDecide, From: 0, To: 2, Instance: 2, Value: []byte("stale")})
	if _, ok := r.decidedVals[2]; ok {
		t.Fatal("late Decide resurrected a truncated instance")
	}
	if r.Decided() != 6 || r.Base() != 6 {
		t.Fatalf("late Decide moved cursors: decided %d base %d", r.Decided(), r.Base())
	}
}

// TestStaleAcceptBelowBaseNacked: a deposed leader retransmitting an
// Accept for a truncated instance must be Nacked like any stale ballot
// — acking would hand it a bogus quorum vote and flip this replica's
// leader pointer off the current leader. A current-ballot
// retransmission still gets its ack without resurrecting state.
func TestStaleAcceptBelowBaseNacked(t *testing.T) {
	c := decideN(t, 6)
	r := c.reps[2]
	r.TruncateBefore(6)
	leader := r.leader
	stale := Ballot{Counter: 0, Replica: 1}
	if !stale.Less(r.floor) {
		t.Fatalf("test premise broken: ballot %+v not below floor %+v", stale, r.floor)
	}
	out := r.OnMessage(Message{Kind: MsgAccept, From: 1, To: 2, Ballot: stale, Instance: 2, Value: []byte("stale")})
	if len(out) != 1 || out[0].Kind != MsgNack {
		t.Fatalf("stale below-base Accept answered %v, want a Nack", out)
	}
	if r.leader != leader {
		t.Fatalf("stale below-base Accept flipped leader pointer to %d", r.leader)
	}
	cur := r.floor
	out = r.OnMessage(Message{Kind: MsgAccept, From: cur.Replica, To: 2, Ballot: cur, Instance: 2, Value: []byte("retrans")})
	if len(out) != 1 || out[0].Kind != MsgAccepted {
		t.Fatalf("current-ballot below-base Accept answered %v, want an Accepted", out)
	}
	if _, ok := r.decidedVals[2]; ok {
		t.Fatal("below-base Accept resurrected a truncated instance")
	}
}

func TestInstallSnapshotFastForwards(t *testing.T) {
	c := decideN(t, 10)
	// A fresh replica joins logically at instance 0 and is handed a
	// snapshot covering instances < 7.
	r := MustNewReplica(Config{ID: 0, N: 3})
	r.InstallSnapshot(7)
	if r.Base() != 7 || r.Decided() != 7 {
		t.Fatalf("after install: base %d decided %d, want 7/7", r.Base(), r.Decided())
	}
	if d := r.TakeDecisions(); len(d) != 0 {
		t.Fatalf("install produced %d decisions, want none", len(d))
	}
	// Stream the suffix from a live peer; delivery resumes at 7.
	r.CatchUp(7, c.reps[0].SuffixFrom(7))
	decs := r.TakeDecisions()
	if len(decs) != 3 {
		t.Fatalf("suffix catch-up delivered %d, want 3", len(decs))
	}
	for i, d := range decs {
		want := fmt.Sprintf("v%03d", 7+i)
		if d.Instance != InstanceID(7+i) || !bytes.Equal(d.Value, []byte(want)) {
			t.Fatalf("decision %d = (%d, %q), want (%d, %q)", i, d.Instance, d.Value, 7+i, want)
		}
	}
	// Installing a snapshot older than the delivered prefix only
	// truncates; it never rewinds delivery.
	r.InstallSnapshot(5)
	if r.Decided() != 10 {
		t.Fatalf("old snapshot rewound delivery to %d", r.Decided())
	}
}

// TestInstallSnapshotDropsQueuedPrefix verifies decisions already
// queued for delivery but superseded by the installed snapshot are
// discarded, and learned-but-gapped decisions beyond the boundary
// surface once the snapshot covers the gap.
func TestInstallSnapshotDropsQueuedPrefix(t *testing.T) {
	r := MustNewReplica(Config{ID: 0, N: 3})
	// Learn a prefix (queued, not yet taken) plus a gapped decision at 9.
	r.CatchUp(0, [][]byte{[]byte("q0"), []byte("q1"), []byte("q2")})
	r.CatchUp(9, [][]byte{[]byte("q9")})
	// The snapshot covers everything below 8: the queued 0..2 are
	// superseded; 9 still waits on 8.
	r.InstallSnapshot(8)
	if decs := r.TakeDecisions(); len(decs) != 0 {
		t.Fatalf("superseded decisions leaked: %v", decs)
	}
	if r.Decided() != 8 {
		t.Fatalf("decided %d, want 8", r.Decided())
	}
	r.CatchUp(8, [][]byte{[]byte("q8")})
	decs := r.TakeDecisions()
	if len(decs) != 2 || decs[0].Instance != 8 || decs[1].Instance != 9 {
		t.Fatalf("after filling the gap: decisions %v", decs)
	}
}
