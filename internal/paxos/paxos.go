// Package paxos implements multi-instance Paxos with a stable leader —
// the consensus substrate for state machine replication within a group
// (paper §4.4: "processes within a group are kept consistent using state
// machine replication … Paxos requires a majority of correct processes
// within each group and can tolerate message losses").
//
// The implementation is a deterministic message-passing state machine:
// replicas exchange Messages and are driven by explicit Tick calls, so
// the same code runs on the discrete-event simulator (where tests inject
// crashes, drops and delays) and over TCP.
//
// Protocol shape:
//
//   - Replica 0 starts as the presumed leader. A leader runs Phase 1
//     (Prepare/Promise) once for its ballot over the whole log suffix,
//     then Phase 2 (Accept/Accepted) per instance.
//   - Followers forward proposals to the leader. If a follower sees no
//     leader activity for ElectionTimeout ticks, it promotes itself with
//     a higher ballot (ballots are (counter, replica) pairs, so they are
//     totally ordered and proposer-unique).
//   - Decided values are learned via Decide broadcasts and delivered in
//     instance order through TakeDecisions.
package paxos

import (
	"bytes"
	"fmt"
	"sort"
)

// ReplicaID identifies a replica within one group (0..n-1).
type ReplicaID int32

// InstanceID is a slot in the replicated log.
type InstanceID uint64

// Ballot is a totally ordered proposal number, unique per proposer.
type Ballot struct {
	Counter uint64
	Replica ReplicaID
}

// Less orders ballots lexicographically.
func (b Ballot) Less(o Ballot) bool {
	if b.Counter != o.Counter {
		return b.Counter < o.Counter
	}
	return b.Replica < o.Replica
}

// IsZero reports whether b is the zero ballot (never used by proposers).
func (b Ballot) IsZero() bool { return b.Counter == 0 && b.Replica == 0 }

// MsgKind discriminates Paxos messages.
type MsgKind uint8

const (
	// MsgPropose carries a client value to the leader.
	MsgPropose MsgKind = iota + 1
	// MsgPrepare is Phase 1a: a candidate asks for promises from instance
	// Instance onward.
	MsgPrepare
	// MsgPromise is Phase 1b: an acceptor promises and reports previously
	// accepted values.
	MsgPromise
	// MsgAccept is Phase 2a.
	MsgAccept
	// MsgAccepted is Phase 2b.
	MsgAccepted
	// MsgNack rejects a stale ballot and reveals the newer one.
	MsgNack
	// MsgDecide announces a chosen value.
	MsgDecide
	// MsgHeartbeat is the leader's periodic liveness signal; it suppresses
	// follower elections.
	MsgHeartbeat
)

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case MsgPropose:
		return "PROPOSE"
	case MsgPrepare:
		return "PREPARE"
	case MsgPromise:
		return "PROMISE"
	case MsgAccept:
		return "ACCEPT"
	case MsgAccepted:
		return "ACCEPTED"
	case MsgNack:
		return "NACK"
	case MsgDecide:
		return "DECIDE"
	case MsgHeartbeat:
		return "HEARTBEAT"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// accepted is one previously accepted (instance, ballot, value) triple
// reported in a Promise.
type accepted struct {
	Instance InstanceID
	Ballot   Ballot
	Value    []byte
}

// Message is one Paxos protocol message.
type Message struct {
	Kind     MsgKind
	From, To ReplicaID
	Ballot   Ballot
	Instance InstanceID
	Value    []byte
	// Accepted reports previously accepted values (Promise only).
	Accepted []accepted
}

// Decision is one chosen log entry.
type Decision struct {
	Instance InstanceID
	Value    []byte
}

// Config parameterizes a replica.
type Config struct {
	// ID is this replica's id.
	ID ReplicaID
	// N is the group size (replicas are 0..N-1).
	N int
	// ElectionTimeout is the number of ticks without leader activity
	// before a follower promotes itself (default 10).
	ElectionTimeout int
}

type instState struct {
	promised Ballot
	accepted Ballot
	value    []byte
	// proposer bookkeeping (leader only)
	acks     map[ReplicaID]bool
	decided  bool
	inFlight bool
}

// Replica is one Paxos participant: proposer, acceptor and learner.
// Not safe for concurrent use; runtimes serialize access.
type Replica struct {
	cfg Config

	// Acceptor/learner state per instance.
	insts map[InstanceID]*instState
	// decidedLog holds chosen values; nextDeliver is the in-order cursor.
	decidedVals map[InstanceID][]byte
	nextDeliver InstanceID
	out         []Decision

	// Leadership.
	ballot      Ballot // current ballot when leading/campaigning
	leader      ReplicaID
	leading     bool
	campaigning bool
	promises    map[ReplicaID][]accepted
	// nextInstance is the first unused slot known to this leader.
	nextInstance InstanceID
	// pending holds values waiting to be assigned to instances.
	pending [][]byte
	// quietTicks counts ticks since the last leader activity.
	quietTicks int
	crashed    bool
	// outstanding holds values this replica forwarded to a leader and has
	// not yet seen decided; they are re-sent periodically so proposals
	// survive leader crashes (at-least-once semantics — the replicated
	// application must tolerate duplicates, which all engines in this
	// repository do).
	outstanding [][]byte
	retryTicks  int
	// floor is the highest promise covering instances that have no
	// per-instance state yet (a Prepare promises a whole log suffix);
	// floorFrom is the first instance it covers.
	floor     Ballot
	floorFrom InstanceID
	// base is the truncation floor: instances below it were decided,
	// delivered and then dropped from memory because an application-level
	// snapshot covers them (TruncateBefore / InstallSnapshot). base never
	// exceeds nextDeliver, so truncation only ever discards the decided
	// contiguous prefix — consensus state for undecided instances is
	// never lost.
	base InstanceID
}

// NewReplica builds a replica; replica 0 boots as the presumed leader
// (it still runs Phase 1 before proposing).
func NewReplica(cfg Config) (*Replica, error) {
	if cfg.N < 1 || int(cfg.ID) >= cfg.N || cfg.ID < 0 {
		return nil, fmt.Errorf("paxos: invalid replica id %d of %d", cfg.ID, cfg.N)
	}
	if cfg.ElectionTimeout == 0 {
		cfg.ElectionTimeout = 10
	}
	r := &Replica{
		cfg:         cfg,
		insts:       make(map[InstanceID]*instState),
		decidedVals: make(map[InstanceID][]byte),
		leader:      0,
	}
	return r, nil
}

// MustNewReplica is NewReplica for known-good configurations.
func MustNewReplica(cfg Config) *Replica {
	r, err := NewReplica(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// ID returns this replica's id.
func (r *Replica) ID() ReplicaID { return r.cfg.ID }

// Leader returns the replica currently believed to lead.
func (r *Replica) Leader() ReplicaID { return r.leader }

// IsLeader reports whether this replica has an established leadership.
func (r *Replica) IsLeader() bool { return r.leading }

// Crash makes the replica drop all future inputs (failure injection).
func (r *Replica) Crash() { r.crashed = true }

// Crashed reports whether the replica was crashed.
func (r *Replica) Crashed() bool { return r.crashed }

// Recover brings a crashed replica back. The acceptor state (promises,
// accepted values, decided log) is retained across the crash — the
// crash-recovery model of Paxos assumes it lives on stable storage — so
// rejoining with it is safe. The replica resumes as a follower; missed
// decisions are learned through CatchUp (state transfer from a live
// peer) or by accepting new instances.
func (r *Replica) Recover() {
	if !r.crashed {
		return
	}
	r.crashed = false
	r.leading = false
	r.campaigning = false
	r.quietTicks = 0
}

// DecidedLog returns the values of the retained contiguous decided
// prefix (instances Base()..Decided()-1) in instance order. This is the
// stable log a recovering replica replays into a fresh engine — after
// restoring the snapshot that covers everything below Base() — and the
// payload of state transfer between replicas (internal/smr).
func (r *Replica) DecidedLog() [][]byte { return r.SuffixFrom(r.base) }

// SuffixFrom returns the decided values of instances start..Decided()-1
// in order. start below the truncation floor is clamped to it — those
// entries no longer exist; the caller must ship a snapshot instead
// (Base() tells it where the retained log begins).
func (r *Replica) SuffixFrom(start InstanceID) [][]byte {
	if start < r.base {
		start = r.base
	}
	if start >= r.nextDeliver {
		return nil
	}
	log := make([][]byte, 0, r.nextDeliver-start)
	for i := start; i < r.nextDeliver; i++ {
		log = append(log, r.decidedVals[i])
	}
	return log
}

// CatchUp installs decided values for instances start, start+1, …
// learned from a peer's SuffixFrom (the caller passes the suffix it is
// missing). Entries this replica already decided are skipped; new ones
// are learned and surface through TakeDecisions in instance order.
func (r *Replica) CatchUp(start InstanceID, vals [][]byte) {
	for i, v := range vals {
		r.learn(start+InstanceID(i), v)
	}
}

// Base returns the truncation floor: the first instance whose value is
// still retained. Everything below it is covered by an application
// snapshot.
func (r *Replica) Base() InstanceID { return r.base }

// TruncateBefore drops the decided values and acceptor state of all
// instances below i, because an application-level snapshot now covers
// them (§4.3's flush-GC discipline applied to the Paxos log). i is
// clamped to the delivered prefix: undecided or undelivered instances
// are never truncated, so the operation cannot lose consensus state —
// only re-derivable history.
func (r *Replica) TruncateBefore(i InstanceID) {
	if i > r.nextDeliver {
		i = r.nextDeliver
	}
	if i <= r.base {
		return
	}
	for j := r.base; j < i; j++ {
		delete(r.decidedVals, j)
		delete(r.insts, j)
	}
	r.base = i
}

// InstallSnapshot fast-forwards a lagging replica over instances below
// i: the caller has restored an application snapshot covering them, so
// their values are no longer needed and in-order delivery resumes at i.
// Decisions already queued for delivery below i are dropped (the
// snapshot supersedes them). No-op if the replica already delivered i.
func (r *Replica) InstallSnapshot(i InstanceID) {
	if i <= r.nextDeliver {
		r.TruncateBefore(i)
		return
	}
	for j := r.base; j < i; j++ {
		delete(r.decidedVals, j)
		delete(r.insts, j)
	}
	kept := r.out[:0]
	for _, d := range r.out {
		if d.Instance >= i {
			kept = append(kept, d)
		}
	}
	r.out = kept
	r.base = i
	r.nextDeliver = i
	if r.nextInstance < i {
		r.nextInstance = i
	}
	// Deliver any decisions that were waiting on the gap the snapshot
	// just covered.
	for {
		val, ok := r.decidedVals[r.nextDeliver]
		if !ok {
			break
		}
		r.out = append(r.out, Decision{Instance: r.nextDeliver, Value: val})
		r.nextDeliver++
	}
}

func (r *Replica) majority() int { return r.cfg.N/2 + 1 }

func (r *Replica) inst(i InstanceID) *instState {
	st, ok := r.insts[i]
	if !ok {
		st = &instState{}
		if i >= r.floorFrom {
			// New instances inherit the promise made for the whole log
			// suffix during Phase 1.
			st.promised = r.floor
		}
		r.insts[i] = st
	}
	return st
}

// TakeDecisions returns chosen values in instance order (contiguous
// prefix) accumulated since the previous call.
func (r *Replica) TakeDecisions() []Decision {
	d := r.out
	r.out = nil
	return d
}

// Propose submits a value for replication. On a follower the value is
// forwarded to the believed leader; on the leader it is assigned to the
// next free instance once Phase 1 is complete.
func (r *Replica) Propose(value []byte) []Message {
	if r.crashed {
		return nil
	}
	if !r.leading {
		if r.leader == r.cfg.ID {
			// Believed leader but Phase 1 incomplete: queue and (re)start
			// the campaign.
			r.pending = append(r.pending, value)
			if !r.campaigning {
				return r.campaign()
			}
			return nil
		}
		r.outstanding = append(r.outstanding, value)
		return []Message{{Kind: MsgPropose, From: r.cfg.ID, To: r.leader, Value: value}}
	}
	r.pending = append(r.pending, value)
	return r.pump()
}

// Tick advances failure-detection time. Followers that observe no leader
// traffic for ElectionTimeout ticks start a campaign.
func (r *Replica) Tick() []Message {
	if r.crashed {
		return nil
	}
	var outs []Message
	if len(r.outstanding) > 0 {
		r.retryTicks++
		if r.retryTicks >= 2*r.cfg.ElectionTimeout {
			r.retryTicks = 0
			outs = append(outs, r.resendOutstanding()...)
		}
	}
	if r.leading {
		// Heartbeat to suppress follower elections.
		r.quietTicks++
		if r.quietTicks*3 >= r.cfg.ElectionTimeout {
			r.quietTicks = 0
			for p := 0; p < r.cfg.N; p++ {
				if ReplicaID(p) == r.cfg.ID {
					continue
				}
				outs = append(outs, Message{
					Kind: MsgHeartbeat, From: r.cfg.ID, To: ReplicaID(p), Ballot: r.ballot,
				})
			}
		}
		return outs
	}
	r.quietTicks++
	if r.quietTicks < r.cfg.ElectionTimeout {
		return outs
	}
	r.quietTicks = 0
	// Deterministic succession: the id right after the suspected leader
	// campaigns first; replicas further away wait progressively longer so
	// campaigns do not collide.
	gap := (int(r.cfg.ID) - int(r.leader) + r.cfg.N) % r.cfg.N
	if gap > 1 {
		r.quietTicks = -(gap - 1) * r.cfg.ElectionTimeout
		return outs
	}
	return append(outs, r.campaign()...)
}

// resendOutstanding retries forwarded-but-undecided values: a leader
// pumps them itself, a follower re-forwards to the current leader.
func (r *Replica) resendOutstanding() []Message {
	if r.leading {
		r.pending = append(r.pending, r.outstanding...)
		r.outstanding = nil
		return r.pump()
	}
	if r.leader == r.cfg.ID {
		return nil // campaign in progress; values resent on promotion
	}
	outs := make([]Message, 0, len(r.outstanding))
	for _, v := range r.outstanding {
		outs = append(outs, Message{Kind: MsgPropose, From: r.cfg.ID, To: r.leader, Value: v})
	}
	return outs
}

func (r *Replica) campaign() []Message {
	r.campaigning = true
	r.leading = false
	r.ballot = Ballot{Counter: r.ballot.Counter + 1, Replica: r.cfg.ID}
	r.promises = make(map[ReplicaID][]accepted)
	var outs []Message
	for p := 0; p < r.cfg.N; p++ {
		m := Message{
			Kind:     MsgPrepare,
			From:     r.cfg.ID,
			To:       ReplicaID(p),
			Ballot:   r.ballot,
			Instance: r.nextDeliver, // promises cover everything not yet delivered
		}
		if ReplicaID(p) == r.cfg.ID {
			outs = append(outs, r.onPrepare(m)...)
		} else {
			outs = append(outs, m)
		}
	}
	return outs
}

// OnMessage consumes one Paxos message and returns the messages to send.
func (r *Replica) OnMessage(m Message) []Message {
	if r.crashed {
		return nil
	}
	switch m.Kind {
	case MsgPropose:
		return r.Propose(m.Value)
	case MsgPrepare:
		return r.onPrepare(m)
	case MsgPromise:
		return r.onPromise(m)
	case MsgAccept:
		return r.onAccept(m)
	case MsgAccepted:
		return r.onAccepted(m)
	case MsgNack:
		return r.onNack(m)
	case MsgDecide:
		r.learn(m.Instance, m.Value)
		if m.From != r.cfg.ID {
			r.observeLeader(m.From)
		}
		return nil
	case MsgHeartbeat:
		if r.ballot.Less(m.Ballot) || (!r.leading && !r.campaigning) {
			r.ballot.Counter = m.Ballot.Counter
			r.observeLeader(m.From)
		}
		return nil
	default:
		return nil
	}
}

func (r *Replica) observeLeader(from ReplicaID) {
	r.quietTicks = 0
	r.leader = from
	if from != r.cfg.ID {
		r.leading = false
		r.campaigning = false
		// Values queued while this replica believed itself leader become
		// plain forwarded proposals, re-sent by the retry tick.
		r.outstanding = append(r.outstanding, r.pending...)
		r.pending = nil
	}
}

func (r *Replica) onPrepare(m Message) []Message {
	// A prepare covers all instances >= m.Instance.
	maxPromised := r.maxPromised()
	if m.Ballot.Less(maxPromised) {
		return []Message{{Kind: MsgNack, From: r.cfg.ID, To: m.From, Ballot: maxPromised}}
	}
	r.observeLeader(m.From)
	var acc []accepted
	for i, st := range r.insts {
		if i >= m.Instance {
			if st.promised.Less(m.Ballot) {
				st.promised = m.Ballot
			}
			if !st.accepted.IsZero() && !st.decided {
				acc = append(acc, accepted{Instance: i, Ballot: st.accepted, Value: st.value})
			}
		}
	}
	// Remember the floor promise for instances not yet materialized.
	r.inst(m.Instance) // ensure at least the floor instance exists
	r.floorPromise(m.Ballot, m.Instance)
	sort.Slice(acc, func(i, j int) bool { return acc[i].Instance < acc[j].Instance })
	reply := Message{
		Kind: MsgPromise, From: r.cfg.ID, To: m.From,
		Ballot: m.Ballot, Instance: m.Instance, Accepted: acc,
	}
	if m.From == r.cfg.ID {
		return r.onPromise(reply)
	}
	return []Message{reply}
}

func (r *Replica) floorPromise(b Ballot, from InstanceID) {
	// Materialized lazily: any instance created later inherits the floor.
	if r.floor.Less(b) {
		r.floor = b
		r.floorFrom = from
	}
}

func (r *Replica) maxPromised() Ballot {
	max := r.floor
	for _, st := range r.insts {
		if max.Less(st.promised) {
			max = st.promised
		}
	}
	return max
}

func (r *Replica) onPromise(m Message) []Message {
	if !r.campaigning || m.Ballot != r.ballot {
		return nil
	}
	r.promises[m.From] = m.Accepted
	if len(r.promises) < r.majority() {
		return nil
	}
	// Phase 1 complete: adopt the highest-ballot accepted value per
	// instance, then re-propose them, then pump pending values.
	r.campaigning = false
	r.leading = true
	r.leader = r.cfg.ID
	adopt := make(map[InstanceID]accepted)
	for _, accs := range r.promises {
		for _, a := range accs {
			cur, ok := adopt[a.Instance]
			if !ok || cur.Ballot.Less(a.Ballot) {
				adopt[a.Instance] = a
			}
		}
	}
	insts := make([]InstanceID, 0, len(adopt))
	for i := range adopt {
		insts = append(insts, i)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	var outs []Message
	for _, i := range insts {
		if i >= r.nextInstance {
			r.nextInstance = i + 1
		}
		outs = append(outs, r.propose(i, adopt[i].Value)...)
	}
	if r.nextInstance < r.nextDeliver {
		r.nextInstance = r.nextDeliver
	}
	// Values this replica forwarded to the previous leader are now its
	// own responsibility.
	r.pending = append(r.pending, r.outstanding...)
	r.outstanding = nil
	outs = append(outs, r.pump()...)
	return outs
}

// pump assigns pending values to fresh instances.
func (r *Replica) pump() []Message {
	var outs []Message
	for len(r.pending) > 0 {
		v := r.pending[0]
		r.pending = r.pending[1:]
		for r.insts[r.nextInstance] != nil && (r.insts[r.nextInstance].decided || r.insts[r.nextInstance].inFlight) {
			r.nextInstance++
		}
		outs = append(outs, r.propose(r.nextInstance, v)...)
		r.nextInstance++
	}
	return outs
}

func (r *Replica) propose(i InstanceID, v []byte) []Message {
	st := r.inst(i)
	if st.decided {
		return nil
	}
	st.inFlight = true
	st.acks = make(map[ReplicaID]bool)
	var outs []Message
	for p := 0; p < r.cfg.N; p++ {
		m := Message{
			Kind: MsgAccept, From: r.cfg.ID, To: ReplicaID(p),
			Ballot: r.ballot, Instance: i, Value: v,
		}
		if ReplicaID(p) == r.cfg.ID {
			outs = append(outs, r.onAccept(m)...)
		} else {
			outs = append(outs, m)
		}
	}
	return outs
}

func (r *Replica) onAccept(m Message) []Message {
	if m.Instance < r.base {
		// Decided and truncated: the chosen value is fixed and learn()
		// ignores re-decisions, so a current-ballot retransmission can be
		// acked (as the pre-truncation decided instance would have)
		// without resurrecting state below the floor. Ballots below the
		// promise floor are Nacked like the normal path: acking would
		// hand a deposed leader a bogus quorum vote and flip this
		// replica's leader pointer off the current leader.
		if m.Ballot.Less(r.floor) {
			return []Message{{Kind: MsgNack, From: r.cfg.ID, To: m.From, Ballot: r.floor}}
		}
		r.observeLeader(m.From)
		reply := Message{
			Kind: MsgAccepted, From: r.cfg.ID, To: m.From,
			Ballot: m.Ballot, Instance: m.Instance,
		}
		if m.From == r.cfg.ID {
			return r.onAccepted(reply)
		}
		return []Message{reply}
	}
	st := r.inst(m.Instance)
	promised := st.promised
	if promised.Less(r.floor) {
		promised = r.floor
	}
	if m.Ballot.Less(promised) {
		return []Message{{Kind: MsgNack, From: r.cfg.ID, To: m.From, Ballot: promised}}
	}
	r.observeLeader(m.From)
	st.promised = m.Ballot
	st.accepted = m.Ballot
	st.value = m.Value
	reply := Message{
		Kind: MsgAccepted, From: r.cfg.ID, To: m.From,
		Ballot: m.Ballot, Instance: m.Instance,
	}
	if m.From == r.cfg.ID {
		return r.onAccepted(reply)
	}
	return []Message{reply}
}

func (r *Replica) onAccepted(m Message) []Message {
	if !r.leading || m.Ballot != r.ballot || m.Instance < r.base {
		return nil
	}
	st := r.inst(m.Instance)
	if st.decided || st.acks == nil {
		return nil
	}
	st.acks[m.From] = true
	if len(st.acks) < r.majority() {
		return nil
	}
	// Chosen: learn locally and broadcast the decision.
	v := st.value
	r.learn(m.Instance, v)
	var outs []Message
	for p := 0; p < r.cfg.N; p++ {
		if ReplicaID(p) == r.cfg.ID {
			continue
		}
		outs = append(outs, Message{
			Kind: MsgDecide, From: r.cfg.ID, To: ReplicaID(p),
			Instance: m.Instance, Value: v,
		})
	}
	return outs
}

func (r *Replica) onNack(m Message) []Message {
	// A higher ballot exists: step down; a future tick may campaign with
	// a higher counter.
	if r.ballot.Less(m.Ballot) {
		r.ballot.Counter = m.Ballot.Counter
		r.leading = false
		r.campaigning = false
		if m.Ballot.Replica != r.cfg.ID {
			r.observeLeader(m.Ballot.Replica)
		}
	}
	return nil
}

func (r *Replica) learn(i InstanceID, v []byte) {
	if i < r.base {
		// A late Decide for a truncated instance: already covered by the
		// snapshot that justified the truncation; resurrecting its state
		// would leak below the floor.
		return
	}
	st := r.inst(i)
	if st.decided {
		return
	}
	st.decided = true
	st.inFlight = false
	st.value = v
	r.decidedVals[i] = v
	for idx, ov := range r.outstanding {
		if bytes.Equal(ov, v) {
			r.outstanding = append(r.outstanding[:idx], r.outstanding[idx+1:]...)
			break
		}
	}
	for {
		val, ok := r.decidedVals[r.nextDeliver]
		if !ok {
			break
		}
		r.out = append(r.out, Decision{Instance: r.nextDeliver, Value: val})
		r.nextDeliver++
	}
}

// Decided reports how many log entries were delivered in order.
func (r *Replica) Decided() InstanceID { return r.nextDeliver }
