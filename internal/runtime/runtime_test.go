package runtime_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/overlay"
	"flexcast/internal/runtime"
	"flexcast/internal/trace"
	"flexcast/internal/transport"
)

// deployment wires a FlexCast group set over the in-memory transport
// with one runtime.Node per group, plus a client mailbox collecting
// replies.
type deployment struct {
	ov    *overlay.CDAG
	net   *transport.InMemNet
	nodes []*runtime.Node

	mu      sync.Mutex
	rec     *trace.Recorder
	recErr  error
	replies map[amcast.MsgID]map[amcast.GroupID]bool
	waiters map[amcast.MsgID]chan struct{}
}

func newDeployment(t *testing.T, groups []amcast.GroupID, maxBatch int) *deployment {
	t.Helper()
	d := &deployment{
		ov:      overlay.MustCDAG(groups),
		net:     transport.NewInMemNet(),
		rec:     trace.NewRecorder(),
		replies: make(map[amcast.MsgID]map[amcast.GroupID]bool),
		waiters: make(map[amcast.MsgID]chan struct{}),
	}
	for _, g := range groups {
		eng := core.MustNew(core.Config{Group: g, Overlay: d.ov})
		id := amcast.GroupNode(g)
		send := func(to amcast.NodeID, envs []amcast.Envelope) { d.net.SendBatch(id, to, envs) }
		n := runtime.NewNode(eng, send, runtime.Config{
			MaxBatch: maxBatch,
			OnDeliver: func(del amcast.Delivery) {
				d.mu.Lock()
				defer d.mu.Unlock()
				if err := d.rec.OnDeliver(del); err != nil && d.recErr == nil {
					d.recErr = err
				}
			},
		})
		d.nodes = append(d.nodes, n)
		if err := d.net.AddBatchHandler(n.ID(), n.Submit); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.net.AddBatchHandler(amcast.ClientNode(0), d.onClientBatch); err != nil {
		t.Fatal(err)
	}
	return d
}

func (d *deployment) onClientBatch(envs []amcast.Envelope) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, env := range envs {
		if env.Kind != amcast.KindReply {
			continue
		}
		got, ok := d.replies[env.Msg.ID]
		if !ok {
			continue
		}
		got[env.From.Group()] = true
		if len(got) == len(env.Msg.Dst) {
			if w := d.waiters[env.Msg.ID]; w != nil {
				close(w)
				delete(d.waiters, env.Msg.ID)
			}
		}
	}
}

// multicast issues one message and returns a channel closed when every
// destination has replied.
func (d *deployment) multicast(m amcast.Message) <-chan struct{} {
	done := make(chan struct{})
	d.mu.Lock()
	d.rec.OnMulticast(m)
	d.replies[m.ID] = make(map[amcast.GroupID]bool, len(m.Dst))
	d.waiters[m.ID] = done
	d.mu.Unlock()
	lca := d.ov.Lca(m.Dst)
	d.net.Send(m.Sender, amcast.GroupNode(lca), amcast.Envelope{
		Kind: amcast.KindRequest, From: m.Sender, Msg: m,
	})
	return done
}

func (d *deployment) close() {
	d.net.Close()
	for _, n := range d.nodes {
		n.Close()
	}
}

// TestNodeEndToEnd drives concurrent multicasts through the batched
// runtime at several batch settings and checks the full multicast
// specification on the recorded run.
func TestNodeEndToEnd(t *testing.T) {
	for _, maxBatch := range []int{1, 4, 64} {
		maxBatch := maxBatch
		t.Run(fmt.Sprintf("batch=%d", maxBatch), func(t *testing.T) {
			groups := []amcast.GroupID{1, 2, 3, 4}
			d := newDeployment(t, groups, maxBatch)
			defer d.close()

			const clients, msgs = 4, 40
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < msgs; i++ {
						dst := []amcast.GroupID{groups[i%len(groups)], groups[(i+c)%len(groups)]}
						m := amcast.Message{
							ID:      amcast.NewMsgID(0, uint64(c*msgs+i+1)),
							Sender:  amcast.ClientNode(0),
							Dst:     amcast.NormalizeDst(dst),
							Payload: []byte("e2e"),
						}
						select {
						case <-d.multicast(m):
						case <-time.After(10 * time.Second):
							t.Errorf("client %d message %d timed out", c, i)
							return
						}
					}
				}(c)
			}
			wg.Wait()

			d.mu.Lock()
			defer d.mu.Unlock()
			if d.recErr != nil {
				t.Fatal(d.recErr)
			}
			if err := d.rec.CheckAll(true); err != nil {
				t.Fatal(err)
			}
			if d.rec.Deliveries() == 0 {
				t.Fatal("nothing delivered")
			}
			var stats runtime.BatcherStats
			for _, n := range d.nodes {
				s := n.Stats()
				stats.Batches += s.Batches
				stats.Envelopes += s.Envelopes
			}
			if stats.Envelopes == 0 {
				t.Fatal("no envelopes sent through the batcher")
			}
			if maxBatch == 1 && stats.Batches != stats.Envelopes {
				t.Fatalf("batch=1 must send per envelope: %d batches, %d envelopes",
					stats.Batches, stats.Envelopes)
			}
		})
	}
}

// TestBatcherCapFlush checks that a destination's batch is sent the
// moment it reaches the cap, envelopes in Add order.
func TestBatcherCapFlush(t *testing.T) {
	var mu sync.Mutex
	var sent [][]amcast.Envelope
	b := runtime.NewBatcher(func(to amcast.NodeID, envs []amcast.Envelope) {
		mu.Lock()
		sent = append(sent, envs)
		mu.Unlock()
	}, 3)

	to := amcast.GroupNode(2)
	for seq := uint64(1); seq <= 7; seq++ {
		b.Add(to, amcast.Envelope{Kind: amcast.KindRequest,
			Msg: amcast.Message{ID: amcast.NewMsgID(0, seq), Dst: []amcast.GroupID{2}}})
	}
	mu.Lock()
	if len(sent) != 2 || len(sent[0]) != 3 || len(sent[1]) != 3 {
		t.Fatalf("cap flushes wrong: %d sends", len(sent))
	}
	mu.Unlock()
	b.FlushAll()
	mu.Lock()
	defer mu.Unlock()
	if len(sent) != 3 || len(sent[2]) != 1 {
		t.Fatalf("FlushAll did not send the remainder: %d sends", len(sent))
	}
	seq := uint64(1)
	for _, batch := range sent {
		for _, env := range batch {
			if env.Msg.ID.Seq() != seq {
				t.Fatalf("order violated: got seq %d, want %d", env.Msg.ID.Seq(), seq)
			}
			seq++
		}
	}
	s := b.Stats()
	if s.Batches != 3 || s.Envelopes != 7 || s.MaxBatch != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestBatcherControlPriority checks that FlushAll sends batches
// carrying control envelopes (ACK/NOTIF/TS/REPLY) before payload-only
// batches, across destinations, while never reordering within a
// destination (per-link FIFO).
func TestBatcherControlPriority(t *testing.T) {
	var sent []struct {
		to   amcast.NodeID
		envs []amcast.Envelope
	}
	b := runtime.NewBatcher(func(to amcast.NodeID, envs []amcast.Envelope) {
		sent = append(sent, struct {
			to   amcast.NodeID
			envs []amcast.Envelope
		}{to, append([]amcast.Envelope(nil), envs...)})
	}, 16)

	msg := amcast.Message{ID: amcast.NewMsgID(0, 1), Dst: []amcast.GroupID{2, 3}}
	// Payload-only batches to groups 1 and 2 queued first, then a mixed
	// batch (payload + ack) to group 3 and a pure ack to group 4.
	b.Add(amcast.GroupNode(1), amcast.Envelope{Kind: amcast.KindMsg, Msg: msg})
	b.Add(amcast.GroupNode(2), amcast.Envelope{Kind: amcast.KindMsg, Msg: msg})
	b.Add(amcast.GroupNode(3), amcast.Envelope{Kind: amcast.KindMsg, Msg: msg})
	b.Add(amcast.GroupNode(3), amcast.Envelope{Kind: amcast.KindAck, Msg: msg.Header()})
	b.Add(amcast.GroupNode(4), amcast.Envelope{Kind: amcast.KindAck, Msg: msg.Header()})
	b.FlushAll()

	if len(sent) != 4 {
		t.Fatalf("sends = %d, want 4", len(sent))
	}
	// Control-bearing destinations (3, then 4, in first-Add order) lead;
	// payload-only destinations (1, then 2) follow.
	wantOrder := []amcast.NodeID{amcast.GroupNode(3), amcast.GroupNode(4), amcast.GroupNode(1), amcast.GroupNode(2)}
	for i, want := range wantOrder {
		if sent[i].to != want {
			t.Fatalf("send %d went to %s, want %s", i, sent[i].to, want)
		}
	}
	// Group 3's batch keeps its internal Add order: MSG before ACK.
	if sent[0].envs[0].Kind != amcast.KindMsg || sent[0].envs[1].Kind != amcast.KindAck {
		t.Fatalf("within-destination order violated: %v %v", sent[0].envs[0].Kind, sent[0].envs[1].Kind)
	}
	if s := b.Stats(); s.ControlBatches != 2 {
		t.Fatalf("ControlBatches = %d, want 2", s.ControlBatches)
	}
	// A later flush with fresh payload-only traffic does not inherit
	// stale control flags.
	b.Add(amcast.GroupNode(3), amcast.Envelope{Kind: amcast.KindMsg, Msg: msg})
	b.FlushAll()
	if s := b.Stats(); s.ControlBatches != 2 {
		t.Fatalf("stale control flag: ControlBatches = %d, want 2", s.ControlBatches)
	}
}

// TestBatcherUnbatchedPassThrough checks the -batch=1 baseline: every
// Add is its own send.
func TestBatcherUnbatchedPassThrough(t *testing.T) {
	n := 0
	b := runtime.NewBatcher(func(to amcast.NodeID, envs []amcast.Envelope) {
		if len(envs) != 1 {
			t.Fatalf("unbatched send carried %d envelopes", len(envs))
		}
		n++
	}, 1)
	to := amcast.GroupNode(1)
	for i := 0; i < 5; i++ {
		b.Add(to, amcast.Envelope{Kind: amcast.KindRequest})
	}
	b.FlushAll() // no-op
	if n != 5 {
		t.Fatalf("sends = %d, want 5", n)
	}
}

// TestFlushTimerBoundsLatency checks that a partially filled batch left
// behind by a busy queue is sent by the periodic flush timer.
func TestFlushTimerBoundsLatency(t *testing.T) {
	groups := []amcast.GroupID{1}
	ov := overlay.MustCDAG(groups)
	eng := core.MustNew(core.Config{Group: 1, Overlay: ov})

	sent := make(chan []amcast.Envelope, 16)
	n := runtime.NewNode(eng, func(to amcast.NodeID, envs []amcast.Envelope) {
		sent <- envs
	}, runtime.Config{MaxBatch: 1024, FlushInterval: time.Millisecond})
	defer n.Close()

	// A single-destination request delivers immediately and queues a
	// client reply; with a huge cap only a flush can send it.
	n.Submit([]amcast.Envelope{{
		Kind: amcast.KindRequest,
		From: amcast.ClientNode(0),
		Msg: amcast.Message{ID: amcast.NewMsgID(0, 1), Sender: amcast.ClientNode(0),
			Dst: []amcast.GroupID{1}},
	}})
	select {
	case envs := <-sent:
		if len(envs) != 1 || envs[0].Kind != amcast.KindReply {
			t.Fatalf("unexpected flush contents: %+v", envs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("flush timer never fired")
	}
}
