package runtime

import (
	"sync"
	"testing"

	"flexcast/amcast"
)

func env(kind amcast.Kind, from amcast.NodeID, id uint64) amcast.Envelope {
	return amcast.Envelope{Kind: kind, From: from, Msg: amcast.Message{ID: amcast.MsgID(id)}}
}

// takeNode builds a Node shell with a queue but no worker, so take can
// be driven deterministically.
func takeNode(maxBatch int, queue ...amcast.Envelope) *Node {
	n := &Node{cfg: Config{MaxBatch: maxBatch, QueueDepth: 1024}}
	n.cfg.fill()
	n.cfg.MaxBatch = maxBatch
	n.maxBatch = maxBatch
	n.qcond = sync.NewCond(&n.qmu)
	n.queue = append(n.queue, queue...)
	return n
}

// TestTakePriorityDrain pins the selection down exactly: under backlog,
// the queue head always makes the chunk (fairness), control envelopes
// are promoted past payloads of other senders, but never past an
// earlier *unselected* envelope of their own sender.
func TestTakePriorityDrain(t *testing.T) {
	a, b, c := amcast.GroupNode(1), amcast.GroupNode(2), amcast.GroupNode(3)
	n := takeNode(3,
		env(amcast.KindMsg, a, 1), // P1(a) — head: always selected
		env(amcast.KindAck, a, 2), // C1(a) — P1 selected, so promotable
		env(amcast.KindMsg, b, 3), // P2(b) — blocks b
		env(amcast.KindAck, c, 4), // C2(c) — promoted
		env(amcast.KindAck, a, 5), // C3(a) — cap reached before it
		env(amcast.KindMsg, c, 6), // P3(c)
		env(amcast.KindAck, b, 7), // C4(b) — blocked by P2
	)
	got := n.take(nil)
	want := []uint64{1, 2, 4} // head first, then promoted controls in order
	if len(got) != len(want) {
		t.Fatalf("take returned %d envelopes, want %d", len(got), len(want))
	}
	for i, w := range want {
		if uint64(got[i].Msg.ID) != w {
			t.Fatalf("take[%d] = msg %d, want %d (chunk %v)", i, got[i].Msg.ID, w, got)
		}
	}
	rest := []uint64{3, 5, 6, 7}
	if len(n.queue) != len(rest) {
		t.Fatalf("queue keeps %d envelopes, want %d", len(n.queue), len(rest))
	}
	for i, w := range rest {
		if uint64(n.queue[i].Msg.ID) != w {
			t.Fatalf("queue[%d] = msg %d, want %d", i, n.queue[i].Msg.ID, w)
		}
	}

	// Drain the remainder: nothing is lost, per-sender order holds.
	var all []amcast.Envelope
	all = append(all, got...)
	for len(n.queue) > 0 {
		all = append(all, n.take(nil)...)
	}
	checkSenderFIFO(t, all, map[amcast.NodeID][]uint64{
		a: {1, 2, 5}, b: {3, 7}, c: {4, 6},
	})
}

// TestTakeHeadNeverStarves pins the fairness bound: even when fresh
// control envelopes (from senders with no earlier queued traffic) could
// fill every chunk, the payload at the queue head is consumed — an
// envelope at position p is processed within p takes, whatever arrives
// behind it.
func TestTakeHeadNeverStarves(t *testing.T) {
	payload := env(amcast.KindMsg, amcast.GroupNode(99), 1)
	queue := []amcast.Envelope{payload}
	for i := 0; i < 20; i++ {
		queue = append(queue, env(amcast.KindAck, amcast.GroupNode(amcast.GroupID(1+i%5)), uint64(100+i)))
	}
	n := takeNode(4, queue...)
	got := n.take(nil)
	if uint64(got[0].Msg.ID) != 1 {
		t.Fatalf("payload head not selected under control flood: chunk %v", got)
	}
}

// TestTakePlainWhenUnderBatch verifies the fast path: a queue that fits
// one chunk is popped in arrival order, no permutation.
func TestTakePlainWhenUnderBatch(t *testing.T) {
	a, b := amcast.GroupNode(1), amcast.GroupNode(2)
	n := takeNode(8,
		env(amcast.KindMsg, a, 1),
		env(amcast.KindAck, b, 2),
		env(amcast.KindMsg, b, 3),
	)
	got := n.take(nil)
	for i, w := range []uint64{1, 2, 3} {
		if uint64(got[i].Msg.ID) != w {
			t.Fatalf("take[%d] = msg %d, want %d", i, got[i].Msg.ID, w)
		}
	}
}

// TestTakePriorityRandomFIFO drives many random mixed backlogs through
// repeated takes and asserts completeness plus per-sender FIFO — the
// safety contract of the drain, whatever the interleaving.
func TestTakePriorityRandomFIFO(t *testing.T) {
	senders := []amcast.NodeID{amcast.GroupNode(1), amcast.GroupNode(2), amcast.GroupNode(3), amcast.ClientNode(0)}
	kinds := []amcast.Kind{amcast.KindMsg, amcast.KindAck, amcast.KindNotif, amcast.KindTS, amcast.KindRequest}
	rng := uint64(12345)
	next := func(n uint64) uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng % n }
	for round := 0; round < 50; round++ {
		var queue []amcast.Envelope
		want := make(map[amcast.NodeID][]uint64)
		total := 20 + int(next(60))
		for i := 0; i < total; i++ {
			from := senders[next(uint64(len(senders)))]
			k := kinds[next(uint64(len(kinds)))]
			id := uint64(round*1000 + i + 1)
			queue = append(queue, env(k, from, id))
			want[from] = append(want[from], id)
		}
		n := takeNode(1+int(next(7)), queue...)
		var all []amcast.Envelope
		for len(n.queue) > 0 {
			all = append(all, n.take(nil)...)
		}
		if len(all) != total {
			t.Fatalf("round %d: drained %d envelopes, want %d", round, len(all), total)
		}
		checkSenderFIFO(t, all, want)
	}
}

func checkSenderFIFO(t *testing.T, got []amcast.Envelope, want map[amcast.NodeID][]uint64) {
	t.Helper()
	seen := make(map[amcast.NodeID][]uint64)
	for _, e := range got {
		seen[e.From] = append(seen[e.From], uint64(e.Msg.ID))
	}
	for from, ids := range want {
		g := seen[from]
		if len(g) != len(ids) {
			t.Fatalf("sender %s: processed %d envelopes, want %d", from, len(g), len(ids))
		}
		for i := range ids {
			if g[i] != ids[i] {
				t.Fatalf("sender %s: FIFO broken at %d: processed %v, queued %v", from, i, g, ids)
			}
		}
	}
}
