// Latency-targeted adaptive batching (DESIGN.md §1h). The static
// -batch/-flush-interval pair picks one point on the latency/throughput
// curve at configuration time; the controller moves along that curve at
// runtime instead. Each node tracks an effective (batch, interval)
// operating point between a floor (per-envelope, prompt flushes) and
// the configured ceiling (the static values), steered by the inbound
// queue depth the telemetry layer already samples: deep queues mean the
// node is throughput-bound and amortization pays, a shallow queue means
// every microsecond of parked batch is pure added latency.
//
// The controller is a pure state machine — Tick(queueDepth) in,
// (batch, interval) out — with no clock and no goroutine of its own, so
// the unit tests drive it with synthetic depth series and assert
// convergence and stability exactly. The node's flush timer provides
// the cadence in production: every timer fire is one tick, and the
// interval the controller returns is the time until the next tick.
//
// Protocol safety is free: the operating point only changes chunk
// boundaries and flush timing, never envelope contents or per-link
// order, so a controller trajectory is indistinguishable from one more
// arrival interleaving — exactly what the chunked-equivalence tests
// (internal/prototest) randomize over.
package runtime

import "time"

// AdaptiveConfig bounds the batching controller. The zero value of any
// field takes its default; the ceiling fields default to the node's
// static MaxBatch/FlushInterval, making the static knobs the upper
// bound of the adaptive range rather than the operating point.
type AdaptiveConfig struct {
	// MinBatch is the effective-batch floor (default 1: per-envelope).
	MinBatch int
	// MaxBatch is the ceiling (default: the node Config's MaxBatch).
	MaxBatch int
	// MinInterval is the flush-interval floor, used when the node is
	// latency-bound (default 50µs).
	MinInterval time.Duration
	// MaxInterval is the ceiling (default: the node Config's
	// FlushInterval).
	MaxInterval time.Duration
	// LowWater / HighWater bound the hysteresis band in units of queue
	// occupancy relative to the current batch (depth ÷ batch): below
	// LowWater the controller halves the batch, above HighWater it
	// doubles it, in between it holds. HighWater must be at least
	// 2×LowWater or a single halving could overshoot past the opposite
	// threshold and oscillate; fill clamps it. Defaults 0.5 / 2.0.
	LowWater  float64
	HighWater float64
}

func (c *AdaptiveConfig) fill(maxBatch int, maxInterval time.Duration) {
	if c.MinBatch <= 0 {
		c.MinBatch = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = maxBatch
	}
	if c.MaxBatch < c.MinBatch {
		c.MaxBatch = c.MinBatch
	}
	if c.MinInterval <= 0 {
		c.MinInterval = 50 * time.Microsecond
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = maxInterval
	}
	if c.MaxInterval < c.MinInterval {
		c.MaxInterval = c.MinInterval
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.5
	}
	if c.HighWater <= 0 {
		c.HighWater = 2.0
	}
	if c.HighWater < 2*c.LowWater {
		c.HighWater = 2 * c.LowWater
	}
}

// BatchController is the per-node adaptive batching state machine. Not
// goroutine-safe: the owner (the node's flush loop, or a test) calls
// Tick from one goroutine and publishes the result itself.
type BatchController struct {
	cfg   AdaptiveConfig
	batch int
}

// NewBatchController builds a controller at the latency-first floor
// (MinBatch): an idle or lightly loaded node starts with prompt
// flushes and earns amortization only when the queue shows demand.
// cfg must already be filled.
func NewBatchController(cfg AdaptiveConfig) *BatchController {
	cfg.fill(cfg.MaxBatch, cfg.MaxInterval)
	return &BatchController{cfg: cfg, batch: cfg.MinBatch}
}

// Tick feeds one queue-depth sample and returns the new operating
// point. Multiplicative increase/decrease with a hysteresis band:
// occupancy (depth ÷ current batch) above HighWater doubles the batch,
// below LowWater halves it, inside the band holds. Doubling and
// halving move occupancy by exactly 2×, and the band is at least 2×
// wide (fill enforces HighWater ≥ 2·LowWater), so one step from
// outside the band lands inside or on the same side — never across —
// and a steady input can never oscillate. Convergence from any start
// to any steady depth takes at most log2(MaxBatch/MinBatch) ticks.
func (c *BatchController) Tick(queueDepth int) (batch int, interval time.Duration) {
	occ := float64(queueDepth) / float64(c.batch)
	switch {
	case occ > c.cfg.HighWater:
		c.batch *= 2
		if c.batch > c.cfg.MaxBatch {
			c.batch = c.cfg.MaxBatch
		}
	case occ < c.cfg.LowWater:
		c.batch /= 2
		if c.batch < c.cfg.MinBatch {
			c.batch = c.cfg.MinBatch
		}
	}
	return c.batch, c.interval()
}

// Operating returns the current point without advancing the controller.
func (c *BatchController) Operating() (batch int, interval time.Duration) {
	return c.batch, c.interval()
}

// interval maps the batch linearly onto [MinInterval, MaxInterval]: at
// the floor the flush timer fires fast (a parked batch waits at most
// MinInterval), at the ceiling it relaxes to the configured safety-net
// cadence — under sustained load flushes are fill- and chunk-driven
// anyway, so a slow timer there costs nothing.
func (c *BatchController) interval() time.Duration {
	lo, hi := c.cfg.MinInterval, c.cfg.MaxInterval
	if c.cfg.MaxBatch == c.cfg.MinBatch {
		return hi
	}
	frac := float64(c.batch-c.cfg.MinBatch) / float64(c.cfg.MaxBatch-c.cfg.MinBatch)
	return lo + time.Duration(frac*float64(hi-lo))
}
