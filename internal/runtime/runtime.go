// Package runtime is the production node runtime shared by the real
// (wall-clock) deployments: the in-process Cluster (flexcast root
// package), the TCP server (cmd/flexnode) and the sustained-load
// benchmark (cmd/flexload). It wraps one protocol engine per node and
// adds the throughput layer the bare transports lack:
//
//   - each node is a sharded worker goroutine draining a bounded inbound
//     queue; the bound is counted in envelopes — batching must never
//     widen effective buffering, or queue residency (and with it the
//     protocols' in-flight dependency state) balloons — and a full queue
//     blocks the transport, so a saturated node exerts backpressure on
//     its senders instead of buffering without limit;
//   - the worker drains up to MaxBatch queued envelopes per wakeup and
//     steps the engine once per chunk through its batch fast path
//     (amcast.BatchStep) — one queue operation, one fixpoint scan, and
//     per-destination output batches amortized across the chunk;
//   - outputs are batched per destination (Batcher) and flushed at the
//     end of every chunk: amortization comes from within a chunk, never
//     from holding outputs across chunks, so an idle node adds no
//     batching latency;
//   - a periodic flush timer remains as a safety net bounding the wait
//     of any batch parked while the worker blocks on backpressure.
//
// The per-envelope protocol semantics are unchanged — a batch is a
// scheduling unit (see amcast.BatchStepper) — so the simulator, the
// chaos explorer and the replicas (internal/smr) verify the same state
// machines this runtime executes.
package runtime

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"flexcast/amcast"
	"flexcast/internal/telemetry"
)

// SendBatchFunc transmits one batch to a peer. Implementations:
// transport.InMemNet.SendBatch, transport.TCPNode.SendBatch (adapted),
// or any test hook. Calls are serialized by the batcher; per-destination
// call order is the envelope order, preserving FIFO links.
type SendBatchFunc func(to amcast.NodeID, envs []amcast.Envelope)

// Config parameterizes a Node.
type Config struct {
	// MaxBatch caps both the envelopes drained per engine step and the
	// per-destination output batches (reaching it flushes immediately).
	// 1 disables batching entirely — the per-envelope baseline the
	// benchmark subsystem compares against. 0 takes the default (64).
	MaxBatch int
	// FlushInterval bounds how long an output batch parked by
	// backpressure may wait (default 500µs; unused when MaxBatch is 1).
	FlushInterval time.Duration
	// QueueDepth bounds the inbound queue in envelopes (default 1024) —
	// the same effective buffering whatever MaxBatch is.
	QueueDepth int
	// Adaptive, when non-nil, puts the node under the latency-targeted
	// batching controller (controller.go): MaxBatch and FlushInterval
	// become the ceiling of an adaptive range instead of the operating
	// point, and the node shrinks its effective batch and flush interval
	// toward the floor whenever the inbound queue is shallow. Requires
	// MaxBatch > 1 (with batching off there is nothing to adapt).
	Adaptive *AdaptiveConfig
	// OnDeliver observes every delivery after the client reply has been
	// queued. Called from the node's worker goroutine. May be nil.
	OnDeliver func(d amcast.Delivery)
	// ReadHandler, when non-nil, serves KindRead envelopes — read-only
	// transactions addressed to this node outside the multicast
	// (DESIGN.md §1e). Read envelopes never enter the engine: they are
	// diverted at Submit and served on the submitting goroutine (reads
	// only take the executor's read side, so they run concurrently with
	// the worker), and the returned reply is transmitted immediately —
	// a read never queues behind the write path. Nodes without a handler
	// drop read envelopes.
	ReadHandler func(env amcast.Envelope) amcast.Envelope
	// Tracer, when non-nil, stamps sampled requests' lifecycle stages:
	// StageEnqueue when a KindRequest enters the inbound queue,
	// StageDequeue when the worker pops it, StageDeliver when the
	// engine emits its delivery, StageFlush when its reply batch
	// leaves the batcher. Unsampled envelopes cost one branch.
	Tracer *telemetry.Tracer
}

func (c *Config) fill() {
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 500 * time.Microsecond
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.Adaptive != nil {
		if c.MaxBatch <= 1 {
			c.Adaptive = nil // nothing to adapt
		} else {
			c.Adaptive.fill(c.MaxBatch, c.FlushInterval)
		}
	}
}

// Node runs one group engine under the batched runtime: a single worker
// goroutine owns the engine (preserving the single-threaded contract),
// inbound batches enter through Submit, outputs leave through the
// per-destination Batcher.
type Node struct {
	id   amcast.NodeID
	cfg  Config
	eng  amcast.Engine
	send SendBatchFunc

	// Inbound queue: an envelope-counted deque. A channel would count
	// batches, and 1024 64-envelope batches is 64x the buffering of 1024
	// envelopes — enough queue residency to visibly inflate the
	// protocols' in-flight state under saturation.
	qmu     sync.Mutex
	qcond   *sync.Cond
	queue   []amcast.Envelope
	stopped bool
	// maxBatch is the effective chunk cap, read by take under qmu.
	// Static nodes pin it at cfg.MaxBatch; adaptive nodes' flush loop
	// republishes the controller's operating point every tick.
	maxBatch int
	// marks and blocked are the priority drain's reusable scratch
	// (allocation-free selection; see takePriorityLocked).
	marks   []bool
	blocked []amcast.NodeID

	batcher *Batcher

	// ctrl is the adaptive batching controller (nil on static nodes);
	// owned by flushLoop. intervalUs mirrors its current flush interval
	// for the telemetry readers.
	ctrl       *BatchController
	intervalUs atomic.Int64

	// Backpressure accounting: stalls counts Submit calls that blocked
	// on a full queue, stallNs their total blocked time.
	stalls  atomic.Uint64
	stallNs atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewNode attaches an engine to a transport's batch send function and
// starts the worker. The caller registers the returned node's Submit as
// the transport's batch handler for the engine's group.
func NewNode(eng amcast.Engine, send SendBatchFunc, cfg Config) *Node {
	cfg.fill()
	n := &Node{
		id:      amcast.GroupNode(eng.Group()),
		cfg:     cfg,
		eng:     eng,
		send:    send,
		batcher: NewBatcher(send, cfg.MaxBatch),
		stop:    make(chan struct{}),
	}
	n.batcher.SetTracer(cfg.Tracer)
	n.qcond = sync.NewCond(&n.qmu)
	n.maxBatch = cfg.MaxBatch
	n.intervalUs.Store(cfg.FlushInterval.Microseconds())
	if cfg.Adaptive != nil {
		n.ctrl = NewBatchController(*cfg.Adaptive)
		batch, interval := n.ctrl.Operating()
		n.applyOperating(batch, interval)
	}
	n.wg.Add(1)
	go n.worker()
	if cfg.MaxBatch > 1 {
		n.wg.Add(1)
		go n.flushLoop()
	}
	return n
}

// applyOperating publishes a controller operating point: the chunk cap
// for take, the batcher's size cap, and the telemetry mirror of the
// flush interval.
func (n *Node) applyOperating(batch int, interval time.Duration) {
	n.qmu.Lock()
	n.maxBatch = batch
	n.qmu.Unlock()
	n.batcher.SetMax(batch)
	n.intervalUs.Store(interval.Microseconds())
}

// Operating reports the node's current effective (batch, flush
// interval) — the static configuration on static nodes, the
// controller's live operating point on adaptive ones. Telemetry and
// the SLO trajectory sampler read it.
func (n *Node) Operating() (batch int, interval time.Duration) {
	n.qmu.Lock()
	batch = n.maxBatch
	n.qmu.Unlock()
	return batch, time.Duration(n.intervalUs.Load()) * time.Microsecond
}

// ID returns the node's network address.
func (n *Node) ID() amcast.NodeID { return n.id }

// Submit enqueues one inbound batch. It blocks while the queue holds
// QueueDepth or more envelopes (backpressure) and drops the batch once
// the node is closed.
func (n *Node) Submit(envs []amcast.Envelope) {
	if len(envs) == 0 {
		return
	}
	envs = n.serveReads(envs)
	if len(envs) == 0 {
		return
	}
	// Stamp before the append (not after the unlock): the worker can
	// pop an envelope the moment it is queued, and a Dequeue stamp must
	// never precede its Enqueue stamp. Stamped here, the enqueue→dequeue
	// transition covers queue residency including any backpressure wait.
	if tr := n.cfg.Tracer; tr != nil {
		for i := range envs {
			if envs[i].Kind == amcast.KindRequest {
				tr.Stamp(envs[i].Msg.ID, telemetry.StageEnqueue)
			}
		}
	}
	n.qmu.Lock()
	if len(n.queue) >= n.cfg.QueueDepth && !n.stopped {
		// Backpressure: account the stall (off the fast path — an
		// uncontended Submit never reads the clock).
		start := time.Now()
		for len(n.queue) >= n.cfg.QueueDepth && !n.stopped {
			n.qcond.Wait()
		}
		n.stalls.Add(1)
		n.stallNs.Add(uint64(time.Since(start)))
	}
	if n.stopped {
		n.qmu.Unlock()
		return
	}
	n.queue = append(n.queue, envs...)
	n.qmu.Unlock()
	n.qcond.Signal()
}

// serveReads diverts KindRead envelopes out of an inbound batch and
// serves them through the configured ReadHandler, on the submitting
// goroutine; the filtered batch (usually the whole batch — reads are
// rare relative to protocol traffic on any one link) continues to the
// queue. Replies go out directly, bypassing the worker-owned batcher: a
// read completes without ever synchronizing with the write path.
func (n *Node) serveReads(envs []amcast.Envelope) []amcast.Envelope {
	hasRead := false
	for i := range envs {
		if envs[i].Kind == amcast.KindRead {
			hasRead = true
			break
		}
	}
	if !hasRead {
		return envs
	}
	rest := make([]amcast.Envelope, 0, len(envs))
	for _, env := range envs {
		if env.Kind != amcast.KindRead {
			rest = append(rest, env)
			continue
		}
		if n.cfg.ReadHandler == nil {
			continue // no serving state: drop, like any unexpected kind
		}
		reply := n.cfg.ReadHandler(env)
		n.send(env.Msg.Sender, []amcast.Envelope{reply})
	}
	return rest
}

// take pops up to MaxBatch queued envelopes, blocking until at least one
// is available or the node stops (then draining the remainder).
//
// Receiver-side control-priority drain: when the backlog exceeds one
// chunk, control envelopes (ACK/NOTIF/TS — everything that unblocks
// delivery) are drained ahead of payload envelopes queued before them,
// so a saturated node keeps answering the protocol instead of parking
// acks behind hundreds of payloads. The selection preserves per-sender
// FIFO: an envelope is only promoted past envelopes from *other*
// senders, never past an earlier envelope from its own sender — the
// only ordering the protocols assume (FIFO links), and the one
// FlexCast's incremental history diffs rely on. Reordering across
// senders is indistinguishable from a different arrival interleaving,
// which the chunked-equivalence tests (internal/prototest) randomize
// over; see DESIGN.md §1b.
func (n *Node) take(buf []amcast.Envelope) []amcast.Envelope {
	n.qmu.Lock()
	for len(n.queue) == 0 && !n.stopped {
		n.qcond.Wait()
	}
	k := len(n.queue)
	if k > n.maxBatch {
		k = n.maxBatch
	}
	if len(n.queue) > n.maxBatch && n.maxBatch > 1 {
		// Backlogged: the unselected remainder waits at least one more
		// chunk, so promotion changes real processing order — select.
		buf = n.takePriorityLocked(buf, k)
	} else {
		// The whole queue fits one chunk (or batching is off): plain
		// FIFO pop; priority would only permute within the same chunk.
		buf = append(buf[:0], n.queue[:k]...)
		rest := copy(n.queue, n.queue[k:])
		n.queue = n.queue[:rest]
	}
	n.qmu.Unlock()
	n.qcond.Broadcast()
	return buf
}

// takePriorityLocked selects up to k envelopes from the backlogged
// queue: the queue head unconditionally (the fairness bound — every
// take consumes the globally oldest envelope, so an envelope at queue
// position p is processed within p takes and pure control floods can
// never starve a parked payload indefinitely), then the control
// envelopes that are not preceded by an unselected envelope from their
// own sender, then the remaining envelopes in arrival order. For every
// sender the selection is a prefix of its queued subsequence, taken in
// order — per-sender FIFO by construction (the head has no earlier
// envelope at all, so selecting it first never violates it). Runs under
// qmu with reusable scratch (no allocations in steady state).
func (n *Node) takePriorityLocked(buf []amcast.Envelope, k int) []amcast.Envelope {
	buf = buf[:0]
	if cap(n.marks) < len(n.queue) {
		n.marks = make([]bool, len(n.queue))
	}
	marks := n.marks[:len(n.queue)]
	for i := range marks {
		marks[i] = false
	}
	marks[0] = true
	buf = append(buf, n.queue[0])
	blocked := n.blocked[:0]
	isBlocked := func(from amcast.NodeID) bool {
		for _, b := range blocked {
			if b == from {
				return true
			}
		}
		return false
	}
	for i := 1; i < len(n.queue); i++ {
		if len(buf) >= k {
			break
		}
		env := &n.queue[i]
		if !env.Kind.IsPayload() && !isBlocked(env.From) {
			marks[i] = true
			buf = append(buf, *env)
			continue
		}
		// Unselected: later envelopes from this sender must not be
		// promoted past it.
		if !isBlocked(env.From) {
			blocked = append(blocked, env.From)
		}
	}
	n.blocked = blocked[:0]
	for i := range n.queue {
		if len(buf) >= k {
			break
		}
		if !marks[i] {
			marks[i] = true
			buf = append(buf, n.queue[i])
		}
	}
	rest := n.queue[:0]
	for i := range n.queue {
		if !marks[i] {
			rest = append(rest, n.queue[i])
		}
	}
	n.queue = rest
	return buf
}

// worker drains the inbound queue chunk by chunk: one queue pop, one
// engine step (amcast.BatchStep), one batcher flush per chunk.
func (n *Node) worker() {
	defer n.wg.Done()
	// One chunk buffer for the node's lifetime: take refills it in
	// place, so the hot path allocates nothing per chunk.
	buf := make([]amcast.Envelope, 0, n.cfg.MaxBatch)
	for {
		buf = n.take(buf)
		if len(buf) == 0 {
			return // stopped and drained
		}
		n.process(buf)
		n.batcher.FlushAll()
	}
}

// process steps the engine once for the whole chunk.
func (n *Node) process(envs []amcast.Envelope) {
	tr := n.cfg.Tracer
	if tr != nil {
		for i := range envs {
			if envs[i].Kind == amcast.KindRequest {
				tr.Stamp(envs[i].Msg.ID, telemetry.StageDequeue)
			}
		}
	}
	outs := amcast.BatchStep(n.eng, envs)
	dels := n.eng.TakeDeliveries()
	for _, o := range outs {
		n.batcher.Add(o.To, o.Env)
	}
	for _, d := range dels {
		if d.Msg.Sender.IsClient() {
			// First-wins with the executor's own Deliver stamp (which
			// fires inside TakeDeliveries, before this): the earliest
			// group to deliver marks the ordering point.
			tr.Stamp(d.Msg.ID, telemetry.StageDeliver)
			n.batcher.Add(d.Msg.Sender, amcast.Envelope{
				Kind:      amcast.KindReply,
				From:      n.id,
				Msg:       d.Msg.Header(),
				TS:        d.Seq,
				Result:    d.Result,
				Watermark: d.Watermark,
			})
		}
		if n.cfg.OnDeliver != nil {
			n.cfg.OnDeliver(d)
		}
	}
}

// flushLoop is the periodic flush timer: it bounds the wait of output
// batches parked while the worker is blocked on downstream backpressure.
// On adaptive nodes it doubles as the controller's cadence — every fire
// is one Tick on the current queue depth, and the interval until the
// next fire is whatever the controller returned, so a latency-bound
// node both flushes and re-samples fast while a loaded node relaxes to
// the configured ceiling.
func (n *Node) flushLoop() {
	defer n.wg.Done()
	if n.ctrl == nil {
		t := time.NewTicker(n.cfg.FlushInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				n.batcher.FlushTimer()
			case <-n.stop:
				return
			}
		}
	}
	_, interval := n.ctrl.Operating()
	t := time.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			n.batcher.FlushTimer()
			batch, interval := n.ctrl.Tick(n.QueueLen())
			n.applyOperating(batch, interval)
			t.Reset(interval)
		case <-n.stop:
			return
		}
	}
}

// Stats reports the batcher's counters.
func (n *Node) Stats() BatcherStats { return n.batcher.Stats() }

// QueueLen reports the inbound queue's current depth in envelopes — a
// telemetry gauge; saturation shows as QueueLen pinned at QueueDepth.
func (n *Node) QueueLen() int {
	n.qmu.Lock()
	l := len(n.queue)
	n.qmu.Unlock()
	return l
}

// Backpressure reports how often Submit blocked on a full queue and the
// total nanoseconds spent blocked.
func (n *Node) Backpressure() (stalls, ns uint64) {
	return n.stalls.Load(), n.stallNs.Load()
}

// Close stops the worker (draining what is queued), flushes pending
// output batches, and closes the engine if it holds resources (the
// durable backend's WAL syncs and closes here — after the worker
// stopped, so the engine is quiesced).
func (n *Node) Close() {
	n.stopOnce.Do(func() {
		close(n.stop)
		n.qmu.Lock()
		n.stopped = true
		n.qmu.Unlock()
		n.qcond.Broadcast()
	})
	n.wg.Wait()
	n.batcher.FlushAll()
	if c, ok := n.eng.(io.Closer); ok {
		c.Close()
	}
}
