package runtime

import (
	"testing"

	"flexcast/amcast"
)

// BenchmarkBatcherAdd measures the per-envelope cost of the output
// batcher with batches filling to the cap (batch cap 64, two
// destinations): a handful of allocations per 64-envelope batch (the
// cap-8 preallocation plus its growth steps).
func BenchmarkBatcherAdd(b *testing.B) {
	batcher := NewBatcher(func(to amcast.NodeID, envs []amcast.Envelope) {}, 64)
	dsts := []amcast.NodeID{amcast.GroupNode(1), amcast.GroupNode(2)}
	e := amcast.Envelope{Kind: amcast.KindAck, From: amcast.GroupNode(3)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batcher.Add(dsts[i&1], e)
	}
	batcher.FlushAll()
}

// BenchmarkBatcherAddSmallFlush measures the batcher's *common* regime
// under load — chunk-end flushes every few envelopes (the committed
// benchmark reports avg batches of 3-5): one cap-8 allocation per
// batch, none of it stranded.
func BenchmarkBatcherAddSmallFlush(b *testing.B) {
	batcher := NewBatcher(func(to amcast.NodeID, envs []amcast.Envelope) {}, 64)
	dst := amcast.GroupNode(1)
	e := amcast.Envelope{Kind: amcast.KindAck, From: amcast.GroupNode(3)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batcher.Add(dst, e)
		if i%4 == 3 {
			batcher.FlushAll()
		}
	}
	batcher.FlushAll()
}

// BenchmarkTakeBacklog measures the chunk pop under backlog — the
// control-priority selection path — with the reusable chunk buffer and
// scratch: zero allocations per chunk in steady state.
func BenchmarkTakeBacklog(b *testing.B) {
	const depth = 512
	n := takeNode(64)
	mixed := make([]amcast.Envelope, depth)
	for i := range mixed {
		k := amcast.KindMsg
		if i%3 == 0 {
			k = amcast.KindAck
		}
		mixed[i] = env(k, amcast.GroupNode(amcast.GroupID(1+i%4)), uint64(i+1))
	}
	buf := make([]amcast.Envelope, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(n.queue) < 128 {
			b.StopTimer()
			n.queue = append(n.queue[:0], mixed...)
			b.StartTimer()
		}
		buf = n.take(buf)
	}
}
