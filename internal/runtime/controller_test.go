package runtime

import (
	"testing"
	"time"

	"flexcast/amcast"
)

// ctrlNopEngine is the minimal engine stub for wiring tests.
type ctrlNopEngine struct{}

func (ctrlNopEngine) Group() amcast.GroupID                      { return 1 }
func (ctrlNopEngine) OnEnvelope(amcast.Envelope) []amcast.Output { return nil }
func (ctrlNopEngine) TakeDeliveries() []amcast.Delivery          { return nil }

func testController(minBatch, maxBatch int) *BatchController {
	return NewBatchController(AdaptiveConfig{
		MinBatch:    minBatch,
		MaxBatch:    maxBatch,
		MinInterval: 50 * time.Microsecond,
		MaxInterval: 500 * time.Microsecond,
	})
}

// TestControllerConvergesUp pins convergence under a load step: from the
// latency floor, a steady deep queue must drive the batch to the ceiling
// within log2(MaxBatch/MinBatch) ticks and hold it there.
func TestControllerConvergesUp(t *testing.T) {
	c := testController(1, 64)
	const depth = 1024 // saturated queue
	ticks := 0
	for ; ticks < 64; ticks++ {
		if b, _ := c.Tick(depth); b == 64 {
			break
		}
	}
	if ticks >= 64 {
		t.Fatalf("controller never reached the ceiling under depth %d", depth)
	}
	if ticks > 6 { // log2(64/1)
		t.Fatalf("converged in %d ticks, want <= 6", ticks)
	}
	for i := 0; i < 100; i++ {
		if b, _ := c.Tick(depth); b != 64 {
			t.Fatalf("left the ceiling on steady input: batch %d at tick %d", b, i)
		}
	}
}

// TestControllerConvergesDown pins the symmetric step: when load drops
// to an empty queue, the batch must fall back to the floor within
// log2(MaxBatch/MinBatch) ticks — and with it the flush interval, so an
// idle node flushes promptly again.
func TestControllerConvergesDown(t *testing.T) {
	c := testController(1, 64)
	for i := 0; i < 10; i++ {
		c.Tick(1024)
	}
	ticks := 0
	for ; ticks < 64; ticks++ {
		if b, _ := c.Tick(0); b == 1 {
			break
		}
	}
	if ticks > 6 {
		t.Fatalf("converged down in %d ticks, want <= 6", ticks)
	}
	if _, iv := c.Operating(); iv != 50*time.Microsecond {
		t.Fatalf("interval at the floor is %v, want 50µs", iv)
	}
}

// TestControllerBounded fuzzes depth series (including adversarial
// extremes) and asserts the operating point never leaves
// [MinBatch, MaxBatch] × [MinInterval, MaxInterval].
func TestControllerBounded(t *testing.T) {
	c := testController(2, 48)
	rng := uint64(7)
	next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng }
	depths := []int{0, 1, 2, 1 << 20, 0, 47, 48, 49, 1, 1 << 30}
	for i := 0; i < 10_000; i++ {
		d := depths[next()%uint64(len(depths))]
		b, iv := c.Tick(d)
		if b < 2 || b > 48 {
			t.Fatalf("tick %d (depth %d): batch %d outside [2,48]", i, d, b)
		}
		if iv < 50*time.Microsecond || iv > 500*time.Microsecond {
			t.Fatalf("tick %d (depth %d): interval %v outside [50µs,500µs]", i, d, iv)
		}
	}
}

// TestControllerNoOscillation pins the hysteresis argument: for every
// steady depth, once the controller stops moving it never moves again —
// doubling/halving cannot jump across the band (HighWater ≥ 2·LowWater),
// so a constant input has exactly one resting point.
func TestControllerNoOscillation(t *testing.T) {
	for depth := 0; depth <= 256; depth++ {
		c := testController(1, 64)
		prev, _ := c.Operating()
		settledAt := -1
		for i := 0; i < 32; i++ {
			b, _ := c.Tick(depth)
			if b != prev && settledAt >= 0 {
				t.Fatalf("depth %d: batch moved %d→%d at tick %d after settling at tick %d",
					depth, prev, b, i, settledAt)
			}
			if b == prev && settledAt < 0 {
				settledAt = i
			}
			prev = b
		}
		if settledAt < 0 {
			t.Fatalf("depth %d: controller never settled", depth)
		}
	}
}

// TestControllerMidbandHolds pins the hold case explicitly: a depth
// inside the hysteresis band of the current batch must not move the
// operating point at all.
func TestControllerMidbandHolds(t *testing.T) {
	c := testController(1, 64)
	for i := 0; i < 10; i++ {
		c.Tick(1024) // drive to the ceiling
	}
	// Occupancy 64/64 = 1.0 sits between LowWater 0.5 and HighWater 2.0.
	for i := 0; i < 50; i++ {
		if b, _ := c.Tick(64); b != 64 {
			t.Fatalf("mid-band depth moved the batch to %d", b)
		}
	}
}

// TestControllerIntervalTracksBatch pins the coupling: the flush
// interval is the linear image of the batch on
// [MinInterval, MaxInterval], monotone in the batch.
func TestControllerIntervalTracksBatch(t *testing.T) {
	c := testController(1, 64)
	_, lastIv := c.Operating()
	for i := 0; i < 10; i++ {
		b, iv := c.Tick(1 << 20)
		if iv < lastIv {
			t.Fatalf("interval shrank (%v → %v) while batch grew to %d", lastIv, iv, b)
		}
		lastIv = iv
	}
	if _, iv := c.Operating(); iv != 500*time.Microsecond {
		t.Fatalf("interval at the ceiling is %v, want 500µs", iv)
	}
}

// TestNodeAdaptiveOperating is the wiring smoke test: an adaptive node
// starts at the latency floor (batch 1, MinInterval) instead of the
// static ceiling, and Config.fill drops the adaptive config when
// batching is off entirely.
func TestNodeAdaptiveOperating(t *testing.T) {
	cfg := Config{MaxBatch: 64, FlushInterval: 500 * time.Microsecond, Adaptive: &AdaptiveConfig{}}
	cfg.fill()
	if cfg.Adaptive == nil {
		t.Fatal("fill dropped the adaptive config despite MaxBatch > 1")
	}
	if cfg.Adaptive.MaxBatch != 64 || cfg.Adaptive.MaxInterval != 500*time.Microsecond {
		t.Fatalf("fill did not inherit the static ceiling: %+v", cfg.Adaptive)
	}

	off := Config{MaxBatch: 1, Adaptive: &AdaptiveConfig{}}
	off.fill()
	if off.Adaptive != nil {
		t.Fatal("fill kept an adaptive config with batching off")
	}

	n := NewNode(ctrlNopEngine{}, func(amcast.NodeID, []amcast.Envelope) {}, cfg)
	defer n.Close()
	b, iv := n.Operating()
	if b != 1 || iv != 50*time.Microsecond {
		t.Fatalf("adaptive node starts at (%d, %v), want (1, 50µs)", b, iv)
	}
}
