package runtime

import (
	"sync"

	"flexcast/amcast"
)

// Batcher accumulates outbound envelopes per destination and hands them
// to the transport as batches: a destination's batch is sent when it
// reaches the size cap, when the owning node's queue runs dry, or when
// the flush timer fires. Sends happen under the batcher's mutex, so per-
// destination envelope order is exactly the Add order — the FIFO-link
// property the protocols assume survives batching.
type Batcher struct {
	mu      sync.Mutex
	send    SendBatchFunc
	max     int
	pending map[amcast.NodeID][]amcast.Envelope
	// order lists destinations with pending envelopes in first-Add order
	// so FlushAll is deterministic and starvation-free.
	order []amcast.NodeID

	stats BatcherStats
}

// BatcherStats counts what the batcher moved.
type BatcherStats struct {
	// Batches is the number of transport sends.
	Batches uint64
	// Envelopes is the total number of envelopes sent.
	Envelopes uint64
	// MaxBatch is the largest batch sent.
	MaxBatch int
}

// AvgBatch returns the mean envelopes per transport send.
func (s BatcherStats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Envelopes) / float64(s.Batches)
}

// NewBatcher builds a batcher over a transport send function. max <= 1
// degenerates to unbatched pass-through sends.
func NewBatcher(send SendBatchFunc, max int) *Batcher {
	if max < 1 {
		max = 1
	}
	return &Batcher{
		send:    send,
		max:     max,
		pending: make(map[amcast.NodeID][]amcast.Envelope),
	}
}

// Add queues one envelope for a destination, flushing that destination's
// batch when it reaches the cap.
func (b *Batcher) Add(to amcast.NodeID, env amcast.Envelope) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.max <= 1 {
		b.sendLocked(to, []amcast.Envelope{env})
		return
	}
	q, ok := b.pending[to]
	if !ok {
		b.order = append(b.order, to)
	}
	q = append(q, env)
	if len(q) >= b.max {
		delete(b.pending, to)
		b.dropFromOrder(to)
		b.sendLocked(to, q)
		return
	}
	b.pending[to] = q
}

// FlushAll sends every pending batch.
func (b *Batcher) FlushAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.order) == 0 {
		return
	}
	order := b.order
	b.order = nil
	for _, to := range order {
		q, ok := b.pending[to]
		if !ok {
			continue
		}
		delete(b.pending, to)
		b.sendLocked(to, q)
	}
}

// Stats returns a snapshot of the counters.
func (b *Batcher) Stats() BatcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// sendLocked transmits one batch while holding the mutex; the transport
// may block (backpressure), which intentionally stalls the owning node.
func (b *Batcher) sendLocked(to amcast.NodeID, envs []amcast.Envelope) {
	b.stats.Batches++
	b.stats.Envelopes += uint64(len(envs))
	if len(envs) > b.stats.MaxBatch {
		b.stats.MaxBatch = len(envs)
	}
	b.send(to, envs)
}

func (b *Batcher) dropFromOrder(to amcast.NodeID) {
	for i, d := range b.order {
		if d == to {
			b.order = append(b.order[:i], b.order[i+1:]...)
			return
		}
	}
}
