package runtime

import (
	"sync"

	"flexcast/amcast"
	"flexcast/internal/telemetry"
)

// Batcher accumulates outbound envelopes per destination and hands them
// to the transport as batches: a destination's batch is sent when it
// reaches the size cap, when the owning node's queue runs dry, or when
// the flush timer fires. Sends happen under the batcher's mutex, so per-
// destination envelope order is exactly the Add order — the FIFO-link
// property the protocols assume survives batching.
//
// Control-priority flushing: batches carrying protocol control
// envelopes (ACK, NOTIF, TS, REPLY — everything that unblocks delivery
// or completes a client transaction) are flushed ahead of payload-only
// batches. Large chunks consolidate acks at chunk end, where they used
// to queue behind fat payload frames into backpressured transports,
// stretching FlexCast transaction lifetimes and widening in-flight
// dependency state (more NOTIFs, fatter history diffs). Priority is
// strictly across destinations: a destination's own batch is never
// reordered internally, because FlexCast's incremental history diffs
// rely on per-link FIFO delivery.
type Batcher struct {
	mu      sync.Mutex
	send    SendBatchFunc
	max     int
	pending map[amcast.NodeID][]amcast.Envelope
	// control marks destinations whose pending batch carries at least
	// one control envelope; FlushAll sends those first.
	control map[amcast.NodeID]bool
	// order lists destinations with pending envelopes in first-Add order
	// so FlushAll is deterministic and starvation-free.
	order []amcast.NodeID

	// tracer, when non-nil, stamps StageFlush on sampled write replies as
	// their batch leaves for the transport.
	tracer *telemetry.Tracer

	stats BatcherStats
}

// BatcherStats counts what the batcher moved.
type BatcherStats struct {
	// Batches is the number of transport sends.
	Batches uint64
	// Envelopes is the total number of envelopes sent.
	Envelopes uint64
	// MaxBatch is the largest batch sent.
	MaxBatch int
	// ControlBatches counts batches flushed in the control-priority
	// phase (carrying at least one ACK/NOTIF/TS/REPLY envelope).
	ControlBatches uint64
	// SizeFlushes counts batches sent because they hit the size cap,
	// ChunkFlushes batches sent by the worker's chunk-end flush, and
	// TimerFlushes batches sent by the periodic flush timer. Their ratio
	// shows whether batching is fill-driven (throughput-bound) or
	// timer-driven (idle / latency-bound).
	SizeFlushes  uint64
	ChunkFlushes uint64
	TimerFlushes uint64
}

// AvgBatch returns the mean envelopes per transport send.
func (s BatcherStats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Envelopes) / float64(s.Batches)
}

// Add accumulates another node's stats into s.
func (s *BatcherStats) Add(s2 BatcherStats) {
	s.Batches += s2.Batches
	s.Envelopes += s2.Envelopes
	s.ControlBatches += s2.ControlBatches
	s.SizeFlushes += s2.SizeFlushes
	s.ChunkFlushes += s2.ChunkFlushes
	s.TimerFlushes += s2.TimerFlushes
	if s2.MaxBatch > s.MaxBatch {
		s.MaxBatch = s2.MaxBatch
	}
}

// NewBatcher builds a batcher over a transport send function. max <= 1
// degenerates to unbatched pass-through sends.
func NewBatcher(send SendBatchFunc, max int) *Batcher {
	if max < 1 {
		max = 1
	}
	return &Batcher{
		send:    send,
		max:     max,
		pending: make(map[amcast.NodeID][]amcast.Envelope),
		control: make(map[amcast.NodeID]bool),
	}
}

// SetTracer attaches the lifecycle tracer (nil detaches). Called once
// at node construction, before any Add.
func (b *Batcher) SetTracer(t *telemetry.Tracer) {
	b.mu.Lock()
	b.tracer = t
	b.mu.Unlock()
}

// SetMax republishes the size cap — the adaptive controller's lever.
// Batches already pending above a shrunk cap flush on the next Add or
// FlushAll; lowering the cap to 1 keeps pass-through semantics for new
// envelopes only, never reorders what is queued.
func (b *Batcher) SetMax(max int) {
	if max < 1 {
		max = 1
	}
	b.mu.Lock()
	b.max = max
	b.mu.Unlock()
}

// isControl reports whether an envelope is latency-critical protocol
// control traffic rather than payload propagation.
func isControl(env amcast.Envelope) bool { return !env.Kind.IsPayload() }

// Add queues one envelope for a destination, flushing that destination's
// batch when it reaches the cap.
func (b *Batcher) Add(to amcast.NodeID, env amcast.Envelope) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.max <= 1 {
		if isControl(env) {
			b.stats.ControlBatches++
		}
		b.stats.SizeFlushes++
		b.sendLocked(to, []amcast.Envelope{env})
		return
	}
	q, ok := b.pending[to]
	if !ok {
		b.order = append(b.order, to)
		// Preallocate a small batch and let append grow toward the cap:
		// most flushes carry only a few envelopes (the chunk-end flush
		// fires long before max), so full-capacity preallocation would
		// strand most of every slice; cap 8 makes the common batch one
		// allocation and costs a filling batch only log2(max/8) growths.
		hint := b.max
		if hint > 8 {
			hint = 8
		}
		q = make([]amcast.Envelope, 0, hint)
	}
	q = append(q, env)
	if isControl(env) {
		b.control[to] = true
	}
	if len(q) >= b.max {
		b.stats.SizeFlushes++
		b.flushLocked(to, q)
		return
	}
	b.pending[to] = q
}

// FlushAll sends every pending batch: control-bearing destinations
// first (in first-Add order), payload-only destinations after, so acks
// and replies are never stuck behind payload frames on a backpressured
// transport. This is the worker's chunk-end flush.
func (b *Batcher) FlushAll() { b.flushAll(false) }

// FlushTimer is FlushAll invoked from the periodic flush timer; the
// batches it sends are accounted as timer flushes instead of chunk
// flushes.
func (b *Batcher) FlushTimer() { b.flushAll(true) }

func (b *Batcher) flushAll(timer bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.order) == 0 {
		return
	}
	ctr := &b.stats.ChunkFlushes
	if timer {
		ctr = &b.stats.TimerFlushes
	}
	order := b.order
	b.order = nil
	for _, to := range order {
		if !b.control[to] {
			continue
		}
		if q, ok := b.pending[to]; ok {
			*ctr++
			b.flushLocked(to, q)
		}
	}
	for _, to := range order {
		if q, ok := b.pending[to]; ok {
			*ctr++
			b.flushLocked(to, q)
		}
	}
}

// Stats returns a snapshot of the counters.
func (b *Batcher) Stats() BatcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// flushLocked sends one destination's batch and clears its bookkeeping.
func (b *Batcher) flushLocked(to amcast.NodeID, q []amcast.Envelope) {
	delete(b.pending, to)
	b.dropFromOrder(to)
	if b.control[to] {
		b.stats.ControlBatches++
		delete(b.control, to)
	}
	b.sendLocked(to, q)
}

// sendLocked transmits one batch while holding the mutex; the transport
// may block (backpressure), which intentionally stalls the owning node.
func (b *Batcher) sendLocked(to amcast.NodeID, envs []amcast.Envelope) {
	b.stats.Batches++
	b.stats.Envelopes += uint64(len(envs))
	if len(envs) > b.stats.MaxBatch {
		b.stats.MaxBatch = len(envs)
	}
	if tr := b.tracer; tr != nil {
		// Stamp write replies as the batch leaves: the send below
		// happens-before the client's Finish, so no stamp can straggle
		// past record retirement. Read replies are excluded — reads
		// bypass the batcher and are not traced.
		for i := range envs {
			if envs[i].Kind == amcast.KindReply && envs[i].Msg.Flags&amcast.FlagRead == 0 {
				tr.Stamp(envs[i].Msg.ID, telemetry.StageFlush)
			}
		}
	}
	b.send(to, envs)
}

func (b *Batcher) dropFromOrder(to amcast.NodeID) {
	for i, d := range b.order {
		if d == to {
			b.order = append(b.order[:i], b.order[i+1:]...)
			return
		}
	}
}
