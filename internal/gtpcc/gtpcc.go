// Package gtpcc implements the paper's gTPC-C benchmark (§5.3): TPC-C
// translated to atomic multicast (warehouses are groups, transactions are
// multicast messages) and extended with geographic locality.
//
// Transaction mix (TPC-C §5.2.3): new-order 45 %, payment 43 %, and the
// three single-warehouse transactions order-status, delivery and
// stock-level at 4 % each. New-order transactions touch 5-15 items; each
// item is served by a remote warehouse with 2 % probability. When a
// remote warehouse is needed, the customer picks the warehouse nearest to
// its home warehouse with probability equal to the locality rate,
// otherwise the next nearest, and so on — modelling a wholesale supplier
// that ships a missing item from the closest stocked warehouse.
//
// For latency experiments the paper uses a global-only variant: only
// new-order and payment transactions, always spanning two or more
// warehouses, and messages addressed to more than three warehouses are
// excluded (they are vanishingly rare under TPC-C's 2 % rule).
package gtpcc

import (
	"fmt"
	"math/rand"

	"flexcast/amcast"
)

// TxType enumerates gTPC-C transaction types.
type TxType uint8

const (
	// NewOrder is the TPC-C new-order transaction (45 %).
	NewOrder TxType = iota + 1
	// Payment is the TPC-C payment transaction (43 %).
	Payment
	// OrderStatus is the TPC-C order-status transaction (4 %, local).
	OrderStatus
	// Delivery is the TPC-C delivery transaction (4 %, local).
	Delivery
	// StockLevel is the TPC-C stock-level transaction (4 %, local).
	StockLevel
)

// String names the transaction type.
func (t TxType) String() string {
	switch t {
	case NewOrder:
		return "new-order"
	case Payment:
		return "payment"
	case OrderStatus:
		return "order-status"
	case Delivery:
		return "delivery"
	case StockLevel:
		return "stock-level"
	default:
		return fmt.Sprintf("TxType(%d)", uint8(t))
	}
}

// Table sizes of the executable store (internal/store). They are scaled
// down from TPC-C's 100k items / 3k customers per district so that a
// simulated multi-warehouse deployment stays cache-resident while
// keeping enough rows for contention to be rare but present.
const (
	// NumItems is the number of stock items per warehouse.
	NumItems = 100
	// NumCustomers is the number of customers per warehouse.
	NumCustomers = 30
	// MaxPayment is the largest payment amount (TPC-C: 1..5000).
	MaxPayment = 5000
)

// OrderLine is one item of a new-order transaction: Qty units of Item
// supplied by warehouse Supply (the home warehouse for ~98 % of lines).
type OrderLine struct {
	Item   int32
	Supply amcast.GroupID
	Qty    int32
}

// Tx is one generated transaction. Besides the destination set used by
// the multicast layer it carries the full transaction detail, so the
// executable store (internal/store) can run it deterministically at
// every destination warehouse.
type Tx struct {
	Type TxType
	// Dst is the destination warehouse set (sorted, home included).
	Dst []amcast.GroupID
	// Home is the client's home warehouse (the transaction's district).
	Home amcast.GroupID
	// Items is the new-order item count (0 for other types).
	Items int
	// Lines holds the new-order order lines (len == Items).
	Lines []OrderLine
	// Customer is the customer the transaction concerns (new-order,
	// payment, order-status; resident at CustWarehouse for payment and
	// at Home otherwise).
	Customer int32
	// CustWarehouse is the customer's warehouse for payment transactions
	// (TPC-C: remote 15 % of the time).
	CustWarehouse amcast.GroupID
	// Amount is the payment amount.
	Amount int64
	// Rollback marks the TPC-C 1 % of new-orders that abort (an invalid
	// item number). The decision is carried in the payload so every
	// involved warehouse reaches the same verdict deterministically.
	Rollback bool
	// Threshold is the stock-level low-stock threshold (TPC-C: 10..20).
	Threshold int32
	// PayloadSize is the request size in bytes.
	PayloadSize int
}

// Config parameterizes a generator.
type Config struct {
	// Home is the client's home warehouse (its nearest group).
	Home amcast.GroupID
	// Nearest lists the other warehouses ordered by increasing distance
	// from Home (wan.NearestOrder).
	Nearest []amcast.GroupID
	// Locality is the locality rate (e.g. 0.90, 0.95, 0.99): the
	// probability that a remote pick takes the next-nearest warehouse in
	// the walk down Nearest.
	Locality float64
	// GlobalOnly restricts the mix to new-order and payment and forces
	// every transaction to span at least two warehouses (the paper's
	// latency workloads).
	GlobalOnly bool
	// MaxDst drops transactions addressed to more destinations (paper:
	// 3). Zero means 3.
	MaxDst int
	// Zipf, when > 1, skews the workload with a Zipfian distribution of
	// parameter s = Zipf: item and customer picks favour low indexes
	// (hot rows) and remote-warehouse picks favour the nearest
	// warehouses — the contention-skewed variant of the workload.
	// Deterministic under the generator's seed like everything else.
	// 0 keeps TPC-C's uniform picks; values in (0, 1] are invalid
	// (the Zipfian law needs s > 1 to normalize).
	Zipf float64
}

// Gen generates gTPC-C transactions for one client. Not safe for
// concurrent use; give each client its own Gen and seed.
type Gen struct {
	cfg Config
	rng *rand.Rand

	// remotePayments forces Payment transactions remote in GlobalOnly
	// mode; in the full mix TPC-C pays a remote customer 15 % of the time.
	remoteRate float64

	// Zipfian skew generators (nil when Config.Zipf is 0): hot items,
	// hot customers, and hot (near) destination warehouses.
	itemZ *rand.Zipf
	custZ *rand.Zipf
	destZ *rand.Zipf
}

// New builds a generator. The rng must be private to this generator.
func New(cfg Config, rng *rand.Rand) (*Gen, error) {
	if cfg.Home == amcast.NoGroup {
		return nil, fmt.Errorf("gtpcc: missing home warehouse")
	}
	if len(cfg.Nearest) == 0 {
		return nil, fmt.Errorf("gtpcc: empty nearest-warehouse order")
	}
	for _, g := range cfg.Nearest {
		if g == cfg.Home {
			return nil, fmt.Errorf("gtpcc: home warehouse %d in nearest order", g)
		}
	}
	if cfg.Locality <= 0 || cfg.Locality > 1 {
		return nil, fmt.Errorf("gtpcc: locality rate %v outside (0,1]", cfg.Locality)
	}
	if cfg.MaxDst == 0 {
		cfg.MaxDst = 3
	}
	if cfg.Zipf != 0 && cfg.Zipf <= 1 {
		return nil, fmt.Errorf("gtpcc: zipf parameter %v outside (1, inf)", cfg.Zipf)
	}
	remoteRate := 0.15 // TPC-C: 15 % of payments hit a remote warehouse
	if cfg.GlobalOnly {
		remoteRate = 1
	}
	g := &Gen{cfg: cfg, rng: rng, remoteRate: remoteRate}
	if cfg.Zipf > 1 {
		g.itemZ = rand.NewZipf(rng, cfg.Zipf, 1, uint64(NumItems-1))
		g.custZ = rand.NewZipf(rng, cfg.Zipf, 1, uint64(NumCustomers-1))
		g.destZ = rand.NewZipf(rng, cfg.Zipf, 1, uint64(len(cfg.Nearest)-1))
	}
	return g, nil
}

// item picks an item index: uniform, or the hot head of the Zipfian law.
func (g *Gen) item() int32 {
	if g.itemZ != nil {
		return int32(g.itemZ.Uint64())
	}
	return int32(g.rng.Intn(NumItems))
}

// customer picks a customer index (uniform or Zipf-skewed).
func (g *Gen) customer() int32 {
	if g.custZ != nil {
		return int32(g.custZ.Uint64())
	}
	return int32(g.rng.Intn(NumCustomers))
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config, rng *rand.Rand) *Gen {
	g, err := New(cfg, rng)
	if err != nil {
		panic(err)
	}
	return g
}

// Next generates the next transaction.
func (g *Gen) Next() Tx {
	for {
		tx := g.gen()
		if len(tx.Dst) > g.cfg.MaxDst {
			continue // the paper excludes >3-destination messages
		}
		if g.cfg.GlobalOnly && len(tx.Dst) < 2 {
			continue
		}
		return tx
	}
}

func (g *Gen) gen() Tx {
	roll := g.rng.Float64()
	if g.cfg.GlobalOnly {
		// Normalize new-order:payment to 45:43.
		if roll < 45.0/88.0 {
			return g.newOrder()
		}
		return g.payment()
	}
	switch {
	case roll < 0.45:
		return g.newOrder()
	case roll < 0.88:
		return g.payment()
	case roll < 0.92:
		return g.local(OrderStatus, 40)
	case roll < 0.96:
		return g.local(Delivery, 40)
	default:
		return g.local(StockLevel, 40)
	}
}

func (g *Gen) newOrder() Tx {
	items := 5 + g.rng.Intn(11) // uniform in [5,15]
	lines := make([]OrderLine, items)
	dst := []amcast.GroupID{g.cfg.Home}
	for i := range lines {
		lines[i] = OrderLine{
			Item:   g.item(),
			Supply: g.cfg.Home,
			Qty:    int32(1 + g.rng.Intn(10)),
		}
		if g.rng.Float64() < 0.02 { // TPC-C: 2 % of items are remote
			lines[i].Supply = g.pickRemote()
			dst = append(dst, lines[i].Supply)
		}
	}
	if g.cfg.GlobalOnly && len(dst) == 1 {
		lines[items-1].Supply = g.pickRemote()
		dst = append(dst, lines[items-1].Supply)
	}
	dst = amcast.NormalizeDst(dst)
	return Tx{
		Type:        NewOrder,
		Dst:         dst,
		Home:        g.cfg.Home,
		Items:       items,
		Lines:       lines,
		Customer:    g.customer(),
		Rollback:    g.rng.Float64() < 0.01, // TPC-C: 1 % of new-orders roll back
		PayloadSize: 64 + 12*items,
	}
}

func (g *Gen) payment() Tx {
	custW := g.cfg.Home
	dst := []amcast.GroupID{g.cfg.Home}
	if g.rng.Float64() < g.remoteRate {
		custW = g.pickRemote()
		dst = append(dst, custW)
	}
	dst = amcast.NormalizeDst(dst)
	return Tx{
		Type:          Payment,
		Dst:           dst,
		Home:          g.cfg.Home,
		Customer:      g.customer(),
		CustWarehouse: custW,
		Amount:        int64(1 + g.rng.Intn(MaxPayment)),
		PayloadSize:   48,
	}
}

func (g *Gen) local(t TxType, size int) Tx {
	tx := Tx{Type: t, Dst: []amcast.GroupID{g.cfg.Home}, Home: g.cfg.Home, PayloadSize: size}
	switch t {
	case OrderStatus:
		tx.Customer = g.customer()
	case StockLevel:
		tx.Threshold = int32(10 + g.rng.Intn(11)) // TPC-C: uniform in [10,20]
	}
	return tx
}

// NextRead generates a read-only single-shard transaction — TPC-C's
// read-only pair, order-status and stock-level at equal rates, at the
// home warehouse. These are the transactions the local-read fast path
// serves without multicast; read-mix workloads (loadgen -read-pct) draw
// from this stream. Customer picks honour the Zipf skew.
func (g *Gen) NextRead() Tx {
	if g.rng.Intn(2) == 0 {
		return g.local(OrderStatus, 40)
	}
	return g.local(StockLevel, 40)
}

// pickRemote walks the nearest-warehouse order: the nearest warehouse is
// chosen with probability Locality, otherwise the next nearest, and so on;
// the walk stops at the farthest warehouse (§5.3). With Zipf skew the
// walk is replaced by a Zipfian draw over the same order — nearest
// warehouses are the hot ones, with a heavier tail than the geometric
// walk produces.
func (g *Gen) pickRemote() amcast.GroupID {
	if g.destZ != nil {
		return g.cfg.Nearest[g.destZ.Uint64()]
	}
	for _, w := range g.cfg.Nearest[:len(g.cfg.Nearest)-1] {
		if g.rng.Float64() < g.cfg.Locality {
			return w
		}
	}
	return g.cfg.Nearest[len(g.cfg.Nearest)-1]
}
