// Package gtpcc implements the paper's gTPC-C benchmark (§5.3): TPC-C
// translated to atomic multicast (warehouses are groups, transactions are
// multicast messages) and extended with geographic locality.
//
// Transaction mix (TPC-C §5.2.3): new-order 45 %, payment 43 %, and the
// three single-warehouse transactions order-status, delivery and
// stock-level at 4 % each. New-order transactions touch 5-15 items; each
// item is served by a remote warehouse with 2 % probability. When a
// remote warehouse is needed, the customer picks the warehouse nearest to
// its home warehouse with probability equal to the locality rate,
// otherwise the next nearest, and so on — modelling a wholesale supplier
// that ships a missing item from the closest stocked warehouse.
//
// For latency experiments the paper uses a global-only variant: only
// new-order and payment transactions, always spanning two or more
// warehouses, and messages addressed to more than three warehouses are
// excluded (they are vanishingly rare under TPC-C's 2 % rule).
package gtpcc

import (
	"fmt"
	"math/rand"

	"flexcast/amcast"
)

// TxType enumerates gTPC-C transaction types.
type TxType uint8

const (
	// NewOrder is the TPC-C new-order transaction (45 %).
	NewOrder TxType = iota + 1
	// Payment is the TPC-C payment transaction (43 %).
	Payment
	// OrderStatus is the TPC-C order-status transaction (4 %, local).
	OrderStatus
	// Delivery is the TPC-C delivery transaction (4 %, local).
	Delivery
	// StockLevel is the TPC-C stock-level transaction (4 %, local).
	StockLevel
)

// String names the transaction type.
func (t TxType) String() string {
	switch t {
	case NewOrder:
		return "new-order"
	case Payment:
		return "payment"
	case OrderStatus:
		return "order-status"
	case Delivery:
		return "delivery"
	case StockLevel:
		return "stock-level"
	default:
		return fmt.Sprintf("TxType(%d)", uint8(t))
	}
}

// Tx is one generated transaction.
type Tx struct {
	Type TxType
	// Dst is the destination warehouse set (sorted, home included).
	Dst []amcast.GroupID
	// Items is the new-order item count (0 for other types).
	Items int
	// PayloadSize is the request size in bytes.
	PayloadSize int
}

// Config parameterizes a generator.
type Config struct {
	// Home is the client's home warehouse (its nearest group).
	Home amcast.GroupID
	// Nearest lists the other warehouses ordered by increasing distance
	// from Home (wan.NearestOrder).
	Nearest []amcast.GroupID
	// Locality is the locality rate (e.g. 0.90, 0.95, 0.99): the
	// probability that a remote pick takes the next-nearest warehouse in
	// the walk down Nearest.
	Locality float64
	// GlobalOnly restricts the mix to new-order and payment and forces
	// every transaction to span at least two warehouses (the paper's
	// latency workloads).
	GlobalOnly bool
	// MaxDst drops transactions addressed to more destinations (paper:
	// 3). Zero means 3.
	MaxDst int
}

// Gen generates gTPC-C transactions for one client. Not safe for
// concurrent use; give each client its own Gen and seed.
type Gen struct {
	cfg Config
	rng *rand.Rand

	// remotePayments forces Payment transactions remote in GlobalOnly
	// mode; in the full mix TPC-C pays a remote customer 15 % of the time.
	remoteRate float64
}

// New builds a generator. The rng must be private to this generator.
func New(cfg Config, rng *rand.Rand) (*Gen, error) {
	if cfg.Home == amcast.NoGroup {
		return nil, fmt.Errorf("gtpcc: missing home warehouse")
	}
	if len(cfg.Nearest) == 0 {
		return nil, fmt.Errorf("gtpcc: empty nearest-warehouse order")
	}
	for _, g := range cfg.Nearest {
		if g == cfg.Home {
			return nil, fmt.Errorf("gtpcc: home warehouse %d in nearest order", g)
		}
	}
	if cfg.Locality <= 0 || cfg.Locality > 1 {
		return nil, fmt.Errorf("gtpcc: locality rate %v outside (0,1]", cfg.Locality)
	}
	if cfg.MaxDst == 0 {
		cfg.MaxDst = 3
	}
	remoteRate := 0.15 // TPC-C: 15 % of payments hit a remote warehouse
	if cfg.GlobalOnly {
		remoteRate = 1
	}
	return &Gen{cfg: cfg, rng: rng, remoteRate: remoteRate}, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config, rng *rand.Rand) *Gen {
	g, err := New(cfg, rng)
	if err != nil {
		panic(err)
	}
	return g
}

// Next generates the next transaction.
func (g *Gen) Next() Tx {
	for {
		tx := g.gen()
		if len(tx.Dst) > g.cfg.MaxDst {
			continue // the paper excludes >3-destination messages
		}
		if g.cfg.GlobalOnly && len(tx.Dst) < 2 {
			continue
		}
		return tx
	}
}

func (g *Gen) gen() Tx {
	roll := g.rng.Float64()
	if g.cfg.GlobalOnly {
		// Normalize new-order:payment to 45:43.
		if roll < 45.0/88.0 {
			return g.newOrder()
		}
		return g.payment()
	}
	switch {
	case roll < 0.45:
		return g.newOrder()
	case roll < 0.88:
		return g.payment()
	case roll < 0.92:
		return g.local(OrderStatus, 40)
	case roll < 0.96:
		return g.local(Delivery, 40)
	default:
		return g.local(StockLevel, 40)
	}
}

func (g *Gen) newOrder() Tx {
	items := 5 + g.rng.Intn(11) // uniform in [5,15]
	dst := []amcast.GroupID{g.cfg.Home}
	for i := 0; i < items; i++ {
		if g.rng.Float64() < 0.02 { // TPC-C: 2 % of items are remote
			dst = append(dst, g.pickRemote())
		}
	}
	if g.cfg.GlobalOnly && len(dst) == 1 {
		dst = append(dst, g.pickRemote())
	}
	dst = amcast.NormalizeDst(dst)
	return Tx{
		Type:        NewOrder,
		Dst:         dst,
		Items:       items,
		PayloadSize: 64 + 12*items,
	}
}

func (g *Gen) payment() Tx {
	dst := []amcast.GroupID{g.cfg.Home}
	if g.rng.Float64() < g.remoteRate {
		dst = append(dst, g.pickRemote())
	}
	dst = amcast.NormalizeDst(dst)
	return Tx{Type: Payment, Dst: dst, PayloadSize: 48}
}

func (g *Gen) local(t TxType, size int) Tx {
	return Tx{Type: t, Dst: []amcast.GroupID{g.cfg.Home}, PayloadSize: size}
}

// pickRemote walks the nearest-warehouse order: the nearest warehouse is
// chosen with probability Locality, otherwise the next nearest, and so on;
// the walk stops at the farthest warehouse (§5.3).
func (g *Gen) pickRemote() amcast.GroupID {
	for _, w := range g.cfg.Nearest[:len(g.cfg.Nearest)-1] {
		if g.rng.Float64() < g.cfg.Locality {
			return w
		}
	}
	return g.cfg.Nearest[len(g.cfg.Nearest)-1]
}
