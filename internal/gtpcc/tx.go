package gtpcc

import (
	"encoding/binary"
	"fmt"

	"flexcast/amcast"
)

// Transaction payload encoding. Execute-mode deployments (internal/store)
// carry the full transaction detail in the multicast payload so every
// destination warehouse decodes the same transaction and executes its
// shard-local portion deterministically.
//
// Layout (all integers unsigned varints unless noted):
//
//	type(1 byte) | home | per-type fields | zero padding
//	new-order:   customer | rollback(1 byte) | nLines | (item supply qty)...
//	payment:     customer | custWarehouse | amount
//	order-status: customer
//	delivery:    (no fields)
//	stock-level: threshold
//
// The encoding is padded with zero bytes up to Tx.PayloadSize so execute-
// mode runs keep the wire sizes of the paper's gTPC-C workload.

// EncodeTx serializes a transaction into a multicast payload.
func EncodeTx(tx Tx) []byte {
	buf := make([]byte, 0, tx.PayloadSize)
	buf = append(buf, byte(tx.Type))
	buf = binary.AppendUvarint(buf, uint64(uint32(tx.Home)))
	switch tx.Type {
	case NewOrder:
		buf = binary.AppendUvarint(buf, uint64(uint32(tx.Customer)))
		if tx.Rollback {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(tx.Lines)))
		for _, l := range tx.Lines {
			buf = binary.AppendUvarint(buf, uint64(uint32(l.Item)))
			buf = binary.AppendUvarint(buf, uint64(uint32(l.Supply)))
			buf = binary.AppendUvarint(buf, uint64(uint32(l.Qty)))
		}
	case Payment:
		buf = binary.AppendUvarint(buf, uint64(uint32(tx.Customer)))
		buf = binary.AppendUvarint(buf, uint64(uint32(tx.CustWarehouse)))
		buf = binary.AppendUvarint(buf, uint64(tx.Amount))
	case OrderStatus:
		buf = binary.AppendUvarint(buf, uint64(uint32(tx.Customer)))
	case Delivery:
	case StockLevel:
		buf = binary.AppendUvarint(buf, uint64(uint32(tx.Threshold)))
	}
	for len(buf) < tx.PayloadSize {
		buf = append(buf, 0)
	}
	return buf
}

// DecodeTx parses a transaction payload produced by EncodeTx. Trailing
// padding must be zero. The decoded Tx's Dst and PayloadSize are
// recomputed from the transaction detail.
func DecodeTx(buf []byte) (Tx, error) {
	var tx Tx
	if len(buf) == 0 {
		return tx, fmt.Errorf("gtpcc: empty transaction payload")
	}
	tx.Type = TxType(buf[0])
	d := txDecoder{buf: buf, off: 1}
	tx.Home = amcast.GroupID(d.uvarint32())
	switch tx.Type {
	case NewOrder:
		tx.Customer = int32(d.uvarint32())
		tx.Rollback = d.byte() != 0
		n := int(d.uvarint32())
		if n > 0 && d.err == nil {
			if n > len(buf) { // each line is at least 3 bytes
				return tx, fmt.Errorf("gtpcc: order-line count %d exceeds payload", n)
			}
			tx.Lines = make([]OrderLine, n)
			for i := range tx.Lines {
				tx.Lines[i].Item = int32(d.uvarint32())
				tx.Lines[i].Supply = amcast.GroupID(d.uvarint32())
				tx.Lines[i].Qty = int32(d.uvarint32())
			}
		}
		tx.Items = len(tx.Lines)
	case Payment:
		tx.Customer = int32(d.uvarint32())
		tx.CustWarehouse = amcast.GroupID(d.uvarint32())
		tx.Amount = int64(d.uvarint())
	case OrderStatus:
		tx.Customer = int32(d.uvarint32())
	case Delivery:
	case StockLevel:
		tx.Threshold = int32(d.uvarint32())
	default:
		return tx, fmt.Errorf("gtpcc: unknown transaction type %d", uint8(tx.Type))
	}
	if d.err != nil {
		return tx, d.err
	}
	for i := d.off; i < len(buf); i++ {
		if buf[i] != 0 {
			return tx, fmt.Errorf("gtpcc: non-zero padding at offset %d", i)
		}
	}
	tx.PayloadSize = len(buf)
	tx.Dst = tx.Involved()
	return tx, nil
}

// Involved returns the warehouses the transaction touches (sorted,
// duplicate-free): the destination set of its multicast.
func (tx Tx) Involved() []amcast.GroupID {
	dst := []amcast.GroupID{tx.Home}
	switch tx.Type {
	case NewOrder:
		for _, l := range tx.Lines {
			dst = append(dst, l.Supply)
		}
	case Payment:
		if tx.CustWarehouse != amcast.NoGroup {
			dst = append(dst, tx.CustWarehouse)
		}
	}
	return amcast.NormalizeDst(dst)
}

// txDecoder is a cursor over an encoded transaction payload.
type txDecoder struct {
	buf []byte
	off int
	err error
}

func (d *txDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("gtpcc: truncated transaction payload at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *txDecoder) uvarint32() uint32 {
	v := d.uvarint()
	if d.err == nil && v > 0xFFFFFFFF {
		d.err = fmt.Errorf("gtpcc: 32-bit field overflow (%d)", v)
		return 0
	}
	return uint32(v)
}

func (d *txDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = fmt.Errorf("gtpcc: truncated transaction payload at offset %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}
