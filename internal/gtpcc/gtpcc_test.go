package gtpcc

import (
	"math"
	"math/rand"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/wan"
)

func gen(t *testing.T, home amcast.GroupID, locality float64, globalOnly bool, seed int64) *Gen {
	t.Helper()
	g, err := New(Config{
		Home:       home,
		Nearest:    wan.NearestOrder(home),
		Locality:   locality,
		GlobalOnly: globalOnly,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	near := wan.NearestOrder(1)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"missing home", Config{Nearest: near, Locality: 0.9}},
		{"empty nearest", Config{Home: 1, Locality: 0.9}},
		{"home in nearest", Config{Home: 2, Nearest: near, Locality: 0.9}},
		{"zero locality", Config{Home: 1, Nearest: near}},
		{"locality above one", Config{Home: 1, Nearest: near, Locality: 1.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg, rng); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestFullMixFractions(t *testing.T) {
	g := gen(t, 1, 0.95, false, 42)
	counts := make(map[TxType]int)
	const n = 200_000
	for i := 0; i < n; i++ {
		counts[g.Next().Type]++
	}
	want := map[TxType]float64{
		NewOrder: 0.45, Payment: 0.43,
		OrderStatus: 0.04, Delivery: 0.04, StockLevel: 0.04,
	}
	for typ, frac := range want {
		got := float64(counts[typ]) / n
		if math.Abs(got-frac) > 0.01 {
			t.Errorf("%s fraction = %.3f, want %.2f±0.01", typ, got, frac)
		}
	}
}

func TestGlobalOnlyMix(t *testing.T) {
	g := gen(t, 6, 0.90, true, 7)
	counts := make(map[TxType]int)
	const n = 50_000
	for i := 0; i < n; i++ {
		tx := g.Next()
		counts[tx.Type]++
		if len(tx.Dst) < 2 {
			t.Fatal("global-only produced a local transaction")
		}
		if len(tx.Dst) > 3 {
			t.Fatalf("transaction with %d destinations not excluded", len(tx.Dst))
		}
	}
	if counts[OrderStatus]+counts[Delivery]+counts[StockLevel] != 0 {
		t.Fatal("global-only mix contains local transaction types")
	}
	ratio := float64(counts[NewOrder]) / float64(counts[NewOrder]+counts[Payment])
	if math.Abs(ratio-45.0/88.0) > 0.01 {
		t.Errorf("new-order ratio = %.3f, want %.3f", ratio, 45.0/88.0)
	}
}

func TestDstAlwaysContainsHomeSortedUnique(t *testing.T) {
	g := gen(t, 9, 0.95, true, 3)
	for i := 0; i < 20_000; i++ {
		tx := g.Next()
		foundHome := false
		for j, d := range tx.Dst {
			if d == 9 {
				foundHome = true
			}
			if j > 0 && tx.Dst[j-1] >= d {
				t.Fatalf("dst not sorted unique: %v", tx.Dst)
			}
		}
		if !foundHome {
			t.Fatalf("home missing from dst: %v", tx.Dst)
		}
	}
}

func TestLocalityConcentratesOnNearestWarehouse(t *testing.T) {
	for _, loc := range []float64{0.90, 0.95, 0.99} {
		g := gen(t, 1, loc, true, 11)
		nearest := wan.NearestOrder(1)[0]
		var remote, toNearest int
		for i := 0; i < 50_000; i++ {
			tx := g.Next()
			for _, d := range tx.Dst {
				if d == 1 {
					continue
				}
				remote++
				if d == nearest {
					toNearest++
				}
			}
		}
		got := float64(toNearest) / float64(remote)
		if math.Abs(got-loc) > 0.02 {
			t.Errorf("locality %.2f: nearest-warehouse fraction = %.3f", loc, got)
		}
	}
}

func TestHigherLocalityMeansNearerPicks(t *testing.T) {
	rank := func(home amcast.GroupID, loc float64) float64 {
		g := gen(t, home, loc, true, 5)
		near := wan.NearestOrder(home)
		pos := make(map[amcast.GroupID]int, len(near))
		for i, w := range near {
			pos[w] = i
		}
		sum, n := 0.0, 0
		for i := 0; i < 30_000; i++ {
			for _, d := range g.Next().Dst {
				if d != home {
					sum += float64(pos[d])
					n++
				}
			}
		}
		return sum / float64(n)
	}
	if rank(6, 0.99) >= rank(6, 0.90) {
		t.Error("higher locality did not reduce mean warehouse distance rank")
	}
}

func TestNewOrderItems(t *testing.T) {
	g := gen(t, 2, 0.95, false, 13)
	for i := 0; i < 50_000; i++ {
		tx := g.Next()
		if tx.Type != NewOrder {
			continue
		}
		if tx.Items < 5 || tx.Items > 15 {
			t.Fatalf("new-order items = %d, want 5..15", tx.Items)
		}
		if tx.PayloadSize != 64+12*tx.Items {
			t.Fatalf("payload size %d for %d items", tx.PayloadSize, tx.Items)
		}
	}
}

func TestPaymentRemoteRateFullMix(t *testing.T) {
	g := gen(t, 3, 0.95, false, 17)
	var payments, remote int
	for i := 0; i < 100_000; i++ {
		tx := g.Next()
		if tx.Type != Payment {
			continue
		}
		payments++
		if len(tx.Dst) > 1 {
			remote++
		}
	}
	got := float64(remote) / float64(payments)
	if math.Abs(got-0.15) > 0.01 {
		t.Errorf("remote payment rate = %.3f, want 0.15±0.01", got)
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	g1 := gen(t, 4, 0.9, true, 99)
	g2 := gen(t, 4, 0.9, true, 99)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Type != b.Type || len(a.Dst) != len(b.Dst) {
			t.Fatal("same seed produced different transactions")
		}
		for j := range a.Dst {
			if a.Dst[j] != b.Dst[j] {
				t.Fatal("same seed produced different destinations")
			}
		}
	}
}

func TestTxTypeString(t *testing.T) {
	if NewOrder.String() != "new-order" || TxType(99).String() != "TxType(99)" {
		t.Fatal("TxType.String wrong")
	}
}
