package gtpcc

import (
	"reflect"
	"testing"

	"flexcast/amcast"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := gen(t, 3, 0.95, false, 21)
	for i := 0; i < 20_000; i++ {
		tx := g.Next()
		buf := EncodeTx(tx)
		got, err := DecodeTx(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", tx.Type, err)
		}
		got.PayloadSize = tx.PayloadSize // decode reports the wire size
		if len(got.Lines) == 0 {
			got.Lines = nil
		}
		want := tx
		if len(want.Lines) == 0 {
			want.Lines = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip:\n got %+v\nwant %+v", tx.Type, got, want)
		}
	}
}

func TestEncodedSizeMatchesNominalPayloadSize(t *testing.T) {
	g := gen(t, 8, 0.95, false, 5)
	for i := 0; i < 5_000; i++ {
		tx := g.Next()
		if got := len(EncodeTx(tx)); got != tx.PayloadSize {
			t.Fatalf("%s: encoded %d bytes, nominal %d", tx.Type, got, tx.PayloadSize)
		}
	}
}

func TestInvolvedMatchesDst(t *testing.T) {
	g := gen(t, 1, 0.9, false, 33)
	for i := 0; i < 20_000; i++ {
		tx := g.Next()
		if !reflect.DeepEqual(tx.Involved(), tx.Dst) {
			t.Fatalf("%s: Involved() = %v, Dst = %v", tx.Type, tx.Involved(), tx.Dst)
		}
	}
}

func TestNewOrderLinesConsistent(t *testing.T) {
	g := gen(t, 6, 0.95, true, 9)
	for i := 0; i < 20_000; i++ {
		tx := g.Next()
		if tx.Type != NewOrder {
			continue
		}
		if len(tx.Lines) != tx.Items {
			t.Fatalf("lines %d != items %d", len(tx.Lines), tx.Items)
		}
		for _, l := range tx.Lines {
			if l.Item < 0 || l.Item >= NumItems || l.Qty < 1 || l.Qty > 10 {
				t.Fatalf("invalid order line %+v", l)
			}
			if !tx.HasDstWarehouse(l.Supply) {
				t.Fatalf("line supply %d not in dst %v", l.Supply, tx.Dst)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{99},                       // unknown type
		{byte(Payment), 0x01},      // truncated
		{byte(StockLevel), 1, 255}, // truncated varint... 255 alone is a continuation byte
	}
	for _, buf := range bad {
		if _, err := DecodeTx(buf); err == nil {
			t.Fatalf("DecodeTx(%v) succeeded, want error", buf)
		}
	}
	// Non-zero padding is rejected.
	tx := Tx{Type: Delivery, Home: 2, PayloadSize: 40}
	buf := EncodeTx(tx)
	buf[len(buf)-1] = 7
	if _, err := DecodeTx(buf); err == nil {
		t.Fatal("non-zero padding accepted")
	}
}

func TestDecodeDefendsAgainstHugeLineCounts(t *testing.T) {
	buf := []byte{byte(NewOrder), 1, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	if _, err := DecodeTx(buf); err == nil {
		t.Fatal("huge order-line count accepted")
	}
}

// HasDstWarehouse reports whether g is one of the transaction's
// destinations (test helper mirroring amcast.Message.HasDst).
func (tx Tx) HasDstWarehouse(g amcast.GroupID) bool {
	for _, d := range tx.Dst {
		if d == g {
			return true
		}
	}
	return false
}

func TestPaymentDetail(t *testing.T) {
	g := gen(t, 4, 0.9, false, 61)
	for i := 0; i < 20_000; i++ {
		tx := g.Next()
		if tx.Type != Payment {
			continue
		}
		if tx.Amount < 1 || tx.Amount > MaxPayment {
			t.Fatalf("payment amount %d outside [1,%d]", tx.Amount, MaxPayment)
		}
		if tx.Customer < 0 || tx.Customer >= NumCustomers {
			t.Fatalf("payment customer %d", tx.Customer)
		}
		if tx.CustWarehouse == tx.Home && len(tx.Dst) != 1 {
			t.Fatalf("local payment with dst %v", tx.Dst)
		}
		if tx.CustWarehouse != tx.Home && len(tx.Dst) != 2 {
			t.Fatalf("remote payment with dst %v", tx.Dst)
		}
	}
}
