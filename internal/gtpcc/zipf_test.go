package gtpcc

import (
	"math/rand"
	"reflect"
	"testing"

	"flexcast/amcast"
	"flexcast/internal/wan"
)

func zipfGen(t *testing.T, s float64, seed int64) *Gen {
	t.Helper()
	g, err := New(Config{
		Home:     1,
		Nearest:  wan.NearestOrder(1),
		Locality: 0.95,
		Zipf:     s,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestZipfValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range []float64{0.5, 1.0, -2} {
		_, err := New(Config{
			Home: 1, Nearest: wan.NearestOrder(1), Locality: 0.95, Zipf: s,
		}, rng)
		if err == nil {
			t.Fatalf("zipf parameter %v accepted", s)
		}
	}
}

// TestZipfSkewsHotRows verifies the contention skew: with s = 1.5 the
// hottest item and customer must absorb far more than the uniform share
// of picks, and remote destinations must concentrate on the nearest
// warehouse.
func TestZipfSkewsHotRows(t *testing.T) {
	g := zipfGen(t, 1.5, 7)
	items := make(map[int32]int)
	custs := make(map[int32]int)
	dests := make(map[amcast.GroupID]int)
	nearest := wan.NearestOrder(1)[0]
	const n = 4000
	remote := 0
	for i := 0; i < n; i++ {
		tx := g.Next()
		if tx.Type == NewOrder {
			for _, l := range tx.Lines {
				items[l.Item]++
				if l.Supply != g.cfg.Home {
					dests[l.Supply]++
					remote++
				}
			}
		}
		if tx.Type == NewOrder || tx.Type == Payment || tx.Type == OrderStatus {
			custs[tx.Customer]++
		}
	}
	totalItems := 0
	for _, c := range items {
		totalItems += c
	}
	// Uniform would give item 0 about 1 % of picks; Zipf(1.5) gives a
	// large multiple. Use a conservative 5x threshold.
	if frac := float64(items[0]) / float64(totalItems); frac < 0.05 {
		t.Fatalf("item 0 drew %.3f of picks, want the Zipf head (>= 0.05)", frac)
	}
	if frac := float64(custs[0]) / float64(n); frac < 0.10 {
		t.Fatalf("customer 0 drew %.3f of picks, want the Zipf head", frac)
	}
	if remote > 0 {
		if frac := float64(dests[nearest]) / float64(remote); frac < 0.5 {
			t.Fatalf("nearest warehouse drew %.3f of remote picks, want the Zipf head", frac)
		}
	}
}

// TestZipfDeterministic: identical seeds must reproduce the identical
// transaction and read streams — the property every harness (loadgen
// A/B, chaos replay) relies on.
func TestZipfDeterministic(t *testing.T) {
	a, b := zipfGen(t, 1.3, 42), zipfGen(t, 1.3, 42)
	for i := 0; i < 200; i++ {
		ta, tb := a.Next(), b.Next()
		if !reflect.DeepEqual(ta, tb) {
			t.Fatalf("tx %d diverged under identical seeds:\n%+v\n%+v", i, ta, tb)
		}
		ra, rb := a.NextRead(), b.NextRead()
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("read %d diverged under identical seeds:\n%+v\n%+v", i, ra, rb)
		}
	}
}

// TestNextRead verifies the read stream: read-only types only, local to
// the home warehouse, both types present.
func TestNextRead(t *testing.T) {
	g := gen(t, 3, 0.95, false, 11)
	seen := make(map[TxType]int)
	for i := 0; i < 200; i++ {
		tx := g.NextRead()
		if tx.Type != OrderStatus && tx.Type != StockLevel {
			t.Fatalf("NextRead produced %s", tx.Type)
		}
		if len(tx.Dst) != 1 || tx.Dst[0] != 3 || tx.Home != 3 {
			t.Fatalf("read not local to home: %+v", tx)
		}
		seen[tx.Type]++
	}
	if seen[OrderStatus] == 0 || seen[StockLevel] == 0 {
		t.Fatalf("read mix missing a type: %v", seen)
	}
}
