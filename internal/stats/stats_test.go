package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func recorderOf(vs ...float64) *Recorder {
	r := &Recorder{}
	for _, v := range vs {
		r.Add(v)
	}
	return r
}

func TestPercentileNearestRank(t *testing.T) {
	r := recorderOf(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	tests := []struct {
		p    float64
		want float64
	}{
		{10, 10},
		{50, 50},
		{90, 90},
		{95, 100},
		{99, 100},
		{100, 100},
	}
	for _, tt := range tests {
		if got := r.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileSingleSample(t *testing.T) {
	r := recorderOf(42)
	for _, p := range []float64{1, 50, 99} {
		if got := r.Percentile(p); got != 42 {
			t.Errorf("Percentile(%v) = %v, want 42", p, got)
		}
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := &Recorder{}
	for name, f := range map[string]func() float64{
		"Percentile": func() float64 { return r.Percentile(50) },
		"Mean":       r.Mean,
		"Std":        r.Std,
		"Min":        r.Min,
		"Max":        r.Max,
	} {
		if !math.IsNaN(f()) {
			t.Errorf("%s on empty recorder is not NaN", name)
		}
	}
	if got := r.CDF(10); got != nil {
		t.Errorf("CDF on empty recorder = %v", got)
	}
}

func TestMeanStd(t *testing.T) {
	r := recorderOf(2, 4, 4, 4, 5, 5, 7, 9)
	if got := r.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := r.Std(); got != 2 {
		t.Errorf("Std = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	r := recorderOf(5, -1, 3)
	if r.Min() != -1 || r.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := &Recorder{}
	for i := 0; i < 1000; i++ {
		r.Add(rng.Float64() * 100)
	}
	pts := r.CDF(50)
	if len(pts) != 50 {
		t.Fatalf("CDF returned %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].V < pts[i-1].V || pts[i].F < pts[i-1].F {
			t.Fatalf("CDF not monotone at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
	last := pts[len(pts)-1]
	if last.F != 1 || last.V != r.Max() {
		t.Fatalf("CDF does not end at (max, 1): %+v", last)
	}
}

func TestCDFFewerSamplesThanPoints(t *testing.T) {
	r := recorderOf(1, 2)
	pts := r.CDF(10)
	if len(pts) != 2 {
		t.Fatalf("CDF = %v, want 2 points", pts)
	}
}

func TestAddAfterPercentileKeepsSorted(t *testing.T) {
	r := recorderOf(3, 1)
	if r.Percentile(50) != 1 {
		t.Fatal("median of {1,3} wrong")
	}
	r.Add(0)
	if got := r.Min(); got != 0 {
		t.Fatalf("Min after late Add = %v", got)
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(vs []float64, p float64) bool {
		if len(vs) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 100) + 0.5
		r := recorderOf(vs...)
		got := r.Percentile(p)
		return got >= r.Min() && got <= r.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileRowFormat(t *testing.T) {
	r := recorderOf(1000, 2000, 3000)
	row := r.PercentileRow(1000)
	if row == "" || row == "      -       -       -" {
		t.Fatalf("row = %q", row)
	}
	if got := (&Recorder{}).PercentileRow(1000); got != "      -       -       -" {
		t.Fatalf("empty row = %q", got)
	}
}

func TestSparkline(t *testing.T) {
	r := recorderOf(1, 2, 3, 4, 5, 6, 7, 8)
	line := r.Sparkline(8)
	if line == "" {
		t.Fatal("empty sparkline")
	}
	if (&Recorder{}).Sparkline(8) != "" {
		t.Fatal("sparkline of empty recorder not empty")
	}
	// Constant samples must not divide by zero.
	if recorderOf(5, 5, 5).Sparkline(3) == "" {
		t.Fatal("constant sparkline empty")
	}
}
