package stats

import (
	"math"
	"testing"
)

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {1, 40},
		{0.5, 25}, // halfway between the middle pair
		{0.25, 17.5} /* 0.75 of the way from 10 to 20 */, {0.75, 32.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v, %v) = %v, want %v", xs, c.q, got, c.want)
		}
	}
	// The input must not be reordered.
	if xs[0] != 10 || xs[3] != 40 {
		t.Fatalf("Quantile reordered its input: %v", xs)
	}
}

func TestMedianOddEvenSingleton(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if got := Median([]float64{7}); got != 7 {
		t.Errorf("singleton median = %v, want 7", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median not NaN")
	}
}

func TestQuartilesAndIQR(t *testing.T) {
	// 1..9: quartiles land exactly on order statistics.
	xs := []float64{9, 8, 7, 6, 5, 4, 3, 2, 1}
	q1, q2, q3 := Quartiles(xs)
	if q1 != 3 || q2 != 5 || q3 != 7 {
		t.Fatalf("quartiles = %v %v %v, want 3 5 7", q1, q2, q3)
	}
	if got := IQR(xs); got != 4 {
		t.Fatalf("IQR = %v, want 4", got)
	}
	// Identical repeats: zero spread.
	if got := IQR([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("constant IQR = %v, want 0", got)
	}
	// Tiny repeat counts must not collapse onto the extremes the way
	// nearest-rank would: for {10, 20, 30} the band is half the range.
	if got := IQR([]float64{10, 20, 30}); got != 10 {
		t.Fatalf("3-repeat IQR = %v, want 10", got)
	}
	if !math.IsNaN(IQR(nil)) {
		t.Error("empty IQR not NaN")
	}
}

func TestRecorderMedianIQR(t *testing.T) {
	var r Recorder
	for _, v := range []float64{4, 1, 3, 2} {
		r.Add(v)
	}
	if got := r.Median(); got != 2.5 {
		t.Errorf("Recorder median = %v, want 2.5", got)
	}
	if got := r.IQR(); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("Recorder IQR = %v, want 1.5", got)
	}
}
