// Package stats provides the latency statistics the paper reports:
// percentiles (Tables 2 and 3), empirical CDFs (Figures 5 and 7), and
// mean/standard deviation (Table 4).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Recorder accumulates samples (latencies in microseconds, overheads, …).
// The zero value is ready to use.
type Recorder struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (r *Recorder) Add(v float64) {
	r.samples = append(r.samples, v)
	r.sorted = false
}

// Len returns the number of samples.
func (r *Recorder) Len() int { return len(r.samples) }

func (r *Recorder) sort() {
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using nearest-rank
// on the sorted samples. It returns NaN when empty.
func (r *Recorder) Percentile(p float64) float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	r.sort()
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(r.samples) {
		rank = len(r.samples)
	}
	return r.samples[rank-1]
}

// Mean returns the arithmetic mean, or NaN when empty.
func (r *Recorder) Mean() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range r.samples {
		sum += v
	}
	return sum / float64(len(r.samples))
}

// Std returns the population standard deviation, or NaN when empty.
func (r *Recorder) Std() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	m := r.Mean()
	sum := 0.0
	for _, v := range r.samples {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(r.samples)))
}

// Min returns the smallest sample, or NaN when empty.
func (r *Recorder) Min() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	r.sort()
	return r.samples[0]
}

// Max returns the largest sample, or NaN when empty.
func (r *Recorder) Max() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	r.sort()
	return r.samples[len(r.samples)-1]
}

// CDFPoint is one point of an empirical CDF: fraction F of samples <= V.
type CDFPoint struct {
	V float64
	F float64
}

// CDF returns the empirical CDF downsampled to at most points entries
// (evenly spaced in rank), always including the maximum.
func (r *Recorder) CDF(points int) []CDFPoint {
	n := len(r.samples)
	if n == 0 || points <= 0 {
		return nil
	}
	r.sort()
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		rank := i * n / points
		if rank < 1 {
			rank = 1
		}
		out = append(out, CDFPoint{V: r.samples[rank-1], F: float64(rank) / float64(n)})
	}
	return out
}

// PercentileRow formats the 90th/95th/99th percentiles scaled by div —
// the row format of the paper's Tables 2 and 3 (milliseconds when the
// samples are microseconds and div is 1000).
func (r *Recorder) PercentileRow(div float64) string {
	if r.Len() == 0 {
		return "      -       -       -"
	}
	return fmt.Sprintf("%7.1f %7.1f %7.1f",
		r.Percentile(90)/div, r.Percentile(95)/div, r.Percentile(99)/div)
}

// Sparkline renders the CDF as a compact ASCII curve for terminal output.
func (r *Recorder) Sparkline(width int) string {
	pts := r.CDF(width)
	if len(pts) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := pts[0].V, pts[len(pts)-1].V
	if hi <= lo {
		hi = lo + 1
	}
	var b strings.Builder
	for _, p := range pts {
		idx := int((p.V - lo) / (hi - lo) * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	return b.String()
}
