package stats

import (
	"math"
	"sort"
)

// The grid runner's repeat aggregation (cmd/flexgrid) summarizes a
// handful of repeats per cell, so these quantiles interpolate linearly
// between order statistics (the common "type 7" estimator) instead of
// using Recorder's nearest-rank: with 3–5 samples, nearest-rank
// quartiles collapse onto the extremes and the IQR noise band would be
// either zero or the full range.

// Quantile returns the q-th quantile (0 <= q <= 1) of xs by linear
// interpolation between closest ranks. It returns NaN when xs is
// empty; xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Median returns the interpolated median of xs (NaN when empty).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quartiles returns the interpolated first, second and third quartiles
// of xs (all NaN when empty).
func Quartiles(xs []float64) (q1, q2, q3 float64) {
	return Quantile(xs, 0.25), Quantile(xs, 0.5), Quantile(xs, 0.75)
}

// IQR returns the interquartile range Q3 - Q1 of xs — the grid
// runner's per-cell noise width (NaN when empty).
func IQR(xs []float64) float64 {
	q1, _, q3 := Quartiles(xs)
	return q3 - q1
}

// Median returns the interpolated median of the recorded samples
// (NaN when empty).
func (r *Recorder) Median() float64 { return Median(r.samples) }

// IQR returns the interquartile range of the recorded samples (NaN
// when empty).
func (r *Recorder) IQR() float64 { return IQR(r.samples) }
