package loadgen

import (
	"time"

	"flexcast/internal/runtime"
)

// SLOPoint is one sample of the adaptive controller's trajectory: the
// hottest node's effective operating point and queue depth at TMs
// milliseconds into the measurement window. On static runs the
// operating point is constant (the configured knobs) and only the
// depth varies.
type SLOPoint struct {
	TMs             int64 `json:"t_ms"`
	Batch           int   `json:"batch"`
	FlushIntervalUs int64 `json:"flush_interval_us"`
	QueueDepth      int   `json:"queue_depth"`
}

// SLOResult is the tail-latency service-level report (-slo-ms): how
// much of the measured window's completed work met the latency target,
// at what shed rate, and the controller trajectory that produced it.
// Goodput — throughput counting only completions within the target —
// is the section's headline: it is the number that gets WORSE when a
// system buys throughput with tail latency, which plain throughput
// cannot show.
type SLOResult struct {
	// TargetMs is the latency target the section is scored against.
	TargetMs float64 `json:"target_ms"`
	// GoodCompleted counts window completions with latency <= target;
	// Goodput is their rate. Shed transactions never complete, so they
	// are excluded by construction.
	GoodCompleted uint64  `json:"good_completed"`
	Goodput       float64 `json:"goodput_tx_s"`
	// GoodFraction is GoodCompleted over all window completions.
	GoodFraction float64 `json:"good_fraction"`
	// ShedRate is shed over offered (issued + shed): the fraction of the
	// window's offered load the admission gates refused.
	ShedRate float64 `json:"shed_rate"`
	// Sessions echoes the multiplexed session count (0: process-level
	// admission, the legacy -max-outstanding cap).
	Sessions int `json:"sessions,omitempty"`
	// Trajectory samples the controller operating point over the window.
	Trajectory []SLOPoint `json:"trajectory,omitempty"`
}

// buildSLO scores one window against a latency target. It is pure —
// counters in, section out — so the verdict on a synthetic trace with
// known goodput is testable without running a deployment.
func buildSLO(targetMs float64, good, completed, issued, shed uint64, windowSecs float64, traj []SLOPoint) *SLOResult {
	s := &SLOResult{
		TargetMs:      targetMs,
		GoodCompleted: good,
		Trajectory:    traj,
	}
	if windowSecs > 0 {
		s.Goodput = float64(good) / windowSecs
	}
	if completed > 0 {
		s.GoodFraction = float64(good) / float64(completed)
	}
	if offered := issued + shed; offered > 0 {
		s.ShedRate = float64(shed) / float64(offered)
	}
	return s
}

// trajectoryEvery is the controller-trajectory sampling period: coarse
// enough to be free, fine enough that a 5s window yields ~100 points.
const trajectoryEvery = 50 * time.Millisecond

// sampleTrajectory records the operating point of the deepest-queued
// node every trajectoryEvery until stop closes, then delivers the
// samples on out. The deepest queue is the node the controller story
// is about: under skewed load (an LCA hot spot) it is the node whose
// batch rides the ceiling while idle nodes sit at the floor.
func sampleTrajectory(nodes []*runtime.Node, start time.Time, stop <-chan struct{}, out chan<- []SLOPoint) {
	var points []SLOPoint
	t := time.NewTicker(trajectoryEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			out <- points
			return
		case now := <-t.C:
			hot, depth := nodes[0], -1
			for _, n := range nodes {
				if d := n.QueueLen(); d > depth {
					hot, depth = n, d
				}
			}
			batch, interval := hot.Operating()
			points = append(points, SLOPoint{
				TMs:             now.Sub(start).Milliseconds(),
				Batch:           batch,
				FlushIntervalUs: interval.Microseconds(),
				QueueDepth:      depth,
			})
		}
	}
}
