package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"flexcast/internal/telemetry"
)

// Schema identifies the BENCH_runtime.json layout; bump on breaking
// changes so downstream tooling can dispatch.
const Schema = "flexload/v1"

// ReportConfig is the run configuration echoed into the report.
type ReportConfig struct {
	Transport       string  `json:"transport"`
	Protocol        string  `json:"protocol"`
	Groups          int     `json:"groups"`
	Clients         int     `json:"clients"`
	Workers         int     `json:"workers"`
	Mode            string  `json:"mode"` // "closed" or "open"
	RatePerClient   float64 `json:"rate_per_client,omitempty"`
	WarmupSecs      float64 `json:"warmup_s"`
	DurationSecs    float64 `json:"duration_s"`
	MaxBatch        int     `json:"max_batch"`
	FlushIntervalUS int64   `json:"flush_interval_us"`
	PayloadBytes    int     `json:"payload_bytes,omitempty"`
	Locality        float64 `json:"locality"`
	GlobalOnly      bool    `json:"global_only"`
	Seed            int64   `json:"seed"`
	// Execute marks store-execution runs; StoreSeed is the population
	// seed they used.
	Execute   bool  `json:"execute,omitempty"`
	StoreSeed int64 `json:"store_seed,omitempty"`
	// ReadPct is the fast-path read mix in percent (0 = writes only).
	ReadPct float64 `json:"read_pct,omitempty"`
	// Zipf is the workload's Zipfian skew parameter (0 = uniform).
	Zipf float64 `json:"zipf_s,omitempty"`
	// Replicas is the smr-style replication degree (1 = unreplicated);
	// FollowerReads marks runs that served reads from lease-holding
	// follower replicas (off: the leader-only remote-read baseline);
	// ReadWorkers is the number of dedicated read-only sessions per
	// client process.
	Replicas      int  `json:"replicas,omitempty"`
	FollowerReads bool `json:"follower_reads,omitempty"`
	ReadWorkers   int  `json:"read_workers,omitempty"`
	// Durable marks runs on the durable WAL+snapshot backend;
	// DurableSnapshotEvery/DurableFsyncEvery are its cadences (0: the
	// backend defaults, 256 and 64).
	Durable              bool `json:"durable,omitempty"`
	DurableSnapshotEvery int  `json:"durable_snapshot_every,omitempty"`
	DurableFsyncEvery    int  `json:"durable_fsync_every,omitempty"`
	// TraceSample is the lifecycle-tracing interval (1 in N writes;
	// 0 = tracing off).
	TraceSample int `json:"trace_sample,omitempty"`
	// Adaptive marks runs under the adaptive batching controller (the
	// batch/flush-interval knobs above are then the ceiling, not the
	// operating point). SLOTargetMs is the -slo-ms latency target;
	// Sessions the multiplexed virtual-session count with its
	// per-session admission knobs.
	Adaptive           bool    `json:"adaptive,omitempty"`
	SLOTargetMs        float64 `json:"slo_target_ms,omitempty"`
	Sessions           int     `json:"sessions,omitempty"`
	SessionOutstanding int     `json:"session_outstanding,omitempty"`
	SessionBurst       int     `json:"session_burst,omitempty"`
}

// Report is the serialized benchmark outcome (BENCH_runtime.json).
type Report struct {
	Schema        string       `json:"schema"`
	GeneratedUnix int64        `json:"generated_unix"`
	Config        ReportConfig `json:"config"`
	Results       *Result      `json:"results"`
	// Baseline holds the -batch=1 run when the benchmark ran in compare
	// mode, and SpeedupVsUnbatched its throughput ratio.
	Baseline           *Result `json:"baseline,omitempty"`
	SpeedupVsUnbatched float64 `json:"speedup_vs_unbatched,omitempty"`
	// Variants holds the A/B companion runs of flexload -ab, keyed by
	// which knob was flipped: "no_reads" (same config, read mix off)
	// plus the pooling pair, always measured over TCP where the codec
	// pool actually sits — "no_pool"/"pool" when the primary run is
	// itself TCP (whichever side the primary did not measure), or
	// "tcp_pool" and "tcp_no_pool" when the primary is in-memory.
	Variants map[string]*Result `json:"variants,omitempty"`
	// ReadWriteP50Ratio is write p50 / read p50 on read-mix runs (read
	// p50 clamped to at least 1µs) — the headline fast-path gap.
	ReadWriteP50Ratio float64 `json:"read_write_p50_ratio,omitempty"`
}

// reportConfig converts a run Config.
func reportConfig(cfg Config) ReportConfig {
	mode := "closed"
	if cfg.Rate > 0 {
		mode = "open"
	}
	// cfg arrives filled (NewReport normalizes), so FlushInterval and
	// every other default are already the effective values.
	flush := cfg.FlushInterval
	rc := ReportConfig{
		Transport:       cfg.Transport,
		Protocol:        cfg.Protocol,
		Groups:          cfg.Groups,
		Clients:         cfg.Clients,
		Workers:         cfg.Workers,
		Mode:            mode,
		RatePerClient:   cfg.Rate,
		WarmupSecs:      cfg.Warmup.Seconds(),
		DurationSecs:    cfg.Duration.Seconds(),
		MaxBatch:        cfg.MaxBatch,
		FlushIntervalUS: flush.Microseconds(),
		PayloadBytes:    cfg.PayloadSize,
		Locality:        cfg.Locality,
		GlobalOnly:      cfg.GlobalOnly,
		Seed:            cfg.Seed,
		Execute:         cfg.Execute,
	}
	if cfg.Execute {
		rc.StoreSeed = cfg.StoreSeed
	}
	rc.ReadPct = cfg.ReadPct
	rc.Zipf = cfg.Zipf
	if cfg.Replicas > 1 {
		rc.Replicas = cfg.Replicas
		rc.FollowerReads = cfg.FollowerReads
	}
	rc.ReadWorkers = cfg.ReadWorkers
	if cfg.Durable {
		rc.Durable = true
		rc.DurableSnapshotEvery = cfg.DurableSnapshotEvery
		rc.DurableFsyncEvery = cfg.DurableFsyncEvery
	}
	if cfg.TraceSample > 0 {
		rc.TraceSample = cfg.TraceSample // negative = disabled: omit
	}
	rc.Adaptive = cfg.Adaptive
	rc.SLOTargetMs = cfg.SLOMs
	if cfg.Sessions > 0 {
		rc.Sessions = cfg.Sessions
		rc.SessionOutstanding = cfg.SessionOutstanding
		rc.SessionBurst = cfg.SessionBurst
	}
	return rc
}

// NewReport assembles a report from one measured run.
func NewReport(cfg Config, res *Result) *Report {
	if err := cfg.fill(); err != nil {
		// cfg was validated by Run already; fill here only normalizes.
		_ = err
	}
	rep := &Report{
		Schema:        Schema,
		GeneratedUnix: time.Now().Unix(),
		Config:        reportConfig(cfg),
		Results:       res,
	}
	if res.ReadLatency != nil && res.Reads > 0 {
		readP50 := res.ReadLatency.P50
		if readP50 < 1 {
			readP50 = 1 // sub-microsecond reads: clamp, never divide by zero
		}
		rep.ReadWriteP50Ratio = float64(res.Latency.P50) / float64(readP50)
	}
	return rep
}

// WithBaseline attaches an unbatched baseline run.
func (r *Report) WithBaseline(base *Result) *Report {
	r.Baseline = base
	if base != nil && base.Throughput > 0 {
		r.SpeedupVsUnbatched = r.Results.Throughput / base.Throughput
	}
	return r
}

// WithVariant attaches one A/B companion run under its label.
func (r *Report) WithVariant(label string, res *Result) *Report {
	if r.Variants == nil {
		r.Variants = make(map[string]*Result)
	}
	r.Variants[label] = res
	return r
}

// WriteFile serializes the report (indented, trailing newline).
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ValidateFile parses a report file and sanity-checks it: schema match,
// plausible throughput, latency ordering, batching invariants. The CI
// benchmark smoke job gates on it.
func ValidateFile(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("loadgen: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	if r.Results == nil {
		return nil, fmt.Errorf("loadgen: %s: missing results", path)
	}
	if err := validateResult("results", r.Results); err != nil {
		return nil, err
	}
	if r.Config.ReadPct > 0 || r.Config.ReadWorkers > 0 {
		if r.Results.Reads == 0 || r.Results.ReadLatency == nil {
			return nil, fmt.Errorf("loadgen: %s: read workload configured but no reads measured", path)
		}
	}
	if r.Config.FollowerReads {
		var followerServed uint64
		for i, n := range r.Results.ReadsPerReplica {
			if i >= 1 {
				followerServed += n
			}
		}
		if followerServed == 0 {
			return nil, fmt.Errorf("loadgen: %s: follower reads configured but every read fell back to the serving node", path)
		}
	}
	if r.Baseline != nil {
		if err := validateResult("baseline", r.Baseline); err != nil {
			return nil, err
		}
	}
	for label, v := range r.Variants {
		if err := validateResult("variant "+label, v); err != nil {
			return nil, err
		}
	}
	return &r, nil
}

func validateResult(label string, res *Result) error {
	if res.Completed == 0 || res.Throughput <= 0 {
		return fmt.Errorf("loadgen: %s: no completed transactions", label)
	}
	if res.Issued == 0 {
		return fmt.Errorf("loadgen: %s: nothing issued in the measurement window", label)
	}
	l := res.Latency
	if l.Count == 0 || l.P50 == 0 {
		return fmt.Errorf("loadgen: %s: empty latency histogram", label)
	}
	if l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.P999 || l.P999 > l.Max || l.Min > l.P50 {
		return fmt.Errorf("loadgen: %s: percentiles out of order: %+v", label, l)
	}
	if rl := res.ReadLatency; rl != nil {
		// Fast-path reads sit at microsecond scale, so a zero p50 is
		// legitimate (sub-microsecond); only ordering is checked.
		if rl.Count == 0 || res.Reads == 0 {
			return fmt.Errorf("loadgen: %s: read summary present but empty", label)
		}
		if rl.P50 > rl.P90 || rl.P90 > rl.P99 || rl.P99 > rl.P999 || rl.P999 > rl.Max || rl.Min > rl.P50 {
			return fmt.Errorf("loadgen: %s: read percentiles out of order: %+v", label, rl)
		}
	}
	if len(res.ReadsPerReplica) > 0 {
		var sum uint64
		for _, n := range res.ReadsPerReplica {
			sum += n
		}
		if sum != res.Reads {
			return fmt.Errorf("loadgen: %s: per-replica read counts sum to %d but %d reads measured",
				label, sum, res.Reads)
		}
	}
	if res.EnvelopesSent < res.BatchesSent {
		return fmt.Errorf("loadgen: %s: %d envelopes in %d batches", label, res.EnvelopesSent, res.BatchesSent)
	}
	if res.Execute != nil {
		if err := validateExecute(label, res.Execute); err != nil {
			return err
		}
	}
	if res.Stages != nil {
		if err := validateStages(label, res.Stages); err != nil {
			return err
		}
	}
	if res.SLO != nil {
		if err := validateSLO(label, res); err != nil {
			return err
		}
	}
	if d := res.Durable; d != nil {
		if !d.DigestsMatch {
			return fmt.Errorf("loadgen: %s: crash-recovery digests diverged", label)
		}
		if d.Groups == 0 {
			return fmt.Errorf("loadgen: %s: durable run verified no groups", label)
		}
		if d.TornTailBytes != 0 {
			return fmt.Errorf("loadgen: %s: live crash image carried a torn WAL tail (%d bytes)", label, d.TornTailBytes)
		}
		if d.RecoveryMaxUs < 0 || d.MaxReplayedEnvelopes < 0 {
			return fmt.Errorf("loadgen: %s: negative durable recovery stats", label)
		}
		// A run that completed transactions has real per-group state, so
		// the kill-and-restart verification must have done measurable
		// work: a zero recovery time means the field was never stamped.
		if d.RecoveryMaxUs == 0 {
			return fmt.Errorf("loadgen: %s: durable run reports zero recovery time", label)
		}
		if d.RecoveryMeanUs <= 0 || d.RecoveryMeanUs > float64(d.RecoveryMaxUs) {
			return fmt.Errorf("loadgen: %s: durable recovery mean %.1fµs inconsistent with max %dµs",
				label, d.RecoveryMeanUs, d.RecoveryMaxUs)
		}
		if d.MaxReplayedEnvelopes > d.ReplayedEnvelopes {
			return fmt.Errorf("loadgen: %s: durable replay max %d exceeds total %d",
				label, d.MaxReplayedEnvelopes, d.ReplayedEnvelopes)
		}
	}
	return nil
}

// validateSLO sanity-checks the tail-latency section: a target must be
// set (a targetless SLO section scores nothing), good completions are a
// subset of completions, the shed rate must be a consistent fraction of
// offered load, a run shedding more than it issued is operating past
// any admissible envelope (the measurement is of the shed path, not the
// system), and the controller trajectory must be a time-ordered series
// of valid operating points.
func validateSLO(label string, res *Result) error {
	s := res.SLO
	if s.TargetMs <= 0 {
		return fmt.Errorf("loadgen: %s: slo section without a latency target", label)
	}
	if s.GoodCompleted > res.Completed {
		return fmt.Errorf("loadgen: %s: slo good completions %d exceed completions %d",
			label, s.GoodCompleted, res.Completed)
	}
	if res.Shed > res.Issued {
		return fmt.Errorf("loadgen: %s: shed %d exceeds issued %d (the run measured shedding, not the system)",
			label, res.Shed, res.Issued)
	}
	if s.ShedRate < 0 || s.ShedRate > 1 {
		return fmt.Errorf("loadgen: %s: shed rate %v outside [0, 1]", label, s.ShedRate)
	}
	if offered := res.Issued + res.Shed; offered > 0 {
		want := float64(res.Shed) / float64(offered)
		if diff := s.ShedRate - want; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("loadgen: %s: shed rate %v inconsistent with shed %d of %d offered",
				label, s.ShedRate, res.Shed, offered)
		}
	}
	if s.GoodFraction < 0 || s.GoodFraction > 1 {
		return fmt.Errorf("loadgen: %s: slo good fraction %v outside [0, 1]", label, s.GoodFraction)
	}
	prev := int64(-1)
	for i, p := range s.Trajectory {
		if p.Batch < 1 || p.FlushIntervalUs <= 0 || p.QueueDepth < 0 {
			return fmt.Errorf("loadgen: %s: slo trajectory point %d invalid: %+v", label, i, p)
		}
		if p.TMs < prev {
			return fmt.Errorf("loadgen: %s: slo trajectory not time-ordered at point %d", label, i)
		}
		prev = p.TMs
	}
	return nil
}

// validateStages sanity-checks the stage-latency decomposition: every
// stage summary must be non-empty with ordered percentiles and appear
// in pipeline order, and because each traced request's stage durations
// telescope exactly to its end-to-end latency, the count-weighted stage
// means must sum to the traced e2e mean (within float rounding).
func validateStages(label string, st *telemetry.StagesReport) error {
	if st.SampleEvery < 1 {
		return fmt.Errorf("loadgen: %s: stages report with sample_every %d", label, st.SampleEvery)
	}
	if st.Records == 0 || st.E2E.Count != st.Records {
		return fmt.Errorf("loadgen: %s: stages report records %d vs e2e count %d",
			label, st.Records, st.E2E.Count)
	}
	if len(st.Stages) == 0 {
		return fmt.Errorf("loadgen: %s: stages report with no stage summaries", label)
	}
	order := make(map[string]int, telemetry.NumStages)
	for s := 1; s < telemetry.NumStages; s++ {
		order[telemetry.Stage(s).Name()] = s
	}
	prev := 0
	var weighted float64
	for _, sg := range st.Stages {
		idx, ok := order[sg.Stage]
		if !ok {
			return fmt.Errorf("loadgen: %s: unknown stage %q", label, sg.Stage)
		}
		if idx <= prev {
			return fmt.Errorf("loadgen: %s: stage %q out of pipeline order", label, sg.Stage)
		}
		prev = idx
		if sg.Count == 0 {
			return fmt.Errorf("loadgen: %s: stage %q has no samples", label, sg.Stage)
		}
		l := sg.NsSummary
		if l.Min > l.P50 || l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.P999 || l.P999 > l.Max {
			return fmt.Errorf("loadgen: %s: stage %q percentiles out of order: %+v", label, sg.Stage, l)
		}
		weighted += float64(sg.Count) * l.Mean
	}
	e2eTotal := float64(st.Records) * st.E2E.Mean
	if diff := weighted - e2eTotal; diff > e2eTotal*0.01 || diff < -e2eTotal*0.01 {
		return fmt.Errorf("loadgen: %s: stage durations sum to %.0fns but traced e2e totals %.0fns",
			label, weighted, e2eTotal)
	}
	return nil
}

// validateExecute sanity-checks the execute-mode section: the audits
// must have passed, the database fingerprint must be present, and the
// per-type stats must be plausible (only new-orders abort, at roughly
// TPC-C's 1 % rollback rate).
func validateExecute(label string, ex *ExecuteResult) error {
	if !ex.InvariantsOK || !ex.ReplicaDigestsOK {
		return fmt.Errorf("loadgen: %s: execution audits failed (invariants %v, replica digests %v)",
			label, ex.InvariantsOK, ex.ReplicaDigestsOK)
	}
	if len(ex.GlobalDigest) != 64 {
		return fmt.Errorf("loadgen: %s: malformed global digest %q", label, ex.GlobalDigest)
	}
	if len(ex.PerType) == 0 || ex.TxApplied == 0 {
		return fmt.Errorf("loadgen: %s: execute mode measured no transactions", label)
	}
	if ex.AbortRate > 0.1 {
		return fmt.Errorf("loadgen: %s: implausible abort rate %.3f", label, ex.AbortRate)
	}
	for typ, st := range ex.PerType {
		if st.Aborted > 0 && typ != "new-order" {
			return fmt.Errorf("loadgen: %s: %s transactions aborted (%d) — only new-orders roll back", label, typ, st.Aborted)
		}
		if st.Committed+st.Aborted > 0 && st.Latency.Count == 0 {
			return fmt.Errorf("loadgen: %s: %s has completions but no latency samples", label, typ)
		}
	}
	return nil
}
