package loadgen

import (
	"flexcast/internal/durable"
	"flexcast/internal/runtime"
	"flexcast/internal/store"
	"flexcast/internal/telemetry"
)

// registerTelemetry publishes the run's live state to the process-wide
// telemetry registry, so a -telemetry endpoint started by the command
// serves it mid-run. Everything registered is a read-through callback
// over state the run maintains anyway — registration adds no hot-path
// cost — and re-registration (flexload -ab runs several configurations
// in one process) replaces the previous run's entries, so the endpoint
// always reflects the latest deployment.
func registerTelemetry(r *run, dep *deployment, clients []*clientProc) {
	reg := telemetry.Default
	reg.RegisterTracer("write_path", r.tracer) // nil when tracing is off: unregisters a stale entry

	reg.RegisterHistogram("wal_fsync_ns", durable.FsyncHist())
	reg.RegisterHistogram("snapshot_write_ns", durable.SnapshotHist())
	reg.RegisterHistogram("snapshot_ship_ns", store.SnapshotShipHist())

	reg.RegisterCounter("issued", r.issued.Load)
	reg.RegisterCounter("completed", r.completed.Load)
	reg.RegisterCounter("reads", r.reads.Load)
	reg.RegisterCounter("shed", r.shed.Load)
	reg.RegisterCounter("slo_good", r.good.Load)
	reg.RegisterCounter("lease_refusals", r.leaseRefusals.Load)
	reg.RegisterCounter("remote_reads", r.remoteReads.Load)

	nodes := dep.nodes
	reg.RegisterCounter("backpressure_stalls", func() uint64 {
		var n uint64
		for _, nd := range nodes {
			s, _ := nd.Backpressure()
			n += s
		}
		return n
	})
	reg.RegisterCounter("backpressure_stall_ns", func() uint64 {
		var n uint64
		for _, nd := range nodes {
			_, ns := nd.Backpressure()
			n += ns
		}
		return n
	})
	reg.RegisterGauge("queue_depth_total", func() float64 {
		total := 0
		for _, nd := range nodes {
			total += nd.QueueLen()
		}
		return float64(total)
	})
	reg.RegisterGauge("queue_depth_max", func() float64 {
		max := 0
		for _, nd := range nodes {
			if l := nd.QueueLen(); l > max {
				max = l
			}
		}
		return float64(max)
	})

	// Adaptive controller operating point, live: the widest batch and
	// longest flush interval any node is currently running at (static
	// runs report the configured constants).
	reg.RegisterGauge("adaptive_batch_max", func() float64 {
		max := 0
		for _, nd := range nodes {
			if b, _ := nd.Operating(); b > max {
				max = b
			}
		}
		return float64(max)
	})
	reg.RegisterGauge("adaptive_flush_interval_us_max", func() float64 {
		var max int64
		for _, nd := range nodes {
			if _, iv := nd.Operating(); iv.Microseconds() > max {
				max = iv.Microseconds()
			}
		}
		return float64(max)
	})

	// Batch fill and flush-reason counters, servers and clients combined:
	// their ratio shows whether batching is fill-driven (throughput-bound)
	// or timer-driven (idle).
	batchStats := func() runtime.BatcherStats {
		var s runtime.BatcherStats
		for _, nd := range nodes {
			s.Add(nd.Stats())
		}
		for _, c := range clients {
			s.Add(c.batcher.Stats())
		}
		return s
	}
	reg.RegisterCounter("batch_size_flushes", func() uint64 { return batchStats().SizeFlushes })
	reg.RegisterCounter("batch_chunk_flushes", func() uint64 { return batchStats().ChunkFlushes })
	reg.RegisterCounter("batch_timer_flushes", func() uint64 { return batchStats().TimerFlushes })
	reg.RegisterGauge("batch_avg", func() float64 { return batchStats().AvgBatch() })

	// Replicated-run gauges: lease renewals across follower replicas and
	// the worst follower watermark lag behind its group's serving node.
	proto := r.proto
	if len(proto.followers) > 0 {
		reg.RegisterCounter("lease_renewals", func() uint64 {
			var n uint64
			for _, reps := range proto.followers {
				for _, rep := range reps {
					n += rep.Renewals()
				}
			}
			return n
		})
		reg.RegisterGauge("watermark_lag_max", func() float64 {
			var max uint64
			for g, reps := range proto.followers {
				ex := proto.execByGroup[g]
				if ex == nil {
					continue
				}
				wm := ex.Watermark()
				for _, rep := range reps {
					if rw := rep.Watermark(); rw < wm && wm-rw > max {
						max = wm - rw
					}
				}
			}
			return float64(max)
		})
	}
}
