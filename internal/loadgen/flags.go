package loadgen

import (
	"flag"
	"fmt"
	"strconv"
)

// AddFlags binds one flag per Config field onto fs and returns the
// Config the parsed flags fill. Every default comes from Defaults() —
// the same fill() the programmatic entry point applies — so the CLI
// and struct defaults cannot diverge. Callers layer their own
// command-only flags (output paths, A/B switches) on the same set.
func AddFlags(fs *flag.FlagSet) *Config {
	d := Defaults()
	c := &d
	fs.StringVar(&c.Transport, "transport", c.Transport,
		"transport: inmem, tcp (loopback) or wan (in-memory with inter-region delays)")
	fs.StringVar(&c.Protocol, "protocol", c.Protocol, "protocol: flexcast, skeen, hierarchical")
	fs.IntVar(&c.Groups, "groups", c.Groups, "number of groups (12: the paper's WAN set)")
	fs.IntVar(&c.Clients, "clients", c.Clients, "client processes")
	fs.IntVar(&c.Workers, "workers", c.Workers, "concurrent closed-loop sessions per client process")
	fs.Float64Var(&c.Rate, "rate", c.Rate, "open-loop rate per client process in tx/s (0 = closed loop)")
	fs.IntVar(&c.MaxOutstanding, "max-outstanding", c.MaxOutstanding,
		"open-loop in-flight cap per client process; issuance beyond it is shed")
	fs.DurationVar(&c.FlushEvery, "flush-every", c.FlushEvery,
		"period of the §4.3 flush/garbage-collection client (negative disables)")
	fs.DurationVar(&c.Warmup, "warmup", c.Warmup, "warm-up before the measurement window")
	fs.DurationVar(&c.Duration, "duration", c.Duration, "measurement window")
	fs.IntVar(&c.MaxBatch, "batch", c.MaxBatch, "max envelopes per runtime batch (1 disables batching)")
	fs.DurationVar(&c.FlushInterval, "flush-interval", c.FlushInterval, "batch flush period")
	fs.BoolVar(&c.Adaptive, "adaptive", c.Adaptive,
		"latency-targeted adaptive batching: -batch/-flush-interval become the ceiling, each node steers on queue depth")
	fs.Float64Var(&c.SLOMs, "slo-ms", c.SLOMs,
		"tail-latency SLO target in ms (> 0 adds the results.slo section: goodput at target, shed rate, controller trajectory)")
	fs.IntVar(&c.Sessions, "sessions", c.Sessions,
		"virtual sessions multiplexed per client process in open loop (0 = process-level admission; requires -rate)")
	fs.IntVar(&c.SessionOutstanding, "session-outstanding", c.SessionOutstanding,
		"per-session in-flight cap; admission beyond it is shed")
	fs.IntVar(&c.SessionBurst, "session-burst", c.SessionBurst,
		"per-session token-bucket burst depth")
	fs.IntVar(&c.PayloadSize, "payload", c.PayloadSize, "payload bytes (0 = gTPC-C sizes)")
	fs.Float64Var(&c.Locality, "locality", c.Locality, "gTPC-C locality rate")
	fs.BoolVar(&c.GlobalOnly, "global-only", c.GlobalOnly, "multi-group transactions only")
	fs.Int64Var(&c.Seed, "seed", c.Seed, "workload seed")
	fs.DurationVar(&c.Timeout, "timeout", c.Timeout, "per-transaction timeout; exceeding it fails the run")
	fs.BoolVar(&c.Execute, "execute", c.Execute,
		"execute the gTPC-C store at every group (per-type stats, cross-shard invariant digest)")
	fs.Int64Var(&c.StoreSeed, "store-seed", c.StoreSeed, "store population seed (0 = workload seed)")
	fs.Float64Var(&c.ReadPct, "read-pct", c.ReadPct,
		"percent of iterations served as fast-path local reads (requires -execute)")
	fs.IntVar(&c.Replicas, "replicas", c.Replicas,
		"smr-style replication degree per group (>= 2 deploys follower read replicas; requires -execute)")
	fs.BoolVar(&c.FollowerReads, "follower-reads", c.FollowerReads,
		"serve reads from lease-holding follower replicas (requires -replicas >= 2; off: remote leader reads)")
	fs.IntVar(&c.ReadWorkers, "read-workers", c.ReadWorkers,
		"dedicated closed-loop read-only sessions per client process (requires -execute)")
	fs.DurationVar(&c.LeaseTerm, "lease-term", c.LeaseTerm, "follower read-lease term")
	fs.Float64Var(&c.Zipf, "zipf", c.Zipf, "Zipfian workload skew parameter s (> 1; 0 = uniform)")
	fs.BoolVar(&c.Durable, "durable", c.Durable,
		"run every group's engine on the durable WAL+snapshot backend and verify end-of-run crash recovery (requires -execute)")
	fs.StringVar(&c.DurableDir, "durable-dir", c.DurableDir,
		"durable persistence root (each run uses a fresh subdirectory; default: a temp dir removed at exit)")
	fs.IntVar(&c.DurableSnapshotEvery, "durable-snapshot-every", c.DurableSnapshotEvery,
		"snapshot + WAL-rotation cadence in input envelopes (0 = backend default, 256)")
	fs.IntVar(&c.DurableFsyncEvery, "durable-fsync-every", c.DurableFsyncEvery,
		"WAL fsync cadence in appends (0 = backend default, 64)")
	// The CLI keeps its historical "0 disables" contract while the
	// struct uses 0 = default-on, negative = off: 0 maps to -1 here.
	fs.Func("trace-sample",
		fmt.Sprintf("lifecycle-trace one write in N (default %d; 0 disables stage tracing)", c.TraceSample),
		func(s string) error {
			n, err := strconv.Atoi(s)
			if err != nil {
				return fmt.Errorf("parse error")
			}
			if n == 0 {
				n = -1
			}
			c.TraceSample = n
			return nil
		})
	return c
}
