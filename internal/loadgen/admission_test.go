package loadgen

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flexcast/amcast"
	"flexcast/internal/metrics"
)

// The admission gate is deterministic on an injected clock (admit takes
// nowNs), so these tests assert exact shed counts — no sleeps, no
// slack.

// TestAdmissionTokenBucket pins the bucket arithmetic: a fresh session
// starts with a full burst, refills at the configured rate on the
// caller's clock, and caps at the burst.
func TestAdmissionTokenBucket(t *testing.T) {
	a := admission{rate: 1000, burst: 4, cap: 1 << 20}
	s := &session{id: 1, prefix: make(amcast.PrefixTracker)}
	now := int64(1) // any nonzero origin
	for i := 0; i < 4; i++ {
		if !a.admit(s, now) {
			t.Fatalf("admit %d refused with a full burst", i)
		}
	}
	if a.admit(s, now) {
		t.Fatal("admitted past the burst with no time elapsed")
	}
	// 1ms at 1000 tok/s owes exactly one token.
	now += int64(time.Millisecond)
	if !a.admit(s, now) {
		t.Fatal("refill after 1ms refused")
	}
	if a.admit(s, now) {
		t.Fatal("second admit on a single refilled token")
	}
	// A long idle period caps at the burst, not rate×elapsed.
	now += int64(time.Hour)
	for i := 0; i < 4; i++ {
		if !a.admit(s, now) {
			t.Fatalf("admit %d refused after idle refill", i)
		}
	}
	if a.admit(s, now) {
		t.Fatal("idle refill exceeded the burst")
	}
	if s.admitted != 9 || s.shed != 3 {
		t.Fatalf("admitted %d shed %d, want 9/3", s.admitted, s.shed)
	}
}

// TestAdmissionOutstandingCap pins the in-flight bound: a session whose
// admitted work has not completed is refused at the cap, and release
// reopens exactly one slot.
func TestAdmissionOutstandingCap(t *testing.T) {
	a := admission{rate: 0, burst: 1 << 20, cap: 4}
	s := &session{id: 1, prefix: make(amcast.PrefixTracker)}
	now := int64(1)
	for i := 0; i < 4; i++ {
		if !a.admit(s, now) {
			t.Fatalf("admit %d refused below the cap", i)
		}
	}
	if a.admit(s, now) {
		t.Fatal("admitted past the outstanding cap")
	}
	s.release()
	if !a.admit(s, now) {
		t.Fatal("refused after a release opened a slot")
	}
	if a.admit(s, now) {
		t.Fatal("one release admitted two")
	}
}

// TestAdmissionSpikeShedsExactly emulates a latency spike across a
// session table: replies stop (no releases), so each session fills its
// cap and every further issuance on it is shed — in exactly the counts
// the arithmetic predicts, per session and in total. When the spike
// ends (releases), admission resumes.
func TestAdmissionSpikeShedsExactly(t *testing.T) {
	const nSessions, cap, offers = 3, 2, 10
	a := admission{rate: 0, burst: 1 << 20, cap: cap}
	sessions := newSessions(0, nSessions)
	now := int64(1)
	var admitted, shed int
	for i := 0; i < nSessions*offers; i++ {
		if a.admit(sessions[i%nSessions], now) {
			admitted++
		} else {
			shed++
		}
	}
	if admitted != nSessions*cap || shed != nSessions*(offers-cap) {
		t.Fatalf("spike admitted %d shed %d, want %d/%d",
			admitted, shed, nSessions*cap, nSessions*(offers-cap))
	}
	for _, s := range sessions {
		if s.admitted != cap || s.shed != offers-cap {
			t.Fatalf("session %d admitted %d shed %d, want %d/%d",
				s.id, s.admitted, s.shed, cap, offers-cap)
		}
	}
	// Spike ends: every outstanding completes, sessions admit again.
	for _, s := range sessions {
		for i := 0; i < cap; i++ {
			s.release()
		}
	}
	for _, s := range sessions {
		if !a.admit(s, now) {
			t.Fatalf("session %d refused after the spike drained", s.id)
		}
	}
}

// TestSessionIDsPartition pins the session-id vocabulary the wire
// format depends on: ids start at 1 (0 is "no session") and each
// client's block is disjoint.
func TestSessionIDsPartition(t *testing.T) {
	seen := map[uint64]bool{}
	for client := 0; client < 3; client++ {
		for _, s := range newSessions(client, 4) {
			if s.id == 0 {
				t.Fatal("session id 0 allocated (reserved for \"no session\")")
			}
			if seen[s.id] {
				t.Fatalf("session id %d allocated twice", s.id)
			}
			seen[s.id] = true
		}
	}
	if len(seen) != 12 {
		t.Fatalf("%d distinct ids, want 12", len(seen))
	}
}

// TestSessionReplyRouting drives the reply handler directly: a reply
// carrying a session id advances THAT session's barrier and releases
// its outstanding slot; other sessions' vectors stay untouched; replies
// without the flag touch no session. This is the per-session watermark
// vector half of the multiplexing contract — read-your-writes per
// session over one shared connection.
func TestSessionReplyRouting(t *testing.T) {
	r := &run{cfg: Config{}, hist: metrics.NewHistogram(), readHist: metrics.NewHistogram()}
	c := &clientProc{
		idx:      0,
		id:       amcast.ClientNode(0),
		inflight: make(map[amcast.MsgID]*txState),
		prefix:   make(amcast.PrefixTracker),
		sessions: newSessions(0, 4),
		run:      r,
	}
	c.sessBase = c.sessions[0].id
	s := c.sessions[2]
	s.outstanding = 1

	id := amcast.NewMsgID(0, 7)
	c.inflight[id] = &txState{
		remaining: map[amcast.GroupID]bool{3: true},
		issued:    time.Now(),
		sess:      s,
	}
	c.onReplies([]amcast.Envelope{{
		Kind: amcast.KindReply,
		From: amcast.GroupNode(3),
		Msg: amcast.Message{
			ID: id, Sender: c.id, Dst: []amcast.GroupID{3},
			Flags: amcast.FlagSession, Session: s.id,
		},
		TS: 9, Watermark: 11,
	}})
	if got := s.barrier(3); got != 11 {
		t.Fatalf("session barrier at group 3 = %d, want 11 (the reply watermark)", got)
	}
	if s.outstanding != 0 {
		t.Fatalf("completion left outstanding = %d", s.outstanding)
	}
	for i, other := range c.sessions {
		if i != 2 && other.barrier(3) != 0 {
			t.Fatalf("session %d barrier moved on another session's reply", i)
		}
	}
	// The process-level barrier advanced too (it serves the read path).
	if got := c.observedPrefix(3); got != 11 {
		t.Fatalf("process barrier = %d, want 11", got)
	}
	// A foreign or absent session id resolves to nil, never panics.
	if c.sessionOf(amcast.Message{Flags: amcast.FlagSession, Session: 1 << 40}) != nil {
		t.Fatal("foreign session id resolved")
	}
	if c.sessionOf(amcast.Message{Session: s.id}) != nil {
		t.Fatal("session resolved without the flag")
	}
}

// TestWindowAccounting is the satellite-4 regression pin: Completed and
// the latency histogram count exactly the transactions whose full
// issue→completion lifetime fits inside [windowStart, windowStart +
// Duration]. In particular a reply processed after the window closes —
// the open loop's queued-but-unanswered backlog draining late — adds
// nothing, so open-loop throughput can never be inflated by work that
// was still queued at window close.
func TestWindowAccounting(t *testing.T) {
	r := &run{cfg: Config{}, hist: metrics.NewHistogram(), readHist: metrics.NewHistogram()}
	r.sloTargetUs = 1000 // 1ms SLO target, to pin goodput gating too
	base := time.Unix(1000, 0)
	r.openWindow(base, time.Second)
	end := base.Add(time.Second)

	tx := func(issued time.Time) *txState {
		return &txState{issued: issued, remaining: map[amcast.GroupID]bool{}}
	}
	// Issued in warmup, completed in window: excluded.
	r.complete(tx(base.Add(-time.Millisecond)), base.Add(time.Millisecond))
	// Issued and completed in window, under the SLO target: counted, good.
	r.complete(tx(base.Add(time.Millisecond)), base.Add(1500*time.Microsecond))
	// Issued and completed in window, over the SLO target: counted, not good.
	r.complete(tx(base.Add(time.Millisecond)), base.Add(500*time.Millisecond))
	// Issued in window, completed after close (the late backlog): excluded.
	r.complete(tx(base.Add(900*time.Millisecond)), end.Add(time.Millisecond))
	// Completed exactly at the window edge: included (closed interval);
	// its latency is exactly the 1ms target, which still scores good
	// (the target is an upper bound, inclusive).
	r.complete(tx(base.Add(999*time.Millisecond)), end)

	if got := r.completed.Load(); got != 3 {
		t.Fatalf("completed = %d, want 3 (warmup carry-over and late backlog excluded)", got)
	}
	if got := r.hist.Summary().Count; got != 3 {
		t.Fatalf("histogram count = %d, want 3", got)
	}
	if got := r.good.Load(); got != 2 {
		t.Fatalf("slo-good = %d, want 2 (the 500µs and the at-target completions)", got)
	}
	// Before the window opens, nothing counts.
	r2 := &run{cfg: Config{}, hist: metrics.NewHistogram(), readHist: metrics.NewHistogram()}
	r2.complete(tx(base), base.Add(time.Millisecond))
	if r2.completed.Load() != 0 {
		t.Fatal("completion counted before the window opened")
	}
}

// TestBuildSLO scores a synthetic trace with known goodput: the section
// arithmetic (goodput, good fraction, shed rate over offered load) must
// come out exactly.
func TestBuildSLO(t *testing.T) {
	s := buildSLO(5, 80, 100, 120, 30, 2, []SLOPoint{{TMs: 0, Batch: 1, FlushIntervalUs: 50}})
	if s.TargetMs != 5 || s.GoodCompleted != 80 {
		t.Fatalf("target/good mangled: %+v", s)
	}
	if s.Goodput != 40 {
		t.Fatalf("goodput = %v, want 40 (80 good over 2s)", s.Goodput)
	}
	if s.GoodFraction != 0.8 {
		t.Fatalf("good fraction = %v, want 0.8", s.GoodFraction)
	}
	if s.ShedRate != 0.2 {
		t.Fatalf("shed rate = %v, want 0.2 (30 shed of 150 offered)", s.ShedRate)
	}
	if len(s.Trajectory) != 1 {
		t.Fatalf("trajectory lost: %+v", s)
	}
	// Degenerate inputs divide to zero, not NaN.
	z := buildSLO(5, 0, 0, 0, 0, 0, nil)
	if z.Goodput != 0 || z.GoodFraction != 0 || z.ShedRate != 0 {
		t.Fatalf("zero trace produced nonzero rates: %+v", z)
	}
}

// sloReport builds a minimally valid report carrying an SLO section,
// for the validator rejection tests to perturb.
func sloReport() *Report {
	res := &Result{
		Completed:     100,
		Issued:        120,
		Shed:          30,
		Throughput:    50,
		WindowSecs:    2,
		BatchesSent:   10,
		EnvelopesSent: 100,
		Latency: metrics.LatencySummary{
			Count: 100, Min: 10, P50: 100, P90: 200, P99: 400, P999: 500, Max: 600, Mean: 150,
		},
	}
	res.SLO = buildSLO(5, 80, res.Completed, res.Issued, res.Shed, 2, nil)
	return &Report{Schema: Schema, Results: res}
}

// TestValidateSLOSection pins the validator's SLO contract: a section
// without a target, shed exceeding issued, good exceeding completed, or
// an inconsistent shed rate all reject; the unperturbed report passes.
func TestValidateSLOSection(t *testing.T) {
	dir := t.TempDir()
	check := func(name string, mutate func(*Report), wantErr string) {
		t.Helper()
		rep := sloReport()
		mutate(rep)
		path := filepath.Join(dir, name+".json")
		if err := rep.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		_, err := ValidateFile(path)
		if wantErr == "" {
			if err != nil {
				t.Fatalf("%s: valid report rejected: %v", name, err)
			}
			return
		}
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("%s: error %v, want %q", name, err, wantErr)
		}
	}
	check("ok", func(r *Report) {}, "")
	check("no-target", func(r *Report) { r.Results.SLO.TargetMs = 0 }, "without a latency target")
	check("shed-gt-issued", func(r *Report) {
		r.Results.Shed = r.Results.Issued + 1
		r.Results.SLO = buildSLO(5, 80, r.Results.Completed, r.Results.Issued, r.Results.Shed, 2, nil)
	}, "exceeds issued")
	check("good-gt-completed", func(r *Report) { r.Results.SLO.GoodCompleted = 101 }, "exceed completions")
	check("shed-rate-skew", func(r *Report) { r.Results.SLO.ShedRate = 0.5 }, "inconsistent with shed")
	check("bad-trajectory", func(r *Report) {
		r.Results.SLO.Trajectory = []SLOPoint{{TMs: 5, Batch: 0, FlushIntervalUs: 50}}
	}, "trajectory point")
	check("unordered-trajectory", func(r *Report) {
		r.Results.SLO.Trajectory = []SLOPoint{
			{TMs: 5, Batch: 1, FlushIntervalUs: 50},
			{TMs: 4, Batch: 1, FlushIntervalUs: 50},
		}
	}, "not time-ordered")
}

// TestSessionConfigContract pins the new knobs' validation: sessions
// require an open loop, and the counts must be non-negative.
func TestSessionConfigContract(t *testing.T) {
	cfg := shortCfg()
	cfg.Sessions = 8
	if _, err := Run(cfg); err == nil {
		t.Fatal("-sessions without -rate accepted")
	}
	cfg = shortCfg()
	cfg.SLOMs = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative SLO target accepted")
	}
	cfg = shortCfg()
	cfg.Rate = 100
	cfg.Sessions = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative session count accepted")
	}
}
