package loadgen

import (
	"sync"

	"flexcast/amcast"
)

// Session-multiplexed admission control (DESIGN.md §1h). With -sessions
// N, each client process simulates N virtual sessions over its single
// transport connection: the session id rides the envelope (FlagSession
// + Message.Session), so one TCP conn carries ~10^5 logical sessions
// instead of one socket each. Every session gets its own admission gate
// — a token bucket slicing the process's offered rate evenly, plus a
// small outstanding cap — and an issuance the gate refuses is SHED on
// the spot (counted in Result.Shed), never queued. Queuing excess load
// at an overloaded server only converts offered rate into queue depth,
// and queue depth into tail latency (bufferbloat); shedding keeps the
// in-flight population at the operating point the admission budget
// describes, so the transactions that are admitted see the uncongested
// path. The per-session cap (rather than one process-wide cap) means a
// latency spike starves only the sessions whose transactions it holds;
// the rest keep issuing.

// session is one multiplexed virtual session: its token bucket and
// outstanding count (the admission state) plus its own read-your-writes
// barrier, fed by the watermarks on replies carrying its session id.
type session struct {
	id uint64

	mu          sync.Mutex
	tokens      float64
	lastNs      int64
	outstanding int
	prefix      amcast.PrefixTracker
	// admitted / shed count this session's gate decisions over the whole
	// run (white-box observability; the run-level counters are windowed).
	admitted uint64
	shed     uint64
}

// newSessions builds client c's session table. Session ids are global
// and start at 1 (0 is "no session" on the wire): client c owns
// [1+c*n, 1+(c+1)*n).
func newSessions(client, n int) []*session {
	out := make([]*session, n)
	for s := range out {
		out[s] = &session{
			id:     1 + uint64(client)*uint64(n) + uint64(s),
			prefix: make(amcast.PrefixTracker),
		}
	}
	return out
}

// observe folds a reply's delivered-prefix watermark into the session's
// own barrier — the per-session half of the session guarantee. The
// process-level barrier still advances too (it serves reads); the
// per-session vector is what the multiplexing tests assert RYW against.
func (s *session) observe(env amcast.Envelope) {
	s.mu.Lock()
	s.prefix.Observe(env)
	s.mu.Unlock()
}

// barrier returns the session's delivered-prefix barrier for g.
func (s *session) barrier(g amcast.GroupID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prefix.Prefix(g)
}

// release returns one outstanding slot; called when a transaction the
// session admitted completes.
func (s *session) release() {
	s.mu.Lock()
	if s.outstanding > 0 {
		s.outstanding--
	}
	s.mu.Unlock()
}

// admission is the per-session gate configuration: rate tokens/s per
// session (refilled lazily on the caller's clock, so tests inject
// synthetic time), burst the bucket depth, cap the outstanding bound.
type admission struct {
	rate  float64
	burst float64
	cap   int
}

// newAdmission derives the gate from a filled Config: the process
// offered rate split evenly across its sessions.
func newAdmission(cfg Config) admission {
	return admission{
		rate:  cfg.Rate / float64(cfg.Sessions),
		burst: float64(cfg.SessionBurst),
		cap:   cfg.SessionOutstanding,
	}
}

// admit charges one issuance against the session at time nowNs
// (nanoseconds on any monotonic clock — production passes the wall
// clock, tests pass a synthetic one). It refuses — and the caller
// sheds — when the bucket is dry (the session is over its rate slice)
// or the outstanding cap is reached (the session's admitted work has
// not come back: the latency-spike case).
func (a admission) admit(s *session, nowNs int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastNs == 0 {
		s.lastNs = nowNs
		s.tokens = a.burst // a fresh session starts with a full bucket
	} else if elapsed := nowNs - s.lastNs; elapsed > 0 {
		s.tokens += a.rate * float64(elapsed) / 1e9
		if s.tokens > a.burst {
			s.tokens = a.burst
		}
		s.lastNs = nowNs
	}
	if s.tokens < 1 || s.outstanding >= a.cap {
		s.shed++
		return false
	}
	s.tokens--
	s.outstanding++
	s.admitted++
	return true
}
