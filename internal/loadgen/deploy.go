package loadgen

import (
	"fmt"
	"net"

	"flexcast/amcast"
	"flexcast/internal/durable"
	"flexcast/internal/gtpcc"
	"flexcast/internal/runtime"
	"flexcast/internal/store"
	"flexcast/internal/transport"
)

// deployment is the transport-specific part of a run: the server-side
// runtime nodes plus a close function tearing everything down.
type deployment struct {
	nodes []*runtime.Node
	close func()
}

// deploy builds the group servers and client processes on the selected
// transport.
func deploy(cfg Config, proto *protocolDeployment, r *run) (*deployment, []*clientProc, error) {
	clients := make([]*clientProc, cfg.Clients)
	for i := range clients {
		clients[i] = &clientProc{
			idx:      i,
			id:       amcast.ClientNode(i),
			out:      make(chan amcast.Message, cfg.Workers),
			inflight: make(map[amcast.MsgID]*txState),
			prefix:   make(amcast.PrefixTracker),
			run:      r,
		}
		if cfg.Sessions > 0 {
			clients[i].sessions = newSessions(i, cfg.Sessions)
			clients[i].sessBase = clients[i].sessions[0].id
		}
	}
	switch cfg.Transport {
	case "tcp":
		dep, err := deployTCP(cfg, proto, clients)
		return dep, clients, err
	default:
		dep, err := deployInMem(cfg, proto, clients)
		return dep, clients, err
	}
}

func runtimeConfig(cfg Config, proto *protocolDeployment) runtime.Config {
	rc := runtime.Config{
		MaxBatch:      cfg.MaxBatch,
		FlushInterval: cfg.FlushInterval,
		Tracer:        proto.tracer,
	}
	if cfg.Adaptive {
		// The zero AdaptiveConfig fills to the full range: floor 1
		// envelope / 50µs, ceiling the static knobs above. Adaptivity is
		// server-side only — client batchers coalesce their own sessions
		// and flush when the queue runs dry, which is already adaptive.
		rc.Adaptive = &runtime.AdaptiveConfig{}
	}
	return rc
}

// nodeConfig is runtimeConfig plus, on executing deployments, the
// KindRead service: remote reads are answered directly against the
// node's executor at the requested barrier — TryRead, because a
// barrier derived from observed replies is always already applied at
// the serving node (the watermark advances before replies leave), so a
// miss is a broken contract and surfaces as a refusal the client fails
// on.
func nodeConfig(cfg Config, proto *protocolDeployment, eng amcast.Engine) runtime.Config {
	rc := runtimeConfig(cfg, proto)
	if de, ok := eng.(*durable.Engine); ok {
		// The read handler serves against the executor inside the durable
		// wrap (reads are not inputs — nothing to log).
		eng = de.Inner()
	}
	ex, ok := eng.(*store.Executor)
	if !ok {
		return rc
	}
	from := amcast.GroupNode(eng.Group())
	rc.ReadHandler = func(env amcast.Envelope) amcast.Envelope {
		reply := amcast.Envelope{
			Kind:   amcast.KindReply,
			From:   from,
			Msg:    env.Msg.Header(),
			Result: amcast.ResultRefused,
		}
		tx, err := gtpcc.DecodeTx(env.Msg.Payload)
		if err != nil {
			return reply
		}
		res, err := ex.TryRead(tx, env.TS)
		if err != nil {
			return reply
		}
		reply.Result = amcast.ResultCommitted
		reply.Watermark = res.Watermark
		reply.Value = res.Value
		return reply
	}
	return rc
}

// deployInMem also serves the "wan" transport: the same in-memory
// deployment with every link routed through a delayNet applying the
// paper's inter-region one-way latencies.
func deployInMem(cfg Config, proto *protocolDeployment, clients []*clientProc) (*deployment, error) {
	nw := transport.NewInMemNet()
	var dn *delayNet
	if cfg.Transport == "wan" {
		dn = newDelayNet(proto.groups)
	}
	// sendVia builds a node's send function: straight into the mailbox,
	// or through the WAN delay queue of the (from, to) link.
	sendVia := func(from amcast.NodeID) func(to amcast.NodeID, envs []amcast.Envelope) {
		if dn == nil {
			return func(to amcast.NodeID, envs []amcast.Envelope) { nw.SendBatch(from, to, envs) }
		}
		return func(to amcast.NodeID, envs []amcast.Envelope) {
			dn.send(from, to, envs, func(to amcast.NodeID, envs []amcast.Envelope) {
				nw.SendBatch(from, to, envs)
			})
		}
	}
	dep := &deployment{}
	for _, g := range proto.groups {
		eng, err := proto.factory(g)
		if err != nil {
			nw.Close()
			return nil, err
		}
		id := amcast.GroupNode(g)
		node := runtime.NewNode(eng, sendVia(id), nodeConfig(cfg, proto, eng))
		dep.nodes = append(dep.nodes, node)
		if err := nw.AddBatchHandler(id, node.Submit); err != nil {
			nw.Close()
			return nil, err
		}
	}
	for _, c := range clients {
		c := c
		c.batcher = runtime.NewBatcher(sendVia(c.id), cfg.MaxBatch)
		if err := nw.AddBatchHandler(c.id, c.onReplies); err != nil {
			nw.Close()
			return nil, err
		}
	}
	dep.close = func() {
		if dn != nil {
			dn.close()
		}
		nw.Close()
		for _, n := range dep.nodes {
			n.Close()
		}
		proto.closeFollowers()
	}
	return dep, nil
}

// deployTCP runs the whole deployment over loopback TCP: one listening
// node per group and per client process, so every envelope crosses the
// real codec, framing and kernel socket path.
func deployTCP(cfg Config, proto *protocolDeployment, clients []*clientProc) (*deployment, error) {
	book := make(transport.AddrBook, len(proto.groups)+len(clients))
	var ids []amcast.NodeID
	for _, g := range proto.groups {
		ids = append(ids, amcast.GroupNode(g))
	}
	for _, c := range clients {
		ids = append(ids, c.id)
	}
	// Reserve a loopback port per node: listen on :0, record the port,
	// close, and hand the address out through the book. The tiny window
	// between close and the node's own listen is acceptable for a local
	// benchmark.
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("loadgen: reserve port: %w", err)
		}
		book[id] = ln.Addr().String()
		ln.Close()
	}

	dep := &deployment{}
	var tcpNodes []*transport.TCPNode
	cleanup := func() {
		for _, tn := range tcpNodes {
			tn.Close()
		}
		for _, n := range dep.nodes {
			n.Close()
		}
		proto.closeFollowers()
	}
	for _, g := range proto.groups {
		eng, err := proto.factory(g)
		if err != nil {
			cleanup()
			return nil, err
		}
		// The listener starts accepting before tn is assigned; the send
		// path gates on ready so a frame dispatched in that window parks
		// until the assignment is published.
		var tn *transport.TCPNode
		ready := make(chan struct{})
		node := runtime.NewNode(eng, func(to amcast.NodeID, envs []amcast.Envelope) {
			<-ready
			if tn == nil {
				return
			}
			// Peer unreachable mid-benchmark only happens at teardown.
			_ = tn.SendBatch(to, envs)
		}, nodeConfig(cfg, proto, eng))
		tn, err = transport.NewTCPBatchNode(amcast.GroupNode(g), book, node.Submit)
		close(ready)
		if err != nil {
			node.Close()
			cleanup()
			return nil, err
		}
		dep.nodes = append(dep.nodes, node)
		tcpNodes = append(tcpNodes, tn)
	}
	for _, c := range clients {
		c := c
		tn, err := transport.NewTCPBatchNode(c.id, book, c.onReplies)
		if err != nil {
			cleanup()
			return nil, err
		}
		tcpNodes = append(tcpNodes, tn)
		c.batcher = runtime.NewBatcher(func(to amcast.NodeID, envs []amcast.Envelope) {
			_ = tn.SendBatch(to, envs)
		}, cfg.MaxBatch)
	}
	dep.close = cleanup
	return dep, nil
}
