package loadgen

import (
	"sync"
	"time"

	"flexcast/amcast"
	"flexcast/internal/wan"
)

// delayNet emulates WAN geography over the in-memory transport: every
// (sender, receiver) link delays its batches by the one-way latency
// between the endpoints' regions (wan.OneWayMicros — the paper's
// inter-region matrix), with per-link FIFO preserved. The "wan"
// transport is deployInMem with every send routed through one of
// these, so the fig5-style WAN curves measure the protocols against
// real wall-clock latency instead of a zero-latency loopback.
//
// Each link is one goroutine draining an ordered queue: items carry
// their due time (enqueue + the link's constant delay), the drainer
// sleeps until each item is due, so a link can never reorder. Links
// are created lazily — a deployment only pays for the pairs that
// actually talk.
type delayNet struct {
	groups []amcast.GroupID

	mu     sync.Mutex
	links  map[delayLinkKey]*delayLink
	closed bool
	wg     sync.WaitGroup
}

type delayLinkKey struct{ from, to amcast.NodeID }

type delayItem struct {
	due  time.Time
	to   amcast.NodeID
	envs []amcast.Envelope
}

// delayLinkDepth bounds a link's in-flight queue in batches; a full
// queue blocks the sender, mirroring the in-memory transport's
// mailbox backpressure.
const delayLinkDepth = 4096

type delayLink struct {
	ch chan delayItem
}

func newDelayNet(groups []amcast.GroupID) *delayNet {
	return &delayNet{groups: groups, links: make(map[delayLinkKey]*delayLink)}
}

// region maps a node onto one of the paper's 12 WAN regions. Groups map
// by id (wrapping when the deployment runs more groups than regions);
// a client process lives in its home group's region — the same
// home assignment the workload generator uses (newGen).
func (d *delayNet) region(id amcast.NodeID) amcast.GroupID {
	g := id.Group()
	if id.IsClient() {
		g = d.groups[int(id-amcast.ClientNode(0))%len(d.groups)]
	}
	return amcast.GroupID((int(g)-1)%wan.NumRegions) + 1
}

// delay returns the one-way latency of the (from, to) link.
func (d *delayNet) delay(from, to amcast.NodeID) time.Duration {
	ra, rb := d.region(from), d.region(to)
	if ra == rb {
		// Same region: the local client↔group half-RTT.
		return time.Duration(wan.LocalRTTMicros/2) * time.Microsecond
	}
	return time.Duration(wan.OneWayMicros(ra, rb)) * time.Microsecond
}

// send delays one batch by the link's one-way latency, then forwards it
// through deliver. The slice is owned by the delay queue until
// delivery (the batcher hands ownership to its send function, exactly
// as the undelayed transport assumes).
func (d *delayNet) send(from, to amcast.NodeID, envs []amcast.Envelope, deliver func(to amcast.NodeID, envs []amcast.Envelope)) {
	if len(envs) == 0 {
		return
	}
	key := delayLinkKey{from, to}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	link, ok := d.links[key]
	if !ok {
		link = &delayLink{ch: make(chan delayItem, delayLinkDepth)}
		d.links[key] = link
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for item := range link.ch {
				if wait := time.Until(item.due); wait > 0 {
					time.Sleep(wait)
				}
				deliver(item.to, item.envs)
			}
		}()
	}
	d.mu.Unlock()
	link.ch <- delayItem{due: time.Now().Add(d.delay(from, to)), to: to, envs: envs}
}

// close stops every link drainer; queued batches still in flight are
// delivered first (the drainers finish their channels).
func (d *delayNet) close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	links := d.links
	d.mu.Unlock()
	for _, l := range links {
		close(l.ch)
	}
	d.wg.Wait()
}
