// Package loadgen is the sustained-load benchmark subsystem behind
// cmd/flexload: it deploys the batched node runtime (internal/runtime)
// over the in-memory or TCP transport, drives it with open- or
// closed-loop gTPC-C clients, and measures sustained throughput and
// latency percentiles with the exact-percentile histogram
// (internal/metrics). Its JSON report (BENCH_runtime.json) is the
// repository's performance trajectory: every scaling PR is measured
// against it.
//
// The client model mirrors the paper's evaluation (§5.3): a few client
// processes, each running many concurrent closed-loop sessions. Client
// processes batch their requests per destination exactly like the
// server runtime, so the -batch knob governs the whole path.
package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"flexcast/amcast"
	"flexcast/internal/core"
	"flexcast/internal/gtpcc"
	"flexcast/internal/hierarchical"
	"flexcast/internal/metrics"
	"flexcast/internal/overlay"
	"flexcast/internal/runtime"
	"flexcast/internal/skeen"
	"flexcast/internal/wan"
)

// Config parameterizes one load run.
type Config struct {
	// Transport selects "inmem" (default) or "tcp" (loopback, one
	// in-process TCP node per group and client).
	Transport string
	// Protocol selects "flexcast" (default), "skeen" or "hierarchical".
	Protocol string
	// Groups is the number of server groups (default 12: the paper's WAN
	// group set and overlays; other sizes use a chain overlay).
	Groups int
	// Clients is the number of client processes (default 4).
	Clients int
	// Workers is the number of concurrent closed-loop sessions per
	// client process (default 32).
	Workers int
	// Rate, when > 0, switches to open-loop: each client process issues
	// Rate requests per second independent of completions.
	Rate float64
	// MaxOutstanding bounds in-flight transactions per client process in
	// open-loop mode; issuance beyond it is shed and counted (default
	// 512). Unbounded open loop over capacity measures bufferbloat — the
	// protocol's open-dependency tracking degrades superlinearly in
	// in-flight messages — not the runtime under test.
	MaxOutstanding int
	// FlushEvery is the period of the §4.3 flush/garbage-collection
	// client; it bounds the engines' history growth exactly as every
	// paper experiment does (default 500ms; negative disables).
	FlushEvery time.Duration
	// Warmup and Duration are the warm-up and measurement windows
	// (defaults 1s and 5s).
	Warmup   time.Duration
	Duration time.Duration
	// MaxBatch is the runtime batch cap for servers and clients; 1
	// disables batching (the baseline), 0 defaults to 64.
	MaxBatch int
	// FlushInterval is the batch flush period (0: runtime default).
	FlushInterval time.Duration
	// PayloadSize overrides the gTPC-C payload size when > 0.
	PayloadSize int
	// Locality is the gTPC-C locality rate (default 0.95).
	Locality float64
	// GlobalOnly restricts the workload to multi-group transactions.
	GlobalOnly bool
	// Seed drives the workload (default 1).
	Seed int64
	// Timeout bounds one transaction (default 30s); exceeding it fails
	// the run.
	Timeout time.Duration
}

func (c *Config) fill() error {
	if c.Transport == "" {
		c.Transport = "inmem"
	}
	if c.Transport != "inmem" && c.Transport != "tcp" {
		return fmt.Errorf("loadgen: unknown transport %q", c.Transport)
	}
	if c.Protocol == "" {
		c.Protocol = "flexcast"
	}
	if c.Protocol != "flexcast" && c.Protocol != "skeen" && c.Protocol != "hierarchical" {
		return fmt.Errorf("loadgen: unknown protocol %q", c.Protocol)
	}
	if c.Groups == 0 {
		c.Groups = wan.NumRegions
	}
	if c.Groups < 2 {
		return fmt.Errorf("loadgen: need at least 2 groups")
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.Workers == 0 {
		c.Workers = 32
	}
	if c.Warmup == 0 {
		c.Warmup = time.Second
	}
	if c.Duration == 0 {
		c.Duration = 5 * time.Second
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 512
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 500 * time.Millisecond
	}
	if c.Locality == 0 {
		c.Locality = 0.95
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	return nil
}

// Result is one run's measurement.
type Result struct {
	Completed  uint64                 `json:"completed"`
	Throughput float64                `json:"throughput_tx_s"`
	WindowSecs float64                `json:"window_s"`
	Latency    metrics.LatencySummary `json:"latency_us"`
	// Issued counts requests issued during the measurement window (a
	// transaction issued in warmup and completed in-window counts toward
	// Completed but not Issued, so the two may differ slightly in either
	// direction); under open loop Issued far above Completed means the
	// system fell behind the offered rate.
	Issued uint64 `json:"issued"`
	// Shed counts open-loop issuances skipped by the outstanding cap.
	Shed uint64 `json:"shed,omitempty"`
	// Batching statistics aggregated over all server and client nodes.
	BatchesSent   uint64  `json:"batches_sent"`
	EnvelopesSent uint64  `json:"envelopes_sent"`
	AvgBatch      float64 `json:"avg_batch"`
	LargestBatch  int     `json:"largest_batch"`
}

// protocolDeployment carries the protocol-specific pieces.
type protocolDeployment struct {
	groups  []amcast.GroupID
	factory func(g amcast.GroupID) (amcast.Engine, error)
	route   func(m amcast.Message) []amcast.NodeID
	nearest func(home amcast.GroupID) []amcast.GroupID
}

func buildProtocol(cfg Config) (*protocolDeployment, error) {
	var groups []amcast.GroupID
	paperScale := cfg.Groups == wan.NumRegions
	if paperScale {
		groups = wan.Groups()
	} else {
		for i := 1; i <= cfg.Groups; i++ {
			groups = append(groups, amcast.GroupID(i))
		}
	}
	d := &protocolDeployment{groups: groups}
	d.nearest = func(home amcast.GroupID) []amcast.GroupID {
		if paperScale {
			return wan.NearestOrder(home)
		}
		var out []amcast.GroupID
		for _, g := range groups {
			if g != home {
				out = append(out, g)
			}
		}
		return out
	}
	switch cfg.Protocol {
	case "flexcast":
		var ov *overlay.CDAG
		var err error
		if paperScale {
			ov = wan.O1()
		} else if ov, err = overlay.NewCDAG(groups); err != nil {
			return nil, err
		}
		d.factory = func(g amcast.GroupID) (amcast.Engine, error) {
			return core.New(core.Config{Group: g, Overlay: ov})
		}
		d.route = func(m amcast.Message) []amcast.NodeID {
			return []amcast.NodeID{amcast.GroupNode(ov.Lca(m.Dst))}
		}
	case "skeen":
		d.factory = func(g amcast.GroupID) (amcast.Engine, error) {
			return skeen.New(skeen.Config{Group: g, Groups: groups})
		}
		d.route = func(m amcast.Message) []amcast.NodeID {
			nodes := make([]amcast.NodeID, len(m.Dst))
			for i, g := range m.Dst {
				nodes[i] = amcast.GroupNode(g)
			}
			return nodes
		}
	case "hierarchical":
		var tr *overlay.Tree
		var err error
		if paperScale {
			tr = wan.T1()
		} else {
			// Star tree rooted at the first group.
			children := map[amcast.GroupID][]amcast.GroupID{groups[0]: groups[1:]}
			if tr, err = overlay.NewTree(groups[0], children); err != nil {
				return nil, err
			}
		}
		d.factory = func(g amcast.GroupID) (amcast.Engine, error) {
			return hierarchical.New(hierarchical.Config{Group: g, Tree: tr})
		}
		d.route = func(m amcast.Message) []amcast.NodeID {
			return []amcast.NodeID{amcast.GroupNode(tr.Lca(m.Dst))}
		}
	}
	return d, nil
}

// txState tracks one in-flight transaction at its issuing client.
type txState struct {
	remaining map[amcast.GroupID]bool
	issued    time.Time
	done      chan struct{} // closed-loop sessions wait on it; nil open-loop
	// silent transactions (the flush client's) stay out of the metrics.
	silent bool
}

// clientProc is one client process: its own node id on the transport, a
// request batcher fed by a dispatcher goroutine that coalesces the
// process's concurrent sessions (the same adaptive batching as
// runtime.Node — batches form only when sessions outpace the transport,
// and an idle client flushes immediately), and the in-flight transaction
// table its reply handler resolves.
type clientProc struct {
	idx     int
	id      amcast.NodeID
	batcher *runtime.Batcher
	out     chan amcast.Message

	mu       sync.Mutex
	inflight map[amcast.MsgID]*txState

	run *run
}

// dispatcher drains queued requests into the batcher and flushes when
// the queue runs dry.
func (c *clientProc) dispatcher(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		var m amcast.Message
		select {
		case m = <-c.out:
		case <-stop:
			return
		}
		c.addRequest(m)
	drain:
		for {
			select {
			case more := <-c.out:
				c.addRequest(more)
			default:
				break drain
			}
		}
		c.batcher.FlushAll()
	}
}

func (c *clientProc) addRequest(m amcast.Message) {
	for _, to := range c.run.proto.route(m) {
		c.batcher.Add(to, amcast.Envelope{Kind: amcast.KindRequest, From: c.id, Msg: m})
	}
}

func (c *clientProc) onReplies(envs []amcast.Envelope) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, env := range envs {
		if env.Kind != amcast.KindReply {
			continue
		}
		tx, ok := c.inflight[env.Msg.ID]
		if !ok || !tx.remaining[env.From.Group()] {
			continue
		}
		delete(tx.remaining, env.From.Group())
		if len(tx.remaining) > 0 {
			continue
		}
		delete(c.inflight, env.Msg.ID)
		c.run.complete(tx, now)
		if tx.done != nil {
			close(tx.done)
		}
	}
}

// issue registers one transaction and queues it to the dispatcher.
func (c *clientProc) issue(m amcast.Message, closedLoop, silent bool) *txState {
	tx := &txState{remaining: make(map[amcast.GroupID]bool, len(m.Dst)), silent: silent}
	for _, g := range m.Dst {
		tx.remaining[g] = true
	}
	if closedLoop {
		tx.done = make(chan struct{})
	}
	c.mu.Lock()
	tx.issued = time.Now()
	c.inflight[m.ID] = tx
	c.mu.Unlock()
	if !silent && c.run.measuring.Load() {
		c.run.issued.Add(1)
	}
	c.out <- m
	return tx
}

// run is one executing load run.
type run struct {
	cfg   Config
	proto *protocolDeployment

	hist      *metrics.Histogram
	completed atomic.Uint64
	issued    atomic.Uint64
	shed      atomic.Uint64
	measuring atomic.Bool

	windowStart time.Time
}

// complete records one finished transaction.
func (r *run) complete(tx *txState, now time.Time) {
	if tx.silent || !r.measuring.Load() || tx.issued.Before(r.windowStart) {
		return
	}
	r.completed.Add(1)
	lat := now.Sub(tx.issued).Microseconds()
	if lat < 0 {
		lat = 0
	}
	r.hist.Record(uint64(lat))
}

// Run executes one load run and returns its measurement.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	proto, err := buildProtocol(cfg)
	if err != nil {
		return nil, err
	}
	r := &run{cfg: cfg, proto: proto, hist: metrics.NewHistogram()}

	dep, clients, err := deploy(cfg, proto, r)
	if err != nil {
		return nil, err
	}
	defer dep.close()

	// Sessions stop first; dispatchers stop after every session has
	// unblocked, so an issue() in flight is always drained.
	stop := make(chan struct{})
	stopDispatch := make(chan struct{})
	errCh := make(chan error, cfg.Clients*cfg.Workers+1)
	var wg sync.WaitGroup
	var dispatchWG sync.WaitGroup
	for _, c := range clients {
		dispatchWG.Add(1)
		go c.dispatcher(stopDispatch, &dispatchWG)
	}

	// The flush/garbage-collection client (paper §4.3): a closed-loop
	// flush multicast to every group on a fixed period, keeping engine
	// histories pruned during sustained load.
	if cfg.FlushEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			flushLoop(clients[0], cfg, proto, stop, errCh)
		}()
	}
	for _, c := range clients {
		c := c
		if cfg.Rate > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				openLoop(c, cfg, stop, errCh)
			}()
			continue
		}
		for w := 0; w < cfg.Workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				closedLoop(c, w, cfg, stop, errCh)
			}()
		}
	}

	// Warm up, open the measurement window, close it, stop the load.
	time.Sleep(cfg.Warmup)
	r.windowStart = time.Now()
	r.measuring.Store(true)
	time.Sleep(cfg.Duration)
	r.measuring.Store(false)
	windowSecs := time.Since(r.windowStart).Seconds()
	close(stop)
	wg.Wait()
	close(stopDispatch)
	dispatchWG.Wait()

	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	res := &Result{
		Completed:  r.completed.Load(),
		Issued:     r.issued.Load(),
		Shed:       r.shed.Load(),
		WindowSecs: windowSecs,
		Latency:    r.hist.Summary(),
	}
	if windowSecs > 0 {
		res.Throughput = float64(res.Completed) / windowSecs
	}
	var stats runtime.BatcherStats
	for _, n := range dep.nodes {
		s := n.Stats()
		stats.Batches += s.Batches
		stats.Envelopes += s.Envelopes
		if s.MaxBatch > stats.MaxBatch {
			stats.MaxBatch = s.MaxBatch
		}
	}
	for _, c := range clients {
		s := c.batcher.Stats()
		stats.Batches += s.Batches
		stats.Envelopes += s.Envelopes
		if s.MaxBatch > stats.MaxBatch {
			stats.MaxBatch = s.MaxBatch
		}
	}
	res.BatchesSent = stats.Batches
	res.EnvelopesSent = stats.Envelopes
	res.AvgBatch = stats.AvgBatch()
	res.LargestBatch = stats.MaxBatch
	return res, nil
}

// closedLoop is one session: issue, wait for every destination's reply,
// repeat.
func closedLoop(c *clientProc, worker int, cfg Config, stop <-chan struct{}, errCh chan<- error) {
	gen, rng, err := newGen(c, worker, cfg)
	if err != nil {
		sendErr(errCh, err)
		return
	}
	seq := uint64(worker) << 24 // per-worker id space within the client
	for {
		select {
		case <-stop:
			return
		default:
		}
		seq++
		m := nextMessage(c, gen, rng, cfg, seq)
		tx := c.issue(m, true, false)
		select {
		case <-tx.done:
		case <-time.After(cfg.Timeout):
			sendErr(errCh, fmt.Errorf("loadgen: client %d worker %d: tx %s to %v timed out after %v",
				c.idx, worker, m.ID, m.Dst, cfg.Timeout))
			return
		case <-stop:
			return
		}
	}
}

// openLoop issues at a fixed rate per client process, completions
// resolving asynchronously through the reply handler. Pacing is
// burst-based: a millisecond ticker issues however many transactions the
// elapsed time owes, so the offered rate is honored far beyond the
// ticker resolution.
func openLoop(c *clientProc, cfg Config, stop <-chan struct{}, errCh chan<- error) {
	gen, rng, err := newGen(c, 0, cfg)
	if err != nil {
		sendErr(errCh, err)
		return
	}
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	start := time.Now()
	seq := uint64(0)
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			owed := uint64(cfg.Rate * now.Sub(start).Seconds())
			for seq < owed {
				seq++
				c.mu.Lock()
				outstanding := len(c.inflight)
				c.mu.Unlock()
				if outstanding >= cfg.MaxOutstanding {
					if c.run.measuring.Load() {
						c.run.shed.Add(owed - seq + 1)
					}
					seq = owed
					break
				}
				m := nextMessage(c, gen, rng, cfg, seq)
				c.issue(m, false, false)
			}
		}
	}
}

// flushLoop issues one FlagFlush multicast to all groups per period,
// waiting for delivery everywhere before the next (the distinguished
// flush process of §4.3). A flush that times out fails the run: a
// benchmark silently running without garbage collection would publish
// numbers for a different system.
func flushLoop(c *clientProc, cfg Config, proto *protocolDeployment, stop <-chan struct{}, errCh chan<- error) {
	t := time.NewTicker(cfg.FlushEvery)
	defer t.Stop()
	seq := uint64(1) << 38 // clear of every worker's id space
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		seq++
		m := amcast.Message{
			ID:     amcast.NewMsgID(c.idx, seq),
			Sender: c.id,
			Dst:    append([]amcast.GroupID(nil), proto.groups...),
			Flags:  amcast.FlagFlush,
		}
		tx := c.issue(m, true, true)
		select {
		case <-tx.done:
		case <-time.After(cfg.Timeout):
			sendErr(errCh, fmt.Errorf("loadgen: flush multicast %s timed out after %v (GC stalled)",
				m.ID, cfg.Timeout))
			return
		case <-stop:
			return
		}
	}
}

func newGen(c *clientProc, worker int, cfg Config) (*gtpcc.Gen, *rand.Rand, error) {
	home := c.run.proto.groups[c.idx%len(c.run.proto.groups)]
	rng := rand.New(rand.NewSource(cfg.Seed + int64(c.idx)*7919 + int64(worker)*104729))
	gen, err := gtpcc.New(gtpcc.Config{
		Home:       home,
		Nearest:    c.run.proto.nearest(home),
		Locality:   cfg.Locality,
		GlobalOnly: cfg.GlobalOnly,
	}, rng)
	return gen, rng, err
}

func nextMessage(c *clientProc, gen *gtpcc.Gen, rng *rand.Rand, cfg Config, seq uint64) amcast.Message {
	tx := gen.Next()
	size := tx.PayloadSize
	if cfg.PayloadSize > 0 {
		size = cfg.PayloadSize
	}
	return amcast.Message{
		ID:      amcast.NewMsgID(c.idx, seq),
		Sender:  c.id,
		Dst:     tx.Dst,
		Payload: make([]byte, size),
	}
}

func sendErr(ch chan<- error, err error) {
	select {
	case ch <- err:
	default:
	}
}
